// Reproduces paper Fig. 7:
//  (a) Distribution of GEMM operand dimensions (M, N, K) across layers of
//      popular CNNs (the model zoo), shown as log2 histograms, plus the
//      same histograms for the log-uniform sampler used in dataset
//      generation (they should cover the same octaves).
//  (b) Growth of the scheduling space: N = 3^x * x!.

#include <iostream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "search/space.hpp"
#include "workload/model_zoo.hpp"
#include "workload/sampler.hpp"

using namespace airch;

namespace {

void print_histogram(const std::string& title, const std::vector<std::int64_t>& m,
                     const std::vector<std::int64_t>& n, const std::vector<std::int64_t>& k) {
  constexpr int kBins = 20;
  const auto hm = log2_histogram(m, kBins);
  const auto hn = log2_histogram(n, kBins);
  const auto hk = log2_histogram(k, kBins);
  std::int64_t total = 0;
  for (auto v : hm) total += v;
  std::cout << title << " (" << total << " layers/samples per dim)\n";
  AsciiTable t({"dim 2^x", "M", "N", "K"});
  for (int b = 0; b < kBins; ++b) {
    const auto i = static_cast<std::size_t>(b);
    if (hm[i] + hn[i] + hk[i] == 0) continue;
    t.add_row({std::to_string(b), std::to_string(hm[i]), std::to_string(hn[i]),
               std::to_string(hk[i])});
  }
  t.print(std::cout);
  std::cout << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args("bench_fig7_space_growth", "workload dimension distribution & space growth");
  args.flag_i64("samples", 10000, "sampler draws for the coverage comparison");
  args.flag_i64("seed", 3, "RNG seed");
  args.parse(argc, argv);

  // ---------------------------------------------------- Fig. 7(a)
  std::cout << "=== Fig. 7(a): GEMM dimension distribution ===\n\n";
  {
    std::vector<std::int64_t> m, n, k;
    for (const auto& g : zoo_gemms()) {
      m.push_back(g.m);
      n.push_back(g.n);
      k.push_back(g.k);
    }
    print_histogram("-- model zoo (AlexNet/GoogLeNet/ResNet-18/MobileNet/FasterRCNN) --", m, n,
                    k);
  }
  {
    const LogUniformGemmSampler sampler;
    Rng rng(static_cast<std::uint64_t>(args.i64("seed")));
    std::vector<std::int64_t> m, n, k;
    for (std::int64_t i = 0; i < args.i64("samples"); ++i) {
      const GemmWorkload w = sampler.sample(rng);
      m.push_back(w.m);
      n.push_back(w.n);
      k.push_back(w.k);
    }
    print_histogram("-- dataset-generation sampler (log-uniform) --", m, n, k);
  }
  std::cout << "Paper check: dims span ~2^2..2^19 with mass in every octave; the "
               "sampler covers the zoo's occupied octaves.\n\n";

  // ---------------------------------------------------- Fig. 7(b)
  std::cout << "=== Fig. 7(b): scheduling space growth (N = 3^x * x!) ===\n";
  AsciiTable t({"arrays", "schedules"});
  for (int x = 1; x <= 8; ++x) {
    t.add_row({std::to_string(x), std::to_string(ScheduleSpace::space_size(x))});
  }
  t.print(std::cout);
  std::cout << "Paper check: combinatorial explosion; 4 arrays already gives 1944.\n";
  return 0;
}
