// Reproduces paper Fig. 5: the design-aware analysis of optimal array
// shapes and dataflows.
//  (a-c) Relative frequency of optimal array dimensions per dataflow at a
//        2^9 MAC budget over sampled GEMM workloads.
//  (d)   Optimal aspect-ratio pattern and dataflow mix for MAC budgets
//        2^5 .. 2^15.
//
// Expected shape (paper): most-frequent shapes are square or 1:2
// (cols = 2 x rows); every shape is optimal for at least one workload;
// no single dataflow dominates given shape alone.

#include <iostream>
#include <map>

#include "common/cli.hpp"
#include "common/math_utils.hpp"
#include "common/parallel.hpp"
#include "common/table.hpp"
#include "search/exhaustive.hpp"
#include "workload/sampler.hpp"

using namespace airch;

int main(int argc, char** argv) {
  ArgParser args("bench_fig5_array_dataflow", "optimal array shape/dataflow frequencies");
  args.flag_i64("workloads", 10000, "GEMM workloads per budget (paper: 10^4)");
  args.flag_i64("seed", 1, "RNG seed");
  args.parse(argc, argv);
  const auto n = static_cast<std::size_t>(args.i64("workloads"));

  const ArrayDataflowSpace space(18);
  const Simulator sim;
  const ArrayDataflowSearch search(space, sim);
  const LogUniformGemmSampler sampler;

  // ---------------------------------------------------- Fig. 5(a-c)
  std::cout << "=== Fig. 5(a-c): optimal (rows x cols) frequency per dataflow, 2^9 MACs ===\n";
  Rng rng(static_cast<std::uint64_t>(args.i64("seed")));
  const auto workloads = sampler.sample_many(rng, n);
  std::vector<int> labels(n);
  parallel_for(n, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) labels[i] = search.best(workloads[i], 9).label;
  });

  std::map<std::string, std::map<std::string, int>> freq;  // dataflow -> shape -> count
  std::map<std::string, int> df_total;
  for (std::size_t i = 0; i < n; ++i) {
    const ArrayConfig& c = space.config(labels[i]);
    ++freq[to_string(c.dataflow)][std::to_string(c.rows) + "x" + std::to_string(c.cols)];
    ++df_total[to_string(c.dataflow)];
  }
  for (const auto& [df, shapes] : freq) {
    std::cout << "\n-- dataflow " << df << " (" << df_total[df] << " workloads) --\n";
    AsciiTable t({"shape", "share", ""});
    std::vector<std::pair<int, std::string>> sorted;
    for (const auto& [shape, count] : shapes) sorted.emplace_back(count, shape);
    std::sort(sorted.rbegin(), sorted.rend());
    for (const auto& [count, shape] : sorted) {
      const double share = static_cast<double>(count) / df_total[df];
      t.add_row({shape, AsciiTable::fmt(100.0 * share, 1) + "%", bar(share, 40)});
    }
    t.print(std::cout);
  }

  // ---------------------------------------------------- Fig. 5(d)
  std::cout << "\n=== Fig. 5(d): optimal aspect ratio & dataflow mix vs MAC budget ===\n";
  AsciiTable t({"budget", "square", "1:2", "other", "OS", "WS", "IS"});
  for (int budget = 5; budget <= 15; ++budget) {
    Rng budget_rng(static_cast<std::uint64_t>(args.i64("seed")) + budget);
    const auto ws = sampler.sample_many(budget_rng, n);
    std::vector<int> ls(n);
    parallel_for(n, [&](std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i) ls[i] = search.best(ws[i], budget).label;
    });
    int square = 0, twice = 0, other = 0;
    int df_count[3] = {0, 0, 0};
    for (std::size_t i = 0; i < n; ++i) {
      const ArrayConfig& c = space.config(ls[i]);
      if (c.rows == c.cols) {
        ++square;
      } else if (c.cols == 2 * c.rows || c.rows == 2 * c.cols) {
        ++twice;
      } else {
        ++other;
      }
      ++df_count[dataflow_index(c.dataflow)];
    }
    const double dn = static_cast<double>(n);
    t.add_row({"2^" + std::to_string(budget), AsciiTable::fmt(100.0 * square / dn, 1) + "%",
               AsciiTable::fmt(100.0 * twice / dn, 1) + "%",
               AsciiTable::fmt(100.0 * other / dn, 1) + "%",
               AsciiTable::fmt(100.0 * df_count[0] / dn, 1) + "%",
               AsciiTable::fmt(100.0 * df_count[1] / dn, 1) + "%",
               AsciiTable::fmt(100.0 * df_count[2] / dn, 1) + "%"});
  }
  t.print(std::cout);
  std::cout << "\nPaper check: square + 1:2 shapes should dominate; all three dataflows "
               "should stay represented at every budget.\n";
  return 0;
}
