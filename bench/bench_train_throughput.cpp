// Training and serving throughput for the AIRCHITECT network: the naive
// reference kernels (KernelMode::kNaive — the original single-threaded
// loops) vs the blocked/packed/parallel kernel layer (kFast, the default;
// docs/performance.md). Both modes run the IDENTICAL fit — same seed, same
// data, same batch order — and the per-epoch loss/accuracy trajectories
// are asserted exactly equal before any number is reported, so the bench
// doubles as an end-to-end proof that the fast kernels are bit-identical.
//
// A second section measures serving: recommend_label called once per
// query (one forward pass per row) vs recommend_batch (one packed forward
// pass for the whole query set), with the label vectors asserted equal.
//
// Each timed mode runs --reps times and the fastest pass is reported (OS
// scheduling only ever adds time). Default sizes mirror the paper's Fig-9
// case-study-1 setup: 10k generated points, the AIrchitect embedding MLP.
//
// Emits machine-readable JSON (default BENCH_train.json):
//   results[]        — per-mode wall seconds + epochs/sec + samples/sec
//   train_speedup    — naive seconds / fast seconds
//   trajectory_bit_identical — always true if the binary got as far as
//                      writing the file (mismatch aborts)
//   infer            — per-query microseconds, one-at-a-time vs batched
// tools/check.sh runs a tiny-points smoke of this binary and validates
// the JSON parses.

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "core/case_study.hpp"
#include "core/recommender.hpp"
#include "dataset/encoding.hpp"
#include "ml/matrix.hpp"
#include "models/neural.hpp"
#include "workload/sampler.hpp"

using namespace airch;

namespace {

struct FitResult {
  double seconds = 0.0;
  std::vector<EpochStats> history;
};

std::string fmt(double v) {
  std::ostringstream os;
  os << std::setprecision(10) << v;
  return os.str();
}

/// One full fit from scratch under the given kernel mode. A fresh model is
/// built every pass, so reps are exact byte-for-byte reruns.
FitResult timed_fit(ml::KernelMode mode, const Dataset& train, const Dataset& val,
                    const FeatureEncoder& enc, std::uint64_t seed, int epochs) {
  ml::set_kernel_mode(mode);
  auto model = make_airchitect(seed, epochs);
  const auto t0 = std::chrono::steady_clock::now();
  FitResult r;
  r.history = model->fit(train, val, enc);
  const auto t1 = std::chrono::steady_clock::now();
  r.seconds = std::max(std::chrono::duration<double>(t1 - t0).count(), 1e-9);
  return r;
}

FitResult best_of_fits(ml::KernelMode mode, const Dataset& train, const Dataset& val,
                       const FeatureEncoder& enc, std::uint64_t seed, int epochs,
                       std::int64_t reps) {
  FitResult best;
  for (std::int64_t i = 0; i < reps; ++i) {
    FitResult r = timed_fit(mode, train, val, enc, seed, epochs);
    if (i == 0 || r.seconds < best.seconds) best = std::move(r);
  }
  return best;
}

void require_identical_trajectories(const std::vector<EpochStats>& naive,
                                    const std::vector<EpochStats>& fast) {
  if (naive.size() != fast.size()) {
    std::cerr << "trajectory length mismatch: naive " << naive.size() << " epochs, fast "
              << fast.size() << "\n";
    std::exit(1);
  }
  for (std::size_t i = 0; i < naive.size(); ++i) {
    // Exact double equality on purpose: the kernel contract is
    // bit-identity, not closeness.
    if (naive[i].train_loss != fast[i].train_loss ||
        naive[i].train_accuracy != fast[i].train_accuracy ||
        naive[i].val_accuracy != fast[i].val_accuracy) {
      std::cerr << "trajectory diverged at epoch " << naive[i].epoch << ": naive loss "
                << std::setprecision(17) << naive[i].train_loss << " fast loss "
                << fast[i].train_loss << "\n";
      std::exit(1);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args("bench_train_throughput",
                 "epoch throughput, naive reference kernels vs blocked/parallel kernels");
  args.flag_i64("points", 10000, "generated case-1 points (Fig-9 AIrchitect size)");
  args.flag_i64("epochs", 5, "training epochs per timed fit");
  args.flag_i64("threads", 4, "worker threads (pins AIRCH_THREADS)");
  args.flag_i64("reps", 2, "timed fits per mode; the fastest is reported");
  args.flag_i64("infer-queries", 2000, "queries for the serving comparison");
  args.flag_i64("seed", 42, "dataset / model seed");
  args.flag_str("out", "BENCH_train.json", "output JSON path");
  args.parse(argc, argv);

  const auto points = static_cast<std::size_t>(args.i64("points"));
  const int epochs = static_cast<int>(args.i64("epochs"));
  const std::int64_t threads = args.i64("threads");
  const std::int64_t reps = std::max<std::int64_t>(1, args.i64("reps"));
  const auto n_queries = static_cast<std::size_t>(args.i64("infer-queries"));
  const auto seed = static_cast<std::uint64_t>(args.i64("seed"));
  setenv("AIRCH_THREADS", std::to_string(threads).c_str(), 1);

  // Shared data setup, identical to Recommender::train's pipeline.
  const ArrayDataflowStudy study;
  Dataset data = study.generate(points, seed);
  Rng shuffle_rng(seed ^ 0xA5A5A5A5ULL);
  data.shuffle(shuffle_rng);
  auto [train, val] = data.split(0.9);
  const FeatureEncoder enc(train);

  const FitResult naive = best_of_fits(ml::KernelMode::kNaive, train, val, enc, seed, epochs, reps);
  const FitResult fast = best_of_fits(ml::KernelMode::kFast, train, val, enc, seed, epochs, reps);
  require_identical_trajectories(naive.history, fast.history);

  const auto train_samples = static_cast<double>(train.size()) * epochs;
  const double speedup = naive.seconds / fast.seconds;

  // ----------------------------------------------------------- serving
  // One trained recommender answers the same query stream one-at-a-time
  // and batched; labels must agree (argmax of logits == argmax of
  // softmax, so recommend_batch is exactly mapped recommend_label).
  ml::set_kernel_mode(ml::KernelMode::kFast);
  Recommender::TrainOptions ropts;
  ropts.dataset_size = points;
  ropts.epochs = epochs;
  ropts.seed = seed;
  const Recommender rec = Recommender::train(study, ropts);

  const Case1Config cfg;
  Rng qrng(seed + 1);
  LogUniformGemmSampler sampler(cfg.dims);
  std::vector<std::vector<std::int64_t>> queries(n_queries);
  for (auto& q : queries) {
    const auto budget = qrng.uniform_int(cfg.budget_min_exp, cfg.budget_max_exp);
    const GemmWorkload w = sampler.sample(qrng);
    q = {budget, w.m, w.n, w.k};
  }

  std::vector<std::int32_t> one_by_one(n_queries);
  double seconds_single = 0.0;
  std::vector<std::int32_t> batched;
  double seconds_batched = 0.0;
  for (std::int64_t r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < n_queries; ++i) one_by_one[i] = rec.recommend_label(queries[i]);
    const auto t1 = std::chrono::steady_clock::now();
    std::vector<std::int32_t> b = rec.recommend_batch(queries);
    const auto t2 = std::chrono::steady_clock::now();
    const double s1 = std::chrono::duration<double>(t1 - t0).count();
    const double s2 = std::max(std::chrono::duration<double>(t2 - t1).count(), 1e-9);
    if (r == 0 || s1 < seconds_single) seconds_single = s1;
    if (r == 0 || s2 < seconds_batched) seconds_batched = s2;
    batched = std::move(b);
  }
  for (std::size_t i = 0; i < n_queries; ++i) {
    if (one_by_one[i] != batched[i]) {
      std::cerr << "serving mismatch at query " << i << ": single " << one_by_one[i]
                << ", batched " << batched[i] << "\n";
      return 1;
    }
  }
  const double us_single = 1e6 * seconds_single / static_cast<double>(n_queries);
  const double us_batched = 1e6 * seconds_batched / static_cast<double>(n_queries);

  std::ostringstream os;
  os << "{\n  \"bench\": \"train_throughput\",\n  \"threads\": " << threads
     << ",\n  \"points\": " << points << ",\n  \"train_samples\": " << train.size()
     << ",\n  \"epochs\": " << epochs << ",\n  \"reps\": " << reps << ",\n  \"results\": [\n";
  const struct {
    const char* mode;
    const FitResult* r;
  } rows[] = {{"naive", &naive}, {"fast", &fast}};
  for (std::size_t i = 0; i < 2; ++i) {
    os << "    {\"mode\": \"" << rows[i].mode << "\", \"seconds\": " << fmt(rows[i].r->seconds)
       << ", \"epochs_per_sec\": " << fmt(epochs / rows[i].r->seconds)
       << ", \"samples_per_sec\": " << fmt(train_samples / rows[i].r->seconds) << "}"
       << (i == 0 ? "," : "") << "\n";
  }
  os << "  ],\n  \"train_speedup\": " << fmt(speedup)
     << ",\n  \"trajectory_bit_identical\": true,\n  \"final_train_loss\": "
     << std::setprecision(17) << fast.history.back().train_loss
     << ",\n  \"final_val_accuracy\": " << fast.history.back().val_accuracy
     << ",\n  \"infer\": {\"queries\": " << n_queries
     << ", \"one_at_a_time_us_per_query\": " << fmt(us_single)
     << ", \"batched_us_per_query\": " << fmt(us_batched)
     << ", \"batched_speedup\": " << fmt(us_single / us_batched) << "}\n}\n";
  std::ofstream out(args.str("out"));
  out << os.str();
  std::cout << os.str();
  return 0;
}
