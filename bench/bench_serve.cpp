// Serving SLO bench for the batched recommender service (src/serve/):
// trains three tiny warm models (one per case study), starts a
// RecommenderService in-process, and drives it with N concurrent client
// threads over real loopback sockets. Reports per-request latency
// percentiles (p50/p99/p999) and sustained QPS at each concurrency level,
// plus the service's admission batch-size histogram — the shape of the
// coalescing under load.
//
// Two load modes:
//   closed loop (default): each client fires its next request the moment
//     the previous reply lands; concurrency == in-flight requests.
//   open loop (--open-qps > 0): requests are scheduled at a fixed
//     aggregate rate and latency is measured FROM THE SCHEDULED ARRIVAL,
//     so queueing delay from falling behind counts against the service
//     (the coordinated-omission-free measurement).
//
// Correctness is asserted before any number is reported: every reply
// captured during the timed runs is re-answered by an in-process
// recommend_batch on the same model and the labels must be bit-identical
// — the service adds batching and a wire format, never a different
// answer. A mismatch aborts with exit 1.
//
// Emits machine-readable JSON (default BENCH_serve.json), validated by
// tools/validate_bench.py --mode serve and smoked by tools/check.sh.

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/cli.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "core/case_study.hpp"
#include "core/recommender.hpp"
#include "dataset/generator.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "workload/sampler.hpp"

using namespace airch;

namespace {

std::string fmt(double v) {
  std::ostringstream os;
  os << std::setprecision(10) << v;
  return os.str();
}

/// One recorded request: what was asked, what the service answered.
struct Exchange {
  int case_id = 0;
  std::vector<std::vector<std::int64_t>> queries;
  std::vector<std::int32_t> labels;
  double latency_us = 0.0;
};

struct ClientLog {
  std::vector<Exchange> exchanges;
  bool failed = false;
  std::string error;
};

struct LevelResult {
  int concurrency = 0;
  std::size_t requests = 0;
  std::size_t queries = 0;
  double seconds = 0.0;
  double qps = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double p999_us = 0.0;
  std::uint64_t batches = 0;
  double mean_batch_queries = 0.0;
};

double percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

/// Deterministic per-(client, request) query batch for one case study.
std::vector<std::vector<std::int64_t>> make_queries(int case_id, std::size_t batch,
                                                    std::uint64_t seed) {
  Rng rng(seed);
  LogUniformGemmSampler sampler;
  const Case1Config c1;
  const Case2Config c2;
  std::vector<std::vector<std::int64_t>> out(batch);
  for (auto& q : out) {
    switch (case_id) {
      case 1: {
        const GemmWorkload w = sampler.sample(rng);
        q = {rng.uniform_int(c1.budget_min_exp, c1.budget_max_exp), w.m, w.n, w.k};
        break;
      }
      case 2: {
        const GemmWorkload w = sampler.sample(rng);
        const std::int64_t side = std::int64_t{1}
                                  << rng.uniform_int(2, c2.array_macs_max_exp / 2);
        q = {rng.uniform_int(c2.limit_min_kb, c2.limit_max_kb),
             w.m,
             w.n,
             w.k,
             side,
             side,
             rng.uniform_int(0, 2),
             rng.uniform_int(c2.bw_min, c2.bw_max)};
        break;
      }
      default: {
        q.clear();
        for (int i = 0; i < 4; ++i) {
          const GemmWorkload w = sampler.sample(rng);
          q.push_back(w.m);
          q.push_back(w.n);
          q.push_back(w.k);
        }
        break;
      }
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args("bench_serve",
                 "p50/p99 latency + QPS of the batched recommender service under load");
  args.flag_i64("points1", 2000, "case-1 training points (tiny warm model)");
  args.flag_i64("points2", 1000, "case-2 training points");
  args.flag_i64("points3", 500, "case-3 training points");
  args.flag_i64("epochs", 2, "training epochs per model");
  args.flag_i64("threads", 2, "kernel worker threads (pins AIRCH_THREADS)");
  args.flag_i64("requests", 200, "requests per client per level", 1, 1000000);
  args.flag_i64("batch", 4, "queries per request", 1, 4096);
  args.flag_str("levels", "1,4,16", "comma-separated client concurrency levels");
  args.flag_i64("deadline-us", 200, "service admission-batch deadline");
  args.flag_i64("batch-max", 64, "service admission-batch query cap");
  args.flag_f64("open-qps", 0.0, "aggregate open-loop request rate (0 = closed loop)");
  args.flag_i64("seed", 42, "dataset / model / query seed");
  args.flag_str("out", "BENCH_serve.json", "output JSON path");
  args.parse(argc, argv);

  const auto seed = static_cast<std::uint64_t>(args.i64("seed"));
  const int epochs = static_cast<int>(args.i64("epochs"));
  const auto requests = static_cast<std::size_t>(args.i64("requests"));
  const auto batch = static_cast<std::size_t>(args.i64("batch"));
  const double open_qps = args.f64("open-qps");
  setenv("AIRCH_THREADS", std::to_string(args.i64("threads")).c_str(), 1);

  std::vector<int> levels;
  {
    std::istringstream is(args.str("levels"));
    std::string tok;
    while (std::getline(is, tok, ',')) {
      const int v = std::stoi(tok);
      if (v < 1) {
        std::cerr << "concurrency levels must be >= 1\n";
        return 1;
      }
      levels.push_back(v);
    }
    if (levels.empty()) {
      std::cerr << "--levels must name at least one concurrency level\n";
      return 1;
    }
  }

  // ------------------------------------------------- warm models, one each
  std::cerr << "training warm models...\n";
  const ArrayDataflowStudy study1;
  const BufferSizingStudy study2;
  const SchedulingStudy study3;
  const auto train = [&](const CaseStudy& study, std::size_t points) {
    Recommender::TrainOptions o;
    o.dataset_size = points;
    o.epochs = epochs;
    o.seed = seed;
    return Recommender::train(study, o);
  };
  const Recommender rec1 = train(study1, static_cast<std::size_t>(args.i64("points1")));
  const Recommender rec2 = train(study2, static_cast<std::size_t>(args.i64("points2")));
  const Recommender rec3 = train(study3, static_cast<std::size_t>(args.i64("points3")));
  const Recommender* recs[3] = {&rec1, &rec2, &rec3};

  serve::ServeOptions sopts;
  sopts.batch_deadline_us = args.i64("deadline-us");
  sopts.batch_max = static_cast<std::size_t>(args.i64("batch-max"));
  sopts.max_connections = 256;
  serve::RecommenderService service({{1, &rec1}, {2, &rec2}, {3, &rec3}}, sopts);
  service.start();
  const int port = service.port();

  // ------------------------------------------------------------ load loop
  std::vector<LevelResult> results;
  std::vector<ClientLog> all_logs;
  auto prev_stats = service.stats();
  for (const int concurrency : levels) {
    std::vector<ClientLog> logs(static_cast<std::size_t>(concurrency));
    const auto t0 = std::chrono::steady_clock::now();
    {
      std::vector<Thread> clients;
      clients.reserve(static_cast<std::size_t>(concurrency));
      for (int c = 0; c < concurrency; ++c) {
        ClientLog* log = &logs[static_cast<std::size_t>(c)];
        clients.emplace_back([&, c, log] {
          try {
            serve::RecommenderClient client(port);
            const double interval_s =
                open_qps > 0.0 ? static_cast<double>(concurrency) / open_qps : 0.0;
            const auto start = std::chrono::steady_clock::now();
            log->exchanges.reserve(requests);
            for (std::size_t r = 0; r < requests; ++r) {
              Exchange ex;
              ex.case_id = static_cast<int>((static_cast<std::size_t>(c) + r) % 3) + 1;
              ex.queries = make_queries(
                  ex.case_id, batch,
                  seed ^ (static_cast<std::uint64_t>(c) << 32) ^ (r * 2654435761ULL));
              auto sent = std::chrono::steady_clock::now();
              if (open_qps > 0.0) {
                // Open loop: latency counts from the SCHEDULED arrival, so
                // a service that falls behind pays its queueing delay.
                const auto scheduled =
                    start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                                std::chrono::duration<double>(interval_s *
                                                              static_cast<double>(r)));
                std::this_thread::sleep_until(scheduled);
                sent = scheduled;
              }
              ex.labels = client.recommend_batch(ex.case_id, ex.queries);
              const auto done = std::chrono::steady_clock::now();
              ex.latency_us =
                  std::chrono::duration<double, std::micro>(done - sent).count();
              log->exchanges.push_back(std::move(ex));
            }
          } catch (const std::exception& e) {
            log->failed = true;
            log->error = e.what();
          }
        });
      }
    }  // Thread dtors join all clients
    const auto t1 = std::chrono::steady_clock::now();

    std::vector<double> latencies;
    std::size_t n_queries = 0;
    for (auto& log : logs) {
      if (log.failed) {
        std::cerr << "client failed at concurrency " << concurrency << ": " << log.error
                  << "\n";
        return 1;
      }
      for (const auto& ex : log.exchanges) {
        latencies.push_back(ex.latency_us);
        n_queries += ex.queries.size();
      }
      all_logs.push_back(std::move(log));
    }
    std::sort(latencies.begin(), latencies.end());

    const auto now_stats = service.stats();
    LevelResult lr;
    lr.concurrency = concurrency;
    lr.requests = latencies.size();
    lr.queries = n_queries;
    lr.seconds = std::max(std::chrono::duration<double>(t1 - t0).count(), 1e-9);
    lr.qps = static_cast<double>(lr.requests) / lr.seconds;
    lr.p50_us = percentile(latencies, 0.50);
    lr.p99_us = percentile(latencies, 0.99);
    lr.p999_us = percentile(latencies, 0.999);
    lr.batches = now_stats.batches - prev_stats.batches;
    lr.mean_batch_queries =
        lr.batches > 0 ? static_cast<double>(now_stats.queries - prev_stats.queries) /
                             static_cast<double>(lr.batches)
                       : 0.0;
    prev_stats = now_stats;
    results.push_back(lr);
    std::cerr << "concurrency " << concurrency << ": qps " << lr.qps << ", p50 "
              << lr.p50_us << "us, p99 " << lr.p99_us << "us\n";
  }

  const auto final_stats = service.stats();
  service.stop();

  // -------------------------------------------- bit-identity verification
  // Every reply captured above must equal a direct in-process
  // recommend_batch on the same warm model: the service may batch and
  // frame, but never change an answer.
  for (const auto& log : all_logs) {
    for (const auto& ex : log.exchanges) {
      const auto direct = recs[ex.case_id - 1]->recommend_batch(ex.queries);
      if (direct != ex.labels) {
        std::cerr << "serving mismatch: case " << ex.case_id
                  << " reply differs from direct recommend_batch\n";
        return 1;
      }
    }
  }

  // ---------------------------------------------------------------- JSON
  std::ostringstream os;
  os << "{\n  \"bench\": \"serve\",\n  \"mode\": \""
     << (open_qps > 0.0 ? "open" : "closed") << "\",\n  \"threads\": "
     << args.i64("threads") << ",\n  \"requests_per_client\": " << requests
     << ",\n  \"queries_per_request\": " << batch
     << ",\n  \"batch_deadline_us\": " << sopts.batch_deadline_us
     << ",\n  \"batch_max\": " << sopts.batch_max;
  if (open_qps > 0.0) os << ",\n  \"open_qps_target\": " << fmt(open_qps);
  os << ",\n  \"levels\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const LevelResult& lr = results[i];
    os << "    {\"concurrency\": " << lr.concurrency << ", \"requests\": " << lr.requests
       << ", \"queries\": " << lr.queries << ", \"seconds\": " << fmt(lr.seconds)
       << ", \"qps\": " << fmt(lr.qps) << ", \"p50_us\": " << fmt(lr.p50_us)
       << ", \"p99_us\": " << fmt(lr.p99_us) << ", \"p999_us\": " << fmt(lr.p999_us)
       << ", \"batches\": " << lr.batches
       << ", \"mean_batch_queries\": " << fmt(lr.mean_batch_queries) << "}"
       << (i + 1 < results.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"batch_size_log2_hist\": [";
  for (std::size_t i = 0; i < final_stats.batch_size_log2_hist.size(); ++i) {
    os << (i == 0 ? "" : ", ") << final_stats.batch_size_log2_hist[i];
  }
  os << "],\n  \"served_requests\": " << final_stats.requests
     << ",\n  \"served_errors\": " << final_stats.errors
     << ",\n  \"responses_bit_identical\": true\n}\n";
  std::ofstream out(args.str("out"));
  out << os.str();
  std::cout << os.str();
  return 0;
}
