// Reproduces paper Fig. 10: AIRCHITECT training and analysis on all three
// case studies.
//  (a-c) Train/validation accuracy vs epoch.
//  (d-f) Actual vs predicted label distribution on the test set (top
//        labels shown; the paper's point is that predictions track the
//        actual distribution and ignore rare labels as noise).
//  (g,h) Misprediction penalty: achieved performance of the predicted
//        configuration normalized to the search optimum — the paper's
//        headline "99.9% of best possible performance (GeoMean)".

#include <algorithm>
#include <cmath>
#include <iostream>

#include "common/cli.hpp"
#include "common/math_utils.hpp"
#include "common/table.hpp"
#include "core/pipeline.hpp"
#include "models/neural.hpp"

using namespace airch;

int main(int argc, char** argv) {
  ArgParser args("bench_fig10_airchitect", "AIRCHITECT training curves & misprediction penalty");
  args.flag_i64("points1", 60000, "dataset size, case 1 (paper: 4.5e6)");
  args.flag_i64("points2", 20000, "dataset size, case 2");
  args.flag_i64("points3", 12000, "dataset size, case 3");
  args.flag_i64("epochs", 12, "training epochs (paper: 15-22)");
  args.flag_i64("seed", 5, "RNG seed");
  args.parse(argc, argv);
  const auto seed = static_cast<std::uint64_t>(args.i64("seed"));

  const std::vector<std::pair<CaseId, std::int64_t>> cases = {
      {CaseId::kArrayDataflow, args.i64("points1")},
      {CaseId::kBufferSizing, args.i64("points2")},
      {CaseId::kScheduling, args.i64("points3")},
  };

  for (const auto& [case_id, points] : cases) {
    const auto study = make_case_study(case_id);
    std::cout << "=============================================================\n"
              << case_name(case_id) << " — " << points << " points\n"
              << "=============================================================\n";
    std::cerr << "[fig10] generating + training...\n";
    const Dataset data = study->generate(static_cast<std::size_t>(points), seed);
    auto clf = make_airchitect(seed, static_cast<int>(args.i64("epochs")));
    const ExperimentResult r = run_experiment(*study, *clf, data, {});

    // ---------------------------------------------- Fig. 10(a-c)
    std::cout << "\n-- training curve (Fig. 10(a-c)) --\n";
    AsciiTable tc({"epoch", "train loss", "train acc", "val acc"});
    for (const auto& e : r.history) {
      tc.add_row({std::to_string(e.epoch), AsciiTable::fmt(e.train_loss, 3),
                  AsciiTable::fmt(100.0 * e.train_accuracy, 1) + "%",
                  AsciiTable::fmt(100.0 * e.val_accuracy, 1) + "%"});
    }
    tc.print(std::cout);
    std::cout << "test accuracy: " << AsciiTable::fmt(100.0 * r.test_accuracy, 1) << "%\n";

    // ---------------------------------------------- Fig. 10(d-f)
    std::cout << "\n-- label distribution, top 12 actual labels (Fig. 10(d-f)) --\n";
    std::vector<std::pair<std::int64_t, int>> top;
    for (std::size_t l = 0; l < r.actual_hist.size(); ++l) {
      top.emplace_back(r.actual_hist[l], static_cast<int>(l));
    }
    std::sort(top.rbegin(), top.rend());
    AsciiTable td({"label", "actual", "predicted"});
    for (std::size_t i = 0; i < std::min<std::size_t>(12, top.size()); ++i) {
      const int label = top[i].second;
      td.add_row({std::to_string(label), std::to_string(r.actual_hist[label]),
                  std::to_string(r.predicted_hist[label])});
    }
    td.print(std::cout);
    int covered = 0, predicted_labels = 0;
    for (std::size_t l = 0; l < r.actual_hist.size(); ++l) {
      if (r.actual_hist[l] > 0) ++covered;
      if (r.predicted_hist[l] > 0) ++predicted_labels;
    }
    std::cout << "distinct labels: actual " << covered << ", predicted " << predicted_labels
              << " (model ignores rare labels as noise — paper Sec. V)\n";
    std::cout << "distribution match: Jensen-Shannon divergence "
              << AsciiTable::fmt(r.label_js_divergence, 4) << " (0 = identical, "
              << AsciiTable::fmt(std::log(2.0), 3) << " = disjoint); macro-F1 "
              << AsciiTable::fmt(r.test_macro_f1, 3) << '\n';

    // ---------------------------------------------- Fig. 10(g,h)
    std::cout << "\n-- misprediction penalty (Fig. 10(g,h)) --\n";
    const auto& perf = r.normalized_perf;  // sorted ascending
    auto pct = [&](double q) {
      return perf[static_cast<std::size_t>(q * static_cast<double>(perf.size() - 1))];
    };
    AsciiTable tp({"metric", "value"});
    tp.add_row({"GeoMean achieved/optimal", AsciiTable::fmt(100.0 * r.geomean_perf, 2) + "%"});
    tp.add_row({"p1 (worst 1%)", AsciiTable::fmt(100.0 * pct(0.01), 1) + "%"});
    tp.add_row({"p5", AsciiTable::fmt(100.0 * pct(0.05), 1) + "%"});
    tp.add_row({"p50", AsciiTable::fmt(100.0 * pct(0.50), 1) + "%"});
    std::size_t catastrophic = 0;
    for (double p : perf) {
      if (p < 0.2) ++catastrophic;
    }
    tp.add_row({"catastrophic (<20% of optimal)",
                std::to_string(catastrophic) + " / " + std::to_string(perf.size())});
    tp.print(std::cout);
    std::cout << '\n';
  }
  std::cout << "Paper check: GeoMean ~99%+ for cases 1/3 even where accuracy is far\n"
               "below 100% — mispredictions land on near-optimal neighbours.\n";
  return 0;
}
