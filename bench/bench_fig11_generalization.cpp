// Reproduces paper Fig. 11:
//  (a) Generalization to unseen real networks: a case-1 recommender
//      trained on sampled workloads predicts array shape + dataflow for
//      layers of AlexNet/GoogLeNet/ResNet-18/MobileNet/FasterRCNN at a
//      2^10 MAC budget, compared against exhaustive search.
//  (b) Performance at scale: test accuracy as the MAC budget (and with it
//      the output space) grows. The paper sweeps to 2^40; the sweep here
//      is flag-controlled (default 2^12..2^24 for CPU budget).

#include <algorithm>
#include <cmath>
#include <iostream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/pipeline.hpp"
#include "core/recommender.hpp"
#include "models/neural.hpp"
#include "search/exhaustive.hpp"
#include "workload/model_zoo.hpp"

using namespace airch;

int main(int argc, char** argv) {
  ArgParser args("bench_fig11_generalization", "unseen-network prediction & scale sweep");
  args.flag_i64("points", 30000, "training dataset size per model");
  args.flag_i64("epochs", 10, "training epochs");
  args.flag_i64("seed", 6, "RNG seed");
  args.flag_i64("max_scale_exp", 24, "largest MAC-budget exponent in the (b) sweep (paper: 40)");
  args.parse(argc, argv);
  const auto seed = static_cast<std::uint64_t>(args.i64("seed"));

  // ---------------------------------------------------- Fig. 11(a)
  {
    std::cout << "=== Fig. 11(a): predictions on unseen CNN layers (budget 2^10) ===\n";
    ArrayDataflowStudy study;
    Recommender::TrainOptions opts;
    opts.dataset_size = static_cast<std::size_t>(args.i64("points"));
    opts.epochs = static_cast<int>(args.i64("epochs"));
    opts.seed = seed;
    std::cerr << "[fig11a] training recommender...\n";
    const Recommender rec = Recommender::train(study, opts);
    const ArrayDataflowSearch search(study.space(), study.simulator());

    AsciiTable t({"network", "layer", "workload", "predicted", "optimal", "achieved"});
    double geo_log_sum = 0.0;
    int count = 0, exact = 0;
    for (const auto& net : model_zoo()) {
      const auto gemms = net.gemms();
      const auto names = net.layer_names();
      // A few representative layers per network keeps the table readable.
      for (std::size_t li = 0; li < gemms.size(); li += std::max<std::size_t>(1, gemms.size() / 4)) {
        const GemmWorkload& w = gemms[li];
        const ArrayConfig pred = rec.recommend_array(w, 10);
        const auto best = search.best(w, 10);
        const ArrayConfig opt = study.space().config(best.label);
        Cycles pred_cycles = study.simulator().compute_cycles(w, pred);
        const MacCount budget{1024};
        if (pred.macs() > budget) pred_cycles *= ceil_div(pred.macs(), budget);
        const double achieved = std::min(1.0, best.cycles / pred_cycles);
        geo_log_sum += std::log(achieved);
        ++count;
        if (pred == opt) ++exact;
        t.add_row({net.name, names[li], w.to_string(), pred.to_string(), opt.to_string(),
                   AsciiTable::fmt(100.0 * achieved, 1) + "%"});
      }
    }
    t.print(std::cout);
    std::cout << "exact matches: " << exact << "/" << count
              << ", geomean achieved/optimal: "
              << AsciiTable::fmt(100.0 * std::exp(geo_log_sum / count), 1) << "%\n";
    std::cout << "Paper check: none of these layers were in training; predictions should\n"
                 "match or nearly match search (achieved ~100%).\n\n";
  }

  // ---------------------------------------------------- Fig. 11(b)
  {
    std::cout << "=== Fig. 11(b): test accuracy vs MAC-budget scale ===\n";
    AsciiTable t({"max budget", "labels", "test acc", "geomean perf"});
    for (int max_exp = 12; max_exp <= static_cast<int>(args.i64("max_scale_exp"));
         max_exp += 4) {
      Case1Config cfg;
      cfg.budget_min_exp = 5;
      cfg.budget_max_exp = max_exp;
      ArrayDataflowStudy study(cfg, max_exp);
      std::cerr << "[fig11b] budget 2^" << max_exp << " (" << study.num_classes()
                << " labels)...\n";
      const Dataset data =
          study.generate(static_cast<std::size_t>(args.i64("points")), seed + max_exp);
      auto clf = make_airchitect(seed, static_cast<int>(args.i64("epochs")));
      const ExperimentResult r = run_experiment(study, *clf, data, {});
      t.add_row({"2^" + std::to_string(max_exp), std::to_string(study.num_classes()),
                 AsciiTable::fmt(100.0 * r.test_accuracy, 1) + "%",
                 AsciiTable::fmt(100.0 * r.geomean_perf, 1) + "%"});
    }
    t.print(std::cout);
    std::cout << "Paper check: accuracy stays roughly flat as the output space grows\n"
                 "(the paper reports >90% out to 2^40 at its dataset scale).\n";
  }
  return 0;
}
