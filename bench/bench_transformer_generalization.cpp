// Extension experiment beyond the paper's CNN-only evaluation: does a
// case-1 recommender trained on the generic log-uniform GEMM population
// transfer to transformer workloads (BERT-base / GPT-2-small projections,
// attention products, FFNs) — and across sequence lengths?
//
// This probes the paper's implicit claim that the learned design space is
// a property of GEMM geometry, not of the CNN-derived training set.

#include <algorithm>
#include <cmath>
#include <iostream>

#include "common/cli.hpp"
#include "common/math_utils.hpp"
#include "common/table.hpp"
#include "core/recommender.hpp"
#include "search/exhaustive.hpp"
#include "workload/model_zoo.hpp"

using namespace airch;

int main(int argc, char** argv) {
  ArgParser args("bench_transformer_generalization",
                 "case-1 recommender on transformer GEMMs (extension)");
  args.flag_i64("points", 40000, "training dataset size");
  args.flag_i64("epochs", 10, "training epochs");
  args.flag_i64("budget_exp", 12, "MAC budget exponent for queries");
  args.flag_i64("seed", 21, "RNG seed");
  args.parse(argc, argv);
  const int budget = static_cast<int>(args.i64("budget_exp"));

  ArrayDataflowStudy study;
  Recommender::TrainOptions opts;
  opts.dataset_size = static_cast<std::size_t>(args.i64("points"));
  opts.epochs = static_cast<int>(args.i64("epochs"));
  opts.seed = static_cast<std::uint64_t>(args.i64("seed"));
  std::cerr << "[tf] training recommender...\n";
  const Recommender rec = Recommender::train(study, opts);
  const ArrayDataflowSearch search(study.space(), study.simulator());

  auto score = [&](const GemmWorkload& w) {
    const ArrayConfig pred = rec.recommend_array(w, budget);
    const auto best = search.best(w, budget);
    Cycles pred_cycles = study.simulator().compute_cycles(w, pred);
    const MacCount budget_macs{pow2(budget)};
    if (pred.macs() > budget_macs) pred_cycles *= ceil_div(pred.macs(), budget_macs);
    return std::min(1.0, best.cycles / pred_cycles);
  };

  // ------------------------------------------- per-network summary
  std::cout << "=== Transformer networks, budget 2^" << budget << " ===\n";
  AsciiTable t({"network", "layers", "exact match", "geomean achieved"});
  for (const auto& net : transformer_zoo()) {
    const auto gemms = net.gemms();
    int exact = 0;
    double log_sum = 0.0;
    for (const auto& w : gemms) {
      const double s = score(w);
      log_sum += std::log(s);
      if (s >= 1.0 - 1e-12) ++exact;
    }
    t.add_row({net.name, std::to_string(gemms.size()),
               std::to_string(exact) + "/" + std::to_string(gemms.size()),
               AsciiTable::fmt(100.0 * std::exp(log_sum / static_cast<double>(gemms.size())), 1) +
                   "%"});
  }
  t.print(std::cout);

  // ------------------------------------------- sequence-length sweep
  std::cout << "\n=== Sequence-length sweep (BERT-base blocks) ===\n";
  AsciiTable ts({"seq len", "geomean achieved", "worst layer"});
  for (std::int64_t seq : {32, 64, 128, 256, 512, 1024}) {
    const auto gemms = make_bert_base(seq).gemms();
    double log_sum = 0.0, worst = 1.0;
    for (const auto& w : gemms) {
      const double s = score(w);
      log_sum += std::log(s);
      worst = std::min(worst, s);
    }
    ts.add_row({std::to_string(seq),
                AsciiTable::fmt(100.0 * std::exp(log_sum / static_cast<double>(gemms.size())), 1) +
                    "%",
                AsciiTable::fmt(100.0 * worst, 1) + "%"});
  }
  ts.print(std::cout);
  std::cout << "\nExpected: achieved/optimal stays high across networks and sequence\n"
               "lengths — the learned space transfers because it depends only on GEMM\n"
               "geometry, which the log-uniform training distribution covers.\n";
  return 0;
}
