// Reproduces paper Fig. 9: prediction accuracy of off-the-shelf
// classifiers (SVC-RBF, SVC-Linear, XGBoost-style GBT, MLP-A..D) versus
// AIRCHITECT on all three case studies.
//
// Paper shape to reproduce: AIRCHITECT beats the best off-the-shelf model
// by ~10 accuracy points on each case study; SVCs trail the MLPs; case 2
// is the easiest for the baselines.
//
// Scale note: the paper fits on 2x10^6 points; defaults here are reduced
// for a 2-core CPU budget (see --help). Accuracy rises with --points.

#include <iostream>
#include <memory>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/pipeline.hpp"
#include "models/gbt.hpp"
#include "models/neural.hpp"
#include "models/svc.hpp"

using namespace airch;

int main(int argc, char** argv) {
  ArgParser args("bench_fig9_classifiers", "classifier accuracy comparison (Fig. 9)");
  args.flag_i64("points1", 30000, "dataset size, case study 1 (paper: 2e6)");
  args.flag_i64("points2", 20000, "dataset size, case study 2");
  args.flag_i64("points3", 10000, "dataset size, case study 3");
  args.flag_i64("epochs", 8, "NN training epochs");
  args.flag_i64("seed", 4, "RNG seed");
  args.parse(argc, argv);
  const auto seed = static_cast<std::uint64_t>(args.i64("seed"));
  const int epochs = static_cast<int>(args.i64("epochs"));

  const std::vector<std::pair<CaseId, std::int64_t>> cases = {
      {CaseId::kArrayDataflow, args.i64("points1")},
      {CaseId::kBufferSizing, args.i64("points2")},
      {CaseId::kScheduling, args.i64("points3")},
  };

  auto make_models = [&]() {
    std::vector<std::unique_ptr<Classifier>> models;
    models.push_back(make_svc_rbf(seed));
    models.push_back(make_svc_linear(seed));
    models.push_back(make_xgboost_like(seed));
    models.push_back(make_mlp_a(seed, epochs));
    models.push_back(make_mlp_b(seed, epochs));
    models.push_back(make_mlp_c(seed, epochs));
    models.push_back(make_mlp_d(seed, epochs));
    models.push_back(make_airchitect(seed, epochs));
    return models;
  };

  std::cout << "=== Fig. 9: test accuracy (%) per classifier per case study ===\n\n";
  AsciiTable table({"model", "case 1", "case 2", "case 3"});
  std::vector<std::vector<std::string>> rows;
  auto names = make_models();
  for (const auto& m : names) rows.push_back({m->name(), "-", "-", "-"});

  int case_col = 0;
  for (const auto& [case_id, points] : cases) {
    ++case_col;
    const auto study = make_case_study(case_id);
    std::cerr << "[fig9] generating " << points << " points for case " << case_col << "...\n";
    const Dataset data = study->generate(static_cast<std::size_t>(points), seed + case_col);
    auto models = make_models();
    for (std::size_t mi = 0; mi < models.size(); ++mi) {
      ExperimentOptions opts;
      opts.score_performance = false;
      std::cerr << "[fig9]   training " << models[mi]->name() << "...\n";
      const ExperimentResult r = run_experiment(*study, *models[mi], data, opts);
      rows[mi][static_cast<std::size_t>(case_col)] =
          AsciiTable::fmt(100.0 * r.test_accuracy, 1);
    }
  }
  for (auto& row : rows) table.add_row(row);
  table.print(std::cout);
  std::cout << "\nPaper check: AIrchitect tops every column; MLPs beat SVCs; accuracy\n"
               "is dataset-size limited here — the paper's absolute numbers (94/74/76%)\n"
               "need its 2x10^6-point datasets (increase --points1/2/3 to approach them).\n";
  return 0;
}
