// Dataset labelling throughput: points/sec for the three case studies,
// uncached (naive exhaustive search per point, static partitioning — the
// pre-acceleration path) vs cached (sweep caches + dynamic parallel_for,
// the path dataset/generator.cpp ships). Labels from both paths are
// asserted identical before any number is reported, so the bench doubles
// as an end-to-end equivalence check at scale.
//
// Each mode is timed --reps times and the fastest pass is reported (the
// usual min-of-N noise filter: OS scheduling only ever adds time). Every
// cached rep labels through a *fresh* cache — construction happens outside
// the timed region, exactly as in dataset/generator.cpp — so the reported
// number is always a cold, full labelling pass, never a warm re-query.
//
// The input mix is a mixed-duplicate stream: with probability --dup each
// point's cache-key features are resampled from a small pool (64 entries,
// the same shape the property tests use), mirroring the log-uniform
// sampler's natural collision rate at dataset scale. Both modes label the
// identical inputs, so the naive baseline is unaffected; the cached path's
// hit rate is what the duplicates exercise.
//
// Two further sections measure the PR-8 persistence layers:
//   "snapshot" — per case, a full generate() pass on a cold study vs the
//     same pass on a fresh study pre-warmed from a saved cache snapshot
//     (--snapshot-points points, 0 = --points; single pass each, since a
//     paper-scale pass is minutes long). The cold and warm datasets are
//     asserted bit-identical before any number is reported.
//   "writer" — save_csv vs write_binary_dataset on one synthetic
//     --writer-points dataset (0 = --points), best of --reps.
//
// Emits machine-readable JSON (default BENCH_dataset.json); each record:
//   {"case", "mode", "points", "seconds", "points_per_sec", "threads"}
// with a "speedup" summary per case, the "dup_fraction" used, a
// "snapshot" array ({"case", "points", "cold_seconds", "warm_seconds",
// "speedup", "labels_bit_identical"}) and a "writer" object. tools/check.sh
// runs a tiny-points smoke of this binary and validates the JSON schema
// (tools/validate_bench.py).

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "core/case_study.hpp"
#include "dataset/binary_io.hpp"
#include "dataset/generator.hpp"
#include "search/exhaustive.hpp"
#include "search/space.hpp"
#include "search/sweep_cache.hpp"
#include "sim/simulator.hpp"
#include "workload/sampler.hpp"

using namespace airch;

namespace {

struct Record {
  std::string case_name;
  std::string mode;  // "naive" or "cached"
  std::size_t points = 0;
  double seconds = 0.0;
  double points_per_sec = 0.0;
};

/// Wall-clock a labelling closure and fold it into a Record.
template <typename Fn>
Record timed(const std::string& case_name, const std::string& mode, std::size_t points,
             const Fn& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  Record r;
  r.case_name = case_name;
  r.mode = mode;
  r.points = points;
  r.seconds = std::max(std::chrono::duration<double>(t1 - t0).count(), 1e-9);
  r.points_per_sec = static_cast<double>(points) / r.seconds;
  return r;
}

/// Best (fastest) of `reps` timed passes. `make_pass` runs any untimed
/// per-rep setup (e.g. constructing a fresh sweep cache) and returns the
/// closure to time; the labelling output is deterministic, so reps are
/// byte-for-byte repeats and min is a pure noise filter.
template <typename MakePass>
Record best_of(const std::string& case_name, const std::string& mode, std::size_t points,
               std::int64_t reps, const MakePass& make_pass) {
  Record best;
  for (std::int64_t r = 0; r < reps; ++r) {
    const Record rec = timed(case_name, mode, points, make_pass());
    if (r == 0 || rec.seconds < best.seconds) best = rec;
  }
  return best;
}

void require_equal_labels(const std::string& case_name, const std::vector<int>& naive,
                          const std::vector<int>& cached) {
  for (std::size_t i = 0; i < naive.size(); ++i) {
    if (naive[i] != cached[i]) {
      std::cerr << case_name << ": label mismatch at point " << i << " (naive " << naive[i]
                << ", cached " << cached[i] << ")\n";
      std::exit(1);
    }
  }
}

std::string json_escape_free_number(double v) {
  std::ostringstream os;
  os << std::setprecision(10) << v;
  return os.str();
}

/// Duplicate-aware sampling: with probability `dup` re-draw from `pool`;
/// otherwise take `fresh()` and (pool-capacity permitting) remember it.
/// Matches the draw_workload mix in tests/test_sweep_cache.cpp.
template <typename T, typename FreshFn>
T draw_mixed(Rng& rng, double dup, std::vector<T>& pool, const FreshFn& fresh) {
  if (!pool.empty() && rng.uniform() < dup) {
    return pool[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(pool.size()) - 1))];
  }
  T v = fresh();
  if (pool.size() < 64) pool.push_back(v);
  return v;
}

struct SnapshotRecord {
  std::string case_name;
  std::size_t points = 0;
  double cold_seconds = 0.0;
  double warm_seconds = 0.0;
};

struct WriterRecord {
  std::size_t points = 0;
  double csv_seconds = 0.0;
  double binary_seconds = 0.0;
};

double elapsed_since(const std::chrono::steady_clock::time_point& t0) {
  return std::max(
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count(), 1e-9);
}

void require_identical_datasets(const std::string& case_name, const Dataset& cold,
                                const Dataset& warm) {
  bool same = cold.size() == warm.size();
  for (std::size_t i = 0; same && i < cold.size(); ++i) {
    same = cold[i].features == warm[i].features && cold[i].label == warm[i].label;
  }
  if (!same) {
    std::cerr << case_name << ": warm-snapshot dataset differs from cold run\n";
    std::exit(1);
  }
}

/// Cold-vs-warm snapshot pass for one case study: a full generate() on a
/// fresh study, snapshot save, then the same generate() on another fresh
/// study pre-warmed from the snapshot. Exits on any label divergence, so a
/// reported speedup always certifies bit-identical output.
SnapshotRecord bench_snapshot(CaseId id, const std::string& case_name, std::size_t points,
                              std::uint64_t seed, const std::string& tmp_path) {
  SnapshotRecord rec;
  rec.case_name = case_name;
  rec.points = points;

  const auto cold_study = make_case_study(id);
  const auto t0 = std::chrono::steady_clock::now();
  const Dataset cold = cold_study->generate(points, seed);
  rec.cold_seconds = elapsed_since(t0);
  (void)cold_study->save_cache_snapshot(tmp_path);

  const auto warm_study = make_case_study(id);
  (void)warm_study->load_cache_snapshot(tmp_path);
  const auto t1 = std::chrono::steady_clock::now();
  const Dataset warm = warm_study->generate(points, seed);
  rec.warm_seconds = elapsed_since(t1);

  require_identical_datasets(case_name, cold, warm);
  std::remove(tmp_path.c_str());
  return rec;
}

/// CSV writer vs binary writer on one synthetic dataset (writer cost does
/// not depend on how labels were computed, so features are just random).
WriterRecord bench_writer(std::size_t points, std::int64_t reps, std::uint64_t seed,
                          const std::string& tmp_prefix) {
  Rng rng(seed);
  Dataset ds({"limit_kb", "M", "N", "K", "rows", "cols", "dataflow", "bandwidth"}, 1000);
  ds.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    DataPoint p;
    for (int f = 0; f < 8; ++f) p.features.push_back(rng.uniform_int(1, 1 << 20));
    p.label = static_cast<std::int32_t>(rng.uniform_int(0, 999));
    ds.add(std::move(p));
  }

  WriterRecord rec;
  rec.points = points;
  const std::string csv_path = tmp_prefix + ".w.csv";
  const std::string bin_path = tmp_prefix + ".w.bin";
  for (std::int64_t r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    ds.save_csv(csv_path);
    const double csv_s = elapsed_since(t0);
    if (r == 0 || csv_s < rec.csv_seconds) rec.csv_seconds = csv_s;

    const auto t1 = std::chrono::steady_clock::now();
    write_binary_dataset(ds, bin_path);
    const double bin_s = elapsed_since(t1);
    if (r == 0 || bin_s < rec.binary_seconds) rec.binary_seconds = bin_s;
  }
  // Round-trip sanity before the files go away: the binary file must read
  // back bit-exact.
  require_identical_datasets("writer", ds, read_binary_dataset(bin_path));
  std::remove(csv_path.c_str());
  std::remove(bin_path.c_str());
  return rec;
}

void emit_json(const std::string& path, const std::vector<Record>& records,
               const std::vector<SnapshotRecord>& snapshots, const WriterRecord& writer,
               std::int64_t threads, std::int64_t reps, double dup) {
  std::ostringstream os;
  os << "{\n  \"bench\": \"dataset_throughput\",\n  \"threads\": " << threads
     << ",\n  \"reps\": " << reps
     << ",\n  \"dup_fraction\": " << json_escape_free_number(dup) << ",\n  \"results\": [\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const Record& r = records[i];
    os << "    {\"case\": \"" << r.case_name << "\", \"mode\": \"" << r.mode
       << "\", \"points\": " << r.points << ", \"seconds\": "
       << json_escape_free_number(r.seconds)
       << ", \"points_per_sec\": " << json_escape_free_number(r.points_per_sec)
       << ", \"threads\": " << threads << "}" << (i + 1 < records.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"speedup\": {";
  bool first = true;
  for (std::size_t i = 0; i + 1 < records.size(); i += 2) {
    const Record& naive = records[i];
    const Record& cached = records[i + 1];
    os << (first ? "" : ", ") << "\"" << naive.case_name
       << "\": " << json_escape_free_number(cached.points_per_sec / naive.points_per_sec);
    first = false;
  }
  os << "},\n  \"snapshot\": [\n";
  for (std::size_t i = 0; i < snapshots.size(); ++i) {
    const SnapshotRecord& s = snapshots[i];
    // A reported record implies the cold/warm datasets compared equal —
    // bench_snapshot exits before emitting otherwise.
    os << "    {\"case\": \"" << s.case_name << "\", \"points\": " << s.points
       << ", \"cold_seconds\": " << json_escape_free_number(s.cold_seconds)
       << ", \"warm_seconds\": " << json_escape_free_number(s.warm_seconds)
       << ", \"speedup\": " << json_escape_free_number(s.cold_seconds / s.warm_seconds)
       << ", \"labels_bit_identical\": true}" << (i + 1 < snapshots.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"writer\": {\"points\": " << writer.points
     << ", \"csv_seconds\": " << json_escape_free_number(writer.csv_seconds)
     << ", \"binary_seconds\": " << json_escape_free_number(writer.binary_seconds)
     << ", \"speedup\": " << json_escape_free_number(writer.csv_seconds / writer.binary_seconds)
     << "}\n}\n";
  std::ofstream out(path);
  out << os.str();
  std::cout << os.str();
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args("bench_dataset_throughput",
                 "labelling throughput, naive exhaustive vs sweep-cache accelerated");
  args.flag_i64("points", 10000, "points to label per case study");
  args.flag_i64("threads", 4, "worker threads (pins AIRCH_THREADS)");
  args.flag_i64("reps", 3, "timed passes per mode; the fastest is reported");
  args.flag_f64("dup", 0.3, "probability a point's cache-key features repeat from a 64-entry pool");
  args.flag_i64("seed", 42, "RNG seed for input sampling");
  args.flag_i64("snapshot-points", 0, "points for the cold-vs-warm snapshot section (0 = --points)");
  args.flag_i64("writer-points", 0, "points for the CSV-vs-binary writer section (0 = --points)");
  args.flag_str("out", "BENCH_dataset.json", "output JSON path");
  args.parse(argc, argv);

  const auto n = static_cast<std::size_t>(args.i64("points"));
  const std::int64_t reps = std::max<std::int64_t>(1, args.i64("reps"));
  const std::int64_t threads = args.i64("threads");
  const auto workers = static_cast<unsigned>(threads);
  const double dup = args.f64("dup");
  const auto seed = static_cast<std::uint64_t>(args.i64("seed"));
  // Pin the auto-sized parallel_for to the requested width so "cached" and
  // "naive" modes use the same number of workers.
  setenv("AIRCH_THREADS", std::to_string(threads).c_str(), 1);

  const Simulator sim;
  std::vector<Record> records;

  // ------------------------------------------------------------- case 1
  {
    const ArrayDataflowSpace space;
    const Case1Config cfg;
    Rng rng(seed);
    LogUniformGemmSampler sampler(cfg.dims);
    std::vector<Case1Features> inputs(n);
    std::vector<GemmWorkload> pool;  // case-1 cache key: the workload
    for (auto& in : inputs) {
      in.budget_exp = static_cast<int>(rng.uniform_int(cfg.budget_min_exp, cfg.budget_max_exp));
      in.workload = draw_mixed(rng, dup, pool, [&] { return sampler.sample(rng); });
    }

    std::vector<int> naive_labels(n), cached_labels(n);
    const ArrayDataflowSearch naive(space, sim);
    records.push_back(best_of("case1", "naive", n, reps, [&] {
      return [&] {
        parallel_for(n, workers, [&](std::size_t b, std::size_t e) {
          for (std::size_t i = b; i < e; ++i) {
            naive_labels[i] = naive.best(inputs[i].workload, inputs[i].budget_exp).label;
          }
        });
      };
    }));
    records.push_back(best_of("case1", "cached", n, reps, [&] {
      auto cache = std::make_shared<Case1SweepCache>(space, sim, n);
      return [&, cache] {
        parallel_for(n, [&, cache](std::size_t b, std::size_t e) {
          for (std::size_t i = b; i < e; ++i) {
            // Same lookahead prefetch (and global-count clamp) the dataset
            // generator uses.
            if (i + 8 < n) cache->prefetch(inputs[i + 8].workload);
            cached_labels[i] = cache->best(inputs[i].workload, inputs[i].budget_exp).label;
          }
        });
      };
    }));
    require_equal_labels("case1", naive_labels, cached_labels);
  }

  // ------------------------------------------------------------- case 2
  {
    const BufferSizeSpace space;
    const Case2Config cfg;
    Rng rng(seed);
    LogUniformGemmSampler sampler(cfg.dims);
    std::vector<Case2Features> inputs(n);
    // The case-2 cache key is (workload, array, bandwidth); the duplicate
    // pool carries that whole tuple. The capacity limit is NOT part of the
    // key — a repeated tuple with a fresh limit still hits the same table,
    // which is exactly the reuse the prefix-argmin layout exists for.
    std::vector<Case2Features> pool;
    for (auto& in : inputs) {
      in = draw_mixed(rng, dup, pool, [&] {
        Case2Features f;
        f.workload = sampler.sample(rng);
        const int macs_exp =
            static_cast<int>(rng.uniform_int(cfg.array_macs_min_exp, cfg.array_macs_max_exp));
        const int row_exp = static_cast<int>(rng.uniform_int(1, macs_exp - 1));
        f.array.rows = std::int64_t{1} << row_exp;
        f.array.cols = std::int64_t{1} << (macs_exp - row_exp);
        f.array.dataflow = dataflow_from_index(static_cast<int>(rng.uniform_int(0, 2)));
        f.bandwidth = rng.uniform_int(cfg.bw_min, cfg.bw_max);
        return f;
      });
      const std::int64_t steps_min = cfg.limit_min_kb / space.step_kb();
      const std::int64_t steps_max = cfg.limit_max_kb / space.step_kb();
      in.limit_kb = rng.uniform_int(steps_min, steps_max) * space.step_kb();
    }

    std::vector<int> naive_labels(n), cached_labels(n);
    const BufferSearch naive(space, sim);
    records.push_back(best_of("case2", "naive", n, reps, [&] {
      return [&] {
        parallel_for(n, workers, [&](std::size_t b, std::size_t e) {
          for (std::size_t i = b; i < e; ++i) {
            const auto& in = inputs[i];
            naive_labels[i] = naive.best(in.workload, in.array, in.bandwidth, in.limit_kb).label;
          }
        });
      };
    }));
    records.push_back(best_of("case2", "cached", n, reps, [&] {
      auto cache = std::make_shared<Case2SweepCache>(space, sim);
      return [&, cache] {
        parallel_for(n, [&, cache](std::size_t b, std::size_t e) {
          for (std::size_t i = b; i < e; ++i) {
            const auto& in = inputs[i];
            cached_labels[i] =
                cache->best(in.workload, in.array, in.bandwidth, in.limit_kb).label;
          }
        });
      };
    }));
    require_equal_labels("case2", naive_labels, cached_labels);
  }

  // ------------------------------------------------------------- case 3
  {
    const ScheduleSpace space;
    const Case3Config cfg;
    Rng rng(seed);
    LogUniformGemmSampler sampler(cfg.dims);
    std::vector<std::vector<GemmWorkload>> inputs(n);
    // Two duplicate granularities, matching the cache's two memo levels:
    // whole vectors repeat (level-2 memo hits) and, within fresh vectors,
    // individual workloads repeat (level-1 per-workload simulation hits).
    std::vector<std::vector<GemmWorkload>> vec_pool;
    std::vector<GemmWorkload> wl_pool;
    for (auto& in : inputs) {
      in = draw_mixed(rng, dup, vec_pool, [&] {
        std::vector<GemmWorkload> wls;
        for (int a = 0; a < space.num_arrays(); ++a) {
          wls.push_back(draw_mixed(rng, dup, wl_pool, [&] { return sampler.sample(rng); }));
        }
        return wls;
      });
    }

    std::vector<int> naive_labels(n), cached_labels(n);
    const ScheduleSearch naive(space, default_scheduled_arrays(), sim);
    records.push_back(best_of("case3", "naive", n, reps, [&] {
      return [&] {
        parallel_for(n, workers, [&](std::size_t b, std::size_t e) {
          for (std::size_t i = b; i < e; ++i) naive_labels[i] = naive.best(inputs[i]).label;
        });
      };
    }));
    records.push_back(best_of("case3", "cached", n, reps, [&] {
      auto cache = std::make_shared<Case3SweepCache>(naive);
      return [&, cache] {
        parallel_for(n, [&, cache](std::size_t b, std::size_t e) {
          for (std::size_t i = b; i < e; ++i) cached_labels[i] = cache->best(inputs[i]).label;
        });
      };
    }));
    require_equal_labels("case3", naive_labels, cached_labels);
  }

  // ------------------------------------------- snapshot + writer sections
  const auto snap_n = args.i64("snapshot-points") > 0
                          ? static_cast<std::size_t>(args.i64("snapshot-points"))
                          : n;
  const auto writer_n = args.i64("writer-points") > 0
                            ? static_cast<std::size_t>(args.i64("writer-points"))
                            : n;
  std::vector<SnapshotRecord> snapshots;
  snapshots.push_back(
      bench_snapshot(CaseId::kArrayDataflow, "case1", snap_n, seed, args.str("out") + ".case1.snap"));
  snapshots.push_back(
      bench_snapshot(CaseId::kBufferSizing, "case2", snap_n, seed, args.str("out") + ".case2.snap"));
  snapshots.push_back(
      bench_snapshot(CaseId::kScheduling, "case3", snap_n, seed, args.str("out") + ".case3.snap"));
  const WriterRecord writer = bench_writer(writer_n, reps, seed, args.str("out"));

  emit_json(args.str("out"), records, snapshots, writer, threads, reps, dup);
  return 0;
}
