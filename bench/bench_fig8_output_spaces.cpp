// Reproduces paper Fig. 8: the quantized input/output spaces of the three
// case studies, including the exact space sizes the paper reports
// (459 / 1000 / 1944) and the first/last rows of each label table.

#include <iostream>

#include "common/table.hpp"
#include "search/space.hpp"

using namespace airch;

int main() {
  // ---------------------------------------------------- Fig. 8(a)
  std::cout << "=== Fig. 8(a): input spaces ===\n";
  AsciiTable ta({"case study", "input dims", "parameters"});
  ta.add_row({"1 (array+dataflow)", "4", "budget_exp, M, N, K"});
  ta.add_row({"2 (buffer sizing)", "8",
              "limit_kb, M, N, K, rows, cols, dataflow, bandwidth"});
  ta.add_row({"3 (scheduling)", "12", "M,N,K per workload x 4"});
  ta.print(std::cout);

  // ---------------------------------------------------- Fig. 8(b)
  const ArrayDataflowSpace s1(18);
  std::cout << "\n=== Fig. 8(b): array/dataflow space, size = " << s1.size()
            << " (paper: 459) ===\n";
  AsciiTable tb({"id", "rows", "cols", "dataflow"});
  for (int id : {0, 1, 2, 3, s1.size() - 1}) {
    const ArrayConfig& c = s1.config(id);
    tb.add_row({std::to_string(id), std::to_string(c.rows), std::to_string(c.cols),
                to_string(c.dataflow)});
  }
  tb.print(std::cout);

  // ---------------------------------------------------- Fig. 8(c)
  const BufferSizeSpace s2;
  std::cout << "\n=== Fig. 8(c): buffer-size space, size = " << s2.size()
            << " (paper: 1000) ===\n";
  AsciiTable tc({"id", "IFMAP KB", "Filter KB", "OFMAP KB"});
  for (int id : {0, 1, 2, 3, s2.size() - 1}) {
    const MemoryConfig m = s2.config(id);
    tc.add_row({std::to_string(id), std::to_string(m.ifmap_kb), std::to_string(m.filter_kb),
                std::to_string(m.ofmap_kb)});
  }
  tc.print(std::cout);

  // ---------------------------------------------------- Fig. 8(d)
  const ScheduleSpace s3(4);
  std::cout << "\n=== Fig. 8(d): schedule space, size = " << s3.size()
            << " (paper: 1944) ===\n";
  AsciiTable td({"id", "wl@arr0", "df0", "wl@arr1", "df1", "wl@arr2", "df2", "wl@arr3", "df3"});
  for (int id : {0, 1, 2, 3, s3.size() - 1}) {
    const auto s = s3.config(id);
    td.add_row({std::to_string(id), std::to_string(s.workload_of[0]),
                to_string(s.dataflow_of[0]), std::to_string(s.workload_of[1]),
                to_string(s.dataflow_of[1]), std::to_string(s.workload_of[2]),
                to_string(s.dataflow_of[2]), std::to_string(s.workload_of[3]),
                to_string(s.dataflow_of[3])});
  }
  td.print(std::cout);

  const bool ok = s1.size() == 459 && s2.size() == 1000 && s3.size() == 1944;
  std::cout << "\nSpace sizes match the paper: " << (ok ? "YES" : "NO") << '\n';
  return ok ? 0 : 1;
}
