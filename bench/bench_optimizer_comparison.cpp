// Three optimizer families on the same queries (the landscape the paper's
// related-work section draws): exhaustive simulate-and-search, ML-guided
// search (genetic algorithm, the GAMMA/ConfuciuX family), and AIrchitect's
// constant-time learned inference. Reports solution quality (normalized to
// the exhaustive optimum) and cost-model evaluations per query.
//
// Expected shape: exhaustive = 1.0 quality at full evaluation cost; GA
// near-1.0 at a fraction of the evaluations; AIrchitect near-1.0 at ZERO
// per-query evaluations (after one-off offline training).

#include <iostream>

#include "common/cli.hpp"
#include "common/math_utils.hpp"
#include "common/table.hpp"
#include "core/recommender.hpp"
#include "search/annealing.hpp"
#include "search/genetic.hpp"
#include "search/reinforce.hpp"
#include "workload/sampler.hpp"

using namespace airch;

int main(int argc, char** argv) {
  ArgParser args("bench_optimizer_comparison", "exhaustive vs GA vs learned inference");
  args.flag_i64("queries", 200, "number of fresh design queries");
  args.flag_i64("points", 40000, "AIrchitect offline training dataset size");
  args.flag_i64("epochs", 10, "AIrchitect training epochs");
  args.flag_i64("seed", 13, "RNG seed");
  args.parse(argc, argv);
  const auto seed = static_cast<std::uint64_t>(args.i64("seed"));
  const auto queries = static_cast<std::size_t>(args.i64("queries"));

  // --------------------------------------------------------- case 1
  {
    std::cout << "=== Case study 1: array shape + dataflow (budget 2^10) ===\n";
    ArrayDataflowStudy study;
    const ArrayDataflowSearch exhaustive(study.space(), study.simulator());
    const GaArrayDataflowSearch ga(study.space(), study.simulator());
    const ReinforceArrayDataflowSearch rl(study.space(), study.simulator());
    const AnnealingArrayDataflowSearch sa(study.space(), study.simulator());

    Recommender::TrainOptions topts;
    topts.dataset_size = static_cast<std::size_t>(args.i64("points"));
    topts.epochs = static_cast<int>(args.i64("epochs"));
    topts.seed = seed;
    std::cerr << "[cmp] training AIrchitect (offline, once)...\n";
    const Recommender rec = Recommender::train(study, topts);

    Rng rng(seed);
    const LogUniformGemmSampler sampler;
    std::vector<double> ga_quality, rl_quality, sa_quality, ml_quality, topk_quality;
    std::size_t ga_evals = 0, rl_evals = 0, sa_evals = 0;
    const std::size_t exhaustive_evals = study.space().labels_within_budget(10).size();
    for (std::size_t q = 0; q < queries; ++q) {
      const GemmWorkload w = sampler.sample(rng);
      const auto opt = exhaustive.best(w, 10);

      GaOptions gopts;
      gopts.seed = seed + q;
      const auto g = ga.best(w, 10, gopts);
      ga_evals += g.evaluations;
      ga_quality.push_back(opt.cycles / g.cycles);

      ReinforceOptions ropts;
      ropts.seed = seed + q;
      const auto r = rl.best(w, 10, ropts);
      rl_evals += r.evaluations;
      rl_quality.push_back(opt.cycles / r.cycles);

      AnnealingOptions sopts;
      sopts.steps = 100;
      sopts.seed = seed + q;
      const auto s = sa.best(w, 10, sopts);
      sa_evals += s.evaluations;
      sa_quality.push_back(opt.cycles / s.cycles);

      const ArrayConfig pred = rec.recommend_array(w, 10);
      Cycles pred_cycles = study.simulator().compute_cycles(w, pred);
      const MacCount budget{pow2(10)};
      if (pred.macs() > budget) pred_cycles *= ceil_div(pred.macs(), budget);
      ml_quality.push_back(std::min(1.0, opt.cycles / pred_cycles));

      // Hybrid: top-5 inference candidates re-ranked by 5 simulations.
      const auto top5 = rec.recommend_topk({10, w.m, w.n, w.k}, 5);
      Cycles best5{std::numeric_limits<std::int64_t>::max()};
      for (auto label : top5) {
        const ArrayConfig c = study.space().config(label);
        Cycles cyc = study.simulator().compute_cycles(w, c);
        if (c.macs() > budget) cyc *= ceil_div(c.macs(), budget);
        best5 = std::min(best5, cyc);
      }
      topk_quality.push_back(std::min(1.0, opt.cycles / best5));
    }

    AsciiTable t({"optimizer", "geomean quality", "evals/query"});
    t.add_row({"exhaustive search", "1.000", std::to_string(exhaustive_evals)});
    t.add_row({"genetic algorithm", AsciiTable::fmt(geomean(ga_quality), 3),
               std::to_string(ga_evals / queries)});
    t.add_row({"REINFORCE", AsciiTable::fmt(geomean(rl_quality), 3),
               std::to_string(rl_evals / queries)});
    t.add_row({"simulated annealing", AsciiTable::fmt(geomean(sa_quality), 3),
               std::to_string(sa_evals / queries)});
    t.add_row({"AIrchitect (top-1)", AsciiTable::fmt(geomean(ml_quality), 3), "0"});
    t.add_row({"AIrchitect (top-5 + rerank)", AsciiTable::fmt(geomean(topk_quality), 3), "5"});
    t.print(std::cout);
    std::cout << '\n';
  }

  // --------------------------------------------------------- case 3
  {
    std::cout << "=== Case study 3: multi-array scheduling ===\n";
    SchedulingStudy study;
    const auto& exhaustive = study.search();
    const GaScheduleSearch ga(study.space(), exhaustive.arrays(), study.simulator());

    Recommender::TrainOptions topts;
    topts.dataset_size = static_cast<std::size_t>(args.i64("points")) / 5;
    topts.epochs = static_cast<int>(args.i64("epochs"));
    topts.seed = seed;
    std::cerr << "[cmp] training scheduling recommender (offline, once)...\n";
    const Recommender rec = Recommender::train(study, topts);

    Rng rng(seed + 1);
    const LogUniformGemmSampler sampler;
    std::vector<double> ga_quality, ml_quality;
    std::size_t ga_evals = 0;
    const std::size_t sched_queries = std::min<std::size_t>(queries, 100);
    for (std::size_t q = 0; q < sched_queries; ++q) {
      const auto workloads = sampler.sample_many(rng, 4);
      const auto opt = exhaustive.best(workloads);

      GaOptions gopts;
      gopts.seed = seed + q;
      const auto g = ga.best(workloads, gopts);
      ga_evals += g.evaluations;
      ga_quality.push_back(opt.makespan_cycles / g.makespan_cycles);

      const auto sched = rec.recommend_schedule(workloads);
      const auto pred = exhaustive.evaluate(workloads, study.space().label_of(sched));
      ml_quality.push_back(opt.makespan_cycles / pred.makespan_cycles);
    }

    AsciiTable t({"optimizer", "geomean quality", "evals/query"});
    t.add_row({"exhaustive search", "1.000", std::to_string(study.space().size())});
    t.add_row({"genetic algorithm", AsciiTable::fmt(geomean(ga_quality), 3),
               std::to_string(ga_evals / sched_queries)});
    t.add_row({"AIrchitect (top-1)", AsciiTable::fmt(geomean(ml_quality), 3), "0"});
    t.print(std::cout);
  }
  std::cout << "\nPaper framing: search methods pay per-query simulation cost forever;\n"
               "the learned optimizer amortizes one offline dataset+training pass into\n"
               "constant-time queries (Fig. 1(b)).\n";
  return 0;
}
