// The paper's motivating claim (Fig. 1): a trained recommender answers a
// design query in constant time, versus the conventional flow's
// simulate-and-search pass over the whole output space. This
// google-benchmark binary measures both paths:
//
//   BM_SearchCase1  — exhaustive search over 459 array/dataflow configs
//   BM_SearchCase2  — exhaustive search over 1000 buffer configs
//   BM_SearchCase3  — exhaustive search over 1944 schedules
//   BM_InferCase1/3 — one AIrchitect inference (constant, workload-independent)
//
// Expected shape: inference latency is flat across workloads and output
// spaces; search latency scales with the space size.

#include <benchmark/benchmark.h>

#include <iostream>

#include "core/recommender.hpp"
#include "search/exhaustive.hpp"
#include "workload/sampler.hpp"

using namespace airch;

namespace {

GemmWorkload workload_for(std::int64_t i) {
  Rng rng(static_cast<std::uint64_t>(i) + 1);
  return LogUniformGemmSampler{}.sample(rng);
}

void BM_SearchCase1(benchmark::State& state) {
  const ArrayDataflowSpace space(18);
  const Simulator sim;
  const ArrayDataflowSearch search(space, sim);
  const GemmWorkload w = workload_for(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(search.best(w, 18).label);
  }
}
BENCHMARK(BM_SearchCase1)->Arg(1)->Arg(2)->Arg(3);

void BM_SearchCase2(benchmark::State& state) {
  const BufferSizeSpace space;
  const Simulator sim;
  const BufferSearch search(space, sim);
  const GemmWorkload w = workload_for(state.range(0));
  const ArrayConfig a{32, 32, Dataflow::kWeightStationary};
  for (auto _ : state) {
    benchmark::DoNotOptimize(search.best(w, a, 10, 1000).label);
  }
}
BENCHMARK(BM_SearchCase2)->Arg(1)->Arg(2);

void BM_SearchCase3(benchmark::State& state) {
  const ScheduleSpace space(4);
  const Simulator sim;
  const ScheduleSearch search(space, default_scheduled_arrays(), sim);
  Rng rng(static_cast<std::uint64_t>(state.range(0)));
  const auto workloads = LogUniformGemmSampler{}.sample_many(rng, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(search.best(workloads).label);
  }
}
BENCHMARK(BM_SearchCase3)->Arg(1)->Arg(2);

// Shared tiny recommender: the point is inference latency, not accuracy,
// so a minimal training run keeps benchmark startup fast.
const Recommender& case1_recommender() {
  static const Recommender rec = [] {
    static const ArrayDataflowStudy study;
    Recommender::TrainOptions opts;
    opts.dataset_size = 2000;
    opts.epochs = 2;
    return Recommender::train(study, opts);
  }();
  return rec;
}

const Recommender& case3_recommender() {
  static const Recommender rec = [] {
    static const SchedulingStudy study;
    Recommender::TrainOptions opts;
    opts.dataset_size = 500;
    opts.epochs = 2;
    return Recommender::train(study, opts);
  }();
  return rec;
}

void BM_InferCase1(benchmark::State& state) {
  const Recommender& rec = case1_recommender();
  const GemmWorkload w = workload_for(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(rec.recommend_array(w, 18).rows);
  }
}
BENCHMARK(BM_InferCase1)->Arg(1)->Arg(2)->Arg(3);

// Batched serving: recommend_batch answers N queries in ONE packed
// forward pass. Per-query cost should fall sharply with batch size as the
// matmul kernel amortizes packing and the per-call network overhead
// (items_per_second is the comparable per-query rate).
void BM_InferBatched(benchmark::State& state) {
  const Recommender& rec = case1_recommender();
  const auto batch = static_cast<std::size_t>(state.range(0));
  Rng rng(7);
  LogUniformGemmSampler sampler;
  std::vector<std::vector<std::int64_t>> queries(batch);
  for (auto& q : queries) {
    const GemmWorkload w = sampler.sample(rng);
    q = {18, w.m, w.n, w.k};
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(rec.recommend_batch(queries).front());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_InferBatched)->Arg(1)->Arg(16)->Arg(256);

void BM_InferCase3(benchmark::State& state) {
  const Recommender& rec = case3_recommender();
  Rng rng(static_cast<std::uint64_t>(state.range(0)));
  const auto workloads = LogUniformGemmSampler{}.sample_many(rng, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rec.recommend_schedule(workloads).workload_of[0]);
  }
}
BENCHMARK(BM_InferCase3)->Arg(1)->Arg(2);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  std::cout
      << "\nInterpretation note: this reproduction's cost model is ANALYTICAL\n"
         "(tens of ns per config), so exhaustive search over a few hundred\n"
         "configs can rival one NN inference in wall-clock. The paper's cost\n"
         "model is SCALE-Sim (~ms-seconds per config): scale the BM_Search*\n"
         "rows by ~1e5-1e8 to model that regime — per-query evaluation counts\n"
         "(459 / 1000 / 1944 vs 0) are the substrate-independent comparison;\n"
         "see bench_optimizer_comparison and EXPERIMENTS.md.\n";
  return 0;
}
