// Ablations of AIRCHITECT's design choices (DESIGN.md "worth ablating"):
//   1. Embedding front-end vs raw standardized-float MLP input — the
//      paper's explanation for the MLP-B vs AIRCHITECT gap (Fig. 9).
//   2. Embedding width (4 / 8 / 16 / 32).
//   3. Input quantization granularity (feature vocab 8 / 16 / 32 / 64).
//   4. Dataset size (learning curve).
// All runs on case study 1 with a shared test split.

#include <iostream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/pipeline.hpp"
#include "models/neural.hpp"
#include "search/exhaustive.hpp"
#include "workload/sampler.hpp"

using namespace airch;

namespace {

/// Runs one variant and returns test accuracy.
double run_variant(const ArrayDataflowStudy& study, const Dataset& data,
                   NeuralClassifier::Options o, const std::string& name) {
  std::cerr << "[ablation] " << name << "...\n";
  NeuralClassifier clf(name, o);
  ExperimentOptions opts;
  opts.score_performance = false;
  return run_experiment(study, clf, data, opts).test_accuracy;
}

/// run_experiment with a custom encoder vocabulary (ablation 3 needs to
/// control FeatureEncoder's max_vocab, which the pipeline fixes at its
/// default — so this variant re-implements the split inline).
double run_vocab_variant(const ArrayDataflowStudy& study, const Dataset& data, int max_vocab,
                         int epochs, std::uint64_t seed) {
  std::cerr << "[ablation] vocab=" << max_vocab << "...\n";
  (void)study;
  Dataset shuffled = data;
  Rng rng(7);
  shuffled.shuffle(rng);
  auto splits = shuffled.split3(0.8, 0.1);
  const FeatureEncoder enc(splits.train, max_vocab);
  auto clf = make_airchitect(seed, epochs);
  clf->fit(splits.train, splits.val, enc);
  return clf->accuracy(splits.test, enc);
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args("bench_ablation", "AIRCHITECT design-choice ablations (case study 1)");
  args.flag_i64("points", 20000, "dataset size for ablations 1-3");
  args.flag_i64("epochs", 8, "training epochs");
  args.flag_i64("seed", 8, "RNG seed");
  args.parse(argc, argv);
  const auto seed = static_cast<std::uint64_t>(args.i64("seed"));
  const int epochs = static_cast<int>(args.i64("epochs"));

  const ArrayDataflowStudy study;
  std::cerr << "[ablation] generating " << args.i64("points") << " points...\n";
  const Dataset data = study.generate(static_cast<std::size_t>(args.i64("points")), seed);

  // ---------------------------------------------------- 1 + 2: embedding
  std::cout << "=== Ablation 1+2: input front-end (embed_dim 0 = raw float MLP) ===\n";
  AsciiTable t1({"embed_dim", "test acc"});
  for (std::size_t dim : {0u, 4u, 8u, 16u, 32u}) {
    NeuralClassifier::Options o;
    o.hidden = {256};
    o.embed_dim = dim;
    o.epochs = epochs;
    o.seed = seed;
    const double acc = run_variant(study, data, o, "embed" + std::to_string(dim));
    t1.add_row({dim == 0 ? "none (MLP-B)" : std::to_string(dim),
                AsciiTable::fmt(100.0 * acc, 1) + "%"});
  }
  t1.print(std::cout);
  std::cout << "Expected: the embedding front-end beats the raw MLP (the paper's\n"
               "AIrchitect-vs-MLP-B gap); width saturates around 16.\n\n";

  // ---------------------------------------------------- 3: quantization
  std::cout << "=== Ablation 3: input quantization granularity ===\n";
  AsciiTable t3({"max vocab / column", "test acc"});
  for (int vocab : {8, 16, 32, 64}) {
    const double acc = run_vocab_variant(study, data, vocab, epochs, seed);
    t3.add_row({std::to_string(vocab), AsciiTable::fmt(100.0 * acc, 1) + "%"});
  }
  t3.print(std::cout);
  std::cout << "Expected: too-coarse buckets blur decision boundaries; accuracy grows\n"
               "with vocabulary then saturates.\n\n";

  // ---------------------------------------------------- 4: dataset size
  std::cout << "=== Ablation 4: learning curve (dataset size) ===\n";
  AsciiTable t4({"points", "test acc"});
  for (std::int64_t n : {2000, 8000, 30000}) {
    std::cerr << "[ablation] n=" << n << "...\n";
    const Dataset d = study.generate(static_cast<std::size_t>(n), seed + 100);
    auto clf = make_airchitect(seed, epochs);
    ExperimentOptions opts;
    opts.score_performance = false;
    const double acc = run_experiment(study, *clf, d, opts).test_accuracy;
    t4.add_row({std::to_string(n), AsciiTable::fmt(100.0 * acc, 1) + "%"});
  }
  t4.print(std::cout);
  std::cout << "Expected: monotone improvement — the paper's 94% needs millions of\n"
               "points; this curve shows the trajectory.\n\n";

  // ---------------------------------------------------- 5: objectives
  // Extension experiment (paper future work: "other design spaces"):
  // how the optimal design shifts when the search objective changes from
  // runtime to energy to EDP.
  std::cout << "=== Ablation 5: search objective (runtime vs energy vs EDP) ===\n";
  {
    const ArrayDataflowSearch search(study.space(), study.simulator());
    const ObjectiveEvaluator eval(study.simulator());
    Rng rng(seed + 5);
    const LogUniformGemmSampler sampler;
    const std::size_t nq = 2000;
    AsciiTable t5({"objective", "OS", "WS", "IS", "mean MACs used", "agrees with runtime"});
    for (Objective obj : {Objective::kRuntime, Objective::kEnergy, Objective::kEdp}) {
      Rng obj_rng(seed + 6);  // same workloads for every objective
      int df[3] = {0, 0, 0};
      double macs_sum = 0.0;
      int agree = 0;
      for (std::size_t q = 0; q < nq; ++q) {
        const GemmWorkload w = sampler.sample(obj_rng);
        const auto best = search.best_with_objective(w, 10, eval, obj);
        const ArrayConfig& c = study.space().config(best.label);
        ++df[dataflow_index(c.dataflow)];
        macs_sum += static_cast<double>(c.macs().value());
        if (best.label == search.best(w, 10).label) ++agree;
      }
      t5.add_row({to_string(obj), AsciiTable::fmt(100.0 * df[0] / nq, 0) + "%",
                  AsciiTable::fmt(100.0 * df[1] / nq, 0) + "%",
                  AsciiTable::fmt(100.0 * df[2] / nq, 0) + "%",
                  AsciiTable::fmt(macs_sum / nq, 0),
                  AsciiTable::fmt(100.0 * agree / nq, 0) + "%"});
    }
    t5.print(std::cout);
    std::cout << "Expected: energy-optimal designs use fewer MACs (less fill/drain waste,\n"
                 "less SRAM streaming) and shift the dataflow mix; EDP sits between.\n";
    (void)rng;
  }
  return 0;
}
