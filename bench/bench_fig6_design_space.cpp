// Reproduces paper Fig. 6: correlations that make the design space
// learnable.
//  (a-c) Optimal dataflow vs the aspect ratio of each operand matrix
//        (IFMAP M:K, Filter K:N, OFMAP M:N).
//  (d-f) Optimal buffer sizes vs dataflow (the stationary operand needs a
//        small buffer) and vs output size (larger outputs -> smaller
//        OFMAP buffers).
//  (g)   Cluster structure in schedule space: identical workload-size
//        orderings map to a small set of schedule labels.

#include <algorithm>
#include <cmath>
#include <iostream>
#include <map>

#include "common/cli.hpp"
#include "common/math_utils.hpp"
#include "common/parallel.hpp"
#include "common/table.hpp"
#include "dataset/generator.hpp"
#include "search/exhaustive.hpp"
#include "workload/sampler.hpp"

using namespace airch;

namespace {

/// log2 ratio bucket label, e.g. "[2^-1,2^0)".
std::string ratio_bucket(double ratio) {
  const int b = static_cast<int>(std::floor(std::log2(ratio)));
  const int clamped = std::clamp(b, -6, 5);
  return "2^" + std::to_string(clamped);
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args("bench_fig6_design_space", "design-space correlation analysis");
  args.flag_i64("workloads", 10000, "sampled workloads per sub-figure (paper: 10^4)");
  args.flag_i64("seed", 2, "RNG seed");
  args.parse(argc, argv);
  const auto n = static_cast<std::size_t>(args.i64("workloads"));
  const auto seed = static_cast<std::uint64_t>(args.i64("seed"));

  const Simulator sim;
  const LogUniformGemmSampler sampler;

  // ---------------------------------------------------- Fig. 6(a-c)
  {
    const ArrayDataflowSpace space(15);
    const ArrayDataflowSearch search(space, sim);
    Rng rng(seed);
    const auto workloads = sampler.sample_many(rng, n);
    std::vector<int> budgets(n);
    for (auto& b : budgets) b = static_cast<int>(rng.uniform_int(5, 15));
    std::vector<int> labels(n);
    parallel_for(n, [&](std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i) {
        labels[i] = search.best(workloads[i], budgets[i]).label;
      }
    });

    const char* captions[3] = {"(a) IFMAP aspect M:K", "(b) Filter aspect K:N",
                               "(c) OFMAP aspect M:N"};
    for (int fig = 0; fig < 3; ++fig) {
      std::cout << "=== Fig. 6" << captions[fig] << " vs optimal dataflow ===\n";
      std::map<std::string, std::array<int, 3>> buckets;
      for (std::size_t i = 0; i < n; ++i) {
        const auto& w = workloads[i];
        double ratio = 1.0;
        if (fig == 0) ratio = static_cast<double>(w.m) / static_cast<double>(w.k);
        if (fig == 1) ratio = static_cast<double>(w.k) / static_cast<double>(w.n);
        if (fig == 2) ratio = static_cast<double>(w.m) / static_cast<double>(w.n);
        auto& counts = buckets[ratio_bucket(ratio)];
        ++counts[static_cast<std::size_t>(
            dataflow_index(space.config(labels[i]).dataflow))];
      }
      AsciiTable t({"aspect", "OS", "WS", "IS", "majority"});
      for (const auto& [bucket, counts] : buckets) {
        const int total = counts[0] + counts[1] + counts[2];
        if (total < 20) continue;  // skip sparsely populated tails
        const int maj = static_cast<int>(
            std::max_element(counts.begin(), counts.end()) - counts.begin());
        t.add_row({bucket, AsciiTable::fmt(100.0 * counts[0] / total, 0) + "%",
                   AsciiTable::fmt(100.0 * counts[1] / total, 0) + "%",
                   AsciiTable::fmt(100.0 * counts[2] / total, 0) + "%",
                   to_string(dataflow_from_index(maj))});
      }
      t.print(std::cout);
      std::cout << '\n';
    }
    std::cout << "Paper check: (a) separates OS vs WS (tall M:K -> OS); (b) separates "
                 "IS vs OS; (c) separates WS vs IS.\n\n";
  }

  // ---------------------------------------------------- Fig. 6(d-f)
  {
    const BufferSizeSpace bspace;
    const BufferSearch bsearch(bspace, sim);
    Rng rng(seed + 1);
    std::cout << "=== Fig. 6(d-f): mean optimal buffer size (KB) by dataflow ===\n";
    std::array<std::array<double, 3>, 3> sums{};  // [dataflow][buffer]
    std::array<int, 3> counts{};
    const std::size_t nb = n / 4;  // buffer search is 1000x per point
    std::vector<Case2Features> inputs(nb);
    for (auto& in : inputs) {
      in.workload = sampler.sample(rng);
      const int macs_exp = static_cast<int>(rng.uniform_int(4, 14));
      const int row_exp = static_cast<int>(rng.uniform_int(1, macs_exp - 1));
      in.array = {pow2(row_exp), pow2(macs_exp - row_exp),
                  dataflow_from_index(static_cast<int>(rng.uniform_int(0, 2)))};
      in.bandwidth = rng.uniform_int(1, 100);
      // Shared capacity budgets tight enough for crowding-out to matter.
      in.limit_kb = rng.uniform_int(6, 18) * 100;
    }
    std::vector<int> blabels(nb);
    parallel_for(nb, [&](std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i) {
        blabels[i] = bsearch.best(inputs[i].workload, inputs[i].array, inputs[i].bandwidth,
                                  inputs[i].limit_kb)
                         .label;
      }
    });
    for (std::size_t i = 0; i < nb; ++i) {
      const MemoryConfig m = bspace.config(blabels[i]);
      const int d = dataflow_index(inputs[i].array.dataflow);
      sums[static_cast<std::size_t>(d)][0] += static_cast<double>(m.ifmap_kb);
      sums[static_cast<std::size_t>(d)][1] += static_cast<double>(m.filter_kb);
      sums[static_cast<std::size_t>(d)][2] += static_cast<double>(m.ofmap_kb);
      ++counts[static_cast<std::size_t>(d)];
    }
    AsciiTable t({"dataflow", "IFMAP KB", "Filter KB", "OFMAP KB"});
    for (int d = 0; d < 3; ++d) {
      const auto c = static_cast<double>(std::max(counts[static_cast<std::size_t>(d)], 1));
      t.add_row({to_string(dataflow_from_index(d)),
                 AsciiTable::fmt(sums[static_cast<std::size_t>(d)][0] / c, 0),
                 AsciiTable::fmt(sums[static_cast<std::size_t>(d)][1] / c, 0),
                 AsciiTable::fmt(sums[static_cast<std::size_t>(d)][2] / c, 0)});
    }
    t.print(std::cout);
    std::cout << "Paper check (d,e): IS needs the smallest IFMAP buffer; WS the smallest "
                 "Filter buffer (the stationary operand is maximally reused).\n\n";

    // (f): budget allocation vs output size. Larger outputs correlate with
    // larger inputs, which pull the shared capacity towards the input
    // buffers — the OFMAP share of the allocated budget shrinks.
    struct Acc {
      double ifmap = 0, filter = 0, ofmap = 0;
      int n = 0;
    };
    std::map<int, Acc> by_outsize;  // log2(M*N)/4*4 -> sums
    for (std::size_t i = 0; i < nb; ++i) {
      const MemoryConfig m = bspace.config(blabels[i]);
      auto& acc = by_outsize[log2_floor(inputs[i].workload.ofmap_elems()) / 4 * 4];
      acc.ifmap += static_cast<double>(m.ifmap_kb);
      acc.filter += static_cast<double>(m.filter_kb);
      acc.ofmap += static_cast<double>(m.ofmap_kb);
      ++acc.n;
    }
    AsciiTable tf({"output elems", "IFMAP KB", "Filter KB", "OFMAP KB", "OFMAP share", "points"});
    for (const auto& [b, acc] : by_outsize) {
      if (acc.n < 20) continue;
      const double total = acc.ifmap + acc.filter + acc.ofmap;
      tf.add_row({"~2^" + std::to_string(b), AsciiTable::fmt(acc.ifmap / acc.n, 0),
                  AsciiTable::fmt(acc.filter / acc.n, 0), AsciiTable::fmt(acc.ofmap / acc.n, 0),
                  AsciiTable::fmt(100.0 * acc.ofmap / total, 0) + "%",
                  std::to_string(acc.n)});
    }
    tf.print(std::cout);
    std::cout << "Paper check (f): the paper reports the OFMAP share shrinking as outputs\n"
                 "grow (inputs crowd the shared capacity). Our graded partial-retention\n"
                 "model rewards OFMAP capacity for partial-sum stripes of large outputs,\n"
                 "which offsets that trend — see EXPERIMENTS.md for the deviation analysis.\n\n";
  }

  // ---------------------------------------------------- Fig. 6(g)
  {
    std::cout << "=== Fig. 6(g): schedule-space clustering ===\n";
    const ScheduleSpace sspace(4);
    const ScheduleSearch ssearch(sspace, default_scheduled_arrays(), sim);
    Rng rng(seed + 2);
    const std::size_t ns = std::min<std::size_t>(n / 10, 2000);
    std::vector<std::vector<GemmWorkload>> inputs(ns);
    for (auto& in : inputs) in = sampler.sample_many(rng, 4);
    std::vector<int> labels(ns);
    parallel_for(ns, [&](std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i) labels[i] = ssearch.best(inputs[i]).label;
    });
    // Cluster key: rank order of workload compute sizes. The paper's
    // clusters are exactly "which workload is biggest goes to which array".
    std::map<std::string, std::map<int, int>> clusters;
    for (std::size_t i = 0; i < ns; ++i) {
      std::array<std::pair<MacCount, int>, 4> sized;
      for (int wl = 0; wl < 4; ++wl) {
        sized[static_cast<std::size_t>(wl)] = {inputs[i][static_cast<std::size_t>(wl)].macs(), wl};
      }
      std::sort(sized.begin(), sized.end());
      std::string key;
      for (const auto& [_, wl] : sized) key += std::to_string(wl);
      ++clusters[key][labels[i]];
    }
    AsciiTable t({"size-rank order", "points", "distinct labels", "top-label share"});
    for (const auto& [key, hist] : clusters) {
      int total = 0, top = 0;
      for (const auto& [label, c] : hist) {
        total += c;
        top = std::max(top, c);
      }
      if (total < 10) continue;
      t.add_row({key, std::to_string(total), std::to_string(hist.size()),
                 AsciiTable::fmt(100.0 * top / total, 0) + "%"});
    }
    t.print(std::cout);
    std::cout << "Paper check: each rank-order cluster concentrates on a few schedule "
                 "labels out of 1944 -> the space is learnable.\n";
  }
  return 0;
}
