file(REMOVE_RECURSE
  "CMakeFiles/test_compute_model.dir/test_compute_model.cpp.o"
  "CMakeFiles/test_compute_model.dir/test_compute_model.cpp.o.d"
  "test_compute_model"
  "test_compute_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_compute_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
