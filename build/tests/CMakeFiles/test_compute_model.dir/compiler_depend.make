# Empty compiler generated dependencies file for test_compute_model.
# This may be replaced when dependencies are built.
