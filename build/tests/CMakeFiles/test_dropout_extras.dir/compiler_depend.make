# Empty compiler generated dependencies file for test_dropout_extras.
# This may be replaced when dependencies are built.
