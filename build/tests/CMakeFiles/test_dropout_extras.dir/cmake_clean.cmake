file(REMOVE_RECURSE
  "CMakeFiles/test_dropout_extras.dir/test_dropout_extras.cpp.o"
  "CMakeFiles/test_dropout_extras.dir/test_dropout_extras.cpp.o.d"
  "test_dropout_extras"
  "test_dropout_extras.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dropout_extras.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
