# Empty compiler generated dependencies file for test_space_scaling.
# This may be replaced when dependencies are built.
