file(REMOVE_RECURSE
  "CMakeFiles/test_space_scaling.dir/test_space_scaling.cpp.o"
  "CMakeFiles/test_space_scaling.dir/test_space_scaling.cpp.o.d"
  "test_space_scaling"
  "test_space_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_space_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
