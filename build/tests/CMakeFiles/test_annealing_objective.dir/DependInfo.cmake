
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_annealing_objective.cpp" "tests/CMakeFiles/test_annealing_objective.dir/test_annealing_objective.cpp.o" "gcc" "tests/CMakeFiles/test_annealing_objective.dir/test_annealing_objective.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/airch_core.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/airch_models.dir/DependInfo.cmake"
  "/root/repo/build/src/dataset/CMakeFiles/airch_dataset.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/airch_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/search/CMakeFiles/airch_search.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/airch_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/airch_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/airch_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
