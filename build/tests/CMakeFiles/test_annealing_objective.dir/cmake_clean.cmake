file(REMOVE_RECURSE
  "CMakeFiles/test_annealing_objective.dir/test_annealing_objective.cpp.o"
  "CMakeFiles/test_annealing_objective.dir/test_annealing_objective.cpp.o.d"
  "test_annealing_objective"
  "test_annealing_objective.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_annealing_objective.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
