# Empty dependencies file for test_annealing_objective.
# This may be replaced when dependencies are built.
