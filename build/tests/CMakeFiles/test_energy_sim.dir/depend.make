# Empty dependencies file for test_energy_sim.
# This may be replaced when dependencies are built.
