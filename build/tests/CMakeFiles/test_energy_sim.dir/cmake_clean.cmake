file(REMOVE_RECURSE
  "CMakeFiles/test_energy_sim.dir/test_energy_sim.cpp.o"
  "CMakeFiles/test_energy_sim.dir/test_energy_sim.cpp.o.d"
  "test_energy_sim"
  "test_energy_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_energy_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
