file(REMOVE_RECURSE
  "CMakeFiles/test_genetic.dir/test_genetic.cpp.o"
  "CMakeFiles/test_genetic.dir/test_genetic.cpp.o.d"
  "test_genetic"
  "test_genetic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_genetic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
