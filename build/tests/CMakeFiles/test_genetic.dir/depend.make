# Empty dependencies file for test_genetic.
# This may be replaced when dependencies are built.
