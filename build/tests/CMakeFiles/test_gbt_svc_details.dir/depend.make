# Empty dependencies file for test_gbt_svc_details.
# This may be replaced when dependencies are built.
