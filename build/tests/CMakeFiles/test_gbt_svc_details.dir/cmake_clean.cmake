file(REMOVE_RECURSE
  "CMakeFiles/test_gbt_svc_details.dir/test_gbt_svc_details.cpp.o"
  "CMakeFiles/test_gbt_svc_details.dir/test_gbt_svc_details.cpp.o.d"
  "test_gbt_svc_details"
  "test_gbt_svc_details.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gbt_svc_details.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
