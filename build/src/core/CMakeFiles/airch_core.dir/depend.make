# Empty dependencies file for airch_core.
# This may be replaced when dependencies are built.
