file(REMOVE_RECURSE
  "libairch_core.a"
)
