file(REMOVE_RECURSE
  "CMakeFiles/airch_core.dir/case_study.cpp.o"
  "CMakeFiles/airch_core.dir/case_study.cpp.o.d"
  "CMakeFiles/airch_core.dir/pipeline.cpp.o"
  "CMakeFiles/airch_core.dir/pipeline.cpp.o.d"
  "CMakeFiles/airch_core.dir/recommender.cpp.o"
  "CMakeFiles/airch_core.dir/recommender.cpp.o.d"
  "libairch_core.a"
  "libairch_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/airch_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
