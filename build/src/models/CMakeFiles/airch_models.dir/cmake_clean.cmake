file(REMOVE_RECURSE
  "CMakeFiles/airch_models.dir/classifier.cpp.o"
  "CMakeFiles/airch_models.dir/classifier.cpp.o.d"
  "CMakeFiles/airch_models.dir/gbt.cpp.o"
  "CMakeFiles/airch_models.dir/gbt.cpp.o.d"
  "CMakeFiles/airch_models.dir/neural.cpp.o"
  "CMakeFiles/airch_models.dir/neural.cpp.o.d"
  "CMakeFiles/airch_models.dir/svc.cpp.o"
  "CMakeFiles/airch_models.dir/svc.cpp.o.d"
  "libairch_models.a"
  "libairch_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/airch_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
