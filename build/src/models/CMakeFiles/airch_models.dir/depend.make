# Empty dependencies file for airch_models.
# This may be replaced when dependencies are built.
