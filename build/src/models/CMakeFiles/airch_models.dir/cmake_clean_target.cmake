file(REMOVE_RECURSE
  "libairch_models.a"
)
