
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/models/classifier.cpp" "src/models/CMakeFiles/airch_models.dir/classifier.cpp.o" "gcc" "src/models/CMakeFiles/airch_models.dir/classifier.cpp.o.d"
  "/root/repo/src/models/gbt.cpp" "src/models/CMakeFiles/airch_models.dir/gbt.cpp.o" "gcc" "src/models/CMakeFiles/airch_models.dir/gbt.cpp.o.d"
  "/root/repo/src/models/neural.cpp" "src/models/CMakeFiles/airch_models.dir/neural.cpp.o" "gcc" "src/models/CMakeFiles/airch_models.dir/neural.cpp.o.d"
  "/root/repo/src/models/svc.cpp" "src/models/CMakeFiles/airch_models.dir/svc.cpp.o" "gcc" "src/models/CMakeFiles/airch_models.dir/svc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dataset/CMakeFiles/airch_dataset.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/airch_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/search/CMakeFiles/airch_search.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/airch_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/airch_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/airch_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
