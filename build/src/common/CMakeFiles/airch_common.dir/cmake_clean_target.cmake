file(REMOVE_RECURSE
  "libairch_common.a"
)
