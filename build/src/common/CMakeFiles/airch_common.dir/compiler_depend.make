# Empty compiler generated dependencies file for airch_common.
# This may be replaced when dependencies are built.
