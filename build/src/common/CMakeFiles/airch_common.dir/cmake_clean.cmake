file(REMOVE_RECURSE
  "CMakeFiles/airch_common.dir/cli.cpp.o"
  "CMakeFiles/airch_common.dir/cli.cpp.o.d"
  "CMakeFiles/airch_common.dir/csv.cpp.o"
  "CMakeFiles/airch_common.dir/csv.cpp.o.d"
  "CMakeFiles/airch_common.dir/math_utils.cpp.o"
  "CMakeFiles/airch_common.dir/math_utils.cpp.o.d"
  "CMakeFiles/airch_common.dir/parallel.cpp.o"
  "CMakeFiles/airch_common.dir/parallel.cpp.o.d"
  "CMakeFiles/airch_common.dir/rng.cpp.o"
  "CMakeFiles/airch_common.dir/rng.cpp.o.d"
  "CMakeFiles/airch_common.dir/table.cpp.o"
  "CMakeFiles/airch_common.dir/table.cpp.o.d"
  "libairch_common.a"
  "libairch_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/airch_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
