file(REMOVE_RECURSE
  "CMakeFiles/airch_search.dir/annealing.cpp.o"
  "CMakeFiles/airch_search.dir/annealing.cpp.o.d"
  "CMakeFiles/airch_search.dir/exhaustive.cpp.o"
  "CMakeFiles/airch_search.dir/exhaustive.cpp.o.d"
  "CMakeFiles/airch_search.dir/genetic.cpp.o"
  "CMakeFiles/airch_search.dir/genetic.cpp.o.d"
  "CMakeFiles/airch_search.dir/objective.cpp.o"
  "CMakeFiles/airch_search.dir/objective.cpp.o.d"
  "CMakeFiles/airch_search.dir/reinforce.cpp.o"
  "CMakeFiles/airch_search.dir/reinforce.cpp.o.d"
  "CMakeFiles/airch_search.dir/space.cpp.o"
  "CMakeFiles/airch_search.dir/space.cpp.o.d"
  "libairch_search.a"
  "libairch_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/airch_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
