# Empty compiler generated dependencies file for airch_search.
# This may be replaced when dependencies are built.
