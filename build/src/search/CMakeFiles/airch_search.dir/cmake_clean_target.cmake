file(REMOVE_RECURSE
  "libairch_search.a"
)
