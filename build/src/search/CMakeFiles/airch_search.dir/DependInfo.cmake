
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/search/annealing.cpp" "src/search/CMakeFiles/airch_search.dir/annealing.cpp.o" "gcc" "src/search/CMakeFiles/airch_search.dir/annealing.cpp.o.d"
  "/root/repo/src/search/exhaustive.cpp" "src/search/CMakeFiles/airch_search.dir/exhaustive.cpp.o" "gcc" "src/search/CMakeFiles/airch_search.dir/exhaustive.cpp.o.d"
  "/root/repo/src/search/genetic.cpp" "src/search/CMakeFiles/airch_search.dir/genetic.cpp.o" "gcc" "src/search/CMakeFiles/airch_search.dir/genetic.cpp.o.d"
  "/root/repo/src/search/objective.cpp" "src/search/CMakeFiles/airch_search.dir/objective.cpp.o" "gcc" "src/search/CMakeFiles/airch_search.dir/objective.cpp.o.d"
  "/root/repo/src/search/reinforce.cpp" "src/search/CMakeFiles/airch_search.dir/reinforce.cpp.o" "gcc" "src/search/CMakeFiles/airch_search.dir/reinforce.cpp.o.d"
  "/root/repo/src/search/space.cpp" "src/search/CMakeFiles/airch_search.dir/space.cpp.o" "gcc" "src/search/CMakeFiles/airch_search.dir/space.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/airch_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/airch_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/airch_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
