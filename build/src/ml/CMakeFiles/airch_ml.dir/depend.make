# Empty dependencies file for airch_ml.
# This may be replaced when dependencies are built.
