
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/activation.cpp" "src/ml/CMakeFiles/airch_ml.dir/activation.cpp.o" "gcc" "src/ml/CMakeFiles/airch_ml.dir/activation.cpp.o.d"
  "/root/repo/src/ml/dense.cpp" "src/ml/CMakeFiles/airch_ml.dir/dense.cpp.o" "gcc" "src/ml/CMakeFiles/airch_ml.dir/dense.cpp.o.d"
  "/root/repo/src/ml/dropout.cpp" "src/ml/CMakeFiles/airch_ml.dir/dropout.cpp.o" "gcc" "src/ml/CMakeFiles/airch_ml.dir/dropout.cpp.o.d"
  "/root/repo/src/ml/embedding.cpp" "src/ml/CMakeFiles/airch_ml.dir/embedding.cpp.o" "gcc" "src/ml/CMakeFiles/airch_ml.dir/embedding.cpp.o.d"
  "/root/repo/src/ml/loss.cpp" "src/ml/CMakeFiles/airch_ml.dir/loss.cpp.o" "gcc" "src/ml/CMakeFiles/airch_ml.dir/loss.cpp.o.d"
  "/root/repo/src/ml/matrix.cpp" "src/ml/CMakeFiles/airch_ml.dir/matrix.cpp.o" "gcc" "src/ml/CMakeFiles/airch_ml.dir/matrix.cpp.o.d"
  "/root/repo/src/ml/metrics.cpp" "src/ml/CMakeFiles/airch_ml.dir/metrics.cpp.o" "gcc" "src/ml/CMakeFiles/airch_ml.dir/metrics.cpp.o.d"
  "/root/repo/src/ml/network.cpp" "src/ml/CMakeFiles/airch_ml.dir/network.cpp.o" "gcc" "src/ml/CMakeFiles/airch_ml.dir/network.cpp.o.d"
  "/root/repo/src/ml/optimizer.cpp" "src/ml/CMakeFiles/airch_ml.dir/optimizer.cpp.o" "gcc" "src/ml/CMakeFiles/airch_ml.dir/optimizer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/airch_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
