file(REMOVE_RECURSE
  "CMakeFiles/airch_ml.dir/activation.cpp.o"
  "CMakeFiles/airch_ml.dir/activation.cpp.o.d"
  "CMakeFiles/airch_ml.dir/dense.cpp.o"
  "CMakeFiles/airch_ml.dir/dense.cpp.o.d"
  "CMakeFiles/airch_ml.dir/dropout.cpp.o"
  "CMakeFiles/airch_ml.dir/dropout.cpp.o.d"
  "CMakeFiles/airch_ml.dir/embedding.cpp.o"
  "CMakeFiles/airch_ml.dir/embedding.cpp.o.d"
  "CMakeFiles/airch_ml.dir/loss.cpp.o"
  "CMakeFiles/airch_ml.dir/loss.cpp.o.d"
  "CMakeFiles/airch_ml.dir/matrix.cpp.o"
  "CMakeFiles/airch_ml.dir/matrix.cpp.o.d"
  "CMakeFiles/airch_ml.dir/metrics.cpp.o"
  "CMakeFiles/airch_ml.dir/metrics.cpp.o.d"
  "CMakeFiles/airch_ml.dir/network.cpp.o"
  "CMakeFiles/airch_ml.dir/network.cpp.o.d"
  "CMakeFiles/airch_ml.dir/optimizer.cpp.o"
  "CMakeFiles/airch_ml.dir/optimizer.cpp.o.d"
  "libairch_ml.a"
  "libairch_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/airch_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
