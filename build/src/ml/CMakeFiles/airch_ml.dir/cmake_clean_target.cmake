file(REMOVE_RECURSE
  "libairch_ml.a"
)
