file(REMOVE_RECURSE
  "libairch_dataset.a"
)
