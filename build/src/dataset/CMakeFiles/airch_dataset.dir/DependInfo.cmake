
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dataset/dataset.cpp" "src/dataset/CMakeFiles/airch_dataset.dir/dataset.cpp.o" "gcc" "src/dataset/CMakeFiles/airch_dataset.dir/dataset.cpp.o.d"
  "/root/repo/src/dataset/encoding.cpp" "src/dataset/CMakeFiles/airch_dataset.dir/encoding.cpp.o" "gcc" "src/dataset/CMakeFiles/airch_dataset.dir/encoding.cpp.o.d"
  "/root/repo/src/dataset/generator.cpp" "src/dataset/CMakeFiles/airch_dataset.dir/generator.cpp.o" "gcc" "src/dataset/CMakeFiles/airch_dataset.dir/generator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/airch_common.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/airch_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/search/CMakeFiles/airch_search.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/airch_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/airch_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
