file(REMOVE_RECURSE
  "CMakeFiles/airch_dataset.dir/dataset.cpp.o"
  "CMakeFiles/airch_dataset.dir/dataset.cpp.o.d"
  "CMakeFiles/airch_dataset.dir/encoding.cpp.o"
  "CMakeFiles/airch_dataset.dir/encoding.cpp.o.d"
  "CMakeFiles/airch_dataset.dir/generator.cpp.o"
  "CMakeFiles/airch_dataset.dir/generator.cpp.o.d"
  "libairch_dataset.a"
  "libairch_dataset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/airch_dataset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
