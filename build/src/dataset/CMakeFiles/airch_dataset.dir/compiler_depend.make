# Empty compiler generated dependencies file for airch_dataset.
# This may be replaced when dependencies are built.
