file(REMOVE_RECURSE
  "CMakeFiles/airch_sim.dir/compute_model.cpp.o"
  "CMakeFiles/airch_sim.dir/compute_model.cpp.o.d"
  "CMakeFiles/airch_sim.dir/dataflow.cpp.o"
  "CMakeFiles/airch_sim.dir/dataflow.cpp.o.d"
  "CMakeFiles/airch_sim.dir/energy_model.cpp.o"
  "CMakeFiles/airch_sim.dir/energy_model.cpp.o.d"
  "CMakeFiles/airch_sim.dir/memory_model.cpp.o"
  "CMakeFiles/airch_sim.dir/memory_model.cpp.o.d"
  "CMakeFiles/airch_sim.dir/simulator.cpp.o"
  "CMakeFiles/airch_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/airch_sim.dir/trace_sim.cpp.o"
  "CMakeFiles/airch_sim.dir/trace_sim.cpp.o.d"
  "libairch_sim.a"
  "libairch_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/airch_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
