file(REMOVE_RECURSE
  "libairch_sim.a"
)
