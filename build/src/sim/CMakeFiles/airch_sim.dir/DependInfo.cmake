
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/compute_model.cpp" "src/sim/CMakeFiles/airch_sim.dir/compute_model.cpp.o" "gcc" "src/sim/CMakeFiles/airch_sim.dir/compute_model.cpp.o.d"
  "/root/repo/src/sim/dataflow.cpp" "src/sim/CMakeFiles/airch_sim.dir/dataflow.cpp.o" "gcc" "src/sim/CMakeFiles/airch_sim.dir/dataflow.cpp.o.d"
  "/root/repo/src/sim/energy_model.cpp" "src/sim/CMakeFiles/airch_sim.dir/energy_model.cpp.o" "gcc" "src/sim/CMakeFiles/airch_sim.dir/energy_model.cpp.o.d"
  "/root/repo/src/sim/memory_model.cpp" "src/sim/CMakeFiles/airch_sim.dir/memory_model.cpp.o" "gcc" "src/sim/CMakeFiles/airch_sim.dir/memory_model.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/sim/CMakeFiles/airch_sim.dir/simulator.cpp.o" "gcc" "src/sim/CMakeFiles/airch_sim.dir/simulator.cpp.o.d"
  "/root/repo/src/sim/trace_sim.cpp" "src/sim/CMakeFiles/airch_sim.dir/trace_sim.cpp.o" "gcc" "src/sim/CMakeFiles/airch_sim.dir/trace_sim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/airch_common.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/airch_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
