# Empty dependencies file for airch_sim.
# This may be replaced when dependencies are built.
