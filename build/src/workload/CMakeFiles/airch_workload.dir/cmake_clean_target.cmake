file(REMOVE_RECURSE
  "libairch_workload.a"
)
