
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/model_zoo.cpp" "src/workload/CMakeFiles/airch_workload.dir/model_zoo.cpp.o" "gcc" "src/workload/CMakeFiles/airch_workload.dir/model_zoo.cpp.o.d"
  "/root/repo/src/workload/sampler.cpp" "src/workload/CMakeFiles/airch_workload.dir/sampler.cpp.o" "gcc" "src/workload/CMakeFiles/airch_workload.dir/sampler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/airch_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
