# Empty compiler generated dependencies file for airch_workload.
# This may be replaced when dependencies are built.
