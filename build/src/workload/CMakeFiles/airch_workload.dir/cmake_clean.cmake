file(REMOVE_RECURSE
  "CMakeFiles/airch_workload.dir/model_zoo.cpp.o"
  "CMakeFiles/airch_workload.dir/model_zoo.cpp.o.d"
  "CMakeFiles/airch_workload.dir/sampler.cpp.o"
  "CMakeFiles/airch_workload.dir/sampler.cpp.o.d"
  "libairch_workload.a"
  "libairch_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/airch_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
