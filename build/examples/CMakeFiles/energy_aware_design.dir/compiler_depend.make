# Empty compiler generated dependencies file for energy_aware_design.
# This may be replaced when dependencies are built.
