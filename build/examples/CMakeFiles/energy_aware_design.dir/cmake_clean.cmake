file(REMOVE_RECURSE
  "CMakeFiles/energy_aware_design.dir/energy_aware_design.cpp.o"
  "CMakeFiles/energy_aware_design.dir/energy_aware_design.cpp.o.d"
  "energy_aware_design"
  "energy_aware_design.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/energy_aware_design.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
