file(REMOVE_RECURSE
  "CMakeFiles/multi_array_scheduler.dir/multi_array_scheduler.cpp.o"
  "CMakeFiles/multi_array_scheduler.dir/multi_array_scheduler.cpp.o.d"
  "multi_array_scheduler"
  "multi_array_scheduler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_array_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
