# Empty compiler generated dependencies file for multi_array_scheduler.
# This may be replaced when dependencies are built.
