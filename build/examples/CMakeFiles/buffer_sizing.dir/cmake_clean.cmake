file(REMOVE_RECURSE
  "CMakeFiles/buffer_sizing.dir/buffer_sizing.cpp.o"
  "CMakeFiles/buffer_sizing.dir/buffer_sizing.cpp.o.d"
  "buffer_sizing"
  "buffer_sizing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/buffer_sizing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
