# Empty dependencies file for train_recommender.
# This may be replaced when dependencies are built.
