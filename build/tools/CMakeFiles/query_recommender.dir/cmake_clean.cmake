file(REMOVE_RECURSE
  "CMakeFiles/query_recommender.dir/query_recommender.cpp.o"
  "CMakeFiles/query_recommender.dir/query_recommender.cpp.o.d"
  "query_recommender"
  "query_recommender.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_recommender.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
