# Empty compiler generated dependencies file for query_recommender.
# This may be replaced when dependencies are built.
