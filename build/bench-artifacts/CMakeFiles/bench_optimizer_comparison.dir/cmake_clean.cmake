file(REMOVE_RECURSE
  "../bench/bench_optimizer_comparison"
  "../bench/bench_optimizer_comparison.pdb"
  "CMakeFiles/bench_optimizer_comparison.dir/bench_optimizer_comparison.cpp.o"
  "CMakeFiles/bench_optimizer_comparison.dir/bench_optimizer_comparison.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_optimizer_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
