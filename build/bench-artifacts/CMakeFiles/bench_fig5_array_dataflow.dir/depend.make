# Empty dependencies file for bench_fig5_array_dataflow.
# This may be replaced when dependencies are built.
