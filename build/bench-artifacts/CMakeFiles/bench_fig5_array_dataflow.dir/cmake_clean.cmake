file(REMOVE_RECURSE
  "../bench/bench_fig5_array_dataflow"
  "../bench/bench_fig5_array_dataflow.pdb"
  "CMakeFiles/bench_fig5_array_dataflow.dir/bench_fig5_array_dataflow.cpp.o"
  "CMakeFiles/bench_fig5_array_dataflow.dir/bench_fig5_array_dataflow.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_array_dataflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
