file(REMOVE_RECURSE
  "../bench/bench_query_latency"
  "../bench/bench_query_latency.pdb"
  "CMakeFiles/bench_query_latency.dir/bench_query_latency.cpp.o"
  "CMakeFiles/bench_query_latency.dir/bench_query_latency.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_query_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
