file(REMOVE_RECURSE
  "../bench/bench_fig10_airchitect"
  "../bench/bench_fig10_airchitect.pdb"
  "CMakeFiles/bench_fig10_airchitect.dir/bench_fig10_airchitect.cpp.o"
  "CMakeFiles/bench_fig10_airchitect.dir/bench_fig10_airchitect.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_airchitect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
