file(REMOVE_RECURSE
  "../bench/bench_fig9_classifiers"
  "../bench/bench_fig9_classifiers.pdb"
  "CMakeFiles/bench_fig9_classifiers.dir/bench_fig9_classifiers.cpp.o"
  "CMakeFiles/bench_fig9_classifiers.dir/bench_fig9_classifiers.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_classifiers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
