file(REMOVE_RECURSE
  "../bench/bench_fig8_output_spaces"
  "../bench/bench_fig8_output_spaces.pdb"
  "CMakeFiles/bench_fig8_output_spaces.dir/bench_fig8_output_spaces.cpp.o"
  "CMakeFiles/bench_fig8_output_spaces.dir/bench_fig8_output_spaces.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_output_spaces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
