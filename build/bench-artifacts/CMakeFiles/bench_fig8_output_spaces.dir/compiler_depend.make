# Empty compiler generated dependencies file for bench_fig8_output_spaces.
# This may be replaced when dependencies are built.
