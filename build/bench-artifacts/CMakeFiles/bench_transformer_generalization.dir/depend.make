# Empty dependencies file for bench_transformer_generalization.
# This may be replaced when dependencies are built.
