file(REMOVE_RECURSE
  "../bench/bench_transformer_generalization"
  "../bench/bench_transformer_generalization.pdb"
  "CMakeFiles/bench_transformer_generalization.dir/bench_transformer_generalization.cpp.o"
  "CMakeFiles/bench_transformer_generalization.dir/bench_transformer_generalization.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_transformer_generalization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
