file(REMOVE_RECURSE
  "../bench/bench_fig11_generalization"
  "../bench/bench_fig11_generalization.pdb"
  "CMakeFiles/bench_fig11_generalization.dir/bench_fig11_generalization.cpp.o"
  "CMakeFiles/bench_fig11_generalization.dir/bench_fig11_generalization.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_generalization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
