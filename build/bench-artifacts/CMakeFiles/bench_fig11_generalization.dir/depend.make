# Empty dependencies file for bench_fig11_generalization.
# This may be replaced when dependencies are built.
