file(REMOVE_RECURSE
  "../bench/bench_fig7_space_growth"
  "../bench/bench_fig7_space_growth.pdb"
  "CMakeFiles/bench_fig7_space_growth.dir/bench_fig7_space_growth.cpp.o"
  "CMakeFiles/bench_fig7_space_growth.dir/bench_fig7_space_growth.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_space_growth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
