// Case study 3 end-to-end: schedule four DNN layers onto the
// heterogeneous 4-array system (paper Fig. 4), comparing exhaustive
// search against the trained constant-time recommender.
//
//   ./multi_array_scheduler [--points=6000] [--epochs=8]

#include <iostream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/recommender.hpp"
#include "search/exhaustive.hpp"
#include "workload/model_zoo.hpp"

int main(int argc, char** argv) {
  using namespace airch;
  ArgParser args("multi_array_scheduler", "learned multi-array scheduling vs search");
  args.flag_i64("points", 6000, "training dataset size");
  args.flag_i64("epochs", 8, "training epochs");
  args.flag_i64("seed", 12, "RNG seed");
  args.parse(argc, argv);

  SchedulingStudy study;
  const auto& arrays = study.search().arrays();
  std::cout << "Heterogeneous system:\n";
  for (std::size_t a = 0; a < arrays.size(); ++a) {
    std::cout << "  array " << a << ": " << arrays[a].array.rows << "x"
              << arrays[a].array.cols << ", " << arrays[a].memory.total_kb() << " KB SRAM, "
              << arrays[a].memory.bandwidth << " B/cyc\n";
  }

  std::cout << "\nTraining scheduler on " << args.i64("points")
            << " search-labelled points...\n";
  Recommender::TrainOptions opts;
  opts.dataset_size = static_cast<std::size_t>(args.i64("points"));
  opts.epochs = static_cast<int>(args.i64("epochs"));
  opts.seed = static_cast<std::uint64_t>(args.i64("seed"));
  const Recommender rec = Recommender::train(study, opts);
  std::cout << "Validation accuracy: " << AsciiTable::fmt(100.0 * rec.report().val_accuracy, 1)
            << "%\n\n";

  // Schedule a realistic mix: four layers from different zoo networks.
  const std::vector<GemmWorkload> workloads = {
      make_resnet18().conv_layers[5].to_gemm(),    // mid-size conv
      make_faster_rcnn().conv_layers[1].to_gemm(), // huge detection conv
      make_mobilenet().conv_layers[7].to_gemm(),   // pointwise conv
      make_alexnet().fc_layers[0].to_gemm(),       // fat FC
  };
  std::cout << "Workloads:\n";
  for (std::size_t i = 0; i < workloads.size(); ++i) {
    std::cout << "  WL" << i << ": " << workloads[i].to_string() << '\n';
  }

  const auto& search = study.search();
  const auto best = search.best(workloads);
  const auto predicted_schedule = rec.recommend_schedule(workloads);
  const int predicted_label = study.space().label_of(predicted_schedule);
  const auto predicted = search.evaluate(workloads, predicted_label);

  auto print_schedule = [&](const char* title, const ScheduleSpace::Schedule& s,
                            const ScheduleSearch::Result& r) {
    std::cout << "\n" << title << " (label " << r.label << "):\n";
    AsciiTable t({"array", "workload", "dataflow"});
    for (std::size_t a = 0; a < s.workload_of.size(); ++a) {
      t.add_row({std::to_string(a), "WL" + std::to_string(s.workload_of[a]),
                 to_string(s.dataflow_of[a])});
    }
    t.print(std::cout);
    std::cout << "  makespan: " << r.makespan_cycles.value() << " cycles, energy: "
              << AsciiTable::fmt(r.energy_pj.value() / 1e6, 2) << " uJ\n";
  };

  print_schedule("Search optimum", study.space().config(best.label), best);
  print_schedule("Recommender (one inference)", predicted_schedule, predicted);

  std::cout << "\nachieved/optimal makespan: "
            << AsciiTable::fmt(best.makespan_cycles / predicted.makespan_cycles, 3)
            << '\n';
  return 0;
}
