// Quickstart: train an AIrchitect recommender for case study 1 (array
// shape + dataflow) and query it for a few GEMM workloads — the paper's
// constant-time alternative to simulate-and-search DSE.
//
//   ./quickstart [--points=30000] [--epochs=10] [--seed=42]

#include <iostream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/recommender.hpp"
#include "search/exhaustive.hpp"

int main(int argc, char** argv) {
  using namespace airch;
  ArgParser args("quickstart", "train a case-1 AIrchitect recommender and query it");
  args.flag_i64("points", 30000, "training dataset size (search-labelled)");
  args.flag_i64("epochs", 10, "training epochs");
  args.flag_i64("seed", 42, "RNG seed");
  args.parse(argc, argv);

  ArrayDataflowStudy study;
  std::cout << "Generating " << args.i64("points")
            << " search-labelled datapoints and training AIrchitect...\n";

  Recommender::TrainOptions opts;
  opts.dataset_size = static_cast<std::size_t>(args.i64("points"));
  opts.epochs = static_cast<int>(args.i64("epochs"));
  opts.seed = static_cast<std::uint64_t>(args.i64("seed"));
  const Recommender rec = Recommender::train(study, opts);

  std::cout << "Validation accuracy: " << AsciiTable::fmt(100.0 * rec.report().val_accuracy, 1)
            << "%\n\n";

  // Compare the learned optimizer against exhaustive search on a few
  // workloads (budget: 2^10 MACs, as in the paper's Fig. 11(a)).
  const int budget_exp = 10;
  const std::vector<GemmWorkload> queries = {
      {3136, 64, 576},   // ResNet-18 layer1 conv
      {196, 512, 4608},  // late-stage conv
      {16, 1000, 4096},  // classifier FC
      {65536, 32, 128},  // tall skinny GEMM
  };

  ArrayDataflowSearch search(study.space(), study.simulator());
  AsciiTable table({"workload", "recommended", "search optimum", "achieved/optimal"});
  for (const auto& w : queries) {
    const ArrayConfig predicted = rec.recommend_array(w, budget_exp);
    const auto best = search.best(w, budget_exp);
    const ArrayConfig optimal = study.space().config(best.label);
    const auto pred_cycles = study.simulator().compute_cycles(w, predicted);
    const double ratio = best.cycles / pred_cycles;
    table.add_row({w.to_string(), predicted.to_string(), optimal.to_string(),
                   AsciiTable::fmt(ratio, 3)});
  }
  table.print(std::cout);
  std::cout << "\nachieved/optimal = 1.000 means the one-shot recommendation matches "
               "exhaustive search.\n";
  return 0;
}
