// Case study 2 end-to-end: train a buffer-sizing recommender and compare
// its one-shot recommendations against exhaustive search on fresh
// workloads — search quality at inference cost.
//
//   ./buffer_sizing [--points=15000] [--epochs=8] [--queries=10]

#include <iostream>

#include "common/cli.hpp"
#include "common/math_utils.hpp"
#include "common/table.hpp"
#include "core/recommender.hpp"
#include "search/exhaustive.hpp"
#include "workload/sampler.hpp"

int main(int argc, char** argv) {
  using namespace airch;
  ArgParser args("buffer_sizing", "learned SRAM buffer sizing vs exhaustive search");
  args.flag_i64("points", 15000, "training dataset size");
  args.flag_i64("epochs", 8, "training epochs");
  args.flag_i64("queries", 10, "fresh workloads to compare on");
  args.flag_i64("seed", 11, "RNG seed");
  args.parse(argc, argv);

  BufferSizingStudy study;
  std::cout << "Training buffer-sizing recommender on " << args.i64("points")
            << " search-labelled points...\n";
  Recommender::TrainOptions opts;
  opts.dataset_size = static_cast<std::size_t>(args.i64("points"));
  opts.epochs = static_cast<int>(args.i64("epochs"));
  opts.seed = static_cast<std::uint64_t>(args.i64("seed"));
  const Recommender rec = Recommender::train(study, opts);
  std::cout << "Validation accuracy: " << AsciiTable::fmt(100.0 * rec.report().val_accuracy, 1)
            << "%\n\n";

  const BufferSearch search(study.space(), study.simulator());
  Rng rng(static_cast<std::uint64_t>(args.i64("seed")) + 99);
  const LogUniformGemmSampler sampler;

  AsciiTable t({"workload", "array", "bw", "budget", "recommended (I/F/O KB)",
                "search (I/F/O KB)", "stalls ratio"});
  double worst_ratio = 1.0;
  for (std::int64_t q = 0; q < args.i64("queries"); ++q) {
    const GemmWorkload w = sampler.sample(rng);
    const int macs_exp = static_cast<int>(rng.uniform_int(6, 14));
    const int row_exp = static_cast<int>(rng.uniform_int(1, macs_exp - 1));
    const ArrayConfig array{pow2(row_exp), pow2(macs_exp - row_exp),
                            dataflow_from_index(static_cast<int>(rng.uniform_int(0, 2)))};
    const std::int64_t bw = rng.uniform_int(1, 100);
    const std::int64_t budget = rng.uniform_int(4, 18) * 100;

    const MemoryConfig pred = rec.recommend_buffers(budget, w, array, bw);
    const auto best = search.best(w, array, bw, budget);
    const MemoryConfig opt = study.space().config(best.label);

    const ComputeResult compute = compute_latency(w, array);
    MemoryConfig pm = pred;
    pm.bandwidth = bw;
    const auto pred_stalls = memory_behavior(w, array, pm, compute).stall_cycles;
    const double ratio = (compute.cycles + best.stall_cycles) / (compute.cycles + pred_stalls);
    worst_ratio = std::min(worst_ratio, ratio);

    auto fmt_mem = [](const MemoryConfig& m) {
      return std::to_string(m.ifmap_kb) + "/" + std::to_string(m.filter_kb) + "/" +
             std::to_string(m.ofmap_kb);
    };
    t.add_row({w.to_string(), array.to_string(), std::to_string(bw), std::to_string(budget),
               fmt_mem(pred), fmt_mem(opt), AsciiTable::fmt(ratio, 3)});
  }
  t.print(std::cout);
  std::cout << "\nstalls ratio = optimal end-to-end runtime / recommended end-to-end runtime "
               "(1.000 = matches search).\nWorst query: "
            << AsciiTable::fmt(worst_ratio, 3) << '\n';
  return 0;
}
