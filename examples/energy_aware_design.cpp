// Multi-objective design exploration (extension of the paper's runtime-
// only case study 1): for one GEMM workload, rank the design space under
// runtime, energy, and EDP objectives and show the Pareto frontier —
// the trade-off a designer actually navigates.
//
//   ./energy_aware_design --M=3136 --N=64 --K=576 --budget_exp=10

#include <algorithm>
#include <limits>
#include <iostream>
#include <vector>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "search/exhaustive.hpp"
#include "search/objective.hpp"

int main(int argc, char** argv) {
  using namespace airch;
  ArgParser args("energy_aware_design", "runtime/energy/EDP trade-off explorer");
  args.flag_i64("M", 3136, "GEMM M");
  args.flag_i64("N", 64, "GEMM N");
  args.flag_i64("K", 576, "GEMM K");
  args.flag_i64("budget_exp", 10, "MAC budget = 2^budget_exp");
  args.parse(argc, argv);

  const GemmWorkload w{args.i64("M"), args.i64("N"), args.i64("K")};
  const auto budget_exp = static_cast<int>(args.i64("budget_exp"));
  const Simulator sim;
  const ArrayDataflowSpace space(18);
  const ArrayDataflowSearch search(space, sim);
  const ObjectiveEvaluator eval(sim);

  std::cout << "Workload " << w.to_string() << ", budget 2^" << budget_exp << " MACs\n\n";

  // Objective winners.
  AsciiTable tw({"objective", "design", "runtime (cyc)", "energy (uJ)", "EDP (uJ*cyc)"});
  for (Objective obj : {Objective::kRuntime, Objective::kEnergy, Objective::kEdp}) {
    const auto best = search.best_with_objective(w, budget_exp, eval, obj);
    const ArrayConfig& c = space.config(best.label);
    const double runtime = eval.cost(w, c, Objective::kRuntime);
    const double energy = eval.cost(w, c, Objective::kEnergy) / 1e6;
    tw.add_row({to_string(obj), c.to_string(), AsciiTable::fmt(runtime, 0),
                AsciiTable::fmt(energy, 2), AsciiTable::fmt(runtime * energy, 0)});
  }
  tw.print(std::cout);

  // Pareto frontier over (runtime, energy).
  struct Point {
    ArrayConfig config;
    double runtime;
    double energy;
  };
  std::vector<Point> points;
  for (int label : space.labels_within_budget(budget_exp)) {
    const ArrayConfig& c = space.config(label);
    points.push_back({c, eval.cost(w, c, Objective::kRuntime),
                      eval.cost(w, c, Objective::kEnergy)});
  }
  std::sort(points.begin(), points.end(),
            [](const Point& a, const Point& b) { return a.runtime < b.runtime; });
  std::cout << "\nPareto frontier (runtime vs energy):\n";
  AsciiTable tp({"design", "runtime (cyc)", "energy (uJ)"});
  double best_energy = std::numeric_limits<double>::max();
  int frontier = 0;
  for (const auto& p : points) {
    if (p.energy < best_energy - 1e-9) {
      best_energy = p.energy;
      tp.add_row({p.config.to_string(), AsciiTable::fmt(p.runtime, 0),
                  AsciiTable::fmt(p.energy / 1e6, 2)});
      ++frontier;
    }
  }
  tp.print(std::cout);
  std::cout << "\n" << frontier << " Pareto-optimal designs out of " << points.size()
            << " in budget. A designer picks along this frontier; the EDP objective\n"
               "selects a balanced point automatically.\n";
  return 0;
}
