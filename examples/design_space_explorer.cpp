// Conventional simulate-and-search DSE (the paper's Fig. 1(a) flow),
// exposed as a command-line explorer: given one GEMM workload and a MAC
// budget, exhaustively evaluate the array/dataflow space and report the
// best designs with their utilization — then size the SRAM buffers for
// the winning design.
//
//   ./design_space_explorer --M=3136 --N=64 --K=576 --budget_exp=10

#include <algorithm>
#include <iostream>

#include "common/cli.hpp"
#include "common/math_utils.hpp"
#include "common/table.hpp"
#include "search/exhaustive.hpp"

int main(int argc, char** argv) {
  using namespace airch;
  ArgParser args("design_space_explorer", "exhaustive DSE for one GEMM workload");
  args.flag_i64("M", 3136, "GEMM M (rows of A and C)");
  args.flag_i64("N", 64, "GEMM N (cols of B and C)");
  args.flag_i64("K", 576, "GEMM K (reduction dim)");
  args.flag_i64("budget_exp", 10, "MAC budget = 2^budget_exp");
  args.flag_i64("bandwidth", 10, "DRAM bandwidth (bytes/cycle) for buffer sizing");
  args.flag_i64("mem_budget_kb", 900, "total SRAM capacity for buffer sizing");
  args.flag_i64("top", 10, "how many designs to print");
  args.parse(argc, argv);

  const GemmWorkload w{args.i64("M"), args.i64("N"), args.i64("K")};
  const auto budget_exp = static_cast<int>(args.i64("budget_exp"));
  if (!w.valid()) {
    std::cerr << "invalid workload\n";
    return 1;
  }

  const ArrayDataflowSpace space(18);
  const Simulator sim;

  std::cout << "Workload " << w.to_string() << " (" << w.macs().value() << " MACs), budget 2^"
            << budget_exp << " PEs\n\n";

  // Rank every in-budget design by stall-free runtime.
  struct Ranked {
    int label;
    Cycles cycles;
    Utilization utilization;
  };
  std::vector<Ranked> ranked;
  for (int label : space.labels_within_budget(budget_exp)) {
    const ComputeResult r = compute_latency(w, space.config(label));
    ranked.push_back({label, r.cycles, r.utilization});
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const Ranked& a, const Ranked& b) { return a.cycles < b.cycles; });

  AsciiTable t({"rank", "design", "cycles", "utilization", "vs best"});
  const auto top = std::min<std::size_t>(static_cast<std::size_t>(args.i64("top")), ranked.size());
  for (std::size_t i = 0; i < top; ++i) {
    const auto& r = ranked[i];
    t.add_row({std::to_string(i + 1), space.config(r.label).to_string(),
               std::to_string(r.cycles.value()), AsciiTable::fmt(100.0 * r.utilization.value(), 1) + "%",
               AsciiTable::fmt(ranked[0].cycles / r.cycles, 3)});
  }
  t.print(std::cout);

  // Buffer sizing for the winner.
  const ArrayConfig best = space.config(ranked[0].label);
  const BufferSizeSpace bspace;
  const BufferSearch bsearch(bspace, sim);
  const auto buf =
      bsearch.best(w, best, args.i64("bandwidth"), args.i64("mem_budget_kb"));
  const MemoryConfig mem = bspace.config(buf.label);
  std::cout << "\nBuffer sizing for " << best.to_string() << " @ " << args.i64("bandwidth")
            << " B/cyc, " << args.i64("mem_budget_kb") << " KB budget:\n"
            << "  IFMAP " << mem.ifmap_kb << " KB, Filter " << mem.filter_kb << " KB, OFMAP "
            << mem.ofmap_kb << " KB -> " << buf.stall_cycles.value() << " stall cycles\n";

  MemoryConfig final_mem = mem;
  final_mem.bandwidth = args.i64("bandwidth");
  const SimResult sr = sim.simulate(w, best, final_mem);
  std::cout << "\nEnd-to-end: " << sr.total_cycles().value() << " cycles ("
            << sr.compute.cycles.value() << " compute + " << sr.memory.stall_cycles.value()
            << " stalls), " << AsciiTable::fmt(sr.energy.total().value() / 1e6, 2) << " uJ, DRAM "
            << sr.memory.dram_total_bytes().value() / 1024 << " KB moved\n";
  return 0;
}
