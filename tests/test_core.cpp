#include <gtest/gtest.h>

#include "common/math_utils.hpp"
#include "core/case_study.hpp"
#include "core/pipeline.hpp"
#include "core/recommender.hpp"

namespace airch {
namespace {

TEST(CaseStudyFactory, BuildsAllThree) {
  EXPECT_EQ(make_case_study(CaseId::kArrayDataflow)->num_classes(), 459);
  EXPECT_EQ(make_case_study(CaseId::kBufferSizing)->num_classes(), 1000);
  EXPECT_EQ(make_case_study(CaseId::kScheduling)->num_classes(), 1944);
}

TEST(CaseStudyFactory, Names) {
  EXPECT_NE(std::string(case_name(CaseId::kArrayDataflow)).find("Array"), std::string::npos);
  EXPECT_NE(std::string(case_name(CaseId::kBufferSizing)).find("Buffer"), std::string::npos);
  EXPECT_NE(std::string(case_name(CaseId::kScheduling)).find("Scheduling"), std::string::npos);
}

class NormalizedPerfTest : public ::testing::Test {
 protected:
  // Small spaces keep these tests quick.
  ArrayDataflowStudy study1_{Case1Config{5, 10, {}}, 10};
};

TEST_F(NormalizedPerfTest, OptimalLabelScoresOne) {
  const Dataset ds = study1_.generate(30, 7);
  for (std::size_t i = 0; i < ds.size(); ++i) {
    EXPECT_DOUBLE_EQ(study1_.normalized_performance(ds[i], ds[i].label), 1.0);
  }
}

TEST_F(NormalizedPerfTest, OtherLabelsScoreAtMostOne) {
  const Dataset ds = study1_.generate(10, 9);
  Rng rng(11);
  for (std::size_t i = 0; i < ds.size(); ++i) {
    for (int trial = 0; trial < 20; ++trial) {
      const auto label = static_cast<std::int32_t>(
          rng.uniform_int(0, study1_.num_classes() - 1));
      const double perf = study1_.normalized_performance(ds[i], label);
      EXPECT_GT(perf, 0.0);
      EXPECT_LE(perf, 1.0 + 1e-12);
    }
  }
}

TEST_F(NormalizedPerfTest, BatchMatchesPointwise) {
  const Dataset ds = study1_.generate(20, 13);
  std::vector<std::int32_t> preds(ds.size());
  for (std::size_t i = 0; i < ds.size(); ++i) preds[i] = ds[i].label;
  const auto perfs = study1_.normalized_performance_batch(ds, preds);
  ASSERT_EQ(perfs.size(), ds.size());
  for (double p : perfs) EXPECT_DOUBLE_EQ(p, 1.0);
}

TEST(BufferStudyPerf, OptimalScoresOneAndOthersAtMostOne) {
  BufferSizingStudy study;
  const Dataset ds = study.generate(10, 3);
  Rng rng(5);
  for (std::size_t i = 0; i < ds.size(); ++i) {
    EXPECT_DOUBLE_EQ(study.normalized_performance(ds[i], ds[i].label), 1.0);
    for (int t = 0; t < 5; ++t) {
      const auto label =
          static_cast<std::int32_t>(rng.uniform_int(0, study.num_classes() - 1));
      EXPECT_LE(study.normalized_performance(ds[i], label), 1.0 + 1e-12);
    }
  }
}

TEST(SchedulingStudyPerf, OptimalScoresOne) {
  SchedulingStudy study;
  const Dataset ds = study.generate(5, 3);
  for (std::size_t i = 0; i < ds.size(); ++i) {
    EXPECT_DOUBLE_EQ(study.normalized_performance(ds[i], ds[i].label), 1.0);
    EXPECT_LE(study.normalized_performance(ds[i], 0), 1.0 + 1e-12);
  }
}

TEST(Pipeline, RunsEndToEndOnCase1) {
  ArrayDataflowStudy study(Case1Config{5, 10, {}}, 10);
  const Dataset data = study.generate(2000, 21);
  auto clf = make_airchitect(1, 4);
  ExperimentOptions opts;
  const ExperimentResult r = run_experiment(study, *clf, data, opts);

  EXPECT_EQ(r.train_size, 1600u);
  EXPECT_EQ(r.val_size, 200u);
  EXPECT_EQ(r.test_size, 200u);
  EXPECT_EQ(r.predictions.size(), 200u);
  EXPECT_GE(r.test_accuracy, 0.0);
  EXPECT_LE(r.test_accuracy, 1.0);
  EXPECT_FALSE(r.history.empty());

  std::int64_t actual_total = 0, pred_total = 0;
  for (auto v : r.actual_hist) actual_total += v;
  for (auto v : r.predicted_hist) pred_total += v;
  EXPECT_EQ(actual_total, 200);
  EXPECT_EQ(pred_total, 200);

  ASSERT_EQ(r.normalized_perf.size(), 200u);
  EXPECT_GT(r.geomean_perf, 0.0);
  EXPECT_LE(r.geomean_perf, 1.0 + 1e-12);
  // Sorted ascending.
  EXPECT_TRUE(std::is_sorted(r.normalized_perf.begin(), r.normalized_perf.end()));
}

TEST(Pipeline, ScorePerformanceCanBeDisabled) {
  ArrayDataflowStudy study(Case1Config{5, 10, {}}, 10);
  const Dataset data = study.generate(500, 23);
  auto clf = make_mlp_a(1);
  ExperimentOptions opts;
  opts.score_performance = false;
  const ExperimentResult r = run_experiment(study, *clf, data, opts);
  EXPECT_TRUE(r.normalized_perf.empty());
  EXPECT_EQ(r.geomean_perf, 0.0);
}

TEST(Recommender, TrainAndQueryCase1) {
  ArrayDataflowStudy study(Case1Config{5, 10, {}}, 10);
  Recommender::TrainOptions opts;
  opts.dataset_size = 3000;
  opts.epochs = 5;
  const Recommender rec = Recommender::train(study, opts);
  EXPECT_GT(rec.report().val_accuracy, 0.08);  // far above the ~1/135 chance floor

  const ArrayConfig c = rec.recommend_array({128, 128, 128}, 8);
  EXPECT_TRUE(c.valid());
  EXPECT_TRUE(is_pow2(c.rows));
  EXPECT_TRUE(is_pow2(c.cols));

  // Wrong-study typed queries must throw.
  EXPECT_THROW(rec.recommend_buffers(500, {1, 1, 1}, c, 10), std::logic_error);
  EXPECT_THROW(rec.recommend_schedule({{1, 1, 1}}), std::logic_error);
}

TEST(Recommender, TrainAndQueryCase3) {
  SchedulingStudy study;
  Recommender::TrainOptions opts;
  opts.dataset_size = 800;
  opts.epochs = 3;
  const Recommender rec = Recommender::train(study, opts);
  const auto schedule =
      rec.recommend_schedule({{64, 64, 64}, {512, 512, 64}, {32, 128, 16}, {256, 32, 900}});
  EXPECT_EQ(schedule.workload_of.size(), 4u);
  EXPECT_EQ(schedule.dataflow_of.size(), 4u);
  EXPECT_THROW(rec.recommend_array({1, 1, 1}, 8), std::logic_error);
}

TEST(Recommender, LabelQueryInRange) {
  ArrayDataflowStudy study(Case1Config{5, 10, {}}, 10);
  Recommender::TrainOptions opts;
  opts.dataset_size = 1000;
  opts.epochs = 2;
  const Recommender rec = Recommender::train(study, opts);
  const auto label = rec.recommend_label({8, 100, 100, 100});
  EXPECT_GE(label, 0);
  EXPECT_LT(label, study.num_classes());
}

}  // namespace
}  // namespace airch
