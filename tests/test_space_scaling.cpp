// Large-space parameterizations used by the Fig. 11(b) scale sweep: the
// output-space enumeration must stay a bijection as the MAC budget grows
// toward the paper's 2^40.

#include <gtest/gtest.h>

#include "common/math_utils.hpp"
#include "search/space.hpp"

namespace airch {
namespace {

class SpaceScaling : public ::testing::TestWithParam<int> {};

TEST_P(SpaceScaling, SizeFormulaHolds) {
  const int max_exp = GetParam();
  const ArrayDataflowSpace space(max_exp);
  // Shapes: (a, b) with a, b >= 1 and a + b <= max_exp, i.e. the
  // triangular number T(max_exp - 1) = (max_exp - 1) * max_exp / 2.
  const int expected_shapes = (max_exp - 1) * max_exp / 2;
  EXPECT_EQ(space.size(), expected_shapes * 3);
}

TEST_P(SpaceScaling, RoundTripBijection) {
  const ArrayDataflowSpace space(GetParam());
  for (int label = 0; label < space.size(); ++label) {
    ASSERT_EQ(space.label_of(space.config(label)), label);
  }
}

TEST_P(SpaceScaling, EveryConfigWithinBudget) {
  const int max_exp = GetParam();
  const ArrayDataflowSpace space(max_exp);
  for (int label = 0; label < space.size(); ++label) {
    ASSERT_LE(space.config(label).macs(), MacCount{pow2(max_exp)});
  }
}

INSTANTIATE_TEST_SUITE_P(Budgets, SpaceScaling, ::testing::Values(10, 18, 24, 32, 40));

TEST(SpaceScaling, PaperScaleFortyHas2340Labels) {
  // 2^40 MAC budget: T(39) = 780 shapes x 3 dataflows.
  const ArrayDataflowSpace space(40);
  EXPECT_EQ(space.size(), 780 * 3);
}

TEST(ScheduleSpaceScaling, EightArrays) {
  // 3^8 * 8! = 6561 * 40320 — the Fig. 7(b) tail. Construction of the
  // space object itself must stay tractable (permutations are enumerated
  // lazily per label for larger arities via the stored table).
  EXPECT_EQ(ScheduleSpace::space_size(8), 264539520LL);
  const ScheduleSpace space(5);  // 29160 labels is still enumerable
  EXPECT_EQ(space.size(), 29160);
  EXPECT_EQ(space.label_of(space.config(12345)), 12345);
}

}  // namespace
}  // namespace airch
