#include <gtest/gtest.h>

#include <cmath>

#include "ml/optimizer.hpp"
#include "models/neural.hpp"

namespace airch::ml {
namespace {

TEST(ExponentialDecay, FirstEpochIsInitial) {
  const ExponentialDecaySchedule s{0.1, 0.5};
  EXPECT_DOUBLE_EQ(s(1), 0.1);
  EXPECT_DOUBLE_EQ(s(2), 0.05);
  EXPECT_DOUBLE_EQ(s(3), 0.025);
}

TEST(ExponentialDecay, UnitDecayIsConstant) {
  const ExponentialDecaySchedule s{0.01, 1.0};
  EXPECT_DOUBLE_EQ(s(1), 0.01);
  EXPECT_DOUBLE_EQ(s(100), 0.01);
}

TEST(ExponentialDecay, RejectsZeroEpoch) {
  const ExponentialDecaySchedule s{0.1, 0.9};
  EXPECT_THROW(s(0), std::invalid_argument);
}

TEST(Cosine, EndpointsAndMonotonicity) {
  const CosineSchedule s{1.0, 0.1, 10};
  EXPECT_DOUBLE_EQ(s(1), 1.0);
  EXPECT_NEAR(s(10), 0.1, 1e-12);
  double prev = s(1);
  for (int e = 2; e <= 10; ++e) {
    EXPECT_LT(s(e), prev);
    prev = s(e);
  }
}

TEST(Cosine, ClampsPastHorizon) {
  const CosineSchedule s{1.0, 0.0, 5};
  EXPECT_NEAR(s(5), 0.0, 1e-12);
  EXPECT_NEAR(s(50), 0.0, 1e-12);
}

TEST(Cosine, MidpointIsMean) {
  const CosineSchedule s{2.0, 0.0, 11};
  EXPECT_NEAR(s(6), 1.0, 1e-12);  // cos(pi/2) midpoint
}

TEST(Optimizer, LearningRateIsMutable) {
  Sgd opt(0.1);
  EXPECT_DOUBLE_EQ(opt.learning_rate(), 0.1);
  opt.set_learning_rate(0.01);
  std::vector<float> w = {1.0f};
  std::vector<float> g = {1.0f};
  std::vector<ParamRef> p = {{w.data(), g.data(), 1}};
  opt.step(p);
  EXPECT_FLOAT_EQ(w[0], 0.99f);  // the new rate applied
}

}  // namespace
}  // namespace airch::ml

namespace airch {
namespace {

TEST(LrDecayOption, DecaysAcrossFit) {
  // Smoke: lr_decay < 1 must not break training on a simple task and the
  // model must still learn.
  Dataset ds({"a"}, 2);
  Rng rng(1);
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t a = rng.uniform_int(0, 100);
    ds.add({{a}, a > 50 ? 1 : 0});
  }
  auto [train, val] = ds.split(0.8);
  const FeatureEncoder enc(train);
  NeuralClassifier::Options o;
  o.hidden = {16};
  o.epochs = 25;
  o.learning_rate = 5e-3;
  o.lr_decay = 0.9;
  NeuralClassifier clf("decay", o);
  clf.fit(train, val, enc);
  EXPECT_GT(clf.accuracy(val, enc), 0.9);
}

}  // namespace
}  // namespace airch
