// Synchronization layer (common/sync.hpp): lock-rank registry semantics,
// RAII wrappers, and the CondVar contract. The registry is compiled out
// under NDEBUG, so every throw-assertion branches on
// kLockRankChecksEnabled — in Release the same sequences must be silent
// no-ops (and the genuinely dangerous ones are skipped outright).

#include "common/sync.hpp"

#include <gtest/gtest.h>

#include <exception>
#include <thread>
#include <vector>

#include "common/check.hpp"

namespace airch {
namespace {

TEST(LockRank, InversionAcrossTwoThreadsThrows) {
  Mutex low{lock_rank::kParallelError};
  Mutex high{lock_rank::kSweepCacheShard};

  // Thread A follows the documented order low -> high and must complete
  // cleanly in every build mode.
  std::exception_ptr a_error;
  std::thread a([&] {
    try {
      const MutexLock l1(low);
      const MutexLock l2(high);
    } catch (...) {
      a_error = std::current_exception();
    }
  });

  // Thread B seeds the inversion: high first, then low. In checked builds
  // the registry throws BEFORE the acquire blocks, so the classic ABBA
  // deadlock can never form; in Release the inverted acquire is skipped
  // (attempting it against thread A really could deadlock).
  bool b_threw = false;
  std::exception_ptr b_error;
  std::thread b([&] {
    try {
      const MutexLock l1(high);
      if (kLockRankChecksEnabled) {
        try {
          const MutexLock l2(low);
        } catch (const ContractViolation&) {
          b_threw = true;
        }
      }
    } catch (...) {
      b_error = std::current_exception();
    }
  });

  a.join();
  b.join();
  EXPECT_FALSE(a_error);
  EXPECT_FALSE(b_error);
  if (kLockRankChecksEnabled) {
    EXPECT_TRUE(b_threw);
  }
}

TEST(LockRank, ReacquireThrows) {
  if (!kLockRankChecksEnabled) {
    GTEST_SKIP() << "re-lock of std::mutex is UB without the registry";
  }
  Mutex m;
  m.lock();
  EXPECT_THROW(m.lock(), ContractViolation);
  // The failed acquire must not have corrupted the stack: the original
  // hold is still registered and releases cleanly.
  EXPECT_EQ(detail::locks_held_by_this_thread(), 1u);
  m.unlock();
  EXPECT_EQ(detail::locks_held_by_this_thread(), 0u);
}

TEST(LockRank, SameRankNestingThrows) {
  if (!kLockRankChecksEnabled) GTEST_SKIP() << "registry compiled out";
  // Two default-rank (leaf) mutexes: peers never nest.
  Mutex a;
  Mutex b;
  const MutexLock hold_a(a);
  EXPECT_THROW(b.lock(), ContractViolation);
}

TEST(LockRank, ReleaseRestoresLowerRanks) {
  Mutex low{lock_rank::kParallelError};
  Mutex high{lock_rank::kSweepCacheShard};
  {
    const MutexLock l(high);
  }
  // high is released, so acquiring the lower rank afresh is legal.
  const MutexLock l(low);
  const MutexLock h(high);  // ascending from inside: also legal
  if (kLockRankChecksEnabled) {
    EXPECT_EQ(detail::locks_held_by_this_thread(), 2u);
  } else {
    EXPECT_EQ(detail::locks_held_by_this_thread(), 0u);
  }
}

TEST(LockRank, SharedReacquireThrows) {
  if (!kLockRankChecksEnabled) {
    GTEST_SKIP() << "recursive lock_shared is UB without the registry";
  }
  SharedMutex sm;
  sm.lock_shared();
  EXPECT_THROW(sm.lock_shared(), ContractViolation);
  sm.unlock_shared();
}

TEST(Sync, SharedMutexReadersCoexist) {
  SharedMutex sm;
  int value = 0;
  {
    const WriterLock w(sm);
    value = 42;
  }
  // Two concurrent readers must both get in (shared mode is genuinely
  // shared) and observe the published value.
  std::vector<int> seen(2, -1);
  std::thread r1([&] {
    const ReaderLock r(sm);
    seen[0] = value;
  });
  std::thread r2([&] {
    const ReaderLock r(sm);
    seen[1] = value;
  });
  r1.join();
  r2.join();
  EXPECT_EQ(seen[0], 42);
  EXPECT_EQ(seen[1], 42);
}

TEST(Sync, TryLockContendedFailureLeavesRegistryClean) {
  Mutex m;
  ASSERT_TRUE(m.try_lock());
  std::thread t([&] {
    // Contended from another thread: must fail, and in checked builds the
    // provisional registry note must have been retracted.
    EXPECT_FALSE(m.try_lock());
    EXPECT_EQ(detail::locks_held_by_this_thread(), 0u);
  });
  t.join();
  m.unlock();
  ASSERT_TRUE(m.try_lock());
  m.unlock();
}

TEST(Sync, CondVarHandsOffValue) {
  Mutex m;
  CondVar cv;
  int slot = 0;
  bool ready = false;

  std::thread consumer([&] {
    const MutexLock lock(m);
    while (!ready) cv.wait(m);
    EXPECT_EQ(slot, 7);
    // Waking from a wait re-acquires through the annotated Mutex, so the
    // registry still counts the hold.
    if (kLockRankChecksEnabled) {
      EXPECT_EQ(detail::locks_held_by_this_thread(), 1u);
    }
  });
  {
    const MutexLock lock(m);
    slot = 7;
    ready = true;
  }
  cv.notify_one();
  consumer.join();
}

}  // namespace
}  // namespace airch
