// Semantics of the contract macros (src/common/check.hpp):
//  - AIRCH_CHECK is always on and throws ContractViolation.
//  - AIRCH_ASSERT / AIRCH_DCHECK fire only when NDEBUG is not defined
//    (Debug and the sanitizer presets); in Release they are no-ops that do
//    NOT evaluate their condition. Both halves are asserted here, so this
//    test is meaningful in every preset.

#include "common/check.hpp"

#include <gtest/gtest.h>

#include <string>

namespace {

TEST(Check, CheckPassesOnTrue) {
  int evaluations = 0;
  AIRCH_CHECK([&] { ++evaluations; return true; }(), "should not fire");
  EXPECT_EQ(evaluations, 1);  // AIRCH_CHECK always evaluates its condition
}

TEST(Check, CheckThrowsContractViolation) {
  EXPECT_THROW(AIRCH_CHECK(false, "boom"), airch::ContractViolation);
}

TEST(Check, CheckMessageNamesExpressionFileAndMessage) {
  try {
    AIRCH_CHECK(1 + 1 == 3, "arithmetic is broken");
    FAIL() << "AIRCH_CHECK(false) did not throw";
  } catch (const airch::ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 + 1 == 3"), std::string::npos) << what;
    EXPECT_NE(what.find("test_check.cpp"), std::string::npos) << what;
    EXPECT_NE(what.find("arithmetic is broken"), std::string::npos) << what;
  }
}

TEST(Check, ContractViolationIsLogicError) {
  // Callers may catch std::logic_error generically.
  EXPECT_THROW(AIRCH_CHECK(false, "x"), std::logic_error);
}

#ifdef NDEBUG

TEST(Check, ReleaseAssertIsNoOp) {
  AIRCH_ASSERT(false);  // must not throw
  AIRCH_DCHECK(false, "never fires in Release");
}

TEST(Check, ReleaseAssertDoesNotEvaluateCondition) {
  // The documented guarantee: conditions may be arbitrarily expensive (or
  // side-effecting, though they should not be) — Release never runs them.
  int evaluations = 0;
  AIRCH_ASSERT([&] { ++evaluations; return false; }());
  AIRCH_DCHECK([&] { ++evaluations; return false; }(), "msg");
  EXPECT_EQ(evaluations, 0);
}

#else  // Debug / sanitizer presets

TEST(Check, DebugAssertThrowsOnFalse) {
  EXPECT_THROW(AIRCH_ASSERT(false), airch::ContractViolation);
  EXPECT_THROW(AIRCH_DCHECK(false, "fired"), airch::ContractViolation);
}

TEST(Check, DebugAssertEvaluatesConditionExactlyOnce) {
  int evaluations = 0;
  AIRCH_ASSERT([&] { ++evaluations; return true; }());
  EXPECT_EQ(evaluations, 1);
}

TEST(Check, DebugDcheckMessageIsCarried) {
  try {
    AIRCH_DCHECK(false, "the payload");
    FAIL() << "AIRCH_DCHECK(false) did not throw";
  } catch (const airch::ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("the payload"), std::string::npos);
  }
}

#endif

}  // namespace
