#include "search/exhaustive.hpp"

#include <gtest/gtest.h>

#include "common/math_utils.hpp"
#include "common/rng.hpp"
#include "workload/sampler.hpp"

namespace airch {
namespace {

class ExhaustiveTest : public ::testing::Test {
 protected:
  Simulator sim_;
};

// ------------------------------------------------------------- case 1

class Case1SearchTest : public ExhaustiveTest {
 protected:
  Case1SearchTest() : space_(12), search_(space_, sim_) {}
  ArrayDataflowSpace space_;  // small space keeps exhaustive checks fast
  ArrayDataflowSearch search_;
};

TEST_F(Case1SearchTest, BestIsGlobalMinimum) {
  Rng rng(3);
  LogUniformGemmSampler sampler;
  for (int trial = 0; trial < 20; ++trial) {
    const GemmWorkload w = sampler.sample(rng);
    const auto best = search_.best(w, 12);
    for (int label = 0; label < space_.size(); ++label) {
      EXPECT_LE(best.cycles, search_.cycles_of(w, label)) << w.to_string();
    }
    EXPECT_EQ(best.cycles, search_.cycles_of(w, best.label));
  }
}

TEST_F(Case1SearchTest, RespectsBudget) {
  Rng rng(5);
  LogUniformGemmSampler sampler;
  for (int budget_exp = 2; budget_exp <= 12; ++budget_exp) {
    const GemmWorkload w = sampler.sample(rng);
    const auto best = search_.best(w, budget_exp);
    EXPECT_LE(space_.config(best.label).macs(), MacCount{pow2(budget_exp)});
  }
}

TEST_F(Case1SearchTest, SmallerBudgetNeverFaster) {
  const GemmWorkload w{500, 300, 800};
  Cycles prev{std::numeric_limits<std::int64_t>::max()};
  for (int budget_exp = 2; budget_exp <= 12; ++budget_exp) {
    const auto best = search_.best(w, budget_exp);
    EXPECT_LE(best.cycles, prev);
    prev = best.cycles;
  }
}

TEST_F(Case1SearchTest, Deterministic) {
  const GemmWorkload w{123, 456, 789};
  const auto a = search_.best(w, 10);
  const auto b = search_.best(w, 10);
  EXPECT_EQ(a.label, b.label);
}

TEST_F(Case1SearchTest, BudgetBelowSmallestArrayThrows) {
  EXPECT_THROW((void)search_.best({8, 8, 8}, 1), std::invalid_argument);
}

// ------------------------------------------------------------- case 2

class Case2SearchTest : public ExhaustiveTest {
 protected:
  Case2SearchTest() : space_(100, 1000), search_(space_, sim_) {}
  BufferSizeSpace space_;
  BufferSearch search_;
};

TEST_F(Case2SearchTest, BestIsGlobalMinimumOnStalls) {
  Rng rng(7);
  LogUniformGemmSampler sampler;
  for (int trial = 0; trial < 10; ++trial) {
    const GemmWorkload w = sampler.sample(rng);
    const ArrayConfig a{16, 16, dataflow_from_index(trial % 3)};
    const std::int64_t bw = 1 + trial * 7;
    // limit = 3000 KB makes every label feasible.
    const auto best = search_.best(w, a, bw, 3000);
    for (int label = 0; label < space_.size(); ++label) {
      EXPECT_LE(best.stall_cycles, search_.stalls_of(w, a, bw, label));
    }
  }
}

TEST_F(Case2SearchTest, TieBreakPrefersSmallestCapacity) {
  // A tiny workload fits everywhere: all configs give identical stalls, so
  // the minimum-capacity config (label 0) must win.
  const GemmWorkload w{4, 4, 4};
  const ArrayConfig a{4, 4, Dataflow::kOutputStationary};
  const auto best = search_.best(w, a, 100, 1000);
  EXPECT_EQ(space_.config(best.label).total_kb(), 300);
}

TEST_F(Case2SearchTest, RespectsTotalCapacityLimit) {
  const GemmWorkload w{2048, 2048, 2048};
  const ArrayConfig a{32, 32, Dataflow::kWeightStationary};
  for (std::int64_t limit : {300, 600, 1000, 3000}) {
    const auto best = search_.best(w, a, 10, limit);
    EXPECT_LE(space_.config(best.label).total_kb(), limit);
  }
}

TEST_F(Case2SearchTest, LooserLimitNeverWorse) {
  const GemmWorkload w{4096, 1024, 4096};
  const ArrayConfig a{32, 32, Dataflow::kInputStationary};
  Cycles prev{std::numeric_limits<std::int64_t>::max()};
  for (std::int64_t limit : {300, 600, 1200, 2100, 3000}) {
    const auto best = search_.best(w, a, 4, limit);
    EXPECT_LE(best.stall_cycles, prev);
    prev = best.stall_cycles;
  }
}

TEST_F(Case2SearchTest, LimitBelowSmallestTotalThrows) {
  EXPECT_THROW((void)search_.best({8, 8, 8}, {4, 4, Dataflow::kOutputStationary}, 10, 200),
               std::invalid_argument);
}

// ------------------------------------------------------------- case 3

class Case3SearchTest : public ExhaustiveTest {
 protected:
  Case3SearchTest() : space_(4), search_(space_, default_scheduled_arrays(), sim_) {}
  ScheduleSpace space_;
  ScheduleSearch search_;
};

TEST_F(Case3SearchTest, BestBeatsSampledLabels) {
  Rng rng(11);
  LogUniformGemmSampler sampler;
  const auto workloads = sampler.sample_many(rng, 4);
  const auto best = search_.best(workloads);
  for (int trial = 0; trial < 100; ++trial) {
    const int label = static_cast<int>(rng.uniform_int(0, space_.size() - 1));
    const auto other = search_.evaluate(workloads, label);
    EXPECT_LE(best.makespan_cycles, other.makespan_cycles);
  }
}

TEST_F(Case3SearchTest, EvaluateConsistentWithBest) {
  Rng rng(13);
  LogUniformGemmSampler sampler;
  const auto workloads = sampler.sample_many(rng, 4);
  const auto best = search_.best(workloads);
  const auto re = search_.evaluate(workloads, best.label);
  EXPECT_EQ(re.makespan_cycles, best.makespan_cycles);
  EXPECT_NEAR(re.energy_pj.value(), best.energy_pj.value(), best.energy_pj.value() * 1e-9);
}

TEST_F(Case3SearchTest, ArityMismatchThrows) {
  EXPECT_THROW((void)search_.best({GemmWorkload{1, 1, 1}}), std::invalid_argument);
  EXPECT_THROW((void)search_.evaluate({GemmWorkload{1, 1, 1}}, 0), std::invalid_argument);
}

TEST_F(Case3SearchTest, WrongArrayCountThrows) {
  auto arrays = default_scheduled_arrays();
  arrays.pop_back();
  EXPECT_THROW(ScheduleSearch(space_, arrays, sim_), std::invalid_argument);
}

TEST_F(Case3SearchTest, HeterogeneousArraysMatter) {
  // A very skewed workload mix: the big array should take the big GEMM.
  // We check that the optimum beats the identity assignment with all-OS.
  const std::vector<GemmWorkload> workloads = {
      {16, 16, 16}, {4096, 4096, 512}, {64, 64, 64}, {128, 32, 900}};
  const auto best = search_.best(workloads);
  const auto identity = search_.evaluate(workloads, 0);
  EXPECT_LE(best.makespan_cycles, identity.makespan_cycles);
}

TEST(DefaultArrays, FourHeterogeneous) {
  const auto arrays = default_scheduled_arrays();
  ASSERT_EQ(arrays.size(), 4u);
  // Shapes must differ (heterogeneity is the point of the case study).
  EXPECT_NE(arrays[0].array.to_string(), arrays[1].array.to_string());
  EXPECT_NE(arrays[1].array.to_string(), arrays[2].array.to_string());
  for (const auto& a : arrays) {
    EXPECT_TRUE(a.array.valid());
    EXPECT_TRUE(a.memory.valid());
  }
}

}  // namespace
}  // namespace airch
