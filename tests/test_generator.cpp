#include "dataset/generator.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/math_utils.hpp"
#include "dataset/binary_io.hpp"

namespace airch {
namespace {

class GeneratorTest : public ::testing::Test {
 protected:
  Simulator sim_;
};

TEST_F(GeneratorTest, Case1SchemaAndLabels) {
  const ArrayDataflowSpace space(12);
  Case1Config cfg;
  cfg.budget_max_exp = 12;
  const Dataset ds = generate_case1(200, space, sim_, cfg, 1);
  EXPECT_EQ(ds.size(), 200u);
  EXPECT_EQ(ds.num_features(), 4);
  EXPECT_EQ(ds.num_classes(), space.size());
  EXPECT_EQ(ds.feature_names()[0], "budget_exp");
  for (std::size_t i = 0; i < ds.size(); ++i) {
    EXPECT_GE(ds[i].label, 0);
    EXPECT_LT(ds[i].label, space.size());
    EXPECT_GE(ds[i].features[0], cfg.budget_min_exp);
    EXPECT_LE(ds[i].features[0], cfg.budget_max_exp);
  }
}

TEST_F(GeneratorTest, Case1LabelsAreSearchOptima) {
  const ArrayDataflowSpace space(10);
  Case1Config cfg;
  cfg.budget_max_exp = 10;
  const Dataset ds = generate_case1(50, space, sim_, cfg, 2);
  ArrayDataflowSearch search(space, sim_);
  for (std::size_t i = 0; i < ds.size(); ++i) {
    const Case1Features f = decode_case1(ds[i].features);
    EXPECT_EQ(ds[i].label, search.best(f.workload, f.budget_exp).label);
  }
}

TEST_F(GeneratorTest, Case1DeterministicForSeed) {
  const ArrayDataflowSpace space(10);
  Case1Config cfg;
  cfg.budget_max_exp = 10;
  const Dataset a = generate_case1(100, space, sim_, cfg, 42);
  const Dataset b = generate_case1(100, space, sim_, cfg, 42);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].features, b[i].features);
    EXPECT_EQ(a[i].label, b[i].label);
  }
}

TEST_F(GeneratorTest, Case1DifferentSeedsDiffer) {
  const ArrayDataflowSpace space(10);
  Case1Config cfg;
  cfg.budget_max_exp = 10;
  const Dataset a = generate_case1(50, space, sim_, cfg, 1);
  const Dataset b = generate_case1(50, space, sim_, cfg, 2);
  int diffs = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].features != b[i].features) ++diffs;
  }
  EXPECT_GT(diffs, 40);
}

TEST_F(GeneratorTest, Case1BadBudgetRangeThrows) {
  const ArrayDataflowSpace space(10);
  Case1Config cfg;
  cfg.budget_max_exp = 14;  // exceeds space
  EXPECT_THROW(generate_case1(10, space, sim_, cfg, 1), std::invalid_argument);
}

TEST_F(GeneratorTest, Case1DecodeRoundTrip) {
  const Case1Features f = decode_case1({10, 100, 200, 300});
  EXPECT_EQ(f.budget_exp, 10);
  EXPECT_EQ(f.workload.m, 100);
  EXPECT_EQ(f.workload.n, 200);
  EXPECT_EQ(f.workload.k, 300);
  EXPECT_THROW(decode_case1({1, 2, 3}), std::invalid_argument);
}

TEST_F(GeneratorTest, Case2SchemaAndConstraints) {
  const BufferSizeSpace space;
  Case2Config cfg;
  const Dataset ds = generate_case2(100, space, sim_, cfg, 3);
  EXPECT_EQ(ds.num_features(), 8);
  EXPECT_EQ(ds.num_classes(), 1000);
  BufferSearch search(space, sim_);
  for (std::size_t i = 0; i < ds.size(); ++i) {
    const Case2Features f = decode_case2(ds[i].features);
    EXPECT_GE(f.bandwidth, cfg.bw_min);
    EXPECT_LE(f.bandwidth, cfg.bw_max);
    EXPECT_EQ(f.limit_kb % space.step_kb(), 0);
    EXPECT_GE(f.limit_kb, cfg.limit_min_kb);
    EXPECT_LE(f.limit_kb, cfg.limit_max_kb);
    // Label honours the shared capacity budget.
    EXPECT_LE(space.config(ds[i].label).total_kb(), f.limit_kb);
    // Array dims are powers of two within the configured MAC range.
    EXPECT_TRUE(is_pow2(f.array.rows));
    EXPECT_TRUE(is_pow2(f.array.cols));
    const MacCount macs = f.array.macs();
    EXPECT_GE(macs, MacCount{pow2(cfg.array_macs_min_exp)});
    EXPECT_LE(macs, MacCount{pow2(cfg.array_macs_max_exp)});
  }
}

TEST_F(GeneratorTest, Case2LabelsAreSearchOptima) {
  const BufferSizeSpace space;
  Case2Config cfg;
  const Dataset ds = generate_case2(30, space, sim_, cfg, 4);
  BufferSearch search(space, sim_);
  for (std::size_t i = 0; i < ds.size(); ++i) {
    const Case2Features f = decode_case2(ds[i].features);
    EXPECT_EQ(ds[i].label, search.best(f.workload, f.array, f.bandwidth, f.limit_kb).label);
  }
}

TEST_F(GeneratorTest, Case3SchemaAndLabels) {
  const ScheduleSpace space(4);
  const auto arrays = default_scheduled_arrays();
  const Dataset ds = generate_case3(50, space, arrays, sim_, {}, 5);
  EXPECT_EQ(ds.num_features(), 12);
  EXPECT_EQ(ds.num_classes(), 1944);
  ScheduleSearch search(space, arrays, sim_);
  for (std::size_t i = 0; i < ds.size(); ++i) {
    const auto workloads = decode_case3(ds[i].features);
    ASSERT_EQ(workloads.size(), 4u);
    EXPECT_EQ(ds[i].label, search.best(workloads).label);
  }
}

TEST_F(GeneratorTest, Case3DecodeValidation) {
  EXPECT_THROW(decode_case3({1, 2}), std::invalid_argument);
  EXPECT_THROW(decode_case3({}), std::invalid_argument);
  const auto ws = decode_case3({1, 2, 3, 4, 5, 6});
  ASSERT_EQ(ws.size(), 2u);
  EXPECT_EQ(ws[1].k, 6);
}

// ------------------------------------------------- sharding determinism
// The contract multi-process generation rests on (see generator.hpp):
// splitting a run into K contiguous shards, generating each with an
// INDEPENDENT cache (as separate processes would), and merging the binary
// shard files in shard order must be byte-identical to the single-process
// run at the same seed.

namespace {
std::string file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}
}  // namespace

TEST_F(GeneratorTest, Case1ShardMergeByteIdenticalForK2AndK4) {
  const ArrayDataflowSpace space(10);
  Case1Config cfg;
  cfg.budget_max_exp = 10;
  const std::string dir = ::testing::TempDir();
  const std::size_t n = 90;

  const Dataset full = generate_case1(n, space, sim_, cfg, 7);
  write_binary_dataset(full, dir + "c1_full.bin");

  for (const std::size_t shards : {2u, 4u}) {
    std::vector<std::string> paths;
    for (std::size_t s = 0; s < shards; ++s) {
      const Case1SweepCache cache(space, sim_);  // fresh per shard
      const Dataset part =
          generate_case1_range(n * s / shards, n * (s + 1) / shards, space, cfg, 7, cache);
      paths.push_back(dir + "c1_shard" + std::to_string(s) + ".bin");
      write_binary_dataset(part, paths.back());
    }
    merge_binary_shards(paths, dir + "c1_merged.bin");
    EXPECT_EQ(file_bytes(dir + "c1_full.bin"), file_bytes(dir + "c1_merged.bin"))
        << "K=" << shards;
  }
}

TEST_F(GeneratorTest, Case2ShardMergeByteIdenticalForK2AndK4) {
  const BufferSizeSpace space;
  const Case2Config cfg;
  const std::string dir = ::testing::TempDir();
  const std::size_t n = 60;

  const Dataset full = generate_case2(n, space, sim_, cfg, 9);
  write_binary_dataset(full, dir + "c2_full.bin");

  for (const std::size_t shards : {2u, 4u}) {
    std::vector<std::string> paths;
    for (std::size_t s = 0; s < shards; ++s) {
      const Case2SweepCache cache(space, sim_);
      const Dataset part =
          generate_case2_range(n * s / shards, n * (s + 1) / shards, space, cfg, 9, cache);
      paths.push_back(dir + "c2_shard" + std::to_string(s) + ".bin");
      write_binary_dataset(part, paths.back());
    }
    merge_binary_shards(paths, dir + "c2_merged.bin");
    EXPECT_EQ(file_bytes(dir + "c2_full.bin"), file_bytes(dir + "c2_merged.bin"))
        << "K=" << shards;
  }
}

TEST_F(GeneratorTest, Case3ShardMergeByteIdenticalForK2AndK4) {
  const ScheduleSpace space(4);
  const auto arrays = default_scheduled_arrays();
  const Case3Config cfg;
  const std::string dir = ::testing::TempDir();
  const std::size_t n = 30;

  const Dataset full = generate_case3(n, space, arrays, sim_, cfg, 13);
  write_binary_dataset(full, dir + "c3_full.bin");

  const ScheduleSearch search(space, arrays, sim_);
  for (const std::size_t shards : {2u, 4u}) {
    std::vector<std::string> paths;
    for (std::size_t s = 0; s < shards; ++s) {
      const Case3SweepCache cache(search);
      const Dataset part =
          generate_case3_range(n * s / shards, n * (s + 1) / shards, space, cfg, 13, cache);
      paths.push_back(dir + "c3_shard" + std::to_string(s) + ".bin");
      write_binary_dataset(part, paths.back());
    }
    merge_binary_shards(paths, dir + "c3_merged.bin");
    EXPECT_EQ(file_bytes(dir + "c3_full.bin"), file_bytes(dir + "c3_merged.bin"))
        << "K=" << shards;
  }
}

TEST_F(GeneratorTest, PointStreamSeedsAreStableAndSpread) {
  // The sharding contract pins these values across processes and builds;
  // a change here silently breaks every saved shard workflow.
  EXPECT_EQ(point_stream_seed(42, 0), point_stream_seed(42, 0));
  EXPECT_NE(point_stream_seed(42, 0), point_stream_seed(42, 1));
  EXPECT_NE(point_stream_seed(42, 0), point_stream_seed(43, 0));
}

}  // namespace
}  // namespace airch
