// Focused behavioural tests for the from-scratch boosted trees and SVCs
// beyond the shared model-zoo suite.

#include <gtest/gtest.h>

#include "models/gbt.hpp"
#include "models/svc.hpp"

namespace airch {
namespace {

/// One feature, two classes, clean threshold at 500.
Dataset threshold_dataset(std::size_t n, std::uint64_t seed) {
  Dataset ds({"x"}, 2);
  Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    const std::int64_t x = rng.uniform_int(0, 1000);
    ds.add({{x}, x > 500 ? 1 : 0});
  }
  return ds;
}

TEST(GbtDetails, NailsSingleThreshold) {
  const Dataset train = threshold_dataset(2000, 1);
  const Dataset test = threshold_dataset(500, 2);
  const FeatureEncoder enc(train);
  GbtClassifier::Options o;
  o.rounds = 5;
  GbtClassifier clf("gbt", o);
  clf.fit(train, {}, enc);
  // Trees split on buckets; the only error source is the bucket straddling
  // the threshold.
  EXPECT_GT(clf.accuracy(test, enc), 0.97);
}

TEST(GbtDetails, DeterministicAcrossRuns) {
  const Dataset train = threshold_dataset(1000, 3);
  const Dataset test = threshold_dataset(200, 4);
  const FeatureEncoder enc(train);
  GbtClassifier::Options o;
  o.rounds = 3;
  GbtClassifier a("a", o), b("b", o);
  a.fit(train, {}, enc);
  b.fit(train, {}, enc);
  EXPECT_EQ(a.predict(test, enc), b.predict(test, enc));
}

TEST(GbtDetails, MoreRoundsImproveTrainFit) {
  // Training loss must be non-increasing across boosting rounds.
  const Dataset train = threshold_dataset(1000, 5);
  const FeatureEncoder enc(train);
  GbtClassifier::Options o;
  o.rounds = 8;
  GbtClassifier clf("gbt", o);
  const auto history = clf.fit(train, {}, enc);
  ASSERT_EQ(history.size(), 8u);
  for (std::size_t i = 1; i < history.size(); ++i) {
    EXPECT_LE(history[i].train_loss, history[i - 1].train_loss + 1e-9) << i;
  }
}

TEST(GbtDetails, HandlesClassAbsentFromSubsample) {
  // Rare class with max_train_points subsampling must not crash.
  Dataset ds({"x"}, 3);
  Rng rng(7);
  for (int i = 0; i < 500; ++i) {
    const std::int64_t x = rng.uniform_int(0, 1000);
    ds.add({{x}, x > 990 ? 2 : (x > 500 ? 1 : 0)});  // class 2 is rare
  }
  const FeatureEncoder enc(ds);
  GbtClassifier::Options o;
  o.rounds = 2;
  o.max_train_points = 100;
  GbtClassifier clf("gbt", o);
  EXPECT_NO_THROW(clf.fit(ds, {}, enc));
}

TEST(SvcDetails, PerfectlySeparableIsLearnedExactly) {
  // Wide-margin two-class problem in standardized-log space.
  Dataset ds({"x"}, 2);
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const bool big = rng.uniform() < 0.5;
    const std::int64_t x = big ? rng.uniform_int(10000, 100000) : rng.uniform_int(1, 10);
    ds.add({{x}, big ? 1 : 0});
  }
  auto [train, test] = ds.split(0.8);
  const FeatureEncoder enc(train);
  auto clf = make_svc_linear(1);
  clf->fit(train, {}, enc);
  EXPECT_GT(clf->accuracy(test, enc), 0.99);
}

TEST(SvcDetails, RffDeterministicForSeed) {
  const Dataset train = threshold_dataset(800, 11);
  const Dataset test = threshold_dataset(200, 12);
  const FeatureEncoder enc(train);
  auto a = make_svc_rbf(42);
  auto b = make_svc_rbf(42);
  a->fit(train, {}, enc);
  b->fit(train, {}, enc);
  EXPECT_EQ(a->predict(test, enc), b->predict(test, enc));
}

TEST(SvcDetails, RbfBeatsLinearOnXorProblem) {
  // XOR of two thresholds: no linear separator exists (linear machine is
  // stuck near 50%); the RBF feature map handles it.
  Dataset ds({"a", "b"}, 2);
  Rng rng(13);
  for (int i = 0; i < 4000; ++i) {
    const std::int64_t a = rng.uniform_int(0, 1000);
    const std::int64_t b = rng.uniform_int(0, 1000);
    ds.add({{a, b}, ((a > 500) != (b > 500)) ? 1 : 0});
  }
  auto [train, test] = ds.split(0.8);
  const FeatureEncoder enc(train);
  auto linear = make_svc_linear(1);
  auto rbf = make_svc_rbf(1);
  linear->fit(train, {}, enc);
  rbf->fit(train, {}, enc);
  EXPECT_LT(linear->accuracy(test, enc), 0.65);  // no linear separator
  EXPECT_GT(rbf->accuracy(test, enc), linear->accuracy(test, enc) + 0.1);
}

TEST(SvcDetails, HistoryLengthMatchesEpochs) {
  const Dataset train = threshold_dataset(500, 15);
  const FeatureEncoder enc(train);
  SvcClassifier::Options o;
  o.epochs = 7;
  SvcClassifier clf("svc", o);
  EXPECT_EQ(clf.fit(train, {}, enc).size(), 7u);
}

}  // namespace
}  // namespace airch
