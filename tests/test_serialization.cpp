// Persistence round-trips: a saved encoder / classifier / recommender must
// reload to bit-identical predictions.

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "core/recommender.hpp"
#include "dataset/encoding.hpp"
#include "models/neural.hpp"

namespace airch {
namespace {

Dataset synthetic(std::size_t n, std::uint64_t seed) {
  Dataset ds({"a", "b", "c"}, 5);
  Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    const std::int64_t a = rng.log_uniform_int(1, 4096);
    const std::int64_t b = rng.uniform_int(0, 3);
    const std::int64_t c = rng.log_uniform_int(1, 512);
    ds.add({{a, b, c}, static_cast<std::int32_t>((a + b + c) % 5)});
  }
  return ds;
}

TEST(EncoderSerialization, RoundTripBuckets) {
  const Dataset ds = synthetic(500, 1);
  const FeatureEncoder enc(ds, 16);
  std::stringstream ss;
  enc.save(ss);
  const FeatureEncoder loaded = FeatureEncoder::load(ss);

  EXPECT_EQ(loaded.vocab_sizes(), enc.vocab_sizes());
  Rng rng(2);
  for (int trial = 0; trial < 500; ++trial) {
    const std::vector<std::int64_t> f = {rng.uniform_int(-10, 10000), rng.uniform_int(-1, 5),
                                         rng.uniform_int(0, 1000)};
    for (int col = 0; col < 3; ++col) {
      EXPECT_EQ(loaded.bucket(col, f[static_cast<std::size_t>(col)]),
                enc.bucket(col, f[static_cast<std::size_t>(col)]));
    }
    const auto a = enc.encode_float(f);
    const auto b = loaded.encode_float(f);
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_FLOAT_EQ(a.data()[i], b.data()[i]);
    }
  }
}

TEST(EncoderSerialization, RejectsGarbage) {
  std::stringstream ss("not an encoder");
  EXPECT_THROW(FeatureEncoder::load(ss), std::runtime_error);
}

TEST(ClassifierSerialization, RoundTripPredictions) {
  const Dataset train = synthetic(1000, 3);
  const Dataset test = synthetic(300, 4);
  const FeatureEncoder enc(train);

  auto clf = make_airchitect(1, 4);
  clf->fit(train, {}, enc);

  std::stringstream ss;
  clf->save(ss);
  auto loaded = NeuralClassifier::load(ss);

  EXPECT_EQ(loaded->name(), clf->name());
  const auto orig_preds = clf->predict(test, enc);
  const auto loaded_preds = loaded->predict(test, enc);
  EXPECT_EQ(orig_preds, loaded_preds);
}

TEST(ClassifierSerialization, FloatModalityRoundTrip) {
  const Dataset train = synthetic(1000, 5);
  const Dataset test = synthetic(200, 6);
  const FeatureEncoder enc(train);

  auto clf = make_mlp_a(1, 3);
  clf->fit(train, {}, enc);

  std::stringstream ss;
  clf->save(ss);
  auto loaded = NeuralClassifier::load(ss);
  EXPECT_EQ(loaded->predict(test, enc), clf->predict(test, enc));
}

TEST(ClassifierSerialization, SaveBeforeFitThrows) {
  auto clf = make_mlp_a(1, 3);
  std::stringstream ss;
  EXPECT_THROW(clf->save(ss), std::logic_error);
}

TEST(ClassifierSerialization, TruncatedStreamRejected) {
  const Dataset train = synthetic(500, 7);
  const FeatureEncoder enc(train);
  auto clf = make_mlp_a(1, 2);
  clf->fit(train, {}, enc);
  std::stringstream ss;
  clf->save(ss);
  const std::string full = ss.str();
  std::stringstream truncated(full.substr(0, full.size() / 2));
  EXPECT_THROW(NeuralClassifier::load(truncated), std::runtime_error);
}

class RecommenderSerialization : public ::testing::Test {
 protected:
  void SetUp() override { path_ = ::testing::TempDir() + "rec_test.airch"; }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

TEST_F(RecommenderSerialization, RoundTripQueries) {
  ArrayDataflowStudy study(Case1Config{5, 10, {}}, 10);
  Recommender::TrainOptions opts;
  opts.dataset_size = 2000;
  opts.epochs = 3;
  const Recommender rec = Recommender::train(study, opts);
  rec.save(path_);

  const Recommender loaded = Recommender::load(path_, study);
  EXPECT_DOUBLE_EQ(loaded.report().val_accuracy, rec.report().val_accuracy);

  Rng rng(11);
  for (int trial = 0; trial < 50; ++trial) {
    const GemmWorkload w{rng.log_uniform_int(4, 1 << 16), rng.log_uniform_int(4, 1 << 12),
                         rng.log_uniform_int(4, 1 << 12)};
    const int budget = static_cast<int>(rng.uniform_int(5, 10));
    EXPECT_EQ(loaded.recommend_array(w, budget), rec.recommend_array(w, budget));
  }
}

TEST_F(RecommenderSerialization, WrongStudyRejected) {
  ArrayDataflowStudy study(Case1Config{5, 10, {}}, 10);
  Recommender::TrainOptions opts;
  opts.dataset_size = 1000;
  opts.epochs = 2;
  Recommender::train(study, opts).save(path_);

  SchedulingStudy other;
  EXPECT_THROW(Recommender::load(path_, other), std::runtime_error);
}

TEST_F(RecommenderSerialization, MissingFileRejected) {
  ArrayDataflowStudy study(Case1Config{5, 10, {}}, 10);
  EXPECT_THROW(Recommender::load("/nonexistent/rec.airch", study), std::runtime_error);
}

TEST(RecommenderTopK, OrderedAndContainsTop1) {
  ArrayDataflowStudy study(Case1Config{5, 10, {}}, 10);
  Recommender::TrainOptions opts;
  opts.dataset_size = 2000;
  opts.epochs = 3;
  const Recommender rec = Recommender::train(study, opts);

  const std::vector<std::int64_t> features = {8, 512, 128, 256};
  const auto top1 = rec.recommend_label(features);
  const auto top5 = rec.recommend_topk(features, 5);
  ASSERT_EQ(top5.size(), 5u);
  EXPECT_EQ(top5[0], top1);
  // Labels are distinct.
  for (std::size_t i = 0; i < top5.size(); ++i) {
    for (std::size_t j = i + 1; j < top5.size(); ++j) {
      EXPECT_NE(top5[i], top5[j]);
    }
  }
  // k == the full space is the largest legal request; anything outside
  // [1, num_classes] is a caller bug and is rejected, not clamped.
  EXPECT_EQ(rec.recommend_topk(features, study.num_classes()).size(),
            static_cast<std::size_t>(study.num_classes()));
  EXPECT_THROW(rec.recommend_topk(features, 0), ContractViolation);
  EXPECT_THROW(rec.recommend_topk(features, -3), ContractViolation);
  EXPECT_THROW(rec.recommend_topk(features, study.num_classes() + 1), ContractViolation);
}

TEST_F(RecommenderSerialization, ValAccuracyRoundTripsExactly) {
  // save() must write val_accuracy at max_digits10 like the weights; the
  // old 6-digit default truncated it, so load() saw a different double.
  // Pin with a value 6 digits cannot represent: 990 points at a 0.9 split
  // leave 99 validation samples, and k/99 has a repeating decimal for every
  // k except 0 and 99 — so any non-degenerate accuracy differs from its
  // 6-digit rendering.
  ArrayDataflowStudy study(Case1Config{5, 10, {}}, 10);
  Recommender::TrainOptions opts;
  opts.dataset_size = 990;
  opts.epochs = 2;
  const Recommender rec = Recommender::train(study, opts);

  const double acc = rec.report().val_accuracy;
  std::ostringstream six;
  six << acc;  // the old code path: default 6-digit formatting
  ASSERT_NE(std::stod(six.str()), acc)
      << "val_accuracy happened to be 6-digit exact; pick a dataset_size "
         "whose validation split produces a non-terminating ratio";

  rec.save(path_);
  const Recommender loaded = Recommender::load(path_, study);
  EXPECT_EQ(loaded.report().val_accuracy, acc);
}

}  // namespace
}  // namespace airch
