#include "common/math_utils.hpp"

#include <gtest/gtest.h>

namespace airch {
namespace {

TEST(CeilDiv, ExactDivision) {
  EXPECT_EQ(ceil_div(12, 4), 3);
  EXPECT_EQ(ceil_div(0, 5), 0);
}

TEST(CeilDiv, RoundsUp) {
  EXPECT_EQ(ceil_div(13, 4), 4);
  EXPECT_EQ(ceil_div(1, 100), 1);
  EXPECT_EQ(ceil_div(99, 100), 1);
  EXPECT_EQ(ceil_div(101, 100), 2);
}

TEST(IsPow2, Powers) {
  for (int e = 0; e < 62; ++e) EXPECT_TRUE(is_pow2(std::int64_t{1} << e)) << e;
}

TEST(IsPow2, NonPowers) {
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(-4));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_FALSE(is_pow2(6));
  EXPECT_FALSE(is_pow2(1023));
}

TEST(Log2Floor, Values) {
  EXPECT_EQ(log2_floor(1), 0);
  EXPECT_EQ(log2_floor(2), 1);
  EXPECT_EQ(log2_floor(3), 1);
  EXPECT_EQ(log2_floor(4), 2);
  EXPECT_EQ(log2_floor(1023), 9);
  EXPECT_EQ(log2_floor(1024), 10);
}

TEST(Log2Ceil, Values) {
  EXPECT_EQ(log2_ceil(1), 0);
  EXPECT_EQ(log2_ceil(2), 1);
  EXPECT_EQ(log2_ceil(3), 2);
  EXPECT_EQ(log2_ceil(1023), 10);
  EXPECT_EQ(log2_ceil(1024), 10);
  EXPECT_EQ(log2_ceil(1025), 11);
}

TEST(Pow2, MatchesShift) {
  for (int e = 0; e < 62; ++e) EXPECT_EQ(pow2(e), std::int64_t{1} << e);
}

TEST(Pow2RoundTrip, Log2OfPow2) {
  for (int e = 0; e < 62; ++e) {
    EXPECT_EQ(log2_floor(pow2(e)), e);
    EXPECT_EQ(log2_ceil(pow2(e)), e);
  }
}

TEST(Geomean, SingleValue) { EXPECT_DOUBLE_EQ(geomean({4.0}), 4.0); }

TEST(Geomean, TwoValues) { EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12); }

TEST(Geomean, Empty) { EXPECT_DOUBLE_EQ(geomean({}), 0.0); }

TEST(Geomean, AtMostArithmeticMean) {
  const std::vector<double> xs = {0.5, 0.9, 1.0, 0.99, 0.2};
  EXPECT_LE(geomean(xs), mean(xs));
}

TEST(Mean, Values) {
  EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
}

TEST(ClampI64, Bounds) {
  EXPECT_EQ(clamp_i64(5, 0, 10), 5);
  EXPECT_EQ(clamp_i64(-5, 0, 10), 0);
  EXPECT_EQ(clamp_i64(15, 0, 10), 10);
}

// InvariantDiv must match plain / and ceil_div exactly for every
// non-negative dividend; exercised over divisor classes (1, powers of
// two, odd, even-composite, near-overflow) and boundary dividends.
TEST(InvariantDiv, MatchesPlainDivision) {
  const std::int64_t divisors[] = {1, 2, 3, 5, 7, 10, 64, 100, 127, 1000, 4096, 999999937};
  const std::int64_t big = std::int64_t{1} << 62;
  for (const std::int64_t d : divisors) {
    const InvariantDiv div(d);
    const std::int64_t xs[] = {0, 1, d - 1, d, d + 1, 2 * d - 1, 2 * d, 12345,
                               big - 1, big, big + d - 1};
    for (const std::int64_t x : xs) {
      ASSERT_EQ(div.floor_div(x), x / d) << "x=" << x << " d=" << d;
      ASSERT_EQ(div.ceil_div(x), ceil_div(x, d)) << "x=" << x << " d=" << d;
    }
  }
}

TEST(InvariantDiv, SweepSmallOperands) {
  for (std::int64_t d = 1; d <= 40; ++d) {
    const InvariantDiv div(d);
    for (std::int64_t x = 0; x <= 500; ++x) {
      ASSERT_EQ(div.floor_div(x), x / d) << "x=" << x << " d=" << d;
      ASSERT_EQ(div.ceil_div(x), ceil_div(x, d)) << "x=" << x << " d=" << d;
    }
  }
}

}  // namespace
}  // namespace airch
