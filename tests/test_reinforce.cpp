#include "search/reinforce.hpp"

#include <gtest/gtest.h>

#include "common/math_utils.hpp"
#include "search/exhaustive.hpp"
#include "workload/sampler.hpp"

namespace airch {
namespace {

class ReinforceTest : public ::testing::Test {
 protected:
  ReinforceTest() : space_(12), exhaustive_(space_, sim_), rl_(space_, sim_) {}
  Simulator sim_;
  ArrayDataflowSpace space_;
  ArrayDataflowSearch exhaustive_;
  ReinforceArrayDataflowSearch rl_;
};

TEST_F(ReinforceTest, FindsNearOptimalSolutions) {
  Rng rng(3);
  LogUniformGemmSampler sampler;
  for (int trial = 0; trial < 10; ++trial) {
    const GemmWorkload w = sampler.sample(rng);
    const auto opt = exhaustive_.best(w, 12);
    ReinforceOptions options;
    options.seed = static_cast<std::uint64_t>(trial) + 1;
    const auto rl = rl_.best(w, 12, options);
    EXPECT_LE(rl.cycles / opt.cycles, 1.3) << w.to_string();
    EXPECT_GE(rl.cycles, opt.cycles);
  }
}

TEST_F(ReinforceTest, RespectsBudget) {
  Rng rng(5);
  LogUniformGemmSampler sampler;
  for (int budget = 4; budget <= 12; budget += 2) {
    const GemmWorkload w = sampler.sample(rng);
    const auto r = rl_.best(w, budget);
    EXPECT_LE(space_.config(r.label).macs(), MacCount{pow2(budget)});
  }
}

TEST_F(ReinforceTest, DeterministicForSeed) {
  const GemmWorkload w{640, 320, 160};
  ReinforceOptions options;
  options.seed = 42;
  const auto a = rl_.best(w, 10, options);
  const auto b = rl_.best(w, 10, options);
  EXPECT_EQ(a.label, b.label);
  EXPECT_EQ(a.cycles, b.cycles);
}

TEST_F(ReinforceTest, EvaluationCountMatchesBudget) {
  ReinforceOptions options;
  options.iterations = 7;
  options.batch = 9;
  const auto r = rl_.best({100, 100, 100}, 10, options);
  EXPECT_EQ(r.evaluations, 63u);
}

TEST_F(ReinforceTest, ReportedCyclesMatchLabel) {
  const GemmWorkload w{555, 444, 333};
  const auto r = rl_.best(w, 11);
  EXPECT_EQ(r.cycles, exhaustive_.cycles_of(w, r.label));
}

TEST_F(ReinforceTest, MoreIterationsNeverHurtMuch) {
  // Best-seen is monotone given the same sample prefix; across seeds we
  // only require the long run to be at least as good on average.
  const GemmWorkload w{2000, 100, 3000};
  double short_sum = 0.0, long_sum = 0.0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    ReinforceOptions s;
    s.iterations = 3;
    s.seed = seed;
    ReinforceOptions l;
    l.iterations = 20;
    l.seed = seed;
    short_sum += static_cast<double>(rl_.best(w, 12, s).cycles.value());
    long_sum += static_cast<double>(rl_.best(w, 12, l).cycles.value());
  }
  EXPECT_LE(long_sum, short_sum);
}

}  // namespace
}  // namespace airch
