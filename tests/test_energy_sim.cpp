#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "sim/energy_model.hpp"
#include "sim/simulator.hpp"
#include "workload/sampler.hpp"

namespace airch {
namespace {

TEST(EnergyModel, ArithmeticMatchesCounts) {
  const GemmWorkload w{10, 10, 10};
  MemoryResult mem;
  mem.dram_ifmap_bytes = Bytes{100};
  mem.dram_filter_bytes = Bytes{50};
  mem.dram_ofmap_bytes = Bytes{25};
  mem.sram_bytes = Bytes{1000};
  EnergyParams p;
  p.mac_per_op = EnergyPerMac{1.0};
  p.sram_per_byte = EnergyPerByte{2.0};
  p.dram_per_byte = EnergyPerByte{10.0};
  const EnergyResult e = energy_cost(w, mem, p);
  EXPECT_EQ(e.compute_total, Picojoules{1000.0});
  EXPECT_EQ(e.sram_total, Picojoules{2000.0});
  EXPECT_EQ(e.dram_total, Picojoules{1750.0});
  EXPECT_EQ(e.total(), Picojoules{4750.0});
}

TEST(EnergyModel, ComponentsSumToTotalProperty) {
  // Across 1000 random (workload, array, memory) triples the typed energy
  // pipeline must satisfy total == compute + sram + dram exactly, and each
  // component must re-derive from the typed counts via the declared
  // dimension products (MACs x pJ/MAC, B x pJ/B) — no hidden unit slips.
  Rng rng(2024);
  const LogUniformGemmSampler sampler;
  const Simulator sim;
  for (int trial = 0; trial < 1000; ++trial) {
    const GemmWorkload w = sampler.sample(rng);
    const int row_exp = static_cast<int>(rng.uniform_int(1, 6));
    const int col_exp = static_cast<int>(rng.uniform_int(1, 6));
    const ArrayConfig a{pow2(row_exp), pow2(col_exp),
                        dataflow_from_index(static_cast<int>(rng.uniform_int(0, 2)))};
    const MemoryConfig m{rng.uniform_int(1, 500), rng.uniform_int(1, 500),
                         rng.uniform_int(1, 500), rng.uniform_int(1, 50)};
    const SimResult r = sim.simulate(w, a, m);
    const EnergyParams& p = sim.energy_params();
    EXPECT_EQ(r.energy.total(),
              r.energy.compute_total + r.energy.sram_total + r.energy.dram_total);
    EXPECT_EQ(r.energy.compute_total, w.macs() * p.mac_per_op);
    EXPECT_EQ(r.energy.sram_total, r.memory.sram_bytes * p.sram_per_byte);
    EXPECT_EQ(r.energy.dram_total, r.memory.dram_total_bytes() * p.dram_per_byte);
    EXPECT_GE(r.energy.total(), Picojoules{0.0});
  }
}

TEST(EnergyModel, DramDominatesByDefault) {
  // Default constants keep the DRAM:SRAM per-byte ratio >> 1 (the design
  // pressure that makes buffer sizing matter).
  const EnergyParams p;
  EXPECT_GT(p.dram_per_byte / p.sram_per_byte, 50.0);
}

TEST(Simulator, TotalIsComputePlusStalls) {
  const Simulator sim;
  const GemmWorkload w{100, 200, 300};
  const ArrayConfig a{16, 16, Dataflow::kWeightStationary};
  const MemoryConfig m{200, 200, 200, 5};
  const SimResult r = sim.simulate(w, a, m);
  EXPECT_EQ(r.total_cycles(), r.compute.cycles + r.memory.stall_cycles);
  EXPECT_GT(r.energy.total(), Picojoules{0.0});
}

TEST(Simulator, ComputeCyclesMatchesComputeModel) {
  const Simulator sim;
  const GemmWorkload w{64, 64, 64};
  const ArrayConfig a{8, 8, Dataflow::kOutputStationary};
  EXPECT_EQ(sim.compute_cycles(w, a), compute_latency(w, a).cycles);
}

TEST(Simulator, MoreBandwidthNeverSlower) {
  const Simulator sim;
  const GemmWorkload w{512, 256, 1024};
  const ArrayConfig a{32, 32, Dataflow::kInputStationary};
  Cycles prev{std::numeric_limits<std::int64_t>::max()};
  for (std::int64_t bw : {1, 4, 16, 64}) {
    const MemoryConfig m{300, 300, 300, bw};
    const auto total = sim.simulate(w, a, m).total_cycles();
    EXPECT_LE(total, prev);
    prev = total;
  }
}

TEST(Simulator, EnergyScalesWithWorkload) {
  const Simulator sim;
  const ArrayConfig a{16, 16, Dataflow::kOutputStationary};
  const MemoryConfig m{500, 500, 500, 10};
  const Picojoules small = sim.simulate({64, 64, 64}, a, m).energy.total();
  const Picojoules big = sim.simulate({256, 256, 256}, a, m).energy.total();
  EXPECT_GT(big, small);
}

TEST(Dataflow, StringRoundTrip) {
  for (Dataflow d : kAllDataflows) {
    EXPECT_EQ(dataflow_from_string(to_string(d)), d);
  }
  EXPECT_EQ(dataflow_from_string("os"), Dataflow::kOutputStationary);
  EXPECT_THROW(dataflow_from_string("XX"), std::invalid_argument);
}

TEST(Dataflow, IndexRoundTrip) {
  for (int i = 0; i < kNumDataflows; ++i) {
    EXPECT_EQ(dataflow_index(dataflow_from_index(i)), i);
  }
}

TEST(ArrayConfig, MacsAndValidity) {
  const ArrayConfig a{8, 16, Dataflow::kOutputStationary};
  EXPECT_EQ(a.macs(), MacCount{128});
  EXPECT_TRUE(a.valid());
  EXPECT_FALSE((ArrayConfig{0, 4, Dataflow::kOutputStationary}).valid());
  EXPECT_EQ(a.to_string(), "8x16/OS");
}

TEST(MemoryConfig, CapacityConversions) {
  const MemoryConfig m{100, 200, 300, 10};
  EXPECT_EQ(m.ifmap_bytes(), Bytes{100 * 1024});
  EXPECT_EQ(m.total_kb(), 600);
  EXPECT_TRUE(m.valid());
  EXPECT_FALSE((MemoryConfig{0, 1, 1, 1}).valid());
  EXPECT_FALSE((MemoryConfig{1, 1, 1, 0}).valid());
}

}  // namespace
}  // namespace airch
