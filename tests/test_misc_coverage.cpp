// Grab-bag coverage: trace-sim SRAM accounting for the stationary
// dataflows, dataset split ordering, and recommender output wiring.

#include <gtest/gtest.h>

#include "core/recommender.hpp"
#include "sim/trace_sim.hpp"

namespace airch {
namespace {

TEST(TraceSramCounts, WeightStationarySingleFold) {
  // M=8, K=8, N=8 on an 8x8 WS array: one fold.
  // Weights preloaded once (8*8) + A streamed (8*8).
  GemmMatrix a(8, 8), b(8, 8);
  for (auto& v : a.data) v = 1;
  for (auto& v : b.data) v = 1;
  const TraceSimulator sim;
  const TraceResult r = sim.run(a, b, {8, 8, Dataflow::kWeightStationary});
  EXPECT_EQ(r.folds, 1);
  EXPECT_EQ(r.sram_reads, Bytes{8 * 8 + 8 * 8});
}

TEST(TraceSramCounts, InputStationarySingleFold) {
  GemmMatrix a(8, 8), b(8, 8);
  for (auto& v : a.data) v = 2;
  for (auto& v : b.data) v = 3;
  const TraceSimulator sim;
  const TraceResult r = sim.run(a, b, {8, 8, Dataflow::kInputStationary});
  EXPECT_EQ(r.folds, 1);
  // Stationary A tile (8*8) + streamed B (8*8).
  EXPECT_EQ(r.sram_reads, Bytes{8 * 8 + 8 * 8});
}

TEST(TraceSramCounts, FoldedWsRefetchesActivations) {
  // K=16 on 8 rows: two reduction folds; A slice streamed once per fold.
  GemmMatrix a(8, 16), b(16, 8);
  for (auto& v : a.data) v = 1;
  for (auto& v : b.data) v = 1;
  const TraceSimulator sim;
  const TraceResult r = sim.run(a, b, {8, 8, Dataflow::kWeightStationary});
  EXPECT_EQ(r.folds, 2);
  // Weights: 16*8 once. A: each fold streams its 8x8 K-slice.
  EXPECT_EQ(r.sram_reads, Bytes{16 * 8 + 2 * 8 * 8});
}

TEST(DatasetSplit, HeadIsPrefix) {
  Dataset ds({"a"}, 10);
  for (int i = 0; i < 10; ++i) ds.add({{i}, static_cast<std::int32_t>(i)});
  auto [head, tail] = ds.split(0.3);
  ASSERT_EQ(head.size(), 3u);
  EXPECT_EQ(head[0].features[0], 0);
  EXPECT_EQ(head[2].features[0], 2);
  EXPECT_EQ(tail[0].features[0], 3);
  EXPECT_EQ(tail[6].features[0], 9);
}

TEST(RecommenderWiring, BufferRecommendationCarriesBandwidth) {
  BufferSizingStudy study;
  Recommender::TrainOptions opts;
  opts.dataset_size = 600;
  opts.epochs = 2;
  const Recommender rec = Recommender::train(study, opts);
  const MemoryConfig m =
      rec.recommend_buffers(900, {512, 512, 512}, {16, 16, Dataflow::kWeightStationary}, 37);
  EXPECT_EQ(m.bandwidth, 37);
  EXPECT_GE(m.ifmap_kb, 100);
  EXPECT_LE(m.ifmap_kb, 1000);
  EXPECT_EQ(m.ifmap_kb % 100, 0);
}

TEST(RecommenderWiring, TrainReportHasHistory) {
  ArrayDataflowStudy study(Case1Config{5, 8, {}}, 8);
  Recommender::TrainOptions opts;
  opts.dataset_size = 500;
  opts.epochs = 3;
  const Recommender rec = Recommender::train(study, opts);
  EXPECT_EQ(rec.report().history.size(), 3u);
  EXPECT_EQ(&rec.study(), static_cast<const CaseStudy*>(&study));
}

}  // namespace
}  // namespace airch
