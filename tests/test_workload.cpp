#include <gtest/gtest.h>

#include "workload/conv.hpp"
#include "workload/gemm.hpp"
#include "workload/model_zoo.hpp"
#include "workload/sampler.hpp"

namespace airch {
namespace {

TEST(Gemm, OperationCounts) {
  const GemmWorkload w{8, 16, 32};
  EXPECT_EQ(w.macs(), MacCount{8 * 16 * 32});
  EXPECT_EQ(w.ifmap_elems(), 8 * 32);
  EXPECT_EQ(w.filter_elems(), 32 * 16);
  EXPECT_EQ(w.ofmap_elems(), 8 * 16);
}

TEST(Gemm, Validity) {
  EXPECT_TRUE((GemmWorkload{1, 1, 1}).valid());
  EXPECT_FALSE((GemmWorkload{0, 1, 1}).valid());
  EXPECT_FALSE((GemmWorkload{1, -2, 1}).valid());
}

TEST(Conv, OutputDims) {
  // AlexNet conv1: 227x227x3, 96 filters 11x11 stride 4 -> 55x55 output.
  const ConvLayer c{"conv1", 227, 227, 3, 96, 11, 4, 0};
  EXPECT_EQ(c.out_h(), 55);
  EXPECT_EQ(c.out_w(), 55);
}

TEST(Conv, Im2ColLowering) {
  const ConvLayer c{"conv1", 227, 227, 3, 96, 11, 4, 0};
  const GemmWorkload g = c.to_gemm();
  EXPECT_EQ(g.m, 55 * 55);
  EXPECT_EQ(g.n, 96);
  EXPECT_EQ(g.k, 11 * 11 * 3);
}

TEST(Conv, PaddingPreservesSize) {
  const ConvLayer c{"same", 56, 56, 64, 64, 3, 1, 1};
  EXPECT_EQ(c.out_h(), 56);
  EXPECT_EQ(c.out_w(), 56);
}

TEST(Conv, PointwiseIsChannelGemm) {
  const ConvLayer c{"pw", 14, 14, 512, 512, 1, 1, 0};
  const GemmWorkload g = c.to_gemm();
  EXPECT_EQ(g.m, 14 * 14);
  EXPECT_EQ(g.k, 512);
  EXPECT_EQ(g.n, 512);
}

TEST(Conv, DilationExpandsReceptiveField) {
  ConvLayer c{"dilated", 56, 56, 64, 64, 3, 1, 2};
  c.dilation = 2;
  // effective kernel = 2*(3-1)+1 = 5; padding 2 preserves size.
  EXPECT_EQ(c.effective_kernel(), 5);
  EXPECT_EQ(c.out_h(), 56);
  // K is unchanged by dilation (same number of taps).
  EXPECT_EQ(c.to_gemm().k, 3 * 3 * 64);
}

TEST(Conv, GroupedLoweringSplitsChannels) {
  ConvLayer c{"grouped", 28, 28, 128, 256, 3, 1, 1};
  c.groups = 4;
  const GemmWorkload g = c.to_gemm();
  EXPECT_EQ(g.n, 64);           // 256 / 4 filters per group
  EXPECT_EQ(g.k, 3 * 3 * 32);   // 128 / 4 channels per group
  EXPECT_EQ(c.to_gemms().size(), 4u);
  // Total MACs = groups * per-group MACs = dense MACs / groups.
  ConvLayer dense = c;
  dense.groups = 1;
  EXPECT_EQ(4 * g.macs(), dense.to_gemm().macs() / 4);
}

TEST(Conv, DepthwiseIsDegenerateGrouping) {
  ConvLayer c{"dw", 112, 112, 32, 32, 3, 1, 1};
  c.groups = 32;
  const GemmWorkload g = c.to_gemm();
  EXPECT_EQ(g.n, 1);
  EXPECT_EQ(g.k, 9);
  EXPECT_TRUE(c.valid());
}

TEST(Conv, InvalidGroupingRejected) {
  ConvLayer c{"bad", 28, 28, 30, 64, 3, 1, 1};
  c.groups = 4;  // 30 % 4 != 0
  EXPECT_FALSE(c.valid());
}

TEST(Fc, Lowering) {
  const FcLayer f{"fc", 16, 4096, 1000};
  const GemmWorkload g = f.to_gemm();
  EXPECT_EQ(g.m, 16);
  EXPECT_EQ(g.k, 4096);
  EXPECT_EQ(g.n, 1000);
}

TEST(ModelZoo, HasFiveNetworks) {
  const auto zoo = model_zoo();
  ASSERT_EQ(zoo.size(), 5u);
  EXPECT_EQ(zoo[0].name, "AlexNet");
  EXPECT_EQ(zoo[4].name, "FasterRCNN");
}

TEST(ModelZoo, AllLayersValid) {
  for (const auto& net : model_zoo()) {
    for (const auto& c : net.conv_layers) {
      EXPECT_TRUE(c.valid()) << net.name << "/" << c.name;
    }
    for (const auto& g : net.gemms()) {
      EXPECT_TRUE(g.valid()) << net.name;
    }
  }
}

TEST(ModelZoo, NamesMatchGemms) {
  for (const auto& net : model_zoo()) {
    EXPECT_EQ(net.layer_names().size(), net.gemms().size()) << net.name;
  }
}

TEST(ModelZoo, ZooGemmsConcatenatesAll) {
  std::size_t total = 0;
  for (const auto& net : model_zoo()) total += net.gemms().size();
  EXPECT_EQ(zoo_gemms().size(), total);
  EXPECT_GT(total, 50u);  // a meaningful Fig. 7(a) population
}

TEST(ModelZoo, ResNetBlocksShrinkSpatially) {
  const auto net = make_resnet18();
  // First conv dominates M (output pixels); later layers have smaller M.
  const auto gemms = net.gemms();
  EXPECT_GT(gemms.front().m, gemms[gemms.size() - 2].m);
}

class SamplerBounds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SamplerBounds, LogUniformRespectsBounds) {
  GemmDimBounds b;
  b.m_min = 8;
  b.m_max = 1024;
  b.n_min = 2;
  b.n_max = 64;
  b.k_min = 16;
  b.k_max = 512;
  LogUniformGemmSampler sampler(b);
  Rng rng(GetParam());
  for (int i = 0; i < 2000; ++i) {
    const GemmWorkload w = sampler.sample(rng);
    ASSERT_GE(w.m, b.m_min);
    ASSERT_LE(w.m, b.m_max);
    ASSERT_GE(w.n, b.n_min);
    ASSERT_LE(w.n, b.n_max);
    ASSERT_GE(w.k, b.k_min);
    ASSERT_LE(w.k, b.k_max);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SamplerBounds, ::testing::Values(1u, 17u, 9999u));

TEST(Sampler, SampleManyCount) {
  LogUniformGemmSampler sampler;
  Rng rng(3);
  EXPECT_EQ(sampler.sample_many(rng, 123).size(), 123u);
}

TEST(Sampler, ZooEmpiricalProducesValidWorkloads) {
  ZooEmpiricalGemmSampler sampler(0.3);
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(sampler.sample(rng).valid());
  }
}

TEST(Sampler, ZooEmpiricalZeroJitterReproducesPopulation) {
  ZooEmpiricalGemmSampler sampler(0.0);
  Rng rng(7);
  const auto population = zoo_gemms();
  for (int i = 0; i < 200; ++i) {
    const GemmWorkload w = sampler.sample(rng);
    bool found = false;
    for (const auto& p : population) {
      if (p == w) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << w.to_string();
  }
}

TEST(Log2Histogram, BinsCorrectly) {
  const auto h = log2_histogram({1, 2, 3, 4, 7, 8, 1024}, 12);
  EXPECT_EQ(h[0], 1);   // 1
  EXPECT_EQ(h[1], 2);   // 2, 3
  EXPECT_EQ(h[2], 2);   // 4, 7
  EXPECT_EQ(h[3], 1);   // 8
  EXPECT_EQ(h[10], 1);  // 1024
}

TEST(Log2Histogram, OverflowClampsToLastBin) {
  const auto h = log2_histogram({1 << 20}, 4);
  EXPECT_EQ(h[3], 1);
}

TEST(Log2Histogram, IgnoresNonPositive) {
  const auto h = log2_histogram({0, -5, 2}, 4);
  std::int64_t total = 0;
  for (auto v : h) total += v;
  EXPECT_EQ(total, 1);
}

}  // namespace
}  // namespace airch
