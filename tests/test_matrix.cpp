#include "ml/matrix.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace airch::ml {
namespace {

Matrix naive_matmul(const Matrix& a, bool ta, const Matrix& b, bool tb) {
  const std::size_t m = ta ? a.cols() : a.rows();
  const std::size_t k = ta ? a.rows() : a.cols();
  const std::size_t n = tb ? b.rows() : b.cols();
  Matrix c(m, n);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (std::size_t p = 0; p < k; ++p) {
        const float av = ta ? a(p, i) : a(i, p);
        const float bv = tb ? b(j, p) : b(p, j);
        acc += av * bv;
      }
      c(i, j) = acc;
    }
  }
  return c;
}

Matrix random_matrix(std::size_t r, std::size_t c, Rng& rng) {
  Matrix m(r, c);
  for (std::size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
  }
  return m;
}

struct TransCase {
  bool ta, tb;
};

class MatmulTranspose : public ::testing::TestWithParam<TransCase> {};

TEST_P(MatmulTranspose, MatchesNaive) {
  const auto [ta, tb] = GetParam();
  Rng rng(7);
  const std::size_t m = 5, k = 7, n = 3;
  const Matrix a = ta ? random_matrix(k, m, rng) : random_matrix(m, k, rng);
  const Matrix b = tb ? random_matrix(n, k, rng) : random_matrix(k, n, rng);
  Matrix c(m, n);
  matmul(a, ta, b, tb, c);
  const Matrix expected = naive_matmul(a, ta, b, tb);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      EXPECT_NEAR(c(i, j), expected(i, j), 1e-5f) << i << "," << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllCombos, MatmulTranspose,
                         ::testing::Values(TransCase{false, false}, TransCase{true, false},
                                           TransCase{false, true}, TransCase{true, true}));

TEST(Matmul, AlphaBeta) {
  Rng rng(9);
  const Matrix a = random_matrix(4, 4, rng);
  const Matrix b = random_matrix(4, 4, rng);
  Matrix c(4, 4, 1.0f);
  matmul(a, false, b, false, c, 2.0f, 3.0f);
  const Matrix ab = naive_matmul(a, false, b, false);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      EXPECT_NEAR(c(i, j), 2.0f * ab(i, j) + 3.0f, 1e-5f);
    }
  }
}

TEST(Matrix, ResizeZeroes) {
  Matrix m(2, 2, 5.0f);
  m.resize(3, 3);
  EXPECT_EQ(m.rows(), 3u);
  for (std::size_t i = 0; i < m.size(); ++i) EXPECT_EQ(m.data()[i], 0.0f);
}

TEST(Matrix, GlorotWithinLimit) {
  Rng rng(11);
  Matrix m(64, 32);
  m.init_glorot(rng);
  const float limit = std::sqrt(6.0f / (64 + 32));
  bool nonzero = false;
  for (std::size_t i = 0; i < m.size(); ++i) {
    EXPECT_LE(std::abs(m.data()[i]), limit);
    nonzero |= m.data()[i] != 0.0f;
  }
  EXPECT_TRUE(nonzero);
}

TEST(Matrix, AddRowBroadcast) {
  Matrix y(2, 3, 1.0f);
  add_row_broadcast(y, {1.0f, 2.0f, 3.0f});
  EXPECT_EQ(y(0, 0), 2.0f);
  EXPECT_EQ(y(1, 2), 4.0f);
}

TEST(Matrix, ColumnSums) {
  Matrix m(3, 2);
  m(0, 0) = 1;
  m(1, 0) = 2;
  m(2, 0) = 3;
  m(0, 1) = -1;
  std::vector<float> sums;
  column_sums(m, sums);
  ASSERT_EQ(sums.size(), 2u);
  EXPECT_EQ(sums[0], 6.0f);
  EXPECT_EQ(sums[1], -1.0f);
}

}  // namespace
}  // namespace airch::ml
