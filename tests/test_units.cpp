// Unit tests for the strong quantity types (common/units.hpp): arithmetic
// that must work, the declared cross-dimension products, zero-overhead
// guarantees, and the two dimensional-analysis properties the cost models
// rely on (energy components sum to total; units survive the CSV boundary).
//
// The operations that must NOT compile live in tests/compile_fail/ and are
// exercised by the `compile_fail_*` CTest entries, not here.

#include "common/units.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "dataset/generator.hpp"
#include "search/exhaustive.hpp"
#include "sim/simulator.hpp"

namespace airch {
namespace {

TEST(Units, SameDimensionArithmetic) {
  constexpr Cycles a{100};
  constexpr Cycles b{38};
  static_assert((a + b).value() == 138);
  static_assert((a - b).value() == 62);
  static_assert((-b).value() == -38);
  Cycles acc{5};
  acc += Cycles{7};
  EXPECT_EQ(acc, Cycles{12});
  acc -= Cycles{2};
  EXPECT_EQ(acc, Cycles{10});
  ++acc;
  EXPECT_EQ(acc, Cycles{11});
}

TEST(Units, ScalarScaling) {
  constexpr Bytes b{64};
  static_assert((b * 3).value() == 192);
  static_assert((3 * b).value() == 192);
  static_assert((b / 4).value() == 16);
  Bytes acc{10};
  acc *= 5;
  EXPECT_EQ(acc, Bytes{50});
}

TEST(Units, RatioIsDimensionlessDouble) {
  constexpr Cycles fast{100};
  constexpr Cycles slow{400};
  static_assert(fast / slow == 0.25);
  // Double-backed quantities divide the same way.
  EXPECT_DOUBLE_EQ(Picojoules{3.0} / Picojoules{12.0}, 0.25);
}

TEST(Units, ComparisonsAndOrdering) {
  EXPECT_LT(Cycles{1}, Cycles{2});
  EXPECT_GE(Cycles{2}, Cycles{2});
  EXPECT_EQ(MacCount{7}, MacCount{7});
  EXPECT_NE(Bytes{1}, Bytes{2});
}

TEST(Units, DeclaredCrossProducts) {
  static_assert((MacCount{1000} * EnergyPerMac{0.2}).value() == 200.0);
  static_assert((EnergyPerMac{0.2} * MacCount{1000}).value() == 200.0);
  static_assert((Bytes{100} * EnergyPerByte{1.5}).value() == 150.0);
  static_assert((EnergyPerByte{1.5} * Bytes{100}).value() == 150.0);
}

TEST(Units, CeilDivBytesOverBandwidthIsCycles) {
  // A partially filled beat still occupies the bus for a full cycle.
  static_assert(ceil_div(Bytes{100}, BytesPerCycle{10}) == Cycles{10});
  static_assert(ceil_div(Bytes{101}, BytesPerCycle{10}) == Cycles{11});
  static_assert(ceil_div(Bytes{0}, BytesPerCycle{10}) == Cycles{0});
}

TEST(Units, CeilDivSameTagIsDimensionlessCount) {
  static_assert(ceil_div(MacCount{1024}, MacCount{1000}) == 2);
  static_assert(ceil_div(MacCount{1000}, MacCount{1000}) == 1);
}

TEST(Units, StreamingAppendsUnitSuffix) {
  std::ostringstream os;
  os << Cycles{38} << " / " << Picojoules{1.5} << " / " << Utilization{0.5};
  EXPECT_EQ(os.str(), "38 cyc / 1.5 pJ / 0.5");
}

TEST(Units, ZeroOverheadLayout) {
  // The static_asserts in units.hpp are the real gate; restate the core
  // claims here so a failure shows up in test output too.
  EXPECT_EQ(sizeof(Cycles), sizeof(std::int64_t));
  EXPECT_EQ(sizeof(Picojoules), sizeof(double));
  EXPECT_TRUE(std::is_trivially_copyable_v<Bytes>);
}

// ------------------------------------------------------ dimensional props
// (The 1k-workload energy-sum property lives with the other energy-model
// coverage in tests/test_energy_sim.cpp.)

TEST(UnitsProperty, QuantitiesRoundTripThroughCsvBoundary) {
  // The only sanctioned way out of the type system is the serialization
  // boundary. Generate a labelled dataset, push it through CSV and back,
  // and check that re-entering the typed world reproduces the identical
  // typed costs — i.e. nothing is lost or rescaled at the boundary.
  const ArrayDataflowSpace space(10);
  const Simulator sim;
  Case1Config cfg;
  cfg.budget_min_exp = 4;
  cfg.budget_max_exp = space.max_macs_exp();
  const Dataset ds = generate_case1(40, space, sim, cfg, 7);

  const std::string path = ::testing::TempDir() + "units_roundtrip.csv";
  ds.save_csv(path);
  const Dataset loaded = Dataset::load_csv(path, space.size());
  std::remove(path.c_str());

  ASSERT_EQ(loaded.size(), ds.size());
  const ArrayDataflowSearch search(space, sim);
  for (std::size_t i = 0; i < ds.size(); ++i) {
    ASSERT_EQ(loaded[i].features, ds[i].features);
    ASSERT_EQ(loaded[i].label, ds[i].label);
    const Case1Features f = decode_case1(loaded[i].features);
    const Cycles before = search.cycles_of(decode_case1(ds[i].features).workload, ds[i].label);
    const Cycles after = search.cycles_of(f.workload, loaded[i].label);
    EXPECT_EQ(before, after);
  }
}

}  // namespace
}  // namespace airch
