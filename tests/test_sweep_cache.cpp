// Property tests for the search acceleration layer (search/sweep_cache):
// the correctness bar is *bit-identical* results between the cached /
// factored / prefix-argmin path and the naive exhaustive sweeps, across
// random (workload, budget/array/limit) queries for all three case
// studies, plus a multi-threaded hammer on the sharded memo table.

#include "search/sweep_cache.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "dataset/generator.hpp"
#include "workload/sampler.hpp"

namespace airch {
namespace {

// Query mix: mostly fresh log-uniform workloads, with a slice resampled
// from a small pool so the memo table's hit path is exercised too.
GemmWorkload draw_workload(Rng& rng, const LogUniformGemmSampler& sampler,
                           std::vector<GemmWorkload>& pool) {
  if (!pool.empty() && rng.uniform() < 0.3) {
    return pool[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(pool.size()) - 1))];
  }
  const GemmWorkload w = sampler.sample(rng);
  if (pool.size() < 64) pool.push_back(w);
  return w;
}

// ------------------------------------------------------------- case 1

TEST(Case1SweepCache, BitIdenticalToNaiveOn10kQueries) {
  const ArrayDataflowSpace space;  // paper default: 459 labels
  const Simulator sim;
  const ArrayDataflowSearch naive(space, sim);
  const Case1SweepCache cache(space, sim);

  Rng rng(11);
  LogUniformGemmSampler sampler;
  std::vector<GemmWorkload> pool;
  for (int q = 0; q < 10000; ++q) {
    const GemmWorkload w = draw_workload(rng, sampler, pool);
    // Budgets span infeasible-adjacent (2) through beyond-the-space (22).
    const int budget_exp = static_cast<int>(rng.uniform_int(2, 22));
    const auto expect = naive.best(w, budget_exp);
    const auto got = cache.best(w, budget_exp);
    ASSERT_EQ(got.label, expect.label) << w.to_string() << " budget_exp=" << budget_exp;
    ASSERT_EQ(got.cycles, expect.cycles) << w.to_string() << " budget_exp=" << budget_exp;
  }
  const CacheStats stats = cache.stats();
  EXPECT_GT(stats.hits, 0u);  // the pooled duplicates must hit
  // Tables are built lazily up to the highest queried budget, so a repeat
  // workload with a larger budget re-misses (extending its entry in
  // place); entries never exceed misses.
  EXPECT_LE(stats.entries, stats.misses);
}

TEST(Case1SweepCache, NonDefaultSpaceParameters) {
  const ArrayDataflowSpace space(12, 2);  // min_exp 2: smallest array 2^4
  const Simulator sim;
  const ArrayDataflowSearch naive(space, sim);
  const Case1SweepCache cache(space, sim);
  Rng rng(13);
  LogUniformGemmSampler sampler;
  for (int q = 0; q < 500; ++q) {
    const GemmWorkload w = sampler.sample(rng);
    const int budget_exp = static_cast<int>(rng.uniform_int(4, 14));
    EXPECT_EQ(cache.best(w, budget_exp).label, naive.best(w, budget_exp).label);
  }
}

TEST(Case1SweepCache, InfeasibleBudgetThrowsLikeNaive) {
  const ArrayDataflowSpace space;
  const Simulator sim;
  const Case1SweepCache cache(space, sim);
  EXPECT_THROW((void)cache.best({8, 8, 8}, 1), std::invalid_argument);
  EXPECT_EQ(cache.stats().entries, 0u);  // rejected before any sweep
}

// ------------------------------------------------------------- case 2

Case2Features sample_case2_query(Rng& rng, const LogUniformGemmSampler& sampler,
                                 std::vector<GemmWorkload>& pool,
                                 const BufferSizeSpace& space) {
  Case2Features f;
  f.workload = draw_workload(rng, sampler, pool);
  const int macs_exp = static_cast<int>(rng.uniform_int(4, 18));
  const int row_exp = static_cast<int>(rng.uniform_int(1, macs_exp - 1));
  f.array.rows = std::int64_t{1} << row_exp;
  f.array.cols = std::int64_t{1} << (macs_exp - row_exp);
  f.array.dataflow = dataflow_from_index(static_cast<int>(rng.uniform_int(0, 2)));
  f.bandwidth = rng.uniform_int(1, 100);
  // Includes non-multiples of the step and the infeasibility boundary.
  f.limit_kb = rng.uniform_int(3 * space.step_kb(), 2 * space.max_kb());
  return f;
}

TEST(Case2SweepCache, BitIdenticalToNaiveOn10kQueries) {
  const BufferSizeSpace space;  // paper default: 1000 labels
  const Simulator sim;
  const BufferSearch naive(space, sim);
  const Case2SweepCache cache(space, sim);

  Rng rng(17);
  LogUniformGemmSampler sampler;
  std::vector<GemmWorkload> pool;
  for (int q = 0; q < 10000; ++q) {
    const Case2Features f = sample_case2_query(rng, sampler, pool, space);
    const auto expect = naive.best(f.workload, f.array, f.bandwidth, f.limit_kb);
    const auto got = cache.best(f.workload, f.array, f.bandwidth, f.limit_kb);
    ASSERT_EQ(got.label, expect.label)
        << f.workload.to_string() << " array=" << f.array.to_string()
        << " bw=" << f.bandwidth << " limit=" << f.limit_kb;
    ASSERT_EQ(got.stall_cycles, expect.stall_cycles);
    ASSERT_EQ(got.total_kb, expect.total_kb);
  }
  EXPECT_GT(cache.stats().hits, 0u);
}

TEST(Case2SweepCache, InfeasibleLimitThrowsLikeNaive) {
  const BufferSizeSpace space;
  const Simulator sim;
  const Case2SweepCache cache(space, sim);
  const GemmWorkload w{64, 64, 64};
  const ArrayConfig array{8, 8, Dataflow::kOutputStationary};
  EXPECT_THROW((void)cache.best(w, array, 10, 3 * space.step_kb() - 1), std::invalid_argument);
  EXPECT_THROW((void)cache.best(w, array, 10, -100), std::invalid_argument);
}

// ------------------------------------------------------------- case 3

TEST(Case3SweepCache, BitIdenticalToNaiveOn10kQueries) {
  // 3-array system keeps the naive side fast (162 labels, 27 sims/query).
  const ScheduleSpace space(3);
  const Simulator sim;
  const std::vector<ScheduledArray> arrays = {
      {{32, 32, Dataflow::kOutputStationary}, {400, 400, 400, 50}},
      {{64, 8, Dataflow::kOutputStationary}, {300, 300, 300, 30}},
      {{16, 16, Dataflow::kOutputStationary}, {200, 200, 200, 20}},
  };
  const ScheduleSearch naive(space, arrays, sim);
  const Case3SweepCache cache(naive);

  Rng rng(19);
  LogUniformGemmSampler sampler;
  for (int q = 0; q < 10000; ++q) {
    // Re-query each workload set a second time through the memo.
    const auto wls = sampler.sample_many(rng, 3);
    const auto expect = naive.best(wls);
    const auto first = cache.best(wls);
    const auto again = cache.best(wls);
    ASSERT_EQ(first.label, expect.label);
    ASSERT_EQ(first.makespan_cycles, expect.makespan_cycles);
    ASSERT_EQ(first.energy_pj, expect.energy_pj);
    ASSERT_EQ(again.label, expect.label);
  }
  const CacheStats stats = cache.stats();
  EXPECT_GE(stats.hits, 10000u);
}

TEST(Case3SweepCache, DefaultFourArraySystem) {
  const ScheduleSpace space;  // paper default: 1944 labels
  const Simulator sim;
  const ScheduleSearch naive(space, default_scheduled_arrays(), sim);
  const Case3SweepCache cache(naive);
  Rng rng(23);
  LogUniformGemmSampler sampler;
  for (int q = 0; q < 300; ++q) {
    const auto wls = sampler.sample_many(rng, 4);
    EXPECT_EQ(cache.best(wls).label, naive.best(wls).label);
  }
}

// -------------------------------------------------- concurrent hammer

TEST(ShardedMemoCache, ComputesOncePerKeyAndCountsHits) {
  ShardedMemoCache<std::vector<std::int64_t>, std::int64_t, detail::I64SeqHash> cache;
  std::atomic<int> computes{0};
  for (int round = 0; round < 3; ++round) {
    for (std::int64_t k = 0; k < 100; ++k) {
      const std::int64_t v = cache.get_or_compute({k, k + 1}, [&] {
        computes.fetch_add(1);
        return k * 10;
      });
      ASSERT_EQ(v, k * 10);
    }
  }
  EXPECT_EQ(computes.load(), 100);
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, 100u);
  EXPECT_EQ(stats.misses, 100u);
  EXPECT_EQ(stats.hits, 200u);
  EXPECT_EQ(stats.races, 0u);      // single-threaded: no lost insert races
  EXPECT_EQ(stats.evictions, 0u);  // unbounded: nothing ever leaves
  EXPECT_EQ(stats.capacity, 0u);   // 0 = unbounded
}

TEST(ShardedMemoCache, GetOrUseProjectsUnderTheLock) {
  ShardedMemoCache<std::vector<std::int64_t>, std::vector<std::int64_t>, detail::I64SeqHash>
      cache;
  // Cache a 3-element table but extract a single element: the projection
  // result arrives by value, no reference into the table escapes.
  for (int round = 0; round < 2; ++round) {
    for (std::int64_t k = 0; k < 20; ++k) {
      const std::int64_t third = cache.get_or_use(
          {k}, [&] { return std::vector<std::int64_t>{k, 2 * k, 3 * k}; },
          [](const std::vector<std::int64_t>& table) { return table[2]; });
      ASSERT_EQ(third, 3 * k);
    }
  }
  EXPECT_EQ(cache.stats().misses, 20u);
  EXPECT_EQ(cache.stats().hits, 20u);
}

// Every query tallies exactly one of hits / misses / races — even when
// many threads race fresh keys (both compute; the loser's insert is a
// "race", not a miss) and while other threads snapshot stats()
// mid-hammer. Runs under TSan via the tsan label on this binary.
TEST(ShardedMemoCache, StatsInvariantUnderConcurrency) {
  ShardedMemoCache<std::vector<std::int64_t>, std::int64_t, detail::I64SeqHash> cache(4);
  constexpr std::size_t kQueries = 4000;
  constexpr std::int64_t kKeys = 16;  // few keys, many threads: force races
  std::atomic<int> mismatches{0};
  parallel_for(kQueries, 8, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      const auto k = static_cast<std::int64_t>(i) % kKeys;
      const std::int64_t v = cache.get_or_compute({k}, [&] { return k * k; });
      if (v != k * k) mismatches.fetch_add(1);
      if (i % 64 == 0) {
        // Concurrent stats(): internally consistent per-shard slices, and
        // entries can never exceed keys inserted so far.
        const CacheStats mid = cache.stats();
        if (mid.entries > static_cast<std::size_t>(kKeys)) mismatches.fetch_add(1);
      }
    }
  });
  EXPECT_EQ(mismatches.load(), 0);
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses + stats.races, kQueries);
  EXPECT_EQ(stats.misses, static_cast<std::uint64_t>(kKeys));  // one true miss per key
  EXPECT_EQ(stats.entries, static_cast<std::size_t>(kKeys));
}

// ---------------------------------------------------- bounded eviction

// Bounded caches must stay bit-identical to the naive sweeps: eviction
// only ever costs recomputation, never changes an answer. Capacities are
// chosen far below the working set so the clock hand turns over entries
// constantly.

TEST(ShardedMemoCache, BoundedEvictsAndStaysCorrect) {
  // 4 shards, cap 2 each: 8 resident entries for a 64-key working set.
  ShardedMemoCache<std::vector<std::int64_t>, std::int64_t, detail::I64SeqHash> cache(4, 8);
  EXPECT_EQ(cache.capacity(), 8u);
  std::atomic<int> computes{0};
  for (int round = 0; round < 5; ++round) {
    for (std::int64_t k = 0; k < 64; ++k) {
      const std::int64_t v = cache.get_or_compute({k, k ^ 7}, [&] {
        computes.fetch_add(1);
        return k * 11;
      });
      ASSERT_EQ(v, k * 11);
    }
  }
  const CacheStats stats = cache.stats();
  EXPECT_LE(stats.entries, stats.capacity);
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_GT(computes.load(), 64);  // evicted keys recompute...
  EXPECT_EQ(stats.hits + stats.misses + stats.races, 5u * 64u);  // ...but are tallied
}

TEST(Case1SweepCache, BoundedBitIdenticalUnderForcedEviction) {
  const ArrayDataflowSpace space;
  const Simulator sim;
  const ArrayDataflowSearch naive(space, sim);
  // max_workloads 16 -> 1 resident workload per shard (64 shards); a
  // 100-workload set collides in many shards, forcing constant turnover.
  const Case1SweepCache cache(space, sim, 0, 16);

  Rng rng(31);
  LogUniformGemmSampler sampler;
  const std::vector<GemmWorkload> keys = sampler.sample_many(rng, 100);
  for (int round = 0; round < 3; ++round) {
    for (const GemmWorkload& w : keys) {
      const int budget_exp = static_cast<int>(rng.uniform_int(4, 20));
      const auto expect = naive.best(w, budget_exp);
      const auto got = cache.best(w, budget_exp);
      ASSERT_EQ(got.label, expect.label) << w.to_string() << " budget_exp=" << budget_exp;
      ASSERT_EQ(got.cycles, expect.cycles);
    }
  }
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.capacity, 64u);  // per-shard cap rounds 16/64 up to 1
  EXPECT_LE(stats.entries, stats.capacity);
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_EQ(stats.hits + stats.misses, 300u);
}

TEST(Case2SweepCache, BoundedBitIdenticalUnderForcedEviction) {
  const BufferSizeSpace space;
  const Simulator sim;
  const BufferSearch naive(space, sim);
  const Case2SweepCache cache(space, sim, /*max_entries=*/8);

  Rng rng(37);
  LogUniformGemmSampler sampler;
  std::vector<GemmWorkload> pool;
  std::vector<Case2Features> queries;
  for (int i = 0; i < 100; ++i) queries.push_back(sample_case2_query(rng, sampler, pool, space));
  for (int round = 0; round < 3; ++round) {
    for (const Case2Features& f : queries) {
      const auto expect = naive.best(f.workload, f.array, f.bandwidth, f.limit_kb);
      const auto got = cache.best(f.workload, f.array, f.bandwidth, f.limit_kb);
      ASSERT_EQ(got.label, expect.label);
      ASSERT_EQ(got.stall_cycles, expect.stall_cycles);
      ASSERT_EQ(got.total_kb, expect.total_kb);
    }
  }
  const CacheStats stats = cache.stats();
  EXPECT_LE(stats.entries, stats.capacity);
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_EQ(stats.hits + stats.misses + stats.races, 300u);
}

TEST(Case3SweepCache, BoundedBitIdenticalUnderForcedEviction) {
  const ScheduleSpace space(3);
  const Simulator sim;
  const std::vector<ScheduledArray> arrays = {
      {{32, 32, Dataflow::kOutputStationary}, {400, 400, 400, 50}},
      {{64, 8, Dataflow::kOutputStationary}, {300, 300, 300, 30}},
      {{16, 16, Dataflow::kOutputStationary}, {200, 200, 200, 20}},
  };
  const ScheduleSearch naive(space, arrays, sim);
  const Case3SweepCache cache(naive, /*max_entries=*/8);

  Rng rng(41);
  LogUniformGemmSampler sampler;
  std::vector<std::vector<GemmWorkload>> queries;
  for (int i = 0; i < 100; ++i) queries.push_back(sampler.sample_many(rng, 3));
  for (int round = 0; round < 3; ++round) {
    for (const auto& wls : queries) {
      const auto expect = naive.best(wls);
      const auto got = cache.best(wls);
      ASSERT_EQ(got.label, expect.label);
      ASSERT_EQ(got.makespan_cycles, expect.makespan_cycles);
      ASSERT_EQ(got.energy_pj, expect.energy_pj);
    }
  }
  const CacheStats stats = cache.stats();
  EXPECT_LE(stats.entries, stats.capacity);
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_EQ(stats.hits + stats.misses + stats.races, 300u);
  // Both memo levels are bounded; the per-workload level obeys its cap too.
  const CacheStats astats = cache.array_stats();
  EXPECT_LE(astats.entries, astats.capacity);
}

// Labelled tsan (tests/CMakeLists.txt): many real threads hammer one memo
// table over a small, colliding key set while the result of every query is
// checked against the serially precomputed truth.
TEST(ShardedMemoCache, ConcurrentHammerIsRaceFreeAndDeterministic) {
  const ArrayDataflowSpace space(14);
  const Simulator sim;
  const ArrayDataflowSearch naive(space, sim);

  Rng rng(29);
  LogUniformGemmSampler sampler;
  const std::vector<GemmWorkload> keys = sampler.sample_many(rng, 24);
  std::vector<int> expected(keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    expected[i] = naive.best(keys[i], 12).label;
  }

  const Case1SweepCache cache(space, sim);
  std::atomic<int> mismatches{0};
  // 8 real workers (explicit overload) race over 4000 overlapping queries;
  // every key is requested by many threads at once.
  parallel_for(4000, 8, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      const std::size_t k = i % keys.size();
      if (cache.best(keys[k], 12).label != expected[k]) mismatches.fetch_add(1);
    }
  });
  EXPECT_EQ(mismatches.load(), 0);
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, keys.size());
  EXPECT_EQ(stats.hits + stats.misses, 4000u);
  EXPECT_GE(stats.misses, keys.size());  // racing threads may double-compute
}

// Same 8-thread stats-invariant hammer, driven through the migrated shard
// locks (common/sync.hpp Mutex/MutexLock instead of raw std::mutex /
// std::lock_guard): the sync-layer swap must preserve bit-identical labels
// and the hits+misses+races == queries accounting, including while other
// threads snapshot stats() mid-hammer. Bounded memo so the CLOCK eviction
// path also runs under the annotated locks. TSan-labelled via this binary.
TEST(Case2SweepCache, StatsInvariantUnderConcurrencyWithMigratedLocks) {
  const BufferSizeSpace space;
  const Simulator sim;
  const BufferSearch naive(space, sim);
  const Case2SweepCache cache(space, sim, /*max_entries=*/8);

  Rng rng(43);
  LogUniformGemmSampler sampler;
  std::vector<GemmWorkload> pool;
  std::vector<Case2Features> queries;
  std::vector<BufferSearch::Result> expected;
  for (int i = 0; i < 24; ++i) {
    queries.push_back(sample_case2_query(rng, sampler, pool, space));
    expected.push_back(naive.best(queries.back().workload, queries.back().array,
                                  queries.back().bandwidth, queries.back().limit_kb));
  }

  constexpr std::size_t kQueries = 2000;
  std::atomic<int> mismatches{0};
  parallel_for(kQueries, 8, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      const std::size_t k = i % queries.size();
      const Case2Features& f = queries[k];
      const auto got = cache.best(f.workload, f.array, f.bandwidth, f.limit_kb);
      if (got.label != expected[k].label || got.stall_cycles != expected[k].stall_cycles ||
          got.total_kb != expected[k].total_kb) {
        mismatches.fetch_add(1);
      }
      if (i % 64 == 0) {
        // stats() locks each shard in turn mid-hammer; the per-shard
        // slices must stay internally consistent.
        const CacheStats mid = cache.stats();
        if (mid.entries > mid.capacity) mismatches.fetch_add(1);
      }
    }
  });
  EXPECT_EQ(mismatches.load(), 0);
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses + stats.races, kQueries);
  EXPECT_LE(stats.entries, stats.capacity);
}

}  // namespace
}  // namespace airch
