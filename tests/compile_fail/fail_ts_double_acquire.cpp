// Must NOT compile under clang -Wthread-safety -Werror=thread-safety:
// acquiring a mutex the scope already holds (self-deadlock on std::mutex;
// the runtime lock-rank registry catches the same bug across call chains
// the static analysis cannot see).
#include "common/sync.hpp"

namespace {

airch::Mutex mu;
long value GUARDED_BY(mu) = 0;

long double_acquire() {
  const airch::MutexLock outer(mu);
  const airch::MutexLock inner(mu);  // BUG: already held
  return value;
}

}  // namespace
