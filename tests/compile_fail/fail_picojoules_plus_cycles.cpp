// MUST NOT COMPILE: energy plus latency is dimensionally meaningless
// (the exact bug class the EDP objective is prone to).
#include "common/units.hpp"

int main() {
  const airch::Picojoules e{1.5};
  const airch::Cycles c{10};
  auto wrong = e + c;  // no operator+(Picojoules, Cycles)
  (void)wrong;
  return 0;
}
