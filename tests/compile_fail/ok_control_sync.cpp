// Positive control for the thread-safety compile-fail harness: idiomatic
// use of every annotation the fail_ts_* snippets abuse, compiled with the
// identical clang -Wthread-safety -Werror=thread-safety command line. If
// this stops compiling, the harness is broken, not the snippets.
#include "common/sync.hpp"

namespace {

class Guarded {
 public:
  // RAII acquisition covering both read and write of the guarded field.
  void bump() EXCLUDES(mu_) {
    const airch::MutexLock lock(mu_);
    ++count_;
    helper_locked();
  }

  long read() const EXCLUDES(mu_) {
    const airch::MutexLock lock(mu_);
    return count_;
  }

  // RETURN_CAPABILITY lets callers name the lock through an accessor.
  airch::Mutex& lock() RETURN_CAPABILITY(mu_) { return mu_; }

  long read_presumed_locked() const REQUIRES(mu_) { return count_; }

 private:
  void helper_locked() REQUIRES(mu_) { ++count_; }

  mutable airch::Mutex mu_;
  long count_ GUARDED_BY(mu_) = 0;
  // Pointer form: the pointee, not the pointer, is guarded.
  long* slot_ PT_GUARDED_BY(mu_) = &count_;
};

class SharedGuarded {
 public:
  long read() const EXCLUDES(mu_) {
    const airch::ReaderLock lock(mu_);
    return value_;
  }

  void write(long v) EXCLUDES(mu_) {
    const airch::WriterLock lock(mu_);
    value_ = v;
  }

 private:
  mutable airch::SharedMutex mu_;
  long value_ GUARDED_BY(mu_) = 0;
};

class Queue {
 public:
  void push(long v) EXCLUDES(mu_) {
    {
      const airch::MutexLock lock(mu_);
      pending_ = v;
      has_item_ = true;
    }
    cv_.notify_one();
  }

  long pop() EXCLUDES(mu_) {
    const airch::MutexLock lock(mu_);
    while (!has_item_) cv_.wait(mu_);
    has_item_ = false;
    return pending_;
  }

 private:
  airch::Mutex mu_;
  airch::CondVar cv_;
  long pending_ GUARDED_BY(mu_) = 0;
  bool has_item_ GUARDED_BY(mu_) = false;
};

long use_all(Guarded& g, SharedGuarded& s, Queue& q) {
  g.bump();
  s.write(g.read());
  q.push(s.read());
  const airch::MutexLock lock(g.lock());
  return g.read_presumed_locked() + q.pop();
}

}  // namespace
