// MUST NOT COMPILE: cycles-squared is not a dimension any cost model
// uses; only declared cross products exist.
#include "common/units.hpp"

int main() {
  const airch::Cycles c{10};
  auto wrong = c * c;  // no operator*(Cycles, Cycles)
  (void)wrong;
  return 0;
}
