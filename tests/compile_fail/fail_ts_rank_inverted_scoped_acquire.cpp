// Must NOT compile under clang -Wthread-safety -Werror=thread-safety:
// a scoped acquisition that inverts a documented lock order. The order
// low-before-high is encoded statically as EXCLUDES(high) on the function
// that takes `low` — acquiring low while high is held is exactly the
// inversion the runtime lock-rank registry throws on in checked builds,
// caught here at compile time instead.
#include "common/sync.hpp"

namespace {

airch::Mutex low{airch::lock_rank::kParallelError};
airch::Mutex high{airch::lock_rank::kSweepCacheShard};

// Sanctioned entry point for `low`: callers must not already hold `high`.
void with_low_held() ACQUIRE(low) EXCLUDES(high) { low.lock(); }

void inverted() {
  const airch::MutexLock guard(high);
  with_low_held();  // BUG: rank-inverted acquisition while `high` is held
  low.unlock();
}

}  // namespace
