// MUST NOT COMPILE: ordering across dimensions ("is 10 cycles less than
// 64 bytes?") is a category error.
#include "common/units.hpp"

int main() {
  const airch::Cycles c{10};
  const airch::Bytes b{64};
  const bool wrong = c < b;  // no operator<(Cycles, Bytes)
  (void)wrong;
  return 0;
}
