// Must NOT compile under clang -Wthread-safety -Werror=thread-safety:
// writing a GUARDED_BY field while holding only the shared (reader) side
// of its SharedMutex — readers may observe the torn write.
#include "common/sync.hpp"

namespace {

class Registry {
 public:
  long read() const {
    const airch::ReaderLock lock(mu_);
    return value_;
  }

  // BUG: a write needs the exclusive capability (WriterLock).
  void write_under_reader(long v) {
    const airch::ReaderLock lock(mu_);
    value_ = v;
  }

 private:
  mutable airch::SharedMutex mu_;
  long value_ GUARDED_BY(mu_) = 0;
};

void use(Registry& r) { r.write_under_reader(r.read() + 1); }

}  // namespace
