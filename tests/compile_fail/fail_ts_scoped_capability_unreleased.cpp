// Must NOT compile under clang -Wthread-safety -Werror=thread-safety:
// a function that promises ACQUIRE(mu) to its callers but lets a scoped
// capability release the lock on scope exit — callers would proceed
// believing they hold a mutex that is already unlocked.
#include "common/sync.hpp"

namespace {

airch::Mutex mu;
long value GUARDED_BY(mu) = 0;

// BUG: the MutexLock's destructor releases mu before return, so the
// declared capability is never actually delivered to the caller.
void acquire_for_caller() ACQUIRE(mu) {
  const airch::MutexLock lock(mu);
  ++value;
}

}  // namespace
