// MUST NOT COMPILE: latency and traffic live in different dimensions.
#include "common/units.hpp"

int main() {
  const airch::Cycles c{10};
  const airch::Bytes b{64};
  auto wrong = c + b;  // no operator+(Cycles, Bytes)
  (void)wrong;
  return 0;
}
