// Must NOT compile under clang -Wthread-safety -Werror=thread-safety:
// returning a reference to GUARDED_BY data — the caller would touch the
// shared state after the accessor's lock scope ends.
#include "common/sync.hpp"

namespace {

class Store {
 public:
  // BUG: the reference escapes the capability entirely (no lock is even
  // held here); every dereference at the call site is an unguarded access.
  long& slot() { return value_; }

 private:
  airch::Mutex mu_;
  long value_ GUARDED_BY(mu_) = 0;
};

void use(Store& s) { s.slot() = 7; }

}  // namespace
