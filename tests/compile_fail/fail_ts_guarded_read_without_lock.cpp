// Must NOT compile under clang -Wthread-safety -Werror=thread-safety:
// reading a GUARDED_BY field without holding its mutex.
#include "common/sync.hpp"

namespace {

class Tally {
 public:
  void bump() {
    const airch::MutexLock lock(mu_);
    ++count_;
  }

  // BUG: no lock held around the guarded read.
  long read_racy() const { return count_; }

 private:
  mutable airch::Mutex mu_;
  long count_ GUARDED_BY(mu_) = 0;
};

long use(Tally& t) {
  t.bump();
  return t.read_racy();
}

}  // namespace
