// Must NOT compile under clang -Wthread-safety -Werror=thread-safety:
// calling a REQUIRES(mu) helper without holding mu — the exact shape of
// the sweep-cache build-under-lock helpers (find_or_insert / evict_one).
#include "common/sync.hpp"

namespace {

class Cache {
 public:
  int get(int key) EXCLUDES(mu_) {
    // BUG: find_or_insert requires mu_, but the lock is never taken.
    return find_or_insert(key);
  }

 private:
  int find_or_insert(int key) REQUIRES(mu_) { return table_[key & 7]; }

  airch::Mutex mu_;
  int table_[8] GUARDED_BY(mu_) = {};
};

int use(Cache& c) { return c.get(42); }

}  // namespace
