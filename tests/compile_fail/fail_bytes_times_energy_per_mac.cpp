// MUST NOT COMPILE: per-MAC energy applies to MAC counts only; scaling
// it by a byte count is the classic energy-model unit slip.
#include "common/units.hpp"

int main() {
  const airch::Bytes b{64};
  const airch::EnergyPerMac e{0.2};
  auto wrong = b * e;  // only MacCount * EnergyPerMac is declared
  (void)wrong;
  return 0;
}
