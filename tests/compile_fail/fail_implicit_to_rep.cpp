// MUST NOT COMPILE: leaving the typed world requires an explicit
// .value() call at a sanctioned boundary, never an implicit decay.
#include "common/units.hpp"

int main() {
  const airch::Cycles c{10};
  long long raw = c;  // requires c.value()
  (void)raw;
  return 0;
}
