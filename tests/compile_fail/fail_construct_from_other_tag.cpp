// MUST NOT COMPILE: a quantity cannot be built from a quantity of a
// different dimension, even though both wrap the same Rep.
#include "common/units.hpp"

int main() {
  const airch::Bytes b{64};
  const airch::Cycles wrong{b};  // Cycles is not constructible from Bytes
  (void)wrong;
  return 0;
}
