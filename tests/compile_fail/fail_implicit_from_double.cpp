// MUST NOT COMPILE: bare magnitudes must be wrapped explicitly, so a
// unitless constant can never silently enter the typed world.
#include "common/units.hpp"

airch::Picojoules leak() {
  return 42.0;  // requires explicit Picojoules{42.0}
}

int main() {
  (void)leak();
  return 0;
}
