// Positive control: valid dimensional arithmetic under the exact flags
// the fail_* snippets use. If this fails to compile, the harness is
// broken (bad include path / flags), not the guarantees.
#include "common/units.hpp"

int main() {
  using namespace airch;
  const Cycles c = Cycles{10} + Cycles{28};
  const Bytes b = Bytes{64} * 2;
  const Picojoules e = MacCount{1000} * EnergyPerMac{0.2} + b * EnergyPerByte{1.0};
  const Cycles beats = ceil_div(b, BytesPerCycle{10});
  const double ratio = c / beats;
  return (e.value() > 0.0 && ratio > 0.0) ? 0 : 1;
}
