#include "dataset/encoding.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace airch {
namespace {

Dataset small_vocab_dataset() {
  // Column 0 has 3 distinct values (exact mode); column 1 is a wide range
  // (quantile mode when max_vocab is small).
  Dataset ds({"mode3", "wide"}, 2);
  for (int i = 0; i < 300; ++i) {
    ds.add({{i % 3, i * 17 + 1}, static_cast<std::int32_t>(i % 2)});
  }
  return ds;
}

TEST(Encoder, ExactModeForSmallVocab) {
  const Dataset ds = small_vocab_dataset();
  const FeatureEncoder enc(ds, 16);
  const auto vocab = enc.vocab_sizes();
  ASSERT_EQ(vocab.size(), 2u);
  EXPECT_EQ(vocab[0], 3);      // exact: three distinct values
  EXPECT_LE(vocab[1], 16);     // quantile-bucketed
  EXPECT_GE(vocab[1], 2);
}

TEST(Encoder, ExactModeRoundTrip) {
  const Dataset ds = small_vocab_dataset();
  const FeatureEncoder enc(ds, 16);
  EXPECT_EQ(enc.bucket(0, 0), 0);
  EXPECT_EQ(enc.bucket(0, 1), 1);
  EXPECT_EQ(enc.bucket(0, 2), 2);
}

TEST(Encoder, ExactModeUnseenMapsToNearest) {
  const Dataset ds = small_vocab_dataset();
  const FeatureEncoder enc(ds, 16);
  EXPECT_EQ(enc.bucket(0, -100), 0);  // below everything -> first
  EXPECT_EQ(enc.bucket(0, 100), 2);   // above everything -> last
}

TEST(Encoder, QuantileModeMonotone) {
  const Dataset ds = small_vocab_dataset();
  const FeatureEncoder enc(ds, 8);
  std::int32_t prev = -1;
  for (std::int64_t v = 1; v < 5200; v += 100) {
    const auto b = enc.bucket(1, v);
    EXPECT_GE(b, prev);
    prev = b;
  }
}

TEST(Encoder, QuantileBucketsWithinVocab) {
  const Dataset ds = small_vocab_dataset();
  const FeatureEncoder enc(ds, 8);
  const int vocab = enc.vocab_sizes()[1];
  for (std::int64_t v : {-10L, 0L, 1L, 500L, 5000L, 1000000L}) {
    const auto b = enc.bucket(1, v);
    EXPECT_GE(b, 0);
    EXPECT_LT(b, vocab);
  }
}

TEST(Encoder, IntBatchShape) {
  const Dataset ds = small_vocab_dataset();
  const FeatureEncoder enc(ds, 8);
  const ml::IntBatch batch = enc.encode_int(ds, 10, 20);
  EXPECT_EQ(batch.rows, 10u);
  EXPECT_EQ(batch.cols, 2u);
}

TEST(Encoder, FloatBatchStandardized) {
  const Dataset ds = small_vocab_dataset();
  const FeatureEncoder enc(ds, 8);
  const ml::Matrix m = enc.encode_float(ds, 0, ds.size());
  // z-scores: mean ~0, most values within a few sigma.
  double sum = 0.0;
  for (std::size_t i = 0; i < m.rows(); ++i) sum += m(i, 1);
  EXPECT_NEAR(sum / static_cast<double>(m.rows()), 0.0, 0.1);
  for (std::size_t i = 0; i < m.rows(); ++i) {
    EXPECT_LT(std::abs(m(i, 1)), 10.0f);
  }
}

TEST(Encoder, ConstantColumnSafe) {
  Dataset ds({"const"}, 2);
  for (int i = 0; i < 50; ++i) ds.add({{7}, static_cast<std::int32_t>(i % 2)});
  const FeatureEncoder enc(ds);
  EXPECT_EQ(enc.vocab_sizes()[0], 1);
  const ml::Matrix m = enc.encode_float(ds, 0, 5);
  for (std::size_t i = 0; i < m.rows(); ++i) {
    EXPECT_TRUE(std::isfinite(m(i, 0)));
  }
}

TEST(Encoder, GatherMatchesDirect) {
  const Dataset ds = small_vocab_dataset();
  const FeatureEncoder enc(ds, 8);
  std::vector<std::size_t> idx = {5, 1, 42, 7};
  const auto gathered = enc.encode_int_gather(ds, idx, 0, idx.size());
  for (std::size_t i = 0; i < idx.size(); ++i) {
    const auto direct = enc.encode_int(ds[idx[i]].features);
    for (std::size_t f = 0; f < 2; ++f) {
      EXPECT_EQ(gathered(i, f), direct(0, f));
    }
  }
  const auto gathered_f = enc.encode_float_gather(ds, idx, 0, idx.size());
  for (std::size_t i = 0; i < idx.size(); ++i) {
    const auto direct = enc.encode_float(ds[idx[i]].features);
    for (std::size_t f = 0; f < 2; ++f) {
      EXPECT_FLOAT_EQ(gathered_f(i, f), direct(0, f));
    }
  }
}

TEST(Encoder, SinglePointArityChecked) {
  const Dataset ds = small_vocab_dataset();
  const FeatureEncoder enc(ds, 8);
  EXPECT_THROW(enc.encode_int(std::vector<std::int64_t>{1}), std::invalid_argument);
  EXPECT_THROW(enc.encode_float(std::vector<std::int64_t>{1, 2, 3}), std::invalid_argument);
}

TEST(Encoder, EmptyDatasetThrows) {
  const Dataset empty({"a"}, 2);
  EXPECT_THROW(FeatureEncoder{empty}, std::invalid_argument);
}

}  // namespace
}  // namespace airch
