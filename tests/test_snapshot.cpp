// Sweep-cache snapshot persistence (search/sweep_cache.hpp): a cache
// restored from a snapshot must answer every query bit-identically to the
// cache that saved it AND to a naive cold sweep; snapshots from the wrong
// case, the wrong space shape, or a corrupted file must be rejected
// loudly (ContractViolation) with the cache left untouched. Also covers
// the CaseStudy-level persistence plumbing used by generate_dataset.

#include "search/sweep_cache.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/binio.hpp"
#include "common/check.hpp"
#include "common/rng.hpp"
#include "core/case_study.hpp"
#include "workload/sampler.hpp"

namespace airch {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

class SnapshotTest : public ::testing::Test {
 protected:
  void SetUp() override { dir_ = ::testing::TempDir(); }
  std::string path(const std::string& name) const { return dir_ + name; }
  std::string dir_;
  Simulator sim_;
};

// ------------------------------------------------------------- case 1

TEST_F(SnapshotTest, Case1WarmCacheIsBitIdenticalAndActuallyWarm) {
  const ArrayDataflowSpace space(12);
  Rng rng(3);
  LogUniformGemmSampler sampler;
  std::vector<GemmWorkload> workloads;
  for (int i = 0; i < 200; ++i) workloads.push_back(sampler.sample(rng));

  const Case1SweepCache cold(space, sim_);
  std::vector<ArrayDataflowSearch::Result> expected;
  for (const auto& w : workloads) expected.push_back(cold.best(w, 12));
  const SnapshotStats saved = cold.save_snapshot(path("c1.snap"));
  EXPECT_GT(saved.entries, 0u);  // == distinct workloads (draws may collide)

  Case1SweepCache warm(space, sim_);
  const SnapshotStats loaded = warm.load_snapshot(path("c1.snap"));
  EXPECT_EQ(loaded.entries, saved.entries);
  for (std::size_t i = 0; i < workloads.size(); ++i) {
    const auto got = warm.best(workloads[i], 12);
    ASSERT_EQ(got.label, expected[i].label);
    ASSERT_EQ(got.cycles, expected[i].cycles);
  }
  // Every query above must have hit the restored entries — zero misses.
  const CacheStats stats = warm.stats();
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(stats.hits, 200u);
}

TEST_F(SnapshotTest, Case1LoadSkipsEntriesTheCacheAlreadyCovers) {
  const ArrayDataflowSpace space(10);
  const Case1SweepCache a(space, sim_);
  (void)a.best({64, 64, 64}, 10);
  const SnapshotStats saved = a.save_snapshot(path("dup.snap"));
  EXPECT_EQ(saved.entries, 1u);

  Case1SweepCache b(space, sim_);
  (void)b.best({64, 64, 64}, 10);  // already covers the snapshot's entry
  const SnapshotStats loaded = b.load_snapshot(path("dup.snap"));
  EXPECT_EQ(loaded.entries, 0u);
}

TEST_F(SnapshotTest, Case1WrongSpaceShapeIsRejected) {
  const ArrayDataflowSpace space(12);
  const Case1SweepCache cache(space, sim_);
  (void)cache.best({32, 32, 32}, 12);
  (void)cache.save_snapshot(path("shape.snap"));

  const ArrayDataflowSpace other(14);  // different max_macs_exp
  Case1SweepCache victim(other, sim_);
  EXPECT_THROW((void)victim.load_snapshot(path("shape.snap")), ContractViolation);
  // Rejection happened before anything touched the cache.
  EXPECT_EQ(victim.stats().entries, 0u);
}

// ------------------------------------------------------------- case 2

TEST_F(SnapshotTest, Case2WarmCacheIsBitIdenticalAndActuallyWarm) {
  const BufferSizeSpace space;
  Rng rng(5);
  LogUniformGemmSampler sampler;
  struct Query {
    GemmWorkload w;
    ArrayConfig a;
    std::int64_t bw;
    std::int64_t limit;
  };
  std::vector<Query> queries;
  for (int i = 0; i < 100; ++i) {
    Query q;
    q.w = sampler.sample(rng);
    q.a.rows = 16;
    q.a.cols = 32;
    q.a.dataflow = dataflow_from_index(static_cast<int>(rng.uniform_int(0, 2)));
    q.bw = rng.uniform_int(1, 50);
    q.limit = 600;
    queries.push_back(q);
  }

  const Case2SweepCache cold(space, sim_);
  std::vector<BufferSearch::Result> expected;
  for (const auto& q : queries) expected.push_back(cold.best(q.w, q.a, q.bw, q.limit));
  (void)cold.save_snapshot(path("c2.snap"));

  Case2SweepCache warm(space, sim_);
  const SnapshotStats loaded = warm.load_snapshot(path("c2.snap"));
  EXPECT_GT(loaded.entries, 0u);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const auto& q = queries[i];
    const auto got = warm.best(q.w, q.a, q.bw, q.limit);
    ASSERT_EQ(got.label, expected[i].label);
    ASSERT_EQ(got.stall_cycles, expected[i].stall_cycles);
    ASSERT_EQ(got.total_kb, expected[i].total_kb);
  }
  EXPECT_EQ(warm.stats().misses, 0u);
}

TEST_F(SnapshotTest, Case2RejectsCase1Snapshot) {
  const ArrayDataflowSpace c1space(10);
  const Case1SweepCache c1(c1space, sim_);
  (void)c1.best({16, 16, 16}, 10);
  (void)c1.save_snapshot(path("cross.snap"));

  const BufferSizeSpace space;
  Case2SweepCache victim(space, sim_);
  EXPECT_THROW((void)victim.load_snapshot(path("cross.snap")), ContractViolation);
  EXPECT_EQ(victim.stats().entries, 0u);
}

// ------------------------------------------------------------- case 3

TEST_F(SnapshotTest, Case3BothMemoLevelsRoundTripWarm) {
  const ScheduleSpace space;
  const ScheduleSearch search(space, default_scheduled_arrays(), sim_);
  Rng rng(7);
  LogUniformGemmSampler sampler;
  std::vector<std::vector<GemmWorkload>> queries;
  for (int i = 0; i < 40; ++i) {
    queries.push_back(sampler.sample_many(rng, static_cast<std::size_t>(space.num_arrays())));
  }

  const Case3SweepCache cold(search);
  std::vector<ScheduleSearch::Result> expected;
  for (const auto& q : queries) expected.push_back(cold.best(q));
  (void)cold.save_snapshot(path("c3.snap"));

  Case3SweepCache warm(search);
  const SnapshotStats loaded = warm.load_snapshot(path("c3.snap"));
  EXPECT_GT(loaded.entries, 0u);
  // Both levels must be restored: the per-vector argmins AND the
  // per-workload simulation costs.
  EXPECT_EQ(warm.stats().entries, cold.stats().entries);
  EXPECT_EQ(warm.array_stats().entries, cold.array_stats().entries);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const auto got = warm.best(queries[i]);
    ASSERT_EQ(got.label, expected[i].label);
    ASSERT_EQ(got.makespan_cycles, expected[i].makespan_cycles);
    ASSERT_EQ(got.energy_pj, expected[i].energy_pj);
  }
  EXPECT_EQ(warm.stats().misses, 0u);
}

// ----------------------------------------------------------- corruption

TEST_F(SnapshotTest, EverySingleByteSubstitutionIsRejected) {
  const ArrayDataflowSpace space(8);
  const Case1SweepCache cache(space, sim_);
  (void)cache.best({8, 8, 8}, 8);
  (void)cache.best({16, 4, 32}, 8);
  (void)cache.save_snapshot(path("fuzz.snap"));
  const std::string good = read_file(path("fuzz.snap"));
  ASSERT_GT(good.size(), 0u);

  for (std::size_t i = 0; i < good.size(); ++i) {
    std::string bad = good;
    bad[i] = static_cast<char>(static_cast<unsigned char>(bad[i]) ^ 0xA5u);
    write_file(path("fuzz_bad.snap"), bad);
    Case1SweepCache victim(space, sim_);
    EXPECT_THROW((void)victim.load_snapshot(path("fuzz_bad.snap")), ContractViolation)
        << "flipped byte " << i << " of " << good.size();
    // Never a partial load: rejection leaves the cache empty.
    EXPECT_EQ(victim.stats().entries, 0u) << "flipped byte " << i;
  }
}

TEST_F(SnapshotTest, EveryTruncationLengthIsRejected) {
  const ArrayDataflowSpace space(8);
  const Case1SweepCache cache(space, sim_);
  (void)cache.best({8, 8, 8}, 8);
  (void)cache.save_snapshot(path("trunc.snap"));
  const std::string good = read_file(path("trunc.snap"));

  for (std::size_t len = 0; len < good.size(); ++len) {
    write_file(path("trunc_bad.snap"), good.substr(0, len));
    Case1SweepCache victim(space, sim_);
    EXPECT_THROW((void)victim.load_snapshot(path("trunc_bad.snap")), ContractViolation)
        << "truncated to " << len << " of " << good.size();
    EXPECT_EQ(victim.stats().entries, 0u);
  }
}

TEST_F(SnapshotTest, WrongVersionWithHonestChecksumIsRejected) {
  {
    BinWriter w(path("ver.snap"));
    w.put_u64(kSnapshotMagic);
    w.put_u32(kSnapshotFormatVersion + 1);
    w.put_u32(1);
    w.put_u64(0);
    w.put_u64(0);
    w.put_trailer_checksum();
    w.finish();
  }
  const ArrayDataflowSpace space(8);
  Case1SweepCache victim(space, sim_);
  EXPECT_THROW((void)victim.load_snapshot(path("ver.snap")), ContractViolation);
}

TEST_F(SnapshotTest, MissingFileThrows) {
  const ArrayDataflowSpace space(8);
  Case1SweepCache victim(space, sim_);
  EXPECT_THROW((void)victim.load_snapshot(path("missing.snap")), std::runtime_error);
}

// ---------------------------------------------------- CaseStudy plumbing

TEST_F(SnapshotTest, StudyWarmGenerateIsBitIdenticalToCold) {
  for (const CaseId id : {CaseId::kArrayDataflow, CaseId::kBufferSizing, CaseId::kScheduling}) {
    const auto cold = make_case_study(id);
    const Dataset a = cold->generate(60, 99);
    (void)cold->save_cache_snapshot(path("study.snap"));

    const auto warm = make_case_study(id);
    const SnapshotStats loaded = warm->load_cache_snapshot(path("study.snap"));
    EXPECT_GT(loaded.entries, 0u) << case_name(id);
    const Dataset b = warm->generate(60, 99);

    ASSERT_EQ(a.size(), b.size()) << case_name(id);
    for (std::size_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(a[i].features, b[i].features) << case_name(id) << " point " << i;
      ASSERT_EQ(a[i].label, b[i].label) << case_name(id) << " point " << i;
    }
    EXPECT_EQ(warm->cache_stats().misses, 0u) << case_name(id);
  }
}

TEST_F(SnapshotTest, StudyRangesConcatenateToFullRun) {
  // CaseStudy::generate_range obeys the generator's sharding contract:
  // contiguous ranges concatenated in order == one full generate().
  for (const std::size_t shards : {2u, 4u}) {
    const auto whole_study = make_case_study(CaseId::kArrayDataflow);
    const Dataset whole = whole_study->generate(50, 123);

    const auto sharded_study = make_case_study(CaseId::kArrayDataflow);
    Dataset glued(whole.feature_names(), whole.num_classes());
    for (std::size_t s = 0; s < shards; ++s) {
      const Dataset part =
          sharded_study->generate_range(50 * s / shards, 50 * (s + 1) / shards, 123);
      for (const auto& p : part.points()) glued.add(p);
    }
    ASSERT_EQ(whole.size(), glued.size());
    for (std::size_t i = 0; i < whole.size(); ++i) {
      ASSERT_EQ(whole[i].features, glued[i].features) << shards << " shards, point " << i;
      ASSERT_EQ(whole[i].label, glued[i].label) << shards << " shards, point " << i;
    }
  }
}

}  // namespace
}  // namespace airch
