// Concurrency stress suite for common/parallel.hpp, designed to run under
// ThreadSanitizer (`ctest --preset tsan` / `ctest -L tsan` in build-tsan).
// The explicit-worker-count overload forces real threads even when the
// machine reports a single core, so these interleavings are exercised on
// any hardware.

#include "common/parallel.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace {

using airch::hardware_threads;
using airch::parallel_for;

TEST(ParallelFor, ZeroElementsNeverInvokes) {
  int calls = 0;
  parallel_for(0, [&](std::size_t, std::size_t) { ++calls; });
  parallel_for(0, 8, [&](std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelFor, OneElementRunsInline) {
  int calls = 0;
  parallel_for(1, [&](std::size_t b, std::size_t e) {
    ++calls;
    EXPECT_EQ(b, 0u);
    EXPECT_EQ(e, 1u);
  });
  parallel_for(1, 8, [&](std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls, 2);
}

TEST(ParallelFor, ExplicitWorkersCoverEveryIndexExactlyOnce) {
  const std::size_t n = 1000;
  for (unsigned workers : {2u, 3u, 7u, 16u}) {
    std::vector<std::atomic<int>> hits(n);
    parallel_for(n, workers, [&](std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "index " << i << " with " << workers << " workers";
    }
  }
}

TEST(ParallelFor, MoreWorkersThanElements) {
  std::atomic<std::int64_t> sum{0};
  parallel_for(3, 64, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) sum.fetch_add(static_cast<std::int64_t>(i) + 1);
  });
  EXPECT_EQ(sum.load(), 1 + 2 + 3);
}

TEST(ParallelFor, ZeroWorkersViolatesContract) {
  EXPECT_THROW(parallel_for(4, 0, [](std::size_t, std::size_t) {}),
               airch::ContractViolation);
}

TEST(ParallelFor, SharedAtomicAccumulatorUnderContention) {
  // Hammer one cacheline from every worker — the pattern exhaustive search
  // and dataset generation use for progress/result accumulation.
  const std::size_t n = 100000;
  std::atomic<std::int64_t> sum{0};
  parallel_for(n, 8, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      sum.fetch_add(static_cast<std::int64_t>(i), std::memory_order_relaxed);
    }
  });
  const auto expected = static_cast<std::int64_t>(n) * static_cast<std::int64_t>(n - 1) / 2;
  EXPECT_EQ(sum.load(), expected);
}

TEST(ParallelFor, MutexGuardedBestResultReduction) {
  // Mirror of the shared best-result pattern in search: workers race to
  // publish minima into shared state behind a mutex.
  const std::size_t n = 50000;
  std::vector<std::int64_t> cost(n);
  airch::Rng rng(7);
  for (auto& c : cost) c = rng.uniform_int(0, 1 << 20);
  cost[31337] = -5;  // unique known minimum

  std::mutex mu;
  std::int64_t best_cost = std::numeric_limits<std::int64_t>::max();
  std::size_t best_index = 0;
  parallel_for(n, 8, [&](std::size_t b, std::size_t e) {
    std::int64_t local_best = std::numeric_limits<std::int64_t>::max();
    std::size_t local_index = 0;
    for (std::size_t i = b; i < e; ++i) {
      if (cost[i] < local_best) {
        local_best = cost[i];
        local_index = i;
      }
    }
    const std::lock_guard<std::mutex> lock(mu);
    if (local_best < best_cost) {
      best_cost = local_best;
      best_index = local_index;
    }
  });
  EXPECT_EQ(best_cost, -5);
  EXPECT_EQ(best_index, 31337u);
}

TEST(ParallelFor, NestedParallelForIsAllowed) {
  const std::size_t outer = 6, inner = 200;
  std::vector<std::atomic<int>> hits(outer * inner);
  parallel_for(outer, 3, [&](std::size_t ob, std::size_t oe) {
    for (std::size_t o = ob; o < oe; ++o) {
      parallel_for(inner, 2, [&, o](std::size_t ib, std::size_t ie) {
        for (std::size_t i = ib; i < ie; ++i) {
          hits[o * inner + i].fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
  });
  for (std::size_t i = 0; i < hits.size(); ++i) ASSERT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelFor, WorkerExceptionPropagatesAfterJoin) {
  std::atomic<int> completed{0};
  try {
    parallel_for(1000, 4, [&](std::size_t b, std::size_t) {
      if (b == 0) throw std::runtime_error("worker failed at " + std::to_string(b));
      completed.fetch_add(1);
    });
    FAIL() << "exception from worker was swallowed";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "worker failed at 0");
  }
  // All other workers ran to completion (join-before-rethrow guarantee).
  EXPECT_EQ(completed.load(), 3);
}

TEST(ParallelFor, LowestChunkExceptionWinsWhenAllThrow) {
  try {
    parallel_for(400, 4, [](std::size_t b, std::size_t) {
      throw std::runtime_error("chunk " + std::to_string(b));
    });
    FAIL() << "exception from workers was swallowed";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "chunk 0");
  }
}

TEST(ParallelFor, ContractViolationCrossesThreadBoundary) {
  EXPECT_THROW(parallel_for(100, 4,
                            [](std::size_t, std::size_t) {
                              AIRCH_CHECK(false, "invariant broken inside worker");
                            }),
               airch::ContractViolation);
}

TEST(HardwareThreads, HonorsAirchThreadsEnv) {
  ASSERT_EQ(setenv("AIRCH_THREADS", "5", 1), 0);
  EXPECT_EQ(hardware_threads(), 5u);
  // Out-of-range or garbage values fall back to the hardware count.
  ASSERT_EQ(setenv("AIRCH_THREADS", "0", 1), 0);
  EXPECT_GE(hardware_threads(), 1u);
  ASSERT_EQ(setenv("AIRCH_THREADS", "banana", 1), 0);
  EXPECT_GE(hardware_threads(), 1u);
  ASSERT_EQ(unsetenv("AIRCH_THREADS"), 0);
}

TEST(HardwareThreads, EnvDrivesAutoParallelFor) {
  // Above the inline threshold the auto overload forks AIRCH_THREADS
  // workers and hands out dynamic chunks: more chunks than workers (so
  // stragglers can rebalance), disjoint, covering [0, n) exactly.
  ASSERT_EQ(setenv("AIRCH_THREADS", "4", 1), 0);
  std::mutex mu;
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  parallel_for(1024, [&](std::size_t b, std::size_t e) {
    const std::lock_guard<std::mutex> lock(mu);
    chunks.emplace_back(b, e);
  });
  ASSERT_EQ(unsetenv("AIRCH_THREADS"), 0);
  EXPECT_GE(chunks.size(), 4u);
  std::sort(chunks.begin(), chunks.end());
  std::size_t expected_begin = 0;
  for (const auto& [b, e] : chunks) {
    EXPECT_EQ(b, expected_begin);
    EXPECT_GT(e, b);
    expected_begin = e;
  }
  EXPECT_EQ(expected_begin, 1024u);
}

}  // namespace
