#include "common/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <deque>
#include <thread>
#include <vector>

#include "common/sync.hpp"

namespace airch {
namespace {

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  const std::size_t n = 10000;
  std::vector<std::atomic<int>> hits(n);
  parallel_for(n, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(ParallelFor, ZeroIsNoop) {
  bool called = false;
  parallel_for(0, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelFor, SmallRunsInline) {
  // Small n runs on the calling thread (single chunk covering the range).
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  parallel_for(10, [&](std::size_t begin, std::size_t end) {
    chunks.emplace_back(begin, end);
  });
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0], std::make_pair(std::size_t{0}, std::size_t{10}));
}

TEST(ParallelFor, ChunksAreDisjointAndOrderedWithinThemselves) {
  const std::size_t n = 5000;
  std::atomic<std::int64_t> sum{0};
  parallel_for(n, [&](std::size_t begin, std::size_t end) {
    std::int64_t local = 0;
    for (std::size_t i = begin; i < end; ++i) local += static_cast<std::int64_t>(i);
    sum.fetch_add(local);
  });
  EXPECT_EQ(sum.load(), static_cast<std::int64_t>(n) * (n - 1) / 2);
}

TEST(HardwareThreads, AtLeastOne) { EXPECT_GE(hardware_threads(), 1u); }

// TSan-labelled stress over the CondVar wrapper (common/sync.hpp): a
// bounded multi-producer/multi-consumer queue where every push and pop
// crosses a wait/notify edge under real contention. TSan checks the
// wrapper introduces no races; the item accounting below checks nothing
// is lost, duplicated, or delivered past shutdown.
TEST(CondVarStress, BoundedQueueDeliversEveryItemExactlyOnce) {
  constexpr int kProducers = 2;
  constexpr int kConsumers = 2;
  constexpr int kPerProducer = 2000;
  constexpr std::size_t kCapacity = 4;  // tiny: forces both wait directions

  Mutex mu;
  CondVar not_full;
  CondVar not_empty;
  std::deque<std::int64_t> queue;
  bool done = false;

  std::atomic<std::int64_t> consumed_sum{0};
  std::atomic<std::int64_t> consumed_count{0};

  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        const MutexLock lock(mu);
        while (queue.size() >= kCapacity) not_full.wait(mu);
        queue.push_back(static_cast<std::int64_t>(p) * kPerProducer + i);
        not_empty.notify_one();
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      for (;;) {
        std::int64_t item;
        {
          const MutexLock lock(mu);
          while (queue.empty() && !done) not_empty.wait(mu);
          if (queue.empty()) return;  // done && drained
          item = queue.front();
          queue.pop_front();
          not_full.notify_one();
        }
        consumed_sum.fetch_add(item);
        consumed_count.fetch_add(1);
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) threads[static_cast<std::size_t>(p)].join();
  {
    const MutexLock lock(mu);
    done = true;
  }
  not_empty.notify_all();
  for (std::size_t t = kProducers; t < threads.size(); ++t) threads[t].join();

  const auto total = std::int64_t{kProducers} * kPerProducer;
  EXPECT_EQ(consumed_count.load(), total);
  // Sum over p in [0,2), i in [0,2000) of p*2000+i.
  std::int64_t expected = 0;
  for (int p = 0; p < kProducers; ++p) {
    for (int i = 0; i < kPerProducer; ++i) {
      expected += static_cast<std::int64_t>(p) * kPerProducer + i;
    }
  }
  EXPECT_EQ(consumed_sum.load(), expected);
  EXPECT_TRUE(queue.empty());
}

}  // namespace
}  // namespace airch
