#include "common/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

namespace airch {
namespace {

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  const std::size_t n = 10000;
  std::vector<std::atomic<int>> hits(n);
  parallel_for(n, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(ParallelFor, ZeroIsNoop) {
  bool called = false;
  parallel_for(0, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelFor, SmallRunsInline) {
  // Small n runs on the calling thread (single chunk covering the range).
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  parallel_for(10, [&](std::size_t begin, std::size_t end) {
    chunks.emplace_back(begin, end);
  });
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0], std::make_pair(std::size_t{0}, std::size_t{10}));
}

TEST(ParallelFor, ChunksAreDisjointAndOrderedWithinThemselves) {
  const std::size_t n = 5000;
  std::atomic<std::int64_t> sum{0};
  parallel_for(n, [&](std::size_t begin, std::size_t end) {
    std::int64_t local = 0;
    for (std::size_t i = begin; i < end; ++i) local += static_cast<std::int64_t>(i);
    sum.fetch_add(local);
  });
  EXPECT_EQ(sum.load(), static_cast<std::int64_t>(n) * (n - 1) / 2);
}

TEST(HardwareThreads, AtLeastOne) { EXPECT_GE(hardware_threads(), 1u); }

}  // namespace
}  // namespace airch
