// Bit-identity property suite for the blocked/packed matmul kernel
// (src/ml/matrix.cpp) against the retained reference ikj loop, plus the
// zero-skip contract pins and a concurrent-training stress that makes
// `ctest -L tsan` exercise the row-parallel kernel with real threads.
//
// The fast path must match matmul_reference BIT FOR BIT on every shape,
// transpose combination, and alpha/beta pair — including operands with
// dropout/ReLU-style random zeros, which flip the kernel between its
// branchy and branch-free flavours.

#include "ml/matrix.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <random>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "ml/network.hpp"
#include "ml/optimizer.hpp"

namespace {

using airch::ml::KernelMode;
using airch::ml::Matrix;
using airch::ml::matmul;
using airch::ml::matmul_reference;
using airch::ml::set_kernel_mode;

/// RAII guard so a failing test cannot leave the process-wide mode flipped.
class KernelModeGuard {
 public:
  explicit KernelModeGuard(KernelMode m) : saved_(airch::ml::kernel_mode()) {
    set_kernel_mode(m);
  }
  ~KernelModeGuard() { set_kernel_mode(saved_); }

 private:
  KernelMode saved_;
};

void fill_random(Matrix& m, std::mt19937& rng, double zero_fraction) {
  std::uniform_real_distribution<float> dist(-2.0f, 2.0f);
  std::bernoulli_distribution zero(zero_fraction);
  for (std::size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = zero(rng) ? 0.0f : dist(rng);
  }
}

bool bit_equal(const Matrix& x, const Matrix& y) {
  return x.rows() == y.rows() && x.cols() == y.cols() &&
         std::memcmp(x.data(), y.data(), x.size() * sizeof(float)) == 0;
}

/// One randomized case: build op(A) (m x k), op(B) (k x n), a shared C
/// seed, and bit-compare the fast kernel against the reference.
void check_case(std::mt19937& rng, std::size_t m, std::size_t k, std::size_t n, bool trans_a,
                bool trans_b, float alpha, float beta, double zero_fraction) {
  Matrix a(trans_a ? k : m, trans_a ? m : k);
  Matrix b(trans_b ? n : k, trans_b ? k : n);
  fill_random(a, rng, zero_fraction);
  fill_random(b, rng, 0.0);
  Matrix c_seed(m, n);
  fill_random(c_seed, rng, 0.0);

  Matrix c_ref = c_seed;
  matmul_reference(a, trans_a, b, trans_b, c_ref, alpha, beta);

  Matrix c_fast = c_seed;
  {
    KernelModeGuard guard(KernelMode::kFast);
    matmul(a, trans_a, b, trans_b, c_fast, alpha, beta);
  }
  ASSERT_TRUE(bit_equal(c_ref, c_fast))
      << "m=" << m << " k=" << k << " n=" << n << " ta=" << trans_a << " tb=" << trans_b
      << " alpha=" << alpha << " beta=" << beta << " zf=" << zero_fraction;
}

TEST(MatmulKernel, BitIdenticalOnRandomShapes) {
  std::mt19937 rng(20260806);
  std::uniform_int_distribution<std::size_t> dim(1, 65);
  const float alphas[] = {1.0f, 0.5f, -1.25f, 0.0f};
  const float betas[] = {0.0f, 1.0f, 0.3f};
  const double zero_fractions[] = {0.0, 0.5, 0.95};
  int case_index = 0;
  for (int rep = 0; rep < 12; ++rep) {
    const std::size_t m = dim(rng);
    const std::size_t k = dim(rng);
    const std::size_t n = dim(rng);
    for (bool trans_a : {false, true}) {
      for (bool trans_b : {false, true}) {
        const float alpha = alphas[static_cast<std::size_t>(case_index) % 4];
        const float beta = betas[static_cast<std::size_t>(case_index) % 3];
        const double zf = zero_fractions[static_cast<std::size_t>(case_index) % 3];
        ++case_index;
        check_case(rng, m, k, n, trans_a, trans_b, alpha, beta, zf);
        if (HasFatalFailure()) return;
      }
    }
  }
}

TEST(MatmulKernel, BitIdenticalAboveTinyShapeCutoff) {
  // Shapes big enough to engage the blocked kernel, panel tails included.
  std::mt19937 rng(7);
  struct Shape {
    std::size_t m, k, n;
  };
  const Shape shapes[] = {{64, 64, 64}, {65, 33, 97}, {128, 64, 37}, {96, 128, 256}};
  for (const auto& s : shapes) {
    for (double zf : {0.0, 0.5}) {
      check_case(rng, s.m, s.k, s.n, false, false, 1.0f, 0.0f, zf);
      check_case(rng, s.m, s.k, s.n, true, false, 1.0f, 0.0f, zf);
      check_case(rng, s.m, s.k, s.n, false, true, 0.5f, 0.3f, zf);
      if (HasFatalFailure()) return;
    }
  }
}

// The zero-skip contract (matrix.hpp): a term whose scaled A operand is
// zero is skipped, never accumulated. These pins are load-bearing for the
// network layers — dropout/ReLU hand the kernel rows full of zeros — and
// for serialization, where -0.0f vs +0.0f would round-trip differently.
TEST(MatmulKernel, ZeroRowInAContributesExactlyPositiveZero) {
  KernelModeGuard guard(KernelMode::kFast);
  std::mt19937 rng(11);
  Matrix a(48, 40);
  fill_random(a, rng, 0.3);
  for (std::size_t p = 0; p < a.cols(); ++p) a(7, p) = 0.0f;  // the dropped row
  Matrix b(40, 96);
  fill_random(b, rng, 0.0);
  // Negative B values make any accumulated product -0.0f-prone: the row
  // result is exactly +0.0f only if every term was truly skipped.
  Matrix c(48, 96);
  matmul(a, false, b, false, c);
  for (std::size_t j = 0; j < c.cols(); ++j) {
    ASSERT_EQ(c(7, j), 0.0f);
    ASSERT_FALSE(std::signbit(c(7, j))) << "zero row produced -0.0f at column " << j;
  }
}

TEST(MatmulKernel, ZeroRowNeverProducesNanFromInfinity) {
  // 0 * inf would be NaN if the zero terms were multiplied through; the
  // contract says they are skipped, so an all-zero A row stays +0.0f even
  // against an infinite B.
  KernelModeGuard guard(KernelMode::kFast);
  std::mt19937 rng(13);
  Matrix a(40, 36);
  fill_random(a, rng, 0.5);
  for (std::size_t p = 0; p < a.cols(); ++p) a(3, p) = 0.0f;
  Matrix b(36, 64);
  fill_random(b, rng, 0.0);
  b(17, 5) = std::numeric_limits<float>::infinity();
  b(2, 40) = -std::numeric_limits<float>::infinity();
  Matrix c(40, 64);
  matmul(a, false, b, false, c);
  for (std::size_t j = 0; j < c.cols(); ++j) {
    ASSERT_FALSE(std::isnan(c(3, j))) << "0 * inf leaked into the dropped row at " << j;
    ASSERT_EQ(c(3, j), 0.0f);
    ASSERT_FALSE(std::signbit(c(3, j)));
  }
  // And the whole result still matches the reference bit for bit.
  Matrix c_ref(40, 64);
  matmul_reference(a, false, b, false, c_ref);
  ASSERT_TRUE(bit_equal(c_ref, c));
}

TEST(MatmulKernel, BetaPreservesNegativeZeroInC) {
  // With beta == 1 and a zero A row, C's row must pass through untouched —
  // including a -0.0f, which an `acc += +0.0f` would silently flip.
  KernelModeGuard guard(KernelMode::kFast);
  std::mt19937 rng(17);
  Matrix a(33, 40);
  fill_random(a, rng, 0.4);
  for (std::size_t p = 0; p < a.cols(); ++p) a(9, p) = 0.0f;
  Matrix b(40, 48);
  fill_random(b, rng, 0.0);
  Matrix c(33, 48);
  for (std::size_t j = 0; j < c.cols(); ++j) c(9, j) = -0.0f;
  Matrix c_ref = c;
  matmul_reference(a, false, b, false, c_ref, 1.0f, 1.0f);
  matmul(a, false, b, false, c, 1.0f, 1.0f);
  ASSERT_TRUE(bit_equal(c_ref, c));
  for (std::size_t j = 0; j < c.cols(); ++j) {
    ASSERT_TRUE(std::signbit(c(9, j))) << "-0.0f flipped to +0.0f at column " << j;
  }
}

// Concurrent-training stress (tsan label): several threads each drive an
// independent FeedForwardNet through training batches while the kernel
// mode is kFast and AIRCH_THREADS forces the row-parallel matmul to fork
// its own nested workers. Per-thread nets share no state, so TSan flags
// any accidental sharing inside the kernel layer (packing scratch,
// dispatch statics, worker handoff).
TEST(MatmulKernel, ConcurrentTrainingIsRaceFreeAndDeterministic) {
  KernelModeGuard guard(KernelMode::kFast);
  ASSERT_EQ(setenv("AIRCH_THREADS", "4", 1), 0);
  constexpr int kThreads = 3;
  constexpr int kSteps = 4;
  std::vector<std::vector<float>> first_weights(kThreads);
  auto run = [&](int tid, std::vector<float>& out) {
    airch::Rng rng(1234);
    airch::ml::FeedForwardNet net(64, {96}, 10, rng, 0.0);
    airch::ml::Adam opt(1e-3);
    std::mt19937 data_rng(99);  // same seed on every thread
    Matrix x(32, 64);
    std::vector<std::int32_t> y(32);
    for (int step = 0; step < kSteps; ++step) {
      fill_random(x, data_rng, 0.5);
      for (std::size_t i = 0; i < y.size(); ++i) {
        y[i] = static_cast<std::int32_t>((i + static_cast<std::size_t>(step)) % 10);
      }
      (void)net.train_batch(x, y, opt);  // training for the side effect; stats unused
    }
    const auto params = net.params();
    for (const auto& p : params) out.insert(out.end(), p.value, p.value + p.size);
    (void)tid;
  };
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  // airch-lint: allow(raw-thread) — stress test intentionally drives the
  // kernel layer from plain threads outside the parallel_for pool.
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back(run, t, std::ref(first_weights[static_cast<std::size_t>(t)]));
  }
  for (auto& th : threads) th.join();
  ASSERT_EQ(unsetenv("AIRCH_THREADS"), 0);
  // Identical seeds + bit-identical kernels => identical weights on every
  // thread, byte for byte.
  for (int t = 1; t < kThreads; ++t) {
    ASSERT_EQ(first_weights[0].size(), first_weights[static_cast<std::size_t>(t)].size());
    ASSERT_TRUE(std::memcmp(first_weights[0].data(),
                            first_weights[static_cast<std::size_t>(t)].data(),
                            first_weights[0].size() * sizeof(float)) == 0)
        << "thread " << t << " diverged";
  }
}

}  // namespace
