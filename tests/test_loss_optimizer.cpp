#include <gtest/gtest.h>

#include <cmath>

#include "ml/loss.hpp"
#include "ml/optimizer.hpp"

namespace airch::ml {
namespace {

TEST(SoftmaxCe, UniformLogitsGiveLogC) {
  Matrix logits(2, 8, 0.0f);
  const LossResult r = softmax_cross_entropy(logits, {0, 5});
  EXPECT_NEAR(r.loss, std::log(8.0), 1e-6);
}

TEST(SoftmaxCe, ConfidentCorrectIsLowLoss) {
  Matrix logits(1, 3, 0.0f);
  logits(0, 1) = 20.0f;
  const LossResult r = softmax_cross_entropy(logits, {1});
  EXPECT_LT(r.loss, 1e-6);
  EXPECT_EQ(r.correct, 1u);
}

TEST(SoftmaxCe, ConfidentWrongIsHighLoss) {
  Matrix logits(1, 3, 0.0f);
  logits(0, 1) = 20.0f;
  const LossResult r = softmax_cross_entropy(logits, {0});
  EXPECT_GT(r.loss, 10.0);
  EXPECT_EQ(r.correct, 0u);
}

TEST(SoftmaxCe, GradRowsSumToZero) {
  Matrix logits(3, 5);
  Rng rng(3);
  for (std::size_t i = 0; i < logits.size(); ++i) {
    logits.data()[i] = static_cast<float>(rng.uniform(-3.0, 3.0));
  }
  const LossResult r = softmax_cross_entropy(logits, {1, 2, 4});
  for (std::size_t i = 0; i < 3; ++i) {
    float sum = 0.0f;
    for (std::size_t j = 0; j < 5; ++j) sum += r.grad(i, j);
    EXPECT_NEAR(sum, 0.0f, 1e-6f);
  }
}

TEST(SoftmaxCe, NumericallyStableForHugeLogits) {
  Matrix logits(1, 3, 0.0f);
  logits(0, 0) = 1e4f;
  logits(0, 1) = -1e4f;
  const LossResult r = softmax_cross_entropy(logits, {0});
  EXPECT_TRUE(std::isfinite(r.loss));
  for (std::size_t i = 0; i < r.grad.size(); ++i) {
    EXPECT_TRUE(std::isfinite(r.grad.data()[i]));
  }
}

TEST(SoftmaxRows, SumsToOne) {
  Matrix m(2, 4);
  Rng rng(5);
  for (std::size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<float>(rng.uniform(-5.0, 5.0));
  }
  softmax_rows(m);
  for (std::size_t i = 0; i < 2; ++i) {
    float sum = 0.0f;
    for (std::size_t j = 0; j < 4; ++j) {
      sum += m(i, j);
      EXPECT_GE(m(i, j), 0.0f);
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
}

TEST(ArgmaxRows, PicksLargest) {
  Matrix m(2, 3, 0.0f);
  m(0, 2) = 1.0f;
  m(1, 0) = 5.0f;
  const auto idx = argmax_rows(m);
  EXPECT_EQ(idx[0], 2);
  EXPECT_EQ(idx[1], 0);
}

// ------------------------------------------------------------ optimizers

std::vector<ParamRef> one_param(std::vector<float>& w, std::vector<float>& g) {
  return {{w.data(), g.data(), w.size()}};
}

TEST(Sgd, BasicStep) {
  std::vector<float> w = {1.0f, 2.0f};
  std::vector<float> g = {0.5f, -1.0f};
  Sgd opt(0.1);
  opt.step(one_param(w, g));
  EXPECT_FLOAT_EQ(w[0], 0.95f);
  EXPECT_FLOAT_EQ(w[1], 2.1f);
}

TEST(Momentum, AcceleratesAlongConstantGradient) {
  std::vector<float> w = {0.0f};
  std::vector<float> g = {1.0f};
  SgdMomentum opt(0.1, 0.9);
  opt.step(one_param(w, g));
  const float first_step = -w[0];
  const float w_before = w[0];
  opt.step(one_param(w, g));
  const float second_step = w_before - w[0];
  EXPECT_GT(second_step, first_step);
}

// Quadratic bowl: L = 0.5 * sum(w^2); gradient = w.
template <typename Opt>
double minimize_quadratic(Opt& opt, int steps) {
  std::vector<float> w = {5.0f, -3.0f, 1.0f};
  std::vector<float> g(3);
  for (int s = 0; s < steps; ++s) {
    for (std::size_t i = 0; i < w.size(); ++i) g[i] = w[i];
    opt.step(one_param(w, g));
  }
  double norm = 0.0;
  for (float v : w) norm += v * v;
  return norm;
}

TEST(Sgd, ConvergesOnQuadratic) {
  Sgd opt(0.1);
  EXPECT_LT(minimize_quadratic(opt, 200), 1e-6);
}

TEST(Momentum, ConvergesOnQuadratic) {
  SgdMomentum opt(0.05, 0.9);
  EXPECT_LT(minimize_quadratic(opt, 300), 1e-4);
}

TEST(Adam, ConvergesOnQuadratic) {
  Adam opt(0.1);
  EXPECT_LT(minimize_quadratic(opt, 500), 1e-4);
}

TEST(Adam, FirstStepIsLearningRateSized) {
  // Bias correction makes the very first Adam update ~= lr * sign(grad).
  std::vector<float> w = {0.0f};
  std::vector<float> g = {123.0f};
  Adam opt(0.01);
  opt.step(one_param(w, g));
  EXPECT_NEAR(w[0], -0.01f, 1e-4f);
}

TEST(Optimizers, ParameterListChangeRejected) {
  std::vector<float> w1 = {1.0f}, g1 = {1.0f};
  std::vector<float> w2 = {1.0f, 2.0f}, g2 = {1.0f, 2.0f};
  Adam adam;
  adam.step(one_param(w1, g1));
  std::vector<ParamRef> two = {{w1.data(), g1.data(), 1}, {w2.data(), g2.data(), 2}};
  EXPECT_THROW(adam.step(two), std::logic_error);

  SgdMomentum mom;
  mom.step(one_param(w1, g1));
  EXPECT_THROW(mom.step(two), std::logic_error);
}

}  // namespace
}  // namespace airch::ml
