#include "sim/memory_model.hpp"

#include <gtest/gtest.h>

namespace airch {
namespace {

MemoryResult run(const GemmWorkload& w, const ArrayConfig& a, const MemoryConfig& m) {
  return memory_behavior(w, a, m, compute_latency(w, a));
}

// Generous buffers: every operand fetched exactly once.
TEST(MemoryModel, FullReuseTrafficOs) {
  const GemmWorkload w{64, 64, 64};
  const ArrayConfig a{16, 16, Dataflow::kOutputStationary};
  const MemoryConfig m{1000, 1000, 1000, 10};
  const MemoryResult r = run(w, a, m);
  EXPECT_EQ(r.dram_ifmap_bytes, Bytes{w.ifmap_elems()});
  EXPECT_EQ(r.dram_filter_bytes, Bytes{w.filter_elems()});
  EXPECT_EQ(r.dram_ofmap_bytes, Bytes{w.ofmap_elems()});
}

TEST(MemoryModel, FullReuseTrafficWs) {
  const GemmWorkload w{64, 64, 64};
  const ArrayConfig a{16, 16, Dataflow::kWeightStationary};
  const MemoryConfig m{1000, 1000, 1000, 10};
  const MemoryResult r = run(w, a, m);
  EXPECT_EQ(r.dram_filter_bytes, Bytes{w.filter_elems()});  // stationary: exactly once
  EXPECT_EQ(r.dram_ifmap_bytes, Bytes{w.ifmap_elems()});
  EXPECT_EQ(r.dram_ofmap_bytes, Bytes{w.ofmap_elems()});
}

TEST(MemoryModel, FullReuseTrafficIs) {
  const GemmWorkload w{64, 64, 64};
  const ArrayConfig a{16, 16, Dataflow::kInputStationary};
  const MemoryConfig m{1000, 1000, 1000, 10};
  const MemoryResult r = run(w, a, m);
  EXPECT_EQ(r.dram_ifmap_bytes, Bytes{w.ifmap_elems()});  // stationary operand
}

TEST(MemoryModel, TinyIfmapBufferCausesRefetchOs) {
  // IFMAP stripe = rows x K = 16 * 4096 = 64 KB; a 1 KB buffer cannot hold
  // it, so the stripe is re-streamed for every column fold.
  const GemmWorkload w{256, 256, 4096};
  const ArrayConfig a{16, 16, Dataflow::kOutputStationary};
  const MemoryConfig big{1000, 1000, 1000, 10};
  const MemoryConfig small{1, 1000, 1000, 10};
  EXPECT_GT(run(w, a, small).dram_ifmap_bytes, run(w, a, big).dram_ifmap_bytes);
}

TEST(MemoryModel, WsStationaryFilterImmuneToFilterBuffer) {
  // In WS, filter traffic is always exactly K*N regardless of buffer size
  // — the paper's Fig. 6(e) observation that WS tolerates small filter
  // buffers.
  const GemmWorkload w{512, 512, 512};
  const ArrayConfig a{16, 16, Dataflow::kWeightStationary};
  const MemoryConfig small{500, 1, 500, 10};
  EXPECT_EQ(run(w, a, small).dram_filter_bytes, Bytes{w.filter_elems()});
}

TEST(MemoryModel, IsStationaryIfmapImmuneToIfmapBuffer) {
  // Mirror property for IS and the IFMAP operand (paper Fig. 6(d)).
  const GemmWorkload w{512, 512, 512};
  const ArrayConfig a{16, 16, Dataflow::kInputStationary};
  const MemoryConfig small{1, 500, 500, 10};
  EXPECT_EQ(run(w, a, small).dram_ifmap_bytes, Bytes{w.ifmap_elems()});
}

TEST(MemoryModel, PsumSpillWhenOfmapBufferTiny) {
  // WS with K > rows has multiple reduction folds; a too-small OFMAP
  // buffer forces read+write partial-sum spills of the non-retained part.
  const GemmWorkload w{2048, 256, 4096};
  const ArrayConfig a{16, 16, Dataflow::kWeightStationary};
  const MemoryConfig big{1000, 1000, 1000, 10};
  const MemoryConfig small{1000, 1000, 1, 10};
  const auto spilled = run(w, a, small).dram_ofmap_bytes;
  const auto held = run(w, a, big).dram_ofmap_bytes;
  // A 1000 KB buffer holds the M x cols partial-sum stripe (32 KB): every
  // output written exactly once.
  EXPECT_EQ(held, Bytes{w.ofmap_elems()});
  EXPECT_GT(spilled, held);
  // Partial retention: the 1 KB buffer keeps 1024 bytes of each 32768-byte
  // stripe; the rest pays read+write per extra reduction fold per stripe.
  const std::int64_t red_folds = (w.k + a.rows - 1) / a.rows;
  const std::int64_t col_folds = (w.n + a.cols - 1) / a.cols;
  const std::int64_t stripe = w.m * a.cols;
  const std::int64_t expected =
      w.ofmap_elems() + 2 * (red_folds - 1) * col_folds * (stripe - 1024);
  EXPECT_EQ(spilled, Bytes{expected});
}

TEST(MemoryModel, PartialRetentionInterpolates) {
  // Growing the IFMAP buffer between "nothing retained" and "stripe fits"
  // must reduce traffic strictly and continuously (no step function).
  const GemmWorkload w{256, 2048, 4096};  // OS ifmap stripe = 16 * 4096 = 64 KB
  const ArrayConfig a{16, 16, Dataflow::kOutputStationary};
  Bytes prev{std::numeric_limits<std::int64_t>::max()};
  for (std::int64_t kb : {1, 16, 32, 48, 64}) {
    const MemoryConfig m{kb, 1000, 1000, 10};
    const auto traffic = run(w, a, m).dram_ifmap_bytes;
    EXPECT_LT(traffic, prev) << kb;
    prev = traffic;
  }
  // At 64 KB the stripe fits: minimum traffic, each element fetched once.
  EXPECT_EQ(prev, Bytes{w.ifmap_elems()});
}

TEST(MemoryModel, OsNeverSpillsPsums) {
  // Output-stationary accumulates in the PEs: OFMAP traffic is exactly
  // M*N even with a minimal output buffer.
  const GemmWorkload w{2048, 2048, 8192};
  const ArrayConfig a{8, 8, Dataflow::kOutputStationary};
  const MemoryConfig m{1, 1, 1, 10};
  EXPECT_EQ(run(w, a, m).dram_ofmap_bytes, Bytes{w.ofmap_elems()});
}

// Property: stalls are monotone non-increasing in bandwidth.
class StallBandwidth : public ::testing::TestWithParam<int> {};

TEST_P(StallBandwidth, MoreBandwidthNeverMoreStalls) {
  const auto df = dataflow_from_index(GetParam());
  const GemmWorkload w{300, 500, 700};
  const ArrayConfig a{32, 16, df};
  Cycles prev{std::numeric_limits<std::int64_t>::max()};
  for (std::int64_t bw : {1, 2, 5, 10, 20, 50, 100}) {
    const MemoryConfig m{200, 200, 200, bw};
    const auto stalls = run(w, a, m).stall_cycles;
    EXPECT_LE(stalls, prev) << "bw=" << bw;
    prev = stalls;
  }
}

INSTANTIATE_TEST_SUITE_P(AllDataflows, StallBandwidth, ::testing::Values(0, 1, 2));

// Property: growing any single buffer never increases total DRAM traffic.
class BufferMonotonicity : public ::testing::TestWithParam<int> {};

TEST_P(BufferMonotonicity, BiggerBuffersNeverMoreTraffic) {
  const auto df = dataflow_from_index(GetParam());
  const GemmWorkload w{777, 333, 1555};
  const ArrayConfig a{16, 32, df};
  for (int which = 0; which < 3; ++which) {
    Bytes prev_traffic{std::numeric_limits<std::int64_t>::max()};
    for (std::int64_t kb : {1, 10, 100, 400, 1000}) {
      MemoryConfig m{100, 100, 100, 10};
      if (which == 0) m.ifmap_kb = kb;
      if (which == 1) m.filter_kb = kb;
      if (which == 2) m.ofmap_kb = kb;
      const auto traffic = run(w, a, m).dram_total_bytes();
      EXPECT_LE(traffic, prev_traffic) << "buffer " << which << " kb " << kb;
      prev_traffic = traffic;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllDataflows, BufferMonotonicity, ::testing::Values(0, 1, 2));

TEST(MemoryModel, StallsIncludeFirstFill) {
  // Even with infinite effective bandwidth overlap, the first tile fetch
  // cannot be hidden.
  const GemmWorkload w{16, 16, 16};
  const ArrayConfig a{16, 16, Dataflow::kOutputStationary};
  const MemoryConfig m{100, 100, 100, 1};
  EXPECT_GT(run(w, a, m).stall_cycles, Cycles{0});
}

TEST(MemoryModel, SramTrafficAtLeastDramTraffic) {
  // Everything from DRAM passes through SRAM; SRAM additionally serves
  // reuse, so SRAM traffic >= per-operand DRAM traffic for the streamed
  // operands.
  const GemmWorkload w{512, 512, 512};
  for (Dataflow d : kAllDataflows) {
    const ArrayConfig a{16, 16, d};
    const MemoryConfig m{300, 300, 300, 10};
    const auto r = run(w, a, m);
    EXPECT_GE(r.sram_bytes, Bytes{w.ifmap_elems()});
    EXPECT_GE(r.sram_bytes, Bytes{w.filter_elems()});
  }
}

// ------------------------------------------------ factored traffic API

// The separability contract the case-2 sweep cache builds on: every
// per-operand DRAM traffic and first-fill component of memory_behavior
// must be recoverable from one traffic_factors() call via operand_traffic
// and min, for every dataflow and capacity mix.
TEST(TrafficFactors, ReassemblesMemoryBehaviorExactly) {
  const GemmWorkload workloads[] = {{64, 64, 64}, {300, 7, 1023}, {1, 512, 9}, {2048, 33, 5}};
  const std::int64_t caps_kb[] = {1, 3, 17, 100, 1000};
  for (const GemmWorkload& w : workloads) {
    for (Dataflow d : kAllDataflows) {
      const ArrayConfig a{16, 8, d};
      const ComputeResult compute = compute_latency(w, a);
      const TrafficFactors f = traffic_factors(w, a);
      for (const std::int64_t ik : caps_kb) {
        for (const std::int64_t fk : caps_kb) {
          for (const std::int64_t ok : caps_kb) {
            const MemoryConfig m{ik, fk, ok, 10};
            const MemoryResult r = memory_behavior(w, a, m, compute);
            ASSERT_EQ(r.dram_ifmap_bytes, operand_traffic(f.ifmap, m.ifmap_bytes()));
            ASSERT_EQ(r.dram_filter_bytes, operand_traffic(f.filter, m.filter_bytes()));
            ASSERT_EQ(r.dram_ofmap_bytes, operand_traffic(f.ofmap, m.ofmap_bytes()));
            ASSERT_EQ(r.first_fill_bytes, std::min(f.fill_ifmap, m.ifmap_bytes()) +
                                              std::min(f.fill_filter, m.filter_bytes()));
            ASSERT_EQ(r.sram_bytes, f.sram);  // capacity-independent
          }
        }
      }
    }
  }
}

TEST(TrafficFactors, OperandTrafficMonotoneInCapacity) {
  // More capacity never costs traffic: operand_traffic is non-increasing
  // in its own buffer size and saturates at `base` once the stripe fits.
  const GemmWorkload w{300, 200, 100};
  for (Dataflow d : kAllDataflows) {
    const TrafficFactors f = traffic_factors(w, {8, 8, d});
    for (const auto* op : {&f.ifmap, &f.filter, &f.ofmap}) {
      Bytes prev = operand_traffic(*op, Bytes{0});
      for (std::int64_t kb = 1; kb <= 600; kb += 7) {
        const Bytes cur = operand_traffic(*op, Bytes{kb * 1024});
        EXPECT_LE(cur, prev);
        prev = cur;
      }
      EXPECT_EQ(operand_traffic(*op, op->stripe), op->base);
    }
  }
}

}  // namespace
}  // namespace airch
