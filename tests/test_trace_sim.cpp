// The trace simulator functionally executes the GEMM through each
// dataflow's data movement; these tests verify (1) the computed output
// matches a reference GEMM (dataflow semantics are correct), (2) the MAC
// count is exactly M*N*K, and (3) cycle counts agree with the analytical
// model — cross-validating the two simulator modes like SCALE-Sim's.

#include "sim/trace_sim.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "sim/compute_model.hpp"

namespace airch {
namespace {

GemmMatrix random_matrix(std::int64_t r, std::int64_t c, Rng& rng) {
  GemmMatrix m(r, c);
  for (auto& v : m.data) v = static_cast<std::int32_t>(rng.uniform_int(-8, 8));
  return m;
}

void expect_equal(const GemmMatrix& a, const GemmMatrix& b) {
  ASSERT_EQ(a.rows, b.rows);
  ASSERT_EQ(a.cols, b.cols);
  for (std::int64_t i = 0; i < a.rows; ++i) {
    for (std::int64_t j = 0; j < a.cols; ++j) {
      ASSERT_EQ(a.at(i, j), b.at(i, j)) << "(" << i << "," << j << ")";
    }
  }
}

TEST(ReferenceGemm, KnownProduct) {
  GemmMatrix a(2, 3), b(3, 2);
  // a = [[1,2,3],[4,5,6]], b = [[7,8],[9,10],[11,12]]
  a.data = {1, 2, 3, 4, 5, 6};
  b.data = {7, 8, 9, 10, 11, 12};
  const GemmMatrix c = reference_gemm(a, b);
  EXPECT_EQ(c.at(0, 0), 58);
  EXPECT_EQ(c.at(0, 1), 64);
  EXPECT_EQ(c.at(1, 0), 139);
  EXPECT_EQ(c.at(1, 1), 154);
}

struct TraceCase {
  std::int64_t m, n, k;
  std::int64_t rows, cols;
};

class TraceFunctional : public ::testing::TestWithParam<TraceCase> {};

TEST_P(TraceFunctional, AllDataflowsComputeCorrectProduct) {
  const auto p = GetParam();
  Rng rng(static_cast<std::uint64_t>(p.m * 131 + p.n * 17 + p.k));
  const GemmMatrix a = random_matrix(p.m, p.k, rng);
  const GemmMatrix b = random_matrix(p.k, p.n, rng);
  const GemmMatrix expected = reference_gemm(a, b);

  const TraceSimulator sim;
  for (Dataflow d : kAllDataflows) {
    const ArrayConfig array{p.rows, p.cols, d};
    const TraceResult r = sim.run(a, b, array);
    SCOPED_TRACE(array.to_string());
    expect_equal(r.output, expected);
    EXPECT_EQ(r.macs, MacCount{p.m * p.n * p.k});
    EXPECT_GT(r.cycles, Cycles{0});
    EXPECT_GT(r.sram_reads, Bytes{0});
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TraceFunctional,
    ::testing::Values(TraceCase{4, 4, 4, 4, 4},      // exact fit
                      TraceCase{8, 8, 8, 4, 4},      // 2x2 folds
                      TraceCase{5, 7, 9, 4, 4},      // ragged partial folds
                      TraceCase{16, 3, 11, 8, 8},    // skinny N
                      TraceCase{3, 16, 11, 8, 8},    // skinny M
                      TraceCase{1, 1, 1, 4, 4},      // degenerate
                      TraceCase{12, 10, 32, 4, 8},   // deep K, rectangular array
                      TraceCase{32, 32, 8, 16, 4})); // wide fold pattern

TEST(TraceVsAnalytical, ExactForFullTiles) {
  // Workload dims exact multiples of the array: the trace cycle count must
  // equal the analytical model exactly for every dataflow.
  Rng rng(5);
  const std::int64_t rows = 8, cols = 8;
  const GemmMatrix a = random_matrix(32, 24, rng);  // M=32, K=24
  const GemmMatrix b = random_matrix(24, 16, rng);  // N=16
  const GemmWorkload w{32, 16, 24};
  const TraceSimulator sim;
  for (Dataflow d : kAllDataflows) {
    const ArrayConfig array{rows, cols, d};
    const TraceResult trace = sim.run(a, b, array);
    const ComputeResult analytical = compute_latency(w, array);
    EXPECT_EQ(trace.cycles, analytical.cycles) << to_string(d);
    EXPECT_EQ(trace.folds, analytical.folds) << to_string(d);
  }
}

TEST(TraceVsAnalytical, CloseForRaggedTiles) {
  // Partial folds: the analytical model charges full-tile latency per
  // fold, so it must upper-bound the trace within a modest margin.
  Rng rng(7);
  const GemmMatrix a = random_matrix(19, 13, rng);
  const GemmMatrix b = random_matrix(13, 21, rng);
  const GemmWorkload w{19, 21, 13};
  const TraceSimulator sim;
  for (Dataflow d : kAllDataflows) {
    const ArrayConfig array{8, 8, d};
    const TraceResult trace = sim.run(a, b, array);
    const ComputeResult analytical = compute_latency(w, array);
    EXPECT_LE(trace.cycles, analytical.cycles) << to_string(d);
    EXPECT_GE(trace.cycles / analytical.cycles, 0.5)
        << to_string(d);
  }
}

TEST(TraceSim, SramReadCounts) {
  // OS fold: A streamed K per row per column-fold, B streamed K per column
  // per row-fold.
  Rng rng(9);
  const GemmMatrix a = random_matrix(8, 16, rng);
  const GemmMatrix b = random_matrix(16, 8, rng);
  const TraceSimulator sim;
  const TraceResult r = sim.run(a, b, {8, 8, Dataflow::kOutputStationary});
  // Single fold: A reads = 8*16, B reads = 16*8.
  EXPECT_EQ(r.sram_reads, Bytes{8 * 16 + 16 * 8});
}

TEST(TraceSim, ShapeMismatchThrows) {
  const GemmMatrix a(4, 5), b(6, 4);
  const TraceSimulator sim;
  EXPECT_THROW(sim.run(a, b, {4, 4, Dataflow::kOutputStationary}), std::invalid_argument);
}

TEST(TraceSim, FoldCountsMatchMapping) {
  Rng rng(11);
  const GemmMatrix a = random_matrix(20, 12, rng);
  const GemmMatrix b = random_matrix(12, 9, rng);
  const TraceSimulator sim;
  // OS folds over (M, N): ceil(20/8) * ceil(9/8) = 3 * 2.
  EXPECT_EQ(sim.run(a, b, {8, 8, Dataflow::kOutputStationary}).folds, 6);
  // WS folds over (K, N): ceil(12/8) * ceil(9/8) = 2 * 2.
  EXPECT_EQ(sim.run(a, b, {8, 8, Dataflow::kWeightStationary}).folds, 4);
  // IS folds over (K, M): ceil(12/8) * ceil(20/8) = 2 * 3.
  EXPECT_EQ(sim.run(a, b, {8, 8, Dataflow::kInputStationary}).folds, 6);
}

}  // namespace
}  // namespace airch
