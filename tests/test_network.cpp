#include "ml/network.hpp"

#include <gtest/gtest.h>

#include "ml/activation.hpp"

namespace airch::ml {
namespace {

// Synthetic 3-class problem, float modality: class = argmax coordinate.
TEST(FeedForwardNet, LearnsSeparableFloatProblem) {
  Rng rng(3);
  FeedForwardNet net(3, {32}, 3, rng);
  Adam opt(0.01);

  Rng data_rng(5);
  auto make_batch = [&](std::size_t n, Matrix& x, std::vector<std::int32_t>& y) {
    x.resize(n, 3);
    y.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      int best = 0;
      for (int f = 0; f < 3; ++f) {
        x(i, static_cast<std::size_t>(f)) = static_cast<float>(data_rng.uniform(-1.0, 1.0));
        if (x(i, static_cast<std::size_t>(f)) > x(i, static_cast<std::size_t>(best))) best = f;
      }
      y[i] = best;
    }
  };

  Matrix x;
  std::vector<std::int32_t> y;
  for (int step = 0; step < 300; ++step) {
    make_batch(64, x, y);
    (void)net.train_batch(x, y, opt);  // training for the side effect; per-step stats unused
  }
  make_batch(500, x, y);
  const auto preds = net.predict(x);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < y.size(); ++i) {
    if (preds[i] == y[i]) ++correct;
  }
  EXPECT_GT(static_cast<double>(correct) / 500.0, 0.9);
}

// Embedding modality: label determined by a lookup table over 2 features.
TEST(FeedForwardNet, LearnsCategoricalProblemViaEmbeddings) {
  Rng rng(7);
  FeedForwardNet net({5, 5}, 8, {32}, 4, rng);
  Adam opt(0.01);

  auto label_of = [](int a, int b) { return (a * 3 + b * 7) % 4; };
  Rng data_rng(9);
  auto make_batch = [&](std::size_t n, IntBatch& x, std::vector<std::int32_t>& y) {
    x.resize(n, 2);
    y.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      const int a = static_cast<int>(data_rng.uniform_int(0, 4));
      const int b = static_cast<int>(data_rng.uniform_int(0, 4));
      x(i, 0) = a;
      x(i, 1) = b;
      y[i] = label_of(a, b);
    }
  };

  IntBatch x;
  std::vector<std::int32_t> y;
  for (int step = 0; step < 400; ++step) {
    make_batch(64, x, y);
    (void)net.train_batch(x, y, opt);  // training for the side effect; per-step stats unused
  }
  make_batch(500, x, y);
  const auto preds = net.predict(x);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < y.size(); ++i) {
    if (preds[i] == y[i]) ++correct;
  }
  // The mapping is a finite table; the net should essentially memorize it.
  EXPECT_GT(static_cast<double>(correct) / 500.0, 0.95);
}

TEST(FeedForwardNet, TrainingReducesLoss) {
  Rng rng(11);
  FeedForwardNet net(4, {16}, 2, rng);
  Adam opt(0.01);
  Matrix x(32, 4);
  std::vector<std::int32_t> y(32);
  Rng data_rng(13);
  for (std::size_t i = 0; i < 32; ++i) {
    for (std::size_t f = 0; f < 4; ++f) {
      x(i, f) = static_cast<float>(data_rng.uniform(-1.0, 1.0));
    }
    y[i] = x(i, 0) > 0.0f ? 1 : 0;
  }
  const double first = net.train_batch(x, y, opt).loss;
  double last = first;
  for (int step = 0; step < 100; ++step) last = net.train_batch(x, y, opt).loss;
  EXPECT_LT(last, first * 0.5);
}

TEST(FeedForwardNet, ModalityMismatchThrows) {
  Rng rng(15);
  FeedForwardNet float_net(4, {8}, 2, rng);
  IntBatch ints;
  ints.resize(1, 4);
  EXPECT_THROW(float_net.logits(ints, false), std::logic_error);

  FeedForwardNet embed_net({4, 4, 4, 4}, 4, {8}, 2, rng);
  Matrix floats(1, 4);
  EXPECT_THROW(embed_net.logits(floats, false), std::logic_error);
}

TEST(FeedForwardNet, ParamsCoverAllLayers) {
  Rng rng(17);
  // embeddings (2 tables) + dense1 (W+b) + dense2 (W+b) = 6 param tensors.
  FeedForwardNet net({4, 4}, 4, {8}, 3, rng);
  EXPECT_EQ(net.params().size(), 6u);
  EXPECT_TRUE(net.has_embedding());
  EXPECT_EQ(net.num_classes(), 3u);
}

TEST(Sequential, ForwardBackwardShapes) {
  Rng rng(19);
  Sequential seq;
  seq.add(std::make_unique<DenseLayer>(6, 4, rng));
  seq.add(std::make_unique<ReluLayer>());
  seq.add(std::make_unique<DenseLayer>(4, 2, rng));
  Matrix x(3, 6, 0.5f);
  const Matrix out = seq.forward(x, true);
  EXPECT_EQ(out.rows(), 3u);
  EXPECT_EQ(out.cols(), 2u);
  Matrix grad(3, 2, 1.0f);
  const Matrix grad_in = seq.backward(grad);
  EXPECT_EQ(grad_in.rows(), 3u);
  EXPECT_EQ(grad_in.cols(), 6u);
  EXPECT_EQ(seq.num_layers(), 3u);
}

}  // namespace
}  // namespace airch::ml
