#include "sim/compute_model.hpp"

#include <gtest/gtest.h>

#include "common/math_utils.hpp"

namespace airch {
namespace {

TEST(Mapping, OutputStationary) {
  const Mapping m = map_workload({10, 20, 30}, Dataflow::kOutputStationary);
  EXPECT_EQ(m.spatial_rows, 10);  // M
  EXPECT_EQ(m.spatial_cols, 20);  // N
  EXPECT_EQ(m.temporal, 30);      // K
}

TEST(Mapping, WeightStationary) {
  const Mapping m = map_workload({10, 20, 30}, Dataflow::kWeightStationary);
  EXPECT_EQ(m.spatial_rows, 30);  // K
  EXPECT_EQ(m.spatial_cols, 20);  // N
  EXPECT_EQ(m.temporal, 10);      // M
}

TEST(Mapping, InputStationary) {
  const Mapping m = map_workload({10, 20, 30}, Dataflow::kInputStationary);
  EXPECT_EQ(m.spatial_rows, 30);  // K
  EXPECT_EQ(m.spatial_cols, 10);  // M
  EXPECT_EQ(m.temporal, 20);      // N
}

TEST(ComputeLatency, SingleFoldOsFormula) {
  // 8x8 array, workload fits exactly: M=8, N=8, K=16.
  const ComputeResult r = compute_latency({8, 8, 16}, {8, 8, Dataflow::kOutputStationary});
  EXPECT_EQ(r.folds, 1);
  // (rows-1) + K + (rows+cols-1) = 7 + 16 + 15 = 38
  EXPECT_EQ(r.cycles, Cycles{38});
}

TEST(ComputeLatency, SingleFoldWsFormula) {
  const ComputeResult r = compute_latency({16, 8, 8}, {8, 8, Dataflow::kWeightStationary});
  EXPECT_EQ(r.folds, 1);
  // rows + M + (rows+cols-2) = 8 + 16 + 14 = 38
  EXPECT_EQ(r.cycles, Cycles{38});
}

TEST(ComputeLatency, FoldCount) {
  // OS: M=20 on 8 rows -> 3 row folds; N=9 on 8 cols -> 2 col folds.
  const ComputeResult r = compute_latency({20, 9, 4}, {8, 8, Dataflow::kOutputStationary});
  EXPECT_EQ(r.folds, 6);
  EXPECT_EQ(r.cycles, r.folds * r.fold_cycles);
}

TEST(ComputeLatency, UtilizationNeverExceedsOne) {
  const std::vector<GemmWorkload> workloads = {
      {1, 1, 1}, {8, 8, 8}, {100, 3, 7}, {1024, 1024, 1024}, {5, 999, 2}};
  const std::vector<ArrayConfig> arrays = {
      {4, 4, Dataflow::kOutputStationary},
      {32, 8, Dataflow::kWeightStationary},
      {2, 256, Dataflow::kInputStationary},
  };
  for (const auto& w : workloads) {
    for (const auto& a : arrays) {
      const ComputeResult r = compute_latency(w, a);
      EXPECT_GT(r.utilization, Utilization{0.0}) << w.to_string() << " " << a.to_string();
      EXPECT_LE(r.utilization, Utilization{1.0}) << w.to_string() << " " << a.to_string();
    }
  }
}

TEST(ComputeLatency, PerfectlyMatchedShapeHasHighUtilization) {
  // Large K amortizes fill/drain for OS.
  const ComputeResult r = compute_latency({32, 32, 100000}, {32, 32, Dataflow::kOutputStationary});
  EXPECT_GT(r.utilization, Utilization{0.99});
}

// Property sweep: latency is monotonically non-decreasing in each GEMM dim.
struct MonotoneCase {
  Dataflow dataflow;
  std::int64_t rows, cols;
};

class LatencyMonotonicity : public ::testing::TestWithParam<MonotoneCase> {};

TEST_P(LatencyMonotonicity, NonDecreasingInEachDim) {
  const auto p = GetParam();
  const ArrayConfig a{p.rows, p.cols, p.dataflow};
  const GemmWorkload base{37, 53, 71};
  const Cycles base_cycles = compute_latency(base, a).cycles;
  for (std::int64_t scale : {2, 5, 16}) {
    GemmWorkload wm = base, wn = base, wk = base;
    wm.m *= scale;
    wn.n *= scale;
    wk.k *= scale;
    EXPECT_GE(compute_latency(wm, a).cycles, base_cycles);
    EXPECT_GE(compute_latency(wn, a).cycles, base_cycles);
    EXPECT_GE(compute_latency(wk, a).cycles, base_cycles);
  }
}

INSTANTIATE_TEST_SUITE_P(
    ArraysAndDataflows, LatencyMonotonicity,
    ::testing::Values(MonotoneCase{Dataflow::kOutputStationary, 8, 8},
                      MonotoneCase{Dataflow::kOutputStationary, 4, 64},
                      MonotoneCase{Dataflow::kWeightStationary, 8, 8},
                      MonotoneCase{Dataflow::kWeightStationary, 64, 4},
                      MonotoneCase{Dataflow::kInputStationary, 8, 8},
                      MonotoneCase{Dataflow::kInputStationary, 16, 32}));

TEST(ComputeLatency, DataflowMatchesReuseStructure) {
  // Huge K, small M: WS/IS pay K-folds; OS streams K temporally in one
  // fold — OS must win.
  const GemmWorkload deep{16, 16, 1 << 14};
  const Cycles os =
      compute_latency(deep, {16, 16, Dataflow::kOutputStationary}).cycles;
  const Cycles ws =
      compute_latency(deep, {16, 16, Dataflow::kWeightStationary}).cycles;
  const Cycles is =
      compute_latency(deep, {16, 16, Dataflow::kInputStationary}).cycles;
  EXPECT_LT(os, ws);
  EXPECT_LT(os, is);

  // Huge M, modest K/N: WS holds weights and streams M temporally.
  const GemmWorkload tall{1 << 14, 16, 16};
  const Cycles os2 =
      compute_latency(tall, {16, 16, Dataflow::kOutputStationary}).cycles;
  const Cycles ws2 =
      compute_latency(tall, {16, 16, Dataflow::kWeightStationary}).cycles;
  EXPECT_LT(ws2, os2);
}

TEST(ComputeLatency, BiggerArrayNeverMoreFolds) {
  const GemmWorkload w{1000, 777, 333};
  for (Dataflow d : kAllDataflows) {
    const ComputeResult small = compute_latency(w, {8, 8, d});
    const ComputeResult big = compute_latency(w, {32, 32, d});
    EXPECT_LE(big.folds, small.folds);
  }
}

TEST(ComputeLatency, UnitWorkloadUnitArray) {
  for (Dataflow d : kAllDataflows) {
    const ComputeResult r = compute_latency({1, 1, 1}, {1, 1, d});
    EXPECT_EQ(r.folds, 1);
    EXPECT_GE(r.cycles, Cycles{1});
  }
}

}  // namespace
}  // namespace airch
