#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

namespace airch {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, ReseedRestartsSequence) {
  Rng a(77);
  const auto first = a.next_u64();
  a.next_u64();
  a.reseed(77);
  EXPECT_EQ(a.next_u64(), first);
}

TEST(UniformInt, StaysInRangeInclusive) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 20000; ++i) {
    const auto v = rng.uniform_int(3, 9);
    ASSERT_GE(v, 3);
    ASSERT_LE(v, 9);
    saw_lo |= v == 3;
    saw_hi |= v == 9;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(UniformInt, DegenerateRange) {
  Rng rng(5);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(42, 42), 42);
}

TEST(UniformInt, NegativeRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-10, -1);
    ASSERT_GE(v, -10);
    ASSERT_LE(v, -1);
  }
}

TEST(UniformReal, HalfOpenUnit) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
  }
}

TEST(UniformReal, MeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Normal, MomentsMatch) {
  Rng rng(13);
  const int n = 100000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Normal, ShiftScale) {
  Rng rng(17);
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(LogUniformInt, StaysInRange) {
  Rng rng(19);
  for (int i = 0; i < 20000; ++i) {
    const auto v = rng.log_uniform_int(4, 1 << 19);
    ASSERT_GE(v, 4);
    ASSERT_LE(v, 1 << 19);
  }
}

TEST(LogUniformInt, OctavesRoughlyEqual) {
  // Each octave [2^e, 2^{e+1}) should receive a similar share of samples.
  Rng rng(23);
  const int n = 200000;
  std::vector<int> octave_counts(10, 0);
  for (int i = 0; i < n; ++i) {
    const auto v = rng.log_uniform_int(1, (1 << 10) - 1);
    int e = 0;
    while ((std::int64_t{1} << (e + 1)) <= v) ++e;
    ++octave_counts[static_cast<std::size_t>(e)];
  }
  const double expected = static_cast<double>(n) / 10.0;
  for (int e = 0; e < 10; ++e) {
    EXPECT_NEAR(octave_counts[static_cast<std::size_t>(e)], expected, expected * 0.15)
        << "octave " << e;
  }
}

TEST(Shuffle, ProducesPermutation) {
  Rng rng(29);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto copy = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, copy);
}

TEST(Shuffle, ActuallyPermutes) {
  Rng rng(31);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto original = v;
  rng.shuffle(v);
  EXPECT_NE(v, original);  // astronomically unlikely to be identity
}

TEST(WeightedIndex, RespectsWeights) {
  Rng rng(37);
  const std::vector<double> w = {0.0, 3.0, 1.0};
  std::vector<int> counts(3, 0);
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++counts[rng.weighted_index(w)];
  EXPECT_EQ(counts[0], 0);
  EXPECT_NEAR(static_cast<double>(counts[1]) / n, 0.75, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.25, 0.02);
}

}  // namespace
}  // namespace airch
