#include "search/genetic.hpp"

#include <gtest/gtest.h>

#include "common/math_utils.hpp"
#include "workload/sampler.hpp"

namespace airch {
namespace {

class GaCase1Test : public ::testing::Test {
 protected:
  GaCase1Test() : space_(12), exhaustive_(space_, sim_), ga_(space_, sim_) {}
  Simulator sim_;
  ArrayDataflowSpace space_;
  ArrayDataflowSearch exhaustive_;
  GaArrayDataflowSearch ga_;
};

TEST_F(GaCase1Test, FindsNearOptimalSolutions) {
  Rng rng(3);
  LogUniformGemmSampler sampler;
  for (int trial = 0; trial < 10; ++trial) {
    const GemmWorkload w = sampler.sample(rng);
    const auto opt = exhaustive_.best(w, 12);
    GaOptions options;
    options.seed = static_cast<std::uint64_t>(trial) + 1;
    const auto ga = ga_.best(w, 12, options);
    // GA should be within 25% of the exhaustive optimum on this small space.
    EXPECT_LE(ga.cycles / opt.cycles, 1.25)
        << w.to_string();
    // And never better than it (the optimum is a true minimum).
    EXPECT_GE(ga.cycles, opt.cycles);
  }
}

TEST_F(GaCase1Test, RespectsBudget) {
  Rng rng(5);
  LogUniformGemmSampler sampler;
  for (int budget = 4; budget <= 12; budget += 2) {
    const GemmWorkload w = sampler.sample(rng);
    const auto r = ga_.best(w, budget);
    EXPECT_LE(space_.config(r.label).macs(), MacCount{pow2(budget)});
  }
}

TEST(GaEvaluationBudget, FarFewerEvaluationsThanExhaustiveOnFullSpace) {
  // On the paper-sized space (459 labels) the GA's evaluation budget
  // (pop + generations * (pop - elite)) is well below exhaustive search.
  const Simulator sim;
  const ArrayDataflowSpace space(18);
  const GaArrayDataflowSearch ga(space, sim);
  const GemmWorkload w{512, 512, 512};
  const auto r = ga.best(w, 18);
  EXPECT_LT(r.evaluations, space.labels_within_budget(18).size());
}

TEST_F(GaCase1Test, DeterministicForSeed) {
  const GemmWorkload w{300, 400, 500};
  GaOptions options;
  options.seed = 77;
  const auto a = ga_.best(w, 10, options);
  const auto b = ga_.best(w, 10, options);
  EXPECT_EQ(a.label, b.label);
  EXPECT_EQ(a.evaluations, b.evaluations);
}

TEST_F(GaCase1Test, ReportedCyclesMatchLabel) {
  const GemmWorkload w{777, 222, 333};
  const auto r = ga_.best(w, 11);
  EXPECT_EQ(r.cycles, exhaustive_.cycles_of(w, r.label));
}

class GaCase3Test : public ::testing::Test {
 protected:
  GaCase3Test()
      : space_(4),
        exhaustive_(space_, default_scheduled_arrays(), sim_),
        ga_(space_, default_scheduled_arrays(), sim_) {}
  Simulator sim_;
  ScheduleSpace space_;
  ScheduleSearch exhaustive_;
  GaScheduleSearch ga_;
};

TEST_F(GaCase3Test, FindsNearOptimalSchedules) {
  Rng rng(7);
  LogUniformGemmSampler sampler;
  for (int trial = 0; trial < 5; ++trial) {
    const auto workloads = sampler.sample_many(rng, 4);
    const auto opt = exhaustive_.best(workloads);
    GaOptions options;
    options.seed = static_cast<std::uint64_t>(trial) + 1;
    const auto ga = ga_.best(workloads, options);
    EXPECT_LE(ga.makespan_cycles / opt.makespan_cycles, 1.2);
    EXPECT_GE(ga.makespan_cycles, opt.makespan_cycles);
  }
}

TEST_F(GaCase3Test, ProducesValidScheduleLabels) {
  Rng rng(9);
  LogUniformGemmSampler sampler;
  const auto workloads = sampler.sample_many(rng, 4);
  const auto r = ga_.best(workloads);
  EXPECT_GE(r.label, 0);
  EXPECT_LT(r.label, space_.size());
  // Label decodes to a real permutation.
  const auto s = space_.config(r.label);
  std::vector<int> sorted = s.workload_of;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<int>{0, 1, 2, 3}));
}

TEST(GeneticOptimizer, ConvergesOnToyProblem) {
  // Maximize -(x-42)^2 over integers via GA.
  GeneticOptimizer<int>::Hooks hooks;
  hooks.random = [](Rng& rng) { return static_cast<int>(rng.uniform_int(0, 1000)); };
  hooks.crossover = [](const int& a, const int& b, Rng&) { return (a + b) / 2; };
  hooks.mutate = [](int& g, Rng& rng) { g += static_cast<int>(rng.uniform_int(-10, 10)); };
  hooks.fitness = [](const int& g) { return -static_cast<double>((g - 42) * (g - 42)); };
  GaOptions options;
  options.generations = 30;
  GeneticOptimizer<int> ga(options, std::move(hooks));
  const auto r = ga.run();
  EXPECT_NEAR(r.best, 42, 5);
  EXPECT_GT(r.evaluations, 0u);
}

}  // namespace
}  // namespace airch
