// Binary dataset format (dataset/binary_io.hpp): bit-exact round trips,
// CSV interchange, streaming batches, shard merging, and — the hardening
// half — fuzz-lite corruption sweeps: every single-byte substitution,
// every truncation length, wrong-version and wrong-schema crafted files
// all must throw ContractViolation, never misparse or crash.

#include "dataset/binary_io.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "dataset/encoding.hpp"
#include "models/neural.hpp"

namespace airch {
namespace {

Dataset make_dataset(std::size_t n, int num_features, int num_classes, std::uint64_t seed) {
  std::vector<std::string> names;
  for (int f = 0; f < num_features; ++f) names.push_back("f" + std::to_string(f));
  Dataset ds(names, num_classes);
  Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    DataPoint p;
    // Include negative and large-magnitude features: the record encoding
    // must round-trip the full i64 domain, not just small positives.
    for (int f = 0; f < num_features; ++f) {
      p.features.push_back(rng.uniform_int(-1000000, 1000000) * 4097);
    }
    p.label = static_cast<std::int32_t>(rng.uniform_int(0, num_classes - 1));
    ds.add(std::move(p));
  }
  return ds;
}

void expect_identical(const Dataset& a, const Dataset& b) {
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.feature_names(), b.feature_names());
  ASSERT_EQ(a.num_classes(), b.num_classes());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].features, b[i].features) << "point " << i;
    ASSERT_EQ(a[i].label, b[i].label) << "point " << i;
  }
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

class BinaryIoTest : public ::testing::Test {
 protected:
  void SetUp() override { dir_ = ::testing::TempDir(); }
  std::string path(const std::string& name) const { return dir_ + name; }
  std::string dir_;
};

// ------------------------------------------------------------ round trips

TEST_F(BinaryIoTest, WriteReadRoundTripIsBitExact) {
  const Dataset ds = make_dataset(257, 5, 40, 7);
  write_binary_dataset(ds, path("rt.bin"));
  expect_identical(ds, read_binary_dataset(path("rt.bin")));
}

TEST_F(BinaryIoTest, EmptyDatasetRoundTrips) {
  const Dataset ds({"a", "b"}, 3);
  write_binary_dataset(ds, path("empty.bin"));
  const Dataset back = read_binary_dataset(path("empty.bin"));
  EXPECT_EQ(back.size(), 0u);
  EXPECT_EQ(back.feature_names(), ds.feature_names());
  EXPECT_EQ(back.num_classes(), 3);
}

TEST_F(BinaryIoTest, CsvBinaryCsvRoundTripIsBitExact) {
  const Dataset ds = make_dataset(100, 4, 10, 3);
  ds.save_csv(path("a.csv"));
  convert_csv_to_binary(path("a.csv"), path("a.bin"), ds.num_classes());
  expect_identical(ds, read_binary_dataset(path("a.bin")));
  convert_binary_to_csv(path("a.bin"), path("b.csv"));
  EXPECT_EQ(read_file(path("a.csv")), read_file(path("b.csv")));
}

TEST_F(BinaryIoTest, CsvConversionRejectsOutOfRangeLabel) {
  const Dataset ds = make_dataset(20, 3, 10, 5);
  ds.save_csv(path("lab.csv"));
  // Declaring fewer classes than the labels use must fail loudly.
  EXPECT_THROW(convert_csv_to_binary(path("lab.csv"), path("lab.bin"), 2), ContractViolation);
}

// ------------------------------------------------------------- streaming

TEST_F(BinaryIoTest, BatchStreamChunksConcatenateToWholeFile) {
  const Dataset ds = make_dataset(103, 3, 8, 11);
  write_binary_dataset(ds, path("chunks.bin"));
  BatchStream stream(path("chunks.bin"));
  EXPECT_EQ(stream.size(), 103u);
  EXPECT_EQ(stream.num_features(), 3);

  Dataset all(stream.feature_names(), stream.num_classes());
  Dataset chunk;
  std::size_t batches = 0;
  while (stream.next_batch(10, chunk)) {
    ++batches;
    EXPECT_LE(chunk.size(), 10u);
    for (const auto& p : chunk.points()) all.add(p);
  }
  EXPECT_EQ(batches, 11u);  // 10 full + 1 tail of 3
  expect_identical(ds, all);

  // Exhausted stream keeps returning false; reset() replays from point 0.
  EXPECT_FALSE(stream.next_batch(10, chunk));
  stream.reset();
  ASSERT_TRUE(stream.next_batch(1000, chunk));
  expect_identical(ds, chunk);
}

TEST_F(BinaryIoTest, FitStreamMatchesFitBitExactly) {
  // One chunk covering the whole file degenerates fit_stream to fit():
  // same Rng sequence, same batch fold — histories and predictions must be
  // bit-identical, not merely close.
  const Dataset train = make_dataset(120, 4, 6, 21);
  const Dataset val = make_dataset(30, 4, 6, 22);
  write_binary_dataset(train, path("train.bin"));

  const FeatureEncoder enc(train);

  NeuralClassifier::Options opts;
  opts.hidden = {16};
  opts.epochs = 3;
  opts.batch_size = 32;
  opts.seed = 5;
  NeuralClassifier in_memory("m", opts);
  NeuralClassifier streamed("s", opts);

  const auto hist_fit = in_memory.fit(train, val, enc);
  BatchStream stream(path("train.bin"));
  const auto hist_stream = streamed.fit_stream(stream, val, enc, train.size());

  ASSERT_EQ(hist_fit.size(), hist_stream.size());
  for (std::size_t i = 0; i < hist_fit.size(); ++i) {
    EXPECT_EQ(hist_fit[i].train_loss, hist_stream[i].train_loss) << "epoch " << i;
    EXPECT_EQ(hist_fit[i].train_accuracy, hist_stream[i].train_accuracy) << "epoch " << i;
    EXPECT_EQ(hist_fit[i].val_accuracy, hist_stream[i].val_accuracy) << "epoch " << i;
  }
  EXPECT_EQ(in_memory.predict(val, enc), streamed.predict(val, enc));
}

TEST_F(BinaryIoTest, FitStreamMultiChunkTrains) {
  // Multi-chunk epochs shuffle within chunks; the result is a different
  // but still functional model — this pins the shape, not bit-identity.
  const Dataset train = make_dataset(100, 4, 6, 31);
  write_binary_dataset(train, path("mc.bin"));
  const FeatureEncoder enc(train);
  NeuralClassifier::Options opts;
  opts.hidden = {8};
  opts.epochs = 2;
  opts.seed = 9;
  NeuralClassifier clf("mc", opts);
  BatchStream stream(path("mc.bin"));
  const auto hist = clf.fit_stream(stream, Dataset(train.feature_names(), 6), enc, 32);
  ASSERT_EQ(hist.size(), 2u);
  EXPECT_EQ(clf.predict(train, enc).size(), train.size());
}

// ---------------------------------------------------------------- merging

TEST_F(BinaryIoTest, MergedShardsAreByteIdenticalToSingleWriter) {
  const Dataset full = make_dataset(90, 4, 12, 17);
  write_binary_dataset(full, path("full.bin"));

  for (const std::size_t shards : {2u, 4u}) {
    std::vector<std::string> shard_paths;
    for (std::size_t s = 0; s < shards; ++s) {
      const std::size_t begin = full.size() * s / shards;
      const std::size_t end = full.size() * (s + 1) / shards;
      Dataset part(full.feature_names(), full.num_classes());
      for (std::size_t i = begin; i < end; ++i) part.add(full[i]);
      shard_paths.push_back(path("part" + std::to_string(s) + ".bin"));
      write_binary_dataset(part, shard_paths.back());
    }
    merge_binary_shards(shard_paths, path("merged.bin"));
    EXPECT_EQ(read_file(path("full.bin")), read_file(path("merged.bin"))) << shards << " shards";
  }
}

TEST_F(BinaryIoTest, MergeRejectsSchemaMismatch) {
  write_binary_dataset(make_dataset(5, 3, 8, 1), path("s1.bin"));
  write_binary_dataset(make_dataset(5, 4, 8, 1), path("s2.bin"));  // extra feature
  EXPECT_THROW(merge_binary_shards({path("s1.bin"), path("s2.bin")}, path("m.bin")),
               ContractViolation);
  write_binary_dataset(make_dataset(5, 3, 9, 1), path("s3.bin"));  // different classes
  EXPECT_THROW(merge_binary_shards({path("s1.bin"), path("s3.bin")}, path("m.bin")),
               ContractViolation);
}

// ------------------------------------------------------------- corruption

TEST_F(BinaryIoTest, EverySingleByteSubstitutionIsRejected) {
  // The FNV-1a trailer covers every preceding byte and the trailer itself
  // is the digest, so any single-byte substitution anywhere in the file
  // must surface as ContractViolation at open. This sweeps all of them.
  write_binary_dataset(make_dataset(3, 2, 5, 13), path("fuzz.bin"));
  const std::string good = read_file(path("fuzz.bin"));
  ASSERT_GT(good.size(), 0u);
  for (std::size_t i = 0; i < good.size(); ++i) {
    std::string bad = good;
    bad[i] = static_cast<char>(static_cast<unsigned char>(bad[i]) ^ 0xA5u);
    write_file(path("fuzz_bad.bin"), bad);
    EXPECT_THROW(BatchStream stream(path("fuzz_bad.bin")), ContractViolation)
        << "flipped byte " << i << " of " << good.size();
  }
}

TEST_F(BinaryIoTest, EveryTruncationLengthIsRejected) {
  write_binary_dataset(make_dataset(2, 2, 5, 14), path("trunc.bin"));
  const std::string good = read_file(path("trunc.bin"));
  for (std::size_t len = 0; len < good.size(); ++len) {
    write_file(path("trunc_bad.bin"), good.substr(0, len));
    EXPECT_THROW(BatchStream stream(path("trunc_bad.bin")), ContractViolation)
        << "truncated to " << len << " of " << good.size();
  }
}

TEST_F(BinaryIoTest, WrongVersionWithHonestChecksumIsRejected) {
  // Hand-crafted with BinWriter, so the trailer checksum is VALID — the
  // version check itself must fire, not the corruption backstop.
  {
    BinWriter w(path("ver.bin"));
    w.put_u64(kDatasetMagic);
    w.put_u32(kDatasetFormatVersion + 1);
    w.put_u32(1);
    w.put_u32(2);
    const std::string name = "x";
    w.put_u32(static_cast<std::uint32_t>(name.size()));
    w.put_bytes(name.data(), name.size());
    w.put_u64(dataset_schema_hash({name}, 2));
    w.put_u64(0);
    w.put_trailer_checksum();
    w.finish();
  }
  EXPECT_THROW(BatchStream stream(path("ver.bin")), ContractViolation);
}

TEST_F(BinaryIoTest, WrongMagicWithHonestChecksumIsRejected) {
  {
    BinWriter w(path("magic.bin"));
    w.put_u64(kDatasetMagic ^ 1);
    w.put_u64(0);
    w.put_trailer_checksum();
    w.finish();
  }
  EXPECT_THROW(BatchStream stream(path("magic.bin")), ContractViolation);
}

TEST_F(BinaryIoTest, SchemaHashMismatchWithHonestChecksumIsRejected) {
  {
    BinWriter w(path("schema.bin"));
    w.put_u64(kDatasetMagic);
    w.put_u32(kDatasetFormatVersion);
    w.put_u32(1);
    w.put_u32(2);
    const std::string name = "x";
    w.put_u32(static_cast<std::uint32_t>(name.size()));
    w.put_bytes(name.data(), name.size());
    w.put_u64(dataset_schema_hash({name}, 2) ^ 0xDEADBEEFULL);  // lies about the schema
    w.put_u64(0);
    w.put_trailer_checksum();
    w.finish();
  }
  EXPECT_THROW(BatchStream stream(path("schema.bin")), ContractViolation);
}

TEST_F(BinaryIoTest, HonestChecksumOutOfRangeLabelIsRejectedAtDecode) {
  // A file whose checksum is honest about bad content: label 7 with only
  // 5 classes. Open succeeds (bytes are consistent); decode must throw.
  {
    BinWriter w(path("badlab.bin"));
    w.put_u64(kDatasetMagic);
    w.put_u32(kDatasetFormatVersion);
    w.put_u32(1);
    w.put_u32(5);
    const std::string name = "x";
    w.put_u32(static_cast<std::uint32_t>(name.size()));
    w.put_bytes(name.data(), name.size());
    w.put_u64(dataset_schema_hash({name}, 5));
    w.put_u64(1);
    w.put_i64(42);
    w.put_i32(7);
    w.put_trailer_checksum();
    w.finish();
  }
  BatchStream stream(path("badlab.bin"));
  Dataset out;
  EXPECT_THROW(stream.next_batch(10, out), ContractViolation);
}

TEST_F(BinaryIoTest, TrailingGarbageAfterChecksumIsRejected) {
  write_binary_dataset(make_dataset(2, 2, 5, 15), path("tail.bin"));
  write_file(path("tail_bad.bin"), read_file(path("tail.bin")) + std::string("zz"));
  EXPECT_THROW(BatchStream stream(path("tail_bad.bin")), ContractViolation);
}

TEST_F(BinaryIoTest, MissingFileThrows) {
  EXPECT_THROW(BatchStream stream(path("does_not_exist.bin")), std::runtime_error);
}

}  // namespace
}  // namespace airch
