// Lint fixture, never compiled: a deliberately planted raw std::mutex and
// manual lock()/unlock() pair. The `lint_airch_fixture` CTest case runs
// `lint_airch --rules=raw-mutex,raw-lock --machine tests/lint_fixtures`
// and asserts both rules fire on this file with `file:line:col:rule` output.
// It lives under tests/lint_fixtures/src/ so the fixture run (rooted here)
// sees it as library code while the real repo-root run sees it under
// tests/ and correctly leaves it alone.
#include <mutex>

namespace fixture {

std::mutex g_planted_mutex;
int g_counter = 0;

int bump_with_manual_locking() {
  g_planted_mutex.lock();
  const int out = ++g_counter;
  g_planted_mutex.unlock();
  return out;
}

}  // namespace fixture
