#pragma once
// A legitimate `high`-layer header; the downward include from here into
// `low` is declared in the fixture manifest and must NOT be flagged.
#include "low/ok.hpp"

inline int fixture_h() { return fixture_ok(); }
