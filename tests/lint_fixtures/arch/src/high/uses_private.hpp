#pragma once
// Planted private-header violation: priv.hpp is manifest-private to `low`,
// so this cross-layer include must trip the `private-header` rule (the
// low -> high direction itself is legal).
#include "low/priv.hpp"

inline int fixture_uses_private() { return fixture_priv(); }
