#pragma once
// Planted include cycle, half 2 (see a.hpp).
#include "low/a.hpp"

inline int fixture_b() { return 41; }
