#pragma once
// Planted include cycle, half 1: a.hpp -> b.hpp -> a.hpp. The arch_check
// `cycle` rule (SCC detection) must report this component.
#include "low/b.hpp"

inline int fixture_a() { return fixture_b() + 1; }
