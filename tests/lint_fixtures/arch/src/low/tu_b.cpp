// The swallowed half of the planted .cpp-to-.cpp include (see tu_a.cpp).
int fixture_tu_b() { return 2; }
