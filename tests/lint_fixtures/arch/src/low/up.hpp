#pragma once
// Planted upward include: `low` declares no dep on `high`, so this edge
// points up the DAG and the arch_check `layer` rule must flag it.
#include "high/h.hpp"

inline int fixture_up() { return fixture_h(); }
