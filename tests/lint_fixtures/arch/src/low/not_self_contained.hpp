#pragma once
// Planted self-containment violation: uses std::string without including
// <string>, so compiling this header as its own translation unit must
// fail — the WILL_FAIL fixture test for the self_contained suite.

inline std::string fixture_needs_string() { return "not self-contained"; }
