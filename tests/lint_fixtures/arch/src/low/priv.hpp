#pragma once
// Declared `private` to layer `low` in the fixture manifest: only files
// under src/low/ may include it.

inline int fixture_priv() { return 13; }
