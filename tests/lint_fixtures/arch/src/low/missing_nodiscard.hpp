#pragma once
// Planted result-contract violation: a *Result-returning function without
// [[nodiscard]] must trip the arch_check `nodiscard` rule.

struct ProbeResult {
  int value = 0;
};

ProbeResult probe_without_nodiscard();

// The annotated form must NOT be flagged — it pins that the detector keys
// on the attribute, not merely on the return type.
[[nodiscard]] ProbeResult probe_with_nodiscard();
