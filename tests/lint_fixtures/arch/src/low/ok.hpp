#pragma once
// Clean low-layer header: no finding should ever name this file.

inline int fixture_ok() { return 7; }
