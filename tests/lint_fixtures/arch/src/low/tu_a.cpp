// Planted .cpp-to-.cpp include: a translation unit swallowing another must
// trip the arch_check `cpp-include` rule.
#include "low/tu_b.cpp"

int fixture_tu_a() { return fixture_tu_b() + 1; }
