#include "dataset/dataset.hpp"

#include <gtest/gtest.h>

#include <cstdio>

#include "common/csv.hpp"

namespace airch {
namespace {

Dataset tiny_dataset(int n = 10) {
  Dataset ds({"a", "b"}, 4);
  for (int i = 0; i < n; ++i) {
    ds.add({{i, i * 2}, static_cast<std::int32_t>(i % 4)});
  }
  return ds;
}

TEST(Dataset, AddAndAccess) {
  const Dataset ds = tiny_dataset();
  EXPECT_EQ(ds.size(), 10u);
  EXPECT_EQ(ds.num_features(), 2);
  EXPECT_EQ(ds.num_classes(), 4);
  EXPECT_EQ(ds[3].features[1], 6);
  EXPECT_EQ(ds[3].label, 3);
}

TEST(Dataset, RejectsBadPoints) {
  Dataset ds({"a", "b"}, 4);
  EXPECT_THROW(ds.add({{1}, 0}), std::invalid_argument);          // arity
  EXPECT_THROW(ds.add({{1, 2}, 4}), std::invalid_argument);       // label high
  EXPECT_THROW(ds.add({{1, 2}, -1}), std::invalid_argument);      // label low
}

TEST(Dataset, SplitSizes) {
  const Dataset ds = tiny_dataset(100);
  auto [head, tail] = ds.split(0.8);
  EXPECT_EQ(head.size(), 80u);
  EXPECT_EQ(tail.size(), 20u);
  EXPECT_EQ(head.num_classes(), 4);
  EXPECT_EQ(tail.feature_names(), ds.feature_names());
}

TEST(Dataset, Split3Paper801010) {
  const Dataset ds = tiny_dataset(1000);
  const auto splits = ds.split3(0.8, 0.1);
  EXPECT_EQ(splits.train.size(), 800u);
  EXPECT_EQ(splits.val.size(), 100u);
  EXPECT_EQ(splits.test.size(), 100u);
}

TEST(Dataset, Split3Exhaustive) {
  const Dataset ds = tiny_dataset(10);
  const auto splits = ds.split3(0.5, 0.2);
  EXPECT_EQ(splits.train.size() + splits.val.size() + splits.test.size(), ds.size());
}

TEST(Dataset, SplitEdgeCases) {
  const Dataset ds = tiny_dataset(10);
  auto [all, none] = ds.split(1.0);
  EXPECT_EQ(all.size(), 10u);
  EXPECT_EQ(none.size(), 0u);
  EXPECT_THROW(ds.split(1.5), std::invalid_argument);
  EXPECT_THROW(ds.split3(0.9, 0.2), std::invalid_argument);
}

TEST(Dataset, ShufflePreservesPoints) {
  Dataset ds = tiny_dataset(50);
  Rng rng(3);
  auto before = ds.label_histogram();
  ds.shuffle(rng);
  EXPECT_EQ(ds.label_histogram(), before);
  EXPECT_EQ(ds.size(), 50u);
}

TEST(Dataset, LabelHistogram) {
  const Dataset ds = tiny_dataset(10);
  const auto h = ds.label_histogram();
  ASSERT_EQ(h.size(), 4u);
  EXPECT_EQ(h[0], 3);  // labels 0,4,8
  EXPECT_EQ(h[1], 3);
  EXPECT_EQ(h[2], 2);
  EXPECT_EQ(h[3], 2);
}

class DatasetCsv : public ::testing::Test {
 protected:
  void SetUp() override { path_ = ::testing::TempDir() + "ds_test.csv"; }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

TEST_F(DatasetCsv, RoundTrip) {
  const Dataset ds = tiny_dataset(25);
  ds.save_csv(path_);
  const Dataset loaded = Dataset::load_csv(path_, 4);
  ASSERT_EQ(loaded.size(), ds.size());
  EXPECT_EQ(loaded.feature_names(), ds.feature_names());
  for (std::size_t i = 0; i < ds.size(); ++i) {
    EXPECT_EQ(loaded[i].features, ds[i].features);
    EXPECT_EQ(loaded[i].label, ds[i].label);
  }
}

TEST_F(DatasetCsv, MissingLabelColumnRejected) {
  {
    CsvWriter w(path_);
    w.write_header({"a", "b"});
  }
  EXPECT_THROW(Dataset::load_csv(path_, 4), std::runtime_error);
}

}  // namespace
}  // namespace airch
