// End-to-end workflow integration tests: the full offline->online loop a
// user of the library walks through (generate -> persist -> train -> save
// -> load -> query -> score against search), plus a randomized
// cross-validation of the two simulator modes.

#include <gtest/gtest.h>

#include <cstdio>
#include <numeric>

#include "common/math_utils.hpp"
#include "core/pipeline.hpp"
#include "core/recommender.hpp"
#include "sim/trace_sim.hpp"
#include "workload/sampler.hpp"

namespace airch {
namespace {

class WorkflowTest : public ::testing::Test {
 protected:
  void SetUp() override {
    csv_path_ = ::testing::TempDir() + "workflow_ds.csv";
    model_path_ = ::testing::TempDir() + "workflow_model.airch";
  }
  void TearDown() override {
    std::remove(csv_path_.c_str());
    std::remove(model_path_.c_str());
  }
  std::string csv_path_;
  std::string model_path_;
};

TEST_F(WorkflowTest, FullOfflineOnlineLoop) {
  // 1. Generate a search-labelled dataset and persist it.
  ArrayDataflowStudy study(Case1Config{5, 10, {}}, 10);
  const Dataset generated = study.generate(8000, 99);
  generated.save_csv(csv_path_);

  // 2. Reload it (as the tools do) and verify integrity.
  Dataset data = Dataset::load_csv(csv_path_, study.num_classes());
  ASSERT_EQ(data.size(), generated.size());

  // 3. Train via the experiment pipeline.
  auto clf = make_airchitect(7, 8);
  const ExperimentResult result = run_experiment(study, *clf, data, {});
  EXPECT_GT(result.test_accuracy, 0.10);  // well above ~1/135 chance
  // At this tiny training scale mispredictions are common but should still
  // land on usable designs (paper-scale training pushes this to ~99%).
  EXPECT_GT(result.geomean_perf, 0.55);

  // 4. Wrap + save + reload the recommender.
  Dataset shuffled = data;
  Rng rng(5);
  shuffled.shuffle(rng);
  auto [train, val] = shuffled.split(0.9);
  auto encoder = std::make_unique<FeatureEncoder>(train);
  auto model = make_airchitect(7, 8);
  model->fit(train, val, *encoder);
  Recommender rec(study, std::move(model), std::move(encoder));
  rec.save(model_path_);
  const Recommender loaded = Recommender::load(model_path_, study);

  // 5. Query the loaded model and score against exhaustive search.
  ArrayDataflowSearch search(study.space(), study.simulator());
  Rng qrng(17);
  LogUniformGemmSampler sampler;
  std::vector<double> achieved;
  for (int q = 0; q < 50; ++q) {
    const GemmWorkload w = sampler.sample(qrng);
    const int budget = static_cast<int>(qrng.uniform_int(5, 10));
    const ArrayConfig pred = loaded.recommend_array(w, budget);
    const auto best = search.best(w, budget);
    Cycles cycles = study.simulator().compute_cycles(w, pred);
    const MacCount budget_macs{pow2(budget)};
    if (pred.macs() > budget_macs) cycles *= ceil_div(pred.macs(), budget_macs);
    achieved.push_back(std::min(1.0, best.cycles / cycles));
  }
  EXPECT_GT(geomean(achieved), 0.5);
}

TEST(SimulatorCrossValidation, TraceMatchesAnalyticalOnRandomShapes) {
  // Fuzz the two simulator modes against each other: random workloads and
  // arrays; outputs always correct; cycles exact on multiples, bounded on
  // ragged shapes.
  Rng rng(123);
  const TraceSimulator trace;
  for (int trial = 0; trial < 40; ++trial) {
    const std::int64_t rows = pow2(static_cast<int>(rng.uniform_int(1, 4)));
    const std::int64_t cols = pow2(static_cast<int>(rng.uniform_int(1, 4)));
    const bool exact_fit = trial % 2 == 0;
    // Exact fit for every dataflow needs M a multiple of both rows (OS)
    // and cols (IS), N of cols (OS/WS), K of rows (WS/IS).
    const std::int64_t m_quantum = std::lcm(rows, cols);
    const std::int64_t m = exact_fit ? m_quantum * rng.uniform_int(1, 3) : rng.uniform_int(1, 40);
    const std::int64_t n = exact_fit ? cols * rng.uniform_int(1, 4) : rng.uniform_int(1, 40);
    const std::int64_t k = exact_fit ? rows * rng.uniform_int(1, 4) : rng.uniform_int(1, 40);

    GemmMatrix a(m, k), b(k, n);
    for (auto& v : a.data) v = static_cast<std::int32_t>(rng.uniform_int(-5, 5));
    for (auto& v : b.data) v = static_cast<std::int32_t>(rng.uniform_int(-5, 5));
    const GemmMatrix expected = reference_gemm(a, b);

    for (Dataflow d : kAllDataflows) {
      const ArrayConfig array{rows, cols, d};
      const TraceResult tr = trace.run(a, b, array);
      const GemmWorkload wl{m, n, k};
      const std::string context = array.to_string() + " " + wl.to_string();
      SCOPED_TRACE(context);
      // Functional equivalence, always.
      for (std::int64_t i = 0; i < m; ++i) {
        for (std::int64_t j = 0; j < n; ++j) {
          ASSERT_EQ(tr.output.at(i, j), expected.at(i, j));
        }
      }
      ASSERT_EQ(tr.macs, MacCount{m * n * k});
      // Latency agreement.
      const ComputeResult an = compute_latency({m, n, k}, array);
      if (exact_fit) {
        // WS/IS partial-K preload uses rk <= rows; exact only when K is a
        // multiple of rows too (it is, by construction).
        EXPECT_EQ(tr.cycles, an.cycles);
      } else {
        EXPECT_LE(tr.cycles, an.cycles);
      }
    }
  }
}

TEST(SimulatorCrossValidation, SearchOptimaRankConsistently) {
  // The analytical model drives the search; verify on small workloads that
  // the trace simulator agrees the chosen config is no slower than a
  // handful of random alternatives (rank preservation, not just cycles).
  Rng rng(321);
  const Simulator sim;
  const ArrayDataflowSpace space(8);
  const ArrayDataflowSearch search(space, sim);
  const TraceSimulator trace;
  for (int trial = 0; trial < 10; ++trial) {
    const std::int64_t m = rng.uniform_int(4, 64);
    const std::int64_t n = rng.uniform_int(4, 64);
    const std::int64_t k = rng.uniform_int(4, 64);
    GemmMatrix a(m, k), b(k, n);
    for (auto& v : a.data) v = 1;
    for (auto& v : b.data) v = 1;

    const auto best = search.best({m, n, k}, 8);
    const auto best_trace = trace.run(a, b, space.config(best.label)).cycles;
    for (int alt = 0; alt < 8; ++alt) {
      const int label = static_cast<int>(rng.uniform_int(0, space.size() - 1));
      const auto alt_trace = trace.run(a, b, space.config(label)).cycles;
      // Allow a fold-rounding margin: the analytical model charges full
      // per-fold latency for ragged folds, the trace does not.
      EXPECT_LE(best_trace / alt_trace, 1.35) << GemmWorkload{m, n, k}.to_string();
    }
  }
}

}  // namespace
}  // namespace airch
