// Every classifier in the Fig. 9 zoo must learn a simple synthetic design
// rule far better than chance. The dataset mimics the structure of the
// real case studies: integer features, label a deterministic function.

#include <gtest/gtest.h>

#include "models/gbt.hpp"
#include "models/neural.hpp"
#include "models/svc.hpp"

namespace airch {
namespace {

/// 4 integer features; label = 2*(f0 > 32) + (f2 > 128): four classes
/// depending on thresholds — linearly separable in log space.
Dataset synthetic_dataset(std::size_t n, std::uint64_t seed) {
  Dataset ds({"f0", "f1", "f2", "f3"}, 4);
  Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    const std::int64_t f0 = rng.log_uniform_int(1, 1024);
    const std::int64_t f1 = rng.log_uniform_int(1, 1024);
    const std::int64_t f2 = rng.log_uniform_int(1, 1024);
    const std::int64_t f3 = rng.log_uniform_int(1, 1024);
    const std::int32_t label =
        static_cast<std::int32_t>(2 * (f0 > 32 ? 1 : 0) + (f2 > 128 ? 1 : 0));
    ds.add({{f0, f1, f2, f3}, label});
  }
  return ds;
}

class ModelZooTest : public ::testing::Test {
 protected:
  ModelZooTest()
      : train_(synthetic_dataset(4000, 1)),
        val_(synthetic_dataset(500, 2)),
        test_(synthetic_dataset(500, 3)),
        enc_(train_) {}

  double fit_and_score(Classifier& clf) {
    clf.fit(train_, val_, enc_);
    return clf.accuracy(test_, enc_);
  }

  Dataset train_, val_, test_;
  FeatureEncoder enc_;
};

TEST_F(ModelZooTest, AirchitectLearnsRule) {
  auto clf = make_airchitect(1, 10);
  EXPECT_GT(fit_and_score(*clf), 0.9);
}

TEST_F(ModelZooTest, MlpALearnsRule) {
  auto clf = make_mlp_a(1);
  EXPECT_GT(fit_and_score(*clf), 0.9);
}

TEST_F(ModelZooTest, MlpBLearnsRule) {
  auto clf = make_mlp_b(1);
  EXPECT_GT(fit_and_score(*clf), 0.9);
}

TEST_F(ModelZooTest, MlpCLearnsRule) {
  auto clf = make_mlp_c(1);
  EXPECT_GT(fit_and_score(*clf), 0.9);
}

TEST_F(ModelZooTest, MlpDLearnsRule) {
  auto clf = make_mlp_d(1);
  EXPECT_GT(fit_and_score(*clf), 0.9);
}

TEST_F(ModelZooTest, LinearSvcLearnsRule) {
  auto clf = make_svc_linear(1);
  // Linear SVC on a modest subgradient budget: well above the 0.25 chance
  // floor, below the kernel/NN models.
  EXPECT_GT(fit_and_score(*clf), 0.75);
}

TEST_F(ModelZooTest, RbfSvcLearnsRule) {
  auto clf = make_svc_rbf(1);
  EXPECT_GT(fit_and_score(*clf), 0.85);
}

TEST_F(ModelZooTest, GbtLearnsRule) {
  auto clf = make_xgboost_like(1);
  // Threshold rules are trees' native language; expect near-perfect.
  EXPECT_GT(fit_and_score(*clf), 0.95);
}

TEST_F(ModelZooTest, HistoryHasExpectedLength) {
  auto mlp = make_mlp_a(1);
  const auto history = mlp->fit(train_, val_, enc_);
  EXPECT_EQ(history.size(), static_cast<std::size_t>(mlp->options().epochs));
  // Validation accuracy should improve from first to last epoch.
  EXPECT_GE(history.back().val_accuracy, history.front().val_accuracy - 0.05);
}

TEST_F(ModelZooTest, PredictBeforeFitThrows) {
  NeuralClassifier::Options o;
  NeuralClassifier clf("unfitted", o);
  EXPECT_THROW(clf.predict(test_, enc_), std::logic_error);

  SvcClassifier svc("unfitted", SvcClassifier::Options{});
  EXPECT_THROW(svc.predict(test_, enc_), std::logic_error);

  GbtClassifier gbt("unfitted", GbtClassifier::Options{});
  EXPECT_THROW(gbt.predict(test_, enc_), std::logic_error);
}

TEST_F(ModelZooTest, PredictProbaSumsToOne) {
  auto clf = make_airchitect(1, 3);
  clf->fit(train_, val_, enc_);
  const auto proba = clf->predict_proba(test_[0].features, enc_);
  ASSERT_EQ(proba.size(), 4u);
  float sum = 0.0f;
  for (float p : proba) {
    EXPECT_GE(p, 0.0f);
    sum += p;
  }
  EXPECT_NEAR(sum, 1.0f, 1e-4f);
}

TEST_F(ModelZooTest, NamesMatchPaperTable) {
  EXPECT_EQ(make_mlp_a()->name(), "MLP-A");
  EXPECT_EQ(make_mlp_d()->name(), "MLP-D");
  EXPECT_EQ(make_svc_linear()->name(), "SVC-Linear");
  EXPECT_EQ(make_svc_rbf()->name(), "SVC-RBF");
  EXPECT_EQ(make_xgboost_like()->name(), "XGBoost");
  EXPECT_EQ(make_airchitect()->name(), "AIrchitect");
}

TEST_F(ModelZooTest, ArchitecturesMatchPaperTable) {
  EXPECT_EQ(make_mlp_a()->options().hidden, (std::vector<std::size_t>{128}));
  EXPECT_EQ(make_mlp_b()->options().hidden, (std::vector<std::size_t>{256}));
  EXPECT_EQ(make_mlp_c()->options().hidden, (std::vector<std::size_t>{128, 128}));
  EXPECT_EQ(make_mlp_d()->options().hidden, (std::vector<std::size_t>{256, 256}));
  EXPECT_EQ(make_airchitect()->options().embed_dim, 16u);
  EXPECT_EQ(make_airchitect()->options().hidden, (std::vector<std::size_t>{256}));
}

TEST(GbtOptions, SubsampleCapRespected) {
  GbtClassifier::Options o;
  o.rounds = 2;
  o.max_train_points = 100;
  GbtClassifier clf("gbt", o);
  const Dataset train = synthetic_dataset(1000, 4);
  const Dataset val = synthetic_dataset(100, 5);
  const FeatureEncoder enc(train);
  const auto hist = clf.fit(train, val, enc);
  EXPECT_EQ(hist.size(), 2u);
  // Still learns something better than the 4-class chance floor.
  EXPECT_GT(clf.accuracy(val, enc), 0.4);
}

}  // namespace
}  // namespace airch
