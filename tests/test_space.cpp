#include "search/space.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/math_utils.hpp"

namespace airch {
namespace {

// ------------------------------------------------------------- case 1

TEST(ArrayDataflowSpace, PaperSizeIs459) {
  // 2^18 MAC limit, min dim 2: 153 shapes x 3 dataflows (paper Fig. 8(b)).
  const ArrayDataflowSpace space(18);
  EXPECT_EQ(space.size(), 459);
}

TEST(ArrayDataflowSpace, LabelConfigRoundTrip) {
  const ArrayDataflowSpace space(18);
  for (int label = 0; label < space.size(); ++label) {
    EXPECT_EQ(space.label_of(space.config(label)), label);
  }
}

TEST(ArrayDataflowSpace, AllConfigsUniqueAndWithinBudget) {
  const ArrayDataflowSpace space(18);
  std::set<std::string> seen;
  for (int label = 0; label < space.size(); ++label) {
    const ArrayConfig& c = space.config(label);
    EXPECT_TRUE(is_pow2(c.rows));
    EXPECT_TRUE(is_pow2(c.cols));
    EXPECT_GE(c.rows, 2);
    EXPECT_GE(c.cols, 2);
    EXPECT_LE(c.macs(), MacCount{pow2(18)});
    EXPECT_TRUE(seen.insert(c.to_string()).second) << c.to_string();
  }
}

TEST(ArrayDataflowSpace, DataflowFastestVarying) {
  const ArrayDataflowSpace space(18);
  EXPECT_EQ(space.config(0).dataflow, Dataflow::kOutputStationary);
  EXPECT_EQ(space.config(1).dataflow, Dataflow::kWeightStationary);
  EXPECT_EQ(space.config(2).dataflow, Dataflow::kInputStationary);
  // Same shape for the first three labels.
  EXPECT_EQ(space.config(0).rows, space.config(2).rows);
  EXPECT_EQ(space.config(0).cols, space.config(2).cols);
}

TEST(ArrayDataflowSpace, BudgetFilter) {
  const ArrayDataflowSpace space(18);
  const auto labels = space.labels_within_budget(6);
  for (int l : labels) {
    EXPECT_LE(space.config(l).macs(), MacCount{pow2(6)});
  }
  // Shapes with 2^a x 2^b, a,b>=1, a+b<=6: (a,b) pairs = 1+2+3+4+5 = 15...
  // enumerated: a+b in [2,6]: for s=2..6 -> s-1 pairs -> 1+2+3+4+5 = 15 shapes.
  EXPECT_EQ(labels.size(), 15u * 3u);
}

TEST(ArrayDataflowSpace, OutOfRangeThrows) {
  const ArrayDataflowSpace space(18);
  EXPECT_THROW(space.config(-1), std::out_of_range);
  EXPECT_THROW(space.config(459), std::out_of_range);
  EXPECT_THROW(space.label_of({3, 4, Dataflow::kOutputStationary}), std::out_of_range);
  EXPECT_THROW(space.label_of({1, 4, Dataflow::kOutputStationary}), std::out_of_range);
  EXPECT_THROW(space.label_of({pow2(10), pow2(10), Dataflow::kOutputStationary}),
               std::out_of_range);
}

TEST(ArrayDataflowSpace, SmallerSpaceParameterization) {
  const ArrayDataflowSpace space(10);
  // a,b >= 1, a+b <= 10: sum_{s=2}^{10}(s-1) = 45 shapes.
  EXPECT_EQ(space.size(), 45 * 3);
}

// ------------------------------------------------------------- case 2

TEST(BufferSizeSpace, PaperSizeIs1000) {
  const BufferSizeSpace space;
  EXPECT_EQ(space.size(), 1000);
  EXPECT_EQ(space.levels(), 10);
}

TEST(BufferSizeSpace, PaperTableOrdering) {
  // Fig. 8(c): id 0 = (100,100,100); id 1 = (100,100,200); id 999 = (1000,1000,1000).
  const BufferSizeSpace space;
  const MemoryConfig c0 = space.config(0);
  EXPECT_EQ(c0.ifmap_kb, 100);
  EXPECT_EQ(c0.filter_kb, 100);
  EXPECT_EQ(c0.ofmap_kb, 100);
  const MemoryConfig c1 = space.config(1);
  EXPECT_EQ(c1.ofmap_kb, 200);
  EXPECT_EQ(c1.ifmap_kb, 100);
  const MemoryConfig c999 = space.config(999);
  EXPECT_EQ(c999.ifmap_kb, 1000);
  EXPECT_EQ(c999.filter_kb, 1000);
  EXPECT_EQ(c999.ofmap_kb, 1000);
}

TEST(BufferSizeSpace, RoundTrip) {
  const BufferSizeSpace space;
  for (int label = 0; label < space.size(); ++label) {
    EXPECT_EQ(space.label_of(space.config(label)), label);
  }
}

TEST(BufferSizeSpace, LimitFilter) {
  const BufferSizeSpace space;
  const auto labels = space.labels_within_limit(300);
  EXPECT_EQ(labels.size(), 27u);  // 3^3
  for (int l : labels) {
    const MemoryConfig m = space.config(l);
    EXPECT_LE(m.ifmap_kb, 300);
    EXPECT_LE(m.filter_kb, 300);
    EXPECT_LE(m.ofmap_kb, 300);
  }
}

TEST(BufferSizeSpace, TotalCapacityFilter) {
  const BufferSizeSpace space;
  // total <= 400 KB: (100,100,100) plus three (200,100,100) permutations.
  const auto labels = space.labels_within_total(400);
  EXPECT_EQ(labels.size(), 4u);
  for (int l : labels) {
    EXPECT_LE(space.config(l).total_kb(), 400);
  }
  // The full space fits in 3000 KB.
  EXPECT_EQ(space.labels_within_total(3000).size(), 1000u);
}

TEST(BufferSizeSpace, InvalidLabelsThrow) {
  const BufferSizeSpace space;
  EXPECT_THROW(space.config(-1), std::out_of_range);
  EXPECT_THROW(space.config(1000), std::out_of_range);
  EXPECT_THROW(space.label_of(MemoryConfig{150, 100, 100, 1}), std::out_of_range);
  EXPECT_THROW(space.label_of(MemoryConfig{1100, 100, 100, 1}), std::out_of_range);
}

TEST(BufferSizeSpace, CustomQuantization) {
  const BufferSizeSpace space(50, 200);  // 4 levels
  EXPECT_EQ(space.size(), 64);
  EXPECT_EQ(space.config(0).ofmap_kb, 50);
  EXPECT_EQ(space.config(63).ifmap_kb, 200);
}

// ------------------------------------------------------------- case 3

TEST(ScheduleSpace, PaperSizeIs1944) {
  const ScheduleSpace space(4);
  EXPECT_EQ(space.size(), 1944);  // 3^4 * 4!
}

TEST(ScheduleSpace, GrowthFormula) {
  // Fig. 7(b): N = 3^x * x!.
  EXPECT_EQ(ScheduleSpace::space_size(1), 3);
  EXPECT_EQ(ScheduleSpace::space_size(2), 18);
  EXPECT_EQ(ScheduleSpace::space_size(3), 162);  // the paper's 3-array example
  EXPECT_EQ(ScheduleSpace::space_size(4), 1944);
  EXPECT_EQ(ScheduleSpace::space_size(5), 29160);
}

TEST(ScheduleSpace, PaperTableOrdering) {
  // Fig. 8(d): id 0 = identity assignment, all OS; id 1 flips the last
  // array's dataflow to WS; id 2 to IS; id 3 moves to array 2.
  const ScheduleSpace space(4);
  const auto s0 = space.config(0);
  EXPECT_EQ(s0.workload_of, (std::vector<int>{0, 1, 2, 3}));
  for (auto d : s0.dataflow_of) EXPECT_EQ(d, Dataflow::kOutputStationary);
  const auto s1 = space.config(1);
  EXPECT_EQ(s1.dataflow_of[3], Dataflow::kWeightStationary);
  EXPECT_EQ(s1.dataflow_of[2], Dataflow::kOutputStationary);
  const auto s2 = space.config(2);
  EXPECT_EQ(s2.dataflow_of[3], Dataflow::kInputStationary);
  const auto s3 = space.config(3);
  EXPECT_EQ(s3.dataflow_of[2], Dataflow::kWeightStationary);
  EXPECT_EQ(s3.dataflow_of[3], Dataflow::kOutputStationary);
}

TEST(ScheduleSpace, RoundTrip) {
  const ScheduleSpace space(4);
  for (int label = 0; label < space.size(); ++label) {
    EXPECT_EQ(space.label_of(space.config(label)), label);
  }
}

TEST(ScheduleSpace, EveryScheduleIsPermutation) {
  const ScheduleSpace space(3);
  for (int label = 0; label < space.size(); ++label) {
    auto s = space.config(label);
    std::set<int> seen(s.workload_of.begin(), s.workload_of.end());
    EXPECT_EQ(seen.size(), 3u);
    EXPECT_EQ(*seen.begin(), 0);
    EXPECT_EQ(*seen.rbegin(), 2);
  }
}

TEST(ScheduleSpace, InvalidInputsThrow) {
  const ScheduleSpace space(3);
  EXPECT_THROW(space.config(-1), std::out_of_range);
  EXPECT_THROW(space.config(space.size()), std::out_of_range);
  ScheduleSpace::Schedule bad;
  bad.workload_of = {0, 0, 1};  // not a permutation
  bad.dataflow_of = {Dataflow::kOutputStationary, Dataflow::kOutputStationary,
                     Dataflow::kOutputStationary};
  EXPECT_THROW(space.label_of(bad), std::out_of_range);
}

}  // namespace
}  // namespace airch
