#include "common/cli.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace airch {
namespace {

ArgParser make_parser() {
  ArgParser p("prog", "test parser");
  p.flag_i64("count", 10, "a count")
      .flag_f64("rate", 0.5, "a rate")
      .flag_str("name", "default", "a name")
      .flag_bool("verbose", false, "a switch");
  return p;
}

TEST(Cli, DefaultsWithoutArgs) {
  auto p = make_parser();
  const char* argv[] = {"prog"};
  p.parse(1, argv);
  EXPECT_EQ(p.i64("count"), 10);
  EXPECT_DOUBLE_EQ(p.f64("rate"), 0.5);
  EXPECT_EQ(p.str("name"), "default");
  EXPECT_FALSE(p.boolean("verbose"));
}

TEST(Cli, EqualsSyntax) {
  auto p = make_parser();
  const char* argv[] = {"prog", "--count=42", "--rate=1.25", "--name=abc", "--verbose=true"};
  p.parse(5, argv);
  EXPECT_EQ(p.i64("count"), 42);
  EXPECT_DOUBLE_EQ(p.f64("rate"), 1.25);
  EXPECT_EQ(p.str("name"), "abc");
  EXPECT_TRUE(p.boolean("verbose"));
}

TEST(Cli, SpaceSyntax) {
  auto p = make_parser();
  const char* argv[] = {"prog", "--count", "7", "--name", "xyz"};
  p.parse(5, argv);
  EXPECT_EQ(p.i64("count"), 7);
  EXPECT_EQ(p.str("name"), "xyz");
}

TEST(Cli, BareBooleanFlag) {
  auto p = make_parser();
  const char* argv[] = {"prog", "--verbose"};
  p.parse(2, argv);
  EXPECT_TRUE(p.boolean("verbose"));
}

TEST(Cli, UnknownFlagThrows) {
  auto p = make_parser();
  const char* argv[] = {"prog", "--bogus=1"};
  EXPECT_THROW(p.parse(2, argv), std::invalid_argument);
}

TEST(Cli, BadIntegerThrows) {
  auto p = make_parser();
  const char* argv[] = {"prog", "--count=abc"};
  EXPECT_THROW(p.parse(2, argv), std::invalid_argument);
}

TEST(Cli, BadBooleanThrows) {
  auto p = make_parser();
  const char* argv[] = {"prog", "--verbose=maybe"};
  EXPECT_THROW(p.parse(2, argv), std::invalid_argument);
}

TEST(Cli, MissingValueThrows) {
  auto p = make_parser();
  const char* argv[] = {"prog", "--count"};
  EXPECT_THROW(p.parse(2, argv), std::invalid_argument);
}

TEST(Cli, PositionalArgThrows) {
  auto p = make_parser();
  const char* argv[] = {"prog", "stray"};
  EXPECT_THROW(p.parse(2, argv), std::invalid_argument);
}

TEST(Cli, UnregisteredLookupThrows) {
  auto p = make_parser();
  const char* argv[] = {"prog"};
  p.parse(1, argv);
  EXPECT_THROW(p.i64("nope"), std::invalid_argument);
  EXPECT_THROW(p.i64("rate"), std::invalid_argument);  // kind mismatch
}

TEST(Cli, UsageListsFlags) {
  auto p = make_parser();
  const auto usage = p.usage();
  EXPECT_NE(usage.find("--count"), std::string::npos);
  EXPECT_NE(usage.find("--verbose"), std::string::npos);
  EXPECT_NE(usage.find("a rate"), std::string::npos);
}

}  // namespace
}  // namespace airch
