#include "common/cli.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <utility>

namespace airch {
namespace {

ArgParser make_parser() {
  ArgParser p("prog", "test parser");
  p.flag_i64("count", 10, "a count")
      .flag_f64("rate", 0.5, "a rate")
      .flag_str("name", "default", "a name")
      .flag_bool("verbose", false, "a switch");
  return p;
}

TEST(Cli, DefaultsWithoutArgs) {
  auto p = make_parser();
  const char* argv[] = {"prog"};
  p.parse(1, argv);
  EXPECT_EQ(p.i64("count"), 10);
  EXPECT_DOUBLE_EQ(p.f64("rate"), 0.5);
  EXPECT_EQ(p.str("name"), "default");
  EXPECT_FALSE(p.boolean("verbose"));
}

TEST(Cli, EqualsSyntax) {
  auto p = make_parser();
  const char* argv[] = {"prog", "--count=42", "--rate=1.25", "--name=abc", "--verbose=true"};
  p.parse(5, argv);
  EXPECT_EQ(p.i64("count"), 42);
  EXPECT_DOUBLE_EQ(p.f64("rate"), 1.25);
  EXPECT_EQ(p.str("name"), "abc");
  EXPECT_TRUE(p.boolean("verbose"));
}

TEST(Cli, SpaceSyntax) {
  auto p = make_parser();
  const char* argv[] = {"prog", "--count", "7", "--name", "xyz"};
  p.parse(5, argv);
  EXPECT_EQ(p.i64("count"), 7);
  EXPECT_EQ(p.str("name"), "xyz");
}

TEST(Cli, BareBooleanFlag) {
  auto p = make_parser();
  const char* argv[] = {"prog", "--verbose"};
  p.parse(2, argv);
  EXPECT_TRUE(p.boolean("verbose"));
}

TEST(Cli, UnknownFlagThrows) {
  auto p = make_parser();
  const char* argv[] = {"prog", "--bogus=1"};
  EXPECT_THROW(p.parse(2, argv), std::invalid_argument);
}

TEST(Cli, BadIntegerThrows) {
  auto p = make_parser();
  const char* argv[] = {"prog", "--count=abc"};
  EXPECT_THROW(p.parse(2, argv), std::invalid_argument);
}

TEST(Cli, BadBooleanThrows) {
  auto p = make_parser();
  const char* argv[] = {"prog", "--verbose=maybe"};
  EXPECT_THROW(p.parse(2, argv), std::invalid_argument);
}

TEST(Cli, MissingValueThrows) {
  auto p = make_parser();
  const char* argv[] = {"prog", "--count"};
  EXPECT_THROW(p.parse(2, argv), std::invalid_argument);
}

TEST(Cli, PositionalArgThrows) {
  auto p = make_parser();
  const char* argv[] = {"prog", "stray"};
  EXPECT_THROW(p.parse(2, argv), std::invalid_argument);
}

TEST(Cli, DuplicateFlagThrows) {
  auto p = make_parser();
  const char* argv[] = {"prog", "--count=1", "--count=2"};
  EXPECT_THROW(p.parse(3, argv), std::invalid_argument);
}

TEST(Cli, DuplicateFlagThrowsAcrossSyntaxes) {
  // The same flag via `--name value` then `--name=value` is still a dup.
  auto p = make_parser();
  const char* argv[] = {"prog", "--count", "1", "--count=2"};
  EXPECT_THROW(p.parse(4, argv), std::invalid_argument);
}

TEST(Cli, RangeAcceptsEndpoints) {
  ArgParser p("prog", "bounded");
  p.flag_i64("points", 10, "bounded count", 1, 100);
  {
    const char* argv[] = {"prog", "--points=1"};
    p.parse(2, argv);
    EXPECT_EQ(p.i64("points"), 1);
  }
  ArgParser q("prog", "bounded");
  q.flag_i64("points", 10, "bounded count", 1, 100);
  {
    const char* argv[] = {"prog", "--points=100"};
    q.parse(2, argv);
    EXPECT_EQ(q.i64("points"), 100);
  }
}

TEST(Cli, RangeRejectsOutOfRange) {
  // The `--points < 1` class: zero, negative, and above-max all fail in
  // parse() rather than surfacing later as a mid-run assertion.
  for (const char* bad : {"--points=0", "--points=-5", "--points=101"}) {
    ArgParser p("prog", "bounded");
    p.flag_i64("points", 10, "bounded count", 1, 100);
    const char* argv[] = {"prog", bad};
    EXPECT_THROW(p.parse(2, argv), std::invalid_argument) << bad;
  }
}

TEST(Cli, RangeRejectsBadRegistration) {
  ArgParser p("prog", "bounded");
  // Default outside the declared range is a programming error.
  EXPECT_THROW(p.flag_i64("points", 0, "bad default", 1, 100), std::invalid_argument);
  // min > max is an empty range.
  EXPECT_THROW(p.flag_i64("other", 5, "empty range", 10, 1), std::invalid_argument);
}

TEST(Cli, UsageShowsRange) {
  ArgParser p("prog", "bounded");
  p.flag_i64("points", 10, "bounded count", 1, 100);
  EXPECT_NE(p.usage().find("range: 1..100"), std::string::npos);
}

TEST(Cli, UnregisteredLookupThrows) {
  auto p = make_parser();
  const char* argv[] = {"prog"};
  p.parse(1, argv);
  EXPECT_THROW(p.i64("nope"), std::invalid_argument);
  EXPECT_THROW(p.i64("rate"), std::invalid_argument);  // kind mismatch
}

TEST(Cli, GenerateDatasetStyleRangesAcceptEndpoints) {
  // Mirrors generate_dataset's --threads (0..1024, 0 = auto) and --shards
  // (1..256) registrations: the endpoints must parse.
  for (const char* ok : {"--threads=0", "--threads=1024", "--shards=1", "--shards=256"}) {
    ArgParser p("generate_dataset", "ranges");
    p.flag_i64("threads", 0, "workers (0 = hardware default)", 0, 1024);
    p.flag_i64("shards", 1, "contiguous shards", 1, 256);
    const char* argv[] = {"generate_dataset", ok};
    p.parse(2, argv);
  }
}

TEST(Cli, GenerateDatasetStyleRangesRejectOutOfRange) {
  for (const char* bad :
       {"--threads=-1", "--threads=1025", "--shards=0", "--shards=-3", "--shards=257"}) {
    ArgParser p("generate_dataset", "ranges");
    p.flag_i64("threads", 0, "workers (0 = hardware default)", 0, 1024);
    p.flag_i64("shards", 1, "contiguous shards", 1, 256);
    const char* argv[] = {"generate_dataset", bad};
    EXPECT_THROW(p.parse(2, argv), std::invalid_argument) << bad;
  }
}

TEST(Cli, GenerateDatasetStyleDuplicateFlagsRejected) {
  const std::pair<const char*, const char*> dups[] = {
      {"--threads=2", "--threads=4"},
      {"--shards=2", "--shards=2"},
      {"--snapshot=a.snap", "--snapshot=b.snap"},
  };
  for (const auto& dup : dups) {
    ArgParser p("generate_dataset", "dups");
    p.flag_i64("threads", 0, "workers", 0, 1024);
    p.flag_i64("shards", 1, "shards", 1, 256);
    p.flag_str("snapshot", "", "cache snapshot path");
    const char* argv[] = {"generate_dataset", dup.first, dup.second};
    EXPECT_THROW(p.parse(3, argv), std::invalid_argument) << dup.first;
  }
}

TEST(Cli, QueryRecommenderTopkRangeAcceptsEndpoints) {
  // Mirrors query_recommender's --topk registration: bounded to the
  // largest output space (case 3, 1944 labels) so a nonsense k dies in
  // parse() instead of deep inside recommend_topk.
  for (const char* ok : {"--topk=1", "--topk=1944"}) {
    ArgParser p("query_recommender", "topk range");
    p.flag_i64("topk", 1, "print the k most likely configurations", 1, 1944);
    const char* argv[] = {"query_recommender", ok};
    p.parse(2, argv);
  }
}

TEST(Cli, QueryRecommenderTopkRangeRejectsOutOfRange) {
  // The old behavior accepted any int64 here and recommend_topk silently
  // clamped k<1 to 1 — both ends must now fail loudly.
  for (const char* bad : {"--topk=0", "--topk=-1", "--topk=1945", "--topk=99999999"}) {
    ArgParser p("query_recommender", "topk range");
    p.flag_i64("topk", 1, "print the k most likely configurations", 1, 1944);
    const char* argv[] = {"query_recommender", bad};
    EXPECT_THROW(p.parse(2, argv), std::invalid_argument) << bad;
  }
}

TEST(Cli, UsageListsFlags) {
  auto p = make_parser();
  const auto usage = p.usage();
  EXPECT_NE(usage.find("--count"), std::string::npos);
  EXPECT_NE(usage.find("--verbose"), std::string::npos);
  EXPECT_NE(usage.find("a rate"), std::string::npos);
}

}  // namespace
}  // namespace airch
