// The serving layer (src/serve/) and the concurrency contract it rests
// on. Three groups:
//
//   1. Wire protocol: round trips, the flip-every-byte / every-truncation
//      corruption sweeps, and the hard caps.
//   2. The warm-model predict path: recommend_batch == mapped
//      recommend_label (the batched-vs-scalar property), and the
//      8-threads-on-one-model bit-identity test that pins the const
//      inference path as actually shareable (this file carries the tsan
//      label so the claim is checked by the race detector, not just by
//      matching outputs).
//   3. The service end to end over real loopback sockets: replies
//      bit-identical to in-process recommend_batch, error frames for bad
//      requests (connection survives them), admission stats, the
//      connection cap, and stop() idempotence.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <stdexcept>
#include <vector>

#include "common/check.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "core/case_study.hpp"
#include "core/recommender.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "serve/socket.hpp"

namespace airch {
namespace {

using serve::decode_frame;
using serve::encode_error;
using serve::encode_query;
using serve::encode_reply;
using serve::Frame;
using serve::FrameType;
using serve::QueryFrame;
using serve::RecommenderClient;
using serve::RecommenderService;
using serve::ServeOptions;

// ------------------------------------------------------------- protocol

QueryFrame sample_query_frame() {
  QueryFrame q;
  q.case_id = 1;
  q.num_features = 4;
  q.features = {8, 512, 128, 256, 10, 64, 64, 1024};  // two queries
  return q;
}

TEST(ServeProtocol, QueryRoundTrip) {
  const QueryFrame q = sample_query_frame();
  const auto body = encode_query(q);
  const Frame f = decode_frame(body.data(), body.size());
  EXPECT_EQ(f.type, FrameType::kQuery);
  EXPECT_EQ(f.query.case_id, q.case_id);
  EXPECT_EQ(f.query.num_features, q.num_features);
  EXPECT_EQ(f.query.features, q.features);
  EXPECT_EQ(f.query.num_queries(), 2u);
}

TEST(ServeProtocol, ReplyRoundTrip) {
  const std::vector<std::int32_t> labels = {0, 7, -1, 458};
  const auto body = encode_reply(labels);
  const Frame f = decode_frame(body.data(), body.size());
  EXPECT_EQ(f.type, FrameType::kReply);
  EXPECT_EQ(f.labels, labels);
}

TEST(ServeProtocol, ErrorRoundTrip) {
  const auto body = encode_error("no model loaded for case 3");
  const Frame f = decode_frame(body.data(), body.size());
  EXPECT_EQ(f.type, FrameType::kError);
  EXPECT_EQ(f.error, "no model loaded for case 3");
}

TEST(ServeProtocol, EveryByteFlipRejected) {
  // Any single corrupted byte must surface as a thrown contract violation
  // — caught by a count check, a cap, or ultimately the trailer digest —
  // never as a silently different frame.
  const auto body = encode_query(sample_query_frame());
  for (std::size_t i = 0; i < body.size(); ++i) {
    auto bad = body;
    bad[i] ^= 0xFF;
    EXPECT_THROW(decode_frame(bad.data(), bad.size()), ContractViolation)
        << "flipped byte " << i;
  }
}

TEST(ServeProtocol, EveryTruncationRejected) {
  const auto body = encode_query(sample_query_frame());
  for (std::size_t n = 0; n < body.size(); ++n) {
    EXPECT_THROW(decode_frame(body.data(), n), ContractViolation) << "length " << n;
  }
  // ... and bytes past the trailer are just as fatal as missing ones.
  auto padded = body;
  padded.push_back(0);
  EXPECT_THROW(decode_frame(padded.data(), padded.size()), ContractViolation);
}

TEST(ServeProtocol, CapsEnforcedOnEncode) {
  QueryFrame wide;
  wide.case_id = 1;
  wide.num_features = serve::kMaxFeaturesPerQuery + 1;
  wide.features.assign(wide.num_features, 0);
  EXPECT_THROW(encode_query(wide), ContractViolation);

  QueryFrame tall;
  tall.case_id = 1;
  tall.num_features = 1;
  tall.features.assign(serve::kMaxQueriesPerFrame + 1, 0);
  EXPECT_THROW(encode_query(tall), ContractViolation);

  QueryFrame empty;
  empty.case_id = 1;
  empty.num_features = 4;
  EXPECT_THROW(encode_query(empty), ContractViolation);

  QueryFrame ragged;
  ragged.case_id = 1;
  ragged.num_features = 4;
  ragged.features.assign(6, 0);  // not a multiple of the arity
  EXPECT_THROW(encode_query(ragged), ContractViolation);

  QueryFrame bad_case;
  bad_case.case_id = 4;
  bad_case.num_features = 4;
  bad_case.features.assign(4, 0);
  EXPECT_THROW(encode_query(bad_case), ContractViolation);

  // The error path must always be encodable, so an oversized message is
  // truncated to the cap instead of rejected.
  const auto body = encode_error(std::string(serve::kMaxErrorBytes + 100, 'x'));
  EXPECT_EQ(decode_frame(body.data(), body.size()).error,
            std::string(serve::kMaxErrorBytes, 'x'));
  EXPECT_THROW(encode_reply(std::vector<std::int32_t>(serve::kMaxQueriesPerFrame + 1, 0)),
               ContractViolation);
}

// ------------------------------------------- warm model, shared fixture
//
// Training is the expensive part, so one tiny case-1 model is trained
// once for the whole suite. Every test below treats it as const — which
// is exactly the serving contract under test.

class ServeModel : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // Real kernel workers even on 1-core CI boxes, so the concurrent
    // tests exercise parallel_rows inside concurrent forward passes.
    setenv("AIRCH_THREADS", "2", 1);
    study_ = std::make_unique<ArrayDataflowStudy>();
    Recommender::TrainOptions opts;
    opts.dataset_size = 400;
    opts.epochs = 1;
    rec_ = std::make_unique<Recommender>(Recommender::train(*study_, opts));
  }
  static void TearDownTestSuite() {
    rec_.reset();
    study_.reset();
  }

  /// Deterministic case-1 queries: {budget_exp, m, n, k}.
  static std::vector<std::vector<std::int64_t>> make_queries(std::size_t n,
                                                             std::uint64_t seed) {
    Rng rng(seed);
    std::vector<std::vector<std::int64_t>> out(n);
    for (auto& q : out) {
      q = {rng.uniform_int(5, 10), rng.log_uniform_int(4, 1 << 16),
           rng.log_uniform_int(4, 1 << 12), rng.log_uniform_int(4, 1 << 12)};
    }
    return out;
  }

  static std::unique_ptr<ArrayDataflowStudy> study_;
  static std::unique_ptr<Recommender> rec_;
};

std::unique_ptr<ArrayDataflowStudy> ServeModel::study_;
std::unique_ptr<Recommender> ServeModel::rec_;

TEST_F(ServeModel, BatchedMatchesScalar) {
  // The batched-vs-scalar property: one packed forward pass must agree
  // bit-for-bit with N scalar queries, duplicates included.
  auto queries = make_queries(100, 7);
  queries.push_back(queries.front());  // exact duplicates share one row each
  queries.push_back(queries.front());
  const auto batched = rec_->recommend_batch(queries);
  ASSERT_EQ(batched.size(), queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(batched[i], rec_->recommend_label(queries[i])) << "query " << i;
  }
}

TEST_F(ServeModel, EmptyBatchReturnsEmpty) {
  EXPECT_TRUE(rec_->recommend_batch({}).empty());
}

TEST_F(ServeModel, RaggedBatchThrows) {
  auto queries = make_queries(4, 9);
  queries[2].pop_back();  // 3 features in a 4-feature batch
  EXPECT_THROW(rec_->recommend_batch(queries), std::invalid_argument);
}

TEST_F(ServeModel, ConcurrentQueriesMatchSerial) {
  // The headline concurrency claim: 8 threads hammering ONE warm model
  // must each see answers bit-identical to the serial baseline. Before
  // the predict path went const, DenseLayer/ReluLayer/EmbeddingBag scratch
  // state was shared across callers and this raced (TSan caught it; this
  // file carries the tsan label so it still would).
  const auto queries = make_queries(64, 11);
  const auto serial_batch = rec_->recommend_batch(queries);
  std::vector<std::vector<std::int32_t>> serial_topk;
  serial_topk.reserve(queries.size());
  for (const auto& q : queries) serial_topk.push_back(rec_->recommend_topk(q, 5));

  constexpr int kThreads = 8;
  constexpr int kIters = 4;
  std::atomic<int> mismatches{0};
  {
    std::vector<Thread> pool;
    pool.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      pool.emplace_back([&, t] {
        for (int it = 0; it < kIters; ++it) {
          if (rec_->recommend_batch(queries) != serial_batch) mismatches.fetch_add(1);
          // Rotate a scalar + top-k probe per thread so the proba path
          // (softmax over infer_logits) runs concurrently too.
          const auto qi = static_cast<std::size_t>((t * kIters + it) %
                                                   static_cast<int>(queries.size()));
          if (rec_->recommend_label(queries[qi]) != serial_batch[qi]) mismatches.fetch_add(1);
          if (rec_->recommend_topk(queries[qi], 5) != serial_topk[qi]) mismatches.fetch_add(1);
        }
      });
    }
  }  // Thread joins on scope exit
  EXPECT_EQ(mismatches.load(), 0);
}

// ------------------------------------------------------ service, e2e

TEST_F(ServeModel, ServiceRepliesBitIdenticalToDirectBatch) {
  RecommenderService service({{1, rec_.get()}});
  service.start();
  RecommenderClient client(service.port());
  const auto queries = make_queries(16, 21);
  EXPECT_EQ(client.recommend_batch(1, queries), rec_->recommend_batch(queries));
  service.stop();
}

TEST_F(ServeModel, ServiceCoalescesConcurrentClients) {
  ServeOptions opts;
  opts.batch_deadline_us = 500;  // generous window so coalescing happens
  opts.batch_max = 64;
  RecommenderService service({{1, rec_.get()}}, opts);
  service.start();
  const int port = service.port();

  constexpr int kClients = 8;
  constexpr std::size_t kRequests = 10;
  constexpr std::size_t kBatch = 4;
  std::atomic<int> failures{0};
  {
    std::vector<Thread> pool;
    pool.reserve(kClients);
    for (int c = 0; c < kClients; ++c) {
      pool.emplace_back([&, c] {
        try {
          RecommenderClient client(port);
          for (std::size_t r = 0; r < kRequests; ++r) {
            const auto queries =
                make_queries(kBatch, 100 + static_cast<std::uint64_t>(c) * 1000 + r);
            if (client.recommend_batch(1, queries) != rec_->recommend_batch(queries)) {
              failures.fetch_add(1);
            }
          }
        } catch (const std::exception&) {
          failures.fetch_add(1);
        }
      });
    }
  }
  EXPECT_EQ(failures.load(), 0);

  const auto stats = service.stats();
  service.stop();
  EXPECT_EQ(stats.requests, kClients * kRequests);
  EXPECT_EQ(stats.queries, kClients * kRequests * kBatch);
  EXPECT_EQ(stats.errors, 0u);
  // Coalescing means strictly fewer forward passes than requests (with a
  // 500us window and 8 concurrent clients this is not close), and the
  // histogram must account for every dispatched batch.
  EXPECT_GE(stats.batches, 1u);
  EXPECT_LT(stats.batches, stats.requests);
  std::uint64_t hist_total = 0;
  for (const auto b : stats.batch_size_log2_hist) hist_total += b;
  EXPECT_EQ(hist_total, stats.batches);
}

TEST_F(ServeModel, ServiceAnswersUnknownCaseWithErrorAndSurvives) {
  RecommenderService service({{1, rec_.get()}});
  service.start();
  RecommenderClient client(service.port());
  const auto queries = make_queries(2, 31);
  EXPECT_THROW(client.recommend_batch(3, queries), std::runtime_error);
  // The error frame costs the sender one reply, not the connection.
  EXPECT_EQ(client.recommend_batch(1, queries), rec_->recommend_batch(queries));
  const auto stats = service.stats();
  EXPECT_EQ(stats.errors, 1u);
  EXPECT_EQ(stats.requests, 1u);
  service.stop();
}

TEST_F(ServeModel, ServiceRejectsArityMismatchBeforeBatching) {
  RecommenderService service({{1, rec_.get()}});
  service.start();
  RecommenderClient client(service.port());
  const std::vector<std::vector<std::int64_t>> wrong = {{8, 512, 128}};  // 3 != 4
  try {
    client.recommend_batch(1, wrong);
    FAIL() << "arity mismatch was answered with a reply";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("arity"), std::string::npos) << e.what();
  }
  const auto queries = make_queries(2, 33);
  EXPECT_EQ(client.recommend_batch(1, queries), rec_->recommend_batch(queries));
  service.stop();
}

TEST_F(ServeModel, ServiceSurvivesMalformedFrame) {
  RecommenderService service({{1, rec_.get()}});
  service.start();
  serve::Socket sock = serve::connect_local(service.port());

  QueryFrame q;
  q.case_id = 1;
  q.num_features = 4;
  q.features = {8, 512, 128, 256};
  auto body = encode_query(q);
  body[body.size() / 2] ^= 0xFF;  // corrupt mid-payload; digest must catch it
  sock.send_frame(body);
  auto reply = sock.recv_frame(serve::kMaxFrameBytes);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(decode_frame(reply->data(), reply->size()).type, FrameType::kError);

  // Same connection, clean frame: the length prefix kept the stream in sync.
  sock.send_frame(encode_query(q));
  reply = sock.recv_frame(serve::kMaxFrameBytes);
  ASSERT_TRUE(reply.has_value());
  const Frame f = decode_frame(reply->data(), reply->size());
  ASSERT_EQ(f.type, FrameType::kReply);
  EXPECT_EQ(f.labels, rec_->recommend_batch({q.features}));
  service.stop();
}

TEST_F(ServeModel, ServiceEnforcesConnectionCap) {
  ServeOptions opts;
  opts.max_connections = 1;
  RecommenderService service({{1, rec_.get()}}, opts);
  service.start();
  RecommenderClient first(service.port());
  const auto queries = make_queries(2, 41);
  // The first request proves `first` holds the single slot...
  EXPECT_EQ(first.recommend_batch(1, queries), rec_->recommend_batch(queries));
  // ...so the second connection is answered with an error frame and closed.
  RecommenderClient second(service.port());
  EXPECT_THROW(second.recommend_batch(1, queries), std::runtime_error);
  // The occupant is unaffected.
  EXPECT_EQ(first.recommend_batch(1, queries), rec_->recommend_batch(queries));
  service.stop();
}

TEST_F(ServeModel, ZeroDeadlineDispatchesImmediately) {
  ServeOptions opts;
  opts.batch_deadline_us = 0;
  RecommenderService service({{1, rec_.get()}}, opts);
  service.start();
  RecommenderClient client(service.port());
  const auto queries = make_queries(8, 43);
  EXPECT_EQ(client.recommend_batch(1, queries), rec_->recommend_batch(queries));
  EXPECT_GE(service.stats().batches, 1u);
  service.stop();
}

TEST_F(ServeModel, StopIsIdempotentAndDestructorSafe) {
  auto service = std::make_unique<RecommenderService>(
      std::vector<serve::ServedModel>{{1, rec_.get()}});
  service->start();
  {
    RecommenderClient client(service->port());
    const auto queries = make_queries(2, 47);
    EXPECT_EQ(client.recommend_batch(1, queries), rec_->recommend_batch(queries));
  }
  service->stop();
  service->stop();    // idempotent
  service.reset();    // destructor after stop() is a no-op
}

TEST_F(ServeModel, ConstructorValidatesModelTable) {
  EXPECT_THROW(RecommenderService({}), ContractViolation);
  EXPECT_THROW(RecommenderService({{1, nullptr}}), ContractViolation);
  EXPECT_THROW(RecommenderService({{0, rec_.get()}}), ContractViolation);
  EXPECT_THROW(RecommenderService({{4, rec_.get()}}), ContractViolation);
  EXPECT_THROW(RecommenderService({{1, rec_.get()}, {1, rec_.get()}}), ContractViolation);
  ServeOptions bad;
  bad.batch_max = 0;
  EXPECT_THROW(RecommenderService({{1, rec_.get()}}, bad), ContractViolation);
}

TEST_F(ServeModel, PortBeforeStartThrows) {
  RecommenderService service({{1, rec_.get()}});
  EXPECT_THROW(service.port(), ContractViolation);
  service.start();
  EXPECT_THROW(service.start(), ContractViolation);  // double start
  EXPECT_GT(service.port(), 0);
  service.stop();
}

}  // namespace
}  // namespace airch
