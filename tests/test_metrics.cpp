#include "ml/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace airch::ml {
namespace {

Matrix scores_from(std::initializer_list<std::initializer_list<float>> rows) {
  const std::size_t r = rows.size();
  const std::size_t c = rows.begin()->size();
  Matrix m(r, c);
  std::size_t i = 0;
  for (const auto& row : rows) {
    std::size_t j = 0;
    for (float v : row) m(i, j++) = v;
    ++i;
  }
  return m;
}

TEST(TopkAccuracy, Top1MatchesArgmax) {
  const Matrix s = scores_from({{0.1f, 0.9f, 0.0f}, {0.5f, 0.2f, 0.3f}});
  EXPECT_DOUBLE_EQ(topk_accuracy(s, {1, 0}, 1), 1.0);
  EXPECT_DOUBLE_EQ(topk_accuracy(s, {0, 1}, 1), 0.0);
}

TEST(TopkAccuracy, WidensWithK) {
  const Matrix s = scores_from({{0.5f, 0.3f, 0.2f}});
  EXPECT_DOUBLE_EQ(topk_accuracy(s, {2}, 1), 0.0);
  EXPECT_DOUBLE_EQ(topk_accuracy(s, {2}, 2), 0.0);
  EXPECT_DOUBLE_EQ(topk_accuracy(s, {2}, 3), 1.0);
}

TEST(TopkAccuracy, MonotoneInK) {
  Rng rng(3);
  Matrix s(50, 10);
  std::vector<std::int32_t> y(50);
  for (std::size_t i = 0; i < s.size(); ++i) s.data()[i] = static_cast<float>(rng.uniform());
  for (auto& v : y) v = static_cast<std::int32_t>(rng.uniform_int(0, 9));
  double prev = 0.0;
  for (int k = 1; k <= 10; ++k) {
    const double acc = topk_accuracy(s, y, k);
    EXPECT_GE(acc, prev);
    prev = acc;
  }
  EXPECT_DOUBLE_EQ(prev, 1.0);  // k = classes -> always a hit
}

TEST(TopkAccuracy, RejectsBadK) {
  const Matrix s = scores_from({{1.0f, 0.0f}});
  EXPECT_THROW(topk_accuracy(s, {0}, 0), std::invalid_argument);
}

TEST(JensenShannon, IdenticalIsZero) {
  EXPECT_NEAR(jensen_shannon_divergence({5, 3, 2}, {50, 30, 20}), 0.0, 1e-12);
}

TEST(JensenShannon, DisjointIsLn2) {
  EXPECT_NEAR(jensen_shannon_divergence({10, 0}, {0, 10}), std::log(2.0), 1e-12);
}

TEST(JensenShannon, Symmetric) {
  const std::vector<std::int64_t> p = {7, 1, 2, 5};
  const std::vector<std::int64_t> q = {1, 4, 4, 1};
  EXPECT_DOUBLE_EQ(jensen_shannon_divergence(p, q), jensen_shannon_divergence(q, p));
}

TEST(JensenShannon, RejectsBadInput) {
  EXPECT_THROW(jensen_shannon_divergence({1, 2}, {1, 2, 3}), std::invalid_argument);
  EXPECT_THROW(jensen_shannon_divergence({0, 0}, {1, 2}), std::invalid_argument);
}

TEST(ConfusionCounts, Basic) {
  //      labels: 0 0 1 1 2
  // predictions: 0 1 1 2 2
  const auto c = confusion_counts({0, 0, 1, 1, 2}, {0, 1, 1, 2, 2}, 3);
  EXPECT_EQ(c[0].tp, 1);
  EXPECT_EQ(c[0].fn, 1);
  EXPECT_EQ(c[0].fp, 0);
  EXPECT_EQ(c[1].tp, 1);
  EXPECT_EQ(c[1].fn, 1);
  EXPECT_EQ(c[1].fp, 1);
  EXPECT_EQ(c[2].tp, 1);
  EXPECT_EQ(c[2].fn, 0);
  EXPECT_EQ(c[2].fp, 1);
}

TEST(ConfusionCounts, OutOfRangeLabelThrows) {
  EXPECT_THROW(confusion_counts({5}, {0}, 3), std::out_of_range);
  EXPECT_THROW(confusion_counts({0}, {0, 1}, 3), std::invalid_argument);
}

TEST(MacroF1, PerfectPredictionsScoreOne) {
  EXPECT_DOUBLE_EQ(macro_f1({0, 1, 2, 1}, {0, 1, 2, 1}, 3), 1.0);
}

TEST(MacroF1, AllWrongScoresZero) {
  EXPECT_DOUBLE_EQ(macro_f1({0, 0}, {1, 1}, 2), 0.0);
}

TEST(MacroF1, IgnoresAbsentClasses) {
  // Class 2 never appears in labels; macro average is over classes 0,1.
  const double f1 = macro_f1({0, 1}, {0, 1}, 3);
  EXPECT_DOUBLE_EQ(f1, 1.0);
}

TEST(MacroF1, PunishesMajorityClassCollapse) {
  // A degenerate predictor that always answers the majority class gets
  // high accuracy but poor macro F1 on imbalanced data.
  std::vector<std::int32_t> labels;
  std::vector<std::int32_t> preds;
  for (int i = 0; i < 90; ++i) {
    labels.push_back(0);
    preds.push_back(0);
  }
  for (int i = 0; i < 10; ++i) {
    labels.push_back(1);
    preds.push_back(0);
  }
  const double accuracy = 0.9;  // by construction
  const double f1 = macro_f1(labels, preds, 2);
  EXPECT_LT(f1, accuracy - 0.3);
}

}  // namespace
}  // namespace airch::ml
