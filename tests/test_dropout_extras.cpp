// Dropout layer semantics, early stopping, and the transformer workload
// extensions.

#include <gtest/gtest.h>

#include "ml/dropout.hpp"
#include "models/neural.hpp"
#include "workload/model_zoo.hpp"

namespace airch {
namespace {

using ml::DropoutLayer;
using ml::Matrix;

TEST(Dropout, IdentityAtInference) {
  DropoutLayer layer(0.5, 1);
  Matrix x(4, 8, 2.0f);
  const Matrix y = layer.forward(x, /*training=*/false);
  for (std::size_t i = 0; i < y.size(); ++i) EXPECT_FLOAT_EQ(y.data()[i], 2.0f);
}

TEST(Dropout, ZeroRateIsIdentityInTraining) {
  DropoutLayer layer(0.0, 1);
  Matrix x(4, 8, 3.0f);
  const Matrix y = layer.forward(x, /*training=*/true);
  for (std::size_t i = 0; i < y.size(); ++i) EXPECT_FLOAT_EQ(y.data()[i], 3.0f);
}

TEST(Dropout, DropsApproximatelyRateFraction) {
  DropoutLayer layer(0.3, 7);
  Matrix x(100, 100, 1.0f);
  const Matrix y = layer.forward(x, /*training=*/true);
  std::size_t zeros = 0;
  for (std::size_t i = 0; i < y.size(); ++i) {
    if (y.data()[i] == 0.0f) {
      ++zeros;
    } else {
      // Inverted dropout scales survivors by 1/(1-rate).
      EXPECT_NEAR(y.data()[i], 1.0f / 0.7f, 1e-5f);
    }
  }
  EXPECT_NEAR(static_cast<double>(zeros) / static_cast<double>(y.size()), 0.3, 0.02);
}

TEST(Dropout, BackwardUsesSameMask) {
  DropoutLayer layer(0.5, 11);
  Matrix x(10, 10, 1.0f);
  const Matrix y = layer.forward(x, /*training=*/true);
  Matrix grad(10, 10, 1.0f);
  const Matrix gx = layer.backward(grad);
  for (std::size_t i = 0; i < y.size(); ++i) {
    EXPECT_FLOAT_EQ(gx.data()[i], y.data()[i]);  // both equal the mask value
  }
}

TEST(Dropout, RejectsBadRate) {
  EXPECT_THROW(DropoutLayer(-0.1, 1), std::invalid_argument);
  EXPECT_THROW(DropoutLayer(1.0, 1), std::invalid_argument);
}

// ------------------------------------------------------- early stopping

Dataset tiny_task(std::size_t n, std::uint64_t seed) {
  Dataset ds({"a", "b"}, 2);
  Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    const std::int64_t a = rng.uniform_int(0, 100);
    const std::int64_t b = rng.uniform_int(0, 100);
    ds.add({{a, b}, a > b ? 1 : 0});
  }
  return ds;
}

TEST(EarlyStopping, StopsBeforeEpochBudget) {
  NeuralClassifier::Options o;
  o.hidden = {16};
  o.epochs = 100;
  o.early_stop_patience = 2;
  NeuralClassifier clf("es", o);
  const Dataset train = tiny_task(400, 1);
  const Dataset val = tiny_task(100, 2);
  const FeatureEncoder enc(train);
  const auto history = clf.fit(train, val, enc);
  // A trivially learnable task saturates quickly; patience must kick in
  // long before 100 epochs.
  EXPECT_LT(history.size(), 50u);
}

TEST(EarlyStopping, DisabledRunsAllEpochs) {
  NeuralClassifier::Options o;
  o.hidden = {16};
  o.epochs = 12;
  NeuralClassifier clf("no-es", o);
  const Dataset train = tiny_task(200, 3);
  const Dataset val = tiny_task(50, 4);
  const FeatureEncoder enc(train);
  EXPECT_EQ(clf.fit(train, val, enc).size(), 12u);
}

TEST(DropoutClassifier, StillLearns) {
  NeuralClassifier::Options o;
  o.hidden = {32};
  o.epochs = 15;
  o.dropout = 0.2;
  NeuralClassifier clf("dropout", o);
  const Dataset train = tiny_task(1000, 5);
  const Dataset val = tiny_task(300, 6);
  const FeatureEncoder enc(train);
  clf.fit(train, val, enc);
  // Bucketized a-vs-b comparison has irreducible error near the diagonal;
  // with dropout the classifier should still clear 80%.
  EXPECT_GT(clf.accuracy(val, enc), 0.8);
}

TEST(DropoutClassifier, SerializationRoundTrips) {
  NeuralClassifier::Options o;
  o.hidden = {16};
  o.epochs = 3;
  o.dropout = 0.25;
  NeuralClassifier clf("dropout-io", o);
  const Dataset train = tiny_task(300, 7);
  const FeatureEncoder enc(train);
  clf.fit(train, {}, enc);
  std::stringstream ss;
  clf.save(ss);
  auto loaded = NeuralClassifier::load(ss);
  const Dataset test = tiny_task(100, 8);
  EXPECT_EQ(loaded->predict(test, enc), clf.predict(test, enc));
  EXPECT_DOUBLE_EQ(loaded->options().dropout, 0.25);
}

// ------------------------------------------------------- transformers

TEST(TransformerZoo, BlocksLowerToValidGemms) {
  for (const auto& net : transformer_zoo()) {
    const auto gemms = net.gemms();
    EXPECT_GE(gemms.size(), 24u) << net.name;  // 4 blocks x 6 GEMMs
    for (const auto& g : gemms) EXPECT_TRUE(g.valid()) << net.name;
  }
}

TEST(TransformerZoo, AttentionShapesAreSeqDependent) {
  const auto net = make_bert_base(128);
  bool found_scores = false;
  const auto names = net.layer_names();
  const auto gemms = net.gemms();
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (names[i].find("attn_scores") != std::string::npos) {
      found_scores = true;
      EXPECT_EQ(gemms[i].m, 128);  // seq
      EXPECT_EQ(gemms[i].n, 128);  // seq
      EXPECT_EQ(gemms[i].k, 64);   // d_head = 768 / 12
    }
  }
  EXPECT_TRUE(found_scores);
}

TEST(TransformerZoo, SeqLenScalesAttention) {
  const auto short_seq = make_bert_base(64).gemms();
  const auto long_seq = make_bert_base(512).gemms();
  MacCount short_macs, long_macs;
  for (const auto& g : short_seq) short_macs += g.macs();
  for (const auto& g : long_seq) long_macs += g.macs();
  EXPECT_GT(long_macs, 4 * short_macs);  // superlinear due to attention
}

TEST(TransformerZoo, FfnIsWidest) {
  const auto net = make_gpt2_small();
  const auto names = net.layer_names();
  const auto gemms = net.gemms();
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (names[i].find("ffn_up") != std::string::npos) {
      EXPECT_EQ(gemms[i].n, 3072);
      EXPECT_EQ(gemms[i].k, 768);
    }
  }
}

}  // namespace
}  // namespace airch
