#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "common/csv.hpp"
#include "common/table.hpp"

namespace airch {
namespace {

class CsvRoundTrip : public ::testing::Test {
 protected:
  void SetUp() override { path_ = ::testing::TempDir() + "csv_test.csv"; }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

TEST_F(CsvRoundTrip, HeaderAndRows) {
  {
    CsvWriter w(path_);
    w.write_header({"a", "b", "c"});
    w.write_row({"1", "2", "3"});
    w.write_row_i64({-4, 5, 6});
  }
  CsvReader r(path_);
  EXPECT_EQ(r.header(), (std::vector<std::string>{"a", "b", "c"}));
  std::vector<std::string> cells;
  ASSERT_TRUE(r.next_row(cells));
  EXPECT_EQ(cells, (std::vector<std::string>{"1", "2", "3"}));
  ASSERT_TRUE(r.next_row(cells));
  EXPECT_EQ(cells, (std::vector<std::string>{"-4", "5", "6"}));
  EXPECT_FALSE(r.next_row(cells));
}

TEST_F(CsvRoundTrip, WidthMismatchThrows) {
  CsvWriter w(path_);
  w.write_header({"a", "b"});
  EXPECT_THROW(w.write_row({"only-one"}), std::runtime_error);
}

TEST(Csv, OpenMissingFileThrows) {
  EXPECT_THROW(CsvReader("/nonexistent/path/file.csv"), std::runtime_error);
  EXPECT_THROW(CsvWriter("/nonexistent/path/file.csv"), std::runtime_error);
}

TEST(Csv, SplitLine) {
  EXPECT_EQ(split_csv_line("a,b,c"), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split_csv_line(""), (std::vector<std::string>{""}));
  EXPECT_EQ(split_csv_line("x,,y"), (std::vector<std::string>{"x", "", "y"}));
  EXPECT_EQ(split_csv_line("a,b\r"), (std::vector<std::string>{"a", "b"}));
}

TEST(Csv, QuotedFieldRejected) {
  EXPECT_THROW(split_csv_line("\"quoted\",b"), std::runtime_error);
}

TEST(Table, AlignsColumns) {
  AsciiTable t({"col", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("col"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows) {
  AsciiTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only"}), std::invalid_argument);
}

TEST(Table, FmtPrecision) {
  EXPECT_EQ(AsciiTable::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(AsciiTable::fmt(1.0, 0), "1");
}

TEST(Bar, Fractions) {
  EXPECT_EQ(bar(0.0, 10), "");
  EXPECT_EQ(bar(1.0, 10).size(), 10u);
  EXPECT_EQ(bar(0.5, 10).size(), 5u);
  EXPECT_EQ(bar(2.0, 10).size(), 10u);   // clamped
  EXPECT_EQ(bar(-1.0, 10).size(), 0u);   // clamped
}

}  // namespace
}  // namespace airch
