#include <gtest/gtest.h>

#include "common/math_utils.hpp"
#include "search/annealing.hpp"
#include "search/exhaustive.hpp"
#include "search/objective.hpp"
#include "workload/sampler.hpp"

namespace airch {
namespace {

class AnnealingTest : public ::testing::Test {
 protected:
  AnnealingTest() : space_(12), exhaustive_(space_, sim_), sa_(space_, sim_) {}
  Simulator sim_;
  ArrayDataflowSpace space_;
  ArrayDataflowSearch exhaustive_;
  AnnealingArrayDataflowSearch sa_;
};

TEST_F(AnnealingTest, FindsNearOptimalSolutions) {
  Rng rng(3);
  LogUniformGemmSampler sampler;
  for (int trial = 0; trial < 10; ++trial) {
    const GemmWorkload w = sampler.sample(rng);
    const auto opt = exhaustive_.best(w, 12);
    AnnealingOptions options;
    options.seed = static_cast<std::uint64_t>(trial) + 1;
    const auto sa = sa_.best(w, 12, options);
    EXPECT_LE(sa.cycles / opt.cycles, 1.25) << w.to_string();
    EXPECT_GE(sa.cycles, opt.cycles);
  }
}

TEST_F(AnnealingTest, RespectsBudget) {
  Rng rng(5);
  LogUniformGemmSampler sampler;
  for (int budget = 4; budget <= 12; budget += 2) {
    const auto r = sa_.best(sampler.sample(rng), budget);
    EXPECT_LE(space_.config(r.label).macs(), MacCount{pow2(budget)});
  }
}

TEST_F(AnnealingTest, DeterministicForSeed) {
  const GemmWorkload w{321, 654, 987};
  AnnealingOptions options;
  options.seed = 9;
  const auto a = sa_.best(w, 10, options);
  const auto b = sa_.best(w, 10, options);
  EXPECT_EQ(a.label, b.label);
}

TEST_F(AnnealingTest, EvaluationCountIsStepsPlusOne) {
  AnnealingOptions options;
  options.steps = 55;
  const auto r = sa_.best({64, 64, 64}, 10, options);
  EXPECT_EQ(r.evaluations, 56u);
}

TEST_F(AnnealingTest, BestNeverWorseThanReportedCycles) {
  const GemmWorkload w{999, 111, 444};
  const auto r = sa_.best(w, 11);
  EXPECT_EQ(r.cycles, exhaustive_.cycles_of(w, r.label));
}

// ------------------------------------------------------------ objectives

TEST(Objective, StringRoundTrip) {
  for (Objective o : {Objective::kRuntime, Objective::kEnergy, Objective::kEdp}) {
    EXPECT_EQ(objective_from_string(to_string(o)), o);
  }
  EXPECT_THROW(objective_from_string("speed"), std::invalid_argument);
}

TEST(Objective, RuntimeMatchesComputeModel) {
  const Simulator sim;
  const ObjectiveEvaluator eval(sim);
  const GemmWorkload w{128, 128, 128};
  const ArrayConfig a{16, 16, Dataflow::kWeightStationary};
  EXPECT_DOUBLE_EQ(eval.cost(w, a, Objective::kRuntime),
                   static_cast<double>(sim.compute_cycles(w, a).value()));
}

TEST(Objective, EdpIsEnergyTimesDelay) {
  const Simulator sim;
  const ObjectiveEvaluator eval(sim);
  const GemmWorkload w{200, 300, 400};
  const ArrayConfig a{32, 8, Dataflow::kOutputStationary};
  const SimResult r = sim.simulate(w, a, eval.nominal_memory());
  EXPECT_DOUBLE_EQ(eval.cost(w, a, Objective::kEdp),
                   eval.cost(w, a, Objective::kEnergy) * static_cast<double>(r.total_cycles().value()));
}

TEST(Objective, SearchFindsObjectiveMinimum) {
  const Simulator sim;
  const ArrayDataflowSpace space(10);
  const ArrayDataflowSearch search(space, sim);
  const ObjectiveEvaluator eval(sim);
  Rng rng(7);
  LogUniformGemmSampler sampler;
  for (Objective obj : {Objective::kRuntime, Objective::kEnergy, Objective::kEdp}) {
    const GemmWorkload w = sampler.sample(rng);
    const auto best = search.best_with_objective(w, 10, eval, obj);
    for (int label : space.labels_within_budget(10)) {
      EXPECT_LE(best.cost, eval.cost(w, space.config(label), obj) * (1 + 1e-12))
          << to_string(obj);
    }
  }
}

TEST(Objective, RuntimeObjectiveAgreesWithRuntimeSearch) {
  const Simulator sim;
  const ArrayDataflowSpace space(10);
  const ArrayDataflowSearch search(space, sim);
  const ObjectiveEvaluator eval(sim);
  Rng rng(9);
  LogUniformGemmSampler sampler;
  for (int trial = 0; trial < 10; ++trial) {
    const GemmWorkload w = sampler.sample(rng);
    const auto runtime = search.best(w, 10);
    const auto objective = search.best_with_objective(w, 10, eval, Objective::kRuntime);
    // Costs agree exactly; labels may differ only among exact ties.
    EXPECT_DOUBLE_EQ(objective.cost, static_cast<double>(runtime.cycles.value()));
  }
}

TEST(Objective, EnergyOptimumCanDifferFromRuntimeOptimum) {
  // Across a population, the energy-optimal design must differ from the
  // runtime-optimal one at least sometimes — otherwise the objective knob
  // would be vacuous.
  const Simulator sim;
  const ArrayDataflowSpace space(10);
  const ArrayDataflowSearch search(space, sim);
  const ObjectiveEvaluator eval(sim);
  Rng rng(11);
  LogUniformGemmSampler sampler;
  int differs = 0;
  for (int trial = 0; trial < 30; ++trial) {
    const GemmWorkload w = sampler.sample(rng);
    if (search.best(w, 10).label !=
        search.best_with_objective(w, 10, eval, Objective::kEnergy).label) {
      ++differs;
    }
  }
  EXPECT_GT(differs, 0);
}

}  // namespace
}  // namespace airch
