// Finite-difference gradient checks for every trainable layer and the
// fused softmax cross-entropy — the backbone correctness guarantee of the
// from-scratch NN stack.

#include <gtest/gtest.h>

#include <cmath>

#include "ml/activation.hpp"
#include "ml/dense.hpp"
#include "ml/embedding.hpp"
#include "ml/loss.hpp"

namespace airch::ml {
namespace {

constexpr float kEps = 1e-3f;
constexpr float kTol = 2e-2f;  // relative tolerance for fp32 central differences

Matrix random_matrix(std::size_t r, std::size_t c, Rng& rng, double scale = 1.0) {
  Matrix m(r, c);
  for (std::size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<float>(rng.uniform(-scale, scale));
  }
  return m;
}

/// Scalar loss used to drive gradient checks: L = sum(out * coeff).
double weighted_sum(const Matrix& out, const Matrix& coeff) {
  double s = 0.0;
  for (std::size_t i = 0; i < out.size(); ++i) {
    s += static_cast<double>(out.data()[i]) * static_cast<double>(coeff.data()[i]);
  }
  return s;
}

void expect_close(float analytic, float numeric, const std::string& what) {
  const float denom = std::max({std::abs(analytic), std::abs(numeric), 1e-2f});
  EXPECT_LT(std::abs(analytic - numeric) / denom, kTol)
      << what << ": analytic=" << analytic << " numeric=" << numeric;
}

TEST(GradCheck, DenseInputGradient) {
  Rng rng(3);
  DenseLayer layer(4, 3, rng);
  Matrix x = random_matrix(5, 4, rng);
  const Matrix coeff = random_matrix(5, 3, rng);

  layer.forward(x, true);
  const Matrix grad_in = layer.backward(coeff);

  for (std::size_t r = 0; r < x.rows(); ++r) {
    for (std::size_t c = 0; c < x.cols(); ++c) {
      const float orig = x(r, c);
      x(r, c) = orig + kEps;
      const double plus = weighted_sum(layer.forward(x, true), coeff);
      x(r, c) = orig - kEps;
      const double minus = weighted_sum(layer.forward(x, true), coeff);
      x(r, c) = orig;
      const float numeric = static_cast<float>((plus - minus) / (2.0 * kEps));
      expect_close(grad_in(r, c), numeric, "dX[" + std::to_string(r) + "," + std::to_string(c) + "]");
    }
  }
}

TEST(GradCheck, DenseParamGradients) {
  Rng rng(5);
  DenseLayer layer(3, 2, rng);
  const Matrix x = random_matrix(4, 3, rng);
  const Matrix coeff = random_matrix(4, 2, rng);

  layer.forward(x, true);
  layer.backward(coeff);
  auto params = layer.params();  // [0] = W, [1] = b

  for (const auto& p : params) {
    for (std::size_t i = 0; i < p.size; ++i) {
      const float analytic = p.grad[i];
      const float orig = p.value[i];
      p.value[i] = orig + kEps;
      const double plus = weighted_sum(layer.forward(x, true), coeff);
      p.value[i] = orig - kEps;
      const double minus = weighted_sum(layer.forward(x, true), coeff);
      p.value[i] = orig;
      const float numeric = static_cast<float>((plus - minus) / (2.0 * kEps));
      expect_close(analytic, numeric, "param[" + std::to_string(i) + "]");
    }
  }
}

TEST(GradCheck, ReluGradient) {
  Rng rng(7);
  ReluLayer layer;
  Matrix x = random_matrix(6, 5, rng);
  const Matrix coeff = random_matrix(6, 5, rng);

  layer.forward(x, true);
  const Matrix grad_in = layer.backward(coeff);
  for (std::size_t i = 0; i < x.size(); ++i) {
    const float expected = x.data()[i] > 0.0f ? coeff.data()[i] : 0.0f;
    EXPECT_FLOAT_EQ(grad_in.data()[i], expected);
  }
}

TEST(GradCheck, EmbeddingTableGradient) {
  Rng rng(9);
  EmbeddingBag emb({4, 3}, 2, rng);
  IntBatch x;
  x.resize(3, 2);
  x(0, 0) = 1;
  x(0, 1) = 2;
  x(1, 0) = 1;  // repeated index: gradients must accumulate
  x(1, 1) = 0;
  x(2, 0) = 3;
  x(2, 1) = 2;
  const Matrix coeff = random_matrix(3, emb.output_dim(), rng);

  emb.forward(x);
  emb.backward(coeff);
  auto params = emb.params();

  for (const auto& p : params) {
    for (std::size_t i = 0; i < p.size; ++i) {
      const float analytic = p.grad[i];
      const float orig = p.value[i];
      p.value[i] = orig + kEps;
      const double plus = weighted_sum(emb.forward(x), coeff);
      p.value[i] = orig - kEps;
      const double minus = weighted_sum(emb.forward(x), coeff);
      p.value[i] = orig;
      const float numeric = static_cast<float>((plus - minus) / (2.0 * kEps));
      expect_close(analytic, numeric, "emb[" + std::to_string(i) + "]");
    }
  }
}

TEST(GradCheck, SoftmaxCrossEntropyGradient) {
  Rng rng(11);
  Matrix logits = random_matrix(4, 5, rng, 2.0);
  const std::vector<std::int32_t> labels = {0, 3, 2, 4};

  const LossResult base = softmax_cross_entropy(logits, labels);
  for (std::size_t i = 0; i < logits.size(); ++i) {
    const float orig = logits.data()[i];
    logits.data()[i] = orig + kEps;
    const double plus = softmax_cross_entropy(logits, labels).loss;
    logits.data()[i] = orig - kEps;
    const double minus = softmax_cross_entropy(logits, labels).loss;
    logits.data()[i] = orig;
    const float numeric = static_cast<float>((plus - minus) / (2.0 * kEps));
    expect_close(base.grad.data()[i], numeric, "logit[" + std::to_string(i) + "]");
  }
}

TEST(Embedding, OutOfRangeIndicesClamped) {
  Rng rng(13);
  EmbeddingBag emb({4}, 2, rng);
  IntBatch x;
  x.resize(2, 1);
  x(0, 0) = -5;
  x(1, 0) = 99;
  const Matrix out = emb.forward(x);  // must not crash
  EXPECT_EQ(out.rows(), 2u);
  EXPECT_EQ(out.cols(), 2u);
}

TEST(Embedding, OutputLayout) {
  Rng rng(15);
  EmbeddingBag emb({3, 3}, 4, rng);
  EXPECT_EQ(emb.output_dim(), 8u);
  EXPECT_EQ(emb.num_features(), 2u);
  IntBatch x;
  x.resize(1, 2);
  x(0, 0) = 1;
  x(0, 1) = 2;
  const Matrix out = emb.forward(x);
  // First 4 entries = table0 row1; last 4 = table1 row2.
  auto params = emb.params();
  for (std::size_t d = 0; d < 4; ++d) {
    EXPECT_FLOAT_EQ(out(0, d), params[0].value[1 * 4 + d]);
    EXPECT_FLOAT_EQ(out(0, 4 + d), params[1].value[2 * 4 + d]);
  }
}

TEST(Dense, ZeroSizeRejected) {
  Rng rng(17);
  EXPECT_THROW(DenseLayer(0, 5, rng), std::invalid_argument);
  EXPECT_THROW(DenseLayer(5, 0, rng), std::invalid_argument);
}

TEST(Embedding, BadSpecRejected) {
  Rng rng(19);
  EXPECT_THROW(EmbeddingBag({}, 4, rng), std::invalid_argument);
  EXPECT_THROW(EmbeddingBag({3}, 0, rng), std::invalid_argument);
  EXPECT_THROW(EmbeddingBag({0}, 4, rng), std::invalid_argument);
}

}  // namespace
}  // namespace airch::ml
