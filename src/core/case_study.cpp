#include "core/case_study.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/math_utils.hpp"
#include "common/parallel.hpp"

namespace airch {

const char* case_name(CaseId id) {
  switch (id) {
    case CaseId::kArrayDataflow: return "Case Study 1: Array and Dataflow";
    case CaseId::kBufferSizing: return "Case Study 2: Buffer Sizing";
    case CaseId::kScheduling: return "Case Study 3: Multi-array Scheduling";
  }
  return "?";
}

std::vector<double> CaseStudy::normalized_performance_batch(
    const Dataset& test, const std::vector<std::int32_t>& preds) const {
  if (preds.size() != test.size()) throw std::invalid_argument("prediction count mismatch");
  std::vector<double> out(test.size());
  parallel_for(test.size(), [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      out[i] = normalized_performance(test[i], preds[i]);
    }
  });
  return out;
}

// ---------------------------------------------------------------- case 1

ArrayDataflowStudy::ArrayDataflowStudy(Case1Config cfg, int max_macs_exp)
    : cfg_(cfg),
      space_(max_macs_exp),
      cache_(std::make_unique<Case1SweepCache>(space_, sim_)) {}

Dataset ArrayDataflowStudy::generate_range(std::size_t begin, std::size_t end,
                                           std::uint64_t seed) const {
  return generate_case1_range(begin, end, space_, cfg_, seed, *cache_);
}

SnapshotStats ArrayDataflowStudy::save_cache_snapshot(const std::string& path) const {
  return cache_->save_snapshot(path);
}

SnapshotStats ArrayDataflowStudy::load_cache_snapshot(const std::string& path) const {
  return cache_->load_snapshot(path);
}

CacheStats ArrayDataflowStudy::cache_stats() const { return cache_->stats(); }

double ArrayDataflowStudy::normalized_performance(const DataPoint& point,
                                                  std::int32_t predicted) const {
  const Case1Features f = decode_case1(point.features);
  ArrayDataflowSearch search(space_, sim_);
  const Cycles best = search.cycles_of(f.workload, point.label);
  Cycles pred = search.cycles_of(f.workload, predicted);
  // A prediction that exceeds the MAC budget is not buildable as-is; the
  // closest realizable design time-multiplexes it onto the budget, which
  // serializes execution by the overshoot factor.
  const MacCount budget{pow2(std::min(f.budget_exp, 62))};
  const MacCount macs = space_.config(predicted).macs();
  if (macs > budget) pred *= ceil_div(macs, budget);
  return std::min(1.0, best / pred);
}

// ---------------------------------------------------------------- case 2

BufferSizingStudy::BufferSizingStudy(Case2Config cfg)
    : cfg_(cfg), cache_(std::make_unique<Case2SweepCache>(space_, sim_)) {}

Dataset BufferSizingStudy::generate_range(std::size_t begin, std::size_t end,
                                          std::uint64_t seed) const {
  return generate_case2_range(begin, end, space_, cfg_, seed, *cache_);
}

SnapshotStats BufferSizingStudy::save_cache_snapshot(const std::string& path) const {
  return cache_->save_snapshot(path);
}

SnapshotStats BufferSizingStudy::load_cache_snapshot(const std::string& path) const {
  return cache_->load_snapshot(path);
}

CacheStats BufferSizingStudy::cache_stats() const { return cache_->stats(); }

double BufferSizingStudy::normalized_performance(const DataPoint& point,
                                                 std::int32_t predicted) const {
  const Case2Features f = decode_case2(point.features);
  BufferSearch search(space_, sim_);
  const ComputeResult compute = compute_latency(f.workload, f.array);
  const Cycles best_stalls = search.stalls_of(f.workload, f.array, f.bandwidth, point.label);
  // Clamp an over-budget prediction to the nearest realizable design:
  // greedily shrink the largest buffer until the shared capacity limit is
  // met (each buffer stays on the space's quantization grid).
  MemoryConfig pred_mem = space_.config(predicted);
  const std::int64_t step = space_.step_kb();
  while (pred_mem.total_kb() > f.limit_kb) {
    std::int64_t* largest = &pred_mem.ifmap_kb;
    if (pred_mem.filter_kb > *largest) largest = &pred_mem.filter_kb;
    if (pred_mem.ofmap_kb > *largest) largest = &pred_mem.ofmap_kb;
    if (*largest <= step) break;  // already at the floor everywhere
    *largest -= step;
  }
  pred_mem.bandwidth = f.bandwidth;
  const Cycles pred_stalls =
      memory_behavior(f.workload, f.array, pred_mem, compute).stall_cycles;
  // End-to-end runtime ratio (stall-only ratio would divide by zero on
  // stall-free optima).
  return (compute.cycles + best_stalls) / (compute.cycles + pred_stalls);
}

// ---------------------------------------------------------------- case 3

SchedulingStudy::SchedulingStudy(Case3Config cfg, int num_arrays)
    : cfg_(cfg),
      space_(num_arrays),
      sim_(),
      search_(space_, default_scheduled_arrays(), sim_),
      cache_(std::make_unique<Case3SweepCache>(search_)) {
  if (num_arrays != static_cast<int>(default_scheduled_arrays().size())) {
    throw std::invalid_argument("SchedulingStudy currently ships a 4-array system");
  }
}

Dataset SchedulingStudy::generate_range(std::size_t begin, std::size_t end,
                                        std::uint64_t seed) const {
  return generate_case3_range(begin, end, space_, cfg_, seed, *cache_);
}

SnapshotStats SchedulingStudy::save_cache_snapshot(const std::string& path) const {
  return cache_->save_snapshot(path);
}

SnapshotStats SchedulingStudy::load_cache_snapshot(const std::string& path) const {
  return cache_->load_snapshot(path);
}

CacheStats SchedulingStudy::cache_stats() const { return cache_->stats(); }

double SchedulingStudy::normalized_performance(const DataPoint& point,
                                               std::int32_t predicted) const {
  const auto workloads = decode_case3(point.features);
  const auto best = search_.evaluate(workloads, point.label);
  const auto pred = search_.evaluate(workloads, predicted);
  return best.makespan_cycles / pred.makespan_cycles;
}

std::unique_ptr<CaseStudy> make_case_study(CaseId id) {
  switch (id) {
    case CaseId::kArrayDataflow: return std::make_unique<ArrayDataflowStudy>();
    case CaseId::kBufferSizing: return std::make_unique<BufferSizingStudy>();
    case CaseId::kScheduling: return std::make_unique<SchedulingStudy>();
  }
  throw std::invalid_argument("unknown case id");
}

}  // namespace airch
