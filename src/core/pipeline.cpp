#include "core/pipeline.hpp"

#include <algorithm>

#include "common/math_utils.hpp"
#include "ml/metrics.hpp"

namespace airch {

ExperimentResult run_experiment(const CaseStudy& study, Classifier& clf, const Dataset& data,
                                const ExperimentOptions& options) {
  Dataset shuffled = data;
  Rng rng(options.shuffle_seed);
  shuffled.shuffle(rng);
  auto splits = shuffled.split3(options.train_frac, options.val_frac);

  FeatureEncoder enc(splits.train);

  ExperimentResult r;
  r.train_size = splits.train.size();
  r.val_size = splits.val.size();
  r.test_size = splits.test.size();
  r.history = clf.fit(splits.train, splits.val, enc);

  const Dataset& test = splits.test;
  r.predictions = clf.predict(test, enc);

  std::size_t correct = 0;
  r.actual_hist.assign(static_cast<std::size_t>(study.num_classes()), 0);
  r.predicted_hist.assign(static_cast<std::size_t>(study.num_classes()), 0);
  for (std::size_t i = 0; i < test.size(); ++i) {
    if (r.predictions[i] == test[i].label) ++correct;
    ++r.actual_hist[static_cast<std::size_t>(test[i].label)];
    ++r.predicted_hist[static_cast<std::size_t>(r.predictions[i])];
  }
  r.test_accuracy = test.empty() ? 0.0 : static_cast<double>(correct) / static_cast<double>(test.size());
  if (!test.empty()) {
    std::vector<std::int32_t> actual(test.size());
    for (std::size_t i = 0; i < test.size(); ++i) actual[i] = test[i].label;
    r.test_macro_f1 = ml::macro_f1(actual, r.predictions, study.num_classes());
    r.label_js_divergence = ml::jensen_shannon_divergence(r.actual_hist, r.predicted_hist);
  }

  if (options.score_performance && !test.empty()) {
    r.normalized_perf = study.normalized_performance_batch(test, r.predictions);
    r.geomean_perf = geomean(r.normalized_perf);
    std::sort(r.normalized_perf.begin(), r.normalized_perf.end());
  }
  return r;
}

}  // namespace airch
