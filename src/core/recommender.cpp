#include "core/recommender.hpp"

#include <algorithm>
#include <fstream>
#include <numeric>
#include <stdexcept>

#include "common/check.hpp"

namespace airch {

Recommender::Recommender(const CaseStudy& study, std::unique_ptr<NeuralClassifier> model,
                         std::unique_ptr<FeatureEncoder> encoder)
    : study_(&study), model_(std::move(model)), encoder_(std::move(encoder)) {
  if (!model_ || !encoder_) throw std::invalid_argument("null model or encoder");
}

Recommender Recommender::train(const CaseStudy& study, const TrainOptions& options) {
  Dataset data = study.generate(options.dataset_size, options.seed);
  Rng rng(options.seed ^ 0xA5A5A5A5ULL);
  data.shuffle(rng);
  auto [train, val] = data.split(options.train_frac);

  auto encoder = std::make_unique<FeatureEncoder>(train);
  auto model = make_airchitect(options.seed, options.epochs);
  auto history = model->fit(train, val, *encoder);

  Recommender rec(study, std::move(model), std::move(encoder));
  rec.report_.history = std::move(history);
  rec.report_.val_accuracy =
      rec.report_.history.empty() ? 0.0 : rec.report_.history.back().val_accuracy;
  return rec;
}

std::int32_t Recommender::recommend_label(const std::vector<std::int64_t>& features) const {
  const auto proba = model_->predict_proba(features, *encoder_);
  std::size_t best = 0;
  for (std::size_t i = 1; i < proba.size(); ++i) {
    if (proba[i] > proba[best]) best = i;
  }
  return static_cast<std::int32_t>(best);
}

std::vector<std::int32_t> Recommender::recommend_batch(
    const std::vector<std::vector<std::int64_t>>& queries) const {
  return model_->predict_batch(queries, *encoder_);
}

std::vector<std::int32_t> Recommender::recommend_topk(
    const std::vector<std::int64_t>& features, int k) const {
  // An out-of-range k is a caller bug, not a preference: silently clamping
  // k=0 to 1 (the old behavior) hid wrong --topk plumbing, and k beyond the
  // output space cannot mean anything. Reject both loudly.
  AIRCH_CHECK(k >= 1, "recommend_topk: k must be >= 1");
  AIRCH_CHECK(k <= study_->num_classes(),
              "recommend_topk: k exceeds the output-space size");
  const auto proba = model_->predict_proba(features, *encoder_);
  std::vector<std::int32_t> labels(proba.size());
  std::iota(labels.begin(), labels.end(), 0);
  const auto kk = std::min<std::size_t>(static_cast<std::size_t>(k), labels.size());
  std::partial_sort(labels.begin(), labels.begin() + static_cast<std::ptrdiff_t>(kk),
                    labels.end(), [&](std::int32_t a, std::int32_t b) {
                      return proba[static_cast<std::size_t>(a)] >
                             proba[static_cast<std::size_t>(b)];
                    });
  labels.resize(kk);
  return labels;
}

void Recommender::save(const std::string& path) const {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("cannot open for writing: " + path);
  os << "airchitect-recommender v1\n";
  os << static_cast<int>(study_->id()) << ' ' << study_->num_classes() << '\n';
  // max_digits10 = 17 so the double round-trips exactly; the default
  // 6-digit formatting silently degraded val_accuracy on reload.
  os.precision(17);
  os << report_.val_accuracy << '\n';
  model_->save(os);
  encoder_->save(os);
  if (!os) throw std::runtime_error("write failed: " + path);
}

Recommender Recommender::load(const std::string& path, const CaseStudy& study) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("cannot open for reading: " + path);
  std::string magic, version;
  if (!(is >> magic >> version) || magic != "airchitect-recommender" || version != "v1") {
    throw std::runtime_error("bad recommender header");
  }
  int case_id = 0, classes = 0;
  double val_acc = 0.0;
  if (!(is >> case_id >> classes >> val_acc)) throw std::runtime_error("bad recommender metadata");
  if (case_id != static_cast<int>(study.id()) || classes != study.num_classes()) {
    throw std::runtime_error("recommender was trained for a different case study");
  }
  auto model = NeuralClassifier::load(is);
  auto encoder = std::make_unique<FeatureEncoder>(FeatureEncoder::load(is));
  Recommender rec(study, std::move(model), std::move(encoder));
  rec.report_.val_accuracy = val_acc;
  return rec;
}

ArrayConfig Recommender::recommend_array(const GemmWorkload& w, int budget_exp) const {
  const auto* study = dynamic_cast<const ArrayDataflowStudy*>(study_);
  if (!study) throw std::logic_error("recommender was not trained for case study 1");
  const std::int32_t label = recommend_label({budget_exp, w.m, w.n, w.k});
  return study->space().config(label);
}

MemoryConfig Recommender::recommend_buffers(std::int64_t limit_kb, const GemmWorkload& w,
                                            const ArrayConfig& array,
                                            std::int64_t bandwidth) const {
  const auto* study = dynamic_cast<const BufferSizingStudy*>(study_);
  if (!study) throw std::logic_error("recommender was not trained for case study 2");
  const std::int32_t label = recommend_label({limit_kb, w.m, w.n, w.k, array.rows, array.cols,
                                              dataflow_index(array.dataflow), bandwidth});
  MemoryConfig mem = study->space().config(label);
  mem.bandwidth = bandwidth;
  return mem;
}

ScheduleSpace::Schedule Recommender::recommend_schedule(
    const std::vector<GemmWorkload>& workloads) const {
  const auto* study = dynamic_cast<const SchedulingStudy*>(study_);
  if (!study) throw std::logic_error("recommender was not trained for case study 3");
  std::vector<std::int64_t> features;
  features.reserve(workloads.size() * 3);
  for (const auto& w : workloads) {
    features.push_back(w.m);
    features.push_back(w.n);
    features.push_back(w.k);
  }
  return study->space().config(recommend_label(features));
}

}  // namespace airch
