#pragma once
// Case-study bindings: each of the paper's three DSE problems packaged as
// (output space, dataset generator, prediction scorer). The scorer
// re-simulates a predicted configuration and normalizes its achieved
// performance against the search optimum — the metric behind the paper's
// Fig. 10(g, h) misprediction-penalty analysis.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "dataset/dataset.hpp"
#include "dataset/generator.hpp"
#include "search/exhaustive.hpp"
#include "search/space.hpp"
#include "sim/simulator.hpp"

namespace airch {

enum class CaseId { kArrayDataflow = 1, kBufferSizing = 2, kScheduling = 3 };

const char* case_name(CaseId id);

/// One case study: owns its spaces/simulator/labelling cache and exposes
/// generation and prediction scoring. Thread-compatible (const after
/// construction; the labelling cache is internally synchronized).
class CaseStudy {
 public:
  virtual ~CaseStudy() = default;

  virtual CaseId id() const = 0;
  virtual int num_classes() const = 0;

  /// Search-labelled dataset of `n` points (paper Step 3). Exactly
  /// generate_range(0, n, seed).
  Dataset generate(std::size_t n, std::uint64_t seed) const {
    return generate_range(0, n, seed);
  }

  /// Points [begin, end) of the full run keyed by `seed` — the sharding
  /// contract of dataset/generator.hpp: concatenating contiguous ranges
  /// in order is byte-identical to one generate(n, seed) call. All ranges
  /// label through the study's persistent cache, so they share warmth.
  virtual Dataset generate_range(std::size_t begin, std::size_t end,
                                 std::uint64_t seed) const = 0;

  /// Persists the labelling cache (search/sweep_cache.hpp snapshot
  /// format) so the next run starts warm.
  [[nodiscard]] virtual SnapshotStats save_cache_snapshot(const std::string& path) const = 0;
  /// Restores a snapshot; throws ContractViolation on version/case/
  /// fingerprint/checksum mismatch, leaving the cache untouched (callers
  /// catch and fall back to cold).
  [[nodiscard]] virtual SnapshotStats load_cache_snapshot(const std::string& path) const = 0;
  /// Labelling-cache counters (case 3 reports the per-vector level).
  [[nodiscard]] virtual CacheStats cache_stats() const = 0;

  /// Achieved performance of predicted label on one point, normalized to
  /// the optimum: 1.0 = matches the search optimum, <1.0 = slower.
  virtual double normalized_performance(const DataPoint& point,
                                        std::int32_t predicted) const = 0;

  /// Normalized performance for a full test set (parallelized).
  std::vector<double> normalized_performance_batch(const Dataset& test,
                                                   const std::vector<std::int32_t>& preds) const;
};

// Concrete case studies. Construction parameters default to the paper's.

class ArrayDataflowStudy final : public CaseStudy {
 public:
  explicit ArrayDataflowStudy(Case1Config cfg = {}, int max_macs_exp = 18);

  CaseId id() const override { return CaseId::kArrayDataflow; }
  int num_classes() const override { return space_.size(); }
  Dataset generate_range(std::size_t begin, std::size_t end, std::uint64_t seed) const override;
  [[nodiscard]] SnapshotStats save_cache_snapshot(const std::string& path) const override;
  [[nodiscard]] SnapshotStats load_cache_snapshot(const std::string& path) const override;
  [[nodiscard]] CacheStats cache_stats() const override;
  double normalized_performance(const DataPoint& point, std::int32_t predicted) const override;

  const ArrayDataflowSpace& space() const { return space_; }
  const Simulator& simulator() const { return sim_; }

 private:
  Case1Config cfg_;
  ArrayDataflowSpace space_;
  Simulator sim_;
  std::unique_ptr<Case1SweepCache> cache_;
};

class BufferSizingStudy final : public CaseStudy {
 public:
  explicit BufferSizingStudy(Case2Config cfg = {});

  CaseId id() const override { return CaseId::kBufferSizing; }
  int num_classes() const override { return space_.size(); }
  Dataset generate_range(std::size_t begin, std::size_t end, std::uint64_t seed) const override;
  [[nodiscard]] SnapshotStats save_cache_snapshot(const std::string& path) const override;
  [[nodiscard]] SnapshotStats load_cache_snapshot(const std::string& path) const override;
  [[nodiscard]] CacheStats cache_stats() const override;
  double normalized_performance(const DataPoint& point, std::int32_t predicted) const override;

  const BufferSizeSpace& space() const { return space_; }
  const Simulator& simulator() const { return sim_; }

 private:
  Case2Config cfg_;
  BufferSizeSpace space_;
  Simulator sim_;
  std::unique_ptr<Case2SweepCache> cache_;
};

class SchedulingStudy final : public CaseStudy {
 public:
  explicit SchedulingStudy(Case3Config cfg = {}, int num_arrays = 4);

  CaseId id() const override { return CaseId::kScheduling; }
  int num_classes() const override { return space_.size(); }
  Dataset generate_range(std::size_t begin, std::size_t end, std::uint64_t seed) const override;
  [[nodiscard]] SnapshotStats save_cache_snapshot(const std::string& path) const override;
  [[nodiscard]] SnapshotStats load_cache_snapshot(const std::string& path) const override;
  [[nodiscard]] CacheStats cache_stats() const override;
  double normalized_performance(const DataPoint& point, std::int32_t predicted) const override;

  const ScheduleSpace& space() const { return space_; }
  const ScheduleSearch& search() const { return search_; }
  const Simulator& simulator() const { return sim_; }

 private:
  Case3Config cfg_;
  ScheduleSpace space_;
  Simulator sim_;
  ScheduleSearch search_;
  std::unique_ptr<Case3SweepCache> cache_;
};

/// Factory by case id with default (paper) parameters.
std::unique_ptr<CaseStudy> make_case_study(CaseId id);

}  // namespace airch
