#pragma once
// The paper's headline artifact: a constant-time learned optimizer.
// A Recommender owns a trained AIRCHITECT network plus the feature
// encoder and output space needed to answer design queries in one
// inference (Fig. 1(b), Step 1') — no simulation, no search.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/case_study.hpp"
#include "models/neural.hpp"

namespace airch {

struct RecommenderTrainOptions {
  std::size_t dataset_size = 50000;
  std::uint64_t seed = 42;
  int epochs = 15;
  double train_frac = 0.9;  ///< remainder is validation
};

class Recommender {
 public:
  using TrainOptions = RecommenderTrainOptions;

  struct TrainReport {
    std::vector<EpochStats> history;
    double val_accuracy = 0.0;
  };

  /// Trains an AIRCHITECT model for `study` on freshly generated data.
  /// `study` must outlive the recommender.
  static Recommender train(const CaseStudy& study, const TrainOptions& options = {});

  /// Wraps an already-fitted classifier (ownership transferred).
  Recommender(const CaseStudy& study, std::unique_ptr<NeuralClassifier> model,
              std::unique_ptr<FeatureEncoder> encoder);

  /// Raw constant-time query: feature vector -> output-space label.
  std::int32_t recommend_label(const std::vector<std::int64_t>& features) const;

  /// Batched serving query: labels for N feature vectors via ONE packed
  /// forward pass. Equivalent to mapping recommend_label over `queries`
  /// but amortizes the per-call network overhead across the batch
  /// (bench/bench_train_throughput.cpp measures the gap).
  std::vector<std::int32_t> recommend_batch(
      const std::vector<std::vector<std::int64_t>>& queries) const;

  /// Top-k labels by predicted probability, most likely first. Useful for
  /// the hybrid mode: recommend k candidates, re-rank them with k cheap
  /// simulations instead of a full search.
  std::vector<std::int32_t> recommend_topk(const std::vector<std::int64_t>& features,
                                           int k) const;

  /// Persistence: a saved recommender can be reloaded and queried without
  /// regenerating data or retraining.
  void save(const std::string& path) const;
  /// `study` must be the same case study (id and output-space size are
  /// verified) and must outlive the recommender.
  static Recommender load(const std::string& path, const CaseStudy& study);

  /// Typed queries; each checks that the underlying study matches.
  ArrayConfig recommend_array(const GemmWorkload& w, int budget_exp) const;
  MemoryConfig recommend_buffers(std::int64_t limit_kb, const GemmWorkload& w,
                                 const ArrayConfig& array, std::int64_t bandwidth) const;
  ScheduleSpace::Schedule recommend_schedule(const std::vector<GemmWorkload>& workloads) const;

  const TrainReport& report() const { return report_; }
  const CaseStudy& study() const { return *study_; }
  /// Feature arity the model was fitted with (serving-side request
  /// validation: reject a wrong-arity query before it joins a packed batch).
  int num_features() const { return encoder_->num_features(); }

 private:
  const CaseStudy* study_;
  std::unique_ptr<NeuralClassifier> model_;
  std::unique_ptr<FeatureEncoder> encoder_;
  TrainReport report_;
};

}  // namespace airch
