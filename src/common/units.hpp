#pragma once
// Compile-time dimensional analysis for the cost models.
//
// Every number the search pipeline optimizes over is a physical quantity —
// cycles, bytes moved, picojoules — and the search labels (paper Figs. 5/8)
// are argmins over those quantities. A silent unit mix-up (cycles added to
// bytes, pJ scaled as nJ) corrupts every downstream dataset and trained
// recommender without failing a single runtime test. `Quantity<Tag, Rep>`
// moves that failure mode to compile time:
//
//   * same-dimension arithmetic (Cycles + Cycles, Bytes - Bytes) works;
//   * cross-dimension arithmetic (Cycles + Bytes) does not compile;
//   * construction from a raw number is explicit (`Cycles{38}`), never
//     implicit, so a bare double cannot sneak into the type system;
//   * the only way OUT of the type system is `.value()` — the repo linter
//     (tools/lint_airch.cpp, rule `value-escape`) confines those calls to
//     the serialization/ML boundary (src/dataset/, src/ml/, common/csv)
//     unless a site carries an explicit `// airch-lint: allow(value-escape)`
//     justification;
//   * dimensioned products are declared one relation at a time below
//     (MacCount x EnergyPerMac -> Picojoules, Bytes / BytesPerCycle ->
//     Cycles), so "MACs times pJ-per-byte" is rejected at compile time.
//
// The wrapper is guaranteed zero-overhead: the static_asserts at the bottom
// of this header pin sizeof(Quantity) == sizeof(Rep) and trivial
// copy/destroy semantics, so the hot search loops (exhaustive argmin over
// hundreds of labels per sample) keep their codegen.
//
// tests/compile_fail/ holds snippets that must NOT compile, driven by CTest
// (tests/CMakeLists.txt) — the proof that the forbidden operations above
// are actually rejected rather than merely frowned upon.

#include <cstdint>
#include <ostream>
#include <type_traits>

#include "common/math_utils.hpp"

namespace airch {

/// A strongly-typed quantity of dimension `Tag` stored as `Rep`.
/// `Tag::unit` supplies the suffix used when streaming diagnostics.
template <typename Tag, typename Rep>
class Quantity {
  static_assert(std::is_arithmetic_v<Rep>, "Quantity wraps a numeric representation");

 public:
  using rep = Rep;
  using tag = Tag;

  constexpr Quantity() = default;
  explicit constexpr Quantity(Rep v) : v_(v) {}

  /// The raw number, shedding the dimension. This is the escape hatch for
  /// CSV/ML boundaries; library code elsewhere must justify each call with
  /// `// airch-lint: allow(value-escape)`.
  constexpr Rep value() const { return v_; }

  // Same-dimension arithmetic.
  [[nodiscard]] friend constexpr Quantity operator+(Quantity a, Quantity b) { return Quantity{a.v_ + b.v_}; }
  [[nodiscard]] friend constexpr Quantity operator-(Quantity a, Quantity b) { return Quantity{a.v_ - b.v_}; }
  [[nodiscard]] constexpr Quantity operator-() const { return Quantity{-v_}; }
  constexpr Quantity& operator+=(Quantity o) {
    v_ += o.v_;
    return *this;
  }
  constexpr Quantity& operator-=(Quantity o) {
    v_ -= o.v_;
    return *this;
  }
  /// Adds one unit (event counters in the trace simulator).
  constexpr Quantity& operator++() {
    ++v_;
    return *this;
  }

  // Scaling by a dimensionless count. `Rep` is a non-deduced parameter of a
  // hidden friend, so plain `int` literals convert; another Quantity never
  // does (its conversion to Rep is explicit-only via value()).
  [[nodiscard]] friend constexpr Quantity operator*(Quantity a, Rep s) { return Quantity{a.v_ * s}; }
  [[nodiscard]] friend constexpr Quantity operator*(Rep s, Quantity a) { return Quantity{s * a.v_}; }
  [[nodiscard]] friend constexpr Quantity operator/(Quantity a, Rep s) { return Quantity{a.v_ / s}; }
  constexpr Quantity& operator*=(Rep s) {
    v_ *= s;
    return *this;
  }

  /// Ratio of two like quantities is dimensionless (speedups, normalized
  /// performance, Metropolis deltas) — always computed in double.
  friend constexpr double operator/(Quantity a, Quantity b) {
    return static_cast<double>(a.v_) / static_cast<double>(b.v_);
  }

  friend constexpr bool operator==(Quantity, Quantity) = default;
  friend constexpr auto operator<=>(Quantity, Quantity) = default;

  friend std::ostream& operator<<(std::ostream& os, Quantity q) {
    os << q.v_;
    if (Tag::unit[0] != '\0') os << ' ' << Tag::unit;
    return os;
  }

 private:
  Rep v_{};
};

// ------------------------------------------------------------------ tags

struct CyclesTag {
  static constexpr const char unit[] = "cyc";
};
struct BytesTag {
  static constexpr const char unit[] = "B";
};
struct PicojoulesTag {
  static constexpr const char unit[] = "pJ";
};
struct MacCountTag {
  static constexpr const char unit[] = "MACs";
};
struct UtilizationTag {  // dimensionless fraction of peak throughput
  static constexpr const char unit[] = "";
};
struct EnergyPerMacTag {
  static constexpr const char unit[] = "pJ/MAC";
};
struct EnergyPerByteTag {
  static constexpr const char unit[] = "pJ/B";
};
struct BytesPerCycleTag {
  static constexpr const char unit[] = "B/cyc";
};

using Cycles = Quantity<CyclesTag, std::int64_t>;
using Bytes = Quantity<BytesTag, std::int64_t>;
using Picojoules = Quantity<PicojoulesTag, double>;
using MacCount = Quantity<MacCountTag, std::int64_t>;
using Utilization = Quantity<UtilizationTag, double>;
using EnergyPerMac = Quantity<EnergyPerMacTag, double>;
using EnergyPerByte = Quantity<EnergyPerByteTag, double>;
using BytesPerCycle = Quantity<BytesPerCycleTag, std::int64_t>;

// ------------------------------------------- declared dimension products
//
// Each relation the cost models rely on is spelled out once; anything not
// listed here (Bytes * EnergyPerMac, Cycles * Cycles, ...) is a compile
// error. Products are commutative, so both orders are provided.

/// MACs executed x energy per MAC = compute energy.
[[nodiscard]] constexpr Picojoules operator*(MacCount n, EnergyPerMac e) {
  return Picojoules{static_cast<double>(n.value()) * e.value()};
}
[[nodiscard]] constexpr Picojoules operator*(EnergyPerMac e, MacCount n) { return n * e; }

/// Bytes moved x energy per byte = data-movement energy.
[[nodiscard]] constexpr Picojoules operator*(Bytes b, EnergyPerByte e) {
  return Picojoules{static_cast<double>(b.value()) * e.value()};
}
[[nodiscard]] constexpr Picojoules operator*(EnergyPerByte e, Bytes b) { return b * e; }

/// Cycles to transfer `b` bytes over a `bw` interface, rounded up (a
/// partially-filled beat still occupies the bus for a full cycle).
[[nodiscard]] constexpr Cycles ceil_div(Bytes b, BytesPerCycle bw) {
  return Cycles{ceil_div(b.value(), bw.value())};
}

/// Ceiling ratio of two like integer quantities — a dimensionless count
/// (e.g. how many times an over-budget design must be time-multiplexed).
template <typename Tag>
constexpr std::int64_t ceil_div(Quantity<Tag, std::int64_t> a, Quantity<Tag, std::int64_t> b) {
  return ceil_div(a.value(), b.value());
}

// -------------------------------------------------- zero-overhead proofs
//
// The hot search loops iterate these by value millions of times; any hidden
// vtable, padding, or non-trivial copy would show up as a regression. Pin
// the layout and triviality so a future "helpful" change breaks the build
// instead of the benchmarks.

template <typename Q>
inline constexpr bool kQuantityIsTransparent =
    sizeof(Q) == sizeof(typename Q::rep) && std::is_trivially_copyable_v<Q> &&
    std::is_trivially_destructible_v<Q> && std::is_standard_layout_v<Q>;

static_assert(kQuantityIsTransparent<Cycles>);
static_assert(kQuantityIsTransparent<Bytes>);
static_assert(kQuantityIsTransparent<Picojoules>);
static_assert(kQuantityIsTransparent<MacCount>);
static_assert(kQuantityIsTransparent<Utilization>);
static_assert(kQuantityIsTransparent<EnergyPerMac>);
static_assert(kQuantityIsTransparent<EnergyPerByte>);
static_assert(kQuantityIsTransparent<BytesPerCycle>);

// A raw double must never silently become (or come from) a quantity.
static_assert(!std::is_convertible_v<double, Picojoules>);
static_assert(!std::is_convertible_v<Picojoules, double>);
static_assert(!std::is_convertible_v<std::int64_t, Cycles>);
static_assert(!std::is_convertible_v<Cycles, std::int64_t>);
// Dimensions must never cross-convert.
static_assert(!std::is_convertible_v<Cycles, Bytes>);
static_assert(!std::is_constructible_v<Cycles, Bytes>);

}  // namespace airch
