#pragma once
// Checksummed little-endian binary stream primitives, shared by the
// sweep-cache snapshot format (search/sweep_cache) and the binary dataset
// format (dataset/binary_io). Both formats follow the same discipline:
//
//   header (magic, format version, identity fields, counts)
//   payload (fixed-width little-endian records)
//   trailer (64-bit checksum over every byte written before it)
//
// The writer folds the stream into a running word-folded FNV digest as it
// goes; put_trailer_checksum() appends the digest. The reader recomputes
// the digest over every byte it consumes; verify_trailer_checksum() reads
// the stored digest and compares. The stream is consumed as little-endian
// 64-bit words (a trailing partial word is zero-extended, and the total
// byte length is folded in last); each step h' = (h ^ w) * prime is a
// bijection of the running state for a fixed word and injective in the
// word for a fixed state, so ANY single-byte substitution anywhere in the
// stream changes the final digest — the property the corrupt-input tests
// (flip every byte, expect a throw) rely on. Word folding matters for
// throughput: the xor-multiply chain is serial, so folding 8 bytes per
// multiply is ~8x the bandwidth of the byte-at-a-time classic — it is
// what keeps the checksum off the critical path of multi-million-point
// dataset writes.
//
// Corruption — truncation, a failed bounds check, a checksum mismatch —
// always surfaces as a thrown airch::ContractViolation (AIRCH_CHECK),
// never as UB or a silently short read. Callers that must not observe a
// partial load (cache snapshot restore) stage the decoded payload and
// apply it only after verify_trailer_checksum() passes.
//
// Encoding is explicit little-endian (byte shifts, not memcpy), so files
// are portable across hosts; doubles travel as their IEEE-754 bit
// pattern, which keeps round-trips bit-exact.

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <string>

namespace airch {

/// Running 64-bit word-folded FNV digest over a byte stream. The digest
/// depends only on the byte sequence, never on how update() calls chunk
/// it: partial words are buffered until 8 bytes accumulate, and digest()
/// folds any still-pending tail (zero-extended) plus the total length
/// without disturbing the running state.
class ByteChecksum {
 public:
  void update(const unsigned char* data, std::size_t n) {
    len_ += n;
    if (npend_ > 0) {
      while (npend_ < 8 && n > 0) {
        pend_[npend_++] = *data++;
        --n;
      }
      if (npend_ < 8) return;
      h_ = fold(h_, load_le(pend_));
      npend_ = 0;
    }
    std::uint64_t h = h_;
    for (; n >= 8; data += 8, n -= 8) {
      h = fold(h, load_le(data));
    }
    h_ = h;
    while (n > 0) {
      pend_[npend_++] = *data++;
      --n;
    }
  }
  [[nodiscard]] std::uint64_t digest() const {
    std::uint64_t h = h_;
    if (npend_ > 0) {
      std::uint64_t w = 0;
      for (int i = 0; i < npend_; ++i) {
        w |= static_cast<std::uint64_t>(pend_[i]) << (8 * i);
      }
      h = fold(h, w);
    }
    // Folding the length last distinguishes a genuine trailing zero byte
    // from no byte at all (both leave w's top lanes zero).
    return fold(h, len_);
  }

 private:
  static std::uint64_t fold(std::uint64_t h, std::uint64_t w) { return (h ^ w) * 0x100000001B3ULL; }
  static std::uint64_t load_le(const unsigned char* p) {
    std::uint64_t w = 0;
    for (int i = 0; i < 8; ++i) {
      w |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    }
    return w;
  }

  std::uint64_t h_ = 0xCBF29CE484222325ULL;
  std::uint64_t len_ = 0;
  unsigned char pend_[8] = {};
  int npend_ = 0;
};

/// Buffered little-endian writer with a running checksum.
/// Throws std::runtime_error if the file cannot be opened; finish()
/// (also run by the destructor) AIRCH_CHECKs that every write reached the
/// stream, so a full disk cannot produce a silently short file.
class BinWriter {
 public:
  explicit BinWriter(const std::string& path);
  ~BinWriter();
  BinWriter(const BinWriter&) = delete;
  BinWriter& operator=(const BinWriter&) = delete;

  void put_u32(std::uint32_t v);
  void put_u64(std::uint64_t v);
  void put_i32(std::int32_t v) { put_u32(static_cast<std::uint32_t>(v)); }
  void put_i64(std::int64_t v) { put_u64(static_cast<std::uint64_t>(v)); }
  /// IEEE-754 bit pattern; round-trips bit-exactly through get_f64().
  void put_f64(double v);
  void put_bytes(const void* data, std::size_t n);

  /// Digest over every byte written so far.
  [[nodiscard]] std::uint64_t checksum() const { return sum_.digest(); }

  /// Appends the current digest as the (non-self-folded) trailer.
  void put_trailer_checksum();

  /// Flushes and verifies the stream; safe to call more than once.
  void finish();

 private:
  std::ofstream out_;
  std::string path_;
  ByteChecksum sum_;
  bool finished_ = false;
};

/// Little-endian reader with a running checksum and hard truncation
/// checks: every get_* AIRCH_CHECKs that the requested bytes exist.
class BinReader {
 public:
  explicit BinReader(const std::string& path);

  [[nodiscard]] std::uint32_t get_u32();
  [[nodiscard]] std::uint64_t get_u64();
  [[nodiscard]] std::int32_t get_i32() { return static_cast<std::int32_t>(get_u32()); }
  [[nodiscard]] std::int64_t get_i64() { return static_cast<std::int64_t>(get_u64()); }
  [[nodiscard]] double get_f64();
  void get_bytes(void* out, std::size_t n);
  /// Consumes `n` bytes (folding them into the checksum) without storing.
  void skip_bytes(std::uint64_t n);

  /// Digest over every byte consumed since construction / reset_checksum().
  [[nodiscard]] std::uint64_t checksum() const { return sum_.digest(); }

  /// Reads the trailer digest and AIRCH_CHECKs it equals the running one.
  void verify_trailer_checksum();

  [[nodiscard]] std::uint64_t file_size() const { return size_; }
  [[nodiscard]] std::uint64_t tell() const { return pos_; }
  /// Bytes between the cursor and end-of-file — the bound every count or
  /// length field read from the stream must be validated against before
  /// any allocation sized from it.
  [[nodiscard]] std::uint64_t remaining() const { return size_ - pos_; }

  /// Repositions the cursor (absolute) and resets the running checksum —
  /// used by streaming readers that validate the whole file once and then
  /// re-serve regions of it.
  void seek(std::uint64_t pos);

 private:
  std::ifstream in_;
  std::string path_;
  ByteChecksum sum_;
  std::uint64_t size_ = 0;
  std::uint64_t pos_ = 0;
};

}  // namespace airch
