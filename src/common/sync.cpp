#include "common/sync.hpp"

#include <algorithm>
#include <vector>

namespace airch::detail {

namespace {

struct HeldLock {
  const void* mu;
  int rank;
};

// Per-thread held-lock stack. Function-local so the vector is constructed
// on first use per thread (safe during static init of other TUs). Pushes
// enforce strictly increasing rank, so the stack is always sorted and its
// back() is the maximum held rank.
std::vector<HeldLock>& held_stack() {
  thread_local std::vector<HeldLock> stack;
  return stack;
}

}  // namespace

void lock_rank_acquire(const void* mu, int rank) {
  std::vector<HeldLock>& stack = held_stack();
  for (const HeldLock& held : stack) {
    AIRCH_CHECK(held.mu != mu,
                "lock-rank registry: re-acquiring a mutex this thread already holds "
                "(self-deadlock on std::mutex, UB on std::shared_mutex)");
  }
  if (!stack.empty()) {
    AIRCH_CHECK(rank > stack.back().rank,
                "lock-rank inversion: acquiring a mutex whose rank is not strictly above "
                "every lock already held — see the ordinal table in common/sync.hpp and "
                "docs/static_analysis.md");
  }
  stack.push_back({mu, rank});
}

void lock_rank_release(const void* mu) {
  std::vector<HeldLock>& stack = held_stack();
  // Releases are usually LIFO (RAII), so search from the top; CondVar
  // waits and out-of-order manual releases still resolve via the scan.
  const auto it = std::find_if(stack.rbegin(), stack.rend(),
                               [mu](const HeldLock& held) { return held.mu == mu; });
  AIRCH_CHECK(it != stack.rend(),
              "lock-rank registry: releasing a mutex this thread does not hold");
  stack.erase(std::next(it).base());
}

std::size_t locks_held_by_this_thread() { return held_stack().size(); }

}  // namespace airch::detail
