#include "common/rng.hpp"

#include <cmath>
#include <numeric>

#include "common/check.hpp"
#include "common/math_utils.hpp"

namespace airch {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

void Rng::reseed(std::uint64_t seed) {
  for (auto& s : s_) s = splitmix64(seed);
  have_cached_normal_ = false;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  AIRCH_ASSERT(lo <= hi);
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(next_u64());  // full 64-bit range
  // Rejection sampling to remove modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % range;
  std::uint64_t r;
  do {
    r = next_u64();
  } while (r >= limit);
  return lo + static_cast<std::int64_t>(r % range);
}

double Rng::uniform() {
  // 53 random bits -> [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

double Rng::normal() {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  have_cached_normal_ = true;
  return r * std::cos(theta);
}

std::int64_t Rng::log_uniform_int(std::int64_t lo, std::int64_t hi) {
  AIRCH_ASSERT(lo >= 1 && lo <= hi);
  const double llo = std::log(static_cast<double>(lo));
  const double lhi = std::log(static_cast<double>(hi) + 1.0);
  const auto v = static_cast<std::int64_t>(std::exp(uniform(llo, lhi)));
  return clamp_i64(v, lo, hi);
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  AIRCH_ASSERT(!weights.empty());
  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  AIRCH_ASSERT(total > 0.0);
  double r = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r <= 0.0) return i;
  }
  return weights.size() - 1;
}

}  // namespace airch
