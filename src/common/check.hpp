#pragma once
// Debug contract macros. Policy (see docs/static_analysis.md):
//
//   AIRCH_CHECK(cond, msg)   always on, throws airch::ContractViolation.
//                            Use at API boundaries where a caller mistake
//                            must be caught even in Release.
//   AIRCH_ASSERT(cond)       internal invariant. Active when NDEBUG is not
//                            defined (Debug and all sanitizer presets);
//                            compiled out in Release. When compiled out the
//                            condition is NOT evaluated, so it must be free
//                            of side effects.
//   AIRCH_DCHECK(cond, msg)  like AIRCH_ASSERT but carries a message.
//
// Violations throw instead of aborting so tests can observe them and so a
// serving process can turn a contract failure into a failed request rather
// than a crash. The sanitizer presets build without NDEBUG, which means
// every AIRCH_ASSERT is live under ASan/UBSan/TSan.

#include <stdexcept>
#include <string>

namespace airch {

/// Thrown by AIRCH_CHECK / AIRCH_ASSERT / AIRCH_DCHECK on failure.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] void contract_fail(const char* kind, const char* expr, const char* file, int line,
                                const char* msg);
/// Overload for composed messages (e.g. a literal + a file path); the
/// macros pick it up by ordinary overload resolution.
[[noreturn]] void contract_fail(const char* kind, const char* expr, const char* file, int line,
                                const std::string& msg);

}  // namespace detail
}  // namespace airch

#define AIRCH_CHECK(cond, msg)                                                   \
  do {                                                                           \
    if (!(cond)) {                                                               \
      ::airch::detail::contract_fail("CHECK", #cond, __FILE__, __LINE__, (msg)); \
    }                                                                            \
  } while (false)

#ifdef NDEBUG
// Release: no-op, condition not evaluated (guaranteed — relied upon by
// tests/test_check.cpp). The sizeof trick keeps the expression
// syntactically checked so Release-only bit-rot is still a compile error.
#define AIRCH_ASSERT(cond) static_cast<void>(sizeof((cond) ? 1 : 0))
#define AIRCH_DCHECK(cond, msg) static_cast<void>(sizeof((cond) ? 1 : 0))
#else
#define AIRCH_ASSERT(cond)                                                           \
  do {                                                                              \
    if (!(cond)) {                                                                  \
      ::airch::detail::contract_fail("ASSERT", #cond, __FILE__, __LINE__, nullptr); \
    }                                                                               \
  } while (false)
#define AIRCH_DCHECK(cond, msg)                                                    \
  do {                                                                             \
    if (!(cond)) {                                                                 \
      ::airch::detail::contract_fail("DCHECK", #cond, __FILE__, __LINE__, (msg));  \
    }                                                                              \
  } while (false)
#endif
