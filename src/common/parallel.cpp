#include "common/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <limits>
#include <thread>
#include <vector>

#include "common/check.hpp"

namespace airch {

namespace {

// Below this trip count the auto-sized overload runs inline: thread spawn
// cost dwarfs the work.
constexpr std::size_t kInlineThreshold = 256;

// Dynamic scheduling aims for this many chunks per worker: enough
// granularity to absorb an order-of-magnitude per-item cost skew, few
// enough that the atomic fetch_add stays invisible next to the work.
constexpr std::size_t kChunksPerWorker = 8;

}  // namespace

unsigned hardware_threads() {
  if (const char* env = std::getenv("AIRCH_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v >= 1 && v <= 1024) {
      return static_cast<unsigned>(v);
    }
  }
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

void parallel_for(std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  const unsigned workers = hardware_threads();
  if (workers <= 1 || n < kInlineThreshold) {
    fn(0, n);
    return;
  }
  const std::size_t chunk = std::max<std::size_t>(1, n / (workers * kChunksPerWorker));
  const std::size_t num_chunks = (n + chunk - 1) / chunk;
  const auto lanes =
      static_cast<unsigned>(std::min<std::size_t>(workers, num_chunks));
  std::atomic<std::size_t> next{0};
  // One error slot per lane, tagged with the chunk begin that threw.
  // Chunk begins are claimed in ascending order and a lane stops at its
  // first exception, so the globally lowest throwing chunk is always
  // executed (by a lane that has not thrown yet) and recorded — the
  // rethrow below is deterministic even under dynamic scheduling.
  struct WorkerError {
    std::size_t begin = std::numeric_limits<std::size_t>::max();
    std::exception_ptr error;
  };
  std::vector<WorkerError> errors(lanes);
  const auto run_lane = [&fn, &errors, &next, n, chunk](unsigned lane) {
    for (;;) {
      const std::size_t begin = next.fetch_add(chunk, std::memory_order_relaxed);
      if (begin >= n) break;
      try {
        fn(begin, std::min(n, begin + chunk));
      } catch (...) {
        errors[lane] = {begin, std::current_exception()};
        break;
      }
    }
  };
  // The calling thread is lane 0 and drains chunks alongside the spawned
  // lanes: it would otherwise idle in join() while having paid for a full
  // worker's spawn — on short regions the spawn/join overhead is a
  // measurable slice of the whole pass.
  std::vector<std::thread> threads;
  threads.reserve(lanes - 1);
  for (unsigned w = 1; w < lanes; ++w) {
    threads.emplace_back([&run_lane, w] { run_lane(w); });
  }
  run_lane(0);
  for (auto& t : threads) t.join();
  const WorkerError* first = nullptr;
  for (const auto& e : errors) {
    if (e.error && (first == nullptr || e.begin < first->begin)) first = &e;
  }
  if (first != nullptr) std::rethrow_exception(first->error);
}

void parallel_for(std::size_t n, unsigned workers,
                  const std::function<void(std::size_t, std::size_t)>& fn) {
  AIRCH_CHECK(workers >= 1, "parallel_for requires at least one worker");
  if (n == 0) return;
  workers = static_cast<unsigned>(std::min<std::size_t>(workers, n));
  if (workers == 1) {
    fn(0, n);
    return;
  }
  const std::size_t chunk = (n + workers - 1) / workers;
  std::vector<std::thread> threads;
  threads.reserve(workers);
  // One error slot per worker: slots are disjoint, so capture needs no
  // synchronization beyond join(). The lowest-chunk exception is rethrown.
  std::vector<std::exception_ptr> errors(workers);
  for (unsigned w = 0; w < workers; ++w) {
    const std::size_t begin = w * chunk;
    const std::size_t end = std::min(n, begin + chunk);
    if (begin >= end) break;
    threads.emplace_back([&fn, &errors, w, begin, end] {
      try {
        fn(begin, end);
      } catch (...) {
        errors[w] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

}  // namespace airch
