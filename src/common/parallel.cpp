#include "common/parallel.hpp"

#include <algorithm>
#include <thread>
#include <vector>

namespace airch {

unsigned hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

void parallel_for(std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  const unsigned workers = std::min<std::size_t>(hardware_threads(), n);
  if (workers <= 1 || n < 256) {
    fn(0, n);
    return;
  }
  const std::size_t chunk = (n + workers - 1) / workers;
  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) {
    const std::size_t begin = w * chunk;
    const std::size_t end = std::min(n, begin + chunk);
    if (begin >= end) break;
    threads.emplace_back([&fn, begin, end] { fn(begin, end); });
  }
  for (auto& t : threads) t.join();
}

}  // namespace airch
