#include "common/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <limits>
#include <thread>
#include <vector>

#include "common/check.hpp"
#include "common/sync.hpp"

namespace airch {

namespace {

// Below this trip count the auto-sized overload runs inline: thread spawn
// cost dwarfs the work.
constexpr std::size_t kInlineThreshold = 256;

// Dynamic scheduling aims for this many chunks per worker: enough
// granularity to absorb an order-of-magnitude per-item cost skew, few
// enough that the atomic fetch_add stays invisible next to the work.
constexpr std::size_t kChunksPerWorker = 8;

// First-exception slot shared by every lane of a parallel_for region.
// "First" means lowest chunk begin, not earliest in wall time: chunk
// begins are claimed in ascending order and a lane stops at its first
// exception, so the globally lowest throwing chunk is always executed by a
// lane that has not thrown yet and offered here — the rethrow is
// deterministic even under dynamic scheduling.
//
// The mutex ranks at lock_rank::kParallelError: a lane only touches the
// slot after its user callback has unwound, so no user-level lock can
// still be held and the acquisition is always rank-clean. Both methods are
// EXCLUDES(mu_) — callers never hold the slot lock.
class ErrorSlot {
 public:
  void offer(std::size_t begin, std::exception_ptr error) EXCLUDES(mu_) {
    const MutexLock lock(mu_);
    if (error_ == nullptr || begin < begin_) {
      begin_ = begin;
      error_ = std::move(error);
    }
  }

  void rethrow_if_any() EXCLUDES(mu_) {
    std::exception_ptr error;
    {
      const MutexLock lock(mu_);
      error = error_;
    }
    if (error) std::rethrow_exception(error);
  }

 private:
  Mutex mu_{lock_rank::kParallelError};
  std::size_t begin_ GUARDED_BY(mu_) = std::numeric_limits<std::size_t>::max();
  std::exception_ptr error_ GUARDED_BY(mu_);
};

}  // namespace

unsigned hardware_threads() {
  if (const char* env = std::getenv("AIRCH_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v >= 1 && v <= 1024) {
      return static_cast<unsigned>(v);
    }
  }
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

void parallel_for(std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  const unsigned workers = hardware_threads();
  if (workers <= 1 || n < kInlineThreshold) {
    fn(0, n);
    return;
  }
  const std::size_t chunk = std::max<std::size_t>(1, n / (workers * kChunksPerWorker));
  const std::size_t num_chunks = (n + chunk - 1) / chunk;
  const auto lanes =
      static_cast<unsigned>(std::min<std::size_t>(workers, num_chunks));
  // Lock-free chunk dispenser — the documented escape hatch, not a
  // capability: fetch_add is the whole protocol, and putting a mutex here
  // would serialize exactly the operation dynamic scheduling exists to
  // keep cheap. Everything with more than one field (the error slot) is
  // mutex-guarded.
  std::atomic<std::size_t> next{0};
  ErrorSlot error;
  const auto run_lane = [&fn, &error, &next, n, chunk] {
    for (;;) {
      const std::size_t begin = next.fetch_add(chunk, std::memory_order_relaxed);
      if (begin >= n) break;
      try {
        fn(begin, std::min(n, begin + chunk));
      } catch (...) {
        error.offer(begin, std::current_exception());
        break;
      }
    }
  };
  // The calling thread is lane 0 and drains chunks alongside the spawned
  // lanes: it would otherwise idle in join() while having paid for a full
  // worker's spawn — on short regions the spawn/join overhead is a
  // measurable slice of the whole pass.
  std::vector<std::thread> threads;
  threads.reserve(lanes - 1);
  for (unsigned w = 1; w < lanes; ++w) {
    threads.emplace_back([&run_lane] { run_lane(); });
  }
  run_lane();
  for (auto& t : threads) t.join();
  error.rethrow_if_any();
}

void parallel_for(std::size_t n, unsigned workers,
                  const std::function<void(std::size_t, std::size_t)>& fn) {
  AIRCH_CHECK(workers >= 1, "parallel_for requires at least one worker");
  if (n == 0) return;
  workers = static_cast<unsigned>(std::min<std::size_t>(workers, n));
  if (workers == 1) {
    fn(0, n);
    return;
  }
  const std::size_t chunk = (n + workers - 1) / workers;
  std::vector<std::thread> threads;
  threads.reserve(workers);
  // Shared lowest-chunk slot: workers own disjoint static ranges, so the
  // begin-keyed offer() reproduces the old worker-order rethrow exactly.
  ErrorSlot error;
  for (unsigned w = 0; w < workers; ++w) {
    const std::size_t begin = w * chunk;
    const std::size_t end = std::min(n, begin + chunk);
    if (begin >= end) break;
    threads.emplace_back([&fn, &error, begin, end] {
      try {
        fn(begin, end);
      } catch (...) {
        error.offer(begin, std::current_exception());
      }
    });
  }
  for (auto& t : threads) t.join();
  error.rethrow_if_any();
}

}  // namespace airch
