#include "common/parallel.hpp"

#include <algorithm>
#include <cstdlib>
#include <exception>
#include <thread>
#include <vector>

#include "common/check.hpp"

namespace airch {

namespace {

// Below this trip count the auto-sized overload runs inline: thread spawn
// cost dwarfs the work.
constexpr std::size_t kInlineThreshold = 256;

}  // namespace

unsigned hardware_threads() {
  if (const char* env = std::getenv("AIRCH_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v >= 1 && v <= 1024) {
      return static_cast<unsigned>(v);
    }
  }
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

void parallel_for(std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  const unsigned workers = hardware_threads();
  if (workers <= 1 || n < kInlineThreshold) {
    fn(0, n);
    return;
  }
  parallel_for(n, workers, fn);
}

void parallel_for(std::size_t n, unsigned workers,
                  const std::function<void(std::size_t, std::size_t)>& fn) {
  AIRCH_CHECK(workers >= 1, "parallel_for requires at least one worker");
  if (n == 0) return;
  workers = static_cast<unsigned>(std::min<std::size_t>(workers, n));
  if (workers == 1) {
    fn(0, n);
    return;
  }
  const std::size_t chunk = (n + workers - 1) / workers;
  std::vector<std::thread> threads;
  threads.reserve(workers);
  // One error slot per worker: slots are disjoint, so capture needs no
  // synchronization beyond join(). The lowest-chunk exception is rethrown.
  std::vector<std::exception_ptr> errors(workers);
  for (unsigned w = 0; w < workers; ++w) {
    const std::size_t begin = w * chunk;
    const std::size_t end = std::min(n, begin + chunk);
    if (begin >= end) break;
    threads.emplace_back([&fn, &errors, w, begin, end] {
      try {
        fn(begin, end);
      } catch (...) {
        errors[w] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

}  // namespace airch
