#pragma once
// Minimal fork-join helpers. Dataset generation and exhaustive search are
// embarrassingly parallel; this keeps them fast without pulling in a task
// framework. The auto-sized overload hands out chunks dynamically from an
// atomic counter — labelling cost per item is wildly non-uniform once
// budget filtering and sweep caching are in play (src/search/sweep_cache),
// and static partitioning would leave workers idle behind the unluckiest
// chunk. The explicit-worker overload keeps static disjoint partitioning:
// the TSan stress suite relies on its deterministic chunk shapes.

#include <cstddef>
#include <functional>
#include <thread>  // airch-lint: allow(raw-thread) — this IS the threading layer
#include <utility>

namespace airch {

/// RAII thread for long-lived workers (the serving layer's dispatcher and
/// per-connection loops): joins on destruction instead of calling
/// std::terminate, so stack unwinding through a live worker is safe. The
/// `raw-thread` lint rule keeps std::thread out of library code; spawning
/// through this wrapper (or the parallel_for helpers below) is the
/// sanctioned alternative. The wrapped function must return on its own —
/// there is no interrupt; services signal their workers to stop, then let
/// the Thread destructor reap them.
class Thread {
 public:
  Thread() noexcept = default;
  explicit Thread(std::function<void()> fn) : t_(std::move(fn)) {}
  Thread(Thread&& other) noexcept = default;
  Thread& operator=(Thread&& other) {
    if (this != &other) {
      join();
      t_ = std::move(other.t_);
    }
    return *this;
  }
  Thread(const Thread&) = delete;
  Thread& operator=(const Thread&) = delete;
  ~Thread() { join(); }

  bool joinable() const noexcept { return t_.joinable(); }
  void join() {
    if (t_.joinable()) t_.join();
  }

 private:
  std::thread t_;  // airch-lint: allow(raw-thread)
};

/// Number of worker threads used by the auto-sized parallel_for (>= 1).
/// Honors the AIRCH_THREADS environment variable (1..1024) when set; this
/// is how concurrency tests force real threads on small machines and how
/// deployments pin the pool width. Falls back to hardware_concurrency().
unsigned hardware_threads();

/// Invokes fn(begin, end) on disjoint chunks covering [0, n), concurrently.
/// fn must be thread-safe across chunks. Runs inline when n is small.
/// Chunks are claimed dynamically from an atomic counter, so uneven
/// per-item costs self-balance; chunk begins are handed out in ascending
/// order. The calling thread drains chunks as one of the workers instead
/// of idling in join(). If any worker throws, the exception of the
/// lowest-begin throwing chunk is rethrown on the calling thread after
/// all workers have joined.
void parallel_for(std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn);

/// Static variant with an explicit worker count (>= 1): worker w gets the
/// single contiguous chunk [w * ceil(n/workers), ...). Always forks
/// `workers` threads (capped at n), even for tiny n — concurrency stress
/// tests rely on this to exercise real thread interleavings regardless of
/// core count, and on the deterministic chunk shapes. Nesting is allowed:
/// an inner parallel_for simply spawns its own workers. If any worker
/// throws, the lowest chunk's exception is rethrown after all join.
void parallel_for(std::size_t n, unsigned workers,
                  const std::function<void(std::size_t, std::size_t)>& fn);

}  // namespace airch
