#pragma once
// Minimal fork-join helper: statically partitions [0, n) across worker
// threads. Dataset generation and exhaustive search are embarrassingly
// parallel; this keeps them fast without pulling in a task framework.

#include <cstddef>
#include <functional>

namespace airch {

/// Number of worker threads used by the auto-sized parallel_for (>= 1).
/// Honors the AIRCH_THREADS environment variable (1..1024) when set; this
/// is how concurrency tests force real threads on small machines and how
/// deployments pin the pool width. Falls back to hardware_concurrency().
unsigned hardware_threads();

/// Invokes fn(begin, end) on disjoint chunks covering [0, n), concurrently.
/// fn must be thread-safe across chunks. Runs inline when n is small.
/// If any worker throws, the first exception (lowest chunk index) is
/// rethrown on the calling thread after all workers have joined.
void parallel_for(std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn);

/// Same, but with an explicit worker count (>= 1). Always forks `workers`
/// threads (capped at n), even for tiny n — concurrency stress tests rely
/// on this to exercise real thread interleavings regardless of core count.
/// Nesting is allowed: an inner parallel_for simply spawns its own workers.
void parallel_for(std::size_t n, unsigned workers,
                  const std::function<void(std::size_t, std::size_t)>& fn);

}  // namespace airch
