#pragma once
// Minimal fork-join helper: statically partitions [0, n) across hardware
// threads. Dataset generation and exhaustive search are embarrassingly
// parallel; this keeps them fast without pulling in a task framework.

#include <cstddef>
#include <functional>

namespace airch {

/// Number of worker threads used by parallel_for (>= 1).
unsigned hardware_threads();

/// Invokes fn(begin, end) on disjoint chunks covering [0, n), concurrently.
/// fn must be thread-safe across chunks. Runs inline when n is small.
void parallel_for(std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn);

}  // namespace airch
