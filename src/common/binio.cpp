#include "common/binio.hpp"

#include <bit>
#include <stdexcept>

#include "common/check.hpp"

namespace airch {
namespace {

// Streams are read/written through a small stack scratch for multi-byte
// copies; scalar put/get paths encode through explicit shifts so the file
// format is little-endian regardless of host order.
constexpr std::size_t kCopyChunk = 1 << 16;

}  // namespace

BinWriter::BinWriter(const std::string& path) : path_(path) {
  out_.open(path, std::ios::binary | std::ios::trunc);
  if (!out_.is_open()) {
    throw std::runtime_error("BinWriter: cannot open for writing: " + path);
  }
}

BinWriter::~BinWriter() {
  // A writer abandoned by an in-flight exception must not mask it; only
  // verify the stream when unwinding is not already in progress.
  if (std::uncaught_exceptions() == 0) {
    finish();
  }
}

void BinWriter::put_u32(std::uint32_t v) {
  unsigned char b[4];
  b[0] = static_cast<unsigned char>(v & 0xFFu);
  b[1] = static_cast<unsigned char>((v >> 8) & 0xFFu);
  b[2] = static_cast<unsigned char>((v >> 16) & 0xFFu);
  b[3] = static_cast<unsigned char>((v >> 24) & 0xFFu);
  put_bytes(b, 4);
}

void BinWriter::put_u64(std::uint64_t v) {
  unsigned char b[8];
  for (int i = 0; i < 8; ++i) {
    b[i] = static_cast<unsigned char>((v >> (8 * i)) & 0xFFu);
  }
  put_bytes(b, 8);
}

void BinWriter::put_f64(double v) { put_u64(std::bit_cast<std::uint64_t>(v)); }

void BinWriter::put_bytes(const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  sum_.update(p, n);
  out_.write(reinterpret_cast<const char*>(p), static_cast<std::streamsize>(n));
}

void BinWriter::put_trailer_checksum() {
  // The digest is captured before the write so the trailer is not folded
  // into itself; readers compare against the digest over header+payload.
  const std::uint64_t digest = sum_.digest();
  put_u64(digest);
}

void BinWriter::finish() {
  if (finished_) {
    return;
  }
  finished_ = true;
  out_.flush();
  AIRCH_CHECK(out_.good(), "BinWriter: write failed (disk full?): " + path_);
  out_.close();
}

BinReader::BinReader(const std::string& path) : path_(path) {
  in_.open(path, std::ios::binary);
  if (!in_.is_open()) {
    throw std::runtime_error("BinReader: cannot open for reading: " + path);
  }
  in_.seekg(0, std::ios::end);
  const std::streamoff end = in_.tellg();
  AIRCH_CHECK(end >= 0, "BinReader: cannot determine size of " + path);
  size_ = static_cast<std::uint64_t>(end);
  in_.seekg(0, std::ios::beg);
}

std::uint32_t BinReader::get_u32() {
  unsigned char b[4];
  get_bytes(b, 4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(b[i]) << (8 * i);
  }
  return v;
}

std::uint64_t BinReader::get_u64() {
  unsigned char b[8];
  get_bytes(b, 8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(b[i]) << (8 * i);
  }
  return v;
}

double BinReader::get_f64() { return std::bit_cast<double>(get_u64()); }

void BinReader::get_bytes(void* out, std::size_t n) {
  AIRCH_CHECK(n <= remaining(), "BinReader: truncated file (short read) in " + path_);
  in_.read(static_cast<char*>(out), static_cast<std::streamsize>(n));
  AIRCH_CHECK(in_.gcount() == static_cast<std::streamsize>(n),
              "BinReader: read failed in " + path_);
  sum_.update(static_cast<const unsigned char*>(out), n);
  pos_ += n;
}

void BinReader::skip_bytes(std::uint64_t n) {
  unsigned char scratch[kCopyChunk];
  while (n > 0) {
    const std::size_t step = n < kCopyChunk ? static_cast<std::size_t>(n) : kCopyChunk;
    get_bytes(scratch, step);
    n -= step;
  }
}

void BinReader::verify_trailer_checksum() {
  const std::uint64_t expected = sum_.digest();
  const std::uint64_t stored = get_u64();
  AIRCH_CHECK(stored == expected, "BinReader: checksum mismatch (corrupt file): " + path_);
}

void BinReader::seek(std::uint64_t pos) {
  AIRCH_CHECK(pos <= size_, "BinReader: seek past end of " + path_);
  in_.clear();
  in_.seekg(static_cast<std::streamoff>(pos), std::ios::beg);
  AIRCH_CHECK(in_.good(), "BinReader: seek failed in " + path_);
  pos_ = pos;
  sum_ = ByteChecksum();
}

}  // namespace airch
