#pragma once
// Small integer/floating-point helpers shared across the library.

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/check.hpp"

namespace airch {

/// Integer ceiling division. Requires b > 0.
constexpr std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  AIRCH_ASSERT(b > 0);
  return (a + b - 1) / b;
}

/// True iff x is a power of two (x > 0).
constexpr bool is_pow2(std::int64_t x) { return x > 0 && (x & (x - 1)) == 0; }

/// floor(log2(x)) for x >= 1.
constexpr int log2_floor(std::int64_t x) {
  AIRCH_ASSERT(x >= 1);
  int r = 0;
  while (x > 1) {
    x >>= 1;
    ++r;
  }
  return r;
}

/// ceil(log2(x)) for x >= 1.
constexpr int log2_ceil(std::int64_t x) {
  AIRCH_ASSERT(x >= 1);
  return is_pow2(x) ? log2_floor(x) : log2_floor(x) + 1;
}

/// 2^e as int64. Requires 0 <= e < 63.
constexpr std::int64_t pow2(int e) {
  AIRCH_ASSERT(e >= 0 && e < 63);
  return std::int64_t{1} << e;
}

/// Division by a loop-invariant positive divisor, precomputed once and then
/// answered with one widening multiply plus a single upward correction
/// (Granlund–Montgomery reciprocal). The sweep-cache combine loops divide
/// thousands of traffic sums by the same DRAM bandwidth per table build;
/// hardware 64-bit division there costs more than the rest of the loop
/// body. floor_div(x) == x / d and ceil_div(x) == airch::ceil_div(x, d)
/// bit-for-bit for all 0 <= x < 2^62 (proof sketch: the truncated
/// reciprocal underestimates 2^64/d by less than d/2^64, so the computed
/// quotient trails floor(x/d) by at most one; the remainder test restores
/// it, and it never overshoots).
class InvariantDiv {
 public:
  explicit InvariantDiv(std::int64_t d) : d_(static_cast<std::uint64_t>(d)) {
    AIRCH_ASSERT(d > 0);
    if ((d_ & (d_ - 1)) == 0) {
      shift_ = log2_floor(d);
    } else {
#if defined(__SIZEOF_INT128__)
      magic_ = static_cast<std::uint64_t>(
          (static_cast<unsigned __int128>(1) << 64) / d_);
#endif
    }
  }

  std::int64_t floor_div(std::int64_t x) const {
    AIRCH_DCHECK(x >= 0, "InvariantDiv domain is non-negative dividends");
    const auto ux = static_cast<std::uint64_t>(x);
    if (magic_ == 0) return static_cast<std::int64_t>(ux >> shift_);
#if defined(__SIZEOF_INT128__)
    auto q = static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(ux) * magic_) >> 64);
    if (ux - q * d_ >= d_) ++q;  // reciprocal truncation: at most one short
    return static_cast<std::int64_t>(q);
#else
    return static_cast<std::int64_t>(ux / d_);
#endif
  }

  /// Matches airch::ceil_div(x, d) for x >= 0.
  std::int64_t ceil_div(std::int64_t x) const {
    return floor_div(x + static_cast<std::int64_t>(d_) - 1);
  }

 private:
  std::uint64_t d_;
  std::uint64_t magic_ = 0;  // 0 selects the power-of-two shift path
  int shift_ = 0;
};

/// Geometric mean of strictly positive values; returns 0 for empty input.
double geomean(const std::vector<double>& xs);

/// Arithmetic mean; returns 0 for empty input.
double mean(const std::vector<double>& xs);

/// Clamp helper mirroring std::clamp but constexpr-friendly for int64.
constexpr std::int64_t clamp_i64(std::int64_t v, std::int64_t lo, std::int64_t hi) {
  return v < lo ? lo : (v > hi ? hi : v);
}

}  // namespace airch
