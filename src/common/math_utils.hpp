#pragma once
// Small integer/floating-point helpers shared across the library.

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/check.hpp"

namespace airch {

/// Integer ceiling division. Requires b > 0.
constexpr std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  AIRCH_ASSERT(b > 0);
  return (a + b - 1) / b;
}

/// True iff x is a power of two (x > 0).
constexpr bool is_pow2(std::int64_t x) { return x > 0 && (x & (x - 1)) == 0; }

/// floor(log2(x)) for x >= 1.
constexpr int log2_floor(std::int64_t x) {
  AIRCH_ASSERT(x >= 1);
  int r = 0;
  while (x > 1) {
    x >>= 1;
    ++r;
  }
  return r;
}

/// ceil(log2(x)) for x >= 1.
constexpr int log2_ceil(std::int64_t x) {
  AIRCH_ASSERT(x >= 1);
  return is_pow2(x) ? log2_floor(x) : log2_floor(x) + 1;
}

/// 2^e as int64. Requires 0 <= e < 63.
constexpr std::int64_t pow2(int e) {
  AIRCH_ASSERT(e >= 0 && e < 63);
  return std::int64_t{1} << e;
}

/// Geometric mean of strictly positive values; returns 0 for empty input.
double geomean(const std::vector<double>& xs);

/// Arithmetic mean; returns 0 for empty input.
double mean(const std::vector<double>& xs);

/// Clamp helper mirroring std::clamp but constexpr-friendly for int64.
constexpr std::int64_t clamp_i64(std::int64_t v, std::int64_t lo, std::int64_t hi) {
  return v < lo ? lo : (v > hi ? hi : v);
}

}  // namespace airch
