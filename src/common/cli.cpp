#include "common/cli.hpp"

#include <cstdlib>
#include <iostream>
#include <set>
#include <sstream>
#include <stdexcept>

namespace airch {

ArgParser& ArgParser::flag_i64(const std::string& name, std::int64_t default_value,
                               const std::string& help) {
  flags_[name] = Flag{Kind::kI64, help, std::to_string(default_value)};
  order_.push_back(name);
  return *this;
}

ArgParser& ArgParser::flag_i64(const std::string& name, std::int64_t default_value,
                               const std::string& help, std::int64_t min_value,
                               std::int64_t max_value) {
  if (min_value > max_value) {
    throw std::invalid_argument("empty range for --" + name);
  }
  if (default_value < min_value || default_value > max_value) {
    throw std::invalid_argument("default for --" + name + " outside its declared range");
  }
  Flag f{Kind::kI64, help, std::to_string(default_value)};
  f.has_range = true;
  f.min_value = min_value;
  f.max_value = max_value;
  flags_[name] = f;
  order_.push_back(name);
  return *this;
}

ArgParser& ArgParser::flag_f64(const std::string& name, double default_value,
                               const std::string& help) {
  std::ostringstream os;
  os << default_value;
  flags_[name] = Flag{Kind::kF64, help, os.str()};
  order_.push_back(name);
  return *this;
}

ArgParser& ArgParser::flag_str(const std::string& name, const std::string& default_value,
                               const std::string& help) {
  flags_[name] = Flag{Kind::kStr, help, default_value};
  order_.push_back(name);
  return *this;
}

ArgParser& ArgParser::flag_bool(const std::string& name, bool default_value,
                                const std::string& help) {
  flags_[name] = Flag{Kind::kBool, help, default_value ? "true" : "false"};
  order_.push_back(name);
  return *this;
}

void ArgParser::parse(int argc, const char* const* argv) {
  std::set<std::string> seen;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cout << usage();  // airch-lint: allow(cout) — --help is interactive by contract
      std::exit(0);
    }
    if (arg.rfind("--", 0) != 0) {
      throw std::invalid_argument("unexpected positional argument: " + arg);
    }
    std::string name;
    std::string value;
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      name = arg.substr(2, eq - 2);
      value = arg.substr(eq + 1);
    } else {
      name = arg.substr(2);
      auto it = flags_.find(name);
      if (it != flags_.end() && it->second.kind == Kind::kBool) {
        value = "true";  // bare boolean flag
      } else {
        if (i + 1 >= argc) throw std::invalid_argument("missing value for flag --" + name);
        value = argv[++i];
      }
    }
    auto it = flags_.find(name);
    if (it == flags_.end()) throw std::invalid_argument("unknown flag --" + name);
    // A repeated flag is almost always a stale shell history or a script
    // bug; last-one-wins would silently run the wrong experiment.
    if (!seen.insert(name).second) {
      throw std::invalid_argument("duplicate flag --" + name);
    }
    // Validate parse for numeric kinds now so errors surface at startup.
    if (it->second.kind == Kind::kI64) {
      std::size_t pos = 0;
      const std::int64_t parsed = std::stoll(value, &pos);
      if (pos != value.size()) throw std::invalid_argument("bad integer for --" + name + ": " + value);
      if (it->second.has_range &&
          (parsed < it->second.min_value || parsed > it->second.max_value)) {
        throw std::invalid_argument(
            "value out of range for --" + name + ": " + value + " (allowed: " +
            std::to_string(it->second.min_value) + ".." +
            std::to_string(it->second.max_value) + ")");
      }
    } else if (it->second.kind == Kind::kF64) {
      std::size_t pos = 0;
      (void)std::stod(value, &pos);
      if (pos != value.size()) throw std::invalid_argument("bad real for --" + name + ": " + value);
    } else if (it->second.kind == Kind::kBool) {
      if (value != "true" && value != "false" && value != "1" && value != "0") {
        throw std::invalid_argument("bad boolean for --" + name + ": " + value);
      }
    }
    it->second.value = value;
  }
}

const ArgParser::Flag& ArgParser::get(const std::string& name, Kind kind) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) throw std::invalid_argument("flag not registered: " + name);
  if (it->second.kind != kind) throw std::invalid_argument("flag kind mismatch: " + name);
  return it->second;
}

std::int64_t ArgParser::i64(const std::string& name) const {
  return std::stoll(get(name, Kind::kI64).value);
}

double ArgParser::f64(const std::string& name) const { return std::stod(get(name, Kind::kF64).value); }

const std::string& ArgParser::str(const std::string& name) const {
  return get(name, Kind::kStr).value;
}

bool ArgParser::boolean(const std::string& name) const {
  const std::string& v = get(name, Kind::kBool).value;
  return v == "true" || v == "1";
}

std::string ArgParser::usage() const {
  std::ostringstream os;
  os << program_ << " — " << description_ << "\n\nFlags:\n";
  for (const auto& name : order_) {
    const Flag& f = flags_.at(name);
    os << "  --" << name << " (default: " << f.value;
    if (f.has_range) {
      os << ", range: " << f.min_value << ".." << f.max_value;
    }
    os << ")\n      " << f.help << "\n";
  }
  return os.str();
}

}  // namespace airch
