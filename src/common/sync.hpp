#pragma once
// Annotated synchronization layer (docs/static_analysis.md, "Thread-safety
// capability analysis"). Every mutex in library code goes through these
// wrappers instead of <mutex>, for two reasons:
//
//   1. Compile time: the types carry Clang Thread Safety Analysis
//      capability attributes, so `-Wthread-safety -Werror=thread-safety`
//      (the `capability` preset / CI job) turns lock-discipline mistakes —
//      reading a GUARDED_BY field without the lock, calling a REQUIRES
//      helper unlocked, double-acquiring, returning a reference to guarded
//      data — into build failures. On GCC every attribute macro expands to
//      nothing and the wrappers compile down to the std primitives.
//   2. Run time (checked builds only): every Mutex/SharedMutex carries a
//      lock-rank ordinal (the table lives below and in the docs) and each
//      thread maintains a held-lock stack. Acquiring a lock whose rank is
//      not strictly above every lock the thread already holds — or one the
//      thread already holds — throws airch::ContractViolation before the
//      acquire, so a lock-order inversion that would deadlock one run in a
//      million is caught deterministically on any run that merely
//      *attempts* the inverted order. Like AIRCH_DCHECK, the registry is
//      compiled out under NDEBUG: Release-mode lock() is exactly
//      std::mutex::lock().
//
// The lint rules `raw-mutex` and `raw-lock` (tools/lint_airch.cpp) keep
// library code on this layer: no std mutex/lock types outside this file,
// and no manual .lock()/.unlock() calls — acquisition is RAII
// (MutexLock / ReaderLock / WriterLock) so scoped-capability analysis and
// exception safety hold everywhere.
//
// Escape hatches are explicit and documented at the use site: lock-free
// std::atomic state (the sweep-cache prefetch snapshot, the kernel-mode
// flag, parallel_for's chunk counter) is not a capability and is not
// annotated; anything genuinely outside the analysis carries
// NO_THREAD_SAFETY_ANALYSIS plus a justification comment.

#include <chrono>
#include <condition_variable>  // airch-lint: allow(raw-mutex) — this IS the sync layer
#include <cstddef>
#include <mutex>               // airch-lint: allow(raw-mutex)
#include <shared_mutex>        // airch-lint: allow(raw-mutex)
#include <utility>

#include "common/check.hpp"

// --------------------------------------------------------------- attributes
// Clang Thread Safety Analysis attribute macros, following the reference
// spelling from the Clang documentation. No-ops on every other compiler.

#if defined(__clang__) && !defined(SWIG)
#define AIRCH_TSA(x) __attribute__((x))
#else
#define AIRCH_TSA(x)  // not Clang: thread-safety attributes compile away
#endif

#define CAPABILITY(x) AIRCH_TSA(capability(x))
#define SCOPED_CAPABILITY AIRCH_TSA(scoped_lockable)
#define GUARDED_BY(x) AIRCH_TSA(guarded_by(x))
#define PT_GUARDED_BY(x) AIRCH_TSA(pt_guarded_by(x))
#define ACQUIRED_BEFORE(...) AIRCH_TSA(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) AIRCH_TSA(acquired_after(__VA_ARGS__))
#define REQUIRES(...) AIRCH_TSA(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) AIRCH_TSA(requires_shared_capability(__VA_ARGS__))
#define ACQUIRE(...) AIRCH_TSA(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) AIRCH_TSA(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) AIRCH_TSA(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) AIRCH_TSA(release_shared_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) AIRCH_TSA(try_acquire_capability(__VA_ARGS__))
#define TRY_ACQUIRE_SHARED(...) AIRCH_TSA(try_acquire_shared_capability(__VA_ARGS__))
#define EXCLUDES(...) AIRCH_TSA(locks_excluded(__VA_ARGS__))
#define ASSERT_CAPABILITY(x) AIRCH_TSA(assert_capability(x))
#define RETURN_CAPABILITY(x) AIRCH_TSA(lock_returned(x))
#define NO_THREAD_SAFETY_ANALYSIS AIRCH_TSA(no_thread_safety_analysis)

// ---------------------------------------------------------------- lock ranks
// The runtime half of the discipline. Checks are live exactly when the
// contract macros are (Debug and every sanitizer preset; compiled out
// under NDEBUG — see common/check.hpp).

#ifdef NDEBUG
#define AIRCH_SYNC_CHECKED 0
#else
#define AIRCH_SYNC_CHECKED 1
#endif

namespace airch {

/// True when the lock-rank registry is active in this build. Tests branch
/// on this to assert either the throw (checked) or the no-op (Release).
inline constexpr bool kLockRankChecksEnabled = AIRCH_SYNC_CHECKED != 0;

/// Lock-rank ordinals. A thread may only acquire a mutex whose rank is
/// STRICTLY ABOVE every lock it already holds, so any cycle in the
/// acquisition order is impossible by construction. Two locks of the same
/// rank therefore never nest — the correct default for peer locks (e.g.
/// the sweep-cache shards, which are taken one at a time). Give a mutex an
/// explicit rank only when it participates in a documented nesting; keep
/// this table in sync with docs/static_analysis.md.
namespace lock_rank {
/// parallel_for's first-exception slot: taken by a worker only after its
/// user callback has unwound (no user lock can still be held).
inline constexpr int kParallelError = 10;
/// Sweep-cache shard locks (all three caches): peers, never nested —
/// compute always runs outside the shard lock (sweep_cache.hpp).
inline constexpr int kSweepCacheShard = 20;
/// Default for unranked mutexes: a leaf. Two leaves cannot nest; pick
/// explicit ranks the moment a nesting is intended.
inline constexpr int kLeaf = 1000;
}  // namespace lock_rank

namespace detail {

// Registry hooks (sync.cpp). Only called when AIRCH_SYNC_CHECKED; they
// throw ContractViolation on re-acquire and on rank inversion.
void lock_rank_acquire(const void* mu, int rank);
void lock_rank_release(const void* mu);
/// Locks currently held by the calling thread (checked builds; 0 in
/// Release). Exposed for tests and leak-style assertions.
std::size_t locks_held_by_this_thread();

}  // namespace detail

// ---------------------------------------------------------------- primitives

/// std::mutex with a thread-safety capability attribute and a lock-rank
/// ordinal. Release builds compile lock()/unlock() down to the std calls.
/// Prefer MutexLock over calling lock()/unlock() manually (the `raw-lock`
/// lint rule enforces this outside this header).
class CAPABILITY("mutex") Mutex {
 public:
  explicit Mutex(int rank = lock_rank::kLeaf) noexcept : rank_(rank) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() {
#if AIRCH_SYNC_CHECKED
    detail::lock_rank_acquire(this, rank_);  // throws BEFORE blocking
#endif
    mu_.lock();
  }

  void unlock() RELEASE() {
    mu_.unlock();
#if AIRCH_SYNC_CHECKED
    detail::lock_rank_release(this);
#endif
  }

  bool try_lock() TRY_ACQUIRE(true) {
#if AIRCH_SYNC_CHECKED
    // Rank discipline applies to attempts too: an inverted try_lock is the
    // same latent deadlock. Note-then-maybe-retract keeps the registry
    // consistent when the try fails.
    detail::lock_rank_acquire(this, rank_);
    if (!mu_.try_lock()) {
      detail::lock_rank_release(this);
      return false;
    }
    return true;
#else
    return mu_.try_lock();
#endif
  }

  int rank() const noexcept { return rank_; }

 private:
  std::mutex mu_;  // airch-lint: allow(raw-mutex)
  int rank_;
};

/// std::shared_mutex counterpart. Shared (reader) acquisitions obey the
/// same rank discipline — a reader participating in an inverted order
/// deadlocks against writers just as surely.
class CAPABILITY("shared_mutex") SharedMutex {
 public:
  explicit SharedMutex(int rank = lock_rank::kLeaf) noexcept : rank_(rank) {}
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() ACQUIRE() {
#if AIRCH_SYNC_CHECKED
    detail::lock_rank_acquire(this, rank_);
#endif
    mu_.lock();
  }

  void unlock() RELEASE() {
    mu_.unlock();
#if AIRCH_SYNC_CHECKED
    detail::lock_rank_release(this);
#endif
  }

  void lock_shared() ACQUIRE_SHARED() {
#if AIRCH_SYNC_CHECKED
    // Re-acquiring shared ownership the thread already has is UB on
    // std::shared_mutex; the registry's re-acquire check covers it.
    detail::lock_rank_acquire(this, rank_);
#endif
    mu_.lock_shared();
  }

  void unlock_shared() RELEASE_SHARED() {
    mu_.unlock_shared();
#if AIRCH_SYNC_CHECKED
    detail::lock_rank_release(this);
#endif
  }

  int rank() const noexcept { return rank_; }

 private:
  std::shared_mutex mu_;  // airch-lint: allow(raw-mutex)
  int rank_;
};

// ----------------------------------------------------------------- RAII

/// Scoped exclusive lock on a Mutex; the only sanctioned way to hold one
/// in library code.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu.lock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;
  ~MutexLock() RELEASE() { mu_.unlock(); }

 private:
  Mutex& mu_;
};

/// Scoped shared (reader) lock on a SharedMutex.
class SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& mu) ACQUIRE_SHARED(mu) : mu_(mu) { mu.lock_shared(); }
  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;
  ~ReaderLock() RELEASE() { mu_.unlock_shared(); }

 private:
  SharedMutex& mu_;
};

/// Scoped exclusive (writer) lock on a SharedMutex.
class SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& mu) ACQUIRE(mu) : mu_(mu) { mu.lock(); }
  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;
  ~WriterLock() RELEASE() { mu_.unlock(); }

 private:
  SharedMutex& mu_;
};

// ---------------------------------------------------------------- CondVar

/// Condition variable paired with Mutex. wait() REQUIRES the mutex, so
/// forgetting the lock is a compile error under the capability preset; the
/// internal unlock/relock goes through Mutex's annotated-and-registered
/// methods, so the lock-rank stack stays exact across a wait.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, blocks, and re-acquires before returning.
  /// Spurious wakeups happen; prefer the predicate overload.
  void wait(Mutex& mu) REQUIRES(mu) { cv_.wait(mu); }

  /// Waits until `pred()` holds. `pred` runs under `mu`.
  template <typename Pred>
  void wait(Mutex& mu, Pred pred) REQUIRES(mu) {
    cv_.wait(mu, std::move(pred));
  }

  /// Timed predicate wait: returns pred() — false means the deadline
  /// passed with the predicate still unsatisfied. The serving layer's
  /// admission batching leans on this (wait until batch-full OR deadline).
  template <typename Clock, typename Duration, typename Pred>
  bool wait_until(Mutex& mu, const std::chrono::time_point<Clock, Duration>& deadline,
                  Pred pred) REQUIRES(mu) {
    return cv_.wait_until(mu, deadline, std::move(pred));
  }

  /// Predicate-free timed wait: returns false when the deadline passed
  /// without a notify. Spurious wakeups return true; callers re-check
  /// their condition in a loop. Library code holding GUARDED_BY state
  /// prefers this flavor — the loop body runs in the locked scope, so the
  /// capability analysis sees the reads (a predicate lambda would not).
  template <typename Clock, typename Duration>
  bool wait_until(Mutex& mu, const std::chrono::time_point<Clock, Duration>& deadline)
      REQUIRES(mu) {
    return cv_.wait_until(mu, deadline) == std::cv_status::no_timeout;
  }

  /// Relative-timeout flavor of wait_until.
  template <typename Rep, typename Period, typename Pred>
  bool wait_for(Mutex& mu, const std::chrono::duration<Rep, Period>& timeout,
                Pred pred) REQUIRES(mu) {
    return cv_.wait_for(mu, timeout, std::move(pred));
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  // _any variant: it takes our annotated Mutex (a BasicLockable) directly,
  // so waits keep the rank registry consistent.
  std::condition_variable_any cv_;  // airch-lint: allow(raw-mutex)
};

}  // namespace airch
