#pragma once
// Minimal command-line flag parser used by bench and example binaries.
// Flags are `--name=value` or `--name value`; `--help` prints registered
// flags and exits. Unknown flags are an error so typos do not silently run
// a differently-parameterised experiment.

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace airch {

class ArgParser {
 public:
  ArgParser(std::string program, std::string description)
      : program_(std::move(program)), description_(std::move(description)) {}

  /// Register flags before calling parse(). Each returns *this for chaining.
  ArgParser& flag_i64(const std::string& name, std::int64_t default_value, const std::string& help);
  /// Bounded integer flag: parse() rejects values outside [min_value, max_value],
  /// so range errors surface at startup instead of as mid-run assertions.
  /// The default itself must lie inside the range (throws at registration).
  ArgParser& flag_i64(const std::string& name, std::int64_t default_value, const std::string& help,
                      std::int64_t min_value, std::int64_t max_value);
  ArgParser& flag_f64(const std::string& name, double default_value, const std::string& help);
  ArgParser& flag_str(const std::string& name, const std::string& default_value, const std::string& help);
  ArgParser& flag_bool(const std::string& name, bool default_value, const std::string& help);

  /// Parse argv. On `--help` prints usage and calls std::exit(0).
  /// Throws std::invalid_argument on unknown flags, malformed or
  /// out-of-range values, and flags given more than once.
  void parse(int argc, const char* const* argv);

  std::int64_t i64(const std::string& name) const;
  double f64(const std::string& name) const;
  const std::string& str(const std::string& name) const;
  bool boolean(const std::string& name) const;

  std::string usage() const;

 private:
  enum class Kind { kI64, kF64, kStr, kBool };
  struct Flag {
    Kind kind;
    std::string help;
    std::string value;  // canonical textual representation
    bool has_range = false;        // kI64 only
    std::int64_t min_value = 0;    // inclusive, valid when has_range
    std::int64_t max_value = 0;    // inclusive, valid when has_range
  };

  const Flag& get(const std::string& name, Kind kind) const;

  std::string program_;
  std::string description_;
  std::map<std::string, Flag> flags_;
  std::vector<std::string> order_;
};

}  // namespace airch
