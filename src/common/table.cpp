#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace airch {

void AsciiTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != columns_.size()) throw std::invalid_argument("table row width mismatch");
  rows_.push_back(std::move(cells));
}

std::string AsciiTable::fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

void AsciiTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) widths[c] = columns_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c ? "  " : "") << std::left << std::setw(static_cast<int>(widths[c])) << row[c];
    }
    os << '\n';
  };
  print_row(columns_);
  std::size_t total = 0;
  for (auto w : widths) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string bar(double fraction, int width) {
  fraction = std::clamp(fraction, 0.0, 1.0);
  const int n = static_cast<int>(fraction * width + 0.5);
  return std::string(static_cast<std::size_t>(n), '#');
}

}  // namespace airch
