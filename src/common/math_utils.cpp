#include "common/math_utils.hpp"

namespace airch {

double geomean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double log_sum = 0.0;
  for (double x : xs) {
    AIRCH_ASSERT(x > 0.0);
    log_sum += std::log(x);
  }
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

}  // namespace airch
