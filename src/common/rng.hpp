#pragma once
// Deterministic, seedable PRNG (xoshiro256**) plus the handful of
// distributions the library needs. We avoid <random> engines in hot paths
// because their cross-platform reproducibility for real distributions is
// not guaranteed, and dataset generation must be bit-reproducible.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace airch {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) { reseed(seed); }

  /// Re-initialise state from a 64-bit seed via SplitMix64.
  void reseed(std::uint64_t seed);

  /// Next raw 64 random bits.
  std::uint64_t next_u64();

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform real in [0, 1).
  double uniform();

  /// Uniform real in [lo, hi).
  double uniform(double lo, double hi);

  /// Standard normal via Box-Muller.
  double normal();

  /// Normal with given mean / stddev.
  double normal(double mu, double sigma) { return mu + sigma * normal(); }

  /// Integer sampled log-uniformly in [lo, hi] (both >= 1): exponent drawn
  /// uniformly, so each octave is equally likely. Matches the heavy-tailed
  /// GEMM-dimension distribution in the paper's Fig. 7(a).
  std::int64_t log_uniform_int(std::int64_t lo, std::int64_t hi);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Sample an index according to non-negative weights (at least one > 0).
  std::size_t weighted_index(const std::vector<double>& weights);

 private:
  std::uint64_t s_[4];
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace airch
