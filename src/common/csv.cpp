#include "common/csv.hpp"

#include <stdexcept>

namespace airch {

std::vector<std::string> split_csv_line(const std::string& line) {
  std::vector<std::string> cells;
  std::string cur;
  for (char c : line) {
    if (c == '"') throw std::runtime_error("quoted CSV fields are not supported");
    if (c == ',') {
      cells.push_back(cur);
      cur.clear();
    } else if (c != '\r') {
      cur.push_back(c);
    }
  }
  cells.push_back(cur);
  return cells;
}

CsvWriter::CsvWriter(const std::string& path) : out_(path) {
  if (!out_) throw std::runtime_error("cannot open for writing: " + path);
}

void CsvWriter::write_header(const std::vector<std::string>& columns) {
  columns_ = columns.size();
  write_row(columns);
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  if (columns_ != 0 && cells.size() != columns_) {
    throw std::runtime_error("CSV row width mismatch");
  }
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << cells[i];
  }
  out_ << '\n';
}

void CsvWriter::write_row_i64(const std::vector<std::int64_t>& cells) {
  std::vector<std::string> s;
  s.reserve(cells.size());
  for (auto v : cells) s.push_back(std::to_string(v));
  write_row(s);
}

CsvReader::CsvReader(const std::string& path) : in_(path) {
  if (!in_) throw std::runtime_error("cannot open for reading: " + path);
  std::string line;
  if (std::getline(in_, line)) header_ = split_csv_line(line);
}

bool CsvReader::next_row(std::vector<std::string>& cells) {
  std::string line;
  while (std::getline(in_, line)) {
    if (line.empty()) continue;
    cells = split_csv_line(line);
    return true;
  }
  return false;
}

}  // namespace airch
