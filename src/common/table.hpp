#pragma once
// ASCII table printer used by bench binaries to render figure/table data
// in a form directly comparable with the paper's charts.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

namespace airch {

class AsciiTable {
 public:
  explicit AsciiTable(std::vector<std::string> columns) : columns_(std::move(columns)) {}

  void add_row(std::vector<std::string> cells);

  /// Convenience: format doubles with fixed precision.
  static std::string fmt(double v, int precision = 3);

  /// Render with column alignment and a header separator.
  void print(std::ostream& os) const;

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// One-line horizontal bar for distribution-style figure output,
/// e.g. bar(0.42, 40) -> "################".
std::string bar(double fraction, int width);

}  // namespace airch
