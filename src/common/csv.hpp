#pragma once
// Tiny CSV reader/writer for dataset persistence and bench output.
// Values never contain commas or quotes in this project, so no quoting
// support is needed; the reader rejects quoted fields explicitly.

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

namespace airch {

class CsvWriter {
 public:
  /// Opens `path` for writing; throws std::runtime_error on failure.
  explicit CsvWriter(const std::string& path);

  void write_header(const std::vector<std::string>& columns);
  void write_row(const std::vector<std::string>& cells);
  void write_row_i64(const std::vector<std::int64_t>& cells);

 private:
  std::ofstream out_;
  std::size_t columns_ = 0;
};

class CsvReader {
 public:
  /// Opens `path`; throws std::runtime_error on failure.
  explicit CsvReader(const std::string& path);

  /// Header read at construction time.
  const std::vector<std::string>& header() const { return header_; }

  /// Reads next data row into `cells`; returns false at EOF.
  bool next_row(std::vector<std::string>& cells);

 private:
  std::ifstream in_;
  std::vector<std::string> header_;
};

/// Splits a CSV line on commas (no quoting).
std::vector<std::string> split_csv_line(const std::string& line);

}  // namespace airch
