#include "common/check.hpp"

#include <sstream>

namespace airch::detail {

void contract_fail(const char* kind, const char* expr, const char* file, int line,
                   const char* msg) {
  std::ostringstream os;
  os << "AIRCH_" << kind << " failed: " << expr << " at " << file << ':' << line;
  if (msg != nullptr) os << " — " << msg;
  throw ContractViolation(os.str());
}

void contract_fail(const char* kind, const char* expr, const char* file, int line,
                   const std::string& msg) {
  contract_fail(kind, expr, file, line, msg.c_str());
}

}  // namespace airch::detail
