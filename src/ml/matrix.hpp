#pragma once
// Dense row-major float32 matrix — the numeric workhorse of the NN stack —
// plus the training/inference kernel layer (docs/performance.md): a
// cache-blocked, panel-packed, register-tiled matmul that parallelizes over
// output-row blocks and dispatches to the widest SIMD level the CPU offers,
// while staying bit-identical to the retained reference ikj loop (every C
// element keeps its exact p-ascending float accumulation order, and the
// zero-skip semantics for dropout/ReLU-zeroed activations are preserved).

#include <cstddef>
#include <functional>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace airch::ml {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, float value = 0.0f)
      : rows_(rows), cols_(cols), data_(rows * cols, value) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float& operator()(std::size_t r, std::size_t c) {
    AIRCH_ASSERT(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  float operator()(std::size_t r, std::size_t c) const {
    AIRCH_ASSERT(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  float* row(std::size_t r) { return data_.data() + r * cols_; }
  const float* row(std::size_t r) const { return data_.data() + r * cols_; }

  void fill(float v) { std::fill(data_.begin(), data_.end(), v); }
  void resize(std::size_t rows, std::size_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.assign(rows * cols, 0.0f);
  }

  /// Glorot-uniform initialization for weight matrices.
  void init_glorot(Rng& rng);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<float> data_;
};

/// Process-wide selector for the ML kernel paths. kFast (the default)
/// routes matmul through the blocked/packed microkernel and enables the
/// deterministic parallel element loops in the layer implementations;
/// kNaive forces the original single-threaded reference paths everywhere.
/// Both modes produce bit-identical results — the switch exists so
/// benchmarks and tests can A/B the two paths on the same computation
/// (bench/bench_train_throughput.cpp asserts trajectory equality).
/// The flag is read atomically but is intended to be set once up front,
/// not toggled mid-training.
enum class KernelMode { kNaive, kFast };
void set_kernel_mode(KernelMode mode);
KernelMode kernel_mode();

/// C = alpha * op(A) * op(B) + beta * C, where op is optional transpose.
/// Shapes are checked with assert; callers size C beforehand. Dispatches
/// to the blocked kernel or the reference loop per kernel_mode(); results
/// are bit-identical either way (property-tested in
/// tests/test_matmul_kernel.cpp).
void matmul(const Matrix& a, bool trans_a, const Matrix& b, bool trans_b, Matrix& c,
            float alpha = 1.0f, float beta = 0.0f);

/// The original single-threaded ikj loop, retained verbatim as the
/// reference implementation the blocked kernel is bit-compared against.
/// Semantics contract: a term whose scaled A operand `alpha * op(A)(i,p)`
/// equals zero is SKIPPED, not accumulated — a dropout- or ReLU-zeroed
/// activation row contributes exactly +0.0f to C, never -0.0f and never a
/// NaN from 0 * inf (pinned by the ZeroRow tests).
void matmul_reference(const Matrix& a, bool trans_a, const Matrix& b, bool trans_b, Matrix& c,
                      float alpha = 1.0f, float beta = 0.0f);

/// Deterministic helper for the per-batch element loops (embedding,
/// activation, loss): invokes fn(begin, end) over disjoint static row
/// chunks covering [0, rows). Splits across workers only when the kernel
/// mode is kFast AND rows * work_per_row (an approximate scalar-op count)
/// is large enough to amortize thread spawns; otherwise runs inline.
/// Row-partitioning keeps every per-row computation on a single thread in
/// its original order, so results are bit-identical to the serial loop.
void parallel_rows(std::size_t rows, std::size_t work_per_row,
                   const std::function<void(std::size_t, std::size_t)>& fn);

/// y += row_vector broadcast over rows of y (bias add).
void add_row_broadcast(Matrix& y, const std::vector<float>& row);

/// out[j] = sum over rows of m(:, j) (bias gradient reduction).
void column_sums(const Matrix& m, std::vector<float>& out);

}  // namespace airch::ml
