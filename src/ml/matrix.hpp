#pragma once
// Dense row-major float32 matrix — the numeric workhorse of the NN stack.
// Sized for classifier training (batches of a few hundred by a few hundred
// features): a cache-friendly ikj GEMM is all the performance this needs.

#include <cstddef>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace airch::ml {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, float value = 0.0f)
      : rows_(rows), cols_(cols), data_(rows * cols, value) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float& operator()(std::size_t r, std::size_t c) {
    AIRCH_ASSERT(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  float operator()(std::size_t r, std::size_t c) const {
    AIRCH_ASSERT(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  float* row(std::size_t r) { return data_.data() + r * cols_; }
  const float* row(std::size_t r) const { return data_.data() + r * cols_; }

  void fill(float v) { std::fill(data_.begin(), data_.end(), v); }
  void resize(std::size_t rows, std::size_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.assign(rows * cols, 0.0f);
  }

  /// Glorot-uniform initialization for weight matrices.
  void init_glorot(Rng& rng);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<float> data_;
};

/// C = alpha * op(A) * op(B) + beta * C, where op is optional transpose.
/// Shapes are checked with assert; callers size C beforehand.
void matmul(const Matrix& a, bool trans_a, const Matrix& b, bool trans_b, Matrix& c,
            float alpha = 1.0f, float beta = 0.0f);

/// y += row_vector broadcast over rows of y (bias add).
void add_row_broadcast(Matrix& y, const std::vector<float>& row);

/// out[j] = sum over rows of m(:, j) (bias gradient reduction).
void column_sums(const Matrix& m, std::vector<float>& out);

}  // namespace airch::ml
