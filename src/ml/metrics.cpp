#include "ml/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "common/check.hpp"

namespace airch::ml {

double topk_accuracy(const Matrix& scores, const std::vector<std::int32_t>& labels, int k) {
  AIRCH_ASSERT(scores.rows() == labels.size());
  if (labels.empty()) return 0.0;
  if (k < 1) throw std::invalid_argument("k must be >= 1");
  std::size_t hits = 0;
  for (std::size_t i = 0; i < scores.rows(); ++i) {
    const float* row = scores.row(i);
    const float label_score = row[static_cast<std::size_t>(labels[i])];
    // The label is in the top k iff fewer than k scores strictly exceed it.
    int better = 0;
    for (std::size_t j = 0; j < scores.cols(); ++j) {
      if (row[j] > label_score) ++better;
    }
    if (better < k) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(labels.size());
}

double jensen_shannon_divergence(const std::vector<std::int64_t>& hist_p,
                                 const std::vector<std::int64_t>& hist_q) {
  if (hist_p.size() != hist_q.size()) throw std::invalid_argument("histogram size mismatch");
  const double sum_p = static_cast<double>(std::accumulate(hist_p.begin(), hist_p.end(), std::int64_t{0}));
  const double sum_q = static_cast<double>(std::accumulate(hist_q.begin(), hist_q.end(), std::int64_t{0}));
  if (sum_p <= 0.0 || sum_q <= 0.0) throw std::invalid_argument("empty histogram");
  double js = 0.0;
  for (std::size_t i = 0; i < hist_p.size(); ++i) {
    const double p = static_cast<double>(hist_p[i]) / sum_p;
    const double q = static_cast<double>(hist_q[i]) / sum_q;
    const double m = 0.5 * (p + q);
    if (p > 0.0) js += 0.5 * p * std::log(p / m);
    if (q > 0.0) js += 0.5 * q * std::log(q / m);
  }
  return std::max(0.0, js);
}

std::vector<ClassCounts> confusion_counts(const std::vector<std::int32_t>& labels,
                                          const std::vector<std::int32_t>& predictions,
                                          int num_classes) {
  if (labels.size() != predictions.size()) throw std::invalid_argument("length mismatch");
  std::vector<ClassCounts> counts(static_cast<std::size_t>(num_classes));
  for (std::size_t i = 0; i < labels.size(); ++i) {
    const auto y = static_cast<std::size_t>(labels[i]);
    const auto p = static_cast<std::size_t>(predictions[i]);
    if (y >= counts.size() || p >= counts.size()) throw std::out_of_range("label out of range");
    if (y == p) {
      ++counts[y].tp;
    } else {
      ++counts[y].fn;
      ++counts[p].fp;
    }
  }
  return counts;
}

double macro_f1(const std::vector<std::int32_t>& labels,
                const std::vector<std::int32_t>& predictions, int num_classes) {
  const auto counts = confusion_counts(labels, predictions, num_classes);
  double f1_sum = 0.0;
  int present = 0;
  for (const auto& c : counts) {
    if (c.tp + c.fn == 0) continue;  // class absent from ground truth
    ++present;
    const double precision =
        c.tp + c.fp > 0 ? static_cast<double>(c.tp) / static_cast<double>(c.tp + c.fp) : 0.0;
    const double recall = static_cast<double>(c.tp) / static_cast<double>(c.tp + c.fn);
    if (precision + recall > 0.0) f1_sum += 2.0 * precision * recall / (precision + recall);
  }
  return present > 0 ? f1_sum / present : 0.0;
}

}  // namespace airch::ml
