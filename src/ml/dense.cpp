#include "ml/dense.hpp"

#include <stdexcept>

#include "common/check.hpp"

namespace airch::ml {

DenseLayer::DenseLayer(std::size_t in_dim, std::size_t out_dim, Rng& rng)
    : in_dim_(in_dim),
      out_dim_(out_dim),
      w_(in_dim, out_dim),
      b_(out_dim, 0.0f),
      w_grad_(in_dim, out_dim),
      b_grad_(out_dim, 0.0f) {
  if (in_dim == 0 || out_dim == 0) throw std::invalid_argument("zero-sized dense layer");
  w_.init_glorot(rng);
}

Matrix DenseLayer::forward(const Matrix& x, bool /*training*/) {
  AIRCH_ASSERT(x.cols() == in_dim_);
  cached_input_ = x;
  Matrix y(x.rows(), out_dim_);
  matmul(x, false, w_, false, y);
  add_row_broadcast(y, b_);
  return y;
}

Matrix DenseLayer::infer(const Matrix& x) const {
  AIRCH_ASSERT(x.cols() == in_dim_);
  // Same computation as forward() minus the cached_input_ copy: the output
  // lives on the caller's stack and the matmul scratch is thread_local, so
  // any number of threads can infer through one shared layer.
  Matrix y(x.rows(), out_dim_);
  matmul(x, false, w_, false, y);
  add_row_broadcast(y, b_);
  return y;
}

Matrix DenseLayer::backward(const Matrix& grad_out) {
  AIRCH_ASSERT(grad_out.rows() == cached_input_.rows() && grad_out.cols() == out_dim_);
  // dW = x^T * dY ; db = column sums of dY ; dX = dY * W^T
  matmul(cached_input_, true, grad_out, false, w_grad_);
  column_sums(grad_out, b_grad_);
  Matrix grad_in(grad_out.rows(), in_dim_);
  matmul(grad_out, false, w_, true, grad_in);
  return grad_in;
}

std::vector<ParamRef> DenseLayer::params() {
  return {{w_.data(), w_grad_.data(), w_.size()}, {b_.data(), b_grad_.data(), b_.size()}};
}

std::vector<ConstParamRef> DenseLayer::params() const {
  return {{w_.data(), w_.size()}, {b_.data(), b_.size()}};
}

std::size_t DenseLayer::output_dim(std::size_t input_dim) const {
  AIRCH_ASSERT(input_dim == in_dim_);
  (void)input_dim;
  return out_dim_;
}

}  // namespace airch::ml
