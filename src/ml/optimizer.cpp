#include "ml/optimizer.hpp"

#include <cmath>
#include <stdexcept>

#include "common/check.hpp"

namespace airch::ml {

void Sgd::step(const std::vector<ParamRef>& params) {
  for (const auto& p : params) {
    for (std::size_t i = 0; i < p.size; ++i) {
      p.value[i] -= static_cast<float>(lr_) * p.grad[i];
    }
  }
}

void SgdMomentum::step(const std::vector<ParamRef>& params) {
  if (velocity_.empty()) {
    velocity_.reserve(params.size());
    for (const auto& p : params) velocity_.emplace_back(p.size, 0.0f);
  }
  if (velocity_.size() != params.size()) throw std::logic_error("parameter list changed");
  for (std::size_t k = 0; k < params.size(); ++k) {
    const auto& p = params[k];
    auto& vel = velocity_[k];
    AIRCH_ASSERT(vel.size() == p.size);
    for (std::size_t i = 0; i < p.size; ++i) {
      vel[i] = static_cast<float>(momentum_) * vel[i] - static_cast<float>(lr_) * p.grad[i];
      p.value[i] += vel[i];
    }
  }
}

void Adam::step(const std::vector<ParamRef>& params) {
  if (m_.empty()) {
    m_.reserve(params.size());
    v_.reserve(params.size());
    for (const auto& p : params) {
      m_.emplace_back(p.size, 0.0f);
      v_.emplace_back(p.size, 0.0f);
    }
  }
  if (m_.size() != params.size()) throw std::logic_error("parameter list changed");
  ++t_;
  const double bias1 = 1.0 - std::pow(beta1_, t_);
  const double bias2 = 1.0 - std::pow(beta2_, t_);
  for (std::size_t k = 0; k < params.size(); ++k) {
    const auto& p = params[k];
    auto& m = m_[k];
    auto& v = v_[k];
    AIRCH_ASSERT(m.size() == p.size);
    for (std::size_t i = 0; i < p.size; ++i) {
      const double g = p.grad[i];
      m[i] = static_cast<float>(beta1_ * static_cast<double>(m[i]) + (1.0 - beta1_) * g);
      v[i] = static_cast<float>(beta2_ * static_cast<double>(v[i]) + (1.0 - beta2_) * g * g);
      const double m_hat = static_cast<double>(m[i]) / bias1;
      const double v_hat = static_cast<double>(v[i]) / bias2;
      p.value[i] -= static_cast<float>(lr_ * m_hat / (std::sqrt(v_hat) + eps_));
    }
  }
}

double ExponentialDecaySchedule::operator()(int epoch) const {
  if (epoch < 1) throw std::invalid_argument("epoch is 1-based");
  return initial * std::pow(decay, epoch - 1);
}

double CosineSchedule::operator()(int epoch) const {
  if (epoch < 1) throw std::invalid_argument("epoch is 1-based");
  if (total_epochs <= 1) return epoch <= 1 ? initial : floor;
  const double progress =
      std::min(1.0, static_cast<double>(epoch - 1) / static_cast<double>(total_epochs - 1));
  return floor + 0.5 * (initial - floor) * (1.0 + std::cos(progress * M_PI));
}

}  // namespace airch::ml
