#include "ml/optimizer.hpp"

#include <cmath>
#include <stdexcept>

#include "common/check.hpp"
#include "ml/matrix.hpp"

namespace airch::ml {

namespace {

// The Adam update is pure elementwise double math, so SIMD width never
// changes results — each element sees the identical IEEE operation
// sequence regardless of how many are processed per instruction. The
// per-target copies below only exist because the baseline build targets
// SSE2; fp-contract stays off (an FMA would round once where the scalar
// path rounds twice), and this file is built with -fno-math-errno so sqrt
// can vectorize (vsqrtpd computes the same correctly-rounded value, it
// just skips the errno bookkeeping). mi/vi are written back immediately
// after the float rounding, so reading the local is bit-equal to the
// reference's store-then-reload.
#define AIRCH_ADAM_BODY                                                                    \
  for (std::size_t i = 0; i < n; ++i) {                                                    \
    const double g = static_cast<double>(grad[i]);                                         \
    const float mi =                                                                       \
        static_cast<float>(beta1 * static_cast<double>(m[i]) + (1.0 - beta1) * g);         \
    const float vi =                                                                       \
        static_cast<float>(beta2 * static_cast<double>(v[i]) + (1.0 - beta2) * g * g);     \
    m[i] = mi;                                                                             \
    v[i] = vi;                                                                             \
    const double m_hat = static_cast<double>(mi) / bias1;                                  \
    const double v_hat = static_cast<double>(vi) / bias2;                                  \
    value[i] -= static_cast<float>(lr * m_hat / (std::sqrt(v_hat) + eps));                 \
  }

#if defined(__x86_64__) && defined(__GNUC__) && !defined(__clang__)
__attribute__((target("avx512f,prefer-vector-width=512"), optimize("fp-contract=off"))) void
adam_update_avx512(float* value, float* m, float* v, const float* grad, std::size_t n,
                   double beta1, double beta2, double lr, double eps, double bias1,
                   double bias2) {
  AIRCH_ADAM_BODY
}

__attribute__((target("avx2"), optimize("fp-contract=off"))) void adam_update_avx2(
    float* value, float* m, float* v, const float* grad, std::size_t n, double beta1,
    double beta2, double lr, double eps, double bias1, double bias2) {
  AIRCH_ADAM_BODY
}

__attribute__((optimize("fp-contract=off"))) void adam_update_base(
    float* value, float* m, float* v, const float* grad, std::size_t n, double beta1,
    double beta2, double lr, double eps, double bias1, double bias2) {
  AIRCH_ADAM_BODY
}

using AdamUpdateFn = void (*)(float*, float*, float*, const float*, std::size_t, double,
                              double, double, double, double, double);

AdamUpdateFn select_adam_update() {
  if (__builtin_cpu_supports("avx512f")) return adam_update_avx512;
  if (__builtin_cpu_supports("avx2")) return adam_update_avx2;
  return adam_update_base;
}

void adam_update(float* value, float* m, float* v, const float* grad, std::size_t n,
                 double beta1, double beta2, double lr, double eps, double bias1,
                 double bias2) {
  static const AdamUpdateFn fn = select_adam_update();
  fn(value, m, v, grad, n, beta1, beta2, lr, eps, bias1, bias2);
}
#else
void adam_update(float* value, float* m, float* v, const float* grad, std::size_t n,
                 double beta1, double beta2, double lr, double eps, double bias1,
                 double bias2) {
  AIRCH_ADAM_BODY
}
#endif

#undef AIRCH_ADAM_BODY

}  // namespace

void Sgd::step(const std::vector<ParamRef>& params) {
  for (const auto& p : params) {
    for (std::size_t i = 0; i < p.size; ++i) {
      p.value[i] -= static_cast<float>(lr_) * p.grad[i];
    }
  }
}

void SgdMomentum::step(const std::vector<ParamRef>& params) {
  if (velocity_.empty()) {
    velocity_.reserve(params.size());
    for (const auto& p : params) velocity_.emplace_back(p.size, 0.0f);
  }
  if (velocity_.size() != params.size()) throw std::logic_error("parameter list changed");
  for (std::size_t k = 0; k < params.size(); ++k) {
    const auto& p = params[k];
    auto& vel = velocity_[k];
    AIRCH_ASSERT(vel.size() == p.size);
    for (std::size_t i = 0; i < p.size; ++i) {
      vel[i] = static_cast<float>(momentum_) * vel[i] - static_cast<float>(lr_) * p.grad[i];
      p.value[i] += vel[i];
    }
  }
}

void Adam::step(const std::vector<ParamRef>& params) {
  if (m_.empty()) {
    m_.reserve(params.size());
    v_.reserve(params.size());
    for (const auto& p : params) {
      m_.emplace_back(p.size, 0.0f);
      v_.emplace_back(p.size, 0.0f);
    }
  }
  if (m_.size() != params.size()) throw std::logic_error("parameter list changed");
  ++t_;
  const double bias1 = 1.0 - std::pow(beta1_, t_);
  const double bias2 = 1.0 - std::pow(beta2_, t_);
  for (std::size_t k = 0; k < params.size(); ++k) {
    const auto& p = params[k];
    auto& m = m_[k];
    auto& v = v_[k];
    AIRCH_ASSERT(m.size() == p.size);
    if (kernel_mode() == KernelMode::kFast) {
      adam_update(p.value, m.data(), v.data(), p.grad, p.size, beta1_, beta2_, lr_, eps_,
                  bias1, bias2);
      continue;
    }
    for (std::size_t i = 0; i < p.size; ++i) {
      const double g = p.grad[i];
      m[i] = static_cast<float>(beta1_ * static_cast<double>(m[i]) + (1.0 - beta1_) * g);
      v[i] = static_cast<float>(beta2_ * static_cast<double>(v[i]) + (1.0 - beta2_) * g * g);
      const double m_hat = static_cast<double>(m[i]) / bias1;
      const double v_hat = static_cast<double>(v[i]) / bias2;
      p.value[i] -= static_cast<float>(lr_ * m_hat / (std::sqrt(v_hat) + eps_));
    }
  }
}

double ExponentialDecaySchedule::operator()(int epoch) const {
  if (epoch < 1) throw std::invalid_argument("epoch is 1-based");
  return initial * std::pow(decay, epoch - 1);
}

double CosineSchedule::operator()(int epoch) const {
  if (epoch < 1) throw std::invalid_argument("epoch is 1-based");
  if (total_epochs <= 1) return epoch <= 1 ? initial : floor;
  const double progress =
      std::min(1.0, static_cast<double>(epoch - 1) / static_cast<double>(total_epochs - 1));
  return floor + 0.5 * (initial - floor) * (1.0 + std::cos(progress * M_PI));
}

}  // namespace airch::ml
