#pragma once
// Sequential float network, plus FeedForwardNet: the complete classifier
// body used by both the paper's MLP baselines (float input) and
// AIRCHITECT (per-feature embedding input, Fig. 2).

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "ml/dense.hpp"
#include "ml/embedding.hpp"
#include "ml/layer.hpp"
#include "ml/loss.hpp"
#include "ml/optimizer.hpp"

namespace airch::ml {

class Sequential {
 public:
  void add(std::unique_ptr<Layer> layer) { layers_.push_back(std::move(layer)); }

  Matrix forward(const Matrix& x, bool training);
  /// Side-effect-free inference forward (see Layer::infer): safe to call
  /// concurrently on one shared network, bit-identical to
  /// forward(x, /*training=*/false).
  Matrix infer(const Matrix& x) const;
  /// Backward through all layers; returns dL/d(input of first layer).
  Matrix backward(const Matrix& grad_out);
  std::vector<ParamRef> params();
  std::vector<ConstParamRef> params() const;
  std::size_t num_layers() const { return layers_.size(); }

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

struct TrainStats {
  double loss = 0.0;
  std::size_t correct = 0;
  std::size_t count = 0;

  /// Merges another batch's statistics; `loss` stays the sample-weighted
  /// mean. The in-memory and streaming fit paths both fold their batches
  /// through this operator in the same order, which is what makes their
  /// reported epoch histories bit-identical when the stream's chunk covers
  /// the whole set.
  TrainStats& operator+=(const TrainStats& other) {
    const double merged = static_cast<double>(count) + static_cast<double>(other.count);
    if (merged > 0.0) {
      loss = (loss * static_cast<double>(count) +
              other.loss * static_cast<double>(other.count)) /
             merged;
    }
    correct += other.correct;
    count += other.count;
    return *this;
  }
};

/// MLP classifier with either a float input or an embedding front-end.
class FeedForwardNet {
 public:
  /// Embedding-input variant (AIRCHITECT): per-feature vocabularies,
  /// an embedding width, then hidden ReLU layers and a logits layer.
  /// dropout > 0 inserts inverted-dropout after every hidden activation.
  FeedForwardNet(std::vector<int> vocab_sizes, std::size_t embed_dim,
                 const std::vector<std::size_t>& hidden, std::size_t classes, Rng& rng,
                 double dropout = 0.0);

  /// Float-input variant (MLP-A..D baselines).
  FeedForwardNet(std::size_t input_dim, const std::vector<std::size_t>& hidden,
                 std::size_t classes, Rng& rng, double dropout = 0.0);

  bool has_embedding() const { return embedding_ != nullptr; }
  std::size_t num_classes() const { return classes_; }

  /// Forward to logits. Exactly one of these is legal per variant.
  Matrix logits(const IntBatch& x, bool training);
  Matrix logits(const Matrix& x, bool training);

  /// Inference-mode logits with no side effects (nothing cached for a
  /// backward pass), so many threads can share one trained net. Matches
  /// logits(x, /*training=*/false) bit-for-bit.
  Matrix infer_logits(const IntBatch& x) const;
  Matrix infer_logits(const Matrix& x) const;

  /// One SGD step on a batch; returns loss/accuracy stats.
  [[nodiscard]] TrainStats train_batch(const IntBatch& x, const std::vector<std::int32_t>& y, Optimizer& opt);
  [[nodiscard]] TrainStats train_batch(const Matrix& x, const std::vector<std::int32_t>& y, Optimizer& opt);

  std::vector<std::int32_t> predict(const IntBatch& x) const;
  std::vector<std::int32_t> predict(const Matrix& x) const;

  std::vector<ParamRef> params();
  std::vector<ConstParamRef> params() const;

 private:
  [[nodiscard]] TrainStats apply_loss_and_step(const Matrix& logits_out, const std::vector<std::int32_t>& y,
                                 Optimizer& opt);

  std::unique_ptr<EmbeddingBag> embedding_;
  Sequential body_;
  std::size_t classes_ = 0;
};

}  // namespace airch::ml
