#pragma once
// Stateless activation layers.

#include <cstddef>

#include "ml/layer.hpp"

namespace airch::ml {

class ReluLayer final : public Layer {
 public:
  Matrix forward(const Matrix& x, bool training) override;
  Matrix infer(const Matrix& x) const override;
  Matrix backward(const Matrix& grad_out) override;
  std::size_t output_dim(std::size_t input_dim) const override { return input_dim; }

 private:
  Matrix mask_;  // 1 where input > 0
};

}  // namespace airch::ml
