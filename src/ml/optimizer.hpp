#pragma once
// First-order optimizers over flat parameter views. The parameter list
// must be identical (same order, same sizes) on every step() call — Adam
// and momentum keep per-parameter state indexed by position.

#include <memory>
#include <vector>

#include "ml/layer.hpp"

namespace airch::ml {

class Optimizer {
 public:
  virtual ~Optimizer() = default;
  /// Applies one update using the gradients currently stored in `params`.
  virtual void step(const std::vector<ParamRef>& params) = 0;

  /// Learning-rate access for schedulers; changing it mid-training is
  /// safe for all optimizers here.
  double learning_rate() const { return lr_; }
  void set_learning_rate(double lr) { lr_ = lr; }

 protected:
  explicit Optimizer(double lr) : lr_(lr) {}
  double lr_;
};

class Sgd final : public Optimizer {
 public:
  explicit Sgd(double lr = 0.01) : Optimizer(lr) {}
  void step(const std::vector<ParamRef>& params) override;
};

class SgdMomentum final : public Optimizer {
 public:
  explicit SgdMomentum(double lr = 0.01, double momentum = 0.9)
      : Optimizer(lr), momentum_(momentum) {}
  void step(const std::vector<ParamRef>& params) override;

 private:
  double momentum_;
  std::vector<std::vector<float>> velocity_;
};

class Adam final : public Optimizer {
 public:
  explicit Adam(double lr = 1e-3, double beta1 = 0.9, double beta2 = 0.999, double eps = 1e-8)
      : Optimizer(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {}
  void step(const std::vector<ParamRef>& params) override;

 private:
  double beta1_, beta2_, eps_;
  long t_ = 0;
  std::vector<std::vector<float>> m_;
  std::vector<std::vector<float>> v_;
};

/// Per-epoch learning-rate schedules (epoch is 1-based).
struct ExponentialDecaySchedule {
  double initial = 1e-3;
  double decay = 0.9;  ///< lr = initial * decay^(epoch-1)
  double operator()(int epoch) const;
};

struct CosineSchedule {
  double initial = 1e-3;
  double floor = 0.0;
  int total_epochs = 10;  ///< lr anneals from initial to floor over this span
  double operator()(int epoch) const;
};

}  // namespace airch::ml
