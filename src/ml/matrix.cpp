#include "ml/matrix.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>

#include "common/parallel.hpp"

namespace airch::ml {

void Matrix::init_glorot(Rng& rng) {
  const double limit = std::sqrt(6.0 / static_cast<double>(rows_ + cols_));
  for (auto& v : data_) v = static_cast<float>(rng.uniform(-limit, limit));
}

namespace {

// Process-wide kernel dispatch flag. A deliberate escape hatch from the
// capability analysis (common/sync.hpp): a lone atomic word with relaxed
// ordering is the whole protocol — readers only ever pick a code path, and
// both paths produce bit-identical results, so no mutex and no GUARDED_BY.
// The other concurrency-adjacent state in this TU is likewise lock-free by
// construction: tile_kernel's function-local statics resolve through the
// C++11 magic-statics guarantee, and the pack scratch is thread_local.
std::atomic<KernelMode> g_kernel_mode{KernelMode::kFast};

/// Scale-or-clear prologue shared by both matmul paths: C = beta * C.
void apply_beta(Matrix& c, float beta) {
  if (beta == 0.0f) {
    c.fill(0.0f);
  } else if (beta != 1.0f) {
    for (std::size_t i = 0; i < c.size(); ++i) c.data()[i] *= beta;
  }
}

}  // namespace

void set_kernel_mode(KernelMode mode) { g_kernel_mode.store(mode, std::memory_order_relaxed); }

KernelMode kernel_mode() { return g_kernel_mode.load(std::memory_order_relaxed); }

void parallel_rows(std::size_t rows, std::size_t work_per_row,
                   const std::function<void(std::size_t, std::size_t)>& fn) {
  if (rows == 0) return;
  if (kernel_mode() == KernelMode::kFast) {
    // Each worker should shoulder a few million scalar ops before a thread
    // spawn pays for itself; below that the serial loop wins outright.
    constexpr std::size_t kMinWorkPerWorker = std::size_t{2} << 20;
    const std::size_t total = rows * std::max<std::size_t>(work_per_row, 1);
    const auto workers = static_cast<unsigned>(std::min<std::size_t>(
        hardware_threads(), std::max<std::size_t>(total / kMinWorkPerWorker, 1)));
    if (workers > 1) {
      parallel_for(rows, workers, fn);
      return;
    }
  }
  fn(0, rows);
}

void matmul_reference(const Matrix& a, bool trans_a, const Matrix& b, bool trans_b, Matrix& c,
                      float alpha, float beta) {
  const std::size_t m = trans_a ? a.cols() : a.rows();
  const std::size_t k = trans_a ? a.rows() : a.cols();
  const std::size_t k2 = trans_b ? b.cols() : b.rows();
  const std::size_t n = trans_b ? b.rows() : b.cols();
  AIRCH_DCHECK(k == k2, "matmul inner dimensions must agree");
  (void)k2;
  AIRCH_DCHECK(c.rows() == m && c.cols() == n, "matmul output must be pre-sized to m x n");

  apply_beta(c, beta);

  // ikj loop order keeps the innermost accesses contiguous for the
  // untransposed cases; the transposed variants fall back to strided reads
  // of one operand. The zero-skip is load-bearing: see matmul_reference's
  // header contract.
  for (std::size_t i = 0; i < m; ++i) {
    float* c_row = c.row(i);
    for (std::size_t p = 0; p < k; ++p) {
      const float a_val = alpha * (trans_a ? a(p, i) : a(i, p));
      if (a_val == 0.0f) continue;
      if (!trans_b) {
        const float* b_row = b.row(p);
        for (std::size_t j = 0; j < n; ++j) c_row[j] += a_val * b_row[j];
      } else {
        for (std::size_t j = 0; j < n; ++j) c_row[j] += a_val * b(j, p);
      }
    }
  }
}

namespace {

// ---------------------------------------------------------------- blocked
// The fast path packs alpha * op(A) into a row-major m x k panel and op(B)
// into a row-major k x n panel, then runs a register-tiled kernel over
// MR-row output blocks. Bit-identity with the reference loop holds because
// every C element still accumulates its terms in ascending-p order with
// the identical `scaled A operand == 0 -> skip` test on the identical
// float value — blocking, packing, register accumulation, and row
// parallelism only change WHERE the operands are read from and which
// thread owns a row, never the per-element float operation sequence.
//
// Two kernel flavours exist, chosen per call:
//
//  * SKIP: keeps the reference's `v != 0.0f` branch. Always bit-safe, but
//    ReLU/dropout-zeroed operands (~50% zeros, randomly placed) make that
//    branch unpredictable, and the mispredict costs more than the NR
//    multiply-adds it skips.
//  * NOSKIP: no branch — zero terms are multiplied through. This is
//    bit-identical to skipping *provided* beta == 0 and the B panel is
//    free of inf/NaN: accumulators then start at +0.0f and addition of
//    finite values can only produce -0.0f from (-0.0f)+(-0.0f), which is
//    unreachable from a +0.0f start, so the extra `acc += 0.0f*b` terms
//    (`== ±0.0f`) never change a single bit, and with no infinities the
//    0*inf -> NaN hazard the skip exists to prevent cannot occur. Every
//    nonzero term is the same multiply and add as the reference's.
//    matmul_blocked probes both preconditions and falls back to SKIP when
//    either fails, so the documented zero-skip contract always holds.
//
// (A pack-time nonzero-compaction variant — per-row (p, value) streams —
// was prototyped for the sparse operands and measured several times
// SLOWER than either tile on the target hardware: the indexed B-row loads
// defeat hardware prefetch and the nonzero stream is re-read once per
// NR-column strip.)
constexpr std::size_t kMR = 8;
constexpr std::size_t kNR = 32;

// The kernel body is stamped out once per SIMD level and skip flavour
// below. Plain loops only: the per-target function attributes let the
// auto-vectorizer use wider registers without intrinsics. fp-contract is
// forced off in the fast-path attributes because a fused multiply-add
// rounds once where the reference's separate multiply and add round twice
// — FMA contraction would silently break bit-identity
// (tests/test_matmul_kernel.cpp catches this on random data).
//
// An MR x NR tile of C lives in acc[][] across the whole k loop, so each
// C element is loaded and stored once instead of once per p (a streaming
// kernel is store-port-bound). ZSKIP(v) is `(v) != 0.0f` for the SKIP
// flavour and `true` for NOSKIP.
#define AIRCH_MATMUL_TILE_BODY(ZSKIP)                                                   \
  for (std::size_t i = rb; i + kMR <= re; i += kMR) {                                   \
    for (std::size_t j0 = 0; j0 + kNR <= n; j0 += kNR) {                                \
      float acc[kMR][kNR];                                                              \
      for (std::size_t t = 0; t < kMR; ++t)                                             \
        for (std::size_t j = 0; j < kNR; ++j) acc[t][j] = c[(i + t) * n + j0 + j];      \
      for (std::size_t p = 0; p < k; ++p) {                                             \
        const float* bp = bpack + p * n + j0;                                           \
        for (std::size_t t = 0; t < kMR; ++t) {                                         \
          const float v = apack[(i + t) * k + p];                                       \
          if (ZSKIP(v))                                                                 \
            for (std::size_t j = 0; j < kNR; ++j) acc[t][j] += v * bp[j];               \
        }                                                                               \
      }                                                                                 \
      for (std::size_t t = 0; t < kMR; ++t)                                             \
        for (std::size_t j = 0; j < kNR; ++j) c[(i + t) * n + j0 + j] = acc[t][j];      \
    }                                                                                   \
    const std::size_t jt = (n / kNR) * kNR;                                             \
    if (jt < n) {                                                                       \
      for (std::size_t p = 0; p < k; ++p) {                                             \
        const float* bp = bpack + p * n;                                                \
        for (std::size_t t = 0; t < kMR; ++t) {                                         \
          const float v = apack[(i + t) * k + p];                                       \
          float* cr = c + (i + t) * n;                                                  \
          if (ZSKIP(v))                                                                 \
            for (std::size_t j = jt; j < n; ++j) cr[j] += v * bp[j];                    \
        }                                                                               \
      }                                                                                 \
    }                                                                                   \
  }                                                                                     \
  for (std::size_t i = re - (re - rb) % kMR; i < re; ++i) {                             \
    const float* ar = apack + i * k;                                                    \
    float* cr = c + i * n;                                                              \
    for (std::size_t p = 0; p < k; ++p) {                                               \
      const float v = ar[p];                                                            \
      if (!ZSKIP(v)) continue;                                                          \
      const float* bp = bpack + p * n;                                                  \
      for (std::size_t j = 0; j < n; ++j) cr[j] += v * bp[j];                           \
    }                                                                                   \
  }

#define AIRCH_ZTEST(v) ((v) != 0.0f)
#define AIRCH_ZALWAYS(v) true

#if defined(__x86_64__) && defined(__GNUC__) && !defined(__clang__)
#define AIRCH_MATMUL_MULTIVERSION 1
#else
#define AIRCH_MATMUL_MULTIVERSION 0
#endif

#if AIRCH_MATMUL_MULTIVERSION
__attribute__((target("avx512f,prefer-vector-width=512"), optimize("fp-contract=off"))) void
tile_skip_avx512(const float* apack, const float* bpack, float* c, std::size_t rb,
                 std::size_t re, std::size_t k, std::size_t n) {
  AIRCH_MATMUL_TILE_BODY(AIRCH_ZTEST)
}

__attribute__((target("avx2"), optimize("fp-contract=off"))) void tile_skip_avx2(
    const float* apack, const float* bpack, float* c, std::size_t rb, std::size_t re,
    std::size_t k, std::size_t n) {
  AIRCH_MATMUL_TILE_BODY(AIRCH_ZTEST)
}

__attribute__((optimize("fp-contract=off"))) void tile_skip_base(
    const float* apack, const float* bpack, float* c, std::size_t rb, std::size_t re,
    std::size_t k, std::size_t n) {
  AIRCH_MATMUL_TILE_BODY(AIRCH_ZTEST)
}

__attribute__((target("avx512f,prefer-vector-width=512"), optimize("fp-contract=off"))) void
tile_noskip_avx512(const float* apack, const float* bpack, float* c, std::size_t rb,
                   std::size_t re, std::size_t k, std::size_t n) {
  AIRCH_MATMUL_TILE_BODY(AIRCH_ZALWAYS)
}

__attribute__((target("avx2"), optimize("fp-contract=off"))) void tile_noskip_avx2(
    const float* apack, const float* bpack, float* c, std::size_t rb, std::size_t re,
    std::size_t k, std::size_t n) {
  AIRCH_MATMUL_TILE_BODY(AIRCH_ZALWAYS)
}

__attribute__((optimize("fp-contract=off"))) void tile_noskip_base(
    const float* apack, const float* bpack, float* c, std::size_t rb, std::size_t re,
    std::size_t k, std::size_t n) {
  AIRCH_MATMUL_TILE_BODY(AIRCH_ZALWAYS)
}

using TileKernelFn = void (*)(const float*, const float*, float*, std::size_t, std::size_t,
                              std::size_t, std::size_t);

TileKernelFn select_tile_kernel(bool noskip) {
  if (__builtin_cpu_supports("avx512f")) return noskip ? tile_noskip_avx512 : tile_skip_avx512;
  if (__builtin_cpu_supports("avx2")) return noskip ? tile_noskip_avx2 : tile_skip_avx2;
  return noskip ? tile_noskip_base : tile_skip_base;
}

void tile_kernel(const float* apack, const float* bpack, float* c, std::size_t rb,
                 std::size_t re, std::size_t k, std::size_t n, bool noskip) {
  static const TileKernelFn skip_fn = select_tile_kernel(false);
  static const TileKernelFn noskip_fn = select_tile_kernel(true);
  (noskip ? noskip_fn : skip_fn)(apack, bpack, c, rb, re, k, n);
}
#else
// Non-GCC / non-x86 builds: portable instantiations. Baseline targets
// have no FMA instructions, so no explicit contraction suppression is
// needed for bit-identity.
void tile_kernel(const float* apack, const float* bpack, float* c, std::size_t rb,
                 std::size_t re, std::size_t k, std::size_t n, bool noskip) {
  if (noskip) {
    AIRCH_MATMUL_TILE_BODY(AIRCH_ZALWAYS)
  } else {
    AIRCH_MATMUL_TILE_BODY(AIRCH_ZTEST)
  }
}
#endif

#undef AIRCH_MATMUL_TILE_BODY
#undef AIRCH_ZTEST
#undef AIRCH_ZALWAYS

void matmul_blocked(const Matrix& a, bool trans_a, const Matrix& b, bool trans_b, Matrix& c,
                    float alpha, float beta) {
  const std::size_t m = trans_a ? a.cols() : a.rows();
  const std::size_t k = trans_a ? a.rows() : a.cols();
  const std::size_t n = trans_b ? b.rows() : b.cols();

  // Panel scratch is per-thread and grow-only: steady-state training
  // epochs re-run identical shapes, so packing allocates nothing after
  // the first batch.
  static thread_local std::vector<float> tl_apack;
  static thread_local std::vector<float> tl_bpack;
  if (tl_apack.size() < m * k) tl_apack.resize(m * k);
  if (tl_bpack.size() < k * n) tl_bpack.resize(k * n);
  float* apack = tl_apack.data();
  float* bpack = tl_bpack.data();

  // Pack alpha * op(A) row-major. Folding alpha here reproduces the
  // reference's `a_val = alpha * a(...)` product exactly (same two
  // operands, same single rounding), so the zero-skip test in the kernel
  // sees the identical value.
  if (!trans_a) {
    for (std::size_t i = 0; i < m; ++i) {
      const float* ar = a.row(i);
      float* dst = apack + i * k;
      for (std::size_t p = 0; p < k; ++p) dst[p] = alpha * ar[p];
    }
  } else {
    for (std::size_t p = 0; p < k; ++p) {
      const float* ar = a.row(p);
      for (std::size_t i = 0; i < m; ++i) apack[i * k + p] = alpha * ar[i];
    }
  }

  // Pack op(B) row-major so the kernel's innermost j loop is contiguous
  // for every transpose combination.
  if (!trans_b) {
    std::memcpy(bpack, b.data(), k * n * sizeof(float));
  } else {
    for (std::size_t j = 0; j < n; ++j) {
      const float* br = b.row(j);
      for (std::size_t p = 0; p < k; ++p) bpack[p * n + j] = br[p];
    }
  }

  apply_beta(c, beta);

  // NOSKIP eligibility probe (see the kernel comment for the proof): the
  // branch-free kernel is bit-identical exactly when C starts at +0.0f
  // (beta == 0) and the B panel is inf/NaN-free. `x - x` is +0.0f for
  // every finite x and NaN for ±inf/NaN, so a poisoned panel makes the
  // probe sum non-zero (NaN != 0). One flop per element, vectorizable,
  // against the kernel's 2m flops per element.
  float b_probe = 0.0f;
  for (std::size_t i = 0; i < k * n; ++i) b_probe += bpack[i] - bpack[i];
  const bool noskip = beta == 0.0f && b_probe == 0.0f;

  // Partition output rows across workers; each C row is owned by exactly
  // one thread, so the parallel kernel is race-free and deterministic.
  // Workers are capped so each shoulders a few MFLOP — below that the
  // spawn/join overhead outweighs the concurrency.
  constexpr std::size_t kMinFlopsPerWorker = std::size_t{4} << 20;
  const std::size_t flops = 2 * m * k * n;
  const auto workers = static_cast<unsigned>(std::min<std::size_t>(
      hardware_threads(), std::max<std::size_t>(flops / kMinFlopsPerWorker, 1)));
  float* cd = c.data();
  if (workers <= 1) {
    tile_kernel(apack, bpack, cd, 0, m, k, n, noskip);
  } else {
    parallel_for(m, workers, [apack, bpack, cd, k, n, noskip](std::size_t rb, std::size_t re) {
      tile_kernel(apack, bpack, cd, rb, re, k, n, noskip);
    });
  }
}

}  // namespace

void matmul(const Matrix& a, bool trans_a, const Matrix& b, bool trans_b, Matrix& c,
            float alpha, float beta) {
  const std::size_t m = trans_a ? a.cols() : a.rows();
  const std::size_t k = trans_a ? a.rows() : a.cols();
  const std::size_t k2 = trans_b ? b.cols() : b.rows();
  const std::size_t n = trans_b ? b.rows() : b.cols();
  AIRCH_DCHECK(k == k2, "matmul inner dimensions must agree");
  (void)k2;
  AIRCH_DCHECK(c.rows() == m && c.cols() == n, "matmul output must be pre-sized to m x n");

  // Tiny products (single-query inference, unit-test shapes) are dominated
  // by the k x n B-panel pack; the reference loop is already optimal there
  // unless op(B) is transposed (strided inner reads). Either path returns
  // bit-identical results, so this is purely a latency dispatch.
  const bool tiny = (m == 1 && !trans_b) || 2 * m * k * n < (std::size_t{1} << 15);
  if (kernel_mode() == KernelMode::kNaive || tiny) {
    matmul_reference(a, trans_a, b, trans_b, c, alpha, beta);
    return;
  }
  matmul_blocked(a, trans_a, b, trans_b, c, alpha, beta);
}

void add_row_broadcast(Matrix& y, const std::vector<float>& row) {
  AIRCH_ASSERT(row.size() == y.cols());
  for (std::size_t i = 0; i < y.rows(); ++i) {
    float* yr = y.row(i);
    for (std::size_t j = 0; j < y.cols(); ++j) yr[j] += row[j];
  }
}

void column_sums(const Matrix& m, std::vector<float>& out) {
  out.assign(m.cols(), 0.0f);
  for (std::size_t i = 0; i < m.rows(); ++i) {
    const float* r = m.row(i);
    for (std::size_t j = 0; j < m.cols(); ++j) out[j] += r[j];
  }
}

}  // namespace airch::ml
