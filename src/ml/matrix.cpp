#include "ml/matrix.hpp"

#include <cmath>

namespace airch::ml {

void Matrix::init_glorot(Rng& rng) {
  const double limit = std::sqrt(6.0 / static_cast<double>(rows_ + cols_));
  for (auto& v : data_) v = static_cast<float>(rng.uniform(-limit, limit));
}

void matmul(const Matrix& a, bool trans_a, const Matrix& b, bool trans_b, Matrix& c,
            float alpha, float beta) {
  const std::size_t m = trans_a ? a.cols() : a.rows();
  const std::size_t k = trans_a ? a.rows() : a.cols();
  const std::size_t k2 = trans_b ? b.cols() : b.rows();
  const std::size_t n = trans_b ? b.rows() : b.cols();
  AIRCH_DCHECK(k == k2, "matmul inner dimensions must agree");
  (void)k2;
  AIRCH_DCHECK(c.rows() == m && c.cols() == n, "matmul output must be pre-sized to m x n");

  if (beta == 0.0f) {
    c.fill(0.0f);
  } else if (beta != 1.0f) {
    for (std::size_t i = 0; i < c.size(); ++i) c.data()[i] *= beta;
  }

  // ikj loop order keeps the innermost accesses contiguous for the
  // untransposed cases; the transposed variants fall back to strided reads
  // of one operand, which is fine at classifier sizes.
  for (std::size_t i = 0; i < m; ++i) {
    float* c_row = c.row(i);
    for (std::size_t p = 0; p < k; ++p) {
      const float a_val = alpha * (trans_a ? a(p, i) : a(i, p));
      if (a_val == 0.0f) continue;
      if (!trans_b) {
        const float* b_row = b.row(p);
        for (std::size_t j = 0; j < n; ++j) c_row[j] += a_val * b_row[j];
      } else {
        for (std::size_t j = 0; j < n; ++j) c_row[j] += a_val * b(j, p);
      }
    }
  }
}

void add_row_broadcast(Matrix& y, const std::vector<float>& row) {
  AIRCH_ASSERT(row.size() == y.cols());
  for (std::size_t i = 0; i < y.rows(); ++i) {
    float* yr = y.row(i);
    for (std::size_t j = 0; j < y.cols(); ++j) yr[j] += row[j];
  }
}

void column_sums(const Matrix& m, std::vector<float>& out) {
  out.assign(m.cols(), 0.0f);
  for (std::size_t i = 0; i < m.rows(); ++i) {
    const float* r = m.row(i);
    for (std::size_t j = 0; j < m.cols(); ++j) out[j] += r[j];
  }
}

}  // namespace airch::ml
