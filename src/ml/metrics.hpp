#pragma once
// Classification metrics beyond plain accuracy, used by the evaluation
// pipeline and the Fig. 10 analysis: top-k accuracy (for the hybrid
// recommend-then-rerank mode), distribution divergence between actual and
// predicted labels (quantifying Fig. 10(d-f) visually-matching claims),
// and macro-averaged F1 (robust to the heavy class imbalance of DSE
// label spaces).

#include <cstdint>
#include <vector>

#include "ml/matrix.hpp"

namespace airch::ml {

/// Fraction of rows whose true label is among the k highest scores.
/// scores: batch x classes; labels: batch entries.
double topk_accuracy(const Matrix& scores, const std::vector<std::int32_t>& labels, int k);

/// Symmetrised KL divergence (Jensen-Shannon, base-e, in [0, ln 2])
/// between two label histograms. Histograms need not be normalized.
double jensen_shannon_divergence(const std::vector<std::int64_t>& hist_p,
                                 const std::vector<std::int64_t>& hist_q);

/// Macro-averaged F1 over the classes that appear in `labels`.
double macro_f1(const std::vector<std::int32_t>& labels,
                const std::vector<std::int32_t>& predictions, int num_classes);

/// Per-class confusion counts for one class: tp / fp / fn.
struct ClassCounts {
  std::int64_t tp = 0, fp = 0, fn = 0;
};

/// Confusion counts per class (size num_classes).
std::vector<ClassCounts> confusion_counts(const std::vector<std::int32_t>& labels,
                                          const std::vector<std::int32_t>& predictions,
                                          int num_classes);

}  // namespace airch::ml
