#pragma once
// Softmax + categorical cross-entropy (the paper's training loss), fused
// for the numerically stable combined gradient (softmax - onehot) / batch.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "ml/matrix.hpp"

namespace airch::ml {

struct LossResult {
  double loss = 0.0;      ///< mean cross-entropy over the batch
  Matrix grad;            ///< dL/dlogits, batch-mean scaled
  std::size_t correct = 0;  ///< argmax == label count (for accuracy)
};

/// logits: batch x classes; labels: batch entries in [0, classes).
[[nodiscard]] LossResult softmax_cross_entropy(const Matrix& logits, const std::vector<std::int32_t>& labels);

/// In-place row-wise softmax (used at inference for probability output).
void softmax_rows(Matrix& m);

/// Row-wise argmax.
std::vector<std::int32_t> argmax_rows(const Matrix& m);

}  // namespace airch::ml
