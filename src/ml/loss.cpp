#include "ml/loss.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace airch::ml {

namespace {

/// Fast path: rows are independent, so they are processed in parallel with
/// per-row loss/correct written to scratch and folded sequentially
/// afterwards (the double summation order of the naive loop is part of the
/// bit-identity contract). Each exp() is computed once per element and
/// reused for both the gradient and p_label — reusing the identical double
/// changes nothing numerically but halves the exp cost, which dominates
/// this function.
void softmax_rows_fast(const Matrix& logits, const std::vector<std::int32_t>& labels,
                       LossResult& r, std::vector<double>& row_loss,
                       std::vector<unsigned char>& row_correct) {
  const std::size_t batch = logits.rows();
  const std::size_t classes = logits.cols();
  row_loss.assign(batch, 0.0);
  row_correct.assign(batch, 0);
  parallel_rows(batch, classes * 16, [&](std::size_t b0, std::size_t b1) {
    static thread_local std::vector<double> exps;
    if (exps.size() < classes) exps.resize(classes);
    for (std::size_t i = b0; i < b1; ++i) {
      const float* row = logits.row(i);
      float* grad_row = r.grad.row(i);
      const float max_logit = *std::max_element(row, row + classes);

      double denom = 0.0;
      for (std::size_t j = 0; j < classes; ++j) {
        exps[j] = std::exp(static_cast<double>(row[j] - max_logit));
        denom += exps[j];
      }

      const auto label = static_cast<std::size_t>(labels[i]);
      AIRCH_ASSERT(label < classes);

      std::size_t argmax = 0;
      for (std::size_t j = 0; j < classes; ++j) {
        const double p = exps[j] / denom;
        grad_row[j] = static_cast<float>(p / static_cast<double>(batch));
        if (row[j] > row[argmax]) argmax = j;
      }
      grad_row[label] -= 1.0f / static_cast<float>(batch);

      const double p_label = exps[label] / denom;
      row_loss[i] = -std::log(std::max(p_label, 1e-12));
      row_correct[i] = argmax == label ? 1 : 0;
    }
  });
}

}  // namespace

LossResult softmax_cross_entropy(const Matrix& logits, const std::vector<std::int32_t>& labels) {
  AIRCH_ASSERT(logits.rows() == labels.size());
  const std::size_t batch = logits.rows();
  const std::size_t classes = logits.cols();
  LossResult r;
  r.grad.resize(batch, classes);

  if (kernel_mode() == KernelMode::kFast) {
    static thread_local std::vector<double> row_loss;
    static thread_local std::vector<unsigned char> row_correct;
    softmax_rows_fast(logits, labels, r, row_loss, row_correct);
    double total_loss = 0.0;
    for (std::size_t i = 0; i < batch; ++i) {
      total_loss += row_loss[i];
      r.correct += row_correct[i];
    }
    r.loss = total_loss / static_cast<double>(batch);
    return r;
  }

  double total_loss = 0.0;
  for (std::size_t i = 0; i < batch; ++i) {
    const float* row = logits.row(i);
    float* grad_row = r.grad.row(i);
    const float max_logit = *std::max_element(row, row + classes);

    double denom = 0.0;
    for (std::size_t j = 0; j < classes; ++j) denom += std::exp(static_cast<double>(row[j] - max_logit));

    const auto label = static_cast<std::size_t>(labels[i]);
    AIRCH_ASSERT(label < classes);

    std::size_t argmax = 0;
    for (std::size_t j = 0; j < classes; ++j) {
      const double p = std::exp(static_cast<double>(row[j] - max_logit)) / denom;
      grad_row[j] = static_cast<float>(p / static_cast<double>(batch));
      if (row[j] > row[argmax]) argmax = j;
    }
    grad_row[label] -= 1.0f / static_cast<float>(batch);

    const double p_label =
        std::exp(static_cast<double>(row[label] - max_logit)) / denom;
    total_loss += -std::log(std::max(p_label, 1e-12));
    if (argmax == label) ++r.correct;
  }
  r.loss = total_loss / static_cast<double>(batch);
  return r;
}

void softmax_rows(Matrix& m) {
  for (std::size_t i = 0; i < m.rows(); ++i) {
    float* row = m.row(i);
    const float max_logit = *std::max_element(row, row + m.cols());
    double denom = 0.0;
    for (std::size_t j = 0; j < m.cols(); ++j) {
      row[j] = static_cast<float>(std::exp(static_cast<double>(row[j] - max_logit)));
      denom += static_cast<double>(row[j]);
    }
    for (std::size_t j = 0; j < m.cols(); ++j) {
      row[j] = static_cast<float>(static_cast<double>(row[j]) / denom);
    }
  }
}

std::vector<std::int32_t> argmax_rows(const Matrix& m) {
  std::vector<std::int32_t> out(m.rows());
  for (std::size_t i = 0; i < m.rows(); ++i) {
    const float* row = m.row(i);
    std::size_t best = 0;
    for (std::size_t j = 1; j < m.cols(); ++j) {
      if (row[j] > row[best]) best = j;
    }
    out[i] = static_cast<std::int32_t>(best);
  }
  return out;
}

}  // namespace airch::ml
