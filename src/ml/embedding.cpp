#include "ml/embedding.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/check.hpp"

namespace airch::ml {

EmbeddingBag::EmbeddingBag(std::vector<int> vocab_sizes, std::size_t dim, Rng& rng)
    : vocab_sizes_(std::move(vocab_sizes)), dim_(dim) {
  if (vocab_sizes_.empty() || dim_ == 0) throw std::invalid_argument("empty embedding spec");
  tables_.reserve(vocab_sizes_.size());
  table_grads_.reserve(vocab_sizes_.size());
  for (int vocab : vocab_sizes_) {
    if (vocab < 1) throw std::invalid_argument("vocab size must be >= 1");
    Matrix t(static_cast<std::size_t>(vocab), dim_);
    t.init_glorot(rng);
    tables_.push_back(std::move(t));
    table_grads_.emplace_back(static_cast<std::size_t>(vocab), dim_);
  }
}

Matrix EmbeddingBag::forward(const IntBatch& indices) {
  AIRCH_ASSERT(indices.cols == vocab_sizes_.size());
  cached_indices_ = indices;
  Matrix out(indices.rows, output_dim());
  // Each output row is an independent gather; row-partitioning across
  // workers is race-free and order-independent (pure copies).
  parallel_rows(indices.rows, output_dim() * 2, [&](std::size_t r0, std::size_t r1) {
    for (std::size_t r = r0; r < r1; ++r) {
      float* dst = out.row(r);
      for (std::size_t f = 0; f < vocab_sizes_.size(); ++f) {
        const int vocab = vocab_sizes_[f];
        const auto idx = static_cast<std::size_t>(
            std::clamp<std::int32_t>(indices(r, f), 0, vocab - 1));
        const float* src = tables_[f].row(idx);
        std::copy(src, src + dim_, dst + f * dim_);
      }
    }
  });
  return out;
}

Matrix EmbeddingBag::infer(const IntBatch& indices) const {
  AIRCH_ASSERT(indices.cols == vocab_sizes_.size());
  Matrix out(indices.rows, output_dim());
  parallel_rows(indices.rows, output_dim() * 2, [&](std::size_t r0, std::size_t r1) {
    for (std::size_t r = r0; r < r1; ++r) {
      float* dst = out.row(r);
      for (std::size_t f = 0; f < vocab_sizes_.size(); ++f) {
        const int vocab = vocab_sizes_[f];
        const auto idx = static_cast<std::size_t>(
            std::clamp<std::int32_t>(indices(r, f), 0, vocab - 1));
        const float* src = tables_[f].row(idx);
        std::copy(src, src + dim_, dst + f * dim_);
      }
    }
  });
  return out;
}

void EmbeddingBag::backward(const Matrix& grad_out) {
  AIRCH_ASSERT(grad_out.rows() == cached_indices_.rows && grad_out.cols() == output_dim());
  // The scatter is partitioned by FEATURE, not by row: feature f owns
  // table_grads_[f] exclusively, so concurrent workers never touch the
  // same gradient cell, and within a feature the rows are walked in
  // ascending order — the same per-cell accumulation order as the
  // original row-major loop. Race-free and bit-identical.
  const std::size_t rows = cached_indices_.rows;
  parallel_rows(vocab_sizes_.size(), rows * dim_ * 2, [&](std::size_t f0, std::size_t f1) {
    for (std::size_t f = f0; f < f1; ++f) {
      table_grads_[f].fill(0.0f);
      const int vocab = vocab_sizes_[f];
      for (std::size_t r = 0; r < rows; ++r) {
        const float* src = grad_out.row(r) + f * dim_;
        const auto idx = static_cast<std::size_t>(
            std::clamp<std::int32_t>(cached_indices_(r, f), 0, vocab - 1));
        float* dst = table_grads_[f].row(idx);
        for (std::size_t d = 0; d < dim_; ++d) dst[d] += src[d];
      }
    }
  });
}

std::vector<ParamRef> EmbeddingBag::params() {
  std::vector<ParamRef> out;
  out.reserve(tables_.size());
  for (std::size_t f = 0; f < tables_.size(); ++f) {
    out.push_back({tables_[f].data(), table_grads_[f].data(), tables_[f].size()});
  }
  return out;
}

std::vector<ConstParamRef> EmbeddingBag::params() const {
  std::vector<ConstParamRef> out;
  out.reserve(tables_.size());
  for (const Matrix& t : tables_) out.push_back({t.data(), t.size()});
  return out;
}

}  // namespace airch::ml
