#pragma once
// Fully-connected layer: y = x W + b.

#include <cstddef>
#include <vector>

#include "ml/layer.hpp"

namespace airch::ml {

class DenseLayer final : public Layer {
 public:
  DenseLayer(std::size_t in_dim, std::size_t out_dim, Rng& rng);

  Matrix forward(const Matrix& x, bool training) override;
  Matrix infer(const Matrix& x) const override;
  Matrix backward(const Matrix& grad_out) override;
  std::vector<ParamRef> params() override;
  std::vector<ConstParamRef> params() const override;
  std::size_t output_dim(std::size_t input_dim) const override;

  std::size_t in_dim() const { return in_dim_; }
  std::size_t out_dim() const { return out_dim_; }
  const Matrix& weights() const { return w_; }

 private:
  std::size_t in_dim_;
  std::size_t out_dim_;
  Matrix w_;                    // in_dim x out_dim
  std::vector<float> b_;        // out_dim
  Matrix w_grad_;
  std::vector<float> b_grad_;
  Matrix cached_input_;
};

}  // namespace airch::ml
