#include "ml/dropout.hpp"

#include <stdexcept>

#include "common/check.hpp"

namespace airch::ml {

DropoutLayer::DropoutLayer(double rate, std::uint64_t seed) : rate_(rate), rng_(seed) {
  if (rate < 0.0 || rate >= 1.0) throw std::invalid_argument("dropout rate must be in [0, 1)");
}

Matrix DropoutLayer::forward(const Matrix& x, bool training) {
  last_forward_training_ = training;
  if (!training || rate_ == 0.0) return x;
  const float keep_scale = static_cast<float>(1.0 / (1.0 - rate_));
  // Fully overwritten below; avoid the re-zeroing resize when the batch
  // shape is unchanged.
  if (mask_.rows() != x.rows() || mask_.cols() != x.cols()) mask_.resize(x.rows(), x.cols());
  Matrix y = x;
  // The mask draw MUST stay a single sequential loop: reproducibility of a
  // training run pins the order in which rng_ is consumed, so only the
  // mask *application* below is eligible for the parallel element loops.
  for (std::size_t i = 0; i < y.size(); ++i) {
    const bool keep = rng_.uniform() >= rate_;
    mask_.data()[i] = keep ? keep_scale : 0.0f;
    y.data()[i] *= mask_.data()[i];
  }
  return y;
}

Matrix DropoutLayer::backward(const Matrix& grad_out) {
  if (!last_forward_training_ || rate_ == 0.0) return grad_out;
  AIRCH_ASSERT(grad_out.rows() == mask_.rows() && grad_out.cols() == mask_.cols());
  Matrix g = grad_out;
  float* gd = g.data();
  const float* md = mask_.data();
  const std::size_t cols = g.cols();
  parallel_rows(g.rows(), cols, [gd, md, cols](std::size_t r0, std::size_t r1) {
    for (std::size_t i = r0 * cols; i < r1 * cols; ++i) gd[i] *= md[i];
  });
  return g;
}

}  // namespace airch::ml
