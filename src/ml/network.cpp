#include "ml/network.hpp"

#include <stdexcept>

#include "common/check.hpp"
#include "ml/activation.hpp"
#include "ml/dropout.hpp"

namespace airch::ml {

Matrix Sequential::forward(const Matrix& x, bool training) {
  Matrix cur = x;
  for (auto& layer : layers_) cur = layer->forward(cur, training);
  return cur;
}

Matrix Sequential::infer(const Matrix& x) const {
  Matrix cur = x;
  for (const auto& layer : layers_) cur = layer->infer(cur);
  return cur;
}

Matrix Sequential::backward(const Matrix& grad_out) {
  Matrix cur = grad_out;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) cur = (*it)->backward(cur);
  return cur;
}

std::vector<ParamRef> Sequential::params() {
  std::vector<ParamRef> out;
  for (auto& layer : layers_) {
    auto p = layer->params();
    out.insert(out.end(), p.begin(), p.end());
  }
  return out;
}

std::vector<ConstParamRef> Sequential::params() const {
  std::vector<ConstParamRef> out;
  for (const auto& layer : layers_) {
    auto p = std::as_const(*layer).params();
    out.insert(out.end(), p.begin(), p.end());
  }
  return out;
}

namespace {
void build_body(Sequential& body, std::size_t in_dim, const std::vector<std::size_t>& hidden,
                std::size_t classes, Rng& rng, double dropout) {
  std::size_t cur = in_dim;
  for (std::size_t h : hidden) {
    body.add(std::make_unique<DenseLayer>(cur, h, rng));
    body.add(std::make_unique<ReluLayer>());
    if (dropout > 0.0) body.add(std::make_unique<DropoutLayer>(dropout, rng.next_u64()));
    cur = h;
  }
  body.add(std::make_unique<DenseLayer>(cur, classes, rng));
}
}  // namespace

FeedForwardNet::FeedForwardNet(std::vector<int> vocab_sizes, std::size_t embed_dim,
                               const std::vector<std::size_t>& hidden, std::size_t classes,
                               Rng& rng, double dropout)
    : embedding_(std::make_unique<EmbeddingBag>(std::move(vocab_sizes), embed_dim, rng)),
      classes_(classes) {
  build_body(body_, embedding_->output_dim(), hidden, classes, rng, dropout);
}

FeedForwardNet::FeedForwardNet(std::size_t input_dim, const std::vector<std::size_t>& hidden,
                               std::size_t classes, Rng& rng, double dropout)
    : classes_(classes) {
  build_body(body_, input_dim, hidden, classes, rng, dropout);
}

Matrix FeedForwardNet::logits(const IntBatch& x, bool training) {
  if (!embedding_) throw std::logic_error("net has no embedding front-end");
  return body_.forward(embedding_->forward(x), training);
}

Matrix FeedForwardNet::logits(const Matrix& x, bool training) {
  if (embedding_) throw std::logic_error("net expects integer (embedding) input");
  return body_.forward(x, training);
}

Matrix FeedForwardNet::infer_logits(const IntBatch& x) const {
  if (!embedding_) throw std::logic_error("net has no embedding front-end");
  return body_.infer(embedding_->infer(x));
}

Matrix FeedForwardNet::infer_logits(const Matrix& x) const {
  if (embedding_) throw std::logic_error("net expects integer (embedding) input");
  return body_.infer(x);
}

TrainStats FeedForwardNet::apply_loss_and_step(const Matrix& logits_out,
                                               const std::vector<std::int32_t>& y,
                                               Optimizer& opt) {
  const LossResult lr = softmax_cross_entropy(logits_out, y);
  const Matrix grad_in = body_.backward(lr.grad);
  if (embedding_) embedding_->backward(grad_in);
  opt.step(params());
  return {lr.loss, lr.correct, y.size()};
}

TrainStats FeedForwardNet::train_batch(const IntBatch& x, const std::vector<std::int32_t>& y,
                                       Optimizer& opt) {
  AIRCH_ASSERT(x.rows == y.size());
  return apply_loss_and_step(logits(x, /*training=*/true), y, opt);
}

TrainStats FeedForwardNet::train_batch(const Matrix& x, const std::vector<std::int32_t>& y,
                                       Optimizer& opt) {
  AIRCH_ASSERT(x.rows() == y.size());
  return apply_loss_and_step(logits(x, /*training=*/true), y, opt);
}

std::vector<std::int32_t> FeedForwardNet::predict(const IntBatch& x) const {
  return argmax_rows(infer_logits(x));
}

std::vector<std::int32_t> FeedForwardNet::predict(const Matrix& x) const {
  return argmax_rows(infer_logits(x));
}

std::vector<ParamRef> FeedForwardNet::params() {
  std::vector<ParamRef> out;
  if (embedding_) out = embedding_->params();
  auto body = body_.params();
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

std::vector<ConstParamRef> FeedForwardNet::params() const {
  std::vector<ConstParamRef> out;
  if (embedding_) out = std::as_const(*embedding_).params();
  auto body = std::as_const(body_).params();
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

}  // namespace airch::ml
