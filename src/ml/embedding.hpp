#pragma once
// Per-feature embedding front-end (the "trained embedding" of the paper's
// Fig. 2). Each of the F integer input features has its own table mapping
// a bucketized feature value to a dim-wide dense vector; the F vectors are
// concatenated into the MLP input.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "ml/layer.hpp"
#include "ml/matrix.hpp"

namespace airch::ml {

/// Row-major batch of integer feature indices (batch x features).
struct IntBatch {
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::vector<std::int32_t> data;

  std::int32_t operator()(std::size_t r, std::size_t c) const { return data[r * cols + c]; }
  std::int32_t& operator()(std::size_t r, std::size_t c) { return data[r * cols + c]; }
  void resize(std::size_t r, std::size_t c) {
    rows = r;
    cols = c;
    data.assign(r * c, 0);
  }
};

class EmbeddingBag {
 public:
  /// vocab_sizes[f] = number of buckets for feature f; dim = vector width.
  EmbeddingBag(std::vector<int> vocab_sizes, std::size_t dim, Rng& rng);

  /// (batch x F) indices -> (batch x F*dim) concatenated embeddings.
  /// Indices are clamped into the vocab range defensively.
  Matrix forward(const IntBatch& indices);

  /// forward() without the cached_indices_ write: no backward() can follow,
  /// so concurrent infer() calls on one shared bag are race-free.
  /// Bit-identical to forward() by contract (same gather, same clamping).
  Matrix infer(const IntBatch& indices) const;

  /// Accumulates gradients for the rows touched by the last forward().
  void backward(const Matrix& grad_out);

  std::vector<ParamRef> params();
  /// Read-only parameter views (serialization from a const model).
  std::vector<ConstParamRef> params() const;

  std::size_t output_dim() const { return vocab_sizes_.size() * dim_; }
  std::size_t dim() const { return dim_; }
  std::size_t num_features() const { return vocab_sizes_.size(); }

 private:
  std::vector<int> vocab_sizes_;
  std::size_t dim_;
  std::vector<Matrix> tables_;       // per feature: vocab x dim
  std::vector<Matrix> table_grads_;  // same shapes
  IntBatch cached_indices_;
};

}  // namespace airch::ml
