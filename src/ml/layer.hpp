#pragma once
// Layer abstraction for the float part of a network (everything after the
// embedding front-end). Layers cache whatever they need from forward() for
// the subsequent backward(); one forward/backward pair per batch.

#include <cstddef>
#include <memory>
#include <vector>

#include "ml/matrix.hpp"

namespace airch::ml {

/// A view of one trainable parameter tensor and its gradient, consumed by
/// optimizers. The pointed-to storage lives inside the layer.
struct ParamRef {
  float* value = nullptr;
  float* grad = nullptr;
  std::size_t size = 0;
};

/// Read-only view of one parameter tensor (serialization path): no grad
/// pointer and no mutable access, so a const network can be saved without
/// const_cast.
struct ConstParamRef {
  const float* value = nullptr;
  std::size_t size = 0;
};

class Layer {
 public:
  virtual ~Layer() = default;

  /// Computes layer output for `x` (batch rows).
  virtual Matrix forward(const Matrix& x, bool training) = 0;

  /// Inference-mode forward with NO side effects: nothing is cached for a
  /// later backward(), so concurrent infer() calls on one shared layer are
  /// race-free (the serving path; see FeedForwardNet::infer_logits).
  /// Bit-identical to forward(x, /*training=*/false) by contract.
  virtual Matrix infer(const Matrix& x) const = 0;

  /// Given dL/d(output), accumulates parameter gradients and returns
  /// dL/d(input). Must be called after forward() on the same batch.
  virtual Matrix backward(const Matrix& grad_out) = 0;

  /// Trainable parameters (empty for stateless layers).
  virtual std::vector<ParamRef> params() { return {}; }
  /// Read-only parameter views (empty for stateless layers).
  virtual std::vector<ConstParamRef> params() const { return {}; }

  virtual std::size_t output_dim(std::size_t input_dim) const = 0;
};

}  // namespace airch::ml
