#include "ml/activation.hpp"

#include "common/check.hpp"

namespace airch::ml {

Matrix ReluLayer::forward(const Matrix& x, bool /*training*/) {
  Matrix y = x;
  // Skip the resize (which re-zeros) when the shape is unchanged — the
  // mask is fully overwritten below, and steady-state batches all share
  // one shape.
  if (mask_.rows() != x.rows() || mask_.cols() != x.cols()) mask_.resize(x.rows(), x.cols());
  float* yd = y.data();
  float* md = mask_.data();
  const std::size_t cols = x.cols();
  // Pure elementwise op: row-partitioning is trivially deterministic.
  parallel_rows(x.rows(), cols, [yd, md, cols](std::size_t r0, std::size_t r1) {
    for (std::size_t i = r0 * cols; i < r1 * cols; ++i) {
      const bool pos = yd[i] > 0.0f;
      md[i] = pos ? 1.0f : 0.0f;
      if (!pos) yd[i] = 0.0f;
    }
  });
  return y;
}

Matrix ReluLayer::infer(const Matrix& x) const {
  // forward() without the mask write: inference never backpropagates, so
  // the clamp is the whole computation and no shared state is touched.
  Matrix y = x;
  float* yd = y.data();
  const std::size_t cols = x.cols();
  parallel_rows(x.rows(), cols, [yd, cols](std::size_t r0, std::size_t r1) {
    for (std::size_t i = r0 * cols; i < r1 * cols; ++i) {
      if (!(yd[i] > 0.0f)) yd[i] = 0.0f;
    }
  });
  return y;
}

Matrix ReluLayer::backward(const Matrix& grad_out) {
  AIRCH_ASSERT(grad_out.rows() == mask_.rows() && grad_out.cols() == mask_.cols());
  Matrix g = grad_out;
  float* gd = g.data();
  const float* md = mask_.data();
  const std::size_t cols = g.cols();
  parallel_rows(g.rows(), cols, [gd, md, cols](std::size_t r0, std::size_t r1) {
    for (std::size_t i = r0 * cols; i < r1 * cols; ++i) gd[i] *= md[i];
  });
  return g;
}

}  // namespace airch::ml
