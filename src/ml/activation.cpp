#include "ml/activation.hpp"

#include "common/check.hpp"

namespace airch::ml {

Matrix ReluLayer::forward(const Matrix& x, bool /*training*/) {
  Matrix y = x;
  mask_.resize(x.rows(), x.cols());
  for (std::size_t i = 0; i < y.size(); ++i) {
    const bool pos = y.data()[i] > 0.0f;
    mask_.data()[i] = pos ? 1.0f : 0.0f;
    if (!pos) y.data()[i] = 0.0f;
  }
  return y;
}

Matrix ReluLayer::backward(const Matrix& grad_out) {
  AIRCH_ASSERT(grad_out.rows() == mask_.rows() && grad_out.cols() == mask_.cols());
  Matrix g = grad_out;
  for (std::size_t i = 0; i < g.size(); ++i) g.data()[i] *= mask_.data()[i];
  return g;
}

}  // namespace airch::ml
