#pragma once
// Inverted dropout: active only in training mode, identity at inference.
// The paper notes its case-2 model "starts to overfit" after ~22 epochs;
// dropout is the standard counter-measure exposed through
// NeuralClassifier::Options.

#include <cstddef>
#include <cstdint>

#include "common/rng.hpp"
#include "ml/layer.hpp"

namespace airch::ml {

class DropoutLayer final : public Layer {
 public:
  /// rate in [0, 1): probability of zeroing an activation.
  DropoutLayer(double rate, std::uint64_t seed);

  Matrix forward(const Matrix& x, bool training) override;
  /// Identity: inverted dropout scales at training time so inference is a
  /// plain pass-through (and therefore trivially thread-safe).
  Matrix infer(const Matrix& x) const override { return x; }
  Matrix backward(const Matrix& grad_out) override;
  std::size_t output_dim(std::size_t input_dim) const override { return input_dim; }

  double rate() const { return rate_; }

 private:
  double rate_;
  Rng rng_;
  Matrix mask_;  // scaled keep-mask from the last training forward
  bool last_forward_training_ = false;
};

}  // namespace airch::ml
