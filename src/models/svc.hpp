#pragma once
// Support-vector classifiers from the paper's baseline table (Fig. 9):
//
//  * SVC-Linear — multiclass (Crammer-Singer) hinge loss trained with
//    mini-batch subgradient descent and L2 regularization; the standard
//    large-scale primal formulation of scikit-learn's LinearSVC.
//  * SVC-RBF — the same linear machine on top of a random-Fourier-feature
//    map (Rahimi & Recht), the standard scalable approximation of a
//    radial-basis-kernel SVC. Exact kernel SVC is quadratic in dataset
//    size and infeasible at the paper's 2x10^6 training points; this
//    substitution is documented in DESIGN.md.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "ml/matrix.hpp"
#include "models/classifier.hpp"

namespace airch {

class SvcClassifier final : public Classifier {
 public:
  struct Options {
    int epochs = 10;
    std::size_t batch_size = 256;
    double learning_rate = 0.05;
    double l2 = 1e-5;
    std::uint64_t seed = 1;
    /// RBF approximation: number of random Fourier features (0 = linear).
    std::size_t rff_features = 0;
    double rff_gamma = 0.5;  ///< kernel width; features are standardized
  };

  SvcClassifier(std::string name, Options options)
      : name_(std::move(name)), options_(options) {}

  std::string name() const override { return name_; }
  std::vector<EpochStats> fit(const Dataset& train, const Dataset& val,
                              const FeatureEncoder& enc) override;
  std::vector<std::int32_t> predict(const Dataset& ds, const FeatureEncoder& enc) const override;

 private:
  /// Applies the (optional) RFF map to standardized features.
  ml::Matrix transform(const ml::Matrix& x) const;
  std::vector<std::int32_t> predict_batch(const ml::Matrix& x) const;

  std::string name_;
  Options options_;
  ml::Matrix rff_w_;            // input_dim x rff_features
  std::vector<float> rff_b_;    // rff_features
  ml::Matrix w_;                // feature_dim x classes
  std::vector<float> b_;        // classes
};

std::unique_ptr<SvcClassifier> make_svc_linear(std::uint64_t seed = 1);
std::unique_ptr<SvcClassifier> make_svc_rbf(std::uint64_t seed = 1);

}  // namespace airch
