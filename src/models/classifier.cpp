#include "models/classifier.hpp"

namespace airch {

double Classifier::accuracy(const Dataset& ds, const FeatureEncoder& enc) const {
  if (ds.empty()) return 0.0;
  const auto preds = predict(ds, enc);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < ds.size(); ++i) {
    if (preds[i] == ds[i].label) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(ds.size());
}

}  // namespace airch
