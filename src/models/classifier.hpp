#pragma once
// Common interface over every classifier evaluated in the paper's Fig. 9:
// the off-the-shelf baselines (SVCs, boosted trees, MLP-A..D) and
// AIRCHITECT itself. A classifier is fitted against a FeatureEncoder-
// prepared dataset and predicts output-space labels.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "dataset/dataset.hpp"
#include "dataset/encoding.hpp"

namespace airch {

/// Per-epoch training telemetry (single entry for non-iterative models).
struct EpochStats {
  int epoch = 0;
  double train_loss = 0.0;
  double train_accuracy = 0.0;
  double val_accuracy = 0.0;
};

class Classifier {
 public:
  virtual ~Classifier() = default;

  virtual std::string name() const = 0;

  /// Trains on `train`, monitoring `val`; returns the training history.
  /// `enc` must have been fitted on `train`.
  virtual std::vector<EpochStats> fit(const Dataset& train, const Dataset& val,
                                      const FeatureEncoder& enc) = 0;

  /// Predicts labels for every point of `ds`. const: inference must not
  /// mutate the model, so a fitted classifier can serve concurrent readers
  /// (the serving path leans on this contract).
  virtual std::vector<std::int32_t> predict(const Dataset& ds,
                                            const FeatureEncoder& enc) const = 0;

  /// Convenience: fraction of points whose prediction matches the label.
  double accuracy(const Dataset& ds, const FeatureEncoder& enc) const;
};

}  // namespace airch
