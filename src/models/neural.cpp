#include "models/neural.hpp"

#include <algorithm>
#include <istream>
#include <numeric>
#include <ostream>
#include <stdexcept>

#include "dataset/binary_io.hpp"

namespace airch {

namespace {
constexpr std::size_t kPredictChunk = 2048;
}

std::vector<EpochStats> NeuralClassifier::fit(const Dataset& train, const Dataset& val,
                                              const FeatureEncoder& enc) {
  Rng rng(options_.seed);
  fitted_input_dim_ = static_cast<std::size_t>(train.num_features());
  fitted_vocab_ = uses_embedding() ? enc.vocab_sizes() : std::vector<int>{};
  build_net(static_cast<std::size_t>(train.num_classes()), fitted_input_dim_, fitted_vocab_);
  ml::Adam opt(options_.learning_rate);

  std::vector<std::size_t> order(train.size());
  std::iota(order.begin(), order.end(), 0);

  std::vector<EpochStats> history;
  double best_val = -1.0;
  int epochs_since_best = 0;
  const ml::ExponentialDecaySchedule lr_schedule{options_.learning_rate, options_.lr_decay};
  // Per-batch input buffers are hoisted out of the epoch loop: every full
  // batch has the same shape, so the gather encoders refill the same
  // storage and steady-state epochs allocate nothing here.
  ml::IntBatch int_batch;
  ml::Matrix float_batch;
  std::vector<std::int32_t> labels;
  for (int epoch = 1; epoch <= options_.epochs; ++epoch) {
    opt.set_learning_rate(lr_schedule(epoch));
    rng.shuffle(order);
    ml::TrainStats epoch_stats;
    for (std::size_t begin = 0; begin < train.size(); begin += options_.batch_size) {
      const std::size_t end = std::min(train.size(), begin + options_.batch_size);
      labels.resize(end - begin);
      for (std::size_t i = begin; i < end; ++i) labels[i - begin] = train[order[i]].label;
      if (uses_embedding()) {
        enc.encode_int_gather_into(train, order, begin, end, int_batch);
        epoch_stats += net_->train_batch(int_batch, labels, opt);
      } else {
        enc.encode_float_gather_into(train, order, begin, end, float_batch);
        epoch_stats += net_->train_batch(float_batch, labels, opt);
      }
    }
    if (finish_epoch(epoch, epoch_stats, val, enc, history, best_val, epochs_since_best)) {
      break;  // the paper's case 2 overfits past ~22 epochs; stop here
    }
  }
  return history;
}

/// Shared per-epoch tail of fit / fit_stream: validation, history row,
/// early-stop bookkeeping. Returns true when training should stop.
bool NeuralClassifier::finish_epoch(int epoch, const ml::TrainStats& epoch_stats,
                                    const Dataset& val, const FeatureEncoder& enc,
                                    std::vector<EpochStats>& history, double& best_val,
                                    int& epochs_since_best) {
  const bool need_val = !val.empty() && (options_.early_stop_patience > 0 ||
                                         epoch % options_.log_every_epochs == 0 ||
                                         epoch == options_.epochs);
  const double val_acc = need_val ? accuracy(val, enc) : 0.0;
  if (epoch % options_.log_every_epochs == 0 || epoch == options_.epochs) {
    EpochStats es;
    es.epoch = epoch;
    es.train_loss = epoch_stats.loss;
    es.train_accuracy = epoch_stats.count > 0 ? static_cast<double>(epoch_stats.correct) /
                                                    static_cast<double>(epoch_stats.count)
                                              : 0.0;
    es.val_accuracy = val_acc;
    history.push_back(es);
  }
  if (options_.early_stop_patience > 0 && !val.empty()) {
    if (val_acc > best_val) {
      best_val = val_acc;
      epochs_since_best = 0;
    } else if (++epochs_since_best >= options_.early_stop_patience) {
      return true;
    }
  }
  return false;
}

std::vector<EpochStats> NeuralClassifier::fit_stream(BatchStream& train, const Dataset& val,
                                                     const FeatureEncoder& enc,
                                                     std::size_t chunk_points) {
  if (chunk_points == 0) throw std::invalid_argument("chunk_points must be positive");
  Rng rng(options_.seed);
  fitted_input_dim_ = static_cast<std::size_t>(train.num_features());
  fitted_vocab_ = uses_embedding() ? enc.vocab_sizes() : std::vector<int>{};
  build_net(static_cast<std::size_t>(train.num_classes()), fitted_input_dim_, fitted_vocab_);
  ml::Adam opt(options_.learning_rate);

  std::vector<EpochStats> history;
  double best_val = -1.0;
  int epochs_since_best = 0;
  const ml::ExponentialDecaySchedule lr_schedule{options_.learning_rate, options_.lr_decay};
  ml::IntBatch int_batch;
  ml::Matrix float_batch;
  std::vector<std::int32_t> labels;
  Dataset chunk;
  // One order vector per chunk position, persisted across epochs: fit()
  // re-shuffles its (already shuffled) order every epoch rather than
  // re-shuffling a fresh iota, and the chunk boundaries are identical
  // every epoch, so persisting reproduces that exact permutation walk.
  std::vector<std::vector<std::size_t>> orders;
  for (int epoch = 1; epoch <= options_.epochs; ++epoch) {
    opt.set_learning_rate(lr_schedule(epoch));
    train.reset();
    ml::TrainStats epoch_stats;
    std::size_t chunk_index = 0;
    // Shuffling is per chunk (the whole point of streaming is never
    // holding more than one chunk), so when one chunk covers the file this
    // degenerates to fit()'s full shuffle with the identical Rng sequence
    // — the bit-identity contract tested in tests/test_binary_io.cpp.
    while (train.next_batch(chunk_points, chunk)) {
      if (chunk_index == orders.size()) {
        orders.emplace_back(chunk.size());
        std::iota(orders.back().begin(), orders.back().end(), 0);
      }
      std::vector<std::size_t>& order = orders[chunk_index++];
      rng.shuffle(order);
      for (std::size_t begin = 0; begin < chunk.size(); begin += options_.batch_size) {
        const std::size_t end = std::min(chunk.size(), begin + options_.batch_size);
        labels.resize(end - begin);
        for (std::size_t i = begin; i < end; ++i) labels[i - begin] = chunk[order[i]].label;
        if (uses_embedding()) {
          enc.encode_int_gather_into(chunk, order, begin, end, int_batch);
          epoch_stats += net_->train_batch(int_batch, labels, opt);
        } else {
          enc.encode_float_gather_into(chunk, order, begin, end, float_batch);
          epoch_stats += net_->train_batch(float_batch, labels, opt);
        }
      }
    }
    if (finish_epoch(epoch, epoch_stats, val, enc, history, best_val, epochs_since_best)) {
      break;  // same early-stop rule as fit()
    }
  }
  return history;
}

std::vector<std::int32_t> NeuralClassifier::predict(const Dataset& ds,
                                                    const FeatureEncoder& enc) const {
  if (!net_) throw std::logic_error("predict before fit");
  std::vector<std::int32_t> out;
  out.reserve(ds.size());
  for (std::size_t begin = 0; begin < ds.size(); begin += kPredictChunk) {
    const std::size_t end = std::min(ds.size(), begin + kPredictChunk);
    std::vector<std::int32_t> chunk;
    if (uses_embedding()) {
      chunk = net_->predict(enc.encode_int(ds, begin, end));
    } else {
      chunk = net_->predict(enc.encode_float(ds, begin, end));
    }
    out.insert(out.end(), chunk.begin(), chunk.end());
  }
  return out;
}

std::vector<std::int32_t> NeuralClassifier::predict_batch(
    const std::vector<std::vector<std::int64_t>>& queries, const FeatureEncoder& enc) const {
  if (!net_) throw std::logic_error("predict before fit");
  if (queries.empty()) return {};
  // One packed forward for the whole query set: the matmul kernel works on
  // a (N x input_dim) batch instead of N single-row products.
  if (uses_embedding()) return net_->predict(enc.encode_int_batch(queries));
  return net_->predict(enc.encode_float_batch(queries));
}

std::vector<float> NeuralClassifier::predict_proba(const std::vector<std::int64_t>& features,
                                                   const FeatureEncoder& enc) const {
  if (!net_) throw std::logic_error("predict before fit");
  ml::Matrix logits = uses_embedding() ? net_->infer_logits(enc.encode_int(features))
                                       : net_->infer_logits(enc.encode_float(features));
  ml::softmax_rows(logits);
  return std::vector<float>(logits.row(0), logits.row(0) + logits.cols());
}

void NeuralClassifier::build_net(std::size_t classes, std::size_t input_dim,
                                 const std::vector<int>& vocab) {
  Rng rng(options_.seed);
  if (uses_embedding()) {
    net_ = std::make_unique<ml::FeedForwardNet>(vocab, options_.embed_dim, options_.hidden,
                                                classes, rng, options_.dropout);
  } else {
    net_ = std::make_unique<ml::FeedForwardNet>(input_dim, options_.hidden, classes, rng,
                                                options_.dropout);
  }
}

void NeuralClassifier::save(std::ostream& os) const {
  if (!net_) throw std::logic_error("save before fit");
  os << "neural-classifier v1\n";
  os << name_ << '\n';
  os.precision(17);
  os << options_.embed_dim << ' ' << options_.hidden.size();
  for (auto h : options_.hidden) os << ' ' << h;
  os << ' ' << options_.learning_rate << ' ' << options_.dropout << ' ' << options_.seed << '\n';
  os << net_->num_classes() << ' ' << fitted_input_dim_ << ' ' << fitted_vocab_.size();
  for (auto v : fitted_vocab_) os << ' ' << v;
  os << '\n';
  // Weights, one tensor per line. float -> text round-trips exactly at
  // max_digits10 = 9 significant digits.
  os.precision(9);
  const auto params = std::as_const(*net_).params();
  os << params.size() << '\n';
  for (const auto& p : params) {
    os << p.size;
    for (std::size_t i = 0; i < p.size; ++i) os << ' ' << p.value[i];
    os << '\n';
  }
}

std::unique_ptr<NeuralClassifier> NeuralClassifier::load(std::istream& is) {
  std::string magic, version;
  if (!(is >> magic >> version) || magic != "neural-classifier" || version != "v1") {
    throw std::runtime_error("bad neural-classifier header");
  }
  std::string name;
  if (!(is >> name)) throw std::runtime_error("bad classifier name");
  Options o;
  std::size_t hidden_count = 0;
  if (!(is >> o.embed_dim >> hidden_count)) throw std::runtime_error("bad architecture");
  o.hidden.resize(hidden_count);
  for (auto& h : o.hidden) {
    if (!(is >> h)) throw std::runtime_error("bad hidden dims");
  }
  if (!(is >> o.learning_rate >> o.dropout >> o.seed)) {
    throw std::runtime_error("bad hyperparameters");
  }

  std::size_t classes = 0, input_dim = 0, vocab_count = 0;
  if (!(is >> classes >> input_dim >> vocab_count)) throw std::runtime_error("bad shape line");
  std::vector<int> vocab(vocab_count);
  for (auto& v : vocab) {
    if (!(is >> v)) throw std::runtime_error("bad vocab sizes");
  }

  auto clf = std::make_unique<NeuralClassifier>(name, o);
  clf->fitted_input_dim_ = input_dim;
  clf->fitted_vocab_ = vocab;
  clf->build_net(classes, input_dim, vocab);

  std::size_t param_count = 0;
  if (!(is >> param_count)) throw std::runtime_error("bad parameter count");
  auto params = clf->net_->params();
  if (params.size() != param_count) throw std::runtime_error("parameter tensor count mismatch");
  for (const auto& p : params) {
    std::size_t size = 0;
    if (!(is >> size) || size != p.size) throw std::runtime_error("parameter size mismatch");
    for (std::size_t i = 0; i < p.size; ++i) {
      if (!(is >> p.value[i])) throw std::runtime_error("truncated weights");
    }
  }
  return clf;
}

std::unique_ptr<NeuralClassifier> make_mlp_a(std::uint64_t seed, int epochs) {
  NeuralClassifier::Options o;
  o.epochs = epochs;
  o.hidden = {128};
  o.seed = seed;
  return std::make_unique<NeuralClassifier>("MLP-A", o);
}

std::unique_ptr<NeuralClassifier> make_mlp_b(std::uint64_t seed, int epochs) {
  NeuralClassifier::Options o;
  o.epochs = epochs;
  o.hidden = {256};
  o.seed = seed;
  return std::make_unique<NeuralClassifier>("MLP-B", o);
}

std::unique_ptr<NeuralClassifier> make_mlp_c(std::uint64_t seed, int epochs) {
  NeuralClassifier::Options o;
  o.epochs = epochs;
  o.hidden = {128, 128};
  o.seed = seed;
  return std::make_unique<NeuralClassifier>("MLP-C", o);
}

std::unique_ptr<NeuralClassifier> make_mlp_d(std::uint64_t seed, int epochs) {
  NeuralClassifier::Options o;
  o.epochs = epochs;
  o.hidden = {256, 256};
  o.seed = seed;
  return std::make_unique<NeuralClassifier>("MLP-D", o);
}

std::unique_ptr<NeuralClassifier> make_airchitect(std::uint64_t seed, int epochs) {
  NeuralClassifier::Options o;
  o.hidden = {256};
  o.embed_dim = 16;
  o.epochs = epochs;
  o.seed = seed;
  return std::make_unique<NeuralClassifier>("AIrchitect", o);
}

}  // namespace airch
