#include "models/svc.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "ml/loss.hpp"

namespace airch {

namespace {
constexpr std::size_t kPredictChunk = 2048;
}

ml::Matrix SvcClassifier::transform(const ml::Matrix& x) const {
  if (options_.rff_features == 0) return x;
  // z(x) = sqrt(2/D) * cos(x W + b)
  ml::Matrix proj(x.rows(), options_.rff_features);
  ml::matmul(x, false, rff_w_, false, proj);
  const float scale = std::sqrt(2.0f / static_cast<float>(options_.rff_features));
  for (std::size_t i = 0; i < proj.rows(); ++i) {
    float* row = proj.row(i);
    for (std::size_t j = 0; j < proj.cols(); ++j) {
      row[j] = scale * std::cos(row[j] + rff_b_[j]);
    }
  }
  return proj;
}

std::vector<EpochStats> SvcClassifier::fit(const Dataset& train, const Dataset& val,
                                           const FeatureEncoder& enc) {
  Rng rng(options_.seed);
  const auto classes = static_cast<std::size_t>(train.num_classes());
  const auto input_dim = static_cast<std::size_t>(train.num_features());

  if (options_.rff_features > 0) {
    rff_w_.resize(input_dim, options_.rff_features);
    const float w_scale = std::sqrt(2.0f * static_cast<float>(options_.rff_gamma));
    for (std::size_t i = 0; i < rff_w_.size(); ++i) {
      rff_w_.data()[i] = w_scale * static_cast<float>(rng.normal());
    }
    rff_b_.resize(options_.rff_features);
    for (auto& b : rff_b_) b = static_cast<float>(rng.uniform(0.0, 2.0 * M_PI));
  }
  const std::size_t feat_dim = options_.rff_features > 0 ? options_.rff_features : input_dim;
  w_.resize(feat_dim, classes);
  b_.assign(classes, 0.0f);

  std::vector<std::size_t> order(train.size());
  std::iota(order.begin(), order.end(), 0);

  std::vector<EpochStats> history;
  for (int epoch = 1; epoch <= options_.epochs; ++epoch) {
    rng.shuffle(order);
    const float lr =
        static_cast<float>(options_.learning_rate / (1.0 + 0.5 * (epoch - 1)));
    double loss_sum = 0.0;
    std::size_t correct = 0;

    for (std::size_t begin = 0; begin < train.size(); begin += options_.batch_size) {
      const std::size_t end = std::min(train.size(), begin + options_.batch_size);
      const ml::Matrix x = transform(enc.encode_float_gather(train, order, begin, end));
      const std::size_t bs = end - begin;

      ml::Matrix scores(bs, classes);
      ml::matmul(x, false, w_, false, scores);
      ml::add_row_broadcast(scores, b_);

      // Crammer-Singer subgradient: push down the worst margin violator,
      // push up the true class.
      ml::Matrix grad_scores(bs, classes);  // zero-initialized
      for (std::size_t i = 0; i < bs; ++i) {
        const auto y = static_cast<std::size_t>(train[order[begin + i]].label);
        const float* s = scores.row(i);
        std::size_t worst = y == 0 ? 1 : 0;
        for (std::size_t j = 0; j < classes; ++j) {
          if (j != y && s[j] > s[worst]) worst = j;
        }
        const float violation = 1.0f + s[worst] - s[y];
        if (violation > 0.0f) {
          loss_sum += static_cast<double>(violation);
          grad_scores(i, worst) = 1.0f / static_cast<float>(bs);
          grad_scores(i, y) = -1.0f / static_cast<float>(bs);
        }
        std::size_t argmax = 0;
        for (std::size_t j = 1; j < classes; ++j) {
          if (s[j] > s[argmax]) argmax = j;
        }
        if (argmax == y) ++correct;
      }

      // W -= lr * (x^T grad_scores + l2 * W); b -= lr * colsum(grad_scores)
      ml::Matrix w_grad(feat_dim, classes);
      ml::matmul(x, true, grad_scores, false, w_grad);
      const float decay = 1.0f - lr * static_cast<float>(options_.l2);
      for (std::size_t i = 0; i < w_.size(); ++i) {
        w_.data()[i] = w_.data()[i] * decay - lr * w_grad.data()[i];
      }
      std::vector<float> b_grad;
      ml::column_sums(grad_scores, b_grad);
      for (std::size_t j = 0; j < classes; ++j) b_[j] -= lr * b_grad[j];
    }

    EpochStats es;
    es.epoch = epoch;
    es.train_loss = train.size() ? loss_sum / static_cast<double>(train.size()) : 0.0;
    es.train_accuracy =
        train.size() ? static_cast<double>(correct) / static_cast<double>(train.size()) : 0.0;
    es.val_accuracy = val.empty() ? 0.0 : accuracy(val, enc);
    history.push_back(es);
  }
  return history;
}

std::vector<std::int32_t> SvcClassifier::predict_batch(const ml::Matrix& x) const {
  ml::Matrix scores(x.rows(), w_.cols());
  ml::matmul(x, false, w_, false, scores);
  ml::add_row_broadcast(scores, b_);
  return ml::argmax_rows(scores);
}

std::vector<std::int32_t> SvcClassifier::predict(const Dataset& ds,
                                                 const FeatureEncoder& enc) const {
  if (w_.empty()) throw std::logic_error("predict before fit");
  std::vector<std::int32_t> out;
  out.reserve(ds.size());
  for (std::size_t begin = 0; begin < ds.size(); begin += kPredictChunk) {
    const std::size_t end = std::min(ds.size(), begin + kPredictChunk);
    const auto chunk = predict_batch(transform(enc.encode_float(ds, begin, end)));
    out.insert(out.end(), chunk.begin(), chunk.end());
  }
  return out;
}

std::unique_ptr<SvcClassifier> make_svc_linear(std::uint64_t seed) {
  SvcClassifier::Options o;
  o.seed = seed;
  return std::make_unique<SvcClassifier>("SVC-Linear", o);
}

std::unique_ptr<SvcClassifier> make_svc_rbf(std::uint64_t seed) {
  SvcClassifier::Options o;
  o.seed = seed;
  o.rff_features = 512;
  return std::make_unique<SvcClassifier>("SVC-RBF", o);
}

}  // namespace airch
