#pragma once
// Gradient-boosted decision trees with a softmax multiclass objective —
// our from-scratch stand-in for the paper's XGBoost baseline. Second-order
// (gradient + hessian) boosting with histogram split finding over the
// FeatureEncoder's bucketized features, depth-limited trees, and shrinkage.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "models/classifier.hpp"

namespace airch {

class GbtClassifier final : public Classifier {
 public:
  struct Options {
    int rounds = 10;          ///< boosting rounds (one tree per class each)
    int max_depth = 4;
    double learning_rate = 0.3;
    double lambda = 1.0;      ///< L2 on leaf weights
    double gamma = 0.0;       ///< minimum split gain
    std::size_t min_node_size = 16;
    std::size_t max_train_points = 50000;  ///< subsample cap (keeps K-class boosting tractable)
    std::uint64_t seed = 1;
  };

  GbtClassifier(std::string name, Options options)
      : name_(std::move(name)), options_(options) {}

  std::string name() const override { return name_; }
  std::vector<EpochStats> fit(const Dataset& train, const Dataset& val,
                              const FeatureEncoder& enc) override;
  std::vector<std::int32_t> predict(const Dataset& ds, const FeatureEncoder& enc) const override;

 private:
  struct Node {
    bool is_leaf = true;
    int feature = -1;
    std::int32_t threshold = 0;  ///< go left if bucket <= threshold
    int left = -1;
    int right = -1;
    float value = 0.0f;
  };
  struct Tree {
    std::vector<Node> nodes;
    float predict(const std::int32_t* buckets) const;
  };

  Tree fit_tree(const std::vector<std::int32_t>& buckets, std::size_t num_features,
                const std::vector<int>& vocab, const std::vector<float>& grad,
                const std::vector<float>& hess, std::vector<std::size_t>& indices) const;

  std::string name_;
  Options options_;
  int classes_ = 0;
  std::vector<std::vector<Tree>> rounds_;  // rounds_[r][k] = tree for class k
};

std::unique_ptr<GbtClassifier> make_xgboost_like(std::uint64_t seed = 1);

}  // namespace airch
