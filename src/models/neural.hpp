#pragma once
// Neural classifiers: the MLP-A..D baselines (standardized float input)
// and AIRCHITECT (per-feature embedding input, paper Fig. 2). Both share
// one mini-batch training loop; the input modality is selected by
// Options::embed_dim (0 = float MLP, >0 = embedding front-end).

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "ml/network.hpp"
#include "models/classifier.hpp"

namespace airch {

class BatchStream;

class NeuralClassifier final : public Classifier {
 public:
  struct Options {
    std::vector<std::size_t> hidden = {256};  ///< hidden layer widths
    std::size_t embed_dim = 0;                ///< 0 = float input, >0 = embeddings
    int epochs = 15;                          ///< paper trains ~15-22 epochs
    std::size_t batch_size = 256;
    double learning_rate = 1e-3;              ///< Adam
    double lr_decay = 1.0;                    ///< per-epoch multiplicative decay
    double dropout = 0.0;                     ///< hidden-layer dropout rate
    int early_stop_patience = 0;              ///< stop after N epochs without
                                              ///< val-accuracy improvement (0 = off)
    std::uint64_t seed = 1;
    int log_every_epochs = 1;                 ///< history granularity
  };

  NeuralClassifier(std::string name, Options options)
      : name_(std::move(name)), options_(options) {}

  std::string name() const override { return name_; }
  std::vector<EpochStats> fit(const Dataset& train, const Dataset& val,
                              const FeatureEncoder& enc) override;

  /// fit() for datasets that never fit in memory at once: streams the
  /// binary training file chunk-by-chunk (≤ chunk_points each), one pass
  /// per epoch, shuffling within each chunk. When a single chunk covers
  /// the whole file this is bit-identical to fit() on the materialized
  /// dataset (same Rng sequence, same batch fold order) — property-tested
  /// in tests/test_binary_io.cpp.
  std::vector<EpochStats> fit_stream(BatchStream& train, const Dataset& val,
                                     const FeatureEncoder& enc, std::size_t chunk_points);

  std::vector<std::int32_t> predict(const Dataset& ds, const FeatureEncoder& enc) const override;

  /// Batched inference over raw feature vectors: encodes all queries into
  /// one packed batch and runs a single forward pass (serving path; see
  /// Recommender::recommend_batch). const and side-effect-free: routed
  /// through FeedForwardNet::infer_logits, so concurrent callers sharing
  /// one fitted model are race-free.
  std::vector<std::int32_t> predict_batch(const std::vector<std::vector<std::int64_t>>& queries,
                                          const FeatureEncoder& enc) const;

  /// Class-probability scores for one feature vector (inference path).
  std::vector<float> predict_proba(const std::vector<std::int64_t>& features,
                                   const FeatureEncoder& enc) const;

  const Options& options() const { return options_; }

  /// Text serialization of the fitted network (architecture + weights).
  /// Throws std::logic_error before fit().
  void save(std::ostream& os) const;
  /// Rebuilds a fitted classifier saved with save().
  static std::unique_ptr<NeuralClassifier> load(std::istream& is);

 private:
  bool uses_embedding() const { return options_.embed_dim > 0; }
  void build_net(std::size_t classes, std::size_t input_dim, const std::vector<int>& vocab);
  bool finish_epoch(int epoch, const ml::TrainStats& epoch_stats, const Dataset& val,
                    const FeatureEncoder& enc, std::vector<EpochStats>& history,
                    double& best_val, int& epochs_since_best);

  std::string name_;
  Options options_;
  std::unique_ptr<ml::FeedForwardNet> net_;
  // Fit-time shape metadata, required to rebuild the net at load().
  std::size_t fitted_input_dim_ = 0;
  std::vector<int> fitted_vocab_;
};

/// Factory helpers matching the paper's model table (Fig. 9).
std::unique_ptr<NeuralClassifier> make_mlp_a(std::uint64_t seed = 1, int epochs = 15);  ///< 1 x 128
std::unique_ptr<NeuralClassifier> make_mlp_b(std::uint64_t seed = 1, int epochs = 15);  ///< 1 x 256
std::unique_ptr<NeuralClassifier> make_mlp_c(std::uint64_t seed = 1, int epochs = 15);  ///< 2 x 128
std::unique_ptr<NeuralClassifier> make_mlp_d(std::uint64_t seed = 1, int epochs = 15);  ///< 2 x 256
/// AIRCHITECT: 16-wide embeddings + one 256-node hidden layer.
std::unique_ptr<NeuralClassifier> make_airchitect(std::uint64_t seed = 1, int epochs = 15);

}  // namespace airch
