#include "models/gbt.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "common/parallel.hpp"

namespace airch {

float GbtClassifier::Tree::predict(const std::int32_t* buckets) const {
  int cur = 0;
  while (!nodes[static_cast<std::size_t>(cur)].is_leaf) {
    const Node& n = nodes[static_cast<std::size_t>(cur)];
    cur = buckets[n.feature] <= n.threshold ? n.left : n.right;
  }
  return nodes[static_cast<std::size_t>(cur)].value;
}

namespace {
struct SplitChoice {
  double gain = 0.0;
  int feature = -1;
  std::int32_t threshold = 0;
};
}  // namespace

GbtClassifier::Tree GbtClassifier::fit_tree(const std::vector<std::int32_t>& buckets,
                                            std::size_t num_features,
                                            const std::vector<int>& vocab,
                                            const std::vector<float>& grad,
                                            const std::vector<float>& hess,
                                            std::vector<std::size_t>& indices) const {
  Tree tree;

  // Recursive partitioning over `indices` in-place; work stack of
  // (node id, begin, end, depth).
  struct Work {
    int node;
    std::size_t begin, end;
    int depth;
  };
  tree.nodes.push_back({});
  std::vector<Work> stack{{0, 0, indices.size(), 0}};

  while (!stack.empty()) {
    const Work w = stack.back();
    stack.pop_back();

    double g_sum = 0.0, h_sum = 0.0;
    for (std::size_t i = w.begin; i < w.end; ++i) {
      g_sum += static_cast<double>(grad[indices[i]]);
      h_sum += static_cast<double>(hess[indices[i]]);
    }
    const double parent_score = g_sum * g_sum / (h_sum + options_.lambda);

    auto make_leaf = [&] {
      tree.nodes[static_cast<std::size_t>(w.node)].is_leaf = true;
      tree.nodes[static_cast<std::size_t>(w.node)].value =
          static_cast<float>(-g_sum / (h_sum + options_.lambda));
    };

    if (w.depth >= options_.max_depth || w.end - w.begin < 2 * options_.min_node_size) {
      make_leaf();
      continue;
    }

    // Histogram split search over all features and bucket thresholds.
    SplitChoice best;
    std::vector<double> g_hist, h_hist;
    std::vector<std::size_t> c_hist;
    for (std::size_t f = 0; f < num_features; ++f) {
      const auto nb = static_cast<std::size_t>(vocab[f]);
      if (nb < 2) continue;
      g_hist.assign(nb, 0.0);
      h_hist.assign(nb, 0.0);
      c_hist.assign(nb, 0);
      for (std::size_t i = w.begin; i < w.end; ++i) {
        const std::size_t row = indices[i];
        const auto b = static_cast<std::size_t>(buckets[row * num_features + f]);
        g_hist[b] += static_cast<double>(grad[row]);
        h_hist[b] += static_cast<double>(hess[row]);
        ++c_hist[b];
      }
      double g_left = 0.0, h_left = 0.0;
      std::size_t c_left = 0;
      for (std::size_t t = 0; t + 1 < nb; ++t) {
        g_left += g_hist[t];
        h_left += h_hist[t];
        c_left += c_hist[t];
        const std::size_t c_right = (w.end - w.begin) - c_left;
        if (c_left < options_.min_node_size || c_right < options_.min_node_size) continue;
        const double g_right = g_sum - g_left;
        const double h_right = h_sum - h_left;
        const double gain = g_left * g_left / (h_left + options_.lambda) +
                            g_right * g_right / (h_right + options_.lambda) - parent_score -
                            options_.gamma;
        if (gain > best.gain) {
          best = {gain, static_cast<int>(f), static_cast<std::int32_t>(t)};
        }
      }
    }

    if (best.feature < 0) {
      make_leaf();
      continue;
    }

    // Partition indices by the chosen split.
    const auto mid = static_cast<std::size_t>(
        std::partition(indices.begin() + static_cast<std::ptrdiff_t>(w.begin),
                       indices.begin() + static_cast<std::ptrdiff_t>(w.end),
                       [&](std::size_t row) {
                         return buckets[row * num_features +
                                        static_cast<std::size_t>(best.feature)] <= best.threshold;
                       }) -
        indices.begin());

    const int left = static_cast<int>(tree.nodes.size());
    const int right = left + 1;
    tree.nodes.push_back({});  // may reallocate: take the node reference after
    tree.nodes.push_back({});
    Node& node = tree.nodes[static_cast<std::size_t>(w.node)];
    node.is_leaf = false;
    node.feature = best.feature;
    node.threshold = best.threshold;
    node.left = left;
    node.right = right;
    stack.push_back({left, w.begin, mid, w.depth + 1});
    stack.push_back({right, mid, w.end, w.depth + 1});
  }
  return tree;
}

std::vector<EpochStats> GbtClassifier::fit(const Dataset& train, const Dataset& val,
                                           const FeatureEncoder& enc) {
  classes_ = train.num_classes();
  rounds_.clear();
  const auto nf = static_cast<std::size_t>(train.num_features());
  const std::vector<int> vocab = enc.vocab_sizes();

  // Optional subsample: K-class boosting cost scales with n * K.
  Rng rng(options_.seed);
  std::vector<std::size_t> keep(train.size());
  std::iota(keep.begin(), keep.end(), 0);
  if (train.size() > options_.max_train_points) {
    rng.shuffle(keep);
    keep.resize(options_.max_train_points);
  }
  const std::size_t n = keep.size();

  // Pre-bucketize once.
  std::vector<std::int32_t> buckets(n * nf);
  std::vector<std::int32_t> labels(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto& p = train[keep[i]];
    labels[i] = p.label;
    for (std::size_t f = 0; f < nf; ++f) {
      buckets[i * nf + f] = enc.bucket(static_cast<int>(f), p.features[f]);
    }
  }

  const auto k = static_cast<std::size_t>(classes_);
  std::vector<float> scores(n * k, 0.0f);
  std::vector<float> prob(n * k);
  std::vector<float> grad(n), hess(n);

  std::vector<EpochStats> history;
  for (int round = 1; round <= options_.rounds; ++round) {
    // Softmax over current scores.
    double loss_sum = 0.0;
    std::size_t correct = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const float* s = &scores[i * k];
      float* p = &prob[i * k];
      const float mx = *std::max_element(s, s + k);
      double denom = 0.0;
      for (std::size_t c = 0; c < k; ++c) denom += std::exp(static_cast<double>(s[c] - mx));
      std::size_t argmax = 0;
      for (std::size_t c = 0; c < k; ++c) {
        p[c] = static_cast<float>(std::exp(static_cast<double>(s[c] - mx)) / denom);
        if (s[c] > s[argmax]) argmax = c;
      }
      const auto y = static_cast<std::size_t>(labels[i]);
      loss_sum += -std::log(std::max<double>(p[y], 1e-12));
      if (argmax == y) ++correct;
    }

    // One tree per class, parallel across classes.
    std::vector<Tree> round_trees(k);
    std::vector<std::vector<float>> class_grad(k), class_hess(k);
    for (std::size_t c = 0; c < k; ++c) {
      class_grad[c].resize(n);
      class_hess[c].resize(n);
      for (std::size_t i = 0; i < n; ++i) {
        const float p = prob[i * k + c];
        const float y = labels[i] == static_cast<std::int32_t>(c) ? 1.0f : 0.0f;
        class_grad[c][i] = p - y;
        class_hess[c][i] = std::max(p * (1.0f - p), 1e-6f);
      }
    }
    parallel_for(k, [&](std::size_t begin, std::size_t end) {
      for (std::size_t c = begin; c < end; ++c) {
        std::vector<std::size_t> idx(n);
        std::iota(idx.begin(), idx.end(), 0);
        round_trees[c] = fit_tree(buckets, nf, vocab, class_grad[c], class_hess[c], idx);
      }
    });

    // Update scores with shrinkage.
    for (std::size_t i = 0; i < n; ++i) {
      const std::int32_t* row = &buckets[i * nf];
      for (std::size_t c = 0; c < k; ++c) {
        scores[i * k + c] += static_cast<float>(options_.learning_rate) *
                             round_trees[c].predict(row);
      }
    }
    rounds_.push_back(std::move(round_trees));

    EpochStats es;
    es.epoch = round;
    es.train_loss = n ? loss_sum / static_cast<double>(n) : 0.0;
    es.train_accuracy = n ? static_cast<double>(correct) / static_cast<double>(n) : 0.0;
    es.val_accuracy =
        (!val.empty() && round == options_.rounds) ? accuracy(val, enc) : 0.0;
    history.push_back(es);
  }
  return history;
}

std::vector<std::int32_t> GbtClassifier::predict(const Dataset& ds,
                                                 const FeatureEncoder& enc) const {
  if (rounds_.empty()) throw std::logic_error("predict before fit");
  const auto nf = static_cast<std::size_t>(ds.num_features());
  const auto k = static_cast<std::size_t>(classes_);
  std::vector<std::int32_t> out(ds.size());
  parallel_for(ds.size(), [&](std::size_t begin, std::size_t end) {
    std::vector<std::int32_t> row(nf);
    std::vector<float> score(k);
    for (std::size_t i = begin; i < end; ++i) {
      for (std::size_t f = 0; f < nf; ++f) {
        row[f] = enc.bucket(static_cast<int>(f), ds[i].features[f]);
      }
      std::fill(score.begin(), score.end(), 0.0f);
      for (const auto& trees : rounds_) {
        for (std::size_t c = 0; c < k; ++c) {
          score[c] += static_cast<float>(options_.learning_rate) * trees[c].predict(row.data());
        }
      }
      out[i] = static_cast<std::int32_t>(
          std::max_element(score.begin(), score.end()) - score.begin());
    }
  });
  return out;
}

std::unique_ptr<GbtClassifier> make_xgboost_like(std::uint64_t seed) {
  GbtClassifier::Options o;
  o.seed = seed;
  return std::make_unique<GbtClassifier>("XGBoost", o);
}

}  // namespace airch
