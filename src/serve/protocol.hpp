#pragma once
// Wire protocol for the recommender service (docs/performance.md,
// "Serving"). Frames follow the repo's binary-framing discipline
// (common/binio.hpp): little-endian fixed-width fields, every count
// validated against the bytes actually present BEFORE any allocation
// sized from it, and a word-folded FNV trailer digest over every byte
// before it — so any single-byte corruption in transit surfaces as a
// thrown airch::ContractViolation, never as a garbage recommendation.
//
// A frame travels on the socket as  [u32 body length][body]  and the body
// is:
//
//   u32 magic 'ARSV'   u32 version   u32 type
//   type-specific payload
//   u64 trailer digest (over every body byte before it)
//
//   kQuery: u32 case id, u32 N, u32 F, then N*F i64 features (row-major)
//   kReply: u32 N, then N i32 labels
//   kError: u32 byte count, then that many message bytes
//
// The protocol is deliberately request/response-per-frame: the SERVER
// coalesces concurrent requests into admission batches (serve/server.hpp);
// clients stay oblivious.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace airch::serve {

inline constexpr std::uint32_t kMagic = 0x41525356;  // 'ARSV'
inline constexpr std::uint32_t kVersion = 1;

enum class FrameType : std::uint32_t {
  kQuery = 1,
  kReply = 2,
  kError = 3,
};

/// Hard caps, enforced on both encode and decode: a malformed or hostile
/// length field can never drive an allocation past these.
inline constexpr std::size_t kMaxQueriesPerFrame = 4096;
inline constexpr std::size_t kMaxFeaturesPerQuery = 64;
inline constexpr std::size_t kMaxErrorBytes = 1024;
/// Largest legal body: a full query frame plus header and trailer.
inline constexpr std::size_t kMaxFrameBytes =
    64 + kMaxQueriesPerFrame * kMaxFeaturesPerQuery * sizeof(std::int64_t);

/// One client request: N same-arity feature vectors for one case study.
struct QueryFrame {
  int case_id = 0;
  std::size_t num_features = 0;
  /// Row-major N x num_features.
  std::vector<std::int64_t> features;

  std::size_t num_queries() const {
    return num_features == 0 ? 0 : features.size() / num_features;
  }
};

/// Decoded frame: exactly one of the payloads is meaningful per `type`.
struct Frame {
  FrameType type = FrameType::kError;
  QueryFrame query;                  ///< kQuery
  std::vector<std::int32_t> labels;  ///< kReply
  std::string error;                 ///< kError
};

/// Encoders produce a complete body (header + payload + trailer digest),
/// ready for the u32-length-prefixed socket framing (serve/socket.hpp).
/// Each AIRCH_CHECKs its caps, so an over-sized request dies in the
/// client process instead of on the wire.
std::vector<unsigned char> encode_query(const QueryFrame& q);
std::vector<unsigned char> encode_reply(const std::vector<std::int32_t>& labels);
std::vector<unsigned char> encode_error(const std::string& message);

/// Decodes and validates one body: magic, version, caps, exact length,
/// and the trailer digest. Throws airch::ContractViolation on any
/// violation.
Frame decode_frame(const unsigned char* data, std::size_t n);

}  // namespace airch::serve
