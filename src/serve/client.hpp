#pragma once
// Blocking client for the recommender service: one connection, one
// request/response in flight at a time. Concurrency comes from running
// many clients (bench/bench_serve.cpp drives one per load thread), not
// from pipelining a single connection — the SERVER coalesces across
// connections.

#include <cstdint>
#include <vector>

#include "serve/protocol.hpp"
#include "serve/socket.hpp"

namespace airch::serve {

class RecommenderClient {
 public:
  /// Connects to a RecommenderService on 127.0.0.1:port; throws
  /// std::runtime_error when the service is not there.
  explicit RecommenderClient(int port);

  /// Sends one query frame (N same-arity feature vectors for `case_id`)
  /// and blocks for the verdict. Returns the N labels; rethrows a service
  /// error frame as std::runtime_error carrying the service's message.
  std::vector<std::int32_t> recommend_batch(
      int case_id, const std::vector<std::vector<std::int64_t>>& queries);

 private:
  Socket sock_;
};

}  // namespace airch::serve
