#include "serve/client.hpp"

#include <stdexcept>

#include "common/check.hpp"

namespace airch::serve {

RecommenderClient::RecommenderClient(int port) : sock_(connect_local(port)) {}

std::vector<std::int32_t> RecommenderClient::recommend_batch(
    int case_id, const std::vector<std::vector<std::int64_t>>& queries) {
  AIRCH_CHECK(!queries.empty(), "recommend_batch needs at least one query");
  QueryFrame q;
  q.case_id = case_id;
  q.num_features = queries.front().size();
  q.features.reserve(queries.size() * q.num_features);
  for (const auto& row : queries) {
    AIRCH_CHECK(row.size() == q.num_features, "ragged query batch");
    q.features.insert(q.features.end(), row.begin(), row.end());
  }
  sock_.send_frame(encode_query(q));
  auto body = sock_.recv_frame(kMaxFrameBytes);
  if (!body) throw std::runtime_error("service closed the connection");
  Frame reply = decode_frame(body->data(), body->size());
  switch (reply.type) {
    case FrameType::kReply:
      AIRCH_CHECK(reply.labels.size() == queries.size(),
                  "service answered the wrong number of queries");
      return reply.labels;
    case FrameType::kError:
      throw std::runtime_error("service error: " + reply.error);
    default:
      throw std::runtime_error("unexpected frame type from the service");
  }
}

}  // namespace airch::serve
