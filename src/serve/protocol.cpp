#include "serve/protocol.hpp"

#include <algorithm>

#include "common/binio.hpp"
#include "common/check.hpp"

namespace airch::serve {

namespace {

/// In-memory little-endian appender mirroring BinWriter's encoding (byte
/// shifts, running ByteChecksum) for socket bodies instead of files.
class BodyWriter {
 public:
  void put_u32(std::uint32_t v) {
    unsigned char b[4];
    for (int i = 0; i < 4; ++i) b[i] = static_cast<unsigned char>(v >> (8 * i));
    append(b, sizeof b);
  }
  void put_u64(std::uint64_t v) {
    unsigned char b[8];
    for (int i = 0; i < 8; ++i) b[i] = static_cast<unsigned char>(v >> (8 * i));
    append(b, sizeof b);
  }
  void put_i64(std::int64_t v) { put_u64(static_cast<std::uint64_t>(v)); }
  void put_i32(std::int32_t v) { put_u32(static_cast<std::uint32_t>(v)); }
  void put_bytes(const void* data, std::size_t n) {
    append(static_cast<const unsigned char*>(data), n);
  }

  /// Appends the digest over everything written so far; write nothing
  /// after this.
  void put_trailer_checksum() { put_u64(sum_.digest()); }

  std::vector<unsigned char> take() { return std::move(body_); }

 private:
  void append(const unsigned char* data, std::size_t n) {
    sum_.update(data, n);
    body_.insert(body_.end(), data, data + n);
  }

  std::vector<unsigned char> body_;
  ByteChecksum sum_;
};

/// Bounds-checked little-endian reader over a received body. Every get_*
/// AIRCH_CHECKs the bytes exist, so a truncated or lying frame throws
/// before any out-of-range read.
class BodyReader {
 public:
  BodyReader(const unsigned char* data, std::size_t n) : data_(data), size_(n) {}

  std::uint32_t get_u32() {
    AIRCH_CHECK(remaining() >= 4, "serve frame truncated");
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
    advance(4);
    return v;
  }
  std::uint64_t get_u64() {
    AIRCH_CHECK(remaining() >= 8, "serve frame truncated");
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
    advance(8);
    return v;
  }
  std::int64_t get_i64() { return static_cast<std::int64_t>(get_u64()); }
  std::int32_t get_i32() { return static_cast<std::int32_t>(get_u32()); }
  void get_bytes(void* out, std::size_t n) {
    AIRCH_CHECK(remaining() >= n, "serve frame truncated");
    auto* dst = static_cast<unsigned char*>(out);
    for (std::size_t i = 0; i < n; ++i) dst[i] = data_[pos_ + i];
    advance(n);
  }

  /// Reads the trailer digest (NOT folded into the running sum) and
  /// checks it matches everything consumed before it, then that the body
  /// has no trailing garbage.
  void verify_trailer_and_end() {
    const std::uint64_t expected = sum_.digest();
    AIRCH_CHECK(remaining() == 8, "serve frame has trailing bytes after the checksum");
    std::uint64_t stored = 0;
    for (int i = 0; i < 8; ++i) stored |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
    pos_ += 8;
    AIRCH_CHECK(stored == expected, "serve frame checksum mismatch");
  }

  std::size_t remaining() const { return size_ - pos_; }

 private:
  void advance(std::size_t n) {
    sum_.update(data_ + pos_, n);
    pos_ += n;
  }

  const unsigned char* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  ByteChecksum sum_;
};

void put_header(BodyWriter& w, FrameType type) {
  w.put_u32(kMagic);
  w.put_u32(kVersion);
  w.put_u32(static_cast<std::uint32_t>(type));
}

}  // namespace

std::vector<unsigned char> encode_query(const QueryFrame& q) {
  AIRCH_CHECK(q.case_id >= 1 && q.case_id <= 3, "serve query: case id must be 1..3");
  AIRCH_CHECK(q.num_features >= 1 && q.num_features <= kMaxFeaturesPerQuery,
              "serve query: feature arity out of range");
  AIRCH_CHECK(q.features.size() % q.num_features == 0,
              "serve query: ragged feature payload");
  const std::size_t n = q.num_queries();
  AIRCH_CHECK(n >= 1 && n <= kMaxQueriesPerFrame,
              "serve query: query count out of range");
  BodyWriter w;
  put_header(w, FrameType::kQuery);
  w.put_u32(static_cast<std::uint32_t>(q.case_id));
  w.put_u32(static_cast<std::uint32_t>(n));
  w.put_u32(static_cast<std::uint32_t>(q.num_features));
  for (std::int64_t f : q.features) w.put_i64(f);
  w.put_trailer_checksum();
  return w.take();
}

std::vector<unsigned char> encode_reply(const std::vector<std::int32_t>& labels) {
  AIRCH_CHECK(labels.size() <= kMaxQueriesPerFrame, "serve reply: too many labels");
  BodyWriter w;
  put_header(w, FrameType::kReply);
  w.put_u32(static_cast<std::uint32_t>(labels.size()));
  for (std::int32_t v : labels) w.put_i32(v);
  w.put_trailer_checksum();
  return w.take();
}

std::vector<unsigned char> encode_error(const std::string& message) {
  // Truncate rather than reject: the error path must always be encodable.
  const std::size_t len = std::min(message.size(), kMaxErrorBytes);
  BodyWriter w;
  put_header(w, FrameType::kError);
  w.put_u32(static_cast<std::uint32_t>(len));
  w.put_bytes(message.data(), len);
  w.put_trailer_checksum();
  return w.take();
}

Frame decode_frame(const unsigned char* data, std::size_t n) {
  AIRCH_CHECK(n <= kMaxFrameBytes, "serve frame exceeds the size cap");
  BodyReader r(data, n);
  AIRCH_CHECK(r.get_u32() == kMagic, "serve frame: bad magic");
  AIRCH_CHECK(r.get_u32() == kVersion, "serve frame: unsupported version");
  const std::uint32_t type = r.get_u32();
  Frame out;
  switch (type) {
    case static_cast<std::uint32_t>(FrameType::kQuery): {
      out.type = FrameType::kQuery;
      out.query.case_id = static_cast<int>(r.get_u32());
      const std::uint32_t count = r.get_u32();
      const std::uint32_t arity = r.get_u32();
      AIRCH_CHECK(out.query.case_id >= 1 && out.query.case_id <= 3,
                  "serve query: case id must be 1..3");
      AIRCH_CHECK(count >= 1 && count <= kMaxQueriesPerFrame,
                  "serve query: query count out of range");
      AIRCH_CHECK(arity >= 1 && arity <= kMaxFeaturesPerQuery,
                  "serve query: feature arity out of range");
      // Validate the declared payload against the bytes actually present
      // before sizing the allocation from it (binio discipline).
      const std::size_t cells = static_cast<std::size_t>(count) * arity;
      AIRCH_CHECK(r.remaining() == cells * sizeof(std::int64_t) + 8,
                  "serve query: payload length mismatch");
      out.query.num_features = arity;
      out.query.features.resize(cells);
      for (auto& f : out.query.features) f = r.get_i64();
      break;
    }
    case static_cast<std::uint32_t>(FrameType::kReply): {
      out.type = FrameType::kReply;
      const std::uint32_t count = r.get_u32();
      AIRCH_CHECK(count <= kMaxQueriesPerFrame, "serve reply: too many labels");
      AIRCH_CHECK(r.remaining() == static_cast<std::size_t>(count) * sizeof(std::int32_t) + 8,
                  "serve reply: payload length mismatch");
      out.labels.resize(count);
      for (auto& v : out.labels) v = r.get_i32();
      break;
    }
    case static_cast<std::uint32_t>(FrameType::kError): {
      out.type = FrameType::kError;
      const std::uint32_t len = r.get_u32();
      AIRCH_CHECK(len <= kMaxErrorBytes, "serve error: message too long");
      AIRCH_CHECK(r.remaining() == static_cast<std::size_t>(len) + 8,
                  "serve error: payload length mismatch");
      out.error.resize(len);
      if (len > 0) r.get_bytes(out.error.data(), len);
      break;
    }
    default:
      AIRCH_CHECK(false, "serve frame: unknown type");
  }
  r.verify_trailer_and_end();
  return out;
}

}  // namespace airch::serve
