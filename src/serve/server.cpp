#include "serve/server.hpp"

#include <atomic>
#include <chrono>
#include <exception>
#include <list>
#include <optional>
#include <string>
#include <utility>

#include "common/check.hpp"
#include "common/parallel.hpp"
#include "common/sync.hpp"
#include "serve/protocol.hpp"
#include "serve/socket.hpp"

namespace airch::serve {

namespace {
/// floor(log2(n)) clamped into the fixed histogram width; n >= 1.
constexpr std::size_t kHistBuckets = 13;  // 2^12 = kMaxQueriesPerFrame
std::size_t log2_bucket(std::size_t n) {
  std::size_t b = 0;
  while (n > 1 && b + 1 < kHistBuckets) {
    n >>= 1U;
    ++b;
  }
  return b;
}
}  // namespace

struct RecommenderService::Impl {
  /// One in-flight request, shared between its connection thread (waits)
  /// and the dispatcher (fills + notifies). Its lock is a kLeaf peer of
  /// every other service lock: neither side holds anything else while
  /// touching it.
  struct Pending {
    const Recommender* rec = nullptr;
    QueryFrame query;
    Mutex mu;
    CondVar cv;
    bool done GUARDED_BY(mu) = false;
    std::vector<std::int32_t> labels GUARDED_BY(mu);
    std::string error GUARDED_BY(mu);
  };

  struct ConnState {
    explicit ConnState(Socket s) : sock(std::move(s)) {}
    Socket sock;
    // Lock-free completion flag (documented escape hatch, not a
    // capability): the acceptor polls it to reap finished connection
    // threads without blocking on a lock the connection might hold.
    std::atomic<bool> done{false};
  };

  struct Conn {
    std::shared_ptr<ConnState> state;
    Thread thread;
  };

  explicit Impl(std::vector<ServedModel> m, ServeOptions o)
      : models(std::move(m)), options(o) {
    AIRCH_CHECK(!models.empty(), "service needs at least one model");
    AIRCH_CHECK(options.batch_max >= 1, "batch_max must be >= 1");
    AIRCH_CHECK(options.batch_deadline_us >= 0, "batch_deadline_us must be >= 0");
    for (std::size_t i = 0; i < models.size(); ++i) {
      AIRCH_CHECK(models[i].rec != nullptr, "null recommender in the model table");
      AIRCH_CHECK(models[i].case_id >= 1 && models[i].case_id <= 3,
                  "case id must be 1..3");
      for (std::size_t j = 0; j < i; ++j) {
        AIRCH_CHECK(models[j].case_id != models[i].case_id,
                    "duplicate case id in the model table");
      }
    }
    stats_.batch_size_log2_hist.assign(kHistBuckets, 0);
  }

  const Recommender* find_model(int case_id) const {
    for (const auto& m : models) {
      if (m.case_id == case_id) return m.rec;
    }
    return nullptr;
  }

  void bump_errors() {
    const MutexLock lock(stats_mu_);
    ++stats_.errors;
  }

  void send_error(Socket& sock, const std::string& message) {
    sock.send_frame(encode_error(message));
    bump_errors();
  }

  // ------------------------------------------------------------- acceptor

  void accept_loop() {
    while (!stopping.load(std::memory_order_acquire)) {
      std::optional<Socket> sock;
      try {
        sock = listener->accept_one(options.accept_poll_ms);
      } catch (...) {
        break;  // listener torn down (stop) or fatal socket error
      }
      reap_finished();
      if (!sock) continue;
      bool reject = false;
      {
        const MutexLock lock(conns_mu_);
        if (conns_.size() >= options.max_connections) {
          reject = true;
        } else {
          auto state = std::make_shared<ConnState>(std::move(*sock));
          conns_.push_back(
              {state, Thread([this, state] { serve_connection(*state); })});
        }
      }
      if (reject) {
        try {
          send_error(*sock, "connection limit reached");
        } catch (...) {
          // peer already gone; nothing to report to
        }
      }
    }
  }

  void reap_finished() {
    const MutexLock lock(conns_mu_);
    for (auto it = conns_.begin(); it != conns_.end();) {
      if (it->state->done.load(std::memory_order_acquire)) {
        it = conns_.erase(it);  // Thread dtor joins the finished thread
      } else {
        ++it;
      }
    }
  }

  // ---------------------------------------------------------- connections

  void serve_connection(ConnState& cs) {
    try {
      for (;;) {
        auto body = cs.sock.recv_frame(kMaxFrameBytes);
        if (!body) break;  // clean EOF
        Frame frame;
        try {
          frame = decode_frame(body->data(), body->size());
          AIRCH_CHECK(frame.type == FrameType::kQuery, "expected a query frame");
        } catch (const std::exception& e) {
          // Length-prefixed framing keeps the stream in sync past a bad
          // body, so a malformed request costs its sender one error reply,
          // not the connection.
          send_error(cs.sock, e.what());
          continue;
        }
        const Recommender* rec = find_model(frame.query.case_id);
        if (rec == nullptr) {
          send_error(cs.sock, "no model loaded for case " +
                                  std::to_string(frame.query.case_id));
          continue;
        }
        if (frame.query.num_features != static_cast<std::size_t>(rec->num_features())) {
          // Arity is checked HERE, before the request can join a packed
          // batch: recommend_batch would throw for the whole batch and
          // take every coalesced neighbor down with it.
          send_error(cs.sock, "feature arity mismatch for case " +
                                  std::to_string(frame.query.case_id));
          continue;
        }
        auto pending = std::make_shared<Pending>();
        pending->rec = rec;
        pending->query = std::move(frame.query);
        enqueue(pending);
        std::vector<std::int32_t> labels;
        std::string error;
        {
          const MutexLock lock(pending->mu);
          while (!pending->done) pending->cv.wait(pending->mu);
          labels = std::move(pending->labels);
          error = std::move(pending->error);
        }
        if (!error.empty()) {
          send_error(cs.sock, error);
        } else {
          cs.sock.send_frame(encode_reply(labels));
          const MutexLock lock(stats_mu_);
          ++stats_.requests;
        }
      }
    } catch (...) {
      // Torn connection (peer reset, or stop() shut the socket down
      // mid-recv): drop it. In-flight state is owned by shared_ptrs, so
      // the dispatcher can still complete a request whose client left.
    }
    cs.done.store(true, std::memory_order_release);
  }

  void enqueue(const std::shared_ptr<Pending>& pending) {
    {
      const MutexLock lock(queue_mu_);
      if (queue_.empty()) first_arrival_ = std::chrono::steady_clock::now();
      queue_.push_back(pending);
      queued_queries_ += pending->query.num_queries();
    }
    queue_cv_.notify_all();
  }

  // ----------------------------------------------------------- dispatcher

  void dispatch_loop() {
    for (;;) {
      std::vector<std::shared_ptr<Pending>> admitted;
      {
        const MutexLock lock(queue_mu_);
        while (queue_.empty() && !drain_) queue_cv_.wait(queue_mu_);
        if (queue_.empty()) return;  // drain flagged and nothing left
        // Admission window: take everything that arrives within
        // batch_deadline_us of the FIRST pending request, or dispatch
        // early the moment batch_max queries are queued. Requests that
        // arrive after the swap start the next window.
        const auto deadline =
            first_arrival_ + std::chrono::microseconds(options.batch_deadline_us);
        while (queued_queries_ < options.batch_max && !drain_) {
          if (!queue_cv_.wait_until(queue_mu_, deadline)) break;
        }
        admitted.swap(queue_);
        queued_queries_ = 0;
      }
      run_batch(admitted);
    }
  }

  void run_batch(const std::vector<std::shared_ptr<Pending>>& admitted) {
    // Group by model, preserving arrival order within each group; one
    // packed forward pass per case study present in the window.
    std::vector<const Recommender*> recs;
    for (const auto& p : admitted) {
      bool seen = false;
      for (const Recommender* r : recs) seen = seen || r == p->rec;
      if (!seen) recs.push_back(p->rec);
    }
    for (const Recommender* rec : recs) {
      std::vector<Pending*> group;
      std::vector<std::vector<std::int64_t>> queries;
      for (const auto& p : admitted) {
        if (p->rec != rec) continue;
        group.push_back(p.get());
        const std::size_t arity = p->query.num_features;
        for (std::size_t q = 0; q < p->query.num_queries(); ++q) {
          const auto* row = p->query.features.data() + q * arity;
          queries.emplace_back(row, row + arity);
        }
      }
      std::vector<std::int32_t> labels;
      std::string error;
      try {
        labels = rec->recommend_batch(queries);
        AIRCH_CHECK(labels.size() == queries.size(),
                    "recommend_batch returned a short result");
      } catch (const std::exception& e) {
        error = e.what();
      }
      if (error.empty()) {
        const MutexLock lock(stats_mu_);
        ++stats_.batches;
        stats_.queries += queries.size();
        ++stats_.batch_size_log2_hist[log2_bucket(queries.size())];
      }
      std::size_t offset = 0;
      for (Pending* p : group) {
        const std::size_t n = p->query.num_queries();
        {
          const MutexLock lock(p->mu);
          if (error.empty()) {
            p->labels.assign(labels.begin() + static_cast<std::ptrdiff_t>(offset),
                             labels.begin() + static_cast<std::ptrdiff_t>(offset + n));
          } else {
            p->error = error;
          }
          p->done = true;
        }
        p->cv.notify_all();
        offset += n;
      }
    }
  }

  // -------------------------------------------------------------- members

  const std::vector<ServedModel> models;
  const ServeOptions options;

  std::optional<Listener> listener;
  Thread acceptor;
  Thread dispatcher;
  bool started = false;
  bool stopped = false;
  // Lock-free stop flag (escape hatch, not a capability): checked by the
  // acceptor between polls; no compound state rides on it.
  std::atomic<bool> stopping{false};

  Mutex queue_mu_;
  CondVar queue_cv_;
  std::vector<std::shared_ptr<Pending>> queue_ GUARDED_BY(queue_mu_);
  std::size_t queued_queries_ GUARDED_BY(queue_mu_) = 0;
  std::chrono::steady_clock::time_point first_arrival_ GUARDED_BY(queue_mu_);
  bool drain_ GUARDED_BY(queue_mu_) = false;

  Mutex conns_mu_;
  std::list<Conn> conns_ GUARDED_BY(conns_mu_);

  mutable Mutex stats_mu_;
  ServeStats stats_ GUARDED_BY(stats_mu_);
};

RecommenderService::RecommenderService(std::vector<ServedModel> models, ServeOptions options)
    : impl_(std::make_unique<Impl>(std::move(models), options)) {}

RecommenderService::~RecommenderService() { stop(); }

void RecommenderService::start() {
  AIRCH_CHECK(!impl_->started, "service already started");
  impl_->started = true;
  impl_->listener.emplace();  // binds 127.0.0.1:<ephemeral>
  impl_->acceptor = Thread([impl = impl_.get()] { impl->accept_loop(); });
  impl_->dispatcher = Thread([impl = impl_.get()] { impl->dispatch_loop(); });
}

void RecommenderService::stop() {
  if (!impl_->started || impl_->stopped) return;
  impl_->stopped = true;
  // 1. Stop accepting; the poll timeout bounds how long this join takes.
  impl_->stopping.store(true, std::memory_order_release);
  impl_->acceptor.join();
  // 2. Unblock every connection's recv, then join the connection threads.
  //    Requests already enqueued still complete: the dispatcher is alive
  //    until step 3, and it drains the queue before exiting.
  {
    const MutexLock lock(impl_->conns_mu_);
    for (auto& conn : impl_->conns_) conn.state->sock.shutdown_both();
  }
  std::list<Impl::Conn> conns;
  {
    const MutexLock lock(impl_->conns_mu_);
    conns.swap(impl_->conns_);
  }
  conns.clear();  // Thread dtors join outside any lock
  // 3. No producer is left; let the dispatcher drain and exit.
  {
    const MutexLock lock(impl_->queue_mu_);
    impl_->drain_ = true;
  }
  impl_->queue_cv_.notify_all();
  impl_->dispatcher.join();
}

int RecommenderService::port() const {
  AIRCH_CHECK(impl_->started, "port() before start()");
  return impl_->listener->port();
}

ServeStats RecommenderService::stats() const {
  const MutexLock lock(impl_->stats_mu_);
  return impl_->stats_;
}

}  // namespace airch::serve
