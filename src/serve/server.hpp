#pragma once
// The batched recommender service: a persistent socket front-end over
// warm Recommender models (docs/performance.md, "Serving"). The paper's
// pitch is constant-time inference; what a deployment actually runs is a
// process that loads the trained models ONCE and answers a stream of
// design queries. The service's job beyond plumbing is admission
// batching: concurrent requests that arrive within a small window are
// coalesced and answered by ONE packed recommend_batch forward pass per
// case study, trading bounded queueing delay (batch_deadline_us) for the
// batched-matmul throughput the kernels are built around.
//
// Threading model (all synchronization via common/sync.hpp, all threads
// via common/parallel.hpp Thread):
//   - acceptor thread: poll-based accept loop, spawns one thread per
//     connection, reaps finished ones lazily.
//   - connection threads: length-prefixed frame in, validate, enqueue,
//     block on the request's own CondVar, frame out. Invalid requests are
//     answered with an error frame BEFORE enqueueing, so one bad request
//     can never poison a packed batch.
//   - dispatcher thread: waits for the first queued request, then admits
//     more until batch_max queries are pending or batch_deadline_us has
//     elapsed since the first arrival; swaps the queue out, runs one
//     forward pass per case study present, fans results back out.
//
// The locks involved (queue, per-request, connection registry, stats) are
// peers — none is ever held while acquiring another — so they all sit at
// the default kLeaf rank and the runtime rank registry enforces exactly
// that.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/recommender.hpp"

namespace airch::serve {

struct ServeOptions {
  /// Dispatch as soon as this many queries are pending...
  std::size_t batch_max = 64;
  /// ...or this many microseconds after the batch's first arrival,
  /// whichever comes first. 0 = dispatch immediately (no coalescing).
  std::int64_t batch_deadline_us = 200;
  /// Acceptor poll granularity; bounds stop() latency, not request latency.
  int accept_poll_ms = 20;
  /// Connections beyond this are answered with an error frame and closed.
  std::size_t max_connections = 64;
};

/// Service counters, readable while the service runs (stats() takes a
/// snapshot under the stats lock).
struct [[nodiscard]] ServeStats {
  std::uint64_t requests = 0;  ///< query frames answered with a reply
  std::uint64_t queries = 0;   ///< individual feature vectors answered
  std::uint64_t batches = 0;   ///< packed forward passes dispatched
  std::uint64_t errors = 0;    ///< error frames sent
  /// batch_size_log2_hist[b] = packed passes whose query count n had
  /// floor(log2(n)) == b (last bucket absorbs the tail): the shape of the
  /// admission batching under load, reported by bench_serve.
  std::vector<std::uint64_t> batch_size_log2_hist;
};

/// One registered model: the service answers case_id queries with *rec.
/// The Recommender must stay alive and unmodified while the service runs
/// (its predict path is const and thread-safe — that is the whole point).
struct ServedModel {
  int case_id = 0;
  const Recommender* rec = nullptr;
};

class RecommenderService {
 public:
  /// Validates the model table (case ids 1..3, non-null, unique).
  explicit RecommenderService(std::vector<ServedModel> models, ServeOptions options = {});
  ~RecommenderService();
  RecommenderService(const RecommenderService&) = delete;
  RecommenderService& operator=(const RecommenderService&) = delete;

  /// Binds 127.0.0.1:<ephemeral> and spawns the acceptor + dispatcher.
  void start();
  /// Drains in-flight requests, closes connections, joins every thread.
  /// Idempotent; also run by the destructor.
  void stop();

  /// Port clients connect to; valid after start().
  int port() const;

  [[nodiscard]] ServeStats stats() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace airch::serve
