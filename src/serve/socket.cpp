#include "serve/socket.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <string>
#include <utility>

#include "common/check.hpp"

namespace airch::serve {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::runtime_error(std::string(what) + ": " + std::strerror(errno));
}

void send_all(int fd, const unsigned char* data, std::size_t n) {
  while (n > 0) {
    const ssize_t sent = ::send(fd, data, n, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      throw_errno("send");
    }
    data += sent;
    n -= static_cast<std::size_t>(sent);
  }
}

/// Reads exactly n bytes. Returns false on EOF at offset 0 when
/// eof_ok_at_start; EOF anywhere else is a torn frame and throws.
bool recv_all(int fd, unsigned char* data, std::size_t n, bool eof_ok_at_start) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::recv(fd, data + got, n - got, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      throw_errno("recv");
    }
    if (r == 0) {
      if (got == 0 && eof_ok_at_start) return false;
      throw std::runtime_error("connection closed mid-frame");
    }
    got += static_cast<std::size_t>(r);
  }
  return true;
}

}  // namespace

Socket::Socket(Socket&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

Socket::~Socket() {
  if (fd_ >= 0) ::close(fd_);
}

void Socket::send_frame(const std::vector<unsigned char>& body) {
  AIRCH_CHECK(valid(), "send on an invalid socket");
  unsigned char prefix[4];
  const auto len = static_cast<std::uint32_t>(body.size());
  for (int i = 0; i < 4; ++i) prefix[i] = static_cast<unsigned char>(len >> (8 * i));
  send_all(fd_, prefix, sizeof prefix);
  send_all(fd_, body.data(), body.size());
}

std::optional<std::vector<unsigned char>> Socket::recv_frame(std::size_t max_body) {
  AIRCH_CHECK(valid(), "recv on an invalid socket");
  unsigned char prefix[4];
  if (!recv_all(fd_, prefix, sizeof prefix, /*eof_ok_at_start=*/true)) return std::nullopt;
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i) len |= static_cast<std::uint32_t>(prefix[i]) << (8 * i);
  // The length field is attacker-controlled input: bound it before the
  // allocation it sizes (same discipline as common/binio readers).
  AIRCH_CHECK(len > 0 && len <= max_body, "frame length out of range");
  std::vector<unsigned char> body(len);
  recv_all(fd_, body.data(), body.size(), /*eof_ok_at_start=*/false);
  return body;
}

void Socket::shutdown_both() noexcept {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

Listener::Listener() {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw_errno("socket");
  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;  // ephemeral: parallel test shards never collide
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    errno = saved;
    throw_errno("bind");
  }
  if (::listen(fd_, SOMAXCONN) < 0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    errno = saved;
    throw_errno("listen");
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    errno = saved;
    throw_errno("getsockname");
  }
  port_ = static_cast<int>(ntohs(bound.sin_port));
}

Listener::~Listener() {
  if (fd_ >= 0) ::close(fd_);
}

std::optional<Socket> Listener::accept_one(int timeout_ms) {
  pollfd pfd{fd_, POLLIN, 0};
  for (;;) {
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      throw_errno("poll");
    }
    if (ready == 0) return std::nullopt;  // timeout: caller checks its stop flag
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      throw_errno("accept");
    }
    const int one = 1;
    // Request/response round-trips; Nagle would add 40ms stalls.
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    return Socket(fd);
  }
}

Socket connect_local(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("connect");
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return Socket(fd);
}

}  // namespace airch::serve
