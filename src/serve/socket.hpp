#pragma once
// Minimal RAII TCP-loopback plumbing for the recommender service. Only
// what serving needs: a listener bound to 127.0.0.1 on an ephemeral port
// (no fixed-port collisions between parallel test shards), poll-based
// accept with a timeout (so the acceptor thread can observe a stop flag
// without racing a cross-thread close), and blocking whole-message
// send/recv with the u32-length-prefixed framing from serve/protocol.hpp.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

namespace airch::serve {

/// Owns one connected socket fd. Move-only; closes on destruction.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  ~Socket();

  bool valid() const { return fd_ >= 0; }

  /// Sends length prefix + body, retrying short writes. Throws
  /// std::runtime_error when the peer is gone.
  void send_frame(const std::vector<unsigned char>& body);

  /// Receives one length-prefixed body. Empty optional = clean EOF before
  /// any byte of a new frame; anything partial or over `max_body` throws.
  std::optional<std::vector<unsigned char>> recv_frame(std::size_t max_body);

  /// Shuts down both directions so a blocked recv on another thread
  /// returns; the fd itself stays owned until destruction.
  void shutdown_both() noexcept;

 private:
  int fd_ = -1;
};

/// Listening socket on 127.0.0.1:<ephemeral>.
class Listener {
 public:
  /// Binds and listens; throws std::runtime_error on any socket failure.
  Listener();
  ~Listener();
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// Port the kernel picked.
  int port() const { return port_; }

  /// Waits up to timeout_ms for a connection. Empty optional on timeout —
  /// the acceptor loop's chance to check its stop flag.
  std::optional<Socket> accept_one(int timeout_ms);

 private:
  int fd_ = -1;
  int port_ = 0;
};

/// Connects to 127.0.0.1:port; throws std::runtime_error on failure.
Socket connect_local(int port);

}  // namespace airch::serve
