#pragma once
// The conventional simulate-and-search optimizers (paper Fig. 1(a)) that
// AIrchitect replaces, and that generate its training labels. Each search
// exhaustively evaluates the quantized output space with the simulator and
// returns the argmin label. Ties break deterministically so that labels
// are stable across runs: best cost, then the case-study-specific
// secondary objective, then the lowest label id.

#include <array>
#include <cstdint>
#include <vector>

#include "common/units.hpp"
#include "search/objective.hpp"
#include "search/space.hpp"
#include "sim/simulator.hpp"
#include "workload/gemm.hpp"

namespace airch {

/// Case study 1: optimal array shape + dataflow within a MAC budget,
/// minimizing stall-free runtime (SCALE-Sim runtime metric).
class ArrayDataflowSearch {
 public:
  explicit ArrayDataflowSearch(const ArrayDataflowSpace& space, const Simulator& sim)
      : space_(&space), sim_(&sim) {}

  struct Result {
    int label = -1;
    Cycles cycles;
  };

  /// budget_exp: MAC budget is 2^budget_exp; only shapes within it compete.
  [[nodiscard]] Result best(const GemmWorkload& w, int budget_exp) const;

  /// Objective-generalized variant: argmin of an arbitrary objective
  /// (runtime / energy / EDP) over the in-budget space.
  struct ObjectiveResult {
    int label = -1;
    double cost = 0.0;
  };
  [[nodiscard]] ObjectiveResult best_with_objective(const GemmWorkload& w, int budget_exp,
                                      const ObjectiveEvaluator& evaluator,
                                      Objective objective) const;

  /// Runtime of an arbitrary label on `w` (used to score predictions).
  [[nodiscard]] Cycles cycles_of(const GemmWorkload& w, int label) const;

 private:
  const ArrayDataflowSpace* space_;
  const Simulator* sim_;
};

/// Case study 2: optimal sizes for the three buffers under a shared total
/// capacity limit (the paper's "maximum memory capacity" input),
/// minimizing stall cycles; ties prefer minimum total capacity. The
/// shared budget is what produces the paper's Fig. 6(f) crowding-out
/// effect: large workloads spend the budget on input buffers, shrinking
/// the optimal OFMAP buffer.
class BufferSearch {
 public:
  explicit BufferSearch(const BufferSizeSpace& space, const Simulator& sim)
      : space_(&space), sim_(&sim) {}

  struct Result {
    int label = -1;
    Cycles stall_cycles;
    std::int64_t total_kb = 0;
  };

  [[nodiscard]] Result best(const GemmWorkload& w, const ArrayConfig& array, std::int64_t bandwidth,
              std::int64_t limit_kb) const;

  [[nodiscard]] Cycles stalls_of(const GemmWorkload& w, const ArrayConfig& array,
                   std::int64_t bandwidth, int label) const;

 private:
  const BufferSizeSpace* space_;
  const Simulator* sim_;
};

/// One array of the heterogeneous multi-array system in case study 3.
struct ScheduledArray {
  ArrayConfig array;
  MemoryConfig memory;
};

/// Case study 3: assign W workloads to W heterogeneous arrays and pick a
/// per-array dataflow, minimizing makespan; ties prefer lower total energy.
class ScheduleSearch {
 public:
  ScheduleSearch(const ScheduleSpace& space, std::vector<ScheduledArray> arrays,
                 const Simulator& sim);

  struct Result {
    int label = -1;
    Cycles makespan_cycles;
    Picojoules energy_pj;
  };

  /// workloads.size() must equal the space's array count.
  [[nodiscard]] Result best(const std::vector<GemmWorkload>& workloads) const;

  /// Cost of one schedule label (used to score predictions).
  [[nodiscard]] Result evaluate(const std::vector<GemmWorkload>& workloads, int label) const;

  /// Per-dataflow cost of running `w` on array `array_idx` — exactly the
  /// simulations best() folds over, exposed as a unit so the sweep cache
  /// (search/sweep_cache) can memoize them per (array, workload) and share
  /// them across distinct workload vectors.
  struct DataflowCosts {
    std::array<Cycles, 3> cycles;
    std::array<Picojoules, 3> energy;
  };
  DataflowCosts dataflow_costs(int array_idx, const GemmWorkload& w) const;

  const std::vector<ScheduledArray>& arrays() const { return arrays_; }
  const ScheduleSpace& space() const { return *space_; }
  /// The simulator behind dataflow_costs — exposed so the sweep cache's
  /// snapshot fingerprint can cover the energy params its cached costs
  /// depend on.
  const Simulator& sim() const { return *sim_; }

 private:
  const ScheduleSpace* space_;
  std::vector<ScheduledArray> arrays_;
  const Simulator* sim_;
};

/// The default heterogeneous 4-array system used throughout the case-3
/// experiments (sizes follow the spirit of the paper's Fig. 4: one large
/// monolithic array plus progressively smaller / skinnier ones).
std::vector<ScheduledArray> default_scheduled_arrays();

}  // namespace airch
