#include "search/annealing.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/math_utils.hpp"

namespace airch {

AnnealingArrayDataflowSearch::Result AnnealingArrayDataflowSearch::best(
    const GemmWorkload& w, int budget_exp, const AnnealingOptions& options) const {
  const int min_exp = 1;
  const int max_total = std::min(budget_exp, space_->max_macs_exp());

  Rng rng(options.seed);

  struct State {
    int row_exp, col_exp, dataflow;
  };
  auto clamp_state = [&](State& s) {
    s.row_exp = static_cast<int>(clamp_i64(s.row_exp, min_exp, max_total - min_exp));
    s.col_exp = static_cast<int>(clamp_i64(s.col_exp, min_exp, max_total - s.row_exp));
  };
  auto to_config = [&](const State& s) {
    return ArrayConfig{pow2(s.row_exp), pow2(s.col_exp), dataflow_from_index(s.dataflow)};
  };

  State cur;
  cur.row_exp = static_cast<int>(rng.uniform_int(min_exp, max_total - min_exp));
  cur.col_exp = static_cast<int>(rng.uniform_int(min_exp, max_total - cur.row_exp));
  cur.dataflow = static_cast<int>(rng.uniform_int(0, 2));

  Result result;
  auto evaluate = [&](const State& s) {
    ++result.evaluations;
    return sim_->compute_cycles(w, to_config(s));
  };

  Cycles cur_cost = evaluate(cur);
  result.label = space_->label_of(to_config(cur));
  result.cycles = cur_cost;

  double temperature = options.initial_temperature;
  for (int step = 0; step < options.steps; ++step) {
    State next = cur;
    switch (rng.uniform_int(0, 3)) {
      case 0: next.row_exp += rng.uniform() < 0.5 ? 1 : -1; break;
      case 1: next.col_exp += rng.uniform() < 0.5 ? 1 : -1; break;
      case 2: next.dataflow = static_cast<int>(rng.uniform_int(0, 2)); break;
      default:
        // Occasional random jump: escapes basins the local moves cannot.
        next.row_exp = static_cast<int>(rng.uniform_int(min_exp, max_total - min_exp));
        next.col_exp = static_cast<int>(rng.uniform_int(min_exp, max_total - next.row_exp));
        next.dataflow = static_cast<int>(rng.uniform_int(0, 2));
        break;
    }
    clamp_state(next);
    const Cycles next_cost = evaluate(next);

    // Metropolis acceptance on relative cost difference; the dimensionless
    // ratio comes straight from the same-tag Quantity division.
    const double delta = (next_cost - cur_cost) / cur_cost;
    if (delta <= 0.0 || rng.uniform() < std::exp(-delta / std::max(temperature, 1e-9))) {
      cur = next;
      cur_cost = next_cost;
    }
    if (cur_cost < result.cycles) {
      result.cycles = cur_cost;
      result.label = space_->label_of(to_config(cur));
    }
    temperature *= options.cooling;
  }
  return result;
}

}  // namespace airch
