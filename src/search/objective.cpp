#include "search/objective.hpp"

#include <stdexcept>

namespace airch {

const char* to_string(Objective o) {
  switch (o) {
    case Objective::kRuntime: return "runtime";
    case Objective::kEnergy: return "energy";
    case Objective::kEdp: return "edp";
  }
  return "?";
}

Objective objective_from_string(const std::string& s) {
  if (s == "runtime") return Objective::kRuntime;
  if (s == "energy") return Objective::kEnergy;
  if (s == "edp") return Objective::kEdp;
  throw std::invalid_argument("unknown objective: " + s);
}

// cost() deliberately erases the dimension: a single `double` scale lets the
// heuristic searches and dataset generators compare runtime (cycles), energy
// (pJ) and EDP (pJ*cyc) through one interface. This is a scalarization
// boundary, so the value-escape hatches below are justified.
double ObjectiveEvaluator::cost(const GemmWorkload& w, const ArrayConfig& array,
                                Objective objective) const {
  if (objective == Objective::kRuntime) {
    // Stall-free runtime, identical to the paper's case-1 cost metric.
    return static_cast<double>(sim_->compute_cycles(w, array).value());  // airch-lint: allow(value-escape)
  }
  const SimResult r = sim_->simulate(w, array, memory_);
  const double energy = r.energy.total().value();  // airch-lint: allow(value-escape)
  if (objective == Objective::kEnergy) return energy;
  return energy * static_cast<double>(r.total_cycles().value());  // EDP  // airch-lint: allow(value-escape)
}

}  // namespace airch
