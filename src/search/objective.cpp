#include "search/objective.hpp"

#include <stdexcept>

namespace airch {

const char* to_string(Objective o) {
  switch (o) {
    case Objective::kRuntime: return "runtime";
    case Objective::kEnergy: return "energy";
    case Objective::kEdp: return "edp";
  }
  return "?";
}

Objective objective_from_string(const std::string& s) {
  if (s == "runtime") return Objective::kRuntime;
  if (s == "energy") return Objective::kEnergy;
  if (s == "edp") return Objective::kEdp;
  throw std::invalid_argument("unknown objective: " + s);
}

double ObjectiveEvaluator::cost(const GemmWorkload& w, const ArrayConfig& array,
                                Objective objective) const {
  if (objective == Objective::kRuntime) {
    // Stall-free runtime, identical to the paper's case-1 cost metric.
    return static_cast<double>(sim_->compute_cycles(w, array));
  }
  const SimResult r = sim_->simulate(w, array, memory_);
  const double energy = r.energy.total_pj();
  if (objective == Objective::kEnergy) return energy;
  return energy * static_cast<double>(r.total_cycles());  // EDP
}

}  // namespace airch
