#pragma once
// Policy-gradient (REINFORCE) search baseline — the RL-guided DSE family
// the paper cites (ConfuciuX, Apollo). For one query, a factored
// categorical policy over (row exponent, column exponent, dataflow) is
// optimized by sampling configurations, scoring them with the cost model,
// and ascending the advantage-weighted log-likelihood. Like the GA, its
// per-query cost is the number of cost-model evaluations; the benches
// compare it against exhaustive search, GA, and learned inference.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "search/space.hpp"
#include "sim/simulator.hpp"
#include "workload/gemm.hpp"

namespace airch {

struct ReinforceOptions {
  int iterations = 12;
  int batch = 16;            ///< samples per policy update
  double learning_rate = 0.5;
  std::uint64_t seed = 1;
};

class ReinforceArrayDataflowSearch {
 public:
  ReinforceArrayDataflowSearch(const ArrayDataflowSpace& space, const Simulator& sim)
      : space_(&space), sim_(&sim) {}

  struct Result {
    int label = -1;
    Cycles cycles;
    std::size_t evaluations = 0;
  };

  [[nodiscard]] Result best(const GemmWorkload& w, int budget_exp, const ReinforceOptions& options = {}) const;

 private:
  const ArrayDataflowSpace* space_;
  const Simulator* sim_;
};

}  // namespace airch
