#include "search/space.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/check.hpp"
#include "common/math_utils.hpp"

namespace airch {

// ---------------------------------------------------------------- case 1

ArrayDataflowSpace::ArrayDataflowSpace(int max_macs_exp, int min_exp)
    : max_macs_exp_(max_macs_exp), min_exp_(min_exp) {
  AIRCH_CHECK(min_exp >= 0 && max_macs_exp >= 2 * min_exp && max_macs_exp <= 62,
              "array/dataflow space parameters out of range");
  for (int a = min_exp; a <= max_macs_exp - min_exp; ++a) {
    for (int b = min_exp; a + b <= max_macs_exp; ++b) {
      for (Dataflow d : kAllDataflows) {
        configs_.push_back(ArrayConfig{pow2(a), pow2(b), d});
      }
    }
  }
}

const ArrayConfig& ArrayDataflowSpace::config(int label) const {
  if (label < 0 || label >= size()) throw std::out_of_range("array/dataflow label out of range");
  return configs_[static_cast<std::size_t>(label)];
}

int ArrayDataflowSpace::label_of(const ArrayConfig& c) const {
  if (!is_pow2(c.rows) || !is_pow2(c.cols)) throw std::out_of_range("non power-of-two shape");
  const int a = log2_floor(c.rows);
  const int b = log2_floor(c.cols);
  if (a < min_exp_ || b < min_exp_ || a + b > max_macs_exp_) {
    throw std::out_of_range("shape outside space");
  }
  // Labels for row-exponent a start after all rows with smaller exponent.
  // Rows with exponent a' have (max_macs_exp - min_exp - a' + 1) column
  // choices each.
  int shape_index = 0;
  for (int ap = min_exp_; ap < a; ++ap) shape_index += max_macs_exp_ - min_exp_ - ap + 1;
  shape_index += b - min_exp_;
  const int label = shape_index * kNumDataflows + dataflow_index(c.dataflow);
  AIRCH_DCHECK(label >= 0 && label < size(), "label_of produced index outside [0, size)");
  return label;
}

std::vector<int> ArrayDataflowSpace::labels_within_budget(int budget_exp) const {
  std::vector<int> out;
  for (int l = 0; l < size(); ++l) {
    const auto& c = configs_[static_cast<std::size_t>(l)];
    if (c.macs() <= MacCount{pow2(std::min(budget_exp, 62))}) out.push_back(l);
  }
  return out;
}

// ---------------------------------------------------------------- case 2

BufferSizeSpace::BufferSizeSpace(std::int64_t step_kb, std::int64_t max_kb)
    : step_kb_(step_kb), max_kb_(max_kb), levels_(static_cast<int>(max_kb / step_kb)) {
  AIRCH_CHECK(step_kb >= 1 && max_kb % step_kb == 0 && levels_ >= 1,
              "buffer space requires max_kb a positive multiple of step_kb");
}

MemoryConfig BufferSizeSpace::config(int label) const {
  if (label < 0 || label >= size()) throw std::out_of_range("buffer label out of range");
  MemoryConfig mem;
  mem.ofmap_kb = (label % levels_ + 1) * step_kb_;
  mem.filter_kb = (label / levels_ % levels_ + 1) * step_kb_;
  mem.ifmap_kb = (label / (levels_ * levels_) + 1) * step_kb_;
  return mem;
}

int BufferSizeSpace::label_of(const MemoryConfig& mem) const {
  auto level = [&](std::int64_t kb) {
    if (kb < step_kb_ || kb > max_kb_ || kb % step_kb_ != 0) {
      throw std::out_of_range("buffer size outside space");
    }
    return static_cast<int>(kb / step_kb_) - 1;
  };
  return (level(mem.ifmap_kb) * levels_ + level(mem.filter_kb)) * levels_ + level(mem.ofmap_kb);
}

std::vector<int> BufferSizeSpace::labels_within_limit(std::int64_t limit_kb) const {
  std::vector<int> out;
  for (int l = 0; l < size(); ++l) {
    const MemoryConfig mem = config(l);
    if (mem.ifmap_kb <= limit_kb && mem.filter_kb <= limit_kb && mem.ofmap_kb <= limit_kb) {
      out.push_back(l);
    }
  }
  return out;
}

std::vector<int> BufferSizeSpace::labels_within_total(std::int64_t total_kb) const {
  std::vector<int> out;
  for (int l = 0; l < size(); ++l) {
    if (config(l).total_kb() <= total_kb) out.push_back(l);
  }
  return out;
}

// ---------------------------------------------------------------- case 3

std::int64_t ScheduleSpace::space_size(int x) {
  AIRCH_CHECK(x >= 1, "schedule space arity must be >= 1");
  std::int64_t n = 1;
  for (int i = 1; i <= x; ++i) n *= 3 * i;  // 3^x * x!
  return n;
}

ScheduleSpace::ScheduleSpace(int num_arrays) : num_arrays_(num_arrays) {
  AIRCH_CHECK(num_arrays >= 1 && num_arrays <= 8,
              "schedule space supports 1..8 arrays (size grows as 3^x * x!)");
  std::vector<int> perm(static_cast<std::size_t>(num_arrays));
  for (int i = 0; i < num_arrays; ++i) perm[static_cast<std::size_t>(i)] = i;
  do {
    permutations_.push_back(perm);
  } while (std::next_permutation(perm.begin(), perm.end()));
  std::int64_t df_combos = 1;
  for (int i = 0; i < num_arrays; ++i) df_combos *= kNumDataflows;
  size_ = static_cast<int>(static_cast<std::int64_t>(permutations_.size()) * df_combos);
}

const std::vector<int>& ScheduleSpace::permutation(int perm_index) const {
  if (perm_index < 0 || static_cast<std::size_t>(perm_index) >= permutations_.size()) {
    throw std::out_of_range("permutation index out of range");
  }
  return permutations_[static_cast<std::size_t>(perm_index)];
}

ScheduleSpace::Schedule ScheduleSpace::config(int label) const {
  Schedule s;
  config_into(label, s);
  return s;
}

void ScheduleSpace::config_into(int label, Schedule& out) const {
  if (label < 0 || label >= size_) throw std::out_of_range("schedule label out of range");
  std::int64_t df_combos = 1;
  for (int i = 0; i < num_arrays_; ++i) df_combos *= kNumDataflows;
  const int perm_idx = static_cast<int>(label / df_combos);
  std::int64_t df_code = label % df_combos;
  AIRCH_DCHECK(perm_idx >= 0 && static_cast<std::size_t>(perm_idx) < permutations_.size(),
               "schedule label decoded to an out-of-range permutation");

  out.workload_of = permutations_[static_cast<std::size_t>(perm_idx)];
  out.dataflow_of.resize(static_cast<std::size_t>(num_arrays_));
  // Base-3 decode, last array least significant.
  for (int a = num_arrays_ - 1; a >= 0; --a) {
    out.dataflow_of[static_cast<std::size_t>(a)] =
        dataflow_from_index(static_cast<int>(df_code % 3));
    df_code /= 3;
  }
}

int ScheduleSpace::label_of(const Schedule& s) const {
  if (static_cast<int>(s.workload_of.size()) != num_arrays_ ||
      static_cast<int>(s.dataflow_of.size()) != num_arrays_) {
    throw std::out_of_range("schedule arity mismatch");
  }
  const auto it = std::lower_bound(permutations_.begin(), permutations_.end(), s.workload_of);
  if (it == permutations_.end() || *it != s.workload_of) {
    throw std::out_of_range("not a permutation of workloads");
  }
  const auto perm_idx = static_cast<std::int64_t>(it - permutations_.begin());
  std::int64_t df_code = 0;
  for (int a = 0; a < num_arrays_; ++a) {
    df_code = df_code * 3 + dataflow_index(s.dataflow_of[static_cast<std::size_t>(a)]);
  }
  std::int64_t df_combos = 1;
  for (int i = 0; i < num_arrays_; ++i) df_combos *= kNumDataflows;
  return static_cast<int>(perm_idx * df_combos + df_code);
}

}  // namespace airch
