#pragma once
// Genetic-algorithm search baseline. The paper's related work splits
// learned-DSE approaches into (i) learned cost models and (ii) ML-guided
// search (GA/RL, e.g. GAMMA). This module implements (ii) for case
// studies 1 and 3 so the benches can compare three optimizer families:
// exhaustive search, GA search, and AIrchitect's constant-time inference
// — in both solution quality and number of cost-model evaluations.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "search/exhaustive.hpp"
#include "search/space.hpp"
#include "sim/simulator.hpp"

namespace airch {

struct GaOptions {
  int population = 24;
  int generations = 12;
  int elite = 2;            ///< genomes copied unchanged each generation
  int tournament = 3;       ///< tournament selection size
  double mutation_rate = 0.4;
  std::uint64_t seed = 1;
};

/// Generic steady-state GA over an arbitrary genome type. Fitness is
/// maximized. Duplicate fitness evaluations are not cached — the
/// `evaluations` count is exactly the cost-model query count, which is
/// the metric the search-vs-inference comparison cares about.
template <typename Genome>
class GeneticOptimizer {
 public:
  struct Hooks {
    std::function<Genome(Rng&)> random;
    std::function<Genome(const Genome&, const Genome&, Rng&)> crossover;
    std::function<void(Genome&, Rng&)> mutate;
    std::function<double(const Genome&)> fitness;
  };

  struct Result {
    Genome best{};
    double fitness = 0.0;
    std::size_t evaluations = 0;
  };

  GeneticOptimizer(GaOptions options, Hooks hooks)
      : options_(options), hooks_(std::move(hooks)) {}

  [[nodiscard]] Result run() {
    Rng rng(options_.seed);
    struct Scored {
      Genome genome;
      double fitness;
    };
    std::vector<Scored> population;
    Result result;
    population.reserve(static_cast<std::size_t>(options_.population));
    for (int i = 0; i < options_.population; ++i) {
      Genome g = hooks_.random(rng);
      const double f = hooks_.fitness(g);
      ++result.evaluations;
      population.push_back({std::move(g), f});
    }

    auto by_fitness = [](const Scored& a, const Scored& b) { return a.fitness > b.fitness; };
    std::sort(population.begin(), population.end(), by_fitness);

    auto tournament_pick = [&]() -> const Scored& {
      std::size_t best = static_cast<std::size_t>(
          rng.uniform_int(0, options_.population - 1));
      for (int t = 1; t < options_.tournament; ++t) {
        const auto idx = static_cast<std::size_t>(rng.uniform_int(0, options_.population - 1));
        if (population[idx].fitness > population[best].fitness) best = idx;
      }
      return population[best];
    };

    for (int gen = 0; gen < options_.generations; ++gen) {
      std::vector<Scored> next;
      next.reserve(population.size());
      for (int e = 0; e < options_.elite && e < options_.population; ++e) {
        next.push_back(population[static_cast<std::size_t>(e)]);
      }
      while (static_cast<int>(next.size()) < options_.population) {
        Genome child = hooks_.crossover(tournament_pick().genome, tournament_pick().genome, rng);
        if (rng.uniform() < options_.mutation_rate) hooks_.mutate(child, rng);
        const double f = hooks_.fitness(child);
        ++result.evaluations;
        next.push_back({std::move(child), f});
      }
      population = std::move(next);
      std::sort(population.begin(), population.end(), by_fitness);
    }

    result.best = population.front().genome;
    result.fitness = population.front().fitness;
    return result;
  }

 private:
  GaOptions options_;
  Hooks hooks_;
};

/// GA over case study 1's design space (array shape + dataflow under a
/// MAC budget), minimizing stall-free runtime.
class GaArrayDataflowSearch {
 public:
  GaArrayDataflowSearch(const ArrayDataflowSpace& space, const Simulator& sim)
      : space_(&space), sim_(&sim) {}

  struct Result {
    int label = -1;
    Cycles cycles;
    std::size_t evaluations = 0;
  };

  [[nodiscard]] Result best(const GemmWorkload& w, int budget_exp, const GaOptions& options = {}) const;

 private:
  const ArrayDataflowSpace* space_;
  const Simulator* sim_;
};

/// GA over case study 3's schedule space (permutation + per-array
/// dataflow), minimizing makespan with an energy tie-break.
class GaScheduleSearch {
 public:
  GaScheduleSearch(const ScheduleSpace& space, std::vector<ScheduledArray> arrays,
                   const Simulator& sim)
      : exhaustive_(space, std::move(arrays), sim), space_(&space) {}

  struct Result {
    int label = -1;
    Cycles makespan_cycles;
    std::size_t evaluations = 0;
  };

  [[nodiscard]] Result best(const std::vector<GemmWorkload>& workloads, const GaOptions& options = {}) const;

 private:
  ScheduleSearch exhaustive_;  // reused for single-label evaluation
  const ScheduleSpace* space_;
};

}  // namespace airch
