#include "search/reinforce.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/math_utils.hpp"

namespace airch {

namespace {

/// Softmax sampling from a logits vector.
std::size_t sample_categorical(const std::vector<double>& logits, Rng& rng) {
  const double mx = *std::max_element(logits.begin(), logits.end());
  std::vector<double> probs(logits.size());
  double denom = 0.0;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    probs[i] = std::exp(logits[i] - mx);
    denom += probs[i];
  }
  double r = rng.uniform() * denom;
  for (std::size_t i = 0; i < probs.size(); ++i) {
    r -= probs[i];
    if (r <= 0.0) return i;
  }
  return probs.size() - 1;
}

/// d log softmax / d logits for a sampled index: e_i - softmax.
void add_logprob_grad(std::vector<double>& grad, const std::vector<double>& logits,
                      std::size_t sampled, double scale) {
  const double mx = *std::max_element(logits.begin(), logits.end());
  double denom = 0.0;
  std::vector<double> probs(logits.size());
  for (std::size_t i = 0; i < logits.size(); ++i) {
    probs[i] = std::exp(logits[i] - mx);
    denom += probs[i];
  }
  for (std::size_t i = 0; i < logits.size(); ++i) {
    grad[i] += scale * ((i == sampled ? 1.0 : 0.0) - probs[i] / denom);
  }
}

}  // namespace

ReinforceArrayDataflowSearch::Result ReinforceArrayDataflowSearch::best(
    const GemmWorkload& w, int budget_exp, const ReinforceOptions& options) const {
  const int min_exp = 1;
  const int max_total = std::min(budget_exp, space_->max_macs_exp());
  const auto row_choices = static_cast<std::size_t>(max_total - 2 * min_exp + 1);

  Rng rng(options.seed);
  std::vector<double> row_logits(row_choices, 0.0);
  // Column logits span the widest possible range; invalid picks given the
  // sampled row are clamped into budget (a "repair" operator).
  std::vector<double> col_logits(row_choices, 0.0);
  std::vector<double> df_logits(3, 0.0);

  Result best{-1, Cycles{std::numeric_limits<std::int64_t>::max()}, 0};

  for (int iter = 0; iter < options.iterations; ++iter) {
    struct Sample {
      std::size_t row_idx, col_idx, df_idx;
      double reward;
    };
    std::vector<Sample> samples;
    samples.reserve(static_cast<std::size_t>(options.batch));

    for (int b = 0; b < options.batch; ++b) {
      Sample s;
      s.row_idx = sample_categorical(row_logits, rng);
      s.col_idx = sample_categorical(col_logits, rng);
      s.df_idx = sample_categorical(df_logits, rng);

      const int row_exp = min_exp + static_cast<int>(s.row_idx);
      int col_exp = min_exp + static_cast<int>(s.col_idx);
      col_exp = static_cast<int>(clamp_i64(col_exp, min_exp, max_total - row_exp));

      const ArrayConfig cfg{pow2(row_exp), pow2(col_exp),
                            dataflow_from_index(static_cast<int>(s.df_idx))};
      const Cycles cycles = sim_->compute_cycles(w, cfg);
      ++best.evaluations;
      if (cycles < best.cycles) {
        best.cycles = cycles;
        best.label = space_->label_of(cfg);
      }
      // Reward: negative log-cycles (scale-free across workload sizes);
      // the RL reward is dimensionless by construction.
      s.reward = -std::log(static_cast<double>(cycles.value()));  // airch-lint: allow(value-escape)
      samples.push_back(s);
    }

    // Advantage = reward - batch mean; one policy-gradient step.
    double mean_reward = 0.0;
    for (const auto& s : samples) mean_reward += s.reward;
    mean_reward /= static_cast<double>(samples.size());

    std::vector<double> row_grad(row_logits.size(), 0.0);
    std::vector<double> col_grad(col_logits.size(), 0.0);
    std::vector<double> df_grad(df_logits.size(), 0.0);
    for (const auto& s : samples) {
      const double adv = s.reward - mean_reward;
      add_logprob_grad(row_grad, row_logits, s.row_idx, adv);
      add_logprob_grad(col_grad, col_logits, s.col_idx, adv);
      add_logprob_grad(df_grad, df_logits, s.df_idx, adv);
    }
    const double step = options.learning_rate / static_cast<double>(samples.size());
    for (std::size_t i = 0; i < row_logits.size(); ++i) row_logits[i] += step * row_grad[i];
    for (std::size_t i = 0; i < col_logits.size(); ++i) col_logits[i] += step * col_grad[i];
    for (std::size_t i = 0; i < df_logits.size(); ++i) df_logits[i] += step * df_grad[i];
  }
  return best;
}

}  // namespace airch
