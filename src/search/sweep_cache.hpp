#pragma once
// Search acceleration layer for dataset labelling (docs/performance.md).
//
// Dataset generation is the repo's hottest path: every labelled point runs
// a full exhaustive sweep of the case study's output space (459 sims for
// case 1, 1000 for case 2, 16*3 sims + 1944 combinations for case 3) —
// exactly the simulate-per-config loop the paper amortizes away with a
// learned recommender. This layer amortizes it *before* learning, without
// changing a single label:
//
//   * Case 1: the per-label cycle counts are independent of the MAC
//     budget, and the compute model factors per label into
//     fold_cycles(a, b) * row_folds(a) * col_folds(b) over shape exponents
//     (a, b). One cheap factored pass per unique workload builds a
//     prefix-argmin table indexed by budget exponent (labels grouped by
//     MAC count ascending), after which any covered `budget_exp` query is
//     O(1). Tables are stored in a sharded open-addressed slot table with
//     arena-backed spans and are built *in place* under the shard lock,
//     lazily up to the highest budget queried so far (monotone coverage):
//     a fresh workload costs no more than the naive path's own
//     budget-filtered scan and zero per-query heap allocations, and a
//     later larger budget extends the existing prefix incrementally.
//   * Case 2: DRAM traffic is separable per buffer (memory_model.hpp), so
//     one traffic_factors() call recovers every per-level traffic and
//     first-fill component without a single probe simulation; the 1000
//     label costs are then pure integer combines (division by the fixed
//     bandwidth strength-reduced through InvariantDiv), folded into a
//     prefix-argmin table indexed by the quantized shared-capacity limit.
//     Any `limit_kb` query is O(1).
//   * Case 3: two memo levels. Per-workload, the 3 * num_arrays
//     simulations (every array x dataflow) are cached once and shared
//     across every workload *vector* that contains the workload. Per
//     vector, the full argmin is memoized; a fresh vector runs a factored
//     fold — permutations walked directly in label order, dataflow
//     assignments explored as a depth-first base-3 tree pruned on the
//     partial makespan — instead of decoding all 1944 labels.
//
// All three caches are sharded, mutex-striped concurrent memo tables
// (cases 2/3 share the node-based ShardedMemoCache; case 1 uses the
// open-addressed variant above), so the log-uniform sampler's duplicate
// workloads hit cache across a whole generation run from any worker
// thread. Each cache is unbounded by default and takes a capacity knob;
// bounded instances evict with a per-shard second-chance (CLOCK) policy,
// and re-admitted keys rebuild deterministically, so labels stay exact.
// Correctness bar: labels (and costs) are bit-identical to the naive
// exhaustive path — enforced by the property tests in
// tests/test_sweep_cache.cpp, including under forced eviction.
//
// Persistence: every cache serializes to a versioned, checksummed
// snapshot file (save_snapshot / load_snapshot) so a warm cache from a
// previous run amortizes labelling across runs, not just within one.
// The header carries a format version, the case id, and a fingerprint of
// the search-space shape; a snapshot whose version, case, fingerprint, or
// trailer checksum does not match is rejected with a thrown AIRCH_CHECK
// error and the cache is left untouched (loads stage the decoded payload
// and apply it only after the checksum verifies — no partial loads).
// Restored entries are bit-identical to recomputed ones by construction:
// the payload stores the exact Results the build paths produced.
// Format details: docs/performance.md ("Persistent caches & binary
// datasets").

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/sync.hpp"
#include "search/exhaustive.hpp"
#include "search/space.hpp"
#include "sim/simulator.hpp"
#include "workload/gemm.hpp"

namespace airch {

/// Counters and occupancy of a memo table, snapshotted shard by shard
/// under each shard's lock — stats() is safe to call concurrently with
/// queries and returns internally consistent per-shard slices.
///
/// Every query tallies exactly one of hits / misses / races:
///   hits      — key present on first probe.
///   misses    — key absent; this query computed and inserted the value.
///   races     — key absent on first probe but present on re-lock: another
///               thread inserted while this one computed. The work was
///               duplicated (deterministically — same value), but the
///               table was *not* cold for the key, so the race is tallied
///               apart from true misses.
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t races = 0;
  std::uint64_t evictions = 0;
  std::size_t entries = 0;
  /// Maximum resident entries (summed per-shard caps); 0 = unbounded.
  std::size_t capacity = 0;
};

/// Outcome of a snapshot save or restore: how many logical entries were
/// written, or applied to the cache (a load skips entries the cache
/// already covers at least as far).
struct SnapshotStats {
  std::uint64_t entries = 0;
};

/// First 8 bytes of every sweep-cache snapshot file ("AIRCHSNP" in LE
/// byte order); exposed so tests can craft wrong-magic / wrong-version
/// fixtures with valid checksums.
inline constexpr std::uint64_t kSnapshotMagic = 0x504E534843524941ULL;
/// Bumped whenever the snapshot payload layout changes; readers reject
/// any other version loudly instead of misparsing.
inline constexpr std::uint32_t kSnapshotFormatVersion = 1;

namespace detail {

/// SplitMix64-style avalanche; good enough to spread near-identical keys
/// (small GEMM dims differ in few low bits) across shards and buckets.
constexpr std::uint64_t mix_u64(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

constexpr std::uint64_t hash_combine(std::uint64_t h, std::uint64_t v) {
  return mix_u64(h ^ (v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2)));
}

/// Hash over any container of int64 (fixed keys and workload vectors).
struct I64SeqHash {
  template <typename Seq>
  std::size_t operator()(const Seq& seq) const {
    std::uint64_t h = 0x243F6A8885A308D3ULL;
    for (const std::int64_t v : seq) h = hash_combine(h, static_cast<std::uint64_t>(v));
    return static_cast<std::size_t>(h);
  }
};

}  // namespace detail

/// Sharded, mutex-striped concurrent memoization table. Lookups take one
/// shard lock; values are computed *outside* any lock, so a miss never
/// blocks other shards (or even other keys of the same shard for long).
/// Two threads racing on the same fresh key may both compute; the first
/// insert wins and both observe the same (deterministic) value — callers
/// must therefore pass pure compute functions.
///
/// With max_entries == 0 the table grows without bound. A non-zero
/// max_entries is split evenly across shards (rounded up, so the
/// effective capacity() may slightly exceed the request) and each shard
/// evicts with the CLOCK second-chance policy: every access sets the
/// entry's reference bit, the shard's clock hand sweeps its ring of
/// entries clearing bits, and the first unreferenced entry makes way.
/// Because eviction can drop any entry at any insert, values are handed
/// out by copy (get_or_compute) or through a projection that runs under
/// the shard lock (get_or_use) — never by reference.
template <typename Key, typename Value, typename Hash = std::hash<Key>>
class ShardedMemoCache {
 public:
  /// shard_count is rounded up to a power of two; 0 picks the default (64,
  /// comfortably above any parallel_for worker count this repo deploys).
  /// max_entries bounds total residency as described above; 0 = unbounded.
  explicit ShardedMemoCache(std::size_t shard_count = 0, std::size_t max_entries = 0)
      : shards_(pow2_at_least(shard_count == 0 ? 64 : shard_count)) {
    if (max_entries != 0) {
      per_shard_cap_ = (max_entries + shards_.size() - 1) / shards_.size();
    }
  }

  /// Copy of the cached (or freshly computed) value for `key`.
  template <typename Fn>
  Value get_or_compute(const Key& key, const Fn& compute) {
    return get_or_use(key, compute, [](const Value& v) { return v; });
  }

  /// Core lookup: applies `use` to the cached value *under the shard lock*
  /// and returns use's result by value. This is how callers extract a
  /// small projection of a large cached table without copying the table
  /// and without holding a reference that an eviction could invalidate.
  /// `use` must be cheap and must not re-enter this cache (deadlock — and
  /// in checked builds the lock-rank registry turns the attempt into a
  /// ContractViolation: shard locks are peers at kSweepCacheShard rank).
  template <typename Fn, typename Use>
  auto get_or_use(const Key& key, const Fn& compute, const Use& use) {
    Shard& shard = shards_[shard_index(key)];
    {
      const MutexLock lock(shard.mu);
      const auto it = shard.map.find(key);
      if (it != shard.map.end()) {
        ++shard.hits;
        it->second.ref = true;
        return use(it->second.value);
      }
    }
    Value value = compute();  // outside any lock: misses don't serialize
    const MutexLock lock(shard.mu);
    const auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      // Lost the insert race: another thread published while this one
      // computed. Serve the winner's (identical) value; the duplicated
      // compute is tallied as a race, not a miss — the table held the key.
      ++shard.races;
      it->second.ref = true;
      return use(it->second.value);
    }
    ++shard.misses;
    if (per_shard_cap_ != 0 && shard.map.size() >= per_shard_cap_) {
      evict_one(shard);
      const auto ins = shard.map.emplace(key, Node{std::move(value), true}).first;
      shard.ring[shard.hand] = ins;  // new entry takes the victim's ring slot
      shard.hand = (shard.hand + 1) % shard.ring.size();
      return use(ins->second.value);
    }
    const auto ins = shard.map.emplace(key, Node{std::move(value), true}).first;
    if (per_shard_cap_ != 0) shard.ring.push_back(ins);  // unbounded: no ring upkeep
    return use(ins->second.value);
  }

  /// Total resident-entry bound (0 = unbounded). Per-shard caps round up,
  /// so this may slightly exceed the constructor's max_entries.
  std::size_t capacity() const {
    return per_shard_cap_ == 0 ? 0 : per_shard_cap_ * shards_.size();
  }

  [[nodiscard]] CacheStats stats() const {
    CacheStats s;
    s.capacity = capacity();
    for (const Shard& shard : shards_) {
      const MutexLock lock(shard.mu);
      s.hits += shard.hits;
      s.misses += shard.misses;
      s.races += shard.races;
      s.evictions += shard.evictions;
      s.entries += shard.map.size();
    }
    return s;
  }

  /// Visits every resident entry as fn(key, value), shard by shard under
  /// each shard's lock. The cut is consistent per shard (not across
  /// shards); `fn` must be cheap and must not re-enter this cache (the
  /// lock-rank registry turns the attempt into a ContractViolation).
  /// Snapshot saves stage through this.
  template <typename Fn>
  void for_each(const Fn& fn) const {
    for (const Shard& shard : shards_) {
      const MutexLock lock(shard.mu);
      for (const auto& kv : shard.map) {
        fn(kv.first, kv.second.value);
      }
    }
  }

  /// Direct insert (snapshot restore path): stores `value` for `key`
  /// unless the key is already resident — first write wins, mirroring the
  /// get_or_use race rule, and restored values are deterministic so the
  /// kept entry is identical either way. Tallied as neither hit nor miss.
  void insert(const Key& key, Value value) {
    Shard& shard = shards_[shard_index(key)];
    const MutexLock lock(shard.mu);
    const auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      it->second.ref = true;
      return;
    }
    if (per_shard_cap_ != 0 && shard.map.size() >= per_shard_cap_) {
      evict_one(shard);
      const auto ins = shard.map.emplace(key, Node{std::move(value), true}).first;
      shard.ring[shard.hand] = ins;
      shard.hand = (shard.hand + 1) % shard.ring.size();
      return;
    }
    const auto ins = shard.map.emplace(key, Node{std::move(value), true}).first;
    if (per_shard_cap_ != 0) shard.ring.push_back(ins);
  }

 private:
  struct Node {
    Value value;
    bool ref = true;  // CLOCK reference bit; set on every access
  };
  using Map = std::unordered_map<Key, Node, Hash>;

  struct Shard {
    mutable Mutex mu{lock_rank::kSweepCacheShard};
    Map map GUARDED_BY(mu);
    // CLOCK state (bounded shards only): `ring` holds an iterator to every
    // resident entry (unordered_map iterators stay valid until their entry
    // is erased), `hand` is the sweep position.
    std::vector<typename Map::iterator> ring GUARDED_BY(mu);
    std::size_t hand GUARDED_BY(mu) = 0;
    // Plain counters: every touch happens under `mu`, no atomics needed —
    // which is also what makes stats() TSan-clean.
    std::uint64_t hits GUARDED_BY(mu) = 0;
    std::uint64_t misses GUARDED_BY(mu) = 0;
    std::uint64_t races GUARDED_BY(mu) = 0;
    std::uint64_t evictions GUARDED_BY(mu) = 0;
  };

  /// Sweep the clock hand to the first entry whose reference bit is clear
  /// (clearing set bits along the way) and erase it. The hand then points
  /// at the freed ring slot. Terminates: bits are only cleared, so a full
  /// lap forces a victim on the next.
  void evict_one(Shard& shard) REQUIRES(shard.mu) {
    AIRCH_DCHECK(!shard.ring.empty(), "bounded shard must have residents to evict");
    for (std::size_t spins = 0;; ++spins) {
      AIRCH_DCHECK(spins <= 2 * shard.ring.size(), "clock sweep must find a victim");
      if (shard.hand >= shard.ring.size()) shard.hand = 0;
      const auto victim = shard.ring[shard.hand];
      if (victim->second.ref) {
        victim->second.ref = false;
        ++shard.hand;
        continue;
      }
      shard.map.erase(victim);
      ++shard.evictions;
      return;
    }
  }

  static std::size_t pow2_at_least(std::size_t n) {
    std::size_t p = 1;
    while (p < n) p <<= 1;
    return p;
  }

  std::size_t shard_index(const Key& key) const {
    // Re-avalanche the map hash so shard index and bucket index do not
    // correlate (both would otherwise use the same low bits).
    return detail::mix_u64(static_cast<std::uint64_t>(Hash{}(key))) & (shards_.size() - 1);
  }

  std::vector<Shard> shards_;
  std::size_t per_shard_cap_ = 0;  // 0 = unbounded
};

// --------------------------------------------------------------- case 1

/// Constant-amortized drop-in for ArrayDataflowSearch::best. Thread-safe;
/// share one instance across all labelling workers of a generation run.
///
/// Storage is an open-addressed slot table per shard (power-of-two size,
/// linear probing, grown at 50% load) whose 32-byte slots index fixed-size
/// spans in one contiguous per-shard vector:
/// best[e - min_sum_exp] = argmin over labels with MAC exponent <= e, with
/// equal-cycle ties resolving to fewer MACs then lower label exactly like
/// the naive label-order scan. A span is built lazily — and *in place*,
/// under the shard lock — up to the highest budget exponent queried so far
/// for its workload, so a fresh query does work proportional to its own
/// budget (like the naive filtered scan), a later larger budget continues
/// the prefix scan from the stored bound, and steady-state queries perform
/// no heap allocation. Builds are sub-microsecond, so holding the shard
/// lock across them is cheaper than the allocate-outside-and-merge dance
/// it replaces; probing, building, and copying the answer out all happen
/// under that one lock.
///
/// Unbounded by default; with max_workloads != 0 each shard caps its
/// resident workloads and evicts second-chance (the CLOCK reference bit
/// rides in the top bit of the slot's span index, keeping slots at 32
/// bytes). Deletion is backward-shift — no tombstones, probe chains stay
/// exact — and the victim's span storage is handed to the incoming key, so
/// a bounded cache performs zero span allocation at steady state.
class Case1SweepCache {
 public:
  /// `expected_workloads` pre-sizes the shard tables for that many unique
  /// workloads (plus slack): the labelling loop then sees no slot rehash,
  /// no span reallocation and no first-touch page fault — that cost all
  /// lands here in the constructor, before any worker starts. 0 starts
  /// minimal and grows on demand. `max_workloads` bounds residency
  /// (0 = unbounded); the bound is split across the 64 shards rounded up,
  /// so stats().capacity may slightly exceed it.
  Case1SweepCache(const ArrayDataflowSpace& space, const Simulator& sim,
                  std::size_t expected_workloads = 0, std::size_t max_workloads = 0);

  /// Bit-identical to ArrayDataflowSearch::best(w, budget_exp), including
  /// the fewer-MACs / lower-label tie-break and the infeasible-budget
  /// std::invalid_argument. O(1) after the first covering query for a
  /// workload.
  [[nodiscard]] ArrayDataflowSearch::Result best(const GemmWorkload& w, int budget_exp) const;

  /// Hint that best(w, ...) is coming soon: issues a prefetch for w's home
  /// probe slot without taking the shard lock (reads no slot contents, so
  /// the race-free guarantee is untouched). Bulk labelling loops call this
  /// a few queries ahead to hide the probe's cache miss.
  void prefetch(const GemmWorkload& w) const;

  [[nodiscard]] CacheStats stats() const;

  /// Identity of the space shape this cache answers for (min_exp,
  /// max_macs_exp folded through the snapshot hash); snapshots for any
  /// other shape are rejected on load.
  [[nodiscard]] std::uint64_t fingerprint() const;
  /// Writes every resident span table to a versioned checksummed snapshot.
  [[nodiscard]] SnapshotStats save_snapshot(const std::string& path) const;
  /// Restores a snapshot saved by a cache with the same fingerprint.
  /// Throws ContractViolation (AIRCH_CHECK) on any mismatch or corruption,
  /// leaving the cache untouched; entries the cache already covers at
  /// least as far are skipped.
  [[nodiscard]] SnapshotStats load_snapshot(const std::string& path);

 private:
  using Result = ArrayDataflowSearch::Result;
  using Key = std::array<std::int64_t, 3>;

  /// Top bit of Slot::span is the CLOCK reference bit (set on access,
  /// cleared by a passing clock hand); the low 31 bits are the span index.
  static constexpr std::uint32_t kRefBit = 0x80000000u;
  static constexpr std::uint32_t kSpanMask = ~kRefBit;

  /// 32-byte probe header; the span itself lives in the shard's `spans`
  /// vector at index `(span & kSpanMask) * span_cap_`, computable from the
  /// header alone (no pointer chase). key[0] == 0 marks an empty slot —
  /// valid workloads have m >= 1.
  struct Slot {
    Key key{};
    std::int32_t max_exp = -1;  // highest MAC exponent built so far
    std::uint32_t span = 0;
  };

  struct Shard {
    mutable Mutex mu{lock_rank::kSweepCacheShard};
    std::vector<Slot> slots GUARDED_BY(mu);  // pow2 size, linear probing, <= 50% load
    std::size_t used GUARDED_BY(mu) = 0;
    std::vector<Result> spans GUARDED_BY(mu);  // span i occupies [i*span_cap, +span_cap)
    std::size_t hand GUARDED_BY(mu) = 0;       // CLOCK sweep position (bounded mode)
    // Plain counters: every touch happens under `mu`, no atomics needed.
    std::uint64_t hits GUARDED_BY(mu) = 0;
    std::uint64_t misses GUARDED_BY(mu) = 0;
    std::uint64_t evictions GUARDED_BY(mu) = 0;
    // Lock-free snapshot of (slots.data(), size-1) for prefetch(). Writers
    // publish base before mask; readers load mask before base, so a
    // reader's base is always at least as new as its mask and the computed
    // address stays inside the base's allocation. Deliberately NOT
    // GUARDED_BY(mu) — this is the documented capability-analysis escape
    // hatch for the lock-free prefetch path: prefetch() reads the snapshot
    // without the shard lock (and dereferences nothing), while every store
    // happens under it. The atomics carry the ordering themselves.
    std::atomic<const Slot*> pf_base{nullptr};
    std::atomic<std::size_t> pf_mask{0};
  };

  Slot& find_or_insert(Shard& shard, const Key& key, std::uint64_t hash) const
      REQUIRES(shard.mu);

  /// Second-chance victim selection + backward-shift deletion; returns the
  /// victim's span index for the incoming key to reuse.
  std::uint32_t evict_one(Shard& shard) const REQUIRES(shard.mu);

  /// Continue the prefix-argmin scan of `best` from `built_exp` (-1 for a
  /// fresh span) up to `up_to_exp`. Pure integer arithmetic; never throws.
  void extend_table(const GemmWorkload& w, int up_to_exp, int built_exp, Result* best) const;

  const ArrayDataflowSpace* space_;
  const Simulator* sim_;
  int span_cap_;  // entries per span: max_macs_exp - 2*min_exp + 1
  std::size_t per_shard_cap_ = 0;  // resident workloads per shard; 0 = unbounded
  mutable std::vector<Shard> shards_;
};

// --------------------------------------------------------------- case 2

/// Constant-amortized drop-in for BufferSearch::best: per unique
/// (workload, array, bandwidth) the separable traffic model is factored
/// once — no probe simulations — and folded into a limit-indexed
/// prefix-argmin table. Queries project one table entry under the shard
/// lock, so bounded instances stay safe under concurrent eviction.
class Case2SweepCache {
 public:
  /// max_entries bounds resident (workload, array, bandwidth) tables;
  /// 0 = unbounded.
  Case2SweepCache(const BufferSizeSpace& space, const Simulator& sim,
                  std::size_t max_entries = 0);

  /// Bit-identical to BufferSearch::best(w, array, bandwidth, limit_kb).
  [[nodiscard]] BufferSearch::Result best(const GemmWorkload& w, const ArrayConfig& array,
                            std::int64_t bandwidth, std::int64_t limit_kb) const;

  [[nodiscard]] CacheStats stats() const { return memo_.stats(); }

  /// Identity of the space shape (levels, step_kb); see Case1SweepCache.
  [[nodiscard]] std::uint64_t fingerprint() const;
  [[nodiscard]] SnapshotStats save_snapshot(const std::string& path) const;
  [[nodiscard]] SnapshotStats load_snapshot(const std::string& path);

 private:
  /// best_by_total[t - 3] = argmin over labels with total capacity
  /// <= t * step_kb, for t in [3, 3 * levels].
  struct Table {
    std::vector<BufferSearch::Result> best_by_total;
  };

  Table build_table(const GemmWorkload& w, const ArrayConfig& array,
                    std::int64_t bandwidth) const;

  using Key = std::array<std::int64_t, 7>;
  const BufferSizeSpace* space_;
  const Simulator* sim_;
  mutable ShardedMemoCache<Key, Table, detail::I64SeqHash> memo_;
};

// --------------------------------------------------------------- case 3

/// Two-level memo over ScheduleSearch::best. Level 1 (array_memo_): per
/// unique workload, the 3 * num_arrays simulations behind
/// ScheduleSearch::dataflow_costs, shared across every workload vector the
/// workload appears in. Level 2 (memo_): the full argmin per canonicalized
/// workload vector. A fresh vector therefore costs only its *new*
/// workloads' simulations plus one factored fold: permutations are walked
/// directly in label order and the 3^n dataflow assignments explored
/// depth-first, pruning any subtree whose partial makespan already
/// exceeds the incumbent — exact, because makespan is a max (monotone in
/// the remaining arrays) and the tie-break comparator carries the label.
class Case3SweepCache {
 public:
  /// max_entries bounds each memo level independently (0 = unbounded).
  explicit Case3SweepCache(const ScheduleSearch& search, std::size_t max_entries = 0);

  /// Bit-identical to ScheduleSearch::best(workloads).
  [[nodiscard]] ScheduleSearch::Result best(const std::vector<GemmWorkload>& workloads) const;

  /// Level-2 (workload-vector) memo counters.
  [[nodiscard]] CacheStats stats() const { return memo_.stats(); }
  /// Level-1 (per-workload simulation) memo counters.
  [[nodiscard]] CacheStats array_stats() const { return array_memo_.stats(); }

  /// Identity of the schedule space AND the array system AND the energy
  /// params — cached costs depend on all three; see Case1SweepCache.
  [[nodiscard]] std::uint64_t fingerprint() const;
  /// Both memo levels travel in one snapshot file.
  [[nodiscard]] SnapshotStats save_snapshot(const std::string& path) const;
  [[nodiscard]] SnapshotStats load_snapshot(const std::string& path);

 private:
  /// ScheduleSpace supports at most 8 arrays; fixed-size cost blocks keep
  /// the fold allocation-free.
  static constexpr int kMaxArrays = 8;
  using Key = std::vector<std::int64_t>;
  using WorkloadKey = std::array<std::int64_t, 3>;
  /// dataflow_costs for one workload on every array (index = array).
  using ArrayCosts = std::array<ScheduleSearch::DataflowCosts, kMaxArrays>;

  [[nodiscard]] ScheduleSearch::Result factored_best(const std::vector<GemmWorkload>& workloads) const;

  const ScheduleSearch* search_;
  mutable ShardedMemoCache<Key, ScheduleSearch::Result, detail::I64SeqHash> memo_;
  mutable ShardedMemoCache<WorkloadKey, ArrayCosts, detail::I64SeqHash> array_memo_;
};

}  // namespace airch
