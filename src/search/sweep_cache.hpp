#pragma once
// Search acceleration layer for dataset labelling (docs/performance.md).
//
// Dataset generation is the repo's hottest path: every labelled point runs
// a full exhaustive sweep of the case study's output space (459 sims for
// case 1, 1000 for case 2, 16*3 sims + 1944 combinations for case 3) —
// exactly the simulate-per-config loop the paper amortizes away with a
// learned recommender. This layer amortizes it *before* learning, without
// changing a single label:
//
//   * Case 1: the per-label cycle counts are independent of the MAC
//     budget, and the compute model factors per label into
//     fold_cycles(a, b) * row_folds(a) * col_folds(b) over shape exponents
//     (a, b). One cheap factored pass per unique workload builds a
//     prefix-argmin table indexed by budget exponent (labels grouped by
//     MAC count ascending), after which any covered `budget_exp` query is
//     O(1). Tables are stored in a sharded open-addressed slot table with
//     arena-backed spans and are built *in place* under the shard lock,
//     lazily up to the highest budget queried so far (monotone coverage):
//     a fresh workload costs no more than the naive path's own
//     budget-filtered scan and zero per-query heap allocations, and a
//     later larger budget extends the existing prefix incrementally.
//   * Case 2: DRAM traffic is separable per buffer (memory_model.hpp), so
//     3 * levels probe simulations recover every per-level traffic and
//     first-fill component; the 1000 label costs are then cheap integer
//     combines, folded into a prefix-argmin table indexed by the quantized
//     shared-capacity limit. Any `limit_kb` query is O(1).
//   * Case 3: the full ScheduleSearch::best result is memoized per
//     canonicalized workload vector.
//
// All three caches are sharded, mutex-striped concurrent memo tables
// (cases 2/3 share the node-based ShardedMemoCache; case 1 uses the
// open-addressed variant above), so the log-uniform sampler's duplicate
// workloads hit cache across a whole generation run from any worker
// thread. Correctness bar: labels (and costs) are bit-identical to the
// naive exhaustive path — enforced by the property tests in
// tests/test_sweep_cache.cpp.

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "search/exhaustive.hpp"
#include "search/space.hpp"
#include "sim/simulator.hpp"
#include "workload/gemm.hpp"

namespace airch {

/// Hit/miss counters and live entry count of a memo table. Hits and misses
/// are tallied with relaxed atomics: exact totals, no ordering guarantees.
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::size_t entries = 0;
};

namespace detail {

/// SplitMix64-style avalanche; good enough to spread near-identical keys
/// (small GEMM dims differ in few low bits) across shards and buckets.
constexpr std::uint64_t mix_u64(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

constexpr std::uint64_t hash_combine(std::uint64_t h, std::uint64_t v) {
  return mix_u64(h ^ (v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2)));
}

/// Hash over any container of int64 (fixed keys and workload vectors).
struct I64SeqHash {
  template <typename Seq>
  std::size_t operator()(const Seq& seq) const {
    std::uint64_t h = 0x243F6A8885A308D3ULL;
    for (const std::int64_t v : seq) h = hash_combine(h, static_cast<std::uint64_t>(v));
    return static_cast<std::size_t>(h);
  }
};

}  // namespace detail

/// Sharded, mutex-striped concurrent memoization table. Lookups take one
/// shard lock; values are computed *outside* any lock, so a miss never
/// blocks other shards (or even other keys of the same shard for long).
/// Two threads racing on the same fresh key may both compute; the first
/// insert wins and both observe the same (deterministic) value — callers
/// must therefore pass pure compute functions. Values live directly in the
/// (node-based) map, so the returned reference stays valid for the cache's
/// lifetime; entries are never evicted.
template <typename Key, typename Value, typename Hash = std::hash<Key>>
class ShardedMemoCache {
 public:
  /// shard_count is rounded up to a power of two; 0 picks the default (64,
  /// comfortably above any parallel_for worker count this repo deploys).
  explicit ShardedMemoCache(std::size_t shard_count = 0)
      : shards_(pow2_at_least(shard_count == 0 ? 64 : shard_count)) {}

  template <typename Fn>
  const Value& get_or_compute(const Key& key, const Fn& compute) {
    Shard& shard = shards_[shard_index(key)];
    {
      const std::lock_guard<std::mutex> lock(shard.mu);
      const auto it = shard.map.find(key);
      if (it != shard.map.end()) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        return it->second;
      }
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    Value value = compute();
    const std::lock_guard<std::mutex> lock(shard.mu);
    return shard.map.emplace(key, std::move(value)).first->second;
  }

  CacheStats stats() const {
    CacheStats s;
    s.hits = hits_.load(std::memory_order_relaxed);
    s.misses = misses_.load(std::memory_order_relaxed);
    for (const Shard& shard : shards_) {
      const std::lock_guard<std::mutex> lock(shard.mu);
      s.entries += shard.map.size();
    }
    return s;
  }

 private:
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<Key, Value, Hash> map;
  };

  static std::size_t pow2_at_least(std::size_t n) {
    std::size_t p = 1;
    while (p < n) p <<= 1;
    return p;
  }

  std::size_t shard_index(const Key& key) const {
    // Re-avalanche the map hash so shard index and bucket index do not
    // correlate (both would otherwise use the same low bits).
    return detail::mix_u64(static_cast<std::uint64_t>(Hash{}(key))) & (shards_.size() - 1);
  }

  std::vector<Shard> shards_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
};

// --------------------------------------------------------------- case 1

/// Constant-amortized drop-in for ArrayDataflowSearch::best. Thread-safe;
/// share one instance across all labelling workers of a generation run.
///
/// Storage is an open-addressed slot table per shard (power-of-two size,
/// linear probing, grown at 50% load) whose 32-byte slots index fixed-size
/// spans in one contiguous per-shard vector:
/// best[e - min_sum_exp] = argmin over labels with MAC exponent <= e, with
/// equal-cycle ties resolving to fewer MACs then lower label exactly like
/// the naive label-order scan. A span is built lazily — and *in place*,
/// under the shard lock — up to the highest budget exponent queried so far
/// for its workload, so a fresh query does work proportional to its own
/// budget (like the naive filtered scan), a later larger budget continues
/// the prefix scan from the stored bound, and steady-state queries perform
/// no heap allocation. Builds are sub-microsecond, so holding the shard
/// lock across them is cheaper than the allocate-outside-and-merge dance
/// it replaces; probing, building, and copying the answer out all happen
/// under that one lock. Entries are never evicted.
class Case1SweepCache {
 public:
  /// `expected_workloads` pre-sizes the shard tables for that many unique
  /// workloads (plus slack): the labelling loop then sees no slot rehash,
  /// no span reallocation and no first-touch page fault — that cost all
  /// lands here in the constructor, before any worker starts. 0 starts
  /// minimal and grows on demand.
  Case1SweepCache(const ArrayDataflowSpace& space, const Simulator& sim,
                  std::size_t expected_workloads = 0);

  /// Bit-identical to ArrayDataflowSearch::best(w, budget_exp), including
  /// the fewer-MACs / lower-label tie-break and the infeasible-budget
  /// std::invalid_argument. O(1) after the first covering query for a
  /// workload.
  ArrayDataflowSearch::Result best(const GemmWorkload& w, int budget_exp) const;

  /// Hint that best(w, ...) is coming soon: issues a prefetch for w's home
  /// probe slot without taking the shard lock (reads no slot contents, so
  /// the race-free guarantee is untouched). Bulk labelling loops call this
  /// a few queries ahead to hide the probe's cache miss.
  void prefetch(const GemmWorkload& w) const;

  CacheStats stats() const;

 private:
  using Result = ArrayDataflowSearch::Result;
  using Key = std::array<std::int64_t, 3>;

  /// 32-byte probe header; the span itself lives in the shard's `spans`
  /// vector at index `span * span_cap_`, computable from the header alone
  /// (no pointer chase). key[0] == 0 marks an empty slot — valid workloads
  /// have m >= 1.
  struct Slot {
    Key key{};
    std::int32_t max_exp = -1;  // highest MAC exponent built so far
    std::uint32_t span = 0;
  };

  struct Shard {
    mutable std::mutex mu;
    std::vector<Slot> slots;  // pow2 size, linear probing, <= 50% load
    std::size_t used = 0;
    std::vector<Result> spans;  // span i occupies [i*span_cap, +span_cap)
    // Plain counters: every touch happens under `mu`, no atomics needed.
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    // Lock-free snapshot of (slots.data(), size-1) for prefetch(). Writers
    // publish base before mask; readers load mask before base, so a
    // reader's base is always at least as new as its mask and the computed
    // address stays inside the base's allocation.
    std::atomic<const Slot*> pf_base{nullptr};
    std::atomic<std::size_t> pf_mask{0};
  };

  Slot& find_or_insert(Shard& shard, const Key& key, std::uint64_t hash) const;

  /// Continue the prefix-argmin scan of `best` from `built_exp` (-1 for a
  /// fresh span) up to `up_to_exp`. Pure integer arithmetic; never throws.
  void extend_table(const GemmWorkload& w, int up_to_exp, int built_exp, Result* best) const;

  const ArrayDataflowSpace* space_;
  const Simulator* sim_;
  int span_cap_;  // entries per span: max_macs_exp - 2*min_exp + 1
  mutable std::vector<Shard> shards_;
};

// --------------------------------------------------------------- case 2

/// Constant-amortized drop-in for BufferSearch::best: per unique
/// (workload, array, bandwidth) the separable traffic model is probed once
/// per buffer level and folded into a limit-indexed prefix-argmin table.
class Case2SweepCache {
 public:
  Case2SweepCache(const BufferSizeSpace& space, const Simulator& sim);

  /// Bit-identical to BufferSearch::best(w, array, bandwidth, limit_kb).
  BufferSearch::Result best(const GemmWorkload& w, const ArrayConfig& array,
                            std::int64_t bandwidth, std::int64_t limit_kb) const;

  CacheStats stats() const { return memo_.stats(); }

 private:
  /// best_by_total[t - 3] = argmin over labels with total capacity
  /// <= t * step_kb, for t in [3, 3 * levels].
  struct Table {
    std::vector<BufferSearch::Result> best_by_total;
  };

  Table build_table(const GemmWorkload& w, const ArrayConfig& array,
                    std::int64_t bandwidth) const;

  using Key = std::array<std::int64_t, 7>;
  const BufferSizeSpace* space_;
  const Simulator* sim_;
  mutable ShardedMemoCache<Key, Table, detail::I64SeqHash> memo_;
};

// --------------------------------------------------------------- case 3

/// Memoized ScheduleSearch::best keyed on the canonicalized workload
/// vector. The sweep itself stays in ScheduleSearch (which hoists its
/// per-label allocations); this cache removes repeat sweeps entirely.
class Case3SweepCache {
 public:
  explicit Case3SweepCache(const ScheduleSearch& search);

  /// Bit-identical to ScheduleSearch::best(workloads).
  ScheduleSearch::Result best(const std::vector<GemmWorkload>& workloads) const;

  CacheStats stats() const { return memo_.stats(); }

 private:
  using Key = std::vector<std::int64_t>;
  const ScheduleSearch* search_;
  mutable ShardedMemoCache<Key, ScheduleSearch::Result, detail::I64SeqHash> memo_;
};

}  // namespace airch
