#include "search/genetic.hpp"

#include <algorithm>

#include "common/math_utils.hpp"

namespace airch {

namespace {

/// Case-1 genome: row exponent, column exponent, dataflow index.
struct ArrayGenome {
  int row_exp = 1;
  int col_exp = 1;
  int dataflow = 0;
};

}  // namespace

GaArrayDataflowSearch::Result GaArrayDataflowSearch::best(const GemmWorkload& w, int budget_exp,
                                                          const GaOptions& options) const {
  const int min_exp = 1;
  const int max_total = std::min(budget_exp, space_->max_macs_exp());

  auto clamp_genome = [&](ArrayGenome& g) {
    g.row_exp = static_cast<int>(clamp_i64(g.row_exp, min_exp, max_total - min_exp));
    g.col_exp = static_cast<int>(clamp_i64(g.col_exp, min_exp, max_total - g.row_exp));
  };
  auto to_config = [&](const ArrayGenome& g) {
    return ArrayConfig{pow2(g.row_exp), pow2(g.col_exp), dataflow_from_index(g.dataflow)};
  };

  GeneticOptimizer<ArrayGenome>::Hooks hooks;
  hooks.random = [&](Rng& rng) {
    ArrayGenome g;
    g.row_exp = static_cast<int>(rng.uniform_int(min_exp, max_total - min_exp));
    g.col_exp = static_cast<int>(rng.uniform_int(min_exp, max_total - g.row_exp));
    g.dataflow = static_cast<int>(rng.uniform_int(0, 2));
    return g;
  };
  hooks.crossover = [&](const ArrayGenome& a, const ArrayGenome& b, Rng& rng) {
    ArrayGenome g;
    g.row_exp = rng.uniform() < 0.5 ? a.row_exp : b.row_exp;
    g.col_exp = rng.uniform() < 0.5 ? a.col_exp : b.col_exp;
    g.dataflow = rng.uniform() < 0.5 ? a.dataflow : b.dataflow;
    clamp_genome(g);
    return g;
  };
  hooks.mutate = [&](ArrayGenome& g, Rng& rng) {
    switch (rng.uniform_int(0, 2)) {
      case 0: g.row_exp += rng.uniform() < 0.5 ? 1 : -1; break;
      case 1: g.col_exp += rng.uniform() < 0.5 ? 1 : -1; break;
      default: g.dataflow = static_cast<int>(rng.uniform_int(0, 2)); break;
    }
    clamp_genome(g);
  };
  hooks.fitness = [&](const ArrayGenome& g) {
    // GA fitness is a bare maximized double by contract; scalarize here.
    return -static_cast<double>(sim_->compute_cycles(w, to_config(g)).value());  // airch-lint: allow(value-escape)
  };

  GeneticOptimizer<ArrayGenome> ga(options, std::move(hooks));
  const auto r = ga.run();
  Result out;
  out.label = space_->label_of(to_config(r.best));
  out.cycles = Cycles{static_cast<std::int64_t>(-r.fitness)};
  out.evaluations = r.evaluations;
  return out;
}

namespace {

struct ScheduleGenome {
  ScheduleSpace::Schedule schedule;
};

}  // namespace

GaScheduleSearch::Result GaScheduleSearch::best(const std::vector<GemmWorkload>& workloads,
                                                const GaOptions& options) const {
  const int n = space_->num_arrays();

  GeneticOptimizer<ScheduleGenome>::Hooks hooks;
  hooks.random = [&](Rng& rng) {
    ScheduleGenome g;
    g.schedule.workload_of.resize(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) g.schedule.workload_of[static_cast<std::size_t>(i)] = i;
    rng.shuffle(g.schedule.workload_of);
    g.schedule.dataflow_of.resize(static_cast<std::size_t>(n));
    for (auto& d : g.schedule.dataflow_of) {
      d = dataflow_from_index(static_cast<int>(rng.uniform_int(0, 2)));
    }
    return g;
  };
  hooks.crossover = [&](const ScheduleGenome& a, const ScheduleGenome& b, Rng& rng) {
    // Order crossover for the permutation; uniform for dataflows.
    ScheduleGenome g;
    const auto cut = static_cast<std::size_t>(rng.uniform_int(0, n - 1));
    g.schedule.workload_of.assign(a.schedule.workload_of.begin(),
                                  a.schedule.workload_of.begin() + static_cast<std::ptrdiff_t>(cut));
    for (int wl : b.schedule.workload_of) {
      if (std::find(g.schedule.workload_of.begin(), g.schedule.workload_of.end(), wl) ==
          g.schedule.workload_of.end()) {
        g.schedule.workload_of.push_back(wl);
      }
    }
    g.schedule.dataflow_of.resize(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      const auto idx = static_cast<std::size_t>(i);
      g.schedule.dataflow_of[idx] =
          rng.uniform() < 0.5 ? a.schedule.dataflow_of[idx] : b.schedule.dataflow_of[idx];
    }
    return g;
  };
  hooks.mutate = [&](ScheduleGenome& g, Rng& rng) {
    if (rng.uniform() < 0.5 && n >= 2) {
      const auto i = static_cast<std::size_t>(rng.uniform_int(0, n - 1));
      const auto j = static_cast<std::size_t>(rng.uniform_int(0, n - 1));
      std::swap(g.schedule.workload_of[i], g.schedule.workload_of[j]);
    } else {
      const auto i = static_cast<std::size_t>(rng.uniform_int(0, n - 1));
      g.schedule.dataflow_of[i] = dataflow_from_index(static_cast<int>(rng.uniform_int(0, 2)));
    }
  };
  hooks.fitness = [&](const ScheduleGenome& g) {
    const int label = space_->label_of(g.schedule);
    // GA fitness is a bare maximized double by contract; scalarize here.
    return -static_cast<double>(
        exhaustive_.evaluate(workloads, label).makespan_cycles.value());  // airch-lint: allow(value-escape)
  };

  GeneticOptimizer<ScheduleGenome> ga(options, std::move(hooks));
  const auto r = ga.run();
  Result out;
  out.label = space_->label_of(r.best.schedule);
  out.makespan_cycles = Cycles{static_cast<std::int64_t>(-r.fitness)};
  out.evaluations = r.evaluations;
  return out;
}

}  // namespace airch
