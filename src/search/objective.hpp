#pragma once
// Optimization objectives beyond runtime. The paper uses runtime for case
// study 1 and runtime+energy for case study 3, and names "other design
// spaces" as future work; this module generalizes the case-1 search and
// dataset generation to energy and energy-delay-product objectives
// (`bench_ablation` studies how the optimal design shifts).

#include <cstdint>
#include <string>

#include "sim/simulator.hpp"
#include "workload/gemm.hpp"

namespace airch {

enum class Objective : std::uint8_t { kRuntime = 0, kEnergy = 1, kEdp = 2 };

const char* to_string(Objective o);
Objective objective_from_string(const std::string& s);

/// Scores a (workload, array) pair under an objective. Energy and EDP need
/// a memory system; a fixed nominal configuration (balanced buffers,
/// mid-range bandwidth) is used so the objective compares arrays, not
/// memories.
class ObjectiveEvaluator {
 public:
  explicit ObjectiveEvaluator(const Simulator& sim,
                              MemoryConfig nominal_memory = {400, 400, 400, 16})
      : sim_(&sim), memory_(nominal_memory) {}

  /// Lower is better for every objective.
  double cost(const GemmWorkload& w, const ArrayConfig& array, Objective objective) const;

  const MemoryConfig& nominal_memory() const { return memory_; }

 private:
  const Simulator* sim_;
  MemoryConfig memory_;
};

}  // namespace airch
