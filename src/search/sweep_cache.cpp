#include "search/sweep_cache.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "common/check.hpp"
#include "common/math_utils.hpp"
#include "sim/compute_model.hpp"
#include "sim/memory_model.hpp"

namespace airch {

// --------------------------------------------------------------- case 1

namespace {

/// Initial open-addressed capacity per shard; sized so a typical
/// generation run grows each shard a handful of times at most.
constexpr std::size_t kInitialSlots = 64;

/// ceil(x / 2^e) without a division, overflow-safe for any x >= 1 (matches
/// ceil_div's (x - 1) / d + 1 form bit-for-bit for power-of-two divisors).
inline std::int64_t ceil_shr(std::int64_t x, int e) { return ((x - 1) >> e) + 1; }

/// Dedicated case-1 key hash: position-tagged product mix plus one
/// avalanche — half the multiplies of the chained I64SeqHash, and this
/// hash runs twice per query (prefetch + best). Low bits index the probe
/// slot, top bits pick the shard, so the two never correlate.
inline std::uint64_t case1_key_hash(const std::array<std::int64_t, 3>& key) {
  return detail::mix_u64(static_cast<std::uint64_t>(key[0]) * 0x9E3779B97F4A7C15ULL ^
                         static_cast<std::uint64_t>(key[1]) * 0xC2B2AE3D27D4EB4FULL ^
                         static_cast<std::uint64_t>(key[2]));
}

}  // namespace

Case1SweepCache::Case1SweepCache(const ArrayDataflowSpace& space, const Simulator& sim,
                                 std::size_t expected_workloads)
    : space_(&space),
      sim_(&sim),
      span_cap_(space.max_macs_exp() - 2 * space.min_exp() + 1),
      shards_(64) {
  AIRCH_ASSERT(span_cap_ >= 1);
  // The shard count is baked into the `hash >> 58` shard picks below.
  AIRCH_ASSERT(shards_.size() == 64);
  if (expected_workloads == 0) return;
  // Pre-size each shard for its share of the expected keys plus 25% slack
  // (key-to-shard assignment is hash-random, so shard counts fluctuate).
  // Writing the buffers now also faults their pages in, so the hot
  // labelling loop performs no rehash, no reallocation and no first-touch
  // page fault; the on-demand growth paths below remain as backstop.
  const std::size_t per_shard =
      expected_workloads / shards_.size() + expected_workloads / (shards_.size() * 4) + 1;
  std::size_t cap = kInitialSlots;
  while (cap < 2 * per_shard) cap <<= 1;  // keep load factor <= 50%
  for (Shard& shard : shards_) {
    shard.slots.resize(cap);
    shard.pf_base.store(shard.slots.data(), std::memory_order_release);
    shard.pf_mask.store(cap - 1, std::memory_order_release);
    // resize-then-clear: touches every page, keeps the capacity.
    shard.spans.resize(per_shard * static_cast<std::size_t>(span_cap_));
    shard.spans.clear();
  }
}

Case1SweepCache::Slot& Case1SweepCache::find_or_insert(Shard& shard, const Key& key,
                                                       std::uint64_t hash) const {
  if (shard.slots.empty()) {
    shard.slots.resize(kInitialSlots);
    shard.pf_base.store(shard.slots.data(), std::memory_order_release);
    shard.pf_mask.store(shard.slots.size() - 1, std::memory_order_release);
  }
  std::size_t mask = shard.slots.size() - 1;
  std::size_t i = hash & mask;
  while (shard.slots[i].key[0] != 0) {
    if (shard.slots[i].key == key) return shard.slots[i];
    i = (i + 1) & mask;
  }
  if (2 * (shard.used + 1) > shard.slots.size()) {
    // Grow at 50% load; rehashing moves 32-byte headers only, spans stay
    // where they are in the shard's span vector.
    std::vector<Slot> bigger(shard.slots.size() * 2);
    mask = bigger.size() - 1;
    for (const Slot& s : shard.slots) {
      if (s.key[0] == 0) continue;
      std::size_t j = case1_key_hash(s.key) & mask;
      while (bigger[j].key[0] != 0) j = (j + 1) & mask;
      bigger[j] = s;
    }
    shard.slots.swap(bigger);
    shard.pf_base.store(shard.slots.data(), std::memory_order_release);
    shard.pf_mask.store(shard.slots.size() - 1, std::memory_order_release);
    i = hash & mask;
    while (shard.slots[i].key[0] != 0) i = (i + 1) & mask;
  }
  Slot& slot = shard.slots[i];
  slot.key = key;
  slot.max_exp = -1;
  slot.span = static_cast<std::uint32_t>(shard.spans.size() / static_cast<std::size_t>(span_cap_));
  shard.spans.resize(shard.spans.size() + static_cast<std::size_t>(span_cap_));
  ++shard.used;
  return slot;
}

void Case1SweepCache::extend_table(const GemmWorkload& w, int up_to_exp, int built_exp,
                                   Result* best) const {
  const int min_e = space_->min_exp();
  const int lo = 2 * min_e;  // smallest MAC exponent in the space
  const int max_a = up_to_exp - min_e;
  const int start = built_exp >= lo ? built_exp + 1 : lo;

  // Factored compute model (compute_model.hpp): for a shape (2^a x 2^b),
  //   cycles = fold_cycles(a, b, dataflow) * row_folds(a) * col_folds(b)
  // where the fold counts depend on one exponent each. Hoisting the
  // ceil-divisions to one shift pass per exponent turns the per-label
  // sweep into a few multiply-compares. All scratch below is fixed-size
  // (exponents are < 63 by the pow2 contract): no allocation anywhere.
  std::array<std::int64_t, 63> folds_m;
  std::array<std::int64_t, 63> folds_n;
  std::array<std::int64_t, 63> folds_k;
  // Label of the first (lowest-b) shape for each row exponent, in the FULL
  // space enumeration (labels are ids in the whole space regardless of how
  // far this table is built): shapes are ordered by (a, b) with 3 dataflow
  // labels each, and row exponent a owns (max_s - a - min_e + 1) shapes.
  std::array<int, 63> label_base;
  {
    const int max_s = space_->max_macs_exp();
    int base = 0;
    for (int a = min_e; a <= max_a; ++a) {
      const auto ia = static_cast<std::size_t>(a);
      folds_m[ia] = ceil_shr(w.m, a);
      folds_n[ia] = ceil_shr(w.n, a);
      folds_k[ia] = ceil_shr(w.k, a);
      label_base[ia] = base;
      base += 3 * (max_s - a - min_e + 1);
    }
  }

  // Phase 1: per-diagonal argmin. All shapes with a + b = s share
  // macs = 2^s; iterating column-major (a outer, b inner) touches a
  // *different* accumulator slot on every inner step, so the sweep has no
  // loop-carried dependency and the multiplies pipeline freely. Within a
  // diagonal the visit order is still ascending a — ascending label — and
  // within a shape OS/WS/IS are compared in dataflow-index order, both
  // with strict '<', so equal-cycle ties resolve to the lowest label
  // exactly like the naive scan (strict-'<' argmin over a fixed visit
  // order is fold-shape independent).
  std::array<std::int64_t, 61> acc_cyc;
  std::array<int, 61> acc_lab;
  for (int s = start; s <= up_to_exp; ++s) {
    acc_cyc[static_cast<std::size_t>(s - lo)] = std::numeric_limits<std::int64_t>::max();
  }
  for (int a = min_e; a <= max_a; ++a) {
    const auto ia = static_cast<std::size_t>(a);
    const std::int64_t fm_a = folds_m[ia];
    const std::int64_t fk_a = folds_k[ia];
    // Fill/drain term shared by the three dataflows: OS pays
    // (rows-1) + (rows+cols-1), WS/IS pay rows + (rows+cols-2) — the
    // same 2*rows + cols - 2. Only the streamed dimension differs.
    const std::int64_t overhead_a = (std::int64_t{2} << a) - 2;
    // Streamed-dimension terms with the row part of the overhead folded in;
    // the inner loop only adds the column term 2^b.
    const std::int64_t oh_k = overhead_a + w.k;
    const std::int64_t oh_m = overhead_a + w.m;
    const std::int64_t oh_n = overhead_a + w.n;
    const int label_a = label_base[ia];
    const int b_lo = std::max(min_e, start - a);  // only diagonals >= start
    const int b_hi = up_to_exp - a;
    for (int b = b_lo; b <= b_hi; ++b) {
      const auto ib = static_cast<std::size_t>(b);
      const std::int64_t col = std::int64_t{1} << b;
      const std::int64_t os = (oh_k + col) * (fm_a * folds_n[ib]);
      const std::int64_t ws = (oh_m + col) * (fk_a * folds_n[ib]);
      const std::int64_t is = (oh_n + col) * (fk_a * folds_m[ib]);
      const int label = label_a + 3 * (b - min_e);
      // Branchless tournament + accumulator update: near-random argmin
      // outcomes make these compares mispredict constantly as branches, so
      // keep them as conditional moves (ternary + unconditional store).
      std::int64_t top_cyc = os;
      int top_lab = label;
      const bool ws_lt = ws < top_cyc;
      top_cyc = ws_lt ? ws : top_cyc;
      top_lab = ws_lt ? label + 1 : top_lab;
      const bool is_lt = is < top_cyc;
      top_cyc = is_lt ? is : top_cyc;
      top_lab = is_lt ? label + 2 : top_lab;
      const auto slot = static_cast<std::size_t>(a + b - lo);
      const bool acc_lt = top_cyc < acc_cyc[slot];
      acc_cyc[slot] = acc_lt ? top_cyc : acc_cyc[slot];
      acc_lab[slot] = acc_lt ? top_lab : acc_lab[slot];
    }
  }

  // Phase 2: prefix merge across ascending MAC exponents, seeded from the
  // already-built prefix when extending; strict '<' preserves the
  // equal-cycles -> fewer-MACs tie-break.
  int run_label = -1;
  std::int64_t run_cyc = std::numeric_limits<std::int64_t>::max();
  if (start > lo) {
    const Result& prev = best[start - 1 - lo];
    run_label = prev.label;
    // Unwrapped on purpose: the merge loop runs on raw int64 so the
    // compare-and-select compiles to conditional moves.
    run_cyc = prev.cycles.value();  // airch-lint: allow(value-escape)
  }
  for (int s = start; s <= up_to_exp; ++s) {
    const auto i = static_cast<std::size_t>(s - lo);
    const bool lt = acc_cyc[i] < run_cyc;
    run_cyc = lt ? acc_cyc[i] : run_cyc;
    run_label = lt ? acc_lab[i] : run_label;
    AIRCH_DCHECK(run_label >= 0, "every MAC-exponent diagonal holds at least one shape");
    best[i] = {run_label, Cycles{run_cyc}};
  }
}

ArrayDataflowSearch::Result Case1SweepCache::best(const GemmWorkload& w, int budget_exp) const {
  AIRCH_ASSERT(w.valid());
  const int lo = 2 * space_->min_exp();
  const int e = std::min(budget_exp, 62);  // naive path clamps identically
  if (e < lo) throw std::invalid_argument("MAC budget below smallest array in space");
  const int e_cap = std::min(e, space_->max_macs_exp());

  const Key key{w.m, w.n, w.k};
  const std::uint64_t hash = case1_key_hash(key);
  // Top hash bits pick the shard (64 shards): independent of the low
  // probe-index bits with no second avalanche.
  Shard& shard = shards_[hash >> 58];
  const std::lock_guard<std::mutex> lock(shard.mu);
  Slot& slot = find_or_insert(shard, key, hash);
  // Pointer computed after find_or_insert: inserting may reallocate spans.
  Result* const best = shard.spans.data() +
                       static_cast<std::size_t>(slot.span) * static_cast<std::size_t>(span_cap_);
  if (slot.max_exp >= e_cap) {
    ++shard.hits;
  } else {
    ++shard.misses;
    extend_table(w, e_cap, slot.max_exp, best);
    slot.max_exp = e_cap;
  }
  return best[e_cap - lo];
}

void Case1SweepCache::prefetch(const GemmWorkload& w) const {
  const Key key{w.m, w.n, w.k};
  const std::uint64_t hash = case1_key_hash(key);
  const Shard& shard = shards_[hash >> 58];
  // Mask before base (see Shard): the index is always in range for the
  // loaded base. A concurrently retired base may point at a stale array;
  // the hint then warms a dead line, which is merely wasted work.
  const std::size_t mask = shard.pf_mask.load(std::memory_order_acquire);
  const Slot* base = shard.pf_base.load(std::memory_order_acquire);
  if (base == nullptr) return;
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(base + (hash & mask));
#endif
}

CacheStats Case1SweepCache::stats() const {
  CacheStats s;
  for (const Shard& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard.mu);
    s.hits += shard.hits;
    s.misses += shard.misses;
    s.entries += shard.used;
  }
  return s;
}

// --------------------------------------------------------------- case 2

Case2SweepCache::Case2SweepCache(const BufferSizeSpace& space, const Simulator& sim)
    : space_(&space), sim_(&sim) {}

Case2SweepCache::Table Case2SweepCache::build_table(const GemmWorkload& w,
                                                    const ArrayConfig& array,
                                                    std::int64_t bandwidth) const {
  const int levels = space_->levels();
  const auto nlevels = static_cast<std::size_t>(levels);
  const std::int64_t step = space_->step_kb();
  const ComputeResult compute = compute_latency(w, array);
  const BytesPerCycle bw{bandwidth};

  const auto probe = [&](std::int64_t if_kb, std::int64_t fil_kb, std::int64_t of_kb) {
    MemoryConfig mem;
    mem.ifmap_kb = if_kb;
    mem.filter_kb = fil_kb;
    mem.ofmap_kb = of_kb;
    mem.bandwidth = bandwidth;
    return memory_behavior(w, array, mem, compute);
  };

  // The traffic model is separable per buffer (memory_model.hpp): each
  // operand's DRAM traffic depends on its own capacity only, and the
  // first-fill is an (ifmap term) + (filter term) sum. Probing one buffer
  // per call at the others' floor recovers every component exactly:
  //   first_fill(i, f) = probe_if(i).ff + probe_fil(f).ff - base.ff.
  const MemoryResult base = probe(step, step, step);
  std::vector<Bytes> traffic_if(nlevels), traffic_fil(nlevels), traffic_of(nlevels);
  std::vector<Bytes> fill_if(nlevels), fill_fil(nlevels);
  for (int l = 0; l < levels; ++l) {
    const std::int64_t kb = (l + 1) * step;
    const auto il = static_cast<std::size_t>(l);
    const MemoryResult pi = probe(kb, step, step);
    traffic_if[il] = pi.dram_ifmap_bytes;
    fill_if[il] = pi.first_fill_bytes;
    const MemoryResult pf = probe(step, kb, step);
    traffic_fil[il] = pf.dram_filter_bytes;
    fill_fil[il] = pf.first_fill_bytes - base.first_fill_bytes;
    traffic_of[il] = probe(step, step, kb).dram_ofmap_bytes;
  }

  // Combine the 1000 labels with pure integer arithmetic, bucketed by
  // total capacity so a shared-budget query is a prefix lookup.
  struct Bucket {
    int label = -1;
    Cycles stalls{std::numeric_limits<std::int64_t>::max()};
  };
  std::vector<Bucket> buckets(static_cast<std::size_t>(3 * (levels - 1)) + 1);
  int label = 0;
  for (int i = 0; i < levels; ++i) {
    for (int f = 0; f < levels; ++f) {
      const Bytes traffic_two = traffic_if[static_cast<std::size_t>(i)] +
                                traffic_fil[static_cast<std::size_t>(f)];
      const Cycles fill_cycles = ceil_div(
          fill_if[static_cast<std::size_t>(i)] + fill_fil[static_cast<std::size_t>(f)], bw);
      for (int o = 0; o < levels; ++o, ++label) {
        const Cycles transfer_cycles =
            ceil_div(traffic_two + traffic_of[static_cast<std::size_t>(o)], bw);
        const Cycles stalls =
            fill_cycles + std::max(Cycles{0}, transfer_cycles - compute.cycles);
        Bucket& bk = buckets[static_cast<std::size_t>(i + f + o)];
        if (stalls < bk.stalls) bk = {label, stalls};
      }
    }
  }
  AIRCH_DCHECK(label == space_->size(), "buffer combine must visit every label exactly once");

  // Prefix-argmin over ascending total capacity; strict '<' preserves the
  // naive tie-break (equal stalls -> smaller total capacity).
  Table t;
  t.best_by_total.resize(buckets.size());
  BufferSearch::Result run{-1, Cycles{std::numeric_limits<std::int64_t>::max()},
                           std::numeric_limits<std::int64_t>::max()};
  for (std::size_t u = 0; u < buckets.size(); ++u) {
    const Bucket& bk = buckets[u];
    AIRCH_DCHECK(bk.label >= 0, "every total-capacity bucket holds at least one label");
    if (bk.stalls < run.stall_cycles) {
      run = {bk.label, bk.stalls, (static_cast<std::int64_t>(u) + 3) * step};
    }
    t.best_by_total[u] = run;
  }
  return t;
}

BufferSearch::Result Case2SweepCache::best(const GemmWorkload& w, const ArrayConfig& array,
                                           std::int64_t bandwidth,
                                           std::int64_t limit_kb) const {
  AIRCH_ASSERT(w.valid() && array.valid());
  const std::int64_t step = space_->step_kb();
  const std::int64_t limit_steps = limit_kb >= 0 ? limit_kb / step : 0;
  if (limit_steps < 3) {
    throw std::invalid_argument("buffer limit below smallest size in space");
  }
  const Table& table = memo_.get_or_compute(
      Key{w.m, w.n, w.k, array.rows, array.cols, dataflow_index(array.dataflow), bandwidth},
      [&] { return build_table(w, array, bandwidth); });
  const std::int64_t idx =
      std::min<std::int64_t>(limit_steps, 3 * space_->levels()) - 3;
  return table.best_by_total[static_cast<std::size_t>(idx)];
}

// --------------------------------------------------------------- case 3

Case3SweepCache::Case3SweepCache(const ScheduleSearch& search) : search_(&search) {}

ScheduleSearch::Result Case3SweepCache::best(const std::vector<GemmWorkload>& workloads) const {
  Key key;
  key.reserve(workloads.size() * 3);
  for (const GemmWorkload& w : workloads) {
    key.push_back(w.m);
    key.push_back(w.n);
    key.push_back(w.k);
  }
  return memo_.get_or_compute(key, [&] { return search_->best(workloads); });
}

}  // namespace airch
