#include "search/sweep_cache.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

#include "common/binio.hpp"
#include "common/check.hpp"
#include "common/math_utils.hpp"
#include "sim/compute_model.hpp"
#include "sim/energy_model.hpp"
#include "sim/memory_model.hpp"

namespace airch {

// --------------------------------------------------------------- case 1

namespace {

/// Initial open-addressed capacity per shard; sized so a typical
/// generation run grows each shard a handful of times at most.
constexpr std::size_t kInitialSlots = 64;

/// ceil(x / 2^e) without a division, overflow-safe for any x >= 1 (matches
/// ceil_div's (x - 1) / d + 1 form bit-for-bit for power-of-two divisors).
inline std::int64_t ceil_shr(std::int64_t x, int e) { return ((x - 1) >> e) + 1; }

/// Dedicated case-1 key hash: position-tagged product mix plus one
/// avalanche — half the multiplies of the chained I64SeqHash, and this
/// hash runs twice per query (prefetch + best). Low bits index the probe
/// slot, top bits pick the shard, so the two never correlate.
inline std::uint64_t case1_key_hash(const std::array<std::int64_t, 3>& key) {
  return detail::mix_u64(static_cast<std::uint64_t>(key[0]) * 0x9E3779B97F4A7C15ULL ^
                         static_cast<std::uint64_t>(key[1]) * 0xC2B2AE3D27D4EB4FULL ^
                         static_cast<std::uint64_t>(key[2]));
}

}  // namespace

Case1SweepCache::Case1SweepCache(const ArrayDataflowSpace& space, const Simulator& sim,
                                 std::size_t expected_workloads, std::size_t max_workloads)
    : space_(&space),
      sim_(&sim),
      span_cap_(space.max_macs_exp() - 2 * space.min_exp() + 1),
      shards_(64) {
  AIRCH_ASSERT(span_cap_ >= 1);
  // The shard count is baked into the `hash >> 58` shard picks below.
  AIRCH_ASSERT(shards_.size() == 64);
  if (max_workloads != 0) {
    per_shard_cap_ = (max_workloads + shards_.size() - 1) / shards_.size();
  }
  if (expected_workloads == 0) return;
  // Pre-size each shard for its share of the expected keys plus 25% slack
  // (key-to-shard assignment is hash-random, so shard counts fluctuate).
  // Writing the buffers now also faults their pages in, so the hot
  // labelling loop performs no rehash, no reallocation and no first-touch
  // page fault; the on-demand growth paths below remain as backstop.
  std::size_t per_shard =
      expected_workloads / shards_.size() + expected_workloads / (shards_.size() * 4) + 1;
  if (per_shard_cap_ != 0) per_shard = std::min(per_shard, per_shard_cap_);
  std::size_t cap = kInitialSlots;
  while (cap < 2 * per_shard) cap <<= 1;  // keep load factor <= 50%
  for (Shard& shard : shards_) {
    // Clang's constructor exemption only covers members of `this`, not the
    // Shard objects' own guarded fields — and taking the lock here keeps
    // the pre-sizing writes visible to whichever thread touches the shard
    // first. Single-threaded at this point, so the cost is nil.
    const MutexLock lock(shard.mu);
    shard.slots.resize(cap);
    shard.pf_base.store(shard.slots.data(), std::memory_order_release);
    shard.pf_mask.store(cap - 1, std::memory_order_release);
    // resize-then-clear: touches every page, keeps the capacity.
    shard.spans.resize(per_shard * static_cast<std::size_t>(span_cap_));
    shard.spans.clear();
  }
}

std::uint32_t Case1SweepCache::evict_one(Shard& shard) const REQUIRES(shard.mu) {
  const std::size_t mask = shard.slots.size() - 1;
  std::size_t h = shard.hand & mask;
  // Second-chance sweep over the slot array: a set reference bit buys the
  // entry one more lap. Terminates because bits are only cleared — after
  // one full lap every survivor is unreferenced.
  for (std::size_t spins = 0;; ++spins) {
    AIRCH_DCHECK(spins <= 2 * shard.slots.size(), "clock sweep must find a victim");
    Slot& cand = shard.slots[h];
    if (cand.key[0] != 0) {
      if ((cand.span & kRefBit) != 0) {
        cand.span &= kSpanMask;
      } else {
        break;
      }
    }
    h = (h + 1) & mask;
  }
  const std::uint32_t freed = shard.slots[h].span & kSpanMask;
  // Backward-shift deletion keeps linear probing exact without tombstones:
  // walk the cluster after the hole; each slot moves back into the hole
  // unless its home position lies cyclically within (hole, slot] — probing
  // from its home would then never cross the hole to find it.
  std::size_t hole = h;
  std::size_t j = h;
  for (;;) {
    j = (j + 1) & mask;
    Slot& next = shard.slots[j];
    if (next.key[0] == 0) break;
    const std::size_t home = case1_key_hash(next.key) & mask;
    if (((j - home) & mask) >= ((j - hole) & mask)) {
      shard.slots[hole] = next;
      hole = j;
    }
  }
  shard.slots[hole] = Slot{};
  --shard.used;
  ++shard.evictions;
  shard.hand = (h + 1) & mask;
  return freed;
}

Case1SweepCache::Slot& Case1SweepCache::find_or_insert(Shard& shard, const Key& key,
                                                       std::uint64_t hash) const
    REQUIRES(shard.mu) {
  if (shard.slots.empty()) {
    shard.slots.resize(kInitialSlots);
    shard.pf_base.store(shard.slots.data(), std::memory_order_release);
    shard.pf_mask.store(shard.slots.size() - 1, std::memory_order_release);
  }
  std::size_t mask = shard.slots.size() - 1;
  std::size_t i = hash & mask;
  while (shard.slots[i].key[0] != 0) {
    if (shard.slots[i].key == key) return shard.slots[i];
    i = (i + 1) & mask;
  }
  std::uint32_t reuse_span = 0;
  bool have_reuse = false;
  if (per_shard_cap_ != 0 && shard.used >= per_shard_cap_) {
    reuse_span = evict_one(shard);
    have_reuse = true;
    // The backward shift moved slots around; re-probe the insert position.
    i = hash & mask;
    while (shard.slots[i].key[0] != 0) i = (i + 1) & mask;
  }
  if (2 * (shard.used + 1) > shard.slots.size()) {
    // Grow at 50% load; rehashing moves 32-byte headers only, spans stay
    // where they are in the shard's span vector.
    std::vector<Slot> bigger(shard.slots.size() * 2);
    mask = bigger.size() - 1;
    for (const Slot& s : shard.slots) {
      if (s.key[0] == 0) continue;
      std::size_t j = case1_key_hash(s.key) & mask;
      while (bigger[j].key[0] != 0) j = (j + 1) & mask;
      bigger[j] = s;
    }
    shard.slots.swap(bigger);
    shard.pf_base.store(shard.slots.data(), std::memory_order_release);
    shard.pf_mask.store(shard.slots.size() - 1, std::memory_order_release);
    i = hash & mask;
    while (shard.slots[i].key[0] != 0) i = (i + 1) & mask;
  }
  Slot& slot = shard.slots[i];
  slot.key = key;
  slot.max_exp = -1;
  if (have_reuse) {
    // Reuse the victim's span storage: bounded shards allocate no spans at
    // steady state.
    slot.span = reuse_span | kRefBit;
  } else {
    const std::size_t next_span = shard.spans.size() / static_cast<std::size_t>(span_cap_);
    AIRCH_DCHECK(next_span < static_cast<std::size_t>(kSpanMask),
                 "span index must fit the 31 low bits of Slot::span");
    slot.span = static_cast<std::uint32_t>(next_span) | kRefBit;
    shard.spans.resize(shard.spans.size() + static_cast<std::size_t>(span_cap_));
  }
  ++shard.used;
  return slot;
}

void Case1SweepCache::extend_table(const GemmWorkload& w, int up_to_exp, int built_exp,
                                   Result* best) const {
  const int min_e = space_->min_exp();
  const int lo = 2 * min_e;  // smallest MAC exponent in the space
  const int max_a = up_to_exp - min_e;
  const int start = built_exp >= lo ? built_exp + 1 : lo;

  // Factored compute model (compute_model.hpp): for a shape (2^a x 2^b),
  //   cycles = fold_cycles(a, b, dataflow) * row_folds(a) * col_folds(b)
  // where the fold counts depend on one exponent each. Hoisting the
  // ceil-divisions to one shift pass per exponent turns the per-label
  // sweep into a few multiply-compares. All scratch below is fixed-size
  // (exponents are < 63 by the pow2 contract): no allocation anywhere.
  std::array<std::int64_t, 63> folds_m;
  std::array<std::int64_t, 63> folds_n;
  std::array<std::int64_t, 63> folds_k;
  // Label of the first (lowest-b) shape for each row exponent, in the FULL
  // space enumeration (labels are ids in the whole space regardless of how
  // far this table is built): shapes are ordered by (a, b) with 3 dataflow
  // labels each, and row exponent a owns (max_s - a - min_e + 1) shapes.
  std::array<int, 63> label_base;
  {
    const int max_s = space_->max_macs_exp();
    int base = 0;
    for (int a = min_e; a <= max_a; ++a) {
      const auto ia = static_cast<std::size_t>(a);
      folds_m[ia] = ceil_shr(w.m, a);
      folds_n[ia] = ceil_shr(w.n, a);
      folds_k[ia] = ceil_shr(w.k, a);
      label_base[ia] = base;
      base += 3 * (max_s - a - min_e + 1);
    }
  }

  // Phase 1: per-diagonal argmin. All shapes with a + b = s share
  // macs = 2^s; iterating column-major (a outer, b inner) touches a
  // *different* accumulator slot on every inner step, so the sweep has no
  // loop-carried dependency and the multiplies pipeline freely. Within a
  // diagonal the visit order is still ascending a — ascending label — and
  // within a shape OS/WS/IS are compared in dataflow-index order, both
  // with strict '<', so equal-cycle ties resolve to the lowest label
  // exactly like the naive scan (strict-'<' argmin over a fixed visit
  // order is fold-shape independent).
  std::array<std::int64_t, 61> acc_cyc;
  std::array<int, 61> acc_lab;
  for (int s = start; s <= up_to_exp; ++s) {
    acc_cyc[static_cast<std::size_t>(s - lo)] = std::numeric_limits<std::int64_t>::max();
  }
  for (int a = min_e; a <= max_a; ++a) {
    const auto ia = static_cast<std::size_t>(a);
    const std::int64_t fm_a = folds_m[ia];
    const std::int64_t fk_a = folds_k[ia];
    // Fill/drain term shared by the three dataflows: OS pays
    // (rows-1) + (rows+cols-1), WS/IS pay rows + (rows+cols-2) — the
    // same 2*rows + cols - 2. Only the streamed dimension differs.
    const std::int64_t overhead_a = (std::int64_t{2} << a) - 2;
    // Streamed-dimension terms with the row part of the overhead folded in;
    // the inner loop only adds the column term 2^b.
    const std::int64_t oh_k = overhead_a + w.k;
    const std::int64_t oh_m = overhead_a + w.m;
    const std::int64_t oh_n = overhead_a + w.n;
    const int label_a = label_base[ia];
    const int b_lo = std::max(min_e, start - a);  // only diagonals >= start
    const int b_hi = up_to_exp - a;
    for (int b = b_lo; b <= b_hi; ++b) {
      const auto ib = static_cast<std::size_t>(b);
      const std::int64_t col = std::int64_t{1} << b;
      const std::int64_t os = (oh_k + col) * (fm_a * folds_n[ib]);
      const std::int64_t ws = (oh_m + col) * (fk_a * folds_n[ib]);
      const std::int64_t is = (oh_n + col) * (fk_a * folds_m[ib]);
      const int label = label_a + 3 * (b - min_e);
      // Branchless tournament + accumulator update: near-random argmin
      // outcomes make these compares mispredict constantly as branches, so
      // keep them as conditional moves (ternary + unconditional store).
      std::int64_t top_cyc = os;
      int top_lab = label;
      const bool ws_lt = ws < top_cyc;
      top_cyc = ws_lt ? ws : top_cyc;
      top_lab = ws_lt ? label + 1 : top_lab;
      const bool is_lt = is < top_cyc;
      top_cyc = is_lt ? is : top_cyc;
      top_lab = is_lt ? label + 2 : top_lab;
      const auto slot = static_cast<std::size_t>(a + b - lo);
      const bool acc_lt = top_cyc < acc_cyc[slot];
      acc_cyc[slot] = acc_lt ? top_cyc : acc_cyc[slot];
      acc_lab[slot] = acc_lt ? top_lab : acc_lab[slot];
    }
  }

  // Phase 2: prefix merge across ascending MAC exponents, seeded from the
  // already-built prefix when extending; strict '<' preserves the
  // equal-cycles -> fewer-MACs tie-break.
  int run_label = -1;
  std::int64_t run_cyc = std::numeric_limits<std::int64_t>::max();
  if (start > lo) {
    const Result& prev = best[start - 1 - lo];
    run_label = prev.label;
    // Unwrapped on purpose: the merge loop runs on raw int64 so the
    // compare-and-select compiles to conditional moves.
    run_cyc = prev.cycles.value();  // airch-lint: allow(value-escape)
  }
  for (int s = start; s <= up_to_exp; ++s) {
    const auto i = static_cast<std::size_t>(s - lo);
    const bool lt = acc_cyc[i] < run_cyc;
    run_cyc = lt ? acc_cyc[i] : run_cyc;
    run_label = lt ? acc_lab[i] : run_label;
    AIRCH_DCHECK(run_label >= 0, "every MAC-exponent diagonal holds at least one shape");
    best[i] = {run_label, Cycles{run_cyc}};
  }
}

ArrayDataflowSearch::Result Case1SweepCache::best(const GemmWorkload& w, int budget_exp) const {
  AIRCH_ASSERT(w.valid());
  const int lo = 2 * space_->min_exp();
  const int e = std::min(budget_exp, 62);  // naive path clamps identically
  if (e < lo) throw std::invalid_argument("MAC budget below smallest array in space");
  const int e_cap = std::min(e, space_->max_macs_exp());

  const Key key{w.m, w.n, w.k};
  const std::uint64_t hash = case1_key_hash(key);
  // Top hash bits pick the shard (64 shards): independent of the low
  // probe-index bits with no second avalanche.
  Shard& shard = shards_[hash >> 58];
  const MutexLock lock(shard.mu);
  Slot& slot = find_or_insert(shard, key, hash);
  slot.span |= kRefBit;  // CLOCK reference: touched this sweep lap
  // Pointer computed after find_or_insert: inserting may reallocate spans.
  Result* const best = shard.spans.data() + static_cast<std::size_t>(slot.span & kSpanMask) *
                                                static_cast<std::size_t>(span_cap_);
  if (slot.max_exp >= e_cap) {
    ++shard.hits;
  } else {
    ++shard.misses;
    extend_table(w, e_cap, slot.max_exp, best);
    slot.max_exp = e_cap;
  }
  return best[e_cap - lo];
}

void Case1SweepCache::prefetch(const GemmWorkload& w) const {
  const Key key{w.m, w.n, w.k};
  const std::uint64_t hash = case1_key_hash(key);
  const Shard& shard = shards_[hash >> 58];
  // Mask before base (see Shard): the index is always in range for the
  // loaded base. A concurrently retired base may point at a stale array;
  // the hint then warms a dead line, which is merely wasted work.
  const std::size_t mask = shard.pf_mask.load(std::memory_order_acquire);
  const Slot* base = shard.pf_base.load(std::memory_order_acquire);
  if (base == nullptr) return;
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(base + (hash & mask));
#endif
}

CacheStats Case1SweepCache::stats() const {
  CacheStats s;
  s.capacity = per_shard_cap_ == 0 ? 0 : per_shard_cap_ * shards_.size();
  for (const Shard& shard : shards_) {
    const MutexLock lock(shard.mu);
    s.hits += shard.hits;
    s.misses += shard.misses;
    s.evictions += shard.evictions;
    s.entries += shard.used;
  }
  return s;
}

// --------------------------------------------------------------- case 2

namespace {

/// Upper bound on BufferSizeSpace::levels() the stack-resident combine
/// below supports; the paper's space has 10.
constexpr int kMaxLevels = 64;

}  // namespace

Case2SweepCache::Case2SweepCache(const BufferSizeSpace& space, const Simulator& sim,
                                 std::size_t max_entries)
    : space_(&space), sim_(&sim), memo_(0, max_entries) {
  AIRCH_CHECK(space.levels() <= kMaxLevels,
              "Case2SweepCache supports at most 64 buffer levels");
}

Case2SweepCache::Table Case2SweepCache::build_table(const GemmWorkload& w,
                                                    const ArrayConfig& array,
                                                    std::int64_t bandwidth) const {
  const int levels = space_->levels();
  const std::int64_t step = space_->step_kb();
  const ComputeResult compute = compute_latency(w, array);

  // The traffic model is separable per buffer (memory_model.hpp): each
  // operand's DRAM traffic is base + passes * spill(own capacity), and the
  // first-fill is an (ifmap term) + (filter term) sum. One traffic_factors
  // call therefore yields every per-level component directly — the probe
  // simulations the previous revision ran (1 + 3 * levels memory_behavior
  // calls per table) are gone entirely. operand_traffic / min are the very
  // int64 expressions memory_combine evaluates, so the per-label costs
  // below stay bit-identical to the naive path by construction.
  const TrafficFactors f = traffic_factors(w, array);
  // The combine runs on raw int64: conditional-move argmin plus the
  // InvariantDiv below want untyped operands, and the results re-enter
  // strong types at the table boundary.
  const std::int64_t cyc_compute = compute.cycles.value();  // airch-lint: allow(value-escape)
  std::array<std::int64_t, kMaxLevels> tr_if, tr_fil, tr_of, fl_if, fl_fil;
  for (int l = 0; l < levels; ++l) {
    const Bytes cap{(l + 1) * step * kBytesPerKb};
    const auto il = static_cast<std::size_t>(l);
    tr_if[il] = operand_traffic(f.ifmap, cap).value();    // airch-lint: allow(value-escape)
    tr_fil[il] = operand_traffic(f.filter, cap).value();  // airch-lint: allow(value-escape)
    tr_of[il] = operand_traffic(f.ofmap, cap).value();    // airch-lint: allow(value-escape)
    fl_if[il] = std::min(f.fill_ifmap, cap).value();      // airch-lint: allow(value-escape)
    fl_fil[il] = std::min(f.fill_filter, cap).value();    // airch-lint: allow(value-escape)
    AIRCH_DCHECK(tr_if[il] >= 0 && tr_fil[il] >= 0 && tr_of[il] >= 0,
                 "negative traffic — reuse accounting bug or int64 overflow");
  }

  // Combine the 1000 labels with pure integer arithmetic, bucketed by
  // total capacity so a shared-budget query is a prefix lookup. Dividing
  // by the (label-invariant) bandwidth via InvariantDiv turns the two
  // divisions per label into multiply-shifts — exact for non-negative
  // dividends, see math_utils.hpp.
  const InvariantDiv by_bw(bandwidth);
  struct Bucket {
    int label = -1;
    std::int64_t stalls = std::numeric_limits<std::int64_t>::max();
  };
  std::array<Bucket, 3 * (kMaxLevels - 1) + 1> buckets;
  const auto nbuckets = static_cast<std::size_t>(3 * (levels - 1)) + 1;
  for (std::size_t u = 0; u < nbuckets; ++u) buckets[u] = Bucket{};
  int label = 0;
  for (int i = 0; i < levels; ++i) {
    for (int fi = 0; fi < levels; ++fi) {
      const std::int64_t traffic_two =
          tr_if[static_cast<std::size_t>(i)] + tr_fil[static_cast<std::size_t>(fi)];
      const std::int64_t cyc_fill = by_bw.ceil_div(fl_if[static_cast<std::size_t>(i)] +
                                                   fl_fil[static_cast<std::size_t>(fi)]);
      for (int o = 0; o < levels; ++o, ++label) {
        const std::int64_t cyc_transfer =
            by_bw.ceil_div(traffic_two + tr_of[static_cast<std::size_t>(o)]);
        const std::int64_t stalls =
            cyc_fill + std::max<std::int64_t>(0, cyc_transfer - cyc_compute);
        Bucket& bk = buckets[static_cast<std::size_t>(i + fi + o)];
        if (stalls < bk.stalls) bk = {label, stalls};
      }
    }
  }
  AIRCH_DCHECK(label == space_->size(), "buffer combine must visit every label exactly once");

  // Prefix-argmin over ascending total capacity; strict '<' preserves the
  // naive tie-break (equal stalls -> smaller total capacity).
  Table t;
  t.best_by_total.resize(nbuckets);
  BufferSearch::Result run{-1, Cycles{std::numeric_limits<std::int64_t>::max()},
                           std::numeric_limits<std::int64_t>::max()};
  for (std::size_t u = 0; u < nbuckets; ++u) {
    const Bucket& bk = buckets[u];
    AIRCH_DCHECK(bk.label >= 0, "every total-capacity bucket holds at least one label");
    if (Cycles{bk.stalls} < run.stall_cycles) {
      run = {bk.label, Cycles{bk.stalls}, (static_cast<std::int64_t>(u) + 3) * step};
    }
    t.best_by_total[u] = run;
  }
  return t;
}

BufferSearch::Result Case2SweepCache::best(const GemmWorkload& w, const ArrayConfig& array,
                                           std::int64_t bandwidth,
                                           std::int64_t limit_kb) const {
  AIRCH_ASSERT(w.valid() && array.valid());
  const std::int64_t step = space_->step_kb();
  const std::int64_t limit_steps = limit_kb >= 0 ? limit_kb / step : 0;
  if (limit_steps < 3) {
    throw std::invalid_argument("buffer limit below smallest size in space");
  }
  const std::int64_t idx = std::min<std::int64_t>(limit_steps, 3 * space_->levels()) - 3;
  // Projection under the shard lock: copies one 24-byte Result out instead
  // of the whole table, and stays safe when a bounded memo evicts tables.
  return memo_.get_or_use(
      Key{w.m, w.n, w.k, array.rows, array.cols, dataflow_index(array.dataflow), bandwidth},
      [&] { return build_table(w, array, bandwidth); },
      [&](const Table& t) { return t.best_by_total[static_cast<std::size_t>(idx)]; });
}

// --------------------------------------------------------------- case 3

namespace {

/// Depth-first fold over one permutation's 3^n dataflow assignments, in
/// ascending label (base-3 code) order. Prunes a subtree only when its
/// partial makespan strictly exceeds the incumbent's: makespan is a max,
/// so every leaf below is at least as large — and on *equality* the
/// subtree is kept, because a leaf tying on makespan can still win the
/// energy or label tie-break. Energy accumulates in ascending array order,
/// the exact floating-point summation order of ScheduleSearch::best, so
/// leaf energies are bit-identical to the naive fold's.
struct ScheduleFold {
  int n = 0;
  // Per array (for the current permutation): 3 dataflow costs each.
  std::array<const Cycles*, 8> cyc{};
  std::array<const Picojoules*, 8> en{};
  std::int64_t label_base = 0;  // perm_index * 3^n

  int best_label = -1;
  Cycles best_ms{std::numeric_limits<std::int64_t>::max()};
  Picojoules best_en{std::numeric_limits<double>::max()};

  /// Candidate leaf: lexicographic (makespan, energy, label) min. The
  /// naive sweep's strict-'<' update over ascending labels computes
  /// exactly this, so any visit order (greedy seeds included) is safe.
  void offer(Cycles ms, Picojoules e, std::int64_t label) {
    if (ms < best_ms || (ms == best_ms && (e < best_en || (e == best_en && label < best_label)))) {
      best_ms = ms;
      best_en = e;
      best_label = static_cast<int>(label);
    }
  }

  void dfs(int a, std::int64_t code, Cycles partial_ms, Picojoules partial_en) {
    if (a == n) {
      offer(partial_ms, partial_en, label_base + code);
      return;
    }
    for (int d = 0; d < 3; ++d) {
      const Cycles ms = std::max(partial_ms, cyc[static_cast<std::size_t>(a)][d]);
      if (ms > best_ms) continue;  // exact: all leaves below are worse
      dfs(a + 1, code * 3 + d, ms, partial_en + en[static_cast<std::size_t>(a)][d]);
    }
  }
};

}  // namespace

Case3SweepCache::Case3SweepCache(const ScheduleSearch& search, std::size_t max_entries)
    : search_(&search), memo_(0, max_entries), array_memo_(0, max_entries) {}

ScheduleSearch::Result Case3SweepCache::factored_best(
    const std::vector<GemmWorkload>& workloads) const {
  const ScheduleSpace& space = search_->space();
  const int n = space.num_arrays();
  AIRCH_ASSERT(n >= 1 && n <= kMaxArrays);

  // Level-1 gather: per workload, the dataflow costs on every array —
  // 3 * n simulations, memoized across every vector the workload appears
  // in. Copied into a flat stack block so the fold below chases no memo
  // internals (and holds no reference an eviction could invalidate).
  std::array<ArrayCosts, kMaxArrays> costs;  // costs[wl][a]
  for (int wl = 0; wl < n; ++wl) {
    const GemmWorkload& w = workloads[static_cast<std::size_t>(wl)];
    costs[static_cast<std::size_t>(wl)] =
        array_memo_.get_or_compute(WorkloadKey{w.m, w.n, w.k}, [&] {
          ArrayCosts out{};
          for (int a = 0; a < n; ++a) {
            out[static_cast<std::size_t>(a)] = search_->dataflow_costs(a, w);
          }
          return out;
        });
  }

  std::int64_t pow3_n = 1;
  for (int i = 0; i < n; ++i) pow3_n *= 3;

  // Level-2 fold: walk permutations in lexicographic (= label-major)
  // order; for each, greedy-seed then depth-first the dataflow tree.
  ScheduleFold fold;
  fold.n = n;
  const int num_perms = space.num_permutations();
  for (int p = 0; p < num_perms; ++p) {
    const std::vector<int>& perm = space.permutation(p);
    fold.label_base = static_cast<std::int64_t>(p) * pow3_n;
    for (int a = 0; a < n; ++a) {
      const auto wl = static_cast<std::size_t>(perm[static_cast<std::size_t>(a)]);
      const ScheduleSearch::DataflowCosts& dc = costs[wl][static_cast<std::size_t>(a)];
      fold.cyc[static_cast<std::size_t>(a)] = dc.cycles.data();
      fold.en[static_cast<std::size_t>(a)] = dc.energy.data();
    }
    // Greedy seed: per array take the cheapest-cycles dataflow (ties to
    // the lower index). Usually at or near this permutation's optimum, so
    // the DFS starts with a tight makespan bound; evaluated through the
    // same ascending-array fold and offered with its exact label, it can
    // never displace a better (or equal-and-lower-label) leaf.
    {
      Cycles seed_ms{0};
      Picojoules seed_en{0.0};
      std::int64_t seed_code = 0;
      for (int a = 0; a < n; ++a) {
        const Cycles* cyc = fold.cyc[static_cast<std::size_t>(a)];
        int d = 0;
        if (cyc[1] < cyc[d]) d = 1;
        if (cyc[2] < cyc[d]) d = 2;
        seed_ms = std::max(seed_ms, cyc[d]);
        seed_en += fold.en[static_cast<std::size_t>(a)][d];
        seed_code = seed_code * 3 + d;
      }
      fold.offer(seed_ms, seed_en, fold.label_base + seed_code);
    }
    fold.dfs(0, 0, Cycles{0}, Picojoules{0.0});
  }
  return {fold.best_label, fold.best_ms, fold.best_en};
}

ScheduleSearch::Result Case3SweepCache::best(const std::vector<GemmWorkload>& workloads) const {
  if (static_cast<int>(workloads.size()) != search_->space().num_arrays()) {
    throw std::invalid_argument("workload count must match schedule space arity");
  }
  Key key;
  key.reserve(workloads.size() * 3);
  for (const GemmWorkload& w : workloads) {
    key.push_back(w.m);
    key.push_back(w.n);
    key.push_back(w.k);
  }
  return memo_.get_or_compute(key, [&] { return factored_best(workloads); });
}

// ------------------------------------------------------------ snapshots
//
// Shared layout (common/binio.hpp discipline):
//   u64 magic | u32 version | u32 case id | u64 fingerprint | u64 entries
//   <case-specific payload>
//   u64 trailer checksum (FNV-1a over every preceding byte)
// Loads parse and bounds-check the whole payload into staging buffers,
// verify the trailer, and only then touch the cache — a corrupt file can
// never leave a partially-applied (let alone wrong) cache behind. Every
// count or length field is checked against the bytes actually remaining
// before it sizes an allocation, so even a corruption the checksum has
// not yet seen cannot balloon memory.

namespace {

/// Seed of every fingerprint chain; the case id folds in first so the
/// three cases can never collide even on identical shape parameters.
constexpr std::uint64_t kFingerprintSeed = 0x41495243ULL;  // "AIRC"

void write_snapshot_header(BinWriter& w, std::uint32_t case_id, std::uint64_t fingerprint,
                           std::uint64_t entries) {
  w.put_u64(kSnapshotMagic);
  w.put_u32(kSnapshotFormatVersion);
  w.put_u32(case_id);
  w.put_u64(fingerprint);
  w.put_u64(entries);
}

/// Validates magic → version → case → fingerprint in that order (so the
/// thrown message names the first thing that is actually wrong) and
/// returns the entry count, bounds-checked against the file size using
/// `min_entry_bytes` as the smallest legal per-entry footprint.
std::uint64_t read_snapshot_header(BinReader& r, const std::string& path, std::uint32_t case_id,
                                   std::uint64_t fingerprint, std::uint64_t min_entry_bytes) {
  AIRCH_CHECK(r.get_u64() == kSnapshotMagic, "not a sweep-cache snapshot: " + path);
  const std::uint32_t version = r.get_u32();
  AIRCH_CHECK(version == kSnapshotFormatVersion,
              "unsupported snapshot format version in " + path);
  const std::uint32_t got_case = r.get_u32();
  AIRCH_CHECK(got_case == case_id, "snapshot belongs to a different case study: " + path);
  const std::uint64_t got_fp = r.get_u64();
  AIRCH_CHECK(got_fp == fingerprint,
              "snapshot fingerprint does not match this search space: " + path);
  const std::uint64_t entries = r.get_u64();
  AIRCH_CHECK(entries <= r.remaining() / min_entry_bytes,
              "snapshot entry count exceeds file size: " + path);
  return entries;
}

}  // namespace

// --- case 1

std::uint64_t Case1SweepCache::fingerprint() const {
  std::uint64_t h = detail::hash_combine(kFingerprintSeed, 1);
  h = detail::hash_combine(h, static_cast<std::uint64_t>(space_->min_exp()));
  h = detail::hash_combine(h, static_cast<std::uint64_t>(space_->max_macs_exp()));
  return h;
}

SnapshotStats Case1SweepCache::save_snapshot(const std::string& path) const {
  const int lo = 2 * space_->min_exp();
  // Stage under the shard locks first: the header's entry count and the
  // payload are then one consistent cut even with queries in flight.
  struct Entry {
    Key key;
    std::int32_t max_exp;
    std::size_t off;  // first span element in `payload`
  };
  std::vector<Entry> entries;
  std::vector<Result> payload;
  for (const Shard& shard : shards_) {
    const MutexLock lock(shard.mu);
    for (const Slot& slot : shard.slots) {
      if (slot.key[0] == 0 || slot.max_exp < lo) continue;
      const Result* span =
          shard.spans.data() + static_cast<std::size_t>(slot.span & kSpanMask) *
                                   static_cast<std::size_t>(span_cap_);
      entries.push_back({slot.key, slot.max_exp, payload.size()});
      payload.insert(payload.end(), span,
                     span + static_cast<std::size_t>(slot.max_exp - lo + 1));
    }
  }
  BinWriter w(path);
  write_snapshot_header(w, 1, fingerprint(), entries.size());
  for (const Entry& e : entries) {
    w.put_i64(e.key[0]);
    w.put_i64(e.key[1]);
    w.put_i64(e.key[2]);
    w.put_i32(e.max_exp);
    const auto count = static_cast<std::size_t>(e.max_exp - lo + 1);
    for (std::size_t i = 0; i < count; ++i) {
      const Result& res = payload[e.off + i];
      w.put_i32(res.label);
      w.put_i64(std::bit_cast<std::int64_t>(res.cycles));
    }
  }
  w.put_trailer_checksum();
  w.finish();
  return {entries.size()};
}

SnapshotStats Case1SweepCache::load_snapshot(const std::string& path) {
  BinReader r(path);
  // Smallest legal entry: 24-byte key + 4-byte bound + one 12-byte result.
  const std::uint64_t n = read_snapshot_header(r, path, 1, fingerprint(), 40);
  const int lo = 2 * space_->min_exp();
  const int hi = space_->max_macs_exp();
  struct Staged {
    Key key;
    std::int32_t max_exp;
    std::size_t off;
  };
  std::vector<Staged> staged;
  staged.reserve(static_cast<std::size_t>(n));
  std::vector<Result> payload;
  for (std::uint64_t i = 0; i < n; ++i) {
    Key key{};
    key[0] = r.get_i64();
    key[1] = r.get_i64();
    key[2] = r.get_i64();
    const std::int32_t max_exp = r.get_i32();
    AIRCH_CHECK(key[0] >= 1 && key[1] >= 1 && key[2] >= 1,
                "corrupt workload key in snapshot: " + path);
    AIRCH_CHECK(max_exp >= lo && max_exp <= hi, "corrupt span bound in snapshot: " + path);
    const auto count = static_cast<std::size_t>(max_exp - lo + 1);
    AIRCH_CHECK(count * 12 <= r.remaining(), "truncated span in snapshot: " + path);
    staged.push_back({key, max_exp, payload.size()});
    for (std::size_t e = 0; e < count; ++e) {
      const std::int32_t label = r.get_i32();
      const std::int64_t cycles = r.get_i64();
      AIRCH_CHECK(label >= 0 && label < space_->size(), "corrupt label in snapshot: " + path);
      AIRCH_CHECK(cycles >= 0, "corrupt cycle count in snapshot: " + path);
      payload.push_back({label, std::bit_cast<Cycles>(cycles)});
    }
  }
  r.verify_trailer_checksum();
  // Everything decoded and verified; now (and only now) touch the cache.
  // An entry the cache already covers at least as far is skipped — its
  // resident span is identical by determinism.
  std::uint64_t applied = 0;
  for (const Staged& s : staged) {
    const std::uint64_t hash = case1_key_hash(s.key);
    Shard& shard = shards_[hash >> 58];
    const MutexLock lock(shard.mu);
    Slot& slot = find_or_insert(shard, s.key, hash);
    if (slot.max_exp >= s.max_exp) continue;
    Result* best = shard.spans.data() + static_cast<std::size_t>(slot.span & kSpanMask) *
                                            static_cast<std::size_t>(span_cap_);
    std::copy_n(payload.data() + s.off, static_cast<std::size_t>(s.max_exp - lo + 1), best);
    slot.max_exp = s.max_exp;
    slot.span |= kRefBit;
    ++applied;
  }
  return {applied};
}

// --- case 2

std::uint64_t Case2SweepCache::fingerprint() const {
  std::uint64_t h = detail::hash_combine(kFingerprintSeed, 2);
  h = detail::hash_combine(h, static_cast<std::uint64_t>(space_->levels()));
  h = detail::hash_combine(h, static_cast<std::uint64_t>(space_->step_kb()));
  return h;
}

SnapshotStats Case2SweepCache::save_snapshot(const std::string& path) const {
  std::vector<std::pair<Key, Table>> staged;
  memo_.for_each([&](const Key& k, const Table& t) { staged.emplace_back(k, t); });
  BinWriter w(path);
  write_snapshot_header(w, 2, fingerprint(), staged.size());
  for (const auto& [key, table] : staged) {
    for (const std::int64_t v : key) w.put_i64(v);
    w.put_u32(static_cast<std::uint32_t>(table.best_by_total.size()));
    for (const BufferSearch::Result& res : table.best_by_total) {
      w.put_i32(res.label);
      w.put_i64(std::bit_cast<std::int64_t>(res.stall_cycles));
      w.put_i64(res.total_kb);
    }
  }
  w.put_trailer_checksum();
  w.finish();
  return {staged.size()};
}

SnapshotStats Case2SweepCache::load_snapshot(const std::string& path) {
  const int levels = space_->levels();
  const std::int64_t step = space_->step_kb();
  const auto nbuckets = static_cast<std::uint32_t>(3 * (levels - 1)) + 1;
  BinReader r(path);
  const std::uint64_t entry_bytes = 7 * 8 + 4 + static_cast<std::uint64_t>(nbuckets) * 20;
  const std::uint64_t n = read_snapshot_header(r, path, 2, fingerprint(), entry_bytes);
  std::vector<std::pair<Key, Table>> staged;
  staged.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    Key key{};
    for (std::int64_t& v : key) v = r.get_i64();
    AIRCH_CHECK(key[0] >= 1 && key[1] >= 1 && key[2] >= 1 && key[3] >= 1 && key[4] >= 1,
                "corrupt key in snapshot: " + path);
    AIRCH_CHECK(key[5] >= 0 && key[5] < 3, "corrupt dataflow in snapshot: " + path);
    AIRCH_CHECK(key[6] >= 1, "corrupt bandwidth in snapshot: " + path);
    const std::uint32_t size = r.get_u32();
    AIRCH_CHECK(size == nbuckets, "snapshot table arity does not match space: " + path);
    Table t;
    t.best_by_total.reserve(size);
    for (std::uint32_t b = 0; b < size; ++b) {
      const std::int32_t label = r.get_i32();
      const std::int64_t stalls = r.get_i64();
      const std::int64_t total_kb = r.get_i64();
      AIRCH_CHECK(label >= 0 && label < space_->size(), "corrupt label in snapshot: " + path);
      AIRCH_CHECK(stalls >= 0, "corrupt stall count in snapshot: " + path);
      AIRCH_CHECK(total_kb >= 3 * step && total_kb <= 3 * levels * step,
                  "corrupt capacity in snapshot: " + path);
      t.best_by_total.push_back({label, std::bit_cast<Cycles>(stalls), total_kb});
    }
    staged.emplace_back(key, std::move(t));
  }
  r.verify_trailer_checksum();
  for (auto& [key, table] : staged) {
    memo_.insert(key, std::move(table));
  }
  return {n};
}

// --- case 3

std::uint64_t Case3SweepCache::fingerprint() const {
  std::uint64_t h = detail::hash_combine(kFingerprintSeed, 3);
  h = detail::hash_combine(h, static_cast<std::uint64_t>(search_->space().num_arrays()));
  for (const ScheduledArray& sa : search_->arrays()) {
    h = detail::hash_combine(h, static_cast<std::uint64_t>(sa.array.rows));
    h = detail::hash_combine(h, static_cast<std::uint64_t>(sa.array.cols));
    h = detail::hash_combine(h, static_cast<std::uint64_t>(dataflow_index(sa.array.dataflow)));
    h = detail::hash_combine(h, static_cast<std::uint64_t>(sa.memory.ifmap_kb));
    h = detail::hash_combine(h, static_cast<std::uint64_t>(sa.memory.filter_kb));
    h = detail::hash_combine(h, static_cast<std::uint64_t>(sa.memory.ofmap_kb));
    h = detail::hash_combine(h, static_cast<std::uint64_t>(sa.memory.bandwidth));
  }
  // Cached energies depend on the energy params; fold their exact bit
  // patterns so a re-tuned simulator invalidates old snapshots.
  const EnergyParams& ep = search_->sim().energy_params();
  h = detail::hash_combine(h, std::bit_cast<std::uint64_t>(ep.mac_per_op));
  h = detail::hash_combine(h, std::bit_cast<std::uint64_t>(ep.sram_per_byte));
  h = detail::hash_combine(h, std::bit_cast<std::uint64_t>(ep.dram_per_byte));
  return h;
}

SnapshotStats Case3SweepCache::save_snapshot(const std::string& path) const {
  // Section A: level-1 per-workload simulation costs. Section B: level-2
  // per-vector argmin results. One file, each section with its own count.
  std::vector<std::pair<WorkloadKey, ArrayCosts>> arrays;
  array_memo_.for_each(
      [&](const WorkloadKey& k, const ArrayCosts& c) { arrays.emplace_back(k, c); });
  std::vector<std::pair<Key, ScheduleSearch::Result>> vectors;
  memo_.for_each(
      [&](const Key& k, const ScheduleSearch::Result& res) { vectors.emplace_back(k, res); });
  BinWriter w(path);
  write_snapshot_header(w, 3, fingerprint(), arrays.size() + vectors.size());
  w.put_u64(arrays.size());
  for (const auto& [key, costs] : arrays) {
    for (const std::int64_t v : key) w.put_i64(v);
    for (const ScheduleSearch::DataflowCosts& dc : costs) {
      for (const Cycles c : dc.cycles) w.put_i64(std::bit_cast<std::int64_t>(c));
      for (const Picojoules e : dc.energy) w.put_f64(std::bit_cast<double>(e));
    }
  }
  w.put_u64(vectors.size());
  for (const auto& [key, res] : vectors) {
    w.put_u32(static_cast<std::uint32_t>(key.size()));
    for (const std::int64_t v : key) w.put_i64(v);
    w.put_i32(res.label);
    w.put_i64(std::bit_cast<std::int64_t>(res.makespan_cycles));
    w.put_f64(std::bit_cast<double>(res.energy_pj));
  }
  w.put_trailer_checksum();
  w.finish();
  return {arrays.size() + vectors.size()};
}

SnapshotStats Case3SweepCache::load_snapshot(const std::string& path) {
  const ScheduleSpace& space = search_->space();
  const int n_arrays = space.num_arrays();
  BinReader r(path);
  // Header entry count covers both sections; the per-workload record is
  // the smaller footprint (24-byte key + 8 blocks of 3 cycles + 3 energies).
  constexpr std::uint64_t kArrayEntryBytes = 24 + 8 * (3 * 8 + 3 * 8);
  const std::uint64_t total =
      read_snapshot_header(r, path, 3, fingerprint(), std::min<std::uint64_t>(kArrayEntryBytes, 48));
  const std::uint64_t n_a = r.get_u64();
  AIRCH_CHECK(n_a <= total && n_a <= r.remaining() / kArrayEntryBytes,
              "corrupt section count in snapshot: " + path);
  std::vector<std::pair<WorkloadKey, ArrayCosts>> staged_arrays;
  staged_arrays.reserve(static_cast<std::size_t>(n_a));
  for (std::uint64_t i = 0; i < n_a; ++i) {
    WorkloadKey key{};
    for (std::int64_t& v : key) v = r.get_i64();
    AIRCH_CHECK(key[0] >= 1 && key[1] >= 1 && key[2] >= 1,
                "corrupt workload key in snapshot: " + path);
    ArrayCosts costs{};
    for (ScheduleSearch::DataflowCosts& dc : costs) {
      for (Cycles& c : dc.cycles) {
        const std::int64_t cyc = r.get_i64();
        AIRCH_CHECK(cyc >= 0, "corrupt cycle count in snapshot: " + path);
        c = std::bit_cast<Cycles>(cyc);
      }
      for (Picojoules& e : dc.energy) {
        const double pj = r.get_f64();
        AIRCH_CHECK(std::isfinite(pj) && pj >= 0.0, "corrupt energy in snapshot: " + path);
        e = std::bit_cast<Picojoules>(pj);
      }
    }
    staged_arrays.emplace_back(key, costs);
  }
  const std::uint64_t n_v = r.get_u64();
  const auto vec_entry_bytes = static_cast<std::uint64_t>(4 + 3 * n_arrays * 8 + 4 + 8 + 8);
  AIRCH_CHECK(n_a + n_v == total, "corrupt section count in snapshot: " + path);
  AIRCH_CHECK(n_v <= r.remaining() / vec_entry_bytes,
              "snapshot entry count exceeds file size: " + path);
  std::vector<std::pair<Key, ScheduleSearch::Result>> staged_vectors;
  staged_vectors.reserve(static_cast<std::size_t>(n_v));
  for (std::uint64_t i = 0; i < n_v; ++i) {
    const std::uint32_t len = r.get_u32();
    AIRCH_CHECK(len == static_cast<std::uint32_t>(3 * n_arrays),
                "snapshot key arity does not match space: " + path);
    Key key(len);
    for (std::int64_t& v : key) {
      v = r.get_i64();
      AIRCH_CHECK(v >= 1, "corrupt workload key in snapshot: " + path);
    }
    const std::int32_t label = r.get_i32();
    const std::int64_t makespan = r.get_i64();
    const double energy = r.get_f64();
    AIRCH_CHECK(label >= 0 && label < space.size(), "corrupt label in snapshot: " + path);
    AIRCH_CHECK(makespan >= 0, "corrupt cycle count in snapshot: " + path);
    AIRCH_CHECK(std::isfinite(energy) && energy >= 0.0, "corrupt energy in snapshot: " + path);
    staged_vectors.emplace_back(
        std::move(key), ScheduleSearch::Result{label, std::bit_cast<Cycles>(makespan),
                                               std::bit_cast<Picojoules>(energy)});
  }
  r.verify_trailer_checksum();
  for (auto& [key, costs] : staged_arrays) {
    array_memo_.insert(key, costs);
  }
  for (auto& [key, res] : staged_vectors) {
    memo_.insert(std::move(key), res);
  }
  return {n_a + n_v};
}

}  // namespace airch
