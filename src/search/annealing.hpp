#pragma once
// Simulated-annealing search baseline — completes the classic search-family
// trio (exhaustive, GA, RL) the benches compare against learned inference.
// Standard geometric cooling over the case-1 design space with the same
// neighbourhood moves as the GA's mutation operator.

#include <cstddef>
#include <cstdint>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "search/space.hpp"
#include "sim/simulator.hpp"
#include "workload/gemm.hpp"

namespace airch {

struct AnnealingOptions {
  int steps = 200;
  double initial_temperature = 0.5;  ///< in units of relative cost
  double cooling = 0.97;             ///< geometric decay per step
  std::uint64_t seed = 1;
};

class AnnealingArrayDataflowSearch {
 public:
  AnnealingArrayDataflowSearch(const ArrayDataflowSpace& space, const Simulator& sim)
      : space_(&space), sim_(&sim) {}

  struct Result {
    int label = -1;
    Cycles cycles;
    std::size_t evaluations = 0;
  };

  [[nodiscard]] Result best(const GemmWorkload& w, int budget_exp, const AnnealingOptions& options = {}) const;

 private:
  const ArrayDataflowSpace* space_;
  const Simulator* sim_;
};

}  // namespace airch
