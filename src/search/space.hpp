#pragma once
// Quantized output spaces of the three case studies (paper Fig. 8). The
// paper converts DSE into classification by enumerating the legal design
// points into dense label ids; these classes own that bijection.

#include <cstdint>
#include <vector>

#include "sim/array_config.hpp"
#include "sim/dataflow.hpp"

namespace airch {

/// Case study 1 output space: power-of-two array shapes within a MAC
/// budget, crossed with the three dataflows (Fig. 8(b)).
///
/// Shapes are (2^a rows x 2^b cols) with a, b >= min_exp and
/// a + b <= max_macs_exp. With min_exp = 1 and max_macs_exp = 18 this
/// enumerates the paper's 153 shapes x 3 dataflows = 459 labels.
/// Label order: shapes sorted by (rows, cols), dataflow fastest-varying
/// (OS, WS, IS) — matching the paper's table.
class ArrayDataflowSpace {
 public:
  explicit ArrayDataflowSpace(int max_macs_exp = 18, int min_exp = 1);

  int size() const { return static_cast<int>(configs_.size()); }
  const ArrayConfig& config(int label) const;
  /// Inverse of config(); throws std::out_of_range if not in the space.
  int label_of(const ArrayConfig& c) const;
  int max_macs_exp() const { return max_macs_exp_; }
  int min_exp() const { return min_exp_; }

  /// Labels whose array fits a MAC budget of 2^budget_exp.
  std::vector<int> labels_within_budget(int budget_exp) const;

 private:
  int max_macs_exp_;
  int min_exp_;
  std::vector<ArrayConfig> configs_;
};

/// Case study 2 output space: each of the three buffers sized in
/// `step_kb` increments from step_kb to max_kb (Fig. 8(c)).
/// With step 100 KB and max 1 MB: 10^3 = 1000 labels. Label order:
/// OFMAP fastest, then Filter, then IFMAP — matching the paper's table.
class BufferSizeSpace {
 public:
  explicit BufferSizeSpace(std::int64_t step_kb = 100, std::int64_t max_kb = 1000);

  int size() const { return levels_ * levels_ * levels_; }
  int levels() const { return levels_; }
  std::int64_t step_kb() const { return step_kb_; }
  std::int64_t max_kb() const { return max_kb_; }

  /// Buffer sizes for a label; bandwidth is not part of the label and is
  /// left at its MemoryConfig default (callers overwrite it).
  MemoryConfig config(int label) const;
  int label_of(const MemoryConfig& mem) const;

  /// Labels where every buffer is at most limit_kb.
  std::vector<int> labels_within_limit(std::int64_t limit_kb) const;

  /// Labels whose summed capacity is at most total_kb (the shared-budget
  /// constraint used by case study 2).
  std::vector<int> labels_within_total(std::int64_t total_kb) const;

 private:
  std::int64_t step_kb_;
  std::int64_t max_kb_;
  int levels_;
};

/// Case study 3 output space: assignment of W workloads to W arrays (a
/// permutation) crossed with a per-array dataflow (Fig. 8(d)).
/// Size = W! * 3^W; for W = 4 this is the paper's 1944 labels.
/// Label order: permutations lexicographic (outer), dataflow tuple as a
/// base-3 counter with the last array fastest-varying (inner).
class ScheduleSpace {
 public:
  explicit ScheduleSpace(int num_arrays = 4);

  struct Schedule {
    /// workload_of[a] = workload index run on array a.
    std::vector<int> workload_of;
    /// dataflow_of[a] = dataflow used by array a.
    std::vector<Dataflow> dataflow_of;
  };

  int num_arrays() const { return num_arrays_; }
  int size() const { return size_; }
  /// Number of workload-to-array assignments (num_arrays! permutations).
  int num_permutations() const { return static_cast<int>(permutations_.size()); }
  /// Permutations in lexicographic order — the label-major axis:
  /// label = perm_index * 3^num_arrays + dataflow_code. The factored
  /// schedule fold in search/sweep_cache walks them directly instead of
  /// decoding every label through config_into.
  const std::vector<int>& permutation(int perm_index) const;
  Schedule config(int label) const;
  /// Allocation-free config(): decodes into `out`, reusing its vectors.
  /// The 1944-iteration sweep in ScheduleSearch::best hoists its Schedule
  /// out of the loop and decodes through this overload.
  void config_into(int label, Schedule& out) const;
  int label_of(const Schedule& s) const;

  /// Closed-form size of an x-array scheduling space: 3^x * x! (Fig. 7(b)).
  static std::int64_t space_size(int x);

 private:
  int num_arrays_;
  int size_;
  std::vector<std::vector<int>> permutations_;  // lexicographic order
};

}  // namespace airch
