#include "search/exhaustive.hpp"

#include <limits>
#include <stdexcept>

#include "common/check.hpp"
#include "common/math_utils.hpp"

namespace airch {

// ---------------------------------------------------------------- case 1

ArrayDataflowSearch::Result ArrayDataflowSearch::best(const GemmWorkload& w,
                                                      int budget_exp) const {
  AIRCH_ASSERT(w.valid());
  Result best{-1, Cycles{std::numeric_limits<std::int64_t>::max()}};
  MacCount best_macs{std::numeric_limits<std::int64_t>::max()};
  const MacCount budget{pow2(std::min(budget_exp, 62))};
  for (int label = 0; label < space_->size(); ++label) {
    const ArrayConfig& c = space_->config(label);
    const MacCount macs = c.macs();
    if (macs > budget) continue;
    const Cycles cycles = sim_->compute_cycles(w, c);
    // Ties prefer the smaller array (fewer MACs), then the lower label.
    if (cycles < best.cycles ||
        (cycles == best.cycles && best.label >= 0 && macs < best_macs)) {
      best = {label, cycles};
      best_macs = macs;
    }
  }
  if (best.label < 0) throw std::invalid_argument("MAC budget below smallest array in space");
  return best;
}

ArrayDataflowSearch::ObjectiveResult ArrayDataflowSearch::best_with_objective(
    const GemmWorkload& w, int budget_exp, const ObjectiveEvaluator& evaluator,
    Objective objective) const {
  AIRCH_ASSERT(w.valid());
  ObjectiveResult best{-1, std::numeric_limits<double>::max()};
  const MacCount budget{pow2(std::min(budget_exp, 62))};
  for (int label = 0; label < space_->size(); ++label) {
    const ArrayConfig& c = space_->config(label);
    if (c.macs() > budget) continue;
    const double cost = evaluator.cost(w, c, objective);
    if (cost < best.cost) best = {label, cost};
  }
  if (best.label < 0) throw std::invalid_argument("MAC budget below smallest array in space");
  return best;
}

Cycles ArrayDataflowSearch::cycles_of(const GemmWorkload& w, int label) const {
  return sim_->compute_cycles(w, space_->config(label));
}

// ---------------------------------------------------------------- case 2

BufferSearch::Result BufferSearch::best(const GemmWorkload& w, const ArrayConfig& array,
                                        std::int64_t bandwidth, std::int64_t limit_kb) const {
  AIRCH_ASSERT(w.valid() && array.valid());
  Result best{-1, Cycles{std::numeric_limits<std::int64_t>::max()},
              std::numeric_limits<std::int64_t>::max()};
  const ComputeResult compute = compute_latency(w, array);
  for (int label = 0; label < space_->size(); ++label) {
    MemoryConfig mem = space_->config(label);
    if (mem.total_kb() > limit_kb) continue;  // shared capacity budget
    mem.bandwidth = bandwidth;
    const MemoryResult mr = memory_behavior(w, array, mem, compute);
    const std::int64_t total_kb = mem.total_kb();
    if (mr.stall_cycles < best.stall_cycles ||
        (mr.stall_cycles == best.stall_cycles && total_kb < best.total_kb)) {
      best = {label, mr.stall_cycles, total_kb};
    }
  }
  if (best.label < 0) throw std::invalid_argument("buffer limit below smallest size in space");
  return best;
}

Cycles BufferSearch::stalls_of(const GemmWorkload& w, const ArrayConfig& array,
                               std::int64_t bandwidth, int label) const {
  MemoryConfig mem = space_->config(label);
  mem.bandwidth = bandwidth;
  const ComputeResult compute = compute_latency(w, array);
  return memory_behavior(w, array, mem, compute).stall_cycles;
}

// ---------------------------------------------------------------- case 3

ScheduleSearch::ScheduleSearch(const ScheduleSpace& space, std::vector<ScheduledArray> arrays,
                               const Simulator& sim)
    : space_(&space), arrays_(std::move(arrays)), sim_(&sim) {
  if (static_cast<int>(arrays_.size()) != space_->num_arrays()) {
    throw std::invalid_argument("array count must match schedule space arity");
  }
}

ScheduleSearch::Result ScheduleSearch::best(const std::vector<GemmWorkload>& workloads) const {
  if (static_cast<int>(workloads.size()) != space_->num_arrays()) {
    throw std::invalid_argument("workload count must match schedule space arity");
  }
  const int n = space_->num_arrays();
  // Precompute per (array, workload, dataflow) costs; a label is then an
  // O(n) combination instead of n fresh simulations.
  std::vector<Cycles> cycles(static_cast<std::size_t>(n * n * 3));
  std::vector<Picojoules> energy(static_cast<std::size_t>(n * n * 3));
  for (int a = 0; a < n; ++a) {
    for (int wl = 0; wl < n; ++wl) {
      const DataflowCosts c = dataflow_costs(a, workloads[static_cast<std::size_t>(wl)]);
      for (int d = 0; d < 3; ++d) {
        const auto idx = static_cast<std::size_t>((a * n + wl) * 3 + d);
        cycles[idx] = c.cycles[static_cast<std::size_t>(d)];
        energy[idx] = c.energy[static_cast<std::size_t>(d)];
      }
    }
  }

  Result best{-1, Cycles{std::numeric_limits<std::int64_t>::max()},
              Picojoules{std::numeric_limits<double>::max()}};
  // The Schedule (two vectors) is hoisted out of the 1944-iteration sweep;
  // config_into reuses its capacity, so the loop body allocates nothing.
  ScheduleSpace::Schedule s;
  for (int label = 0; label < space_->size(); ++label) {
    space_->config_into(label, s);
    Cycles makespan;
    Picojoules total_energy;
    for (int a = 0; a < n; ++a) {
      const int wl = s.workload_of[static_cast<std::size_t>(a)];
      const int d = dataflow_index(s.dataflow_of[static_cast<std::size_t>(a)]);
      const auto idx = static_cast<std::size_t>((a * n + wl) * 3 + d);
      makespan = std::max(makespan, cycles[idx]);
      total_energy += energy[idx];
    }
    if (makespan < best.makespan_cycles ||
        (makespan == best.makespan_cycles && total_energy < best.energy_pj)) {
      best = {label, makespan, total_energy};
    }
  }
  return best;
}

ScheduleSearch::DataflowCosts ScheduleSearch::dataflow_costs(int array_idx,
                                                             const GemmWorkload& w) const {
  AIRCH_ASSERT(array_idx >= 0 && array_idx < static_cast<int>(arrays_.size()));
  DataflowCosts c;
  for (int d = 0; d < 3; ++d) {
    ArrayConfig cfg = arrays_[static_cast<std::size_t>(array_idx)].array;
    cfg.dataflow = dataflow_from_index(d);
    const SimResult sr =
        sim_->simulate(w, cfg, arrays_[static_cast<std::size_t>(array_idx)].memory);
    c.cycles[static_cast<std::size_t>(d)] = sr.total_cycles();
    c.energy[static_cast<std::size_t>(d)] = sr.energy.total();
  }
  return c;
}

ScheduleSearch::Result ScheduleSearch::evaluate(const std::vector<GemmWorkload>& workloads,
                                                int label) const {
  if (static_cast<int>(workloads.size()) != space_->num_arrays()) {
    throw std::invalid_argument("workload count must match schedule space arity");
  }
  const ScheduleSpace::Schedule s = space_->config(label);
  Result r{label, Cycles{0}, Picojoules{0.0}};
  for (int a = 0; a < space_->num_arrays(); ++a) {
    ArrayConfig cfg = arrays_[static_cast<std::size_t>(a)].array;
    cfg.dataflow = s.dataflow_of[static_cast<std::size_t>(a)];
    const int wl = s.workload_of[static_cast<std::size_t>(a)];
    const SimResult sr = sim_->simulate(workloads[static_cast<std::size_t>(wl)], cfg,
                                        arrays_[static_cast<std::size_t>(a)].memory);
    r.makespan_cycles = std::max(r.makespan_cycles, sr.total_cycles());
    r.energy_pj += sr.energy.total();
  }
  return r;
}

std::vector<ScheduledArray> default_scheduled_arrays() {
  // One big monolithic array, a wide one, a tall one, and a small one —
  // heterogeneous in both shape and memory, mirroring the paper's Fig. 4.
  return {
      {{32, 32, Dataflow::kOutputStationary}, {400, 400, 400, 50}},
      {{64, 8, Dataflow::kOutputStationary}, {300, 300, 300, 30}},
      {{8, 64, Dataflow::kOutputStationary}, {300, 300, 300, 30}},
      {{16, 16, Dataflow::kOutputStationary}, {200, 200, 200, 20}},
  };
}

}  // namespace airch
