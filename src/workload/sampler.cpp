#include "workload/sampler.hpp"

#include "common/check.hpp"
#include "common/math_utils.hpp"
#include "workload/model_zoo.hpp"

namespace airch {

std::vector<GemmWorkload> GemmSampler::sample_many(Rng& rng, std::size_t count) const {
  std::vector<GemmWorkload> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) out.push_back(sample(rng));
  return out;
}

GemmWorkload LogUniformGemmSampler::sample(Rng& rng) const {
  GemmWorkload w;
  w.m = rng.log_uniform_int(bounds_.m_min, bounds_.m_max);
  w.n = rng.log_uniform_int(bounds_.n_min, bounds_.n_max);
  w.k = rng.log_uniform_int(bounds_.k_min, bounds_.k_max);
  return w;
}

ZooEmpiricalGemmSampler::ZooEmpiricalGemmSampler(double jitter)
    : population_(zoo_gemms()), jitter_(jitter) {
  AIRCH_ASSERT(!population_.empty());
  AIRCH_ASSERT(jitter_ >= 0.0);
}

GemmWorkload ZooEmpiricalGemmSampler::sample(Rng& rng) const {
  const auto idx = static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(population_.size()) - 1));
  GemmWorkload w = population_[idx];
  auto jitter_dim = [&](std::int64_t v) {
    const double f = rng.uniform(1.0 / (1.0 + jitter_), 1.0 + jitter_);
    return std::max<std::int64_t>(1, static_cast<std::int64_t>(static_cast<double>(v) * f));
  };
  w.m = jitter_dim(w.m);
  w.n = jitter_dim(w.n);
  w.k = jitter_dim(w.k);
  return w;
}

std::vector<std::int64_t> log2_histogram(const std::vector<std::int64_t>& values, int num_bins) {
  std::vector<std::int64_t> counts(static_cast<std::size_t>(num_bins), 0);
  for (auto v : values) {
    if (v < 1) continue;
    const int b = std::min(num_bins - 1, log2_floor(v));
    ++counts[static_cast<std::size_t>(b)];
  }
  return counts;
}

}  // namespace airch
