#pragma once
// Samplers producing GEMM workloads with the dimension statistics of
// Fig. 7(a): dimensions of conv-net GEMMs span several orders of magnitude
// and are roughly uniform per octave. Two samplers are provided:
//
//  * LogUniformGemmSampler — dims drawn log-uniformly within bounds; this
//    is the sampler used for dataset generation (matches the heavy-tailed
//    population without memorizing zoo layers, so Fig. 11(a)'s zoo layers
//    remain unseen at training time).
//  * ZooEmpiricalGemmSampler — resamples the model-zoo layer dimensions
//    with multiplicative jitter; used to cross-check that the log-uniform
//    sampler covers the empirical population (bench_fig7_space_growth).

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "workload/gemm.hpp"

namespace airch {

/// Bounds used throughout the paper's case studies. Derived from the zoo:
/// M (output pixels) reaches ~5*10^5 (FasterRCNN conv1), N (filters) and
/// K (kernel volume) reach ~2.5*10^4 (VGG fc6).
struct GemmDimBounds {
  std::int64_t m_min = 4, m_max = 1 << 19;
  std::int64_t n_min = 4, n_max = 1 << 15;
  std::int64_t k_min = 4, k_max = 1 << 15;
};

class GemmSampler {
 public:
  virtual ~GemmSampler() = default;
  virtual GemmWorkload sample(Rng& rng) const = 0;

  std::vector<GemmWorkload> sample_many(Rng& rng, std::size_t count) const;
};

class LogUniformGemmSampler final : public GemmSampler {
 public:
  explicit LogUniformGemmSampler(GemmDimBounds bounds = {}) : bounds_(bounds) {}
  GemmWorkload sample(Rng& rng) const override;
  const GemmDimBounds& bounds() const { return bounds_; }

 private:
  GemmDimBounds bounds_;
};

class ZooEmpiricalGemmSampler final : public GemmSampler {
 public:
  /// jitter: each dim multiplied by uniform [1/(1+jitter), 1+jitter].
  explicit ZooEmpiricalGemmSampler(double jitter = 0.25);
  GemmWorkload sample(Rng& rng) const override;

 private:
  std::vector<GemmWorkload> population_;
  double jitter_;
};

/// Histogram of log2(dim) occupancy used to render Fig. 7(a):
/// counts[b] = number of values v with floor(log2(v)) == b.
std::vector<std::int64_t> log2_histogram(const std::vector<std::int64_t>& values, int num_bins);

}  // namespace airch
