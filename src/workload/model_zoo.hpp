#pragma once
// Layer tables for the CNNs the paper uses (Fig. 7(a) dimension
// distribution; Fig. 11(a) generalization test): AlexNet, GoogLeNet,
// ResNet-18, MobileNet(v1), and the FasterRCNN (VGG-16 backbone) detector.
// Each network is expressed as its conv/FC layers; `gemms()` lowers them to
// the GEMM workloads the simulator consumes.

#include <cstdint>
#include <string>
#include <vector>

#include "workload/conv.hpp"
#include "workload/gemm.hpp"

namespace airch {

struct NetworkModel {
  std::string name;
  std::vector<ConvLayer> conv_layers;
  std::vector<FcLayer> fc_layers;

  /// All layers lowered to GEMM, conv layers first.
  std::vector<GemmWorkload> gemms() const;
  /// Parallel array of layer names matching gemms().
  std::vector<std::string> layer_names() const;
};

/// Individual network builders.
NetworkModel make_alexnet();
NetworkModel make_googlenet();
NetworkModel make_resnet18();
NetworkModel make_mobilenet();
NetworkModel make_faster_rcnn();

/// All five networks used in the paper's figures.
std::vector<NetworkModel> model_zoo();

/// Every GEMM from every zoo network, concatenated (Fig. 7(a) population).
std::vector<GemmWorkload> zoo_gemms();

/// Transformer encoder/decoder GEMMs (beyond the paper's CNN-only zoo):
/// per-layer projections, attention score/context products, and FFN
/// matmuls for a BERT-base-like encoder and a GPT-2-small-like decoder.
/// Used by the extended generalization experiments.
NetworkModel make_bert_base(std::int64_t seq_len = 128);
NetworkModel make_gpt2_small(std::int64_t seq_len = 256);
std::vector<NetworkModel> transformer_zoo();

}  // namespace airch
