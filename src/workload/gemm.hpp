#pragma once
// GEMM workload description: C[M x N] = A[M x K] * B[K x N].
// In the paper's CNN terminology (im2col lowering), A is the IFMAP operand,
// B is the Filter operand, and C is the OFMAP.

#include <cstdint>
#include <string>

#include "common/units.hpp"

namespace airch {

struct GemmWorkload {
  std::int64_t m = 1;  ///< rows of A / rows of C
  std::int64_t n = 1;  ///< cols of B / cols of C
  std::int64_t k = 1;  ///< cols of A / rows of B (reduction dim)

  /// Total multiply-accumulate operations.
  [[nodiscard]] MacCount macs() const { return MacCount{m * n * k}; }

  /// Operand element counts.
  std::int64_t ifmap_elems() const { return m * k; }
  std::int64_t filter_elems() const { return k * n; }
  std::int64_t ofmap_elems() const { return m * n; }

  bool valid() const { return m >= 1 && n >= 1 && k >= 1; }

  std::string to_string() const {
    return "GEMM(M=" + std::to_string(m) + ",N=" + std::to_string(n) + ",K=" + std::to_string(k) + ")";
  }

  friend bool operator==(const GemmWorkload&, const GemmWorkload&) = default;
};

}  // namespace airch
