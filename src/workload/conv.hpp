#pragma once
// Convolution layer description and its im2col lowering to GEMM.
// This is how the paper turns "DNN layer" workloads into the GEMM inputs
// consumed by the systolic-array cost model (SCALE-Sim does the same).

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "workload/gemm.hpp"

namespace airch {

struct ConvLayer {
  std::string name;           ///< human-readable layer name, e.g. "conv1"
  std::int64_t in_h = 1;      ///< input feature-map height
  std::int64_t in_w = 1;      ///< input feature-map width
  std::int64_t in_c = 1;      ///< input channels
  std::int64_t out_c = 1;     ///< output channels (number of filters)
  std::int64_t kernel = 1;    ///< square kernel size
  std::int64_t stride = 1;    ///< stride (same in both dims)
  std::int64_t padding = 0;   ///< symmetric zero padding
  std::int64_t dilation = 1;  ///< kernel dilation (1 = dense)
  std::int64_t groups = 1;    ///< grouped convolution (in_c == out_c == groups => depthwise)

  /// Effective receptive-field extent of the dilated kernel.
  std::int64_t effective_kernel() const { return dilation * (kernel - 1) + 1; }

  std::int64_t out_h() const { return (in_h + 2 * padding - effective_kernel()) / stride + 1; }
  std::int64_t out_w() const { return (in_w + 2 * padding - effective_kernel()) / stride + 1; }

  /// im2col lowering of ONE group: M = output pixels, K = kernel volume
  /// over the group's channels, N = the group's filters. A grouped conv
  /// executes `groups` such GEMMs (see to_gemms()).
  GemmWorkload to_gemm() const {
    return GemmWorkload{out_h() * out_w(), out_c / groups,
                        kernel * kernel * (in_c / groups)};
  }

  /// All per-group GEMMs (size == groups; each identical in shape).
  std::vector<GemmWorkload> to_gemms() const {
    return std::vector<GemmWorkload>(static_cast<std::size_t>(groups), to_gemm());
  }

  bool valid() const {
    return in_h >= 1 && in_w >= 1 && in_c >= 1 && out_c >= 1 && kernel >= 1 && stride >= 1 &&
           padding >= 0 && dilation >= 1 && groups >= 1 && in_c % groups == 0 &&
           out_c % groups == 0 && out_h() >= 1 && out_w() >= 1;
  }
};

/// Fully-connected layer as a degenerate GEMM (M = batch, K = in, N = out).
struct FcLayer {
  std::string name;
  std::int64_t batch = 1;
  std::int64_t in_features = 1;
  std::int64_t out_features = 1;

  GemmWorkload to_gemm() const { return GemmWorkload{batch, out_features, in_features}; }
};

}  // namespace airch
