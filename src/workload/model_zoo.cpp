#include "workload/model_zoo.hpp"

namespace airch {

std::vector<GemmWorkload> NetworkModel::gemms() const {
  std::vector<GemmWorkload> out;
  out.reserve(conv_layers.size() + fc_layers.size());
  for (const auto& c : conv_layers) out.push_back(c.to_gemm());
  for (const auto& f : fc_layers) out.push_back(f.to_gemm());
  return out;
}

std::vector<std::string> NetworkModel::layer_names() const {
  std::vector<std::string> out;
  out.reserve(conv_layers.size() + fc_layers.size());
  for (const auto& c : conv_layers) out.push_back(c.name);
  for (const auto& f : fc_layers) out.push_back(f.name);
  return out;
}

NetworkModel make_alexnet() {
  NetworkModel net;
  net.name = "AlexNet";
  net.conv_layers = {
      // name, in_h, in_w, in_c, out_c, kernel, stride, padding
      {"conv1", 227, 227, 3, 96, 11, 4, 0},
      {"conv2", 27, 27, 96, 256, 5, 1, 2},
      {"conv3", 13, 13, 256, 384, 3, 1, 1},
      {"conv4", 13, 13, 384, 384, 3, 1, 1},
      {"conv5", 13, 13, 384, 256, 3, 1, 1},
  };
  net.fc_layers = {
      {"fc6", 16, 9216, 4096},
      {"fc7", 16, 4096, 4096},
      {"fc8", 16, 4096, 1000},
  };
  return net;
}

NetworkModel make_googlenet() {
  NetworkModel net;
  net.name = "GoogLeNet";
  // Stem plus a representative conv from each inception block (the 3x3
  // branch dominates compute; 1x1 reduce layers are included for the
  // small-K population visible in Fig. 7(a)).
  net.conv_layers = {
      {"conv1/7x7_s2", 224, 224, 3, 64, 7, 2, 3},
      {"conv2/3x3_reduce", 56, 56, 64, 64, 1, 1, 0},
      {"conv2/3x3", 56, 56, 64, 192, 3, 1, 1},
      {"inception_3a/1x1", 28, 28, 192, 64, 1, 1, 0},
      {"inception_3a/3x3", 28, 28, 96, 128, 3, 1, 1},
      {"inception_3a/5x5", 28, 28, 16, 32, 5, 1, 2},
      {"inception_3b/3x3", 28, 28, 128, 192, 3, 1, 1},
      {"inception_4a/3x3", 14, 14, 96, 208, 3, 1, 1},
      {"inception_4b/3x3", 14, 14, 112, 224, 3, 1, 1},
      {"inception_4c/3x3", 14, 14, 128, 256, 3, 1, 1},
      {"inception_4d/3x3", 14, 14, 144, 288, 3, 1, 1},
      {"inception_4e/3x3", 14, 14, 160, 320, 3, 1, 1},
      {"inception_5a/3x3", 7, 7, 160, 320, 3, 1, 1},
      {"inception_5b/3x3", 7, 7, 192, 384, 3, 1, 1},
  };
  net.fc_layers = {{"loss3/classifier", 16, 1024, 1000}};
  return net;
}

NetworkModel make_resnet18() {
  NetworkModel net;
  net.name = "ResNet-18";
  net.conv_layers = {
      {"conv1", 224, 224, 3, 64, 7, 2, 3},
      {"layer1.0.conv1", 56, 56, 64, 64, 3, 1, 1},
      {"layer1.0.conv2", 56, 56, 64, 64, 3, 1, 1},
      {"layer1.1.conv1", 56, 56, 64, 64, 3, 1, 1},
      {"layer1.1.conv2", 56, 56, 64, 64, 3, 1, 1},
      {"layer2.0.conv1", 56, 56, 64, 128, 3, 2, 1},
      {"layer2.0.conv2", 28, 28, 128, 128, 3, 1, 1},
      {"layer2.0.downsample", 56, 56, 64, 128, 1, 2, 0},
      {"layer2.1.conv1", 28, 28, 128, 128, 3, 1, 1},
      {"layer2.1.conv2", 28, 28, 128, 128, 3, 1, 1},
      {"layer3.0.conv1", 28, 28, 128, 256, 3, 2, 1},
      {"layer3.0.conv2", 14, 14, 256, 256, 3, 1, 1},
      {"layer3.0.downsample", 28, 28, 128, 256, 1, 2, 0},
      {"layer3.1.conv1", 14, 14, 256, 256, 3, 1, 1},
      {"layer3.1.conv2", 14, 14, 256, 256, 3, 1, 1},
      {"layer4.0.conv1", 14, 14, 256, 512, 3, 2, 1},
      {"layer4.0.conv2", 7, 7, 512, 512, 3, 1, 1},
      {"layer4.0.downsample", 14, 14, 256, 512, 1, 2, 0},
      {"layer4.1.conv1", 7, 7, 512, 512, 3, 1, 1},
      {"layer4.1.conv2", 7, 7, 512, 512, 3, 1, 1},
  };
  net.fc_layers = {{"fc", 16, 512, 1000}};
  return net;
}

NetworkModel make_mobilenet() {
  NetworkModel net;
  net.name = "MobileNet";
  // MobileNetV1 pointwise (1x1) convolutions — the GEMM-shaped compute.
  // Depthwise stages are channel-parallel vector ops, not GEMMs, so (as in
  // SCALE-Sim's MobileNet config) the pointwise layers represent the model.
  net.conv_layers = {
      {"conv1", 224, 224, 3, 32, 3, 2, 1},
      {"pw2", 112, 112, 32, 64, 1, 1, 0},
      {"pw3", 56, 56, 64, 128, 1, 1, 0},
      {"pw4", 56, 56, 128, 128, 1, 1, 0},
      {"pw5", 28, 28, 128, 256, 1, 1, 0},
      {"pw6", 28, 28, 256, 256, 1, 1, 0},
      {"pw7", 14, 14, 256, 512, 1, 1, 0},
      {"pw8", 14, 14, 512, 512, 1, 1, 0},
      {"pw9", 14, 14, 512, 512, 1, 1, 0},
      {"pw10", 14, 14, 512, 512, 1, 1, 0},
      {"pw11", 14, 14, 512, 512, 1, 1, 0},
      {"pw12", 14, 14, 512, 512, 1, 1, 0},
      {"pw13", 7, 7, 512, 1024, 1, 1, 0},
      {"pw14", 7, 7, 1024, 1024, 1, 1, 0},
  };
  net.fc_layers = {{"fc", 16, 1024, 1000}};
  return net;
}

NetworkModel make_faster_rcnn() {
  NetworkModel net;
  net.name = "FasterRCNN";
  // VGG-16 backbone + RPN head, operating on 600x800 detection inputs.
  net.conv_layers = {
      {"conv1_1", 600, 800, 3, 64, 3, 1, 1},
      {"conv1_2", 600, 800, 64, 64, 3, 1, 1},
      {"conv2_1", 300, 400, 64, 128, 3, 1, 1},
      {"conv2_2", 300, 400, 128, 128, 3, 1, 1},
      {"conv3_1", 150, 200, 128, 256, 3, 1, 1},
      {"conv3_2", 150, 200, 256, 256, 3, 1, 1},
      {"conv3_3", 150, 200, 256, 256, 3, 1, 1},
      {"conv4_1", 75, 100, 256, 512, 3, 1, 1},
      {"conv4_2", 75, 100, 512, 512, 3, 1, 1},
      {"conv4_3", 75, 100, 512, 512, 3, 1, 1},
      {"conv5_1", 37, 50, 512, 512, 3, 1, 1},
      {"conv5_2", 37, 50, 512, 512, 3, 1, 1},
      {"conv5_3", 37, 50, 512, 512, 3, 1, 1},
      {"rpn_conv/3x3", 37, 50, 512, 512, 3, 1, 1},
      {"rpn_cls_score", 37, 50, 512, 18, 1, 1, 0},
      {"rpn_bbox_pred", 37, 50, 512, 36, 1, 1, 0},
  };
  net.fc_layers = {
      {"fc6", 128, 25088, 4096},
      {"fc7", 128, 4096, 4096},
      {"cls_score", 128, 4096, 21},
      {"bbox_pred", 128, 4096, 84},
  };
  return net;
}

namespace {

/// Shared transformer-block GEMM construction. A block contributes:
///   QKV projection    (seq x d_model) * (d_model x 3 d_model)
///   attention scores  per head: (seq x d_head) * (d_head x seq)
///   attention context per head: (seq x seq) * (seq x d_head)
///   output projection (seq x d_model) * (d_model x d_model)
///   FFN up / down     (seq x d_model) * (d_model x d_ff) and back
NetworkModel make_transformer(const std::string& name, std::int64_t seq, std::int64_t d_model,
                              std::int64_t heads, std::int64_t d_ff, int layers) {
  NetworkModel net;
  net.name = name;
  const std::int64_t d_head = d_model / heads;
  for (int l = 0; l < layers; ++l) {
    const std::string p = "block" + std::to_string(l) + ".";
    net.fc_layers.push_back({p + "qkv_proj", seq, d_model, 3 * d_model});
    net.fc_layers.push_back({p + "attn_scores", seq, d_head, seq});
    net.fc_layers.push_back({p + "attn_context", seq, seq, d_head});
    net.fc_layers.push_back({p + "out_proj", seq, d_model, d_model});
    net.fc_layers.push_back({p + "ffn_up", seq, d_model, d_ff});
    net.fc_layers.push_back({p + "ffn_down", seq, d_ff, d_model});
  }
  return net;
}

}  // namespace

NetworkModel make_bert_base(std::int64_t seq_len) {
  // BERT-base: 12 layers, d_model 768, 12 heads, FFN 3072. Four
  // representative blocks keep the layer table compact (blocks repeat).
  return make_transformer("BERT-base", seq_len, 768, 12, 3072, 4);
}

NetworkModel make_gpt2_small(std::int64_t seq_len) {
  // GPT-2 small: 12 layers, d_model 768, 12 heads, FFN 3072; decoder
  // sequence lengths are typically longer at inference.
  return make_transformer("GPT-2-small", seq_len, 768, 12, 3072, 4);
}

std::vector<NetworkModel> transformer_zoo() {
  return {make_bert_base(), make_gpt2_small()};
}

std::vector<NetworkModel> model_zoo() {
  return {make_alexnet(), make_googlenet(), make_resnet18(), make_mobilenet(),
          make_faster_rcnn()};
}

std::vector<GemmWorkload> zoo_gemms() {
  std::vector<GemmWorkload> out;
  for (const auto& net : model_zoo()) {
    auto g = net.gemms();
    out.insert(out.end(), g.begin(), g.end());
  }
  return out;
}

}  // namespace airch
