#pragma once
// Analytical compute-latency model of a systolic array, equivalent in
// structure to SCALE-Sim's analytical mode (Samajdar et al., ISPASS 2020).
//
// Each dataflow maps two GEMM dimensions spatially onto the (rows x cols)
// array and streams the third temporally:
//
//   dataflow | spatial rows | spatial cols | temporal
//   ---------+--------------+--------------+---------
//   OS       | M            | N            | K
//   WS       | K            | N            | M
//   IS       | K            | M            | N
//
// When the spatial extent exceeds the array, the computation is "folded":
// folds = ceil(SR/rows) * ceil(SC/cols). Every fold pays a pipeline
// fill/drain overhead in addition to its temporal streaming cycles:
//
//   OS fold:  (rows-1) skew fill + K accumulate + (rows + cols - 1) drain
//   WS fold:  rows weight-preload + M stream + (rows + cols - 2) skew/drain
//   IS fold:  rows input-preload  + N stream + (rows + cols - 2) skew/drain
//
// The model captures exactly the trade-offs the paper's case study 1
// learns: matching array shape to the spatially-mapped operand dims
// maximises utilization, while the fill/drain tax penalises many small
// folds (large K favours OS, large M favours WS, large N favours IS).

#include <cstdint>

#include "common/units.hpp"
#include "sim/array_config.hpp"
#include "workload/gemm.hpp"

namespace airch {

/// Spatio-temporal extents of a GEMM under a dataflow (before folding).
struct Mapping {
  std::int64_t spatial_rows = 1;
  std::int64_t spatial_cols = 1;
  std::int64_t temporal = 1;
};

/// Dataflow-dependent dimension assignment (table above).
Mapping map_workload(const GemmWorkload& w, Dataflow d);

struct ComputeResult {
  Cycles cycles;                 ///< total compute latency (no memory stalls)
  std::int64_t folds = 0;        ///< number of spatial folds executed
  Cycles fold_cycles;            ///< latency per fold (uniform across folds)
  Utilization utilization;       ///< useful MACs / (macs * cycles), in (0, 1]
};

/// Computes stall-free latency of `w` on `array`.
/// Preconditions: w.valid() && array.valid().
[[nodiscard]] ComputeResult compute_latency(const GemmWorkload& w, const ArrayConfig& array);

}  // namespace airch
