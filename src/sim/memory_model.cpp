#include "sim/memory_model.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/math_utils.hpp"

namespace airch {

namespace {

/// Operand extents are element counts; traffic is accounted in Bytes from
/// the start so the reuse formulas below cannot mix the two dimensions.
constexpr Bytes bytes_of(std::int64_t elems) { return Bytes{elems * kBytesPerElement}; }

// Each dataflow's traffic factors. The per-capacity formulas the previous
// revision evaluated inline are recovered exactly by operand_traffic():
// stripe_traffic(stripe, cap, reuses) = stripe + reuses * (stripe - retained)
// becomes {base = stripe, passes = reuses, stripe}, and a fold-scaled
// stripe_traffic distributes the fold count into base and passes (exact in
// int64).

TrafficFactors factors_os(const GemmWorkload& w, const ArrayConfig& a) {
  const std::int64_t row_folds = ceil_div(w.m, a.rows);
  const std::int64_t col_folds = ceil_div(w.n, a.cols);
  const Bytes ifmap_stripe = bytes_of(std::min(w.m, a.rows) * w.k);  // rows x K
  const Bytes filter_tile = bytes_of(w.k * std::min(w.n, a.cols));   // K x cols
  const Bytes filter_total = bytes_of(w.filter_elems());

  TrafficFactors f;
  // IFMAP stripe is reused across the column folds of its row stripe.
  f.ifmap = {row_folds * ifmap_stripe, row_folds * (col_folds - 1), ifmap_stripe};
  // Filter is reused across row stripes only to the extent the whole
  // K x N operand fits.
  f.filter = {filter_total, row_folds - 1, filter_total};
  f.ofmap = {bytes_of(w.ofmap_elems()), 0, Bytes{0}};  // psums live in the PEs
  // SRAM streams every fold's operand tiles into the array regardless of
  // DRAM-side reuse, and the outputs out once.
  f.sram = col_folds * bytes_of(w.ifmap_elems()) + row_folds * filter_total +
           bytes_of(w.ofmap_elems());
  f.fill_ifmap = ifmap_stripe;
  f.fill_filter = filter_tile;
  return f;
}

TrafficFactors factors_ws(const GemmWorkload& w, const ArrayConfig& a) {
  const std::int64_t red_folds = ceil_div(w.k, a.rows);  // reduction folds
  const std::int64_t col_folds = ceil_div(w.n, a.cols);
  const Bytes ifmap_slice = bytes_of(w.m * std::min(w.k, a.rows));  // M x rows
  const Bytes filter_tile = bytes_of(std::min(w.k, a.rows) * std::min(w.n, a.cols));
  // Partial sums: the retained part of the M x cols stripe accumulates in
  // the buffer across reduction folds; the spilled remainder pays a DRAM
  // read + write per extra fold.
  const Bytes psum_stripe = bytes_of(w.m * std::min(w.n, a.cols));  // M x cols

  TrafficFactors f;
  f.filter = {bytes_of(w.filter_elems()), 0, Bytes{0}};  // stationary: fetched once
  // IFMAP K-slice is reused across the column folds of its reduction fold.
  f.ifmap = {red_folds * ifmap_slice, red_folds * (col_folds - 1), ifmap_slice};
  f.ofmap = {bytes_of(w.ofmap_elems()), 2 * (red_folds - 1) * col_folds, psum_stripe};
  f.sram = bytes_of(w.filter_elems()) + col_folds * bytes_of(w.ifmap_elems()) +
           2 * red_folds * bytes_of(w.ofmap_elems());
  f.fill_ifmap = ifmap_slice;
  f.fill_filter = filter_tile;
  return f;
}

TrafficFactors factors_is(const GemmWorkload& w, const ArrayConfig& a) {
  const std::int64_t red_folds = ceil_div(w.k, a.rows);
  const std::int64_t col_folds = ceil_div(w.m, a.cols);
  const Bytes filter_slice = bytes_of(w.n * std::min(w.k, a.rows));  // N x rows
  const Bytes ifmap_tile = bytes_of(std::min(w.k, a.rows) * std::min(w.m, a.cols));
  const Bytes psum_stripe = bytes_of(w.n * std::min(w.m, a.cols));  // N x cols

  TrafficFactors f;
  f.ifmap = {bytes_of(w.ifmap_elems()), 0, Bytes{0}};  // stationary operand
  f.filter = {red_folds * filter_slice, red_folds * (col_folds - 1), filter_slice};
  f.ofmap = {bytes_of(w.ofmap_elems()), 2 * (red_folds - 1) * col_folds, psum_stripe};
  f.sram = bytes_of(w.ifmap_elems()) + col_folds * bytes_of(w.filter_elems()) +
           2 * red_folds * bytes_of(w.ofmap_elems());
  f.fill_ifmap = ifmap_tile;
  f.fill_filter = filter_slice;
  return f;
}

}  // namespace

TrafficFactors traffic_factors(const GemmWorkload& w, const ArrayConfig& array) {
  AIRCH_ASSERT(w.valid() && array.valid());
  switch (array.dataflow) {
    case Dataflow::kWeightStationary: return factors_ws(w, array);
    case Dataflow::kInputStationary: return factors_is(w, array);
    case Dataflow::kOutputStationary: break;
  }
  return factors_os(w, array);
}

MemoryResult memory_combine(const TrafficFactors& f, const MemoryConfig& mem,
                            const ComputeResult& compute) {
  MemoryResult r;
  r.dram_ifmap_bytes = operand_traffic(f.ifmap, mem.ifmap_bytes());
  r.dram_filter_bytes = operand_traffic(f.filter, mem.filter_bytes());
  r.dram_ofmap_bytes = operand_traffic(f.ofmap, mem.ofmap_bytes());
  r.sram_bytes = f.sram;
  r.first_fill_bytes = std::min(f.fill_ifmap, mem.ifmap_bytes()) +
                       std::min(f.fill_filter, mem.filter_bytes());

  // Traffic components are counts of fetched bytes: a negative value means
  // a reuse formula above went wrong (e.g. retained > stripe) or overflowed.
  AIRCH_DCHECK(r.dram_ifmap_bytes >= Bytes{0} && r.dram_filter_bytes >= Bytes{0} &&
                   r.dram_ofmap_bytes >= Bytes{0} && r.sram_bytes >= Bytes{0} &&
                   r.first_fill_bytes >= Bytes{0},
               "negative traffic — reuse accounting bug or int64 overflow");
  const Cycles transfer_cycles = ceil_div(r.dram_total_bytes(), mem.bytes_per_cycle());
  const Cycles fill_cycles = ceil_div(r.first_fill_bytes, mem.bytes_per_cycle());
  r.stall_cycles = fill_cycles + std::max(Cycles{0}, transfer_cycles - compute.cycles);
  AIRCH_DCHECK(r.stall_cycles >= Cycles{0}, "stall cycles must be non-negative");
  return r;
}

MemoryResult memory_behavior(const GemmWorkload& w, const ArrayConfig& array,
                             const MemoryConfig& mem, const ComputeResult& compute) {
  AIRCH_ASSERT(w.valid() && array.valid() && mem.valid());
  return memory_combine(traffic_factors(w, array), mem, compute);
}

}  // namespace airch
