#include "sim/memory_model.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/math_utils.hpp"

namespace airch {

namespace {

/// Operand extents are element counts; traffic is accounted in Bytes from
/// the start so the reuse formulas below cannot mix the two dimensions.
constexpr Bytes bytes_of(std::int64_t elems) { return Bytes{elems * kBytesPerElement}; }

/// Partial-retention reuse: a stripe of `stripe` bytes is fetched once and
/// the buffer retains up to its capacity across the `reuses` subsequent
/// passes; the non-retained remainder is re-fetched every pass.
/// Boundary cases: capacity >= stripe -> stripe (fetched once);
/// capacity = 0 -> stripe * (1 + reuses) (re-fetched every pass).
Bytes stripe_traffic(Bytes stripe, Bytes capacity, std::int64_t reuses) {
  const Bytes retained = std::min(stripe, capacity);
  return stripe + reuses * (stripe - retained);
}

/// Per-dataflow traffic accounting.
struct Traffic {
  Bytes ifmap;
  Bytes filter;
  Bytes ofmap;
  Bytes sram;
  Bytes first_fill;  ///< bytes that must land before cycle 0
};

Traffic traffic_os(const GemmWorkload& w, const ArrayConfig& a, const MemoryConfig& mem) {
  const std::int64_t row_folds = ceil_div(w.m, a.rows);
  const std::int64_t col_folds = ceil_div(w.n, a.cols);
  const Bytes ifmap_stripe = bytes_of(std::min(w.m, a.rows) * w.k);  // rows x K
  const Bytes filter_tile = bytes_of(w.k * std::min(w.n, a.cols));   // K x cols

  Traffic t;
  // IFMAP stripe is reused across the column folds of its row stripe.
  t.ifmap = row_folds * stripe_traffic(ifmap_stripe, mem.ifmap_bytes(), col_folds - 1);
  // Filter is reused across row stripes only to the extent the whole
  // K x N operand fits.
  t.filter = stripe_traffic(bytes_of(w.filter_elems()), mem.filter_bytes(), row_folds - 1);
  t.ofmap = bytes_of(w.ofmap_elems());  // partial sums accumulate inside the PEs
  // SRAM streams every fold's operand tiles into the array regardless of
  // DRAM-side reuse, and the outputs out once.
  t.sram = col_folds * bytes_of(w.ifmap_elems()) + row_folds * bytes_of(w.filter_elems()) +
           bytes_of(w.ofmap_elems());
  t.first_fill = std::min(ifmap_stripe, mem.ifmap_bytes()) +
                 std::min(filter_tile, mem.filter_bytes());
  return t;
}

Traffic traffic_ws(const GemmWorkload& w, const ArrayConfig& a, const MemoryConfig& mem) {
  const std::int64_t red_folds = ceil_div(w.k, a.rows);  // reduction folds
  const std::int64_t col_folds = ceil_div(w.n, a.cols);
  const Bytes ifmap_slice = bytes_of(w.m * std::min(w.k, a.rows));  // M x rows
  const Bytes filter_tile = bytes_of(std::min(w.k, a.rows) * std::min(w.n, a.cols));

  Traffic t;
  t.filter = bytes_of(w.filter_elems());  // stationary: each weight fetched exactly once
  // IFMAP K-slice is reused across the column folds of its reduction fold.
  t.ifmap = red_folds * stripe_traffic(ifmap_slice, mem.ifmap_bytes(), col_folds - 1);
  // Partial sums: the retained part of the M x cols stripe accumulates in
  // the buffer across reduction folds; the spilled remainder pays a DRAM
  // read + write per extra fold.
  const Bytes psum_stripe = bytes_of(w.m * std::min(w.n, a.cols));  // M x cols
  const Bytes spilled = psum_stripe - std::min(psum_stripe, mem.ofmap_bytes());
  t.ofmap = bytes_of(w.ofmap_elems()) + 2 * (red_folds - 1) * col_folds * spilled;
  t.sram = bytes_of(w.filter_elems()) + col_folds * bytes_of(w.ifmap_elems()) +
           2 * red_folds * bytes_of(w.ofmap_elems());
  t.first_fill = std::min(filter_tile, mem.filter_bytes()) +
                 std::min(ifmap_slice, mem.ifmap_bytes());
  return t;
}

Traffic traffic_is(const GemmWorkload& w, const ArrayConfig& a, const MemoryConfig& mem) {
  const std::int64_t red_folds = ceil_div(w.k, a.rows);
  const std::int64_t col_folds = ceil_div(w.m, a.cols);
  const Bytes filter_slice = bytes_of(w.n * std::min(w.k, a.rows));  // N x rows
  const Bytes ifmap_tile = bytes_of(std::min(w.k, a.rows) * std::min(w.m, a.cols));

  Traffic t;
  t.ifmap = bytes_of(w.ifmap_elems());  // stationary operand
  t.filter = red_folds * stripe_traffic(filter_slice, mem.filter_bytes(), col_folds - 1);
  const Bytes psum_stripe = bytes_of(w.n * std::min(w.m, a.cols));  // N x cols
  const Bytes spilled = psum_stripe - std::min(psum_stripe, mem.ofmap_bytes());
  t.ofmap = bytes_of(w.ofmap_elems()) + 2 * (red_folds - 1) * col_folds * spilled;
  t.sram = bytes_of(w.ifmap_elems()) + col_folds * bytes_of(w.filter_elems()) +
           2 * red_folds * bytes_of(w.ofmap_elems());
  t.first_fill = std::min(ifmap_tile, mem.ifmap_bytes()) +
                 std::min(filter_slice, mem.filter_bytes());
  return t;
}

}  // namespace

MemoryResult memory_behavior(const GemmWorkload& w, const ArrayConfig& array,
                             const MemoryConfig& mem, const ComputeResult& compute) {
  AIRCH_ASSERT(w.valid() && array.valid() && mem.valid());
  Traffic t;
  switch (array.dataflow) {
    case Dataflow::kOutputStationary: t = traffic_os(w, array, mem); break;
    case Dataflow::kWeightStationary: t = traffic_ws(w, array, mem); break;
    case Dataflow::kInputStationary: t = traffic_is(w, array, mem); break;
  }

  MemoryResult r;
  r.dram_ifmap_bytes = t.ifmap;
  r.dram_filter_bytes = t.filter;
  r.dram_ofmap_bytes = t.ofmap;
  r.sram_bytes = t.sram;
  r.first_fill_bytes = t.first_fill;

  // Traffic components are counts of fetched bytes: a negative value means
  // a reuse formula above went wrong (e.g. retained > stripe) or overflowed.
  AIRCH_DCHECK(t.ifmap >= Bytes{0} && t.filter >= Bytes{0} && t.ofmap >= Bytes{0} &&
                   t.sram >= Bytes{0} && t.first_fill >= Bytes{0},
               "negative traffic — reuse accounting bug or int64 overflow");
  const Cycles transfer_cycles = ceil_div(r.dram_total_bytes(), mem.bytes_per_cycle());
  const Cycles fill_cycles = ceil_div(t.first_fill, mem.bytes_per_cycle());
  r.stall_cycles = fill_cycles + std::max(Cycles{0}, transfer_cycles - compute.cycles);
  AIRCH_DCHECK(r.stall_cycles >= Cycles{0}, "stall cycles must be non-negative");
  return r;
}

}  // namespace airch
