#include "sim/simulator.hpp"

namespace airch {

SimResult Simulator::simulate(const GemmWorkload& w, const ArrayConfig& array,
                              const MemoryConfig& mem) const {
  SimResult r;
  r.compute = compute_latency(w, array);
  r.memory = memory_behavior(w, array, mem, r.compute);
  r.energy = energy_cost(w, r.memory, energy_params_);
  return r;
}

}  // namespace airch
