#include "sim/compute_model.hpp"

#include "common/check.hpp"
#include "common/math_utils.hpp"

namespace airch {

Mapping map_workload(const GemmWorkload& w, Dataflow d) {
  switch (d) {
    case Dataflow::kOutputStationary: return {w.m, w.n, w.k};
    case Dataflow::kWeightStationary: return {w.k, w.n, w.m};
    case Dataflow::kInputStationary: return {w.k, w.m, w.n};
  }
  return {};
}

ComputeResult compute_latency(const GemmWorkload& w, const ArrayConfig& array) {
  AIRCH_ASSERT(w.valid() && array.valid());
  const Mapping map = map_workload(w, array.dataflow);
  const std::int64_t row_folds = ceil_div(map.spatial_rows, array.rows);
  const std::int64_t col_folds = ceil_div(map.spatial_cols, array.cols);

  ComputeResult r;
  r.folds = row_folds * col_folds;
  switch (array.dataflow) {
    case Dataflow::kOutputStationary:
      // Skewed operand fill, K accumulation steps, then shifting results
      // out through the array.
      r.fold_cycles = Cycles{(array.rows - 1) + map.temporal + (array.rows + array.cols - 1)};
      break;
    case Dataflow::kWeightStationary:
    case Dataflow::kInputStationary:
      // Preload the stationary operand row-by-row, stream the moving
      // operand, and drain the final skewed wavefront.
      r.fold_cycles = Cycles{array.rows + map.temporal + (array.rows + array.cols - 2)};
      break;
  }
  r.cycles = r.fold_cycles * r.folds;
  // Utilization is MAC / (MAC/cycle x cycle) — dimensionless, but the
  // intermediate "MAC-cycles of capacity" has no declared unit, so the
  // factors exit the type system here.
  const double useful_macs = static_cast<double>(w.macs().value());       // airch-lint: allow(value-escape)
  const double capacity = static_cast<double>(array.macs().value()) *     // airch-lint: allow(value-escape)
                          static_cast<double>(r.cycles.value());          // airch-lint: allow(value-escape)
  r.utilization = Utilization{capacity > 0.0 ? useful_macs / capacity : 0.0};
  AIRCH_DCHECK(r.folds >= 1 && r.fold_cycles >= Cycles{1} && r.cycles >= Cycles{1},
               "compute latency must be positive for a valid workload/array");
  AIRCH_DCHECK(r.utilization >= Utilization{0.0} && r.utilization <= Utilization{1.0},
               "utilization is a fraction of peak MAC throughput");
  return r;
}

}  // namespace airch
