#pragma once
// Cycle-level systolic-array trace simulator — the counterpart of the
// analytical model in compute_model.hpp, mirroring SCALE-Sim's two modes.
//
// The trace simulator steps the PE grid cycle by cycle and *functionally
// executes* the GEMM through the chosen dataflow's data movement:
//
//   OS: operands stream in from the left (A, row-skewed) and top
//       (B, column-skewed); each PE multiplies the passing pair and
//       accumulates locally; results drain through the array afterwards.
//   WS: a K x N weight tile is preloaded row-by-row; A streams from the
//       left, partial sums flow down the columns and exit at the bottom.
//   IS: mirror image of WS with A held stationary and B streaming.
//
// Because the simulation produces the actual output matrix, tests can
// verify the dataflow semantics against a reference GEMM — a far stronger
// check than cycle counting alone — and the cycle counts cross-validate
// the analytical model's fold/fill/drain accounting.
//
// Complexity is O(rows * cols) per cycle: intended for validation and
// small-workload studies, not the dataset-generation hot path.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/units.hpp"
#include "sim/array_config.hpp"
#include "workload/gemm.hpp"

namespace airch {

/// Dense row-major integer matrix used for functional simulation.
struct GemmMatrix {
  std::int64_t rows = 0;
  std::int64_t cols = 0;
  std::vector<std::int32_t> data;

  GemmMatrix() = default;
  GemmMatrix(std::int64_t r, std::int64_t c) : rows(r), cols(c), data(static_cast<std::size_t>(r * c), 0) {}

  std::int32_t& at(std::int64_t r, std::int64_t c) {
    return data[static_cast<std::size_t>(r * cols + c)];
  }
  std::int32_t at(std::int64_t r, std::int64_t c) const {
    return data[static_cast<std::size_t>(r * cols + c)];
  }
};

/// Reference GEMM (C = A * B) for verifying the trace simulator.
GemmMatrix reference_gemm(const GemmMatrix& a, const GemmMatrix& b);

struct TraceResult {
  GemmMatrix output;    ///< the computed C matrix
  Cycles cycles;        ///< total cycles stepped
  MacCount macs;        ///< non-zero-operand MACs actually performed
  std::int64_t folds = 0;  ///< spatial folds executed
  Bytes sram_reads;     ///< operand bytes (1 B/element) injected into the array
  Cycles drain_cycles;  ///< cycles spent draining results/psums
};

class TraceSimulator {
 public:
  /// Executes A[M x K] * B[K x N] on `array` cycle by cycle.
  /// Preconditions: a.cols == b.rows, array.valid().
  [[nodiscard]] TraceResult run(const GemmMatrix& a, const GemmMatrix& b, const ArrayConfig& array) const;

 private:
  [[nodiscard]] TraceResult run_os(const GemmMatrix& a, const GemmMatrix& b, const ArrayConfig& array) const;
  [[nodiscard]] TraceResult run_ws(const GemmMatrix& a, const GemmMatrix& b, const ArrayConfig& array) const;
  [[nodiscard]] TraceResult run_is(const GemmMatrix& a, const GemmMatrix& b, const ArrayConfig& array) const;
};

}  // namespace airch
