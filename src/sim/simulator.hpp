#pragma once
// Facade over the compute, memory, and energy models — the functional
// equivalent of a SCALE-Sim run for one (workload, hardware) pair.

#include <cstdint>

#include "common/units.hpp"
#include "sim/array_config.hpp"
#include "sim/compute_model.hpp"
#include "sim/energy_model.hpp"
#include "sim/memory_model.hpp"
#include "workload/gemm.hpp"

namespace airch {

struct SimResult {
  ComputeResult compute;
  MemoryResult memory;
  EnergyResult energy;

  /// End-to-end latency: compute plus memory stalls.
  [[nodiscard]] Cycles total_cycles() const { return compute.cycles + memory.stall_cycles; }
};

class Simulator {
 public:
  explicit Simulator(EnergyParams energy_params = {}) : energy_params_(energy_params) {}

  /// Full simulation: latency, stalls, traffic, energy.
  [[nodiscard]] SimResult simulate(const GemmWorkload& w, const ArrayConfig& array,
                     const MemoryConfig& mem) const;

  /// Compute-only latency (case study 1 uses runtime under an ideal memory).
  [[nodiscard]] Cycles compute_cycles(const GemmWorkload& w, const ArrayConfig& array) const {
    return compute_latency(w, array).cycles;
  }

  const EnergyParams& energy_params() const { return energy_params_; }

 private:
  EnergyParams energy_params_;
};

}  // namespace airch
