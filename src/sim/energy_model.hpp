#pragma once
// Event-count energy model (the paper's "in-house simulator" tie-break for
// case study 3). Constants follow the usual 45 nm numbers (Horowitz,
// ISSCC'14 ratios): an 8-bit MAC is cheap, SRAM access ~5x a MAC per byte,
// DRAM access two orders of magnitude above SRAM.
//
// Params are per-event energies (pJ/MAC, pJ/byte); results are total
// energies (pJ). The two used to share field names (`sram_pj` meant
// "pJ per byte" in EnergyParams but "total SRAM pJ" in EnergyResult) —
// the strong types plus the `_per_byte`/`_total` names make that
// distinction impossible to drop on the floor again.

#include "common/units.hpp"
#include "sim/memory_model.hpp"
#include "workload/gemm.hpp"

namespace airch {

struct EnergyParams {
  EnergyPerMac mac_per_op{0.2};       ///< energy per multiply-accumulate
  EnergyPerByte sram_per_byte{1.0};   ///< energy per SRAM byte moved
  EnergyPerByte dram_per_byte{160.0}; ///< energy per DRAM byte moved
};

struct EnergyResult {
  Picojoules compute_total;  ///< all MACs
  Picojoules sram_total;     ///< all SRAM traffic
  Picojoules dram_total;     ///< all DRAM traffic
  [[nodiscard]] Picojoules total() const { return compute_total + sram_total + dram_total; }
};

/// Energy of executing `w` given the memory traffic `memres`.
[[nodiscard]] EnergyResult energy_cost(const GemmWorkload& w, const MemoryResult& memres,
                         const EnergyParams& params = {});

}  // namespace airch
