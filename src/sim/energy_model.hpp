#pragma once
// Event-count energy model (the paper's "in-house simulator" tie-break for
// case study 3). Constants follow the usual 45 nm numbers (Horowitz,
// ISSCC'14 ratios): an 8-bit MAC is cheap, SRAM access ~5x a MAC per byte,
// DRAM access two orders of magnitude above SRAM.

#include <cstdint>

#include "sim/memory_model.hpp"
#include "workload/gemm.hpp"

namespace airch {

struct EnergyParams {
  double mac_pj = 0.2;     ///< energy per multiply-accumulate (pJ)
  double sram_pj = 1.0;    ///< energy per SRAM byte moved (pJ)
  double dram_pj = 160.0;  ///< energy per DRAM byte moved (pJ)
};

struct EnergyResult {
  double compute_pj = 0.0;
  double sram_pj = 0.0;
  double dram_pj = 0.0;
  double total_pj() const { return compute_pj + sram_pj + dram_pj; }
};

/// Energy of executing `w` given the memory traffic `memres`.
EnergyResult energy_cost(const GemmWorkload& w, const MemoryResult& memres,
                         const EnergyParams& params = {});

}  // namespace airch
