#pragma once
// The three true systolic dataflows considered by the paper (Sec. II):
// Output Stationary, Weight Stationary, Input Stationary.

#include <array>
#include <cstdint>
#include <string>

namespace airch {

enum class Dataflow : std::uint8_t { kOutputStationary = 0, kWeightStationary = 1, kInputStationary = 2 };

inline constexpr std::array<Dataflow, 3> kAllDataflows = {
    Dataflow::kOutputStationary, Dataflow::kWeightStationary, Dataflow::kInputStationary};

inline constexpr int kNumDataflows = 3;

constexpr const char* to_string(Dataflow d) {
  switch (d) {
    case Dataflow::kOutputStationary: return "OS";
    case Dataflow::kWeightStationary: return "WS";
    case Dataflow::kInputStationary: return "IS";
  }
  return "??";
}

/// Parses "OS" / "WS" / "IS"; throws std::invalid_argument otherwise.
Dataflow dataflow_from_string(const std::string& s);

constexpr int dataflow_index(Dataflow d) { return static_cast<int>(d); }

constexpr Dataflow dataflow_from_index(int i) { return static_cast<Dataflow>(i); }

}  // namespace airch
