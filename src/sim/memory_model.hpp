#pragma once
// Buffer/DRAM model: given the three SRAM buffer capacities and the DRAM
// interface bandwidth, computes per-operand DRAM traffic, SRAM traffic, and
// the stall cycles the compute array suffers.
//
// Traffic model. Folds iterate row-stripe-major over the folded mapping
// (see compute_model.hpp). How much of an operand stripe is re-fetched
// from DRAM depends on how much of it the buffer retains across the folds
// that reuse it (partial retention: the buffered prefix of a stripe is
// reused, the remainder re-streamed every pass) — this is exactly the reuse
// structure the paper's case study 2 learns:
//
//   OS: IFMAP stripe (rows x K) reused across column folds if it fits;
//       Filter (K x N) reused across row stripes only if it fits whole;
//       OFMAP written once (partial sums live in the PEs).
//   WS: Filter is stationary (fetched exactly once);
//       IFMAP slice (M x rows) reused across column folds if it fits;
//       OFMAP partial sums spill (read+write per reduction fold) unless a
//       column stripe of partials (M x cols) fits in the OFMAP buffer.
//   IS: mirror image of WS with IFMAP and Filter exchanged.
//
// Stall model. Prefetch is double-buffered: DRAM transfers overlap compute,
// so stalls = max(0, total_traffic / bandwidth - compute_cycles), plus the
// un-hideable first-tile fill. Larger buffers reduce traffic and therefore
// stalls monotonically — the property the buffer-sizing search relies on.

#include <algorithm>
#include <cstdint>

#include "common/units.hpp"
#include "sim/array_config.hpp"
#include "sim/compute_model.hpp"
#include "workload/gemm.hpp"

namespace airch {

struct MemoryResult {
  Bytes dram_ifmap_bytes;
  Bytes dram_filter_bytes;
  Bytes dram_ofmap_bytes;  ///< includes partial-sum spill traffic
  Bytes sram_bytes;        ///< operand bytes streamed through SRAM
  Bytes first_fill_bytes;  ///< un-hideable first-tile fill (ifmap + filter terms)
  Cycles stall_cycles;

  [[nodiscard]] Bytes dram_total_bytes() const {
    return dram_ifmap_bytes + dram_filter_bytes + dram_ofmap_bytes;
  }
};

/// Evaluates the memory system for `w` on `array` with `mem`.
/// `compute` must be the result of compute_latency(w, array).
/// Preconditions: w.valid() && array.valid() && mem.valid().
[[nodiscard]] MemoryResult memory_behavior(const GemmWorkload& w, const ArrayConfig& array,
                             const MemoryConfig& mem, const ComputeResult& compute);

// ------------------------------------------------- factored traffic model
//
// The traffic model above is separable per operand: each operand's DRAM
// traffic depends on its own buffer capacity only, and only through the
// retained prefix of one stripe. That lets the whole capacity dependence
// be factored out of the per-(workload, array) work:
//
//   traffic(cap) = base + passes * (stripe - min(stripe, cap))
//
// with `base`, `passes`, and `stripe` capacity-independent. The buffer
// sweep cache builds these factors once per unique (workload, array) and
// then evaluates every buffer configuration as a closed-form integer
// combine — no per-capacity model evaluations at all. memory_behavior()
// itself is implemented as memory_combine(traffic_factors(...)), so the
// factored path is bit-identical to the direct path by construction.

/// One operand's capacity dependence (see formula above).
struct OperandFactors {
  Bytes base;                ///< capacity-independent fetched bytes
  std::int64_t passes = 0;   ///< re-fetch passes over the spilled remainder
  Bytes stripe;              ///< the retained unit (0 if capacity-independent)
};

/// All capacity-independent terms of the memory model for one
/// (workload, array, dataflow).
struct TrafficFactors {
  OperandFactors ifmap;
  OperandFactors filter;
  OperandFactors ofmap;
  Bytes sram;         ///< SRAM streaming traffic (capacity-independent)
  Bytes fill_ifmap;   ///< IFMAP-buffer term of the first fill
  Bytes fill_filter;  ///< Filter-buffer term of the first fill
  // first_fill(mem) = min(fill_ifmap, ifmap cap) + min(fill_filter, filter cap)
};

/// Factors the traffic model for `w` on `array` (dataflow taken from the
/// array config). Preconditions: w.valid() && array.valid().
TrafficFactors traffic_factors(const GemmWorkload& w, const ArrayConfig& array);

/// DRAM traffic of one operand at `capacity`, from its factors.
[[nodiscard]] constexpr Bytes operand_traffic(const OperandFactors& f, Bytes capacity) {
  return f.base + f.passes * (f.stripe - std::min(f.stripe, capacity));
}

/// Recombines factored traffic with concrete buffer capacities; equals
/// memory_behavior(w, array, mem, compute) bit-for-bit when `f` came from
/// traffic_factors(w, array).
[[nodiscard]] MemoryResult memory_combine(const TrafficFactors& f, const MemoryConfig& mem,
                            const ComputeResult& compute);

}  // namespace airch
