#pragma once
// Buffer/DRAM model: given the three SRAM buffer capacities and the DRAM
// interface bandwidth, computes per-operand DRAM traffic, SRAM traffic, and
// the stall cycles the compute array suffers.
//
// Traffic model. Folds iterate row-stripe-major over the folded mapping
// (see compute_model.hpp). How much of an operand stripe is re-fetched
// from DRAM depends on how much of it the buffer retains across the folds
// that reuse it (partial retention: the buffered prefix of a stripe is
// reused, the remainder re-streamed every pass) — this is exactly the reuse
// structure the paper's case study 2 learns:
//
//   OS: IFMAP stripe (rows x K) reused across column folds if it fits;
//       Filter (K x N) reused across row stripes only if it fits whole;
//       OFMAP written once (partial sums live in the PEs).
//   WS: Filter is stationary (fetched exactly once);
//       IFMAP slice (M x rows) reused across column folds if it fits;
//       OFMAP partial sums spill (read+write per reduction fold) unless a
//       column stripe of partials (M x cols) fits in the OFMAP buffer.
//   IS: mirror image of WS with IFMAP and Filter exchanged.
//
// Stall model. Prefetch is double-buffered: DRAM transfers overlap compute,
// so stalls = max(0, total_traffic / bandwidth - compute_cycles), plus the
// un-hideable first-tile fill. Larger buffers reduce traffic and therefore
// stalls monotonically — the property the buffer-sizing search relies on.

#include <cstdint>

#include "common/units.hpp"
#include "sim/array_config.hpp"
#include "sim/compute_model.hpp"
#include "workload/gemm.hpp"

namespace airch {

struct MemoryResult {
  Bytes dram_ifmap_bytes;
  Bytes dram_filter_bytes;
  Bytes dram_ofmap_bytes;  ///< includes partial-sum spill traffic
  Bytes sram_bytes;        ///< operand bytes streamed through SRAM
  Bytes first_fill_bytes;  ///< un-hideable first-tile fill (ifmap + filter terms)
  Cycles stall_cycles;

  Bytes dram_total_bytes() const {
    return dram_ifmap_bytes + dram_filter_bytes + dram_ofmap_bytes;
  }
};

/// Evaluates the memory system for `w` on `array` with `mem`.
/// `compute` must be the result of compute_latency(w, array).
/// Preconditions: w.valid() && array.valid() && mem.valid().
MemoryResult memory_behavior(const GemmWorkload& w, const ArrayConfig& array,
                             const MemoryConfig& mem, const ComputeResult& compute);

}  // namespace airch
