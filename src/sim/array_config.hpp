#pragma once
// Hardware configuration of the monolithic systolic-array template in the
// paper's Fig. 3: an R x C MAC array, a dataflow, three SRAM buffers
// (IFMAP / Filter / OFMAP) and a DRAM interface bandwidth.

#include <cstdint>
#include <string>

#include "common/units.hpp"
#include "sim/dataflow.hpp"

namespace airch {

/// One data element is one byte throughout (int8 accelerator convention);
/// buffer capacities below are therefore element counts as well.
inline constexpr std::int64_t kBytesPerElement = 1;
inline constexpr std::int64_t kBytesPerKb = 1024;

struct ArrayConfig {
  std::int64_t rows = 8;
  std::int64_t cols = 8;
  Dataflow dataflow = Dataflow::kOutputStationary;

  /// Peak MAC throughput per cycle (one MAC per PE per cycle).
  [[nodiscard]] MacCount macs() const { return MacCount{rows * cols}; }
  bool valid() const { return rows >= 1 && cols >= 1; }

  std::string to_string() const {
    return std::to_string(rows) + "x" + std::to_string(cols) + "/" +
           airch::to_string(dataflow);
  }

  friend bool operator==(const ArrayConfig&, const ArrayConfig&) = default;
};

struct MemoryConfig {
  std::int64_t ifmap_kb = 100;   ///< IFMAP operand buffer capacity (KB)
  std::int64_t filter_kb = 100;  ///< Filter operand buffer capacity (KB)
  std::int64_t ofmap_kb = 100;   ///< OFMAP / partial-sum buffer capacity (KB)
  std::int64_t bandwidth = 10;   ///< DRAM interface bandwidth (bytes/cycle)

  [[nodiscard]] Bytes ifmap_bytes() const { return Bytes{ifmap_kb * kBytesPerKb}; }
  [[nodiscard]] Bytes filter_bytes() const { return Bytes{filter_kb * kBytesPerKb}; }
  [[nodiscard]] Bytes ofmap_bytes() const { return Bytes{ofmap_kb * kBytesPerKb}; }
  std::int64_t total_kb() const { return ifmap_kb + filter_kb + ofmap_kb; }
  [[nodiscard]] BytesPerCycle bytes_per_cycle() const { return BytesPerCycle{bandwidth}; }

  bool valid() const {
    return ifmap_kb >= 1 && filter_kb >= 1 && ofmap_kb >= 1 && bandwidth >= 1;
  }

  friend bool operator==(const MemoryConfig&, const MemoryConfig&) = default;
};

}  // namespace airch
