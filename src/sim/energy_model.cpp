#include "sim/energy_model.hpp"

namespace airch {

EnergyResult energy_cost(const GemmWorkload& w, const MemoryResult& memres,
                         const EnergyParams& params) {
  EnergyResult e;
  e.compute_pj = static_cast<double>(w.macs()) * params.mac_pj;
  e.sram_pj = static_cast<double>(memres.sram_bytes) * params.sram_pj;
  e.dram_pj = static_cast<double>(memres.dram_total_bytes()) * params.dram_pj;
  return e;
}

}  // namespace airch
