#include "sim/energy_model.hpp"

namespace airch {

EnergyResult energy_cost(const GemmWorkload& w, const MemoryResult& memres,
                         const EnergyParams& params) {
  EnergyResult e;
  e.compute_total = w.macs() * params.mac_per_op;
  e.sram_total = memres.sram_bytes * params.sram_per_byte;
  e.dram_total = memres.dram_total_bytes() * params.dram_per_byte;
  return e;
}

}  // namespace airch
