#include "sim/dataflow.hpp"

#include <stdexcept>

namespace airch {

Dataflow dataflow_from_string(const std::string& s) {
  if (s == "OS" || s == "os") return Dataflow::kOutputStationary;
  if (s == "WS" || s == "ws") return Dataflow::kWeightStationary;
  if (s == "IS" || s == "is") return Dataflow::kInputStationary;
  throw std::invalid_argument("unknown dataflow: " + s);
}

}  // namespace airch
