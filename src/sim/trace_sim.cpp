#include "sim/trace_sim.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/check.hpp"

namespace airch {

GemmMatrix reference_gemm(const GemmMatrix& a, const GemmMatrix& b) {
  AIRCH_ASSERT(a.cols == b.rows);
  GemmMatrix c(a.rows, b.cols);
  for (std::int64_t i = 0; i < a.rows; ++i) {
    for (std::int64_t k = 0; k < a.cols; ++k) {
      const std::int32_t av = a.at(i, k);
      if (av == 0) continue;
      for (std::int64_t j = 0; j < b.cols; ++j) {
        c.at(i, j) += av * b.at(k, j);
      }
    }
  }
  return c;
}

TraceResult TraceSimulator::run(const GemmMatrix& a, const GemmMatrix& b,
                                const ArrayConfig& array) const {
  if (a.cols != b.rows) throw std::invalid_argument("GEMM shape mismatch");
  if (!array.valid()) throw std::invalid_argument("invalid array");
  switch (array.dataflow) {
    case Dataflow::kOutputStationary: return run_os(a, b, array);
    case Dataflow::kWeightStationary: return run_ws(a, b, array);
    case Dataflow::kInputStationary: return run_is(a, b, array);
  }
  throw std::logic_error("unreachable");
}

// ----------------------------------------------------------------- OS

TraceResult TraceSimulator::run_os(const GemmMatrix& a, const GemmMatrix& b,
                                   const ArrayConfig& array) const {
  const std::int64_t m = a.rows, k = a.cols, n = b.cols;
  const std::int64_t rows = array.rows, cols = array.cols;

  TraceResult result;
  result.output = GemmMatrix(m, n);

  // Per-PE operand registers (value + validity) and accumulators; operands
  // hop one PE per cycle (A rightwards, B downwards).
  const auto grid = static_cast<std::size_t>(rows * cols);
  std::vector<std::int32_t> a_reg(grid), b_reg(grid);
  std::vector<char> a_val(grid), b_val(grid);
  std::vector<std::int64_t> acc(grid);
  auto idx = [cols](std::int64_t i, std::int64_t j) {
    return static_cast<std::size_t>(i * cols + j);
  };

  for (std::int64_t i0 = 0; i0 < m; i0 += rows) {
    for (std::int64_t j0 = 0; j0 < n; j0 += cols) {
      ++result.folds;
      const std::int64_t rm = std::min(rows, m - i0);
      const std::int64_t cn = std::min(cols, n - j0);
      std::fill(acc.begin(), acc.end(), 0);
      std::fill(a_val.begin(), a_val.end(), 0);
      std::fill(b_val.begin(), b_val.end(), 0);

      const std::int64_t stream_cycles = k + rm + cn - 2;
      for (std::int64_t t = 0; t < stream_cycles; ++t) {
        // Shift right/down; iterate high-to-low so registers move once.
        for (std::int64_t i = rm - 1; i >= 0; --i) {
          for (std::int64_t j = cn - 1; j >= 0; --j) {
            if (j > 0) {
              a_reg[idx(i, j)] = a_reg[idx(i, j - 1)];
              a_val[idx(i, j)] = a_val[idx(i, j - 1)];
            }
            if (i > 0) {
              b_reg[idx(i, j)] = b_reg[idx(i - 1, j)];
              b_val[idx(i, j)] = b_val[idx(i - 1, j)];
            }
          }
        }
        // Inject skewed edge operands: row i sees A[i0+i][t-i], column j
        // sees B[t-j][j0+j].
        for (std::int64_t i = 0; i < rm; ++i) {
          const std::int64_t kk = t - i;
          const bool valid = kk >= 0 && kk < k;
          a_reg[idx(i, 0)] = valid ? a.at(i0 + i, kk) : 0;
          a_val[idx(i, 0)] = valid;
          if (valid) ++result.sram_reads;
        }
        for (std::int64_t j = 0; j < cn; ++j) {
          const std::int64_t kk = t - j;
          const bool valid = kk >= 0 && kk < k;
          b_reg[idx(0, j)] = valid ? b.at(kk, j0 + j) : 0;
          b_val[idx(0, j)] = valid;
          if (valid) ++result.sram_reads;
        }
        // MAC where both operands carry aligned valid data.
        for (std::int64_t i = 0; i < rm; ++i) {
          for (std::int64_t j = 0; j < cn; ++j) {
            if (a_val[idx(i, j)] && b_val[idx(i, j)]) {
              acc[idx(i, j)] += static_cast<std::int64_t>(a_reg[idx(i, j)]) * b_reg[idx(i, j)];
              ++result.macs;
            }
          }
        }
      }
      result.cycles += Cycles{stream_cycles};

      // Drain: accumulated results shift out through the rows (one cycle
      // per occupied row), matching the analytical model's drain term.
      result.cycles += Cycles{rm};
      result.drain_cycles += Cycles{rm};
      for (std::int64_t i = 0; i < rm; ++i) {
        for (std::int64_t j = 0; j < cn; ++j) {
          result.output.at(i0 + i, j0 + j) = static_cast<std::int32_t>(acc[idx(i, j)]);
        }
      }
    }
  }
  return result;
}

// ----------------------------------------------------------------- WS

TraceResult TraceSimulator::run_ws(const GemmMatrix& a, const GemmMatrix& b,
                                   const ArrayConfig& array) const {
  const std::int64_t m = a.rows, k = a.cols, n = b.cols;
  const std::int64_t rows = array.rows, cols = array.cols;

  TraceResult result;
  result.output = GemmMatrix(m, n);
  std::vector<std::int64_t> out_acc(static_cast<std::size_t>(m * n), 0);

  for (std::int64_t k0 = 0; k0 < k; k0 += rows) {
    for (std::int64_t j0 = 0; j0 < n; j0 += cols) {
      ++result.folds;
      const std::int64_t rk = std::min(rows, k - k0);
      const std::int64_t cn = std::min(cols, n - j0);

      // Preload the stationary K x N weight tile, one row per cycle.
      result.cycles += Cycles{rk};
      result.sram_reads += Bytes{rk * cn * kBytesPerElement};

      // Stream A with row skew; partial sums flow down the columns.
      // psum[i][j] after cycle t holds the partial sum that PE(i,j)
      // forwarded this cycle (for output element m = t - i - j).
      std::vector<std::int64_t> psum(static_cast<std::size_t>(rk * cn), 0);
      std::vector<std::int64_t> psum_next(psum.size());
      auto idx = [cn](std::int64_t i, std::int64_t j) {
        return static_cast<std::size_t>(i * cn + j);
      };
      const std::int64_t stream_cycles = m + rk + cn - 2;
      for (std::int64_t t = 0; t < stream_cycles; ++t) {
        for (std::int64_t i = 0; i < rk; ++i) {
          for (std::int64_t j = 0; j < cn; ++j) {
            const std::int64_t mm = t - i - j;  // A row index at this PE now
            if (mm < 0 || mm >= m) {
              psum_next[idx(i, j)] = 0;
              continue;
            }
            const std::int64_t upstream = i > 0 ? psum[idx(i - 1, j)] : 0;
            psum_next[idx(i, j)] =
                upstream + static_cast<std::int64_t>(a.at(mm, k0 + i)) * b.at(k0 + i, j0 + j);
            ++result.macs;
            if (j == 0) ++result.sram_reads;  // A element enters the array once per row-slice
            if (i == rk - 1) {
              out_acc[static_cast<std::size_t>(mm * n + (j0 + j))] += psum_next[idx(i, j)];
            }
          }
        }
        std::swap(psum, psum_next);
      }
      result.cycles += Cycles{stream_cycles};
      // Skewed wavefront drain is included in stream_cycles; the final
      // column's exit latency is the (cn - 1) term above.
    }
  }

  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      result.output.at(i, j) = static_cast<std::int32_t>(out_acc[static_cast<std::size_t>(i * n + j)]);
    }
  }
  return result;
}

// ----------------------------------------------------------------- IS

TraceResult TraceSimulator::run_is(const GemmMatrix& a, const GemmMatrix& b,
                                   const ArrayConfig& array) const {
  const std::int64_t m = a.rows, k = a.cols, n = b.cols;
  const std::int64_t rows = array.rows, cols = array.cols;

  TraceResult result;
  result.output = GemmMatrix(m, n);
  std::vector<std::int64_t> out_acc(static_cast<std::size_t>(m * n), 0);

  for (std::int64_t k0 = 0; k0 < k; k0 += rows) {
    for (std::int64_t m0 = 0; m0 < m; m0 += cols) {
      ++result.folds;
      const std::int64_t rk = std::min(rows, k - k0);
      const std::int64_t cm = std::min(cols, m - m0);

      // Preload the stationary K x M input tile (A transposed onto the
      // array: PE(i,j) holds A[m0+j][k0+i]).
      result.cycles += Cycles{rk};
      result.sram_reads += Bytes{rk * cm * kBytesPerElement};

      std::vector<std::int64_t> psum(static_cast<std::size_t>(rk * cm), 0);
      std::vector<std::int64_t> psum_next(psum.size());
      auto idx = [cm](std::int64_t i, std::int64_t j) {
        return static_cast<std::size_t>(i * cm + j);
      };
      const std::int64_t stream_cycles = n + rk + cm - 2;
      for (std::int64_t t = 0; t < stream_cycles; ++t) {
        for (std::int64_t i = 0; i < rk; ++i) {
          for (std::int64_t j = 0; j < cm; ++j) {
            const std::int64_t nn = t - i - j;  // B column index at this PE now
            if (nn < 0 || nn >= n) {
              psum_next[idx(i, j)] = 0;
              continue;
            }
            const std::int64_t upstream = i > 0 ? psum[idx(i - 1, j)] : 0;
            psum_next[idx(i, j)] =
                upstream + static_cast<std::int64_t>(a.at(m0 + j, k0 + i)) * b.at(k0 + i, nn);
            ++result.macs;
            if (j == 0) ++result.sram_reads;  // B element enters once per row-slice
            if (i == rk - 1) {
              out_acc[static_cast<std::size_t>((m0 + j) * n + nn)] += psum_next[idx(i, j)];
            }
          }
        }
        std::swap(psum, psum_next);
      }
      result.cycles += Cycles{stream_cycles};
    }
  }

  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      result.output.at(i, j) = static_cast<std::int32_t>(out_acc[static_cast<std::size_t>(i * n + j)]);
    }
  }
  return result;
}

}  // namespace airch
