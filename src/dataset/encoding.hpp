#pragma once
// Feature encoding bridging integer design-space features and the two
// classifier input modalities:
//
//  * bucket indices for the embedding front-end (AIRCHITECT) — each
//    column gets a vocabulary of at most `max_vocab` buckets, built from
//    the training data: an exact value->index map when the column has few
//    distinct values (dataflow ids, budget exponents), otherwise
//    rank-quantile boundaries over the observed values (GEMM dims);
//  * standardized floats for MLP / SVC baselines — per-column
//    z = (log1p(v) - mean) / std, the usual transform for dimensions
//    spanning orders of magnitude.
//
// Encoders are fitted on training data only and applied unchanged to
// validation/test, as in any honest ML evaluation.

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <vector>

#include "dataset/dataset.hpp"
#include "ml/embedding.hpp"
#include "ml/matrix.hpp"

namespace airch {

class FeatureEncoder {
 public:
  /// Fits per-column vocabularies and float statistics on `train`.
  explicit FeatureEncoder(const Dataset& train, int max_vocab = 64);

  int num_features() const { return static_cast<int>(columns_.size()); }

  /// Bucket vocabulary sizes, one per feature (embedding table sizes).
  std::vector<int> vocab_sizes() const;

  /// Bucket index of a raw value in column `col`.
  std::int32_t bucket(int col, std::int64_t value) const;

  /// Encodes points [begin, end) of `ds` as bucket indices.
  ml::IntBatch encode_int(const Dataset& ds, std::size_t begin, std::size_t end) const;

  /// Encodes points [begin, end) of `ds` as standardized floats.
  ml::Matrix encode_float(const Dataset& ds, std::size_t begin, std::size_t end) const;

  /// Gather variants: encode ds[idx[begin..end)] (shuffled mini-batches).
  ml::IntBatch encode_int_gather(const Dataset& ds, const std::vector<std::size_t>& idx,
                                 std::size_t begin, std::size_t end) const;
  ml::Matrix encode_float_gather(const Dataset& ds, const std::vector<std::size_t>& idx,
                                 std::size_t begin, std::size_t end) const;

  /// In-place gather variants for hot loops: `out` is resized (a no-op
  /// re-zeroing when the shape already matches) and filled, so a training
  /// loop that reuses one buffer per epoch allocates nothing after the
  /// first batch.
  void encode_int_gather_into(const Dataset& ds, const std::vector<std::size_t>& idx,
                              std::size_t begin, std::size_t end, ml::IntBatch& out) const;
  void encode_float_gather_into(const Dataset& ds, const std::vector<std::size_t>& idx,
                                std::size_t begin, std::size_t end, ml::Matrix& out) const;

  /// Single-point variants (inference path).
  ml::IntBatch encode_int(const std::vector<std::int64_t>& features) const;
  ml::Matrix encode_float(const std::vector<std::int64_t>& features) const;

  /// Batched query variants (serving path): one packed batch for N
  /// feature vectors, so the whole batch flows through a single forward
  /// pass instead of N single-row ones.
  ml::IntBatch encode_int_batch(const std::vector<std::vector<std::int64_t>>& queries) const;
  ml::Matrix encode_float_batch(const std::vector<std::vector<std::int64_t>>& queries) const;

  /// Text serialization (used by Recommender::save/load).
  void save(std::ostream& os) const;
  static FeatureEncoder load(std::istream& is);

 private:
  FeatureEncoder() = default;  // for load()
  struct Column {
    // Exact mode: value -> index. Quantile mode: sorted upper boundaries,
    // bucket = index of first boundary >= value.
    bool exact = false;
    std::map<std::int64_t, std::int32_t> value_to_index;
    std::vector<std::int64_t> boundaries;
    double mean = 0.0;
    double stddev = 1.0;

    std::int32_t bucket_of(std::int64_t v) const;
    int vocab() const;
    float standardize(std::int64_t v) const;
  };

  std::vector<Column> columns_;
};

}  // namespace airch
