#include "dataset/encoding.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "common/check.hpp"

namespace airch {

std::int32_t FeatureEncoder::Column::bucket_of(std::int64_t v) const {
  std::int32_t bucket = 0;
  if (exact) {
    // Unseen values map to the nearest known value's bucket.
    auto it = value_to_index.lower_bound(v);
    if (it == value_to_index.end()) {
      bucket = std::prev(it)->second;
    } else if (it->first == v || it == value_to_index.begin()) {
      bucket = it->second;
    } else {
      auto prev = std::prev(it);
      bucket = (v - prev->first <= it->first - v) ? prev->second : it->second;
    }
  } else {
    const auto it = std::lower_bound(boundaries.begin(), boundaries.end(), v);
    bucket = static_cast<std::int32_t>(it - boundaries.begin());
  }
  // Embedding tables are sized from vocab(); an out-of-range bucket would
  // index past the table.
  AIRCH_DCHECK(bucket >= 0 && bucket < vocab(), "bucket outside embedding vocab range");
  return bucket;
}

int FeatureEncoder::Column::vocab() const {
  return exact ? static_cast<int>(value_to_index.size())
               : static_cast<int>(boundaries.size()) + 1;
}

float FeatureEncoder::Column::standardize(std::int64_t v) const {
  const double z = (std::log1p(static_cast<double>(std::max<std::int64_t>(v, 0))) - mean) / stddev;
  return static_cast<float>(z);
}

FeatureEncoder::FeatureEncoder(const Dataset& train, int max_vocab) {
  if (train.empty()) throw std::invalid_argument("cannot fit encoder on empty dataset");
  if (max_vocab < 2) throw std::invalid_argument("max_vocab must be >= 2");
  const int nf = train.num_features();
  columns_.resize(static_cast<std::size_t>(nf));

  std::vector<std::int64_t> values(train.size());
  for (int col = 0; col < nf; ++col) {
    Column& c = columns_[static_cast<std::size_t>(col)];
    for (std::size_t i = 0; i < train.size(); ++i) {
      values[i] = train[i].features[static_cast<std::size_t>(col)];
    }

    // Float statistics in log1p space.
    double sum = 0.0;
    for (auto v : values) sum += std::log1p(static_cast<double>(std::max<std::int64_t>(v, 0)));
    c.mean = sum / static_cast<double>(values.size());
    double var = 0.0;
    for (auto v : values) {
      const double d = std::log1p(static_cast<double>(std::max<std::int64_t>(v, 0))) - c.mean;
      var += d * d;
    }
    c.stddev = std::sqrt(var / static_cast<double>(values.size()));
    if (c.stddev < 1e-9) c.stddev = 1.0;  // constant column

    // Bucket vocabulary.
    std::vector<std::int64_t> sorted = values;
    std::sort(sorted.begin(), sorted.end());
    std::vector<std::int64_t> unique = sorted;
    unique.erase(std::unique(unique.begin(), unique.end()), unique.end());
    if (static_cast<int>(unique.size()) <= max_vocab) {
      c.exact = true;
      for (std::size_t i = 0; i < unique.size(); ++i) {
        c.value_to_index[unique[i]] = static_cast<std::int32_t>(i);
      }
    } else {
      // Rank-quantile boundaries: max_vocab-1 cuts -> max_vocab buckets.
      c.exact = false;
      for (int q = 1; q < max_vocab; ++q) {
        const auto rank = static_cast<std::size_t>(
            static_cast<double>(q) / max_vocab * static_cast<double>(sorted.size()));
        c.boundaries.push_back(sorted[std::min(rank, sorted.size() - 1)]);
      }
      c.boundaries.erase(std::unique(c.boundaries.begin(), c.boundaries.end()),
                         c.boundaries.end());
    }
  }
}

std::vector<int> FeatureEncoder::vocab_sizes() const {
  std::vector<int> out;
  out.reserve(columns_.size());
  for (const auto& c : columns_) out.push_back(c.vocab());
  return out;
}

std::int32_t FeatureEncoder::bucket(int col, std::int64_t value) const {
  AIRCH_DCHECK(col >= 0 && static_cast<std::size_t>(col) < columns_.size(),
               "feature column index out of range");
  return columns_[static_cast<std::size_t>(col)].bucket_of(value);
}

ml::IntBatch FeatureEncoder::encode_int(const Dataset& ds, std::size_t begin,
                                        std::size_t end) const {
  if (ds.num_features() != num_features()) throw std::invalid_argument("feature arity mismatch");
  ml::IntBatch out;
  out.resize(end - begin, columns_.size());
  for (std::size_t i = begin; i < end; ++i) {
    for (std::size_t f = 0; f < columns_.size(); ++f) {
      out(i - begin, f) = columns_[f].bucket_of(ds[i].features[f]);
    }
  }
  return out;
}

ml::Matrix FeatureEncoder::encode_float(const Dataset& ds, std::size_t begin,
                                        std::size_t end) const {
  if (ds.num_features() != num_features()) throw std::invalid_argument("feature arity mismatch");
  ml::Matrix out(end - begin, columns_.size());
  for (std::size_t i = begin; i < end; ++i) {
    for (std::size_t f = 0; f < columns_.size(); ++f) {
      out(i - begin, f) = columns_[f].standardize(ds[i].features[f]);
    }
  }
  return out;
}

ml::IntBatch FeatureEncoder::encode_int_gather(const Dataset& ds,
                                               const std::vector<std::size_t>& idx,
                                               std::size_t begin, std::size_t end) const {
  ml::IntBatch out;
  encode_int_gather_into(ds, idx, begin, end, out);
  return out;
}

ml::Matrix FeatureEncoder::encode_float_gather(const Dataset& ds,
                                               const std::vector<std::size_t>& idx,
                                               std::size_t begin, std::size_t end) const {
  ml::Matrix out;
  encode_float_gather_into(ds, idx, begin, end, out);
  return out;
}

void FeatureEncoder::encode_int_gather_into(const Dataset& ds,
                                            const std::vector<std::size_t>& idx,
                                            std::size_t begin, std::size_t end,
                                            ml::IntBatch& out) const {
  out.resize(end - begin, columns_.size());
  for (std::size_t i = begin; i < end; ++i) {
    const auto& p = ds[idx[i]];
    for (std::size_t f = 0; f < columns_.size(); ++f) {
      out(i - begin, f) = columns_[f].bucket_of(p.features[f]);
    }
  }
}

void FeatureEncoder::encode_float_gather_into(const Dataset& ds,
                                              const std::vector<std::size_t>& idx,
                                              std::size_t begin, std::size_t end,
                                              ml::Matrix& out) const {
  out.resize(end - begin, columns_.size());
  for (std::size_t i = begin; i < end; ++i) {
    const auto& p = ds[idx[i]];
    for (std::size_t f = 0; f < columns_.size(); ++f) {
      out(i - begin, f) = columns_[f].standardize(p.features[f]);
    }
  }
}

ml::IntBatch FeatureEncoder::encode_int(const std::vector<std::int64_t>& features) const {
  if (features.size() != columns_.size()) throw std::invalid_argument("feature arity mismatch");
  ml::IntBatch out;
  out.resize(1, columns_.size());
  for (std::size_t f = 0; f < columns_.size(); ++f) out(0, f) = columns_[f].bucket_of(features[f]);
  return out;
}

ml::Matrix FeatureEncoder::encode_float(const std::vector<std::int64_t>& features) const {
  if (features.size() != columns_.size()) throw std::invalid_argument("feature arity mismatch");
  ml::Matrix out(1, columns_.size());
  for (std::size_t f = 0; f < columns_.size(); ++f) {
    out(0, f) = columns_[f].standardize(features[f]);
  }
  return out;
}

ml::IntBatch FeatureEncoder::encode_int_batch(
    const std::vector<std::vector<std::int64_t>>& queries) const {
  ml::IntBatch out;
  out.resize(queries.size(), columns_.size());
  for (std::size_t q = 0; q < queries.size(); ++q) {
    if (queries[q].size() != columns_.size())
      throw std::invalid_argument("feature arity mismatch");
    for (std::size_t f = 0; f < columns_.size(); ++f) {
      out(q, f) = columns_[f].bucket_of(queries[q][f]);
    }
  }
  return out;
}

ml::Matrix FeatureEncoder::encode_float_batch(
    const std::vector<std::vector<std::int64_t>>& queries) const {
  ml::Matrix out(queries.size(), columns_.size());
  for (std::size_t q = 0; q < queries.size(); ++q) {
    if (queries[q].size() != columns_.size())
      throw std::invalid_argument("feature arity mismatch");
    for (std::size_t f = 0; f < columns_.size(); ++f) {
      out(q, f) = columns_[f].standardize(queries[q][f]);
    }
  }
  return out;
}

void FeatureEncoder::save(std::ostream& os) const {
  os << "encoder v1 " << columns_.size() << "\n";
  os.precision(17);
  for (const auto& c : columns_) {
    os << (c.exact ? "exact" : "quantile") << ' ' << c.mean << ' ' << c.stddev << ' ';
    if (c.exact) {
      os << c.value_to_index.size();
      for (const auto& [v, idx] : c.value_to_index) os << ' ' << v << ' ' << idx;
    } else {
      os << c.boundaries.size();
      for (auto b : c.boundaries) os << ' ' << b;
    }
    os << '\n';
  }
}

FeatureEncoder FeatureEncoder::load(std::istream& is) {
  std::string magic, version;
  std::size_t ncols = 0;
  if (!(is >> magic >> version >> ncols) || magic != "encoder" || version != "v1") {
    throw std::runtime_error("bad encoder header");
  }
  FeatureEncoder enc;
  enc.columns_.resize(ncols);
  for (auto& c : enc.columns_) {
    std::string kind;
    std::size_t n = 0;
    if (!(is >> kind >> c.mean >> c.stddev >> n)) throw std::runtime_error("bad encoder column");
    c.exact = kind == "exact";
    if (!c.exact && kind != "quantile") throw std::runtime_error("bad encoder column kind");
    if (c.exact) {
      for (std::size_t i = 0; i < n; ++i) {
        std::int64_t v;
        std::int32_t idx;
        if (!(is >> v >> idx)) throw std::runtime_error("bad encoder vocab entry");
        c.value_to_index[v] = idx;
      }
    } else {
      c.boundaries.resize(n);
      for (auto& b : c.boundaries) {
        if (!(is >> b)) throw std::runtime_error("bad encoder boundary");
      }
    }
  }
  return enc;
}

}  // namespace airch
