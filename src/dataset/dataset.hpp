#pragma once
// Labelled datasets for the three case studies: integer feature vectors
// (the paper's input spaces, Fig. 8(a)) with a dense class label (the
// quantized output spaces, Fig. 8(b-d)).

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.hpp"

namespace airch {

struct DataPoint {
  std::vector<std::int64_t> features;
  std::int32_t label = 0;
};

class Dataset {
 public:
  Dataset() = default;
  Dataset(std::vector<std::string> feature_names, int num_classes)
      : feature_names_(std::move(feature_names)), num_classes_(num_classes) {}

  const std::vector<std::string>& feature_names() const { return feature_names_; }
  int num_features() const { return static_cast<int>(feature_names_.size()); }
  int num_classes() const { return num_classes_; }

  std::size_t size() const { return points_.size(); }
  bool empty() const { return points_.empty(); }
  const DataPoint& operator[](std::size_t i) const { return points_[i]; }
  const std::vector<DataPoint>& points() const { return points_; }

  /// Appends a point; feature arity and label range are validated.
  void add(DataPoint p);

  /// Pre-allocates capacity for `n` points (bulk fills in the generators).
  void reserve(std::size_t n) { points_.reserve(n); }

  void shuffle(Rng& rng) { rng.shuffle(points_); }

  /// Splits off the first `fraction` of points (call shuffle first).
  /// Returns {head, tail} preserving metadata.
  std::pair<Dataset, Dataset> split(double fraction) const;

  /// Three-way split used by the paper (e.g. 80:10:10).
  struct TrainValTest;
  TrainValTest split3(double train_frac, double val_frac) const;

  /// Per-class frequency histogram (size == num_classes).
  std::vector<std::int64_t> label_histogram() const;

  /// CSV persistence: header = feature names + "label".
  void save_csv(const std::string& path) const;
  static Dataset load_csv(const std::string& path, int num_classes);

 private:
  std::vector<std::string> feature_names_;
  int num_classes_ = 0;
  std::vector<DataPoint> points_;
};

struct Dataset::TrainValTest {
  Dataset train, val, test;
};

}  // namespace airch
