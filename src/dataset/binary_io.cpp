#include "dataset/binary_io.hpp"

#include <algorithm>
#include <utility>

#include "common/check.hpp"
#include "common/csv.hpp"
#include "common/units.hpp"

namespace airch {
namespace {

/// Hard cap on the feature arity a file may declare — far above any case
/// study (case 3 peaks at 12) but low enough that a corrupt count field
/// can never size a pathological allocation before the checksum check.
constexpr std::uint32_t kMaxFeatures = 4096;
/// Class counts fit comfortably in 30 bits (case 3's 1944 is the max).
constexpr std::uint32_t kMaxClasses = 1u << 30;
/// Stream-copy / batch-decode chunk.
constexpr std::size_t kChunk = 1 << 16;

struct HeaderInfo {
  std::vector<std::string> names;
  int num_classes = 0;
  std::uint64_t count = 0;
  std::uint64_t records_start = 0;
  Bytes record_bytes{};
};

/// Fixed per-record width: every feature is 8 bytes LE, the label 4.
Bytes record_width(std::uint32_t num_features) {
  return Bytes{static_cast<std::int64_t>(num_features) * 8 + 4};
}

void write_dataset_header(BinWriter& w, const std::vector<std::string>& names, int num_classes,
                          std::uint64_t count) {
  w.put_u64(kDatasetMagic);
  w.put_u32(kDatasetFormatVersion);
  w.put_u32(static_cast<std::uint32_t>(names.size()));
  w.put_u32(static_cast<std::uint32_t>(num_classes));
  std::string joined;
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (i > 0) joined += '\n';
    joined += names[i];
  }
  w.put_u32(static_cast<std::uint32_t>(joined.size()));
  w.put_bytes(joined.data(), joined.size());
  w.put_u64(dataset_schema_hash(names, num_classes));
  w.put_u64(count);
}

/// Parses and validates the header; on return the reader is positioned at
/// the first record. Every count/length field is bounds-checked against
/// the bytes actually present before it sizes an allocation, and the
/// payload length must match the record count *exactly* — truncation is
/// caught here, not at some later short read.
HeaderInfo read_dataset_header(BinReader& r, const std::string& path) {
  AIRCH_CHECK(r.get_u64() == kDatasetMagic, "not a binary dataset file: " + path);
  const std::uint32_t version = r.get_u32();
  AIRCH_CHECK(version == kDatasetFormatVersion,
              "unsupported binary dataset format version in " + path);
  const std::uint32_t nf = r.get_u32();
  AIRCH_CHECK(nf <= kMaxFeatures, "implausible feature count in " + path);
  const std::uint32_t classes = r.get_u32();
  AIRCH_CHECK(classes >= 1 && classes <= kMaxClasses, "implausible class count in " + path);
  const std::uint32_t names_bytes = r.get_u32();
  AIRCH_CHECK(names_bytes <= r.remaining(), "truncated feature names in " + path);
  std::string joined(names_bytes, '\0');
  r.get_bytes(joined.data(), names_bytes);

  HeaderInfo info;
  info.num_classes = static_cast<int>(classes);
  if (nf > 0) {
    std::size_t start = 0;
    for (std::uint32_t i = 0; i < nf; ++i) {
      const std::size_t sep = i + 1 < nf ? joined.find('\n', start) : joined.size();
      AIRCH_CHECK(sep != std::string::npos && sep > start,
                  "malformed feature names in " + path);
      info.names.push_back(joined.substr(start, sep - start));
      start = sep + 1;
    }
  } else {
    AIRCH_CHECK(names_bytes == 0, "malformed feature names in " + path);
  }
  const std::uint64_t schema = r.get_u64();
  AIRCH_CHECK(schema == dataset_schema_hash(info.names, info.num_classes),
              "schema hash does not match feature names in " + path);
  info.count = r.get_u64();
  info.record_bytes = record_width(nf);
  // Exact-length contract: header + count records + 8-byte trailer.
  // Phrased division-first so a wild count can neither overflow the
  // multiply nor size an allocation.
  const std::uint64_t rem = r.remaining();
  const std::uint64_t rb = static_cast<std::uint64_t>(info.record_bytes.value());
  AIRCH_CHECK(rem >= 8, "truncated file: " + path);
  AIRCH_CHECK((rem - 8) % rb == 0 && info.count == (rem - 8) / rb,
              "record count does not match file size in " + path);
  info.records_start = r.tell();
  return info;
}

}  // namespace

std::uint64_t dataset_schema_hash(const std::vector<std::string>& feature_names,
                                  int num_classes) {
  ByteChecksum sum;
  for (const std::string& name : feature_names) {
    sum.update(reinterpret_cast<const unsigned char*>(name.data()), name.size());
    const unsigned char sep = '\n';
    sum.update(&sep, 1);
  }
  unsigned char classes[4];
  for (int i = 0; i < 4; ++i) {
    classes[i] = static_cast<unsigned char>(
        (static_cast<std::uint32_t>(num_classes) >> (8 * i)) & 0xFFu);
  }
  sum.update(classes, 4);
  return sum.digest();
}

void write_binary_dataset(const Dataset& ds, const std::string& path) {
  BinWriter w(path);
  write_dataset_header(w, ds.feature_names(), ds.num_classes(), ds.size());
  // Records are encoded into a reused multi-record scratch and emitted in
  // ~64 KiB stream calls — the difference between this writer and CSV at
  // 1M points is formatting cost plus per-field stream calls, and this
  // path pays neither.
  const auto nf = static_cast<std::size_t>(ds.num_features());
  const std::size_t rec_bytes = nf * 8 + 4;
  const std::size_t per_chunk = std::max<std::size_t>(1, kChunk / rec_bytes);
  std::vector<unsigned char> buf(per_chunk * rec_bytes);
  unsigned char* out = buf.data();
  std::size_t buffered = 0;
  for (const DataPoint& p : ds.points()) {
    for (const std::int64_t f : p.features) {
      const auto v = static_cast<std::uint64_t>(f);
      for (int i = 0; i < 8; ++i) *out++ = static_cast<unsigned char>((v >> (8 * i)) & 0xFFu);
    }
    const auto lab = static_cast<std::uint32_t>(p.label);
    for (int i = 0; i < 4; ++i) *out++ = static_cast<unsigned char>((lab >> (8 * i)) & 0xFFu);
    if (++buffered == per_chunk) {
      w.put_bytes(buf.data(), buffered * rec_bytes);
      out = buf.data();
      buffered = 0;
    }
  }
  if (buffered > 0) w.put_bytes(buf.data(), buffered * rec_bytes);
  w.put_trailer_checksum();
  w.finish();
}

Dataset read_binary_dataset(const std::string& path) {
  BatchStream stream(path);
  Dataset out(stream.feature_names(), stream.num_classes());
  if (stream.size() > 0) {
    const bool got = stream.next_batch(static_cast<std::size_t>(stream.size()), out);
    AIRCH_CHECK(got, "stream served no records despite nonzero count: " + path);
  }
  return out;
}

BatchStream::BatchStream(const std::string& path) : in_(path), path_(path) {
  HeaderInfo info = read_dataset_header(in_, path);
  feature_names_ = std::move(info.names);
  num_classes_ = info.num_classes;
  count_ = info.count;
  records_start_ = info.records_start;
  record_bytes_ = static_cast<std::uint64_t>(info.record_bytes.value());
  recbuf_.resize(static_cast<std::size_t>(record_bytes_));
  // Validate the whole payload + trailer up front: corruption anywhere in
  // the file surfaces here, before a single batch is served.
  in_.skip_bytes(count_ * record_bytes_);
  in_.verify_trailer_checksum();
  AIRCH_CHECK(in_.remaining() == 0, "trailing garbage after checksum in " + path);
  in_.seek(records_start_);
}

bool BatchStream::next_batch(std::size_t max_points, Dataset& out) {
  out = Dataset(feature_names_, num_classes_);
  const std::uint64_t left = count_ - served_;
  const std::uint64_t n = std::min<std::uint64_t>(left, max_points);
  if (n == 0) return false;
  out.reserve(static_cast<std::size_t>(n));
  const auto nf = feature_names_.size();
  for (std::uint64_t i = 0; i < n; ++i) {
    in_.get_bytes(recbuf_.data(), recbuf_.size());
    DataPoint p;
    p.features.resize(nf);
    const unsigned char* b = recbuf_.data();
    for (std::size_t f = 0; f < nf; ++f) {
      std::uint64_t v = 0;
      for (int k = 0; k < 8; ++k) v |= static_cast<std::uint64_t>(*b++) << (8 * k);
      p.features[f] = static_cast<std::int64_t>(v);
    }
    std::uint32_t lab = 0;
    for (int k = 0; k < 4; ++k) lab |= static_cast<std::uint32_t>(*b++) << (8 * k);
    p.label = static_cast<std::int32_t>(lab);
    // The checksum was verified at open; this guards hand-crafted files
    // whose checksum is honest about out-of-range content.
    AIRCH_CHECK(p.label >= 0 && p.label < num_classes_, "label out of range in " + path_);
    out.add(std::move(p));
  }
  served_ += n;
  return true;
}

void BatchStream::reset() {
  in_.seek(records_start_);
  served_ = 0;
}

void merge_binary_shards(const std::vector<std::string>& shard_paths,
                         const std::string& out_path) {
  AIRCH_CHECK(!shard_paths.empty(), "merge needs at least one shard");
  // Pass 1: fully validate every shard (BatchStream's open does header +
  // exact length + checksum) and require identical schemas.
  std::vector<std::string> names;
  int num_classes = 0;
  std::uint64_t total = 0;
  for (std::size_t s = 0; s < shard_paths.size(); ++s) {
    const BatchStream stream(shard_paths[s]);
    if (s == 0) {
      names = stream.feature_names();
      num_classes = stream.num_classes();
    } else {
      AIRCH_CHECK(stream.feature_names() == names && stream.num_classes() == num_classes,
                  "shard schema mismatch: " + shard_paths[s]);
    }
    total += stream.size();
  }
  // Pass 2: one header with the summed count, then the shards' record
  // regions byte-for-byte in shard order, then a fresh trailer. The
  // result is exactly what one writer emitting all points would produce.
  BinWriter w(out_path);
  write_dataset_header(w, names, num_classes, total);
  std::vector<unsigned char> buf(kChunk);
  for (const std::string& shard : shard_paths) {
    BinReader r(shard);
    const HeaderInfo info = read_dataset_header(r, shard);
    std::uint64_t left = info.count * static_cast<std::uint64_t>(info.record_bytes.value());
    while (left > 0) {
      const std::size_t step = left < kChunk ? static_cast<std::size_t>(left) : kChunk;
      r.get_bytes(buf.data(), step);
      w.put_bytes(buf.data(), step);
      left -= step;
    }
  }
  w.put_trailer_checksum();
  w.finish();
}

void convert_csv_to_binary(const std::string& csv_path, const std::string& bin_path,
                           int num_classes) {
  AIRCH_CHECK(num_classes >= 1, "num_classes must be positive");
  // Pass 1: header + row count (the binary header needs the count before
  // the first record, and holding 1M parsed rows would defeat streaming).
  std::vector<std::string> names;
  std::uint64_t count = 0;
  {
    CsvReader reader(csv_path);
    names = reader.header();
    AIRCH_CHECK(!names.empty() && names.back() == "label",
                "dataset CSV must end with a 'label' column: " + csv_path);
    names.pop_back();
    std::vector<std::string> cells;
    while (reader.next_row(cells)) ++count;
  }
  // Pass 2: stream rows straight into records.
  CsvReader reader(csv_path);
  BinWriter w(bin_path);
  write_dataset_header(w, names, num_classes, count);
  std::vector<std::string> cells;
  while (reader.next_row(cells)) {
    AIRCH_CHECK(cells.size() == names.size() + 1, "CSV row width mismatch: " + csv_path);
    for (std::size_t i = 0; i < names.size(); ++i) {
      w.put_i64(std::stoll(cells[i]));
    }
    const long label = std::stol(cells.back());
    AIRCH_CHECK(label >= 0 && label < num_classes, "label out of range in " + csv_path);
    w.put_i32(static_cast<std::int32_t>(label));
  }
  w.put_trailer_checksum();
  w.finish();
}

void convert_binary_to_csv(const std::string& bin_path, const std::string& csv_path) {
  BatchStream stream(bin_path);
  CsvWriter writer(csv_path);
  std::vector<std::string> header = stream.feature_names();
  header.push_back("label");
  writer.write_header(header);
  Dataset chunk;
  std::vector<std::int64_t> row;
  while (stream.next_batch(kChunk, chunk)) {
    for (const DataPoint& p : chunk.points()) {
      row = p.features;
      row.push_back(p.label);
      writer.write_row_i64(row);
    }
  }
}

}  // namespace airch
