#pragma once
// Compact binary dataset format for paper-scale (multi-million-point)
// runs, replacing CSV where parse cost and file size dominate. Layout
// (all little-endian, common/binio.hpp discipline):
//
//   u64 magic ("AIRDSET1")      u32 format version
//   u32 num_features            u32 num_classes
//   u32 names_bytes             names_bytes of '\n'-joined feature names
//   u64 schema hash             u64 record count
//   count records of: num_features x i64 features, i32 label
//   u64 trailer checksum (FNV-1a over every preceding byte)
//
// Records are fixed-width — (num_features * 8 + 4) bytes — so the payload
// is mmap-friendly: record i lives at a computable offset, and a shard
// merge is a header rewrite plus raw byte concatenation. That is what
// makes K-shard generation byte-identical to a single-process run (the
// shard-merge determinism contract, property-tested in
// tests/test_generator.cpp): identical schema + concatenated records in
// shard order + a recomputed trailer is exactly the file a single writer
// would have produced.
//
// Corrupt inputs (truncation, flipped bytes, wrong version, schema
// mismatch) throw airch::ContractViolation via AIRCH_CHECK — never UB,
// never a silent partial load. BatchStream validates the entire file
// (header, exact payload length, trailer checksum) at open, then serves
// bounded chunks so training can stream shard-by-shard without ever
// materializing the full set (NeuralClassifier::fit_stream).

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/binio.hpp"
#include "dataset/dataset.hpp"

namespace airch {

/// First 8 bytes of every binary dataset file ("AIRDSET1" in LE byte
/// order); exposed so tests can craft wrong-magic / wrong-version
/// fixtures with valid checksums.
inline constexpr std::uint64_t kDatasetMagic = 0x3154455344524941ULL;
/// Bumped whenever the record or header layout changes; readers reject
/// any other version loudly instead of misparsing.
inline constexpr std::uint32_t kDatasetFormatVersion = 1;

/// Schema identity stored in the header: a digest over the feature names
/// and the class count. Two files merge (and a stream is interchangeable
/// with another) only when their schema hashes match.
[[nodiscard]] std::uint64_t dataset_schema_hash(const std::vector<std::string>& feature_names,
                                                int num_classes);

/// Writes the whole dataset to `path` in the format above.
void write_binary_dataset(const Dataset& ds, const std::string& path);

/// Reads a whole file back; the inverse of write_binary_dataset
/// (bit-exact round trip). Validates everything before returning.
[[nodiscard]] Dataset read_binary_dataset(const std::string& path);

/// Streaming reader: validates the entire file at open (header fields,
/// exact payload length, trailer checksum — so corruption surfaces
/// before any batch is served), then re-serves the record region in
/// bounded chunks. One pass = one epoch; reset() rewinds for the next.
class BatchStream {
 public:
  /// Opens and fully validates `path`; throws ContractViolation on any
  /// corruption or format mismatch.
  explicit BatchStream(const std::string& path);

  [[nodiscard]] const std::vector<std::string>& feature_names() const { return feature_names_; }
  [[nodiscard]] int num_features() const { return static_cast<int>(feature_names_.size()); }
  [[nodiscard]] int num_classes() const { return num_classes_; }
  /// Total records in the file (not the number still unserved).
  [[nodiscard]] std::uint64_t size() const { return count_; }

  /// Replaces `out` with a dataset holding the next `max_points` records
  /// (fewer at the tail; metadata always populated). Returns false — with
  /// `out` empty — once every record has been served.
  bool next_batch(std::size_t max_points, Dataset& out);

  /// Rewinds to the first record (e.g. between training epochs).
  void reset();

 private:
  BinReader in_;
  std::string path_;
  std::vector<std::string> feature_names_;
  int num_classes_ = 0;
  std::uint64_t count_ = 0;
  std::uint64_t records_start_ = 0;
  std::uint64_t record_bytes_ = 0;
  std::uint64_t served_ = 0;
  std::vector<unsigned char> recbuf_;
};

/// Concatenates shard files (each a complete binary dataset) into one, in
/// the order given. Every shard is fully validated first and all schemas
/// must match; the output is byte-identical to writing the concatenated
/// points directly — the merge half of the shard determinism contract.
void merge_binary_shards(const std::vector<std::string>& shard_paths,
                         const std::string& out_path);

/// CSV -> binary, streaming (two passes over the CSV: count, then copy —
/// memory stays flat). `num_classes` is required because CSV does not
/// carry it; every label is validated against it.
void convert_csv_to_binary(const std::string& csv_path, const std::string& bin_path,
                           int num_classes);

/// Binary -> CSV, streaming. Produces exactly the bytes Dataset::save_csv
/// would (same canonical formatting), so csv -> binary -> csv is a
/// bit-exact round trip for files this repo wrote.
void convert_binary_to_csv(const std::string& bin_path, const std::string& csv_path);

}  // namespace airch
