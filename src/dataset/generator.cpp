#include "dataset/generator.hpp"

#include <stdexcept>

#include "common/math_utils.hpp"
#include "common/parallel.hpp"
#include "search/sweep_cache.hpp"

namespace airch {

namespace {
/// Sampled inputs are drawn serially (cheap, keeps determinism independent
/// of thread count); the expensive search labelling runs in parallel.
/// Labelling goes through the sweep caches (search/sweep_cache.hpp) —
/// bit-identical to the naive exhaustive searches, property-tested in
/// tests/test_sweep_cache.cpp — so duplicate sampled workloads cost one
/// sweep per generation run and case-1/2 sweeps run factored. The dynamic
/// parallel_for balances the resulting non-uniform per-point cost.
template <typename Input, typename LabelFn, typename WarmFn>
void label_parallel(std::vector<Input>& inputs, std::vector<std::int32_t>& labels,
                    const LabelFn& fn, const WarmFn& warm) {
  // Issue the cache prefetch a few points ahead so the probe's memory
  // latency overlaps the current point's sweep. The lookahead clamps
  // against the *global* input count, not the chunk end: the dynamic
  // parallel_for hands out small chunks, and clamping at the chunk end
  // left the last kLookahead points of every chunk — a sizeable share of
  // all points — unwarmed. The caches are shared, so warming a point that
  // another worker ends up labelling still helps.
  constexpr std::size_t kLookahead = 8;
  labels.resize(inputs.size());
  parallel_for(inputs.size(), [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      if (i + kLookahead < inputs.size()) warm(inputs[i + kLookahead]);
      labels[i] = fn(inputs[i]);
    }
  });
}

template <typename Input, typename LabelFn>
void label_parallel(std::vector<Input>& inputs, std::vector<std::int32_t>& labels,
                    const LabelFn& fn) {
  label_parallel(inputs, labels, fn, [](const Input&) {});
}
}  // namespace

std::uint64_t point_stream_seed(std::uint64_t seed, std::uint64_t index) {
  // Avalanche the run seed once, then fold the index through the same
  // combiner the sweep caches use: adjacent indices land in unrelated
  // streams, and a given (seed, index) is stable across processes — the
  // whole sharding contract rests on that.
  return detail::hash_combine(detail::mix_u64(seed), index);
}

// --------------------------------------------------------------- case 1

Dataset generate_case1_range(std::size_t begin, std::size_t end,
                             const ArrayDataflowSpace& space, const Case1Config& cfg,
                             std::uint64_t seed, const Case1SweepCache& cache) {
  if (cfg.budget_min_exp < 2 || cfg.budget_max_exp > space.max_macs_exp() ||
      cfg.budget_min_exp > cfg.budget_max_exp) {
    throw std::invalid_argument("case 1 budget range invalid for space");
  }
  AIRCH_CHECK(begin <= end, "generate range must be ordered");
  const std::size_t n = end - begin;
  LogUniformGemmSampler sampler(cfg.dims);

  // One independent RNG stream per point (sharding contract, see header):
  // the draw order within a point is fixed, so point i's inputs depend on
  // (seed, i) alone — never on which range of a run it lands in.
  std::vector<Case1Features> inputs(n);
  for (std::size_t i = 0; i < n; ++i) {
    Rng rng(point_stream_seed(seed, begin + i));
    auto& in = inputs[i];
    in.budget_exp = static_cast<int>(rng.uniform_int(cfg.budget_min_exp, cfg.budget_max_exp));
    in.workload = sampler.sample(rng);
  }

  std::vector<std::int32_t> labels;
  label_parallel(
      inputs, labels,
      [&](const Case1Features& in) {
        return static_cast<std::int32_t>(cache.best(in.workload, in.budget_exp).label);
      },
      [&](const Case1Features& in) { cache.prefetch(in.workload); });

  Dataset ds({"budget_exp", "M", "N", "K"}, space.size());
  ds.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    ds.add({{inputs[i].budget_exp, inputs[i].workload.m, inputs[i].workload.n,
             inputs[i].workload.k},
            labels[i]});
  }
  return ds;
}

Dataset generate_case1(std::size_t n, const ArrayDataflowSpace& space, const Simulator& sim,
                       const Case1Config& cfg, std::uint64_t seed) {
  const Case1SweepCache cache(space, sim, n);
  return generate_case1_range(0, n, space, cfg, seed, cache);
}

Case1Features decode_case1(const std::vector<std::int64_t>& features) {
  if (features.size() != 4) throw std::invalid_argument("case 1 expects 4 features");
  Case1Features f;
  f.budget_exp = static_cast<int>(features[0]);
  f.workload = {features[1], features[2], features[3]};
  return f;
}

// --------------------------------------------------------------- case 2

Dataset generate_case2_range(std::size_t begin, std::size_t end, const BufferSizeSpace& space,
                             const Case2Config& cfg, std::uint64_t seed,
                             const Case2SweepCache& cache) {
  AIRCH_CHECK(begin <= end, "generate range must be ordered");
  const std::size_t n = end - begin;
  LogUniformGemmSampler sampler(cfg.dims);

  std::vector<Case2Features> inputs(n);
  for (std::size_t i = 0; i < n; ++i) {
    Rng rng(point_stream_seed(seed, begin + i));
    auto& in = inputs[i];
    in.workload = sampler.sample(rng);
    // Array shape: split a random MAC exponent into row/col exponents.
    const int macs_exp =
        static_cast<int>(rng.uniform_int(cfg.array_macs_min_exp, cfg.array_macs_max_exp));
    const int row_exp = static_cast<int>(rng.uniform_int(1, macs_exp - 1));
    in.array.rows = pow2(row_exp);
    in.array.cols = pow2(macs_exp - row_exp);
    in.array.dataflow = dataflow_from_index(static_cast<int>(rng.uniform_int(0, 2)));
    in.bandwidth = rng.uniform_int(cfg.bw_min, cfg.bw_max);
    // Limit is quantized to the space's step so it is itself a legal size.
    const std::int64_t steps_min = cfg.limit_min_kb / space.step_kb();
    const std::int64_t steps_max = cfg.limit_max_kb / space.step_kb();
    in.limit_kb = rng.uniform_int(steps_min, steps_max) * space.step_kb();
  }

  std::vector<std::int32_t> labels;
  label_parallel(inputs, labels, [&](const Case2Features& in) {
    return static_cast<std::int32_t>(
        cache.best(in.workload, in.array, in.bandwidth, in.limit_kb).label);
  });

  Dataset ds({"limit_kb", "M", "N", "K", "rows", "cols", "dataflow", "bandwidth"}, space.size());
  ds.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto& in = inputs[i];
    ds.add({{in.limit_kb, in.workload.m, in.workload.n, in.workload.k, in.array.rows,
             in.array.cols, dataflow_index(in.array.dataflow), in.bandwidth},
            labels[i]});
  }
  return ds;
}

Dataset generate_case2(std::size_t n, const BufferSizeSpace& space, const Simulator& sim,
                       const Case2Config& cfg, std::uint64_t seed) {
  const Case2SweepCache cache(space, sim);
  return generate_case2_range(0, n, space, cfg, seed, cache);
}

Case2Features decode_case2(const std::vector<std::int64_t>& features) {
  if (features.size() != 8) throw std::invalid_argument("case 2 expects 8 features");
  Case2Features f;
  f.limit_kb = features[0];
  f.workload = {features[1], features[2], features[3]};
  f.array.rows = features[4];
  f.array.cols = features[5];
  f.array.dataflow = dataflow_from_index(static_cast<int>(features[6]));
  f.bandwidth = features[7];
  return f;
}

// --------------------------------------------------------------- case 3

Dataset generate_case3_range(std::size_t begin, std::size_t end, const ScheduleSpace& space,
                             const Case3Config& cfg, std::uint64_t seed,
                             const Case3SweepCache& cache) {
  AIRCH_CHECK(begin <= end, "generate range must be ordered");
  const std::size_t n = end - begin;
  LogUniformGemmSampler sampler(cfg.dims);
  const int w = space.num_arrays();

  std::vector<std::vector<GemmWorkload>> inputs(n);
  for (std::size_t i = 0; i < n; ++i) {
    Rng rng(point_stream_seed(seed, begin + i));
    inputs[i] = sampler.sample_many(rng, static_cast<std::size_t>(w));
  }

  std::vector<std::int32_t> labels;
  label_parallel(inputs, labels, [&](const std::vector<GemmWorkload>& wls) {
    return static_cast<std::int32_t>(cache.best(wls).label);
  });

  std::vector<std::string> names;
  for (int i = 0; i < w; ++i) {
    // Built via += rather than "M" + to_string(i): the operator+ form trips
    // a spurious -Wrestrict in GCC 12's inlined char_traits (PR 105651).
    const std::string suffix = std::to_string(i);
    for (const char* dim : {"M", "N", "K"}) {
      std::string name = dim;
      name += suffix;
      names.push_back(std::move(name));
    }
  }
  Dataset ds(names, space.size());
  ds.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    DataPoint p;
    for (const auto& wl : inputs[i]) {
      p.features.push_back(wl.m);
      p.features.push_back(wl.n);
      p.features.push_back(wl.k);
    }
    p.label = labels[i];
    ds.add(std::move(p));
  }
  return ds;
}

Dataset generate_case3(std::size_t n, const ScheduleSpace& space,
                       const std::vector<ScheduledArray>& arrays, const Simulator& sim,
                       const Case3Config& cfg, std::uint64_t seed) {
  const ScheduleSearch search(space, arrays, sim);
  const Case3SweepCache cache(search);
  return generate_case3_range(0, n, space, cfg, seed, cache);
}

std::vector<GemmWorkload> decode_case3(const std::vector<std::int64_t>& features) {
  if (features.size() % 3 != 0 || features.empty()) {
    throw std::invalid_argument("case 3 features must be M,N,K triples");
  }
  std::vector<GemmWorkload> out;
  for (std::size_t i = 0; i < features.size(); i += 3) {
    out.push_back({features[i], features[i + 1], features[i + 2]});
  }
  return out;
}

}  // namespace airch
