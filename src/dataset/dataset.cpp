#include "dataset/dataset.hpp"

#include <stdexcept>

#include "common/csv.hpp"

namespace airch {

void Dataset::add(DataPoint p) {
  if (static_cast<int>(p.features.size()) != num_features()) {
    throw std::invalid_argument("feature arity mismatch");
  }
  if (p.label < 0 || p.label >= num_classes_) throw std::invalid_argument("label out of range");
  points_.push_back(std::move(p));
}

std::pair<Dataset, Dataset> Dataset::split(double fraction) const {
  if (fraction < 0.0 || fraction > 1.0) throw std::invalid_argument("bad split fraction");
  const auto head_n = static_cast<std::size_t>(fraction * static_cast<double>(size()));
  Dataset head(feature_names_, num_classes_);
  Dataset tail(feature_names_, num_classes_);
  for (std::size_t i = 0; i < size(); ++i) {
    (i < head_n ? head : tail).points_.push_back(points_[i]);
  }
  return {std::move(head), std::move(tail)};
}

Dataset::TrainValTest Dataset::split3(double train_frac, double val_frac) const {
  if (train_frac + val_frac > 1.0) throw std::invalid_argument("split fractions exceed 1");
  auto [train, rest] = split(train_frac);
  const double remaining = 1.0 - train_frac;
  auto [val, test] = rest.split(remaining > 0.0 ? val_frac / remaining : 0.0);
  return {std::move(train), std::move(val), std::move(test)};
}

std::vector<std::int64_t> Dataset::label_histogram() const {
  std::vector<std::int64_t> h(static_cast<std::size_t>(num_classes_), 0);
  for (const auto& p : points_) ++h[static_cast<std::size_t>(p.label)];
  return h;
}

void Dataset::save_csv(const std::string& path) const {
  CsvWriter writer(path);
  std::vector<std::string> header = feature_names_;
  header.push_back("label");
  writer.write_header(header);
  for (const auto& p : points_) {
    std::vector<std::int64_t> row = p.features;
    row.push_back(p.label);
    writer.write_row_i64(row);
  }
}

Dataset Dataset::load_csv(const std::string& path, int num_classes) {
  CsvReader reader(path);
  std::vector<std::string> names = reader.header();
  if (names.empty() || names.back() != "label") {
    throw std::runtime_error("dataset CSV must end with a 'label' column");
  }
  names.pop_back();
  Dataset ds(names, num_classes);
  std::vector<std::string> cells;
  while (reader.next_row(cells)) {
    if (cells.size() != names.size() + 1) throw std::runtime_error("dataset CSV row width mismatch");
    DataPoint p;
    p.features.reserve(names.size());
    for (std::size_t i = 0; i < names.size(); ++i) p.features.push_back(std::stoll(cells[i]));
    p.label = static_cast<std::int32_t>(std::stol(cells.back()));
    ds.add(std::move(p));
  }
  return ds;
}

}  // namespace airch
