#pragma once
// Search-labelled dataset generators — the paper's Step 3 (Fig. 1(b)):
// sample workloads/constraints from the Fig. 7(a)-style distribution, run
// the conventional simulate-and-search optimizer, record (input, optimal
// label). Feature layouts follow Fig. 8(a) exactly; decode helpers invert
// them so evaluation code can re-simulate a prediction's true cost.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "dataset/dataset.hpp"
#include "search/exhaustive.hpp"
#include "search/space.hpp"
#include "sim/simulator.hpp"
#include "workload/gemm.hpp"
#include "workload/sampler.hpp"

namespace airch {

// --------------------------------------------------------------- case 1
// Features: [mac_budget_exp, M, N, K]; label: ArrayDataflowSpace id.

struct Case1Config {
  int budget_min_exp = 5;
  int budget_max_exp = 18;
  GemmDimBounds dims;
};

struct Case1Features {
  int budget_exp = 0;
  GemmWorkload workload;
};

Dataset generate_case1(std::size_t n, const ArrayDataflowSpace& space, const Simulator& sim,
                       const Case1Config& cfg, std::uint64_t seed);

Case1Features decode_case1(const std::vector<std::int64_t>& features);

// --------------------------------------------------------------- case 2
// Features: [limit_kb, M, N, K, rows, cols, dataflow, bandwidth];
// label: BufferSizeSpace id.

struct Case2Config {
  int array_macs_min_exp = 4;   ///< paper: arrays between 2^4 and 2^18 MACs
  int array_macs_max_exp = 18;
  std::int64_t bw_min = 1;      ///< bytes/cycle
  std::int64_t bw_max = 100;
  /// Total (shared) memory capacity feature range, multiples of the space
  /// step. Must be at least 3x the step so some config is feasible.
  std::int64_t limit_min_kb = 400;
  std::int64_t limit_max_kb = 1800;
  GemmDimBounds dims;
};

struct Case2Features {
  std::int64_t limit_kb = 0;
  GemmWorkload workload;
  ArrayConfig array;
  std::int64_t bandwidth = 0;
};

Dataset generate_case2(std::size_t n, const BufferSizeSpace& space, const Simulator& sim,
                       const Case2Config& cfg, std::uint64_t seed);

Case2Features decode_case2(const std::vector<std::int64_t>& features);

// --------------------------------------------------------------- case 3
// Features: [M,N,K] per workload (12 ints for 4 arrays); label:
// ScheduleSpace id.

struct Case3Config {
  GemmDimBounds dims;
};

Dataset generate_case3(std::size_t n, const ScheduleSpace& space,
                       const std::vector<ScheduledArray>& arrays, const Simulator& sim,
                       const Case3Config& cfg, std::uint64_t seed);

std::vector<GemmWorkload> decode_case3(const std::vector<std::int64_t>& features);

}  // namespace airch
