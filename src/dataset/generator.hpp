#pragma once
// Search-labelled dataset generators — the paper's Step 3 (Fig. 1(b)):
// sample workloads/constraints from the Fig. 7(a)-style distribution, run
// the conventional simulate-and-search optimizer, record (input, optimal
// label). Feature layouts follow Fig. 8(a) exactly; decode helpers invert
// them so evaluation code can re-simulate a prediction's true cost.
//
// Sharding contract: point i draws its inputs from an independent RNG
// stream seeded by point_stream_seed(seed, i) — not from one sequential
// stream — so the generate_*_range(begin, end, ...) variants produce
// exactly the points a full [0, n) run would produce at those indices.
// Splitting a run into K contiguous shards and concatenating the shard
// outputs in shard order is therefore byte-identical to the single-
// process run at the same seed (property-tested in tests/test_generator
// .cpp), which is what lets generate_dataset fan out multi-million-point
// runs. The range variants label through a caller-owned sweep cache, so
// shards of one process share warmth and a persistent snapshot
// (search/sweep_cache.hpp) can pre-warm all of them.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "dataset/dataset.hpp"
#include "search/exhaustive.hpp"
#include "search/space.hpp"
#include "search/sweep_cache.hpp"
#include "sim/simulator.hpp"
#include "workload/gemm.hpp"
#include "workload/sampler.hpp"

namespace airch {

/// Seed of the independent RNG stream that draws point `index` of a run
/// keyed by `seed`. A SplitMix-style avalanche of (seed, index): streams
/// for neighbouring indices share nothing observable.
[[nodiscard]] std::uint64_t point_stream_seed(std::uint64_t seed, std::uint64_t index);

// --------------------------------------------------------------- case 1
// Features: [mac_budget_exp, M, N, K]; label: ArrayDataflowSpace id.

struct Case1Config {
  int budget_min_exp = 5;
  int budget_max_exp = 18;
  GemmDimBounds dims;
};

struct Case1Features {
  int budget_exp = 0;
  GemmWorkload workload;
};

Dataset generate_case1(std::size_t n, const ArrayDataflowSpace& space, const Simulator& sim,
                       const Case1Config& cfg, std::uint64_t seed);

/// Points [begin, end) of the full run keyed by `seed` (see the sharding
/// contract above), labelled through the caller's cache. generate_case1
/// is exactly generate_case1_range(0, n) over a fresh pre-sized cache.
Dataset generate_case1_range(std::size_t begin, std::size_t end,
                             const ArrayDataflowSpace& space, const Case1Config& cfg,
                             std::uint64_t seed, const Case1SweepCache& cache);

Case1Features decode_case1(const std::vector<std::int64_t>& features);

// --------------------------------------------------------------- case 2
// Features: [limit_kb, M, N, K, rows, cols, dataflow, bandwidth];
// label: BufferSizeSpace id.

struct Case2Config {
  int array_macs_min_exp = 4;   ///< paper: arrays between 2^4 and 2^18 MACs
  int array_macs_max_exp = 18;
  std::int64_t bw_min = 1;      ///< bytes/cycle
  std::int64_t bw_max = 100;
  /// Total (shared) memory capacity feature range, multiples of the space
  /// step. Must be at least 3x the step so some config is feasible.
  std::int64_t limit_min_kb = 400;
  std::int64_t limit_max_kb = 1800;
  GemmDimBounds dims;
};

struct Case2Features {
  std::int64_t limit_kb = 0;
  GemmWorkload workload;
  ArrayConfig array;
  std::int64_t bandwidth = 0;
};

Dataset generate_case2(std::size_t n, const BufferSizeSpace& space, const Simulator& sim,
                       const Case2Config& cfg, std::uint64_t seed);

/// Points [begin, end); see generate_case1_range.
Dataset generate_case2_range(std::size_t begin, std::size_t end, const BufferSizeSpace& space,
                             const Case2Config& cfg, std::uint64_t seed,
                             const Case2SweepCache& cache);

Case2Features decode_case2(const std::vector<std::int64_t>& features);

// --------------------------------------------------------------- case 3
// Features: [M,N,K] per workload (12 ints for 4 arrays); label:
// ScheduleSpace id.

struct Case3Config {
  GemmDimBounds dims;
};

Dataset generate_case3(std::size_t n, const ScheduleSpace& space,
                       const std::vector<ScheduledArray>& arrays, const Simulator& sim,
                       const Case3Config& cfg, std::uint64_t seed);

/// Points [begin, end); see generate_case1_range. The cache carries the
/// ScheduleSearch (arrays + simulator), which must outlive this call.
Dataset generate_case3_range(std::size_t begin, std::size_t end, const ScheduleSpace& space,
                             const Case3Config& cfg, std::uint64_t seed,
                             const Case3SweepCache& cache);

std::vector<GemmWorkload> decode_case3(const std::vector<std::int64_t>& features);

}  // namespace airch
