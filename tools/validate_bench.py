#!/usr/bin/env python3
"""Schema gate for the committed benchmark JSON artifacts.

One definition shared by tools/check.sh and .github/workflows/ci.yml (both
previously carried inline copies of these asserts, which let the two gates
drift). Checks structure and invariants, not performance numbers — speed
regressions are judged by a human against the committed BENCH_*.json.

Usage:
    validate_bench.py dataset <BENCH_dataset*.json>
    validate_bench.py train   <BENCH_train*.json> [--expect-infer-queries=N]
    validate_bench.py serve   <BENCH_serve*.json> [--min-levels=N]

Exit status 0 iff the file parses and every schema invariant holds.
"""

import json
import sys


def fail(msg):
    print(f"validate_bench: {msg}", file=sys.stderr)
    sys.exit(1)


def require(cond, msg):
    if not cond:
        fail(msg)


def validate_dataset(d):
    require(d.get("bench") == "dataset_throughput", "bench != dataset_throughput")
    require(len(d.get("results", [])) == 6, "expected 6 results (3 cases x naive/cached)")
    for case in ("case1", "case2", "case3"):
        require(case in d.get("speedup", {}), f"speedup missing {case}")
    require(0.0 <= d.get("dup_fraction", -1.0) <= 1.0, "dup_fraction outside [0, 1]")
    # Persistent-snapshot section: one cold-vs-warm entry per case. The bench
    # asserts the warm (snapshot-restored) dataset is bit-identical to the
    # cold one before it reports; a report with that flag unset must never
    # pass even if it parses.
    snapshot = d.get("snapshot", [])
    require(len(snapshot) == 3, "expected 3 snapshot entries (one per case)")
    seen = set()
    for entry in snapshot:
        case = entry.get("case")
        require(case in ("case1", "case2", "case3"), f"snapshot has bad case {case!r}")
        seen.add(case)
        require(entry.get("points", 0) > 0, f"snapshot {case}: points must be positive")
        require(entry.get("cold_seconds", 0) > 0, f"snapshot {case}: cold_seconds must be positive")
        require(entry.get("warm_seconds", 0) > 0, f"snapshot {case}: warm_seconds must be positive")
        require(entry.get("speedup", 0) > 0, f"snapshot {case}: speedup must be positive")
        require(entry.get("labels_bit_identical") is True,
                f"snapshot {case}: labels_bit_identical is not True")
    require(len(seen) == 3, "snapshot entries must cover case1..case3")
    # Binary-writer section: CSV vs fixed-width binary serialization of the
    # same dataset, with a read-back round-trip asserted by the bench.
    writer = d.get("writer", {})
    require(writer.get("points", 0) > 0, "writer.points must be positive")
    require(writer.get("csv_seconds", 0) > 0, "writer.csv_seconds must be positive")
    require(writer.get("binary_seconds", 0) > 0, "writer.binary_seconds must be positive")
    require(writer.get("speedup", 0) > 0, "writer.speedup must be positive")


def validate_train(d, expect_infer_queries):
    require(d.get("bench") == "train_throughput", "bench != train_throughput")
    # The bench itself compares the naive and fast kernel loss trajectories
    # float-for-float; a report with this flag unset must never be waved
    # through even if it otherwise parses.
    require(d.get("trajectory_bit_identical") is True, "trajectory_bit_identical is not True")
    require(len(d.get("results", [])) == 2, "expected 2 results (naive/fast)")
    require(d.get("train_speedup", 0) > 0, "train_speedup must be positive")
    infer = d.get("infer", {})
    require(infer.get("batched_us_per_query", 0) > 0, "infer.batched_us_per_query must be positive")
    if expect_infer_queries is not None:
        require(infer.get("queries") == expect_infer_queries,
                f"infer.queries != {expect_infer_queries}")


def validate_serve(d, min_levels):
    require(d.get("bench") == "serve", "bench != serve")
    require(d.get("mode") in ("closed", "open"), "mode must be closed or open")
    # The bench re-answers every captured reply with an in-process
    # recommend_batch before reporting; a report without that assertion
    # must never be waved through even if the numbers parse.
    require(d.get("responses_bit_identical") is True, "responses_bit_identical is not True")
    require(d.get("batch_deadline_us", -1) >= 0, "batch_deadline_us must be >= 0")
    require(d.get("batch_max", 0) >= 1, "batch_max must be >= 1")
    levels = d.get("levels", [])
    require(len(levels) >= min_levels, f"expected >= {min_levels} concurrency levels")
    seen = set()
    for lv in levels:
        c = lv.get("concurrency", 0)
        require(c >= 1, "concurrency must be >= 1")
        require(c not in seen, f"duplicate concurrency level {c}")
        seen.add(c)
        require(lv.get("requests", 0) > 0, f"level {c}: requests must be positive")
        require(lv.get("queries", 0) >= lv["requests"], f"level {c}: queries < requests")
        require(lv.get("seconds", 0) > 0, f"level {c}: seconds must be positive")
        require(lv.get("qps", 0) > 0, f"level {c}: qps must be positive")
        p50, p99, p999 = (lv.get("p50_us", 0), lv.get("p99_us", 0), lv.get("p999_us", 0))
        require(p50 > 0, f"level {c}: p50_us must be positive")
        require(p50 <= p99 <= p999, f"level {c}: percentiles must be monotone (p50<=p99<=p999)")
        require(lv.get("batches", 0) >= 1, f"level {c}: batches must be >= 1")
        require(lv.get("mean_batch_queries", 0) > 0,
                f"level {c}: mean_batch_queries must be positive")
    hist = d.get("batch_size_log2_hist", [])
    require(isinstance(hist, list) and len(hist) > 0, "batch_size_log2_hist missing")
    require(all(isinstance(b, int) and b >= 0 for b in hist),
            "batch_size_log2_hist must hold non-negative counts")
    require(sum(hist) == sum(lv["batches"] for lv in levels),
            "batch_size_log2_hist total != sum of per-level batches")
    require(d.get("served_requests", 0) == sum(lv["requests"] for lv in levels),
            "served_requests != sum of per-level requests")
    require(d.get("served_errors", -1) == 0, "served_errors must be 0")


def main(argv):
    args = [a for a in argv[1:] if not a.startswith("--")]
    flags = [a for a in argv[1:] if a.startswith("--")]
    if len(args) != 2 or args[0] not in ("dataset", "train", "serve"):
        print(__doc__, file=sys.stderr)
        return 2
    expect_infer_queries = None
    min_levels = 3
    for flag in flags:
        if flag.startswith("--expect-infer-queries="):
            expect_infer_queries = int(flag.split("=", 1)[1])
        elif flag.startswith("--min-levels="):
            min_levels = int(flag.split("=", 1)[1])
        else:
            print(__doc__, file=sys.stderr)
            return 2

    try:
        with open(args[1]) as f:
            d = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot load {args[1]}: {e}")

    if args[0] == "dataset":
        validate_dataset(d)
    elif args[0] == "train":
        validate_train(d, expect_infer_queries)
    else:
        validate_serve(d, min_levels)
    print(f"validate_bench: {args[1]} ok ({args[0]} schema)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
