// Constant-time inference from a saved model (the deployed form of the
// paper's Fig. 1(b) flow): load a recommender trained by
// train_recommender and answer one design query.
//
//   ./query_recommender --model=case1.airch --case=1 --M=3136 --N=64 --K=576 --budget_exp=10
//   ./query_recommender --model=case2.airch --case=2 --M=... --rows=32 --cols=32
//       --dataflow=WS --bandwidth=10 --limit_kb=900

#include <iostream>

#include "common/cli.hpp"
#include "core/recommender.hpp"

int main(int argc, char** argv) {
  using namespace airch;
  ArgParser args("query_recommender", "one constant-time design query from a saved model");
  args.flag_str("model", "recommender.airch", "saved model path");
  args.flag_i64("case", 1, "case study the model was trained for (1/2/3)");
  args.flag_i64("M", 3136, "GEMM M");
  args.flag_i64("N", 64, "GEMM N");
  args.flag_i64("K", 576, "GEMM K");
  args.flag_i64("budget_exp", 10, "case 1: MAC budget exponent");
  args.flag_i64("rows", 32, "case 2: array rows");
  args.flag_i64("cols", 32, "case 2: array cols");
  args.flag_str("dataflow", "WS", "case 2: array dataflow (OS/WS/IS)");
  args.flag_i64("bandwidth", 10, "case 2: DRAM bandwidth (bytes/cycle)");
  args.flag_i64("limit_kb", 900, "case 2: total SRAM capacity budget");
  // Upper bound = the largest output space of the three case studies
  // (case 3's 1944 schedules); recommend_topk re-checks against the
  // actual study so the CLI bound only has to be a sane global cap.
  args.flag_i64("topk", 1, "print the k most likely configurations", 1, 1944);
  try {
    args.parse(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "query_recommender: " << e.what() << "\n";
    return 1;
  }

  const auto case_num = args.i64("case");
  if (case_num < 1 || case_num > 3) {
    std::cerr << "--case must be 1, 2, or 3\n";
    return 1;
  }
  const auto study = make_case_study(static_cast<CaseId>(case_num));
  const Recommender rec = Recommender::load(args.str("model"), *study);
  const GemmWorkload w{args.i64("M"), args.i64("N"), args.i64("K")};

  std::vector<std::int64_t> features;
  switch (study->id()) {
    case CaseId::kArrayDataflow:
      features = {args.i64("budget_exp"), w.m, w.n, w.k};
      break;
    case CaseId::kBufferSizing:
      features = {args.i64("limit_kb"), w.m, w.n, w.k, args.i64("rows"), args.i64("cols"),
                  dataflow_index(dataflow_from_string(args.str("dataflow"))),
                  args.i64("bandwidth")};
      break;
    case CaseId::kScheduling:
      std::cerr << "case 3 queries need 4 workloads; use the multi_array_scheduler example\n";
      return 1;
  }

  const auto labels = rec.recommend_topk(features, static_cast<int>(args.i64("topk")));
  for (std::size_t i = 0; i < labels.size(); ++i) {
    std::cout << (i == 0 ? "recommended: " : "     also #" + std::to_string(i + 1) + ": ");
    if (study->id() == CaseId::kArrayDataflow) {
      const auto* s1 = dynamic_cast<const ArrayDataflowStudy*>(study.get());
      std::cout << s1->space().config(labels[i]).to_string() << '\n';
    } else {
      const auto* s2 = dynamic_cast<const BufferSizingStudy*>(study.get());
      const MemoryConfig m = s2->space().config(labels[i]);
      std::cout << "IFMAP " << m.ifmap_kb << " KB / Filter " << m.filter_kb << " KB / OFMAP "
                << m.ofmap_kb << " KB\n";
    }
  }
  return 0;
}
