// Architecture-conformance analyzer: enforces the layer DAG declared in
// docs/layers.toml over the file-level #include graph of src/ and tools/,
// plus the API result-contract pass. Built on the shared scanning core in
// tools/analysis/ (same waiver syntax and --machine format as lint_airch).
//
//   layer           include edge to a layer not in the including layer's
//                   declared deps (upward or undeclared-cross-layer edge)
//   cycle           strongly connected component in the include graph
//                   (includes self-inclusion)
//   cpp-include     #include of a .cpp file — a TU must never textually
//                   swallow another TU
//   private-header  include of a manifest-`private` header from outside
//                   its owning layer
//   unknown-layer   scanned file not covered by any manifest layer — the
//                   manifest must stay complete as directories move
//   nodiscard       header-declared function returning a result-carrying
//                   type (*Result, *Stats, CacheStats, or a strong
//                   quantity type from common/units.hpp) without
//                   [[nodiscard]] — computed costs must never be silently
//                   dropped (-Werror=unused-result finishes the job at
//                   call sites)
//
// A violation is waived per line with `// airch-lint: allow(rule)` —
// layer waivers are budgeted: the gate accepts at most 2 in the tree
// (docs/static_analysis.md).
//
// Usage: arch_check [--manifest=<file>] [--rules=a,b] [--machine]
//                   [--explain <rule>] <repo_root>
// Default manifest: <repo_root>/docs/layers.toml. Exit 0 iff clean —
// wired into CTest as `arch_check`.

#include <algorithm>
#include <fstream>
#include <iostream>
#include <map>
#include <regex>
#include <set>
#include <string>
#include <vector>

#include "analysis/driver.hpp"
#include "analysis/manifest.hpp"
#include "analysis/scan.hpp"

namespace {

namespace fs = std::filesystem;
using airch::analysis::Finding;
using airch::analysis::RuleInfo;

const std::vector<RuleInfo> kRules = {
    {"layer",
     "an #include crossing a layer edge not declared in docs/layers.toml (upward includes, "
     "undeclared skips)",
     "the ArchGym-style Environment/Agent unification and the tiling/mapping case study both "
     "move code across search/, ml/, core/ and dataset/; a declared, enforced DAG means those "
     "refactors cannot silently invert the architecture",
     "// airch-lint: allow(layer) — budgeted: at most 2 in the tree, each with a reason"},
    {"cycle", "a strongly connected component in the file-level include graph",
     "include cycles make headers order-dependent and unbuildable standalone; they are fixed "
     "by restructuring (extract the shared piece downward), never waived",
     "not waivable — break the cycle"},
    {"cpp-include", "#include of a .cpp file",
     "a translation unit that textually swallows another breaks one-definition-rule "
     "reasoning, doubles build work, and hides the real dependency",
     "not waivable — move shared code into a header"},
    {"private-header", "include of a manifest-`private` header from outside its owning layer",
     "private headers are implementation details; consumers must go through the layer's "
     "public surface so the internals can change freely",
     "// airch-lint: allow(private-header), or remove the header from `private` in the manifest"},
    {"unknown-layer", "a scanned file not covered by any manifest layer",
     "every file must belong to a declared layer or the DAG has silent holes; extend "
     "docs/layers.toml when adding a directory",
     "add the directory to a layer in docs/layers.toml"},
    {"nodiscard",
     "a header-declared function returning *Result/*Stats/CacheStats or a strong quantity "
     "type (Cycles, Bytes, Picojoules, ...) without [[nodiscard]]",
     "these types exist to carry computed costs back to a caller; dropping one on the floor "
     "is always a bug, and [[nodiscard]] + -Werror=unused-result turns it into a build error",
     "// airch-lint: allow(nodiscard) — e.g. for a mutating call whose result is advisory"},
};

/// Matches `#include "target"`. The target must be read from the RAW line
/// (strip_code blanks string-literal contents, and the target IS a string
/// literal); kIncludeDirectiveRe is checked against the stripped line
/// first so a directive inside a block comment never matches.
const std::regex kIncludeRe(R"(^\s*#\s*include\s*"([^"]+)\")");
const std::regex kIncludeDirectiveRe(R"(^\s*#\s*include\s*")");

/// Matches a declaration whose return type is result-carrying: optional
/// decl-specifiers, then a type token ending in Result/Stats or one of the
/// strong quantity aliases (or Quantity itself), then a function name and
/// an opening paren. Reference/pointer returns do not match (the `\s+`
/// between type and name admits no `&`/`*`), so getters returning
/// references and `operator=` are out of scope by construction.
const std::regex kResultFnRe(
    R"(^\s*(?:\[\[nodiscard\]\]\s*)?(?:(?:static|virtual|constexpr|inline|friend|explicit)\s+)*((?:[A-Za-z_][A-Za-z0-9_]*::)*(?:(?:[A-Za-z_][A-Za-z0-9_]*)?(?:Result|Stats)|Quantity(?:\s*<[^;{}()]*>)?|Cycles|Bytes|Picojoules|MacCount|Utilization|EnergyPerMac|EnergyPerByte|BytesPerCycle))\s+((?:operator\s*[^\s(]+)|[A-Za-z_][A-Za-z0-9_]*)\s*\()");

/// Tokens that start a non-function construct the result-type regex could
/// otherwise shadow (e.g. `struct FooResult {`, `using Stats = ...`).
const std::regex kNonDeclRe(R"(^\s*(struct|class|enum|using|typedef|return|throw|co_return)\b)");

struct IncludeEdge {
  std::size_t from = 0;     ///< index into files
  std::size_t to = 0;       ///< index into files (only resolved edges)
  std::size_t line = 0;
  std::size_t col = 1;
  std::string target;       ///< raw include text
};

struct ScanResult {
  std::vector<IncludeEdge> edges;
  std::vector<Finding> findings;
};

/// 1-based column of submatch `group` in a stripped-line match.
std::size_t col_of(const std::smatch& m, int group = 0) {
  return static_cast<std::size_t>(m.position(group)) + 1;
}

/// Lexically normalizes `p` ("a/./b/../c" → "a/c") without touching the fs.
std::string normalized(const std::string& p) {
  return fs::path(p).lexically_normal().generic_string();
}

void scan_file(const std::vector<airch::analysis::SourceFile>& files, std::size_t index,
               const std::map<std::string, std::size_t>& by_rel, ScanResult& out) {
  const auto& src = files[index];
  std::ifstream in(src.path);
  if (!in) {
    out.findings.push_back({src.rel, 0, 1, "io", "cannot open file"});
    return;
  }
  const bool is_header = src.path.extension() == ".hpp";
  const std::string dir = fs::path(src.rel).parent_path().generic_string();

  airch::analysis::StripState st;
  std::string raw;
  std::size_t lineno = 0;
  bool prev_trailing_nodiscard = false;
  while (std::getline(in, raw)) {
    ++lineno;
    const std::set<std::string> allow = airch::analysis::allowed_rules(raw);
    const std::string code = airch::analysis::strip_code(raw, st);

    std::smatch m;
    if (std::regex_search(code, kIncludeDirectiveRe) && std::regex_search(raw, m, kIncludeRe)) {
      const std::string target = m[1].str();
      if (target.size() > 4 && target.ends_with(".cpp") && !allow.count("cpp-include")) {
        out.findings.push_back({src.rel, lineno, col_of(m, 1), "cpp-include",
                                "#include \"" + target +
                                    "\" — a translation unit must never include another; "
                                    "move the shared code into a header"});
      }
      // Resolve against the include paths the build actually uses:
      // src/ (library convention), tools/ (analyzer convention), the
      // repo root, then the including file's own directory.
      for (const std::string& cand :
           {normalized("src/" + target), normalized("tools/" + target), normalized(target),
            normalized(dir + "/" + target)}) {
        const auto it = by_rel.find(cand);
        if (it != by_rel.end()) {
          out.edges.push_back({index, it->second, lineno, col_of(m, 1), target});
          break;
        }
      }
    }

    if (is_header && !allow.count("nodiscard") && !std::regex_search(code, m, kNonDeclRe) &&
        std::regex_search(code, m, kResultFnRe)) {
      const bool has_nodiscard =
          code.find("[[nodiscard]]") != std::string::npos || prev_trailing_nodiscard;
      if (!has_nodiscard) {
        out.findings.push_back({src.rel, lineno, col_of(m, 1), "nodiscard",
                                "function '" + m[2].str() + "' returns result-carrying type '" +
                                    m[1].str() + "' but is not [[nodiscard]]"});
      }
    }

    // Track a line that ends with [[nodiscard]] so the attribute may sit on
    // its own line above a declaration.
    std::string trimmed = code;
    while (!trimmed.empty() && std::isspace(static_cast<unsigned char>(trimmed.back()))) {
      trimmed.pop_back();
    }
    prev_trailing_nodiscard = trimmed.ends_with("[[nodiscard]]");
  }
}

/// Tarjan SCC over the resolved include graph. Emits one `cycle` finding
/// per non-trivial SCC (or self-loop), anchored at the lexicographically
/// first member's include edge into the component.
void find_cycles(const std::vector<airch::analysis::SourceFile>& files,
                 const std::vector<IncludeEdge>& edges, std::vector<Finding>& findings) {
  const std::size_t n = files.size();
  std::vector<std::vector<std::size_t>> adj(n);  // edge indices
  for (std::size_t e = 0; e < edges.size(); ++e) adj[edges[e].from].push_back(e);

  std::vector<int> index(n, -1);
  std::vector<int> low(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<std::size_t> stack;
  std::vector<std::vector<std::size_t>> sccs;
  int next_index = 0;

  // Iterative Tarjan: frame = (node, next child position).
  struct Frame {
    std::size_t v;
    std::size_t child = 0;
  };
  for (std::size_t start = 0; start < n; ++start) {
    if (index[start] != -1) continue;
    std::vector<Frame> frames{{start}};
    while (!frames.empty()) {
      Frame& f = frames.back();
      const std::size_t v = f.v;
      if (f.child == 0) {
        index[v] = low[v] = next_index++;
        stack.push_back(v);
        on_stack[v] = true;
      }
      bool descended = false;
      while (f.child < adj[v].size()) {
        const std::size_t w = edges[adj[v][f.child]].to;
        ++f.child;
        if (index[w] == -1) {
          frames.push_back({w});
          descended = true;
          break;
        }
        if (on_stack[w]) low[v] = std::min(low[v], index[w]);
      }
      if (descended) continue;
      if (low[v] == index[v]) {
        std::vector<std::size_t> scc;
        for (;;) {
          const std::size_t w = stack.back();
          stack.pop_back();
          on_stack[w] = false;
          scc.push_back(w);
          if (w == v) break;
        }
        sccs.push_back(std::move(scc));
      }
      frames.pop_back();
      if (!frames.empty()) {
        low[frames.back().v] = std::min(low[frames.back().v], low[v]);
      }
    }
  }

  for (auto& scc : sccs) {
    bool self_loop = false;
    if (scc.size() == 1) {
      for (const std::size_t e : adj[scc[0]]) {
        if (edges[e].to == scc[0]) self_loop = true;
      }
      if (!self_loop) continue;
    }
    std::sort(scc.begin(), scc.end(), [&files](std::size_t a, std::size_t b) {
      return files[a].rel < files[b].rel;
    });
    const std::set<std::size_t> members(scc.begin(), scc.end());
    // Anchor on the first member's edge that stays inside the component.
    std::size_t line = 1;
    std::size_t col = 1;
    for (const std::size_t e : adj[scc.front()]) {
      if (members.count(edges[e].to)) {
        line = edges[e].line;
        col = edges[e].col;
        break;
      }
    }
    std::string cycle_list;
    for (const std::size_t v : scc) {
      if (!cycle_list.empty()) cycle_list += " -> ";
      cycle_list += files[v].rel;
    }
    findings.push_back({files[scc.front()].rel, line, col, "cycle",
                        "include cycle: " + cycle_list + " -> " + files[scc.front()].rel});
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::string usage =
      "usage: arch_check [--manifest=<file>] [--rules=a,b] [--machine] [--explain <rule>] "
      "<repo_root>\n";
  airch::analysis::DriverOptions opts;
  if (!airch::analysis::parse_driver_args(argc, argv, opts, usage)) return 2;
  if (!opts.explain_rule.empty()) {
    return airch::analysis::run_explain(kRules, opts.explain_rule, std::cout);
  }
  std::string manifest_arg;
  for (const auto& extra : opts.extra) {
    if (extra.rfind("--manifest=", 0) == 0) {
      manifest_arg = extra.substr(std::string("--manifest=").size());
    } else {
      std::cerr << "unknown flag " << extra << "\n" << usage;
      return 2;
    }
  }

  const fs::path root = opts.root;
  const fs::path manifest_path =
      manifest_arg.empty() ? root / "docs" / "layers.toml" : fs::path(manifest_arg);

  airch::analysis::LayerManifest manifest;
  try {
    manifest = airch::analysis::load_manifest(manifest_path);
  } catch (const std::exception& e) {
    std::cerr << "arch_check: " << e.what() << '\n';
    return 2;
  }

  const auto files = airch::analysis::walk_sources(root, {"src", "tools"});
  if (files.empty()) {
    std::cerr << "arch_check: no .cpp/.hpp sources under " << root << " — is that the repo root?\n";
    return 2;
  }
  std::map<std::string, std::size_t> by_rel;
  for (std::size_t i = 0; i < files.size(); ++i) by_rel[files[i].rel] = i;

  ScanResult scan;
  for (std::size_t i = 0; i < files.size(); ++i) scan_file(files, i, by_rel, scan);

  // Per-file layer lookup; files outside every declared layer are findings
  // themselves and excluded from edge checks.
  std::vector<const airch::analysis::Layer*> layer_of(files.size(), nullptr);
  for (std::size_t i = 0; i < files.size(); ++i) {
    layer_of[i] = manifest.layer_of(files[i].rel);
    if (layer_of[i] == nullptr) {
      scan.findings.push_back({files[i].rel, 1, 1, "unknown-layer",
                               "file is not covered by any layer in " +
                                   manifest_path.generic_string() +
                                   " — add its directory to the manifest"});
    }
  }

  // Edge rules. Waivers were consumed at scan time for line-level rules;
  // for edge rules we re-read nothing: the allow() set was not recorded per
  // edge, so re-check by line text here would be redundant — instead edges
  // carry their line and the waiver was already honored by scan_file for
  // cpp-include. For layer/private-header, honor waivers via a second
  // lightweight pass over the flagged lines only.
  std::vector<Finding> edge_findings;
  for (const auto& e : scan.edges) {
    const auto* from = layer_of[e.from];
    const auto* to = layer_of[e.to];
    if (from == nullptr || to == nullptr) continue;
    if (from != to) {
      const bool declared =
          std::find(from->deps.begin(), from->deps.end(), to->name) != from->deps.end();
      if (!declared) {
        edge_findings.push_back(
            {files[e.from].rel, e.line, e.col, "layer",
             "include of '" + e.target + "' crosses layer '" + from->name + "' -> '" +
                 to->name + "', which docs/layers.toml does not declare" +
                 (std::find(to->deps.begin(), to->deps.end(), from->name) != to->deps.end()
                      ? " (this edge points UP the DAG)"
                      : "")});
      }
      if (manifest.is_private(files[e.to].rel)) {
        edge_findings.push_back({files[e.from].rel, e.line, e.col, "private-header",
                                 "'" + files[e.to].rel + "' is private to layer '" + to->name +
                                     "' — include the layer's public headers instead"});
      }
    }
  }
  // Honor per-line waivers for the edge rules (budget enforced below).
  std::size_t layer_waivers = 0;
  if (!edge_findings.empty()) {
    std::map<std::string, std::map<std::size_t, std::set<std::string>>> allow_cache;
    for (const auto& f : edge_findings) {
      if (!allow_cache.count(f.file)) {
        auto& lines = allow_cache[f.file];
        std::ifstream in(root / f.file);
        std::string raw;
        std::size_t lineno = 0;
        while (std::getline(in, raw)) {
          ++lineno;
          auto allow = airch::analysis::allowed_rules(raw);
          if (!allow.empty()) lines[lineno] = std::move(allow);
        }
      }
      const auto& lines = allow_cache[f.file];
      const auto it = lines.find(f.line);
      if (it != lines.end() && it->second.count(f.rule)) {
        if (f.rule == "layer") ++layer_waivers;
        continue;
      }
      scan.findings.push_back(f);
    }
  }
  // The waiver budget: a couple of documented exceptions are tolerable
  // while a refactor is in flight; more means the manifest is a fiction.
  constexpr std::size_t kLayerWaiverBudget = 2;
  if (layer_waivers > kLayerWaiverBudget) {
    scan.findings.push_back({manifest_path.generic_string(), 1, 1, "layer",
                             std::to_string(layer_waivers) +
                                 " allow(layer) waivers in the tree exceed the budget of " +
                                 std::to_string(kLayerWaiverBudget) +
                                 " — fix the structure instead of waiving it"});
  }

  find_cycles(files, scan.edges, scan.findings);

  std::sort(scan.findings.begin(), scan.findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.col, a.rule) <
                     std::tie(b.file, b.line, b.col, b.rule);
            });

  airch::analysis::filter_findings(scan.findings, opts.only_rules);
  return airch::analysis::report(scan.findings, opts.machine, "arch_check", files.size(),
                                 std::cout);
}
