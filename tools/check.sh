#!/usr/bin/env bash
# One-shot pre-merge gate: configure + build + test the default, ASan+UBSan,
# and TSan configurations, and run the repo analyzers in each. All library
# targets compile with -Werror (AIRCH_WERROR=ON via the presets used here).
#
#   tools/check.sh             # everything (slow: three full builds)
#   tools/check.sh default     # just the Release build + full test suite
#   tools/check.sh asan tsan   # any subset of: default bench arch serve
#                              # asan tsan tidy capability
#
# The `bench` stage (in the default set; needs the default stage's build)
# runs tiny-points smokes of bench_dataset_throughput — which asserts
# cached and naive labels are identical before reporting, and (because
# --snapshot-points/--writer-points default to --points) exercises a real
# sweep-cache snapshot save→load→warm-regenerate and a binary dataset
# write→read round trip per run — and of bench_train_throughput — which
# asserts the naive and fast kernel paths produce bit-identical loss
# trajectories — and validates the emitted JSON against the shared schema
# gate (tools/validate_bench.py, also invoked by CI so the two can't
# drift), which requires the snapshot section to report
# labels_bit_identical for all three cases.
#
# The `serve` stage (in the default set; shares the default stage's build
# tree) smokes the batched recommender service end to end: bench_serve
# trains tiny warm models, stands the socket service up in-process, drives
# it at three concurrency levels, asserts every reply bit-identical to a
# direct in-process recommend_batch, and emits BENCH_serve-schema JSON
# that is then validated by tools/validate_bench.py --mode serve.
#
# The `arch` stage (in the default set) builds and runs both static
# analyzers standalone: lint_airch (style/idiom rules) and arch_check
# (layer-DAG conformance over the include graph, docs/layers.toml, plus
# the [[nodiscard]] result-contract pass). The same binaries also run as
# tier-1 ctest entries in the default stage; this stage exists so the
# analyzers can gate quickly without a full test run.
#
# The `tidy` stage (not in the default set: it is a fourth full build)
# rebuilds the library with clang-tidy attached to every src/ compile
# (.clang-tidy, AIRCH_CLANG_TIDY=ON).
#
# The `capability` stage (not in the default set: needs clang) compiles the
# library under clang -Wthread-safety -Werror=thread-safety (the capability
# preset; annotations in common/sync.hpp), runs the thread-safety
# compile-fail harness, and runs the header self-containment suite.
#
# Tool-gated stages skip with a notice when the tool is missing locally —
# no tooling beyond the stock container is ever required on a dev box —
# but HARD-FAIL when CI=true, so the hosted gate can never green-light a
# check that did not actually run.
#
# Failure reporting: `set -euo pipefail` plus an ERR trap that names the
# failing stage on stderr, and a per-stage OK line after each stage.
# pipefail matters here: stage commands that feed a pipe (bench smokes,
# validators piped through tee/sed by callers) must still propagate a
# non-zero exit — without it, `validator | tee log` would report tee's
# exit status and a broken JSON schema could slide through green.
#
# TSan runs only the `tsan`-labelled concurrency suite (the full suite under
# TSan is prohibitively slow); ASan+UBSan runs the full suite. AIRCH_THREADS
# forces real worker threads even on single-core CI runners.
# -E (errtrace) so the ERR trap also fires for failures inside functions
# like run() — without it the trap only sees top-level commands.
set -Eeuo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"
STAGES=("$@")
if [ ${#STAGES[@]} -eq 0 ]; then STAGES=(default bench arch serve asan tsan); fi

CURRENT_STAGE="(startup)"
PASSED_STAGES=()
# The trap fires on the first failing command (set -e is about to exit):
# name the stage and the exit code on stderr so the failure is attributable
# even when stdout is piped or captured.
trap 'code=$?;
      echo "check.sh: stage '\''${CURRENT_STAGE}'\'' FAILED (exit ${code})" >&2;
      if [ ${#PASSED_STAGES[@]} -gt 0 ]; then
        echo "check.sh: stages passed before failure: ${PASSED_STAGES[*]}" >&2;
      fi' ERR

run() { echo "+ $*" >&2; "$@"; }

# skip_or_fail <tool> <what>: missing-tool policy. Locally a notice +
# return 0 (caller skips); under CI=true an unexecuted check is a failure.
skip_or_fail() {
  if [ "${CI:-}" = "true" ]; then
    echo "check.sh: $1 required for $2 but not installed and CI=true — failing" >&2
    exit 1
  fi
  echo "check.sh: $1 not installed — skipping $2" >&2
}

for stage in "${STAGES[@]}"; do
  CURRENT_STAGE="$stage"
  case "$stage" in
    default)
      run cmake --preset checked
      run cmake --build build-checked -j "$JOBS"
      run ctest --test-dir build-checked --output-on-failure -j "$JOBS"
      ;;
    bench)
      run cmake --preset checked
      run cmake --build build-checked -j "$JOBS" --target bench_dataset_throughput
      run ./build-checked/bench/bench_dataset_throughput \
        --points=300 --reps=1 --out=build-checked/BENCH_dataset_smoke.json >/dev/null
      run cmake --build build-checked -j "$JOBS" --target bench_train_throughput
      run ./build-checked/bench/bench_train_throughput \
        --points=400 --epochs=1 --reps=1 --infer-queries=64 \
        --out=build-checked/BENCH_train_smoke.json >/dev/null
      if command -v python3 >/dev/null 2>&1; then
        # Each validator is checked individually so a schema failure names
        # the offending JSON instead of dying as an anonymous set -e exit.
        for spec in \
          "dataset build-checked/BENCH_dataset_smoke.json" \
          "train build-checked/BENCH_train_smoke.json --expect-infer-queries=64"
        do
          # shellcheck disable=SC2086  # word-splitting the spec is the point
          if ! run python3 tools/validate_bench.py $spec; then
            echo "check.sh: bench JSON schema validation FAILED for: $spec" >&2
            exit 1
          fi
        done
      else
        skip_or_fail python3 "bench JSON schema validation"
      fi
      ;;
    serve)
      run cmake --preset checked
      run cmake --build build-checked -j "$JOBS" --target bench_serve
      run ./build-checked/bench/bench_serve \
        --points1=400 --points2=300 --points3=200 --epochs=1 \
        --requests=30 --levels=1,2,4 \
        --out=build-checked/BENCH_serve_smoke.json >/dev/null
      if command -v python3 >/dev/null 2>&1; then
        if ! run python3 tools/validate_bench.py serve \
            build-checked/BENCH_serve_smoke.json --min-levels=3; then
          echo "check.sh: serve bench JSON schema validation FAILED" >&2
          exit 1
        fi
      else
        skip_or_fail python3 "serve bench JSON schema validation"
      fi
      ;;
    arch)
      run cmake --preset checked
      run cmake --build build-checked -j "$JOBS" --target lint_airch arch_check
      run ./build-checked/tools/lint_airch .
      run ./build-checked/tools/arch_check .
      ;;
    asan)
      run cmake --preset asan
      run cmake --build build-asan -j "$JOBS"
      # abort on the first report so CI fails loudly; UBSan halts too.
      ASAN_OPTIONS=halt_on_error=1 UBSAN_OPTIONS=halt_on_error=1 AIRCH_THREADS=4 \
        run ctest --test-dir build-asan --output-on-failure -j "$JOBS"
      ;;
    tsan)
      run cmake --preset tsan
      run cmake --build build-tsan -j "$JOBS" --target \
        test_parallel test_sanitizer_stress test_sweep_cache test_matmul_kernel \
        test_sync test_serve lint_airch
      TSAN_OPTIONS=halt_on_error=1 AIRCH_THREADS=4 \
        run ctest --test-dir build-tsan -L tsan --output-on-failure
      ;;
    tidy)
      if ! command -v clang-tidy >/dev/null 2>&1; then
        skip_or_fail clang-tidy "tidy stage"
        echo "check.sh: stage 'tidy' SKIPPED" >&2
        continue
      fi
      run cmake --preset tidy
      run cmake --build build-tidy -j "$JOBS" --target \
        airch_common airch_workload airch_sim airch_search airch_dataset \
        airch_ml airch_models airch_core airch_serve
      ;;
    capability)
      if ! command -v clang++ >/dev/null 2>&1; then
        skip_or_fail clang++ "capability stage"
        echo "check.sh: stage 'capability' SKIPPED" >&2
        continue
      fi
      run cmake --preset capability
      # Library targets only: -Wthread-safety sees every annotated mutex in
      # src/; tests/bench/examples keep the base warning set.
      run cmake --build build-capability -j "$JOBS" --target \
        airch_common airch_workload airch_sim airch_search airch_dataset \
        airch_ml airch_models airch_core airch_serve
      # The must-not-compile thread-safety snippets + positive control.
      run ctest --test-dir build-capability -L thread_safety --output-on-failure
      # Header hygiene under the strict compiler: every src/ header must
      # compile as its own translation unit.
      run ctest --test-dir build-capability -L self_contained --output-on-failure -j "$JOBS"
      ;;
    *)
      echo "unknown stage: $stage (want: default bench arch asan tsan tidy capability)" >&2
      exit 2
      ;;
  esac
  PASSED_STAGES+=("$stage")
  echo "check.sh: stage '$stage' OK" >&2
done

echo "check.sh: all stages passed (${STAGES[*]})"
