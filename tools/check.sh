#!/usr/bin/env bash
# One-shot pre-merge gate: configure + build + test the default, ASan+UBSan,
# and TSan configurations, and run the repo linter in each. All library
# targets compile with -Werror (AIRCH_WERROR=ON via the presets used here).
#
#   tools/check.sh             # everything (slow: three full builds)
#   tools/check.sh default     # just the Release build + full test suite
#   tools/check.sh asan tsan   # any subset of: default bench asan tsan tidy
#
# The `bench` stage (in the default set; needs the default stage's build)
# runs tiny-points smokes of bench_dataset_throughput — which asserts
# cached and naive labels are identical before reporting — and of
# bench_train_throughput — which asserts the naive and fast kernel paths
# produce bit-identical loss trajectories — and validates that the
# emitted JSON parses when python3 is available.
#
# The `tidy` stage (not in the default set: it is a fourth full build)
# rebuilds the library with clang-tidy attached to every src/ compile
# (.clang-tidy, AIRCH_CLANG_TIDY=ON). It requires clang-tidy on PATH and
# is skipped with a notice when the binary is missing — no tooling beyond
# the stock container is ever required locally; CI installs it and gates.
#
# TSan runs only the `tsan`-labelled concurrency suite (the full suite under
# TSan is prohibitively slow); ASan+UBSan runs the full suite. AIRCH_THREADS
# forces real worker threads even on single-core CI runners.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"
STAGES=("$@")
if [ ${#STAGES[@]} -eq 0 ]; then STAGES=(default bench asan tsan); fi

run() { echo "+ $*" >&2; "$@"; }

for stage in "${STAGES[@]}"; do
  case "$stage" in
    default)
      run cmake --preset checked
      run cmake --build build-checked -j "$JOBS"
      run ctest --test-dir build-checked --output-on-failure -j "$JOBS"
      ;;
    bench)
      run cmake --preset checked
      run cmake --build build-checked -j "$JOBS" --target bench_dataset_throughput
      run ./build-checked/bench/bench_dataset_throughput \
        --points=300 --reps=1 --out=build-checked/BENCH_dataset_smoke.json >/dev/null
      if command -v python3 >/dev/null 2>&1; then
        run python3 -c "import json,sys; d=json.load(open('build-checked/BENCH_dataset_smoke.json')); sys.exit(0 if d['bench']=='dataset_throughput' and len(d['results'])==6 and all(c in d['speedup'] for c in ('case1','case2','case3')) and 0.0 <= d['dup_fraction'] <= 1.0 else 1)"
      else
        echo "check.sh: python3 not installed — skipping bench JSON validation" >&2
      fi
      run cmake --build build-checked -j "$JOBS" --target bench_train_throughput
      run ./build-checked/bench/bench_train_throughput \
        --points=400 --epochs=1 --reps=1 --infer-queries=64 \
        --out=build-checked/BENCH_train_smoke.json >/dev/null
      if command -v python3 >/dev/null 2>&1; then
        run python3 -c "import json,sys; d=json.load(open('build-checked/BENCH_train_smoke.json')); sys.exit(0 if d['bench']=='train_throughput' and d['trajectory_bit_identical'] is True and len(d['results'])==2 and d['train_speedup']>0 and d['infer']['queries']==64 else 1)"
      else
        echo "check.sh: python3 not installed — skipping train bench JSON validation" >&2
      fi
      ;;
    asan)
      run cmake --preset asan
      run cmake --build build-asan -j "$JOBS"
      # abort on the first report so CI fails loudly; UBSan halts too.
      ASAN_OPTIONS=halt_on_error=1 UBSAN_OPTIONS=halt_on_error=1 AIRCH_THREADS=4 \
        run ctest --test-dir build-asan --output-on-failure -j "$JOBS"
      ;;
    tsan)
      run cmake --preset tsan
      run cmake --build build-tsan -j "$JOBS" --target \
        test_parallel test_sanitizer_stress test_sweep_cache test_matmul_kernel lint_airch
      TSAN_OPTIONS=halt_on_error=1 AIRCH_THREADS=4 \
        run ctest --test-dir build-tsan -L tsan --output-on-failure
      ;;
    tidy)
      if ! command -v clang-tidy >/dev/null 2>&1; then
        echo "check.sh: clang-tidy not installed — skipping tidy stage" >&2
        continue
      fi
      run cmake --preset tidy
      run cmake --build build-tidy -j "$JOBS" --target \
        airch_common airch_workload airch_sim airch_search airch_dataset \
        airch_ml airch_models airch_core
      ;;
    *)
      echo "unknown stage: $stage (want: default bench asan tsan tidy)" >&2
      exit 2
      ;;
  esac
done

echo "check.sh: all stages passed (${STAGES[*]})"
