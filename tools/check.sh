#!/usr/bin/env bash
# One-shot pre-merge gate: configure + build + test the default, ASan+UBSan,
# and TSan configurations, and run the repo linter in each. All library
# targets compile with -Werror (AIRCH_WERROR=ON via the presets used here).
#
#   tools/check.sh             # everything (slow: three full builds)
#   tools/check.sh default     # just the Release build + full test suite
#   tools/check.sh asan tsan   # any subset of: default asan tsan tidy
#
# The `tidy` stage (not in the default set: it is a fourth full build)
# rebuilds the library with clang-tidy attached to every src/ compile
# (.clang-tidy, AIRCH_CLANG_TIDY=ON). It requires clang-tidy on PATH and
# is skipped with a notice when the binary is missing — no tooling beyond
# the stock container is ever required locally; CI installs it and gates.
#
# TSan runs only the `tsan`-labelled concurrency suite (the full suite under
# TSan is prohibitively slow); ASan+UBSan runs the full suite. AIRCH_THREADS
# forces real worker threads even on single-core CI runners.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"
STAGES=("$@")
if [ ${#STAGES[@]} -eq 0 ]; then STAGES=(default asan tsan); fi

run() { echo "+ $*" >&2; "$@"; }

for stage in "${STAGES[@]}"; do
  case "$stage" in
    default)
      run cmake --preset checked
      run cmake --build build-checked -j "$JOBS"
      run ctest --test-dir build-checked --output-on-failure -j "$JOBS"
      ;;
    asan)
      run cmake --preset asan
      run cmake --build build-asan -j "$JOBS"
      # abort on the first report so CI fails loudly; UBSan halts too.
      ASAN_OPTIONS=halt_on_error=1 UBSAN_OPTIONS=halt_on_error=1 AIRCH_THREADS=4 \
        run ctest --test-dir build-asan --output-on-failure -j "$JOBS"
      ;;
    tsan)
      run cmake --preset tsan
      run cmake --build build-tsan -j "$JOBS" --target \
        test_parallel test_sanitizer_stress lint_airch
      TSAN_OPTIONS=halt_on_error=1 AIRCH_THREADS=4 \
        run ctest --test-dir build-tsan -L tsan --output-on-failure
      ;;
    tidy)
      if ! command -v clang-tidy >/dev/null 2>&1; then
        echo "check.sh: clang-tidy not installed — skipping tidy stage" >&2
        continue
      fi
      run cmake --preset tidy
      run cmake --build build-tidy -j "$JOBS" --target \
        airch_common airch_workload airch_sim airch_search airch_dataset \
        airch_ml airch_models airch_core
      ;;
    *)
      echo "unknown stage: $stage (want: default asan tsan tidy)" >&2
      exit 2
      ;;
  esac
done

echo "check.sh: all stages passed (${STAGES[*]})"
