#!/usr/bin/env bash
# One-shot pre-merge gate: configure + build + test the default, ASan+UBSan,
# and TSan configurations, and run the repo linter in each. All library
# targets compile with -Werror (AIRCH_WERROR=ON via the presets used here).
#
#   tools/check.sh             # everything (slow: three full builds)
#   tools/check.sh default     # just the Release build + full test suite
#   tools/check.sh asan tsan   # any subset of: default asan tsan
#
# TSan runs only the `tsan`-labelled concurrency suite (the full suite under
# TSan is prohibitively slow); ASan+UBSan runs the full suite. AIRCH_THREADS
# forces real worker threads even on single-core CI runners.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"
STAGES=("$@")
if [ ${#STAGES[@]} -eq 0 ]; then STAGES=(default asan tsan); fi

run() { echo "+ $*" >&2; "$@"; }

for stage in "${STAGES[@]}"; do
  case "$stage" in
    default)
      run cmake --preset checked
      run cmake --build build-checked -j "$JOBS"
      run ctest --test-dir build-checked --output-on-failure -j "$JOBS"
      ;;
    asan)
      run cmake --preset asan
      run cmake --build build-asan -j "$JOBS"
      # abort on the first report so CI fails loudly; UBSan halts too.
      ASAN_OPTIONS=halt_on_error=1 UBSAN_OPTIONS=halt_on_error=1 AIRCH_THREADS=4 \
        run ctest --test-dir build-asan --output-on-failure -j "$JOBS"
      ;;
    tsan)
      run cmake --preset tsan
      run cmake --build build-tsan -j "$JOBS" --target \
        test_parallel test_sanitizer_stress lint_airch
      TSAN_OPTIONS=halt_on_error=1 AIRCH_THREADS=4 \
        run ctest --test-dir build-tsan -L tsan --output-on-failure
      ;;
    *)
      echo "unknown stage: $stage (want: default asan tsan)" >&2
      exit 2
      ;;
  esac
done

echo "check.sh: all stages passed (${STAGES[*]})"
